// Ablation: guardband sizing at the 2 us minimum slice (§7 design choice).
// Sweeps the configured guardband through the analytic budget's
// components; loss appears exactly when the guard stops covering the OCS
// retargeting window + system jitter, and duty-cycle (goodput) falls as
// the guard grows — the trade the paper's 200 ns sits on.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/controller.h"
#include "core/guardband.h"
#include "routing/to_routing.h"
#include "topo/round_robin.h"
#include "workload/kv.h"

using namespace oo;
using namespace oo::literals;

namespace {

struct Point {
  std::int64_t drops;
  std::int64_t ops;
  double duty_pct;
};

Point run(SimTime guard) {
  core::NetworkConfig cfg;
  cfg.num_tors = 4;
  cfg.calendar_mode = true;
  cfg.guardband = guard;
  const SimTime slice = 2_us;
  optics::Schedule sched(4, 1, 3, slice);
  for (const auto& c : topo::round_robin_1d(4, 1)) sched.add_circuit(c);
  core::Network net(cfg, sched, optics::ocs_awgr());
  core::Controller ctl(net);
  ctl.deploy_routing(routing::direct_to(sched), core::LookupMode::PerHop,
                     core::MultipathMode::None);
  net.start();
  workload::KvWorkload kv(net, 0, {1, 2, 3}, 300_us, 1400);
  kv.start();
  net.sim().run_until(60_ms);
  const double usable =
      static_cast<double>((slice - guard - cfg.sync_error * 2).ns());
  return Point{net.optical().total_drops(), kv.ops_completed(),
               100.0 * usable / static_cast<double>(slice.ns())};
}

}  // namespace

int main() {
  bench::banner(
      "Ablation: guardband vs loss and duty cycle at 2 us slices",
      "under ~150 ns (the analytic budget) transmissions collide with "
      "reconfiguration; above it, loss-free, with duty falling linearly — "
      "200 ns is the knee");

  const auto g = core::derive_guardband(core::GuardbandInputs{});
  std::printf("  analytic budget: %s; chosen guardband: %s\n\n",
              g.analytic.str().c_str(), g.guardband.str().c_str());
  std::printf("  %-12s %-12s %-10s %-10s\n", "guardband", "fabric-drops",
              "KV-ops", "duty%");
  for (std::int64_t ns : {40, 80, 120, 160, 200, 280, 400, 600}) {
    const auto pt = run(SimTime::nanos(ns));
    std::printf("  %-12s %-12lld %-10lld %-10.1f\n",
                SimTime::nanos(ns).str().c_str(),
                static_cast<long long>(pt.drops),
                static_cast<long long>(pt.ops), pt.duty_pct);
  }
  return 0;
}
