// Ablation: buffer-offloading horizon (§5.2 design knob). The switch keeps
// only the next K calendar days; everything later parks on hosts. Sweeping
// K trades switch buffer against host-link offload traffic — the paper's
// claim is that even buffer-hungry VLB stays far below the switch limit
// once offloading engages.
#include <cstdio>

#include "arch/arch.h"
#include "bench/bench_util.h"
#include "services/monitor.h"
#include "workload/traces.h"

using namespace oo;
using namespace oo::literals;

namespace {

struct Point {
  double p999_kb;
  std::int64_t offloads;
  std::int64_t delivered;
};

Point run(int horizon) {
  arch::Params p;
  p.tors = 16;
  p.hosts_per_tor = 1;
  p.bw = 10e9;
  p.uplinks = 1;
  p.slice = 300_us;
  if (horizon > 0) {
    p.offload = true;
    p.calendar_queues = horizon;
  }
  auto inst = arch::make_rotornet(p, arch::RotorRouting::Vlb);
  services::Monitor mon(*inst.net, 50_us);
  mon.start();
  workload::OpenLoopReplay replay(*inst.net, workload::TraceKind::Rpc, 0.4);
  replay.start();
  inst.run_for(15_ms);
  replay.stop();
  std::int64_t offloads = 0;
  for (NodeId n = 0; n < inst.net->num_tors(); ++n) {
    offloads += inst.net->tor(n).offloads();
  }
  return Point{mon.all_buffer_samples().percentile(99.9) / 1024.0, offloads,
               inst.net->totals().delivered};
}

}  // namespace

int main() {
  bench::banner(
      "Ablation: offload horizon K (calendar days kept on-switch), VLB @40%",
      "smaller K -> less switch buffer, more host offload traffic; "
      "completed deliveries within the horizon dip slightly (offloaded "
      "packets add host round-trips) but nothing is lost");

  std::printf("  %-14s %-16s %-14s %-12s\n", "horizon K", "p99.9 buffer",
              "offloaded pkts", "delivered");
  const auto full = run(0);  // offloading disabled (K = period)
  std::printf("  %-14s %13.0f KB %-14lld %-12lld\n", "off (K=P)",
              full.p999_kb, static_cast<long long>(full.offloads),
              static_cast<long long>(full.delivered));
  for (int k : {12, 8, 5, 3, 2}) {
    const auto pt = run(k);
    std::printf("  %-14d %13.0f KB %-14lld %-12lld\n", k, pt.p999_kb,
                static_cast<long long>(pt.offloads),
                static_cast<long long>(pt.delivered));
  }
  return 0;
}
