// Ablation: the congestion-response choice (§5.2 — OpenOptics detects,
// the architecture chooses drop / defer / trim). The same overloaded rotor
// under each response, plus trim paired with its NACK-driven transport
// (the pairing Opera assumes). Shows why the response is an architecture
// decision, not a framework one.
#include <cstdio>
#include <memory>

#include "arch/arch.h"
#include "bench/bench_util.h"
#include "transport/flow_transfer.h"
#include "transport/trim_retx.h"
#include "workload/transfer_pool.h"

using namespace oo;
using namespace oo::literals;

namespace {

struct Row {
  double done_pct;
  double p50_ms;
  double p99_ms;
  std::int64_t drops;
};

Row run(core::CongestionResponse response, bool nack_transport) {
  arch::Params p;
  p.tors = 8;
  p.hosts_per_tor = 1;
  p.bw = 10e9;
  p.uplinks = 1;
  p.slice = 100_us;
  p.queue_capacity = 256 << 10;  // shallow queues: overload must hurt
  auto inst = arch::make_rotornet(p, arch::RotorRouting::Direct);
  auto& cfg = const_cast<core::NetworkConfig&>(inst.net->config());
  cfg.congestion_response = response;

  // 32 concurrent 1 MB transfers hammering one destination.
  PercentileSampler fct_ms;
  int done = 0;
  const int kFlows = 32;
  std::vector<std::unique_ptr<transport::TrimRetxTransfer>> nack_xfers;
  workload::TransferPool pool(*inst.net);
  for (int i = 0; i < kFlows; ++i) {
    const HostId src = static_cast<HostId>(1 + (i % 7));
    if (nack_transport) {
      transport::TrimRetxConfig tc;
      tc.window = 64;
      nack_xfers.push_back(std::make_unique<transport::TrimRetxTransfer>(
          *inst.net, src, 0, 1 << 20, tc,
          [&](SimTime fct, std::int64_t) {
            ++done;
            fct_ms.add(fct.ms());
          }));
      nack_xfers.back()->start();
    } else {
      pool.launch(src, 0, 1 << 20, {},
                  [&](SimTime fct, std::int64_t) {
                    ++done;
                    fct_ms.add(fct.ms());
                  });
    }
  }
  inst.run_for(400_ms);
  const auto t = inst.net->totals();
  return Row{100.0 * done / kFlows, fct_ms.percentile(50),
             fct_ms.percentile(99), t.congestion_drops};
}

void print(const char* label, const Row& r) {
  std::printf("  %-24s done=%5.1f%%  p50=%7.1fms  p99=%7.1fms  drops=%lld\n",
              label, r.done_pct, r.p50_ms, r.p99_ms,
              static_cast<long long>(r.drops));
}

}  // namespace

int main() {
  bench::banner(
      "Ablation: congestion response under incast overload (32x1MB -> one "
      "host, shallow queues)",
      "drop: loss + timeout-bound tails; defer: fewer losses, misses absorbed "
      "by later slices; trim alone: headers survive but recovery is "
      "RTO-bound; trim + NACK transport: prompt recovery (Opera's pairing)");

  print("drop", run(core::CongestionResponse::Drop, false));
  print("defer", run(core::CongestionResponse::Defer, false));
  print("trim (RTO transport)", run(core::CongestionResponse::Trim, false));
  print("trim + NACK transport", run(core::CongestionResponse::Trim, true));
  return 0;
}
