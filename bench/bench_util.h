// Shared helpers for the reproduction benches: consistent table printing
// and the paper-expectation banner each bench emits next to its measured
// rows (EXPERIMENTS.md records both).
#pragma once

#include <cstdio>
#include <string>

#include "common/stats.h"

namespace oo::bench {

inline void banner(const char* experiment, const char* paper_expectation) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_expectation);
  std::printf("==============================================================\n");
}

inline void fct_row(const std::string& label, const PercentileSampler& s) {
  std::printf("  %-22s n=%6zu  p50=%9.1f  p90=%9.1f  p99=%9.1f  max=%9.1f us\n",
              label.c_str(), s.count(), s.percentile(50), s.percentile(90),
              s.percentile(99), s.max());
}

}  // namespace oo::bench
