// Shared helpers for the reproduction benches: consistent table printing,
// the paper-expectation banner each bench emits next to its measured rows
// (EXPERIMENTS.md records both), and thin wrappers over the campaign
// runner (src/runner/) so sweep benches declare a spec instead of
// hand-rolling the loop.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "runner/experiments.h"
#include "runner/runner.h"

namespace oo::bench {

inline void banner(const char* experiment, const char* paper_expectation) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_expectation);
  std::printf("==============================================================\n");
}

inline void fct_row(const std::string& label, const PercentileSampler& s) {
  std::printf("  %-22s n=%6zu  p50=%9.1f  p90=%9.1f  p99=%9.1f  max=%9.1f us\n",
              label.c_str(), s.count(), s.percentile(50), s.percentile(90),
              s.percentile(99), s.max());
}

// The same row from a campaign result produced by the "fct" experiment.
inline void fct_row(const std::string& label, const json::Object& r) {
  const auto num = [&r](const char* k) {
    const auto it = r.find(k);
    return it == r.end() ? 0.0 : it->second.as_double();
  };
  std::printf("  %-22s n=%6lld  p50=%9.1f  p90=%9.1f  p99=%9.1f  max=%9.1f us\n",
              label.c_str(),
              static_cast<long long>(r.count("n") ? r.at("n").as_int() : 0),
              num("p50_us"), num("p90_us"), num("p99_us"), num("max_us"));
}

// Worker count for bench campaigns: OO_JOBS env override, else the
// machine's cores capped at 8. Results are --jobs-independent by
// construction; this only changes wall-clock.
inline int default_jobs() {
  if (const char* env = std::getenv("OO_JOBS")) {
    const int j = std::atoi(env);
    if (j >= 1) return j;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw > 8 ? 8 : hw);
}

// Run `spec` in-process on the registered experiment and return the
// engine (records ordered by run index, metrics populated). Failed runs
// abort the bench loudly — a reproduction table with silent holes is
// worse than no table.
inline runner::CampaignRunner run_campaign(const runner::CampaignSpec& spec,
                                           int jobs = default_jobs()) {
  runner::RunnerOptions opt;
  opt.jobs = jobs;
  runner::CampaignRunner engine(
      spec, runner::find_experiment(spec.experiment), opt);
  const auto s = engine.run();
  if (s.failed > 0) {
    for (const auto& rec : engine.records()) {
      if (rec.status == runner::RunStatus::Failed) {
        std::fprintf(stderr, "run %d failed: %s\n", rec.index,
                     rec.error.c_str());
      }
    }
    std::fprintf(stderr, "campaign %s: %d/%d runs failed\n",
                 spec.name.c_str(), s.failed, s.total);
    std::exit(2);
  }
  return engine;
}

}  // namespace oo::bench
