// Traffic-engine throughput bench: how fast the streaming engine pushes
// simulated time, (a) as the fabric grows (events/sec vs. ToR count) and
// (b) as the hybrid packet/fluid threshold drops and elephants move from
// per-packet to flow-level fidelity (the speedup knob). Writes the
// measured rows to BENCH_engine.json so successive PRs can diff engine
// throughput against the recorded baseline.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "bench/bench_util.h"
#include "common/json.h"
#include "traffic/engine.h"

using namespace oo;
using namespace oo::literals;

namespace {

struct Row {
  int tors = 0;
  int shards = 0;
  std::int64_t threshold = 0;
  double wall_ms = 0;
  std::int64_t sim_events = 0;
  std::int64_t flows = 0;
  std::int64_t flows_fluid = 0;
  double events_per_sec = 0;
  double flows_per_sec = 0;
};

traffic::TrafficSpec base_spec(std::int64_t sources) {
  traffic::TrafficSpec spec;
  spec.sources = sources;
  spec.load = 0.3;
  spec.size.base = workload::trace_cdf(workload::TraceKind::KvStore);
  spec.size.hh_fraction = 0.05;
  spec.size.hh = workload::trace_cdf(workload::TraceKind::Hadoop);
  spec.burst.enabled = true;
  spec.seed = 11;
  return spec;
}

Row run_point(int tors, std::int64_t threshold, SimTime horizon,
              int shards = 0, std::int64_t sources_per_host = 64) {
  arch::Params p;
  p.tors = tors;
  p.hosts_per_tor = 2;
  p.uplinks = 2;
  p.seed = 7;
  p.shards = shards;
  auto inst = runner::make_arch("rotornet-direct", p);

  traffic::TrafficSpec spec = base_spec(
      static_cast<std::int64_t>(inst.net->num_hosts()) * sources_per_host);
  spec.hybrid_threshold = threshold;
  traffic::TrafficEngine eng(*inst.net, std::move(spec));
  eng.start();

  const auto t0 = std::chrono::steady_clock::now();
  inst.run_for(horizon);
  const auto t1 = std::chrono::steady_clock::now();
  eng.stop();

  Row r;
  r.tors = tors;
  r.shards = shards;
  r.threshold = threshold;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.sim_events = inst.net->sim().events_executed();
  r.flows = eng.flows_emitted();
  r.flows_fluid = eng.flows_fluid();
  const double wall_sec = r.wall_ms / 1e3;
  if (wall_sec > 0) {
    r.events_per_sec = static_cast<double>(r.sim_events) / wall_sec;
    r.flows_per_sec = static_cast<double>(r.flows) / wall_sec;
  }
  return r;
}

void print_row(const char* label, const Row& r) {
  std::printf(
      "  %-18s wall=%8.1f ms  events=%10lld (%8.2f M/s)  flows=%8lld "
      "(fluid %lld)\n",
      label, r.wall_ms, static_cast<long long>(r.sim_events),
      r.events_per_sec / 1e6, static_cast<long long>(r.flows),
      static_cast<long long>(r.flows_fluid));
}

json::Object row_json(const Row& r) {
  json::Object o;
  o["tors"] = r.tors;
  o["shards"] = r.shards;
  o["hybrid_threshold"] = r.threshold;
  o["wall_ms"] = r.wall_ms;
  o["sim_events"] = r.sim_events;
  o["flows"] = r.flows;
  o["flows_fluid"] = r.flows_fluid;
  o["events_per_sec"] = r.events_per_sec;
  o["flows_per_sec"] = r.flows_per_sec;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "BENCH_engine.json";
  bench::banner("engine_throughput: streaming traffic engine",
                "events/sec flat-ish in ToR count at fixed per-host load; "
                "wall-clock drops sharply as the hybrid threshold moves "
                "elephants to fluid fidelity");

  const std::int64_t kPacketOnly =
      std::numeric_limits<std::int64_t>::max();
  json::Array tor_rows, threshold_rows;

  std::printf("\nToR scaling (hybrid threshold 1 MB, 30 ms horizon):\n");
  for (const int tors : {8, 16, 32}) {
    const Row r = run_point(tors, 1 << 20, 30_ms);
    char label[32];
    std::snprintf(label, sizeof label, "tors=%d", tors);
    print_row(label, r);
    tor_rows.push_back(row_json(r));
  }

  std::printf("\nHybrid threshold sweep (8 ToRs, 30 ms horizon):\n");
  double packet_wall = 0;
  for (const std::int64_t thr :
       {kPacketOnly, std::int64_t{10} << 20, std::int64_t{1} << 20,
        std::int64_t{100'000}}) {
    const Row r = run_point(8, thr, 30_ms);
    char label[32];
    if (thr == kPacketOnly) {
      std::snprintf(label, sizeof label, "packet-only");
      packet_wall = r.wall_ms;
    } else {
      std::snprintf(label, sizeof label, "thr=%lldKB",
                    static_cast<long long>(thr / 1000));
    }
    print_row(label, r);
    if (thr != kPacketOnly && r.wall_ms > 0) {
      std::printf("  %-18s speedup vs packet-only: %.2fx\n", "",
                  packet_wall / r.wall_ms);
    }
    threshold_rows.push_back(row_json(r));
  }

  // Sharded engine sweep: ToR count x worker count. shards=1 is the
  // windowed lane engine run inline (the parallelism baseline — it pays
  // window bookkeeping but no threads); shards>1 adds worker threads.
  // Horizons shrink with fabric size to keep the sweep affordable; the
  // per-row events/sec is the comparable figure.
  std::printf("\nShard sweep (hybrid threshold 1 MB):\n");
  json::Array shard_rows;
  for (const int tors : {8, 64, 256}) {
    const SimTime horizon = tors >= 256 ? 3_ms : tors >= 64 ? 10_ms : 30_ms;
    double base_eps = 0;
    for (const int shards : {1, 2, 4, 8}) {
      const Row r = run_point(tors, 1 << 20, horizon, shards,
                              /*sources_per_host=*/16);
      char label[48];
      std::snprintf(label, sizeof label, "tors=%d shards=%d", tors, shards);
      print_row(label, r);
      if (shards == 1) {
        base_eps = r.events_per_sec;
      } else if (base_eps > 0) {
        std::printf("  %-18s speedup vs shards=1: %.2fx\n", "",
                    r.events_per_sec / base_eps);
      }
      shard_rows.push_back(row_json(r));
    }
  }

  json::Object doc;
  doc["bench"] = "engine_throughput";
  doc["hardware_concurrency"] =
      static_cast<std::int64_t>(std::thread::hardware_concurrency());
  // Shard speedups only materialize with real cores: on a 1-vCPU
  // container the workers time-slice one core and the sweep measures
  // barrier overhead, not parallelism. The recorded rows are honest for
  // the host they ran on; compare like with like.
  doc["host_note"] =
      "shard_sweep speedup requires >= `shards` physical cores; on a "
      "single-vCPU host shards>1 rows measure synchronization overhead "
      "only";
  doc["tor_scaling"] = std::move(tor_rows);
  doc["threshold_sweep"] = std::move(threshold_rows);
  doc["shard_sweep"] = std::move(shard_rows);
  FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out.c_str());
    return 1;
  }
  const std::string text = json::Value(std::move(doc)).dump(2);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
