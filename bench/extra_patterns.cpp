// Extra (beyond the paper's figures): classic pattern stress — permutation,
// incast, and all-to-all rounds across representative architectures. A
// downstream-user benchmark for comparing designs on the geometries ML and
// storage workloads generate.
#include <cstdio>
#include <functional>

#include "arch/arch.h"
#include "bench/bench_util.h"
#include "workload/patterns.h"

using namespace oo;
using namespace oo::literals;

namespace {

SimTime run_pattern(
    arch::Instance& inst,
    std::vector<std::tuple<HostId, HostId, std::int64_t>> flows) {
  SimTime round = SimTime::zero();
  transport::FlowTransferConfig cfg;
  cfg.window = 256;
  cfg.rto = SimTime::millis(8);
  workload::PatternRun run(*inst.net, std::move(flows), cfg,
                           [&](SimTime t) { round = t; });
  run.start();
  inst.run_for(2_s);
  return round;
}

void bench_arch(const char* label,
                const std::function<arch::Instance()>& make) {
  Rng rng(11);
  auto perm = [&]() {
    auto inst = make();
    return run_pattern(inst,
                       workload::permutation_flows(8, 1, 2 << 20, rng));
  }();
  auto incast = [&]() {
    auto inst = make();
    return run_pattern(inst, workload::incast_flows(8, 0, 2 << 20));
  }();
  auto a2a = [&]() {
    auto inst = make();
    return run_pattern(inst, workload::all_to_all_flows(8, 1, 256 << 10));
  }();
  auto fmt = [](SimTime t) {
    return t == SimTime::zero() ? std::string("timeout") : t.str();
  };
  std::printf("  %-18s permutation=%-10s incast=%-10s all-to-all=%-10s\n",
              label, fmt(perm).c_str(), fmt(incast).c_str(),
              fmt(a2a).c_str());
}

}  // namespace

int main() {
  bench::banner(
      "Extra: pattern stress (8 hosts, 2 MB permutation/incast, 256 KB "
      "all-to-all)",
      "Clos fastest everywhere; rotor designs pay circuit duty on "
      "permutation, serialize incast at the sink's circuit-time, and "
      "shine on all-to-all (rotors are built for uniform load)");

  arch::Params p;
  p.tors = 8;
  p.hosts_per_tor = 1;
  p.slice = 100_us;
  p.uplinks = 2;

  bench_arch("clos", [&]() { return arch::make_clos(p); });
  bench_arch("rotornet-direct", [&]() {
    return arch::make_rotornet(p, arch::RotorRouting::Direct);
  });
  bench_arch("rotornet-ucmp", [&]() {
    return arch::make_rotornet(p, arch::RotorRouting::Ucmp);
  });
  bench_arch("opera-bulk", [&]() { return arch::make_opera(p, true); });
  return 0;
}
