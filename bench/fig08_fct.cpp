// Fig. 8 — Case I: realistic side-by-side comparison of architectures.
// (a) Mice: Memcached 4.2 KB SETs, 1 server + 7 clients on 8 ToRs.
// (b) Elephants: Gloo-style ring allreduce over all 8 hosts.
// Architectures: Clos, c-Through, Jupiter (TA); Mordia (slotted TA);
// RotorNet-VLB, Opera, RotorNet-UCMP (TO).
#include <cstdio>
#include <functional>
#include <vector>

#include "arch/arch.h"
#include "bench/bench_util.h"
#include "workload/allreduce.h"
#include "workload/kv.h"

using namespace oo;
using namespace oo::literals;

namespace {

struct ArchCase {
  std::string label;
  std::function<arch::Instance()> make;
};

std::vector<ArchCase> cases(const arch::Params& p, bool bulk) {
  using arch::RotorRouting;
  return {
      {"clos", [p] { return arch::make_clos(p); }},
      {"c-through", [p] { return arch::make_cthrough(p); }},
      {"jupiter",
       [p] {
         arch::Params q = p;
         q.collect_interval = SimTime::millis(60);  // infrequent (24h-like)
         return arch::make_jupiter(q);
       }},
      {"mordia", [p] { return arch::make_mordia(p); }},
      {"rotornet-vlb",
       [p] { return arch::make_rotornet(p, RotorRouting::Vlb); }},
      // Opera segregates classes: expander plane for mice, direct plane
      // for bulk (its own design).
      {"opera", [p, bulk] { return arch::make_opera(p, bulk); }},
      {"rotornet-ucmp",
       [p] { return arch::make_rotornet(p, RotorRouting::Ucmp); }},
  };
}

}  // namespace

int main() {
  arch::Params p;
  p.tors = 8;
  p.hosts_per_tor = 1;
  // The testbed's 400 Gbps ToR uplink appears as multiple 100G lanes.
  p.uplinks = 2;
  p.slice = 100_us;
  p.collect_interval = 10_ms;
  p.reconfig_delay = 1_ms;  // MEMS scaled to the simulated horizon

  bench::banner(
      "Fig. 8(a): mice FCT (Memcached SETs) across architectures",
      "c-Through ~ Clos; Jupiter low; Mordia low median / long tail; "
      "RotorNet(VLB) long circuit-wait tail; Opera low; UCMP lowest of TO");
  for (auto& c : cases(p, /*bulk=*/false)) {
    auto inst = c.make();
    std::vector<HostId> clients;
    for (HostId h = 1; h < 8; ++h) clients.push_back(h);
    workload::KvWorkload kv(*inst.net, 0, clients, 2_ms);
    kv.start();
    inst.run_for(250_ms);
    kv.stop();
    bench::fct_row(c.label, kv.fct_us());
  }

  bench::banner(
      "Fig. 8(b): elephant FCT (ring allreduce) across architectures",
      "TA (c-Through/Jupiter/Mordia) ~ Clos; RotorNet/Opera ~2x (50% duty); "
      "UCMP between");
  const std::vector<std::int64_t> sizes = {800 << 10, 4 << 20, 20 << 20};
  for (auto& c : cases(p, /*bulk=*/true)) {
    std::printf("  %-22s", c.label.c_str());
    for (const auto bytes : sizes) {
      auto inst = c.make();
      std::vector<HostId> ring;
      for (HostId h = 0; h < 8; ++h) ring.push_back(h);
      SimTime total = SimTime::zero();
      auto tcp = workload::RingAllreduce::default_tcp();
      if (c.label == "rotornet-vlb") {
        // VLB sprays per packet; rotor designs assume reordering-tolerant
        // transport, approximated by an effectively disabled dupack FR.
        tcp.dupack_threshold = 64;
      }
      workload::RingAllreduce ar(*inst.net, ring, bytes,
                                 [&](SimTime t) { total = t; }, tcp);
      ar.start();
      inst.run_for(3_s);
      if (total == SimTime::zero()) {
        std::printf("  %8s@%.1fMB", "timeout",
                    static_cast<double>(bytes) / 1e6);
      } else {
        std::printf("  %7.2fms@%.1fMB", total.ms(),
                    static_cast<double>(bytes) / 1e6);
      }
    }
    std::printf("\n");
  }
  return 0;
}
