// Fig. 8 — Case I: realistic side-by-side comparison of architectures.
// (a) Mice: Memcached 4.2 KB SETs, 1 server + 7 clients on 8 ToRs.
// (b) Elephants: Gloo-style ring allreduce over all 8 hosts.
// Architectures: Clos, c-Through, Jupiter (TA); Mordia (slotted TA);
// RotorNet-VLB, Opera, RotorNet-UCMP (TO).
//
// Both sweeps are campaign specs executed by the runner (src/runner/):
// each architecture point is an isolated parallel run, and the same specs
// (examples/specs/fig08_*.json) regenerate the figure from the campaign
// CLI. Per-architecture quirks live in spec patches: Jupiter's slow
// control loop, RotorNet-VLB's reordering-tolerant transport (an
// effectively disabled dupack FR, since VLB sprays per packet).
#include <cstdio>
#include <string>

#include "bench/bench_util.h"

using namespace oo;

namespace {

const char* kArchesMice[] = {"clos",         "cthrough", "jupiter",
                             "mordia",       "rotornet-vlb",
                             "opera",        "rotornet-ucmp"};
const char* kArchesBulk[] = {"clos",         "cthrough", "jupiter",
                             "mordia",       "rotornet-vlb",
                             "opera-bulk",   "rotornet-ucmp"};

json::Object fig08_fixed() {
  json::Object fixed;
  fixed["tors"] = 8;
  fixed["hosts"] = 1;
  // The testbed's 400 Gbps ToR uplink appears as multiple 100G lanes.
  fixed["uplinks"] = 2;
  fixed["slice_us"] = 100.0;
  fixed["collect_interval_ms"] = 10.0;
  fixed["reconfig_delay_ms"] = 1.0;  // MEMS scaled to the simulated horizon
  fixed["net_seed"] = 1;
  return fixed;
}

// Jupiter collects infrequently (the paper's 24 h control loop, scaled).
runner::CampaignSpec::Patch jupiter_patch() {
  runner::CampaignSpec::Patch p;
  p.match["arch"] = "jupiter";
  p.set["collect_interval_ms"] = 60.0;
  return p;
}

std::string arch_label(const runner::RunRecord& rec) {
  std::string label = rec.params.at("arch").as_string();
  if (label == "opera-bulk") return "opera";
  if (label == "cthrough") return "c-through";  // the paper's spelling
  return label;
}

}  // namespace

int main() {
  bench::banner(
      "Fig. 8(a): mice FCT (Memcached SETs) across architectures",
      "c-Through ~ Clos; Jupiter low; Mordia low median / long tail; "
      "RotorNet(VLB) long circuit-wait tail; Opera low; UCMP lowest of TO");
  {
    runner::CampaignSpec spec;
    spec.name = "fig08_mice";
    spec.experiment = "fct";
    spec.fixed = fig08_fixed();
    spec.fixed["duration_ms"] = 250;
    spec.fixed["kv_interval_ms"] = 2.0;
    json::Array arches;
    for (const char* a : kArchesMice) arches.emplace_back(a);
    spec.grid["arch"] = arches;
    spec.patches.push_back(jupiter_patch());

    auto engine = bench::run_campaign(spec);
    for (const auto& rec : engine.records()) {
      bench::fct_row(arch_label(rec), rec.result);
    }
  }

  bench::banner(
      "Fig. 8(b): elephant FCT (ring allreduce) across architectures",
      "TA (c-Through/Jupiter/Mordia) ~ Clos; RotorNet/Opera ~2x (50% duty); "
      "UCMP between");
  {
    runner::CampaignSpec spec;
    spec.name = "fig08_elephants";
    spec.experiment = "allreduce";
    spec.fixed = fig08_fixed();
    spec.fixed["duration_ms"] = 3000;
    json::Array arches, sizes;
    for (const char* a : kArchesBulk) arches.emplace_back(a);
    for (const std::int64_t b :
         {std::int64_t{800 << 10}, std::int64_t{4 << 20},
          std::int64_t{20 << 20}}) {
      sizes.emplace_back(b);
    }
    spec.grid["arch"] = arches;
    spec.grid["bytes"] = sizes;
    spec.patches.push_back(jupiter_patch());
    runner::CampaignSpec::Patch vlb;
    vlb.match["arch"] = "rotornet-vlb";
    vlb.set["dupack_threshold"] = 64;
    spec.patches.push_back(vlb);

    auto engine = bench::run_campaign(spec);
    // Axes iterate sorted by name, "bytes" fastest: records group into
    // one row of three sizes per architecture.
    const auto& records = engine.records();
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (i % 3 == 0) {
        std::printf("  %-22s", arch_label(records[i]).c_str());
      }
      const auto& r = records[i].result;
      const double mb =
          static_cast<double>(records[i].params.at("bytes").as_int()) / 1e6;
      if (r.at("done").as_bool()) {
        std::printf("  %7.2fms@%.1fMB", r.at("total_ms").as_double(), mb);
      } else {
        std::printf("  %8s@%.1fMB", "timeout", mb);
      }
      if (i % 3 == 2) std::printf("\n");
    }
  }
  return 0;
}
