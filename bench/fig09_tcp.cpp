// Fig. 9 — Case II: transport-layer investigation. Long-lived TCP flows on
// Clos, RotorNet with direct-circuit routing (host flow pausing), RotorNet
// with VLB, and hybrid RotorNet (100G optical + 10G electrical), with the
// dupack threshold at the default 3 and raised to 5.
//
// The direct/hybrid rows use the paper's 50%-duty configuration: a 2-slice
// schedule where the measured pair's circuit is up every other slice.
#include <cstdio>
#include <memory>

#include "arch/arch.h"
#include "bench/bench_util.h"
#include "core/controller.h"
#include "routing/ta_routing.h"
#include "routing/to_routing.h"
#include "services/circuit_gate.h"
#include "transport/tcp_lite.h"
#include "transport/tdtcp.h"

using namespace oo;
using namespace oo::literals;

namespace {

struct Result {
  double gbps;
  std::int64_t reorders;
  std::int64_t fast_retx;
};

void row(const char* label, const Result& r) {
  std::printf("  %-28s %7.1f Gbps   reorder events=%6lld   fast-retx=%4lld\n",
              label, r.gbps, static_cast<long long>(r.reorders),
              static_cast<long long>(r.fast_retx));
}

Result measure(core::Network& net, int dupack, HostId src, HostId dst,
               SimTime horizon) {
  transport::TcpConfig cfg;
  cfg.dupack_threshold = dupack;
  cfg.app_rate_cap = 40e9;  // iperf3 is CPU-bound at ~40 Gbps (§6)
  transport::TcpLite tcp(net, src, dst, cfg);
  tcp.start();
  net.sim().run_until(net.sim().now() + horizon);
  return Result{tcp.goodput_bps() / 1e9, tcp.reorder_events(),
                tcp.fast_retransmits()};
}

// 4 ToRs, 2-slice schedule: the 0<->2 circuit is up in slice 0 only (50%
// duty), the complementary matching in slice 1.
std::unique_ptr<core::Network> make_half_duty(bool hybrid) {
  core::NetworkConfig cfg;
  cfg.num_tors = 4;
  cfg.calendar_mode = true;
  // Tiny vma segment queue: the application blocks almost immediately when
  // its circuit is down and does not "catch up" afterwards (CPU-bound
  // iperf) — the paper's duty-cycle-proportional throughput.
  cfg.host_segment_queue = 64 << 10;
  // Four calendar days over a 2-slice cycle (a multiple of the period keeps
  // queue->slice mapping consistent): packets that cannot fit in the
  // closing window defer a full cycle instead of dropping.
  cfg.calendar_queues = 4;
  cfg.congestion_response = core::CongestionResponse::Defer;
  if (hybrid) cfg.electrical_bw = 10e9;
  optics::Schedule sched(4, 1, 2, 100_us);
  sched.add_circuit({0, 0, 2, 0, 0});
  sched.add_circuit({1, 0, 3, 0, 0});
  sched.add_circuit({0, 0, 3, 0, 1});
  sched.add_circuit({1, 0, 2, 0, 1});
  auto net = std::make_unique<core::Network>(cfg, sched,
                                             optics::ocs_emulated());
  core::Controller ctl(*net);
  std::vector<core::Path> paths;
  if (!hybrid) {
    paths = routing::direct_to(sched);
  } else {
    // TDTCP-style time division: ride the 100G circuit while it is up,
    // fall back to the 10G electrical fabric in the other slices. The
    // reordering Fig. 9(b) counts comes from slow electrical stragglers
    // being overtaken at each transition.
    for (NodeId n = 0; n < 4; ++n) {
      for (NodeId d = 0; d < 4; ++d) {
        if (n == d) continue;
        for (SliceId s = 0; s < 2; ++s) {
          core::Path p;
          p.dst = d;
          p.start_slice = s;
          bool live = false;
          for (PortId u = 0; u < sched.uplinks(); ++u) {
            if (auto peer = sched.peer(n, u, s); peer && peer->node == d) {
              p.hops.push_back(core::PathHop{n, u, s});
              live = true;
              break;
            }
          }
          if (!live) {
            p.hops.push_back(
                core::PathHop{n, core::kElectricalEgress, kAnySlice});
          }
          paths.push_back(std::move(p));
        }
      }
    }
  }
  const bool ok = ctl.deploy_routing(paths, core::LookupMode::PerHop,
                                     core::MultipathMode::None);
  if (!ok) std::fprintf(stderr, "deploy failed: %s\n", ctl.last_error().c_str());
  net->start();
  return net;
}

}  // namespace

int main() {
  bench::banner(
      "Fig. 9: TCP throughput and packet reordering (iperf-style flows)",
      "Clos ~40G (CPU bound); direct ~half (50% duty) with no reordering; "
      "VLB low with heavy reordering; hybrid below direct at dupack=3, "
      "recovers toward ~25G with dupack=5 as reordering is masked");

  for (int dupack : {3, 5}) {
    std::printf("--- dupack threshold = %d ---\n", dupack);
    {
      arch::Params p;
      p.tors = 4;
      auto inst = arch::make_clos(p);
      row("clos", measure(*inst.net, dupack, 0, 2, 60_ms));
    }
    {
      auto net = make_half_duty(false);
      services::CircuitGate gate(*net);
      gate.gate(0, 2);
      gate.start();
      row("rotornet-direct (paused)", measure(*net, dupack, 0, 2, 60_ms));
    }
    {
      arch::Params p;
      p.tors = 8;
      p.slice = 100_us;
      auto inst = arch::make_rotornet(p, arch::RotorRouting::Vlb);
      row("rotornet-vlb", measure(*inst.net, dupack, 0, 4, 60_ms));
    }
    {
      auto net = make_half_duty(true);
      row("rotornet-hybrid (100G+10G)", measure(*net, dupack, 0, 2, 60_ms));
    }
    {
      // reTCP on the same hybrid: cwnd rescaled by the 10x bandwidth ratio
      // at each reconfiguration instead of re-converging.
      auto net = make_half_duty(true);
      transport::TcpConfig cfg;
      cfg.dupack_threshold = dupack;
      cfg.app_rate_cap = 40e9;
      cfg.retcp_bandwidth_ratio = 10.0;
      transport::TcpLite tcp(*net, 0, 2, cfg);
      tcp.start();
      net->sim().run_until(net->sim().now() + SimTime::millis(60));
      row("rotornet-hybrid + reTCP",
          Result{tcp.goodput_bps() / 1e9, tcp.reorder_events(),
                 tcp.fast_retransmits()});
    }
    {
      // TDTCP-lite on the same hybrid: per-phase congestion windows keep
      // the fast optical phase's window intact when electrical stragglers
      // trigger retransmits (the transport-research use case of §6).
      auto net = make_half_duty(true);
      transport::TcpConfig cfg;
      cfg.dupack_threshold = dupack;
      cfg.app_rate_cap = 40e9;
      cfg.init_cwnd = 32;  // phases ramp independently; start them warm
      transport::TdtcpLite tcp(*net, 0, 2, cfg);
      tcp.start();
      net->sim().run_until(net->sim().now() + SimTime::millis(60));
      row("rotornet-hybrid + TDTCP",
          Result{tcp.goodput_bps() / 1e9, tcp.reorder_events(),
                 tcp.fast_retransmits()});
    }
  }
  return 0;
}
