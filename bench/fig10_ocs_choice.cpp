// Fig. 10 — Case III: choice of optical hardware. RotorNet mice FCT as a
// function of the OCS technology's supported slice duration (2 us AWGR,
// 20 us rotor, 100 us / 200 us liquid-crystal-class), under VLB vs UCMP.
#include <cstdio>

#include "arch/arch.h"
#include "bench/bench_util.h"
#include "workload/kv.h"

using namespace oo;
using namespace oo::literals;

namespace {

PercentileSampler run_kv(arch::Instance& inst, SimTime horizon) {
  std::vector<HostId> clients;
  for (HostId h = 1; h < inst.net->num_hosts(); ++h) clients.push_back(h);
  workload::KvWorkload kv(*inst.net, 0, clients, 2_ms);
  kv.start();
  inst.run_for(horizon);
  kv.stop();
  return kv.fct_us();
}

}  // namespace

int main() {
  bench::banner(
      "Fig. 10: mice FCT on RotorNet vs OCS slice duration",
      "VLB tail grows with slice duration (waits ~a cycle at the worst); "
      "UCMP flat-ish, degraded at 2 us (missed slices / deferrals), sweet "
      "spot near 100 us");

  struct OcsPoint {
    const char* name;
    SimTime slice;
  };
  const OcsPoint points[] = {
      {"awgr-2us", 2_us},
      {"rotor-20us", 20_us},
      {"lc-100us", 100_us},
      {"lc-200us", 200_us},
  };

  for (auto routing : {arch::RotorRouting::Vlb, arch::RotorRouting::Ucmp}) {
    std::printf("--- %s ---\n",
                routing == arch::RotorRouting::Vlb ? "VLB" : "UCMP");
    for (const auto& pt : points) {
      arch::Params p;
      p.tors = 8;
      p.hosts_per_tor = 1;
      p.slice = pt.slice;
      auto inst = arch::make_rotornet(p, routing);
      const auto fct = run_kv(inst, 250_ms);
      bench::fct_row(pt.name, fct);
    }
  }
  return 0;
}
