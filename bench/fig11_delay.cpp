// Fig. 11 — queue-management efficiency: ToR-to-ToR delay through the
// emulated (cut-through) optical fabric for different packet sizes, from
// queue-rotation trigger on the sender to Rx at the receiver. The paper
// measures 1287-1324 ns with a 34 ns spread that the guardband must absorb.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "eventsim/simulator.h"
#include "optics/fabric.h"

using namespace oo;
using namespace oo::literals;

int main() {
  bench::banner(
      "Fig. 11: switch-to-switch delay vs packet size",
      "min 1287 ns, max 1324 ns (34 ns spread), size-independent thanks to "
      "cut-through forwarding");

  optics::Schedule sched(2, 1, 1, SimTime::seconds(3600));
  sched.add_circuit({0, 0, 1, 0, kAnySlice});

  std::printf("  %-10s %-10s %-10s %-10s\n", "bytes", "min(ns)", "mean(ns)",
              "max(ns)");
  for (std::int64_t size : {64, 256, 512, 1500, 4096, 9000}) {
    sim::Simulator sim;
    optics::OpticalFabric fab(sim, sched, optics::ocs_emulated(), Rng{7});
    RunningStats delay_ns;
    fab.attach(0, [](net::Packet&&, PortId) {});
    fab.attach(1, [&](net::Packet&& p, PortId) {
      // probe_echo carries the launch-trigger timestamp.
      delay_ns.add(static_cast<double>((sim.now() - p.probe_echo).ns()));
    });
    // Line-rate packet train (on-chip packet generator style): the delay is
    // measured from the rotation/launch trigger to Rx MAC arrival.
    for (int i = 0; i < 5000; ++i) {
      sim.schedule_at(SimTime::micros(i), [&, size]() {
        net::Packet p;
        p.size_bytes = size;
        p.probe_echo = sim.now();
        // Cut-through: the fabric latches the header; serialization overlaps
        // with forwarding, so tx_end ~ tx_start at the fabric's view.
        fab.transmit(0, 0, std::move(p), sim.now(), sim.now());
      });
    }
    sim.run();
    std::printf("  %-10lld %-10.0f %-10.1f %-10.0f\n",
                static_cast<long long>(size), delay_ns.min(), delay_ns.mean(),
                delay_ns.max());
  }
  std::printf(
      "\n  spread (max-min) feeds the guardband derivation (see min_slice)\n");
  return 0;
}
