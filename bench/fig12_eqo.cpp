// Fig. 12 — queue-occupancy-estimation accuracy vs update interval. A
// calendar queue is filled by a mix of line-rate and bursty traffic and
// drained at line rate; the ingress-pipeline estimate (incremented on
// enqueue, decremented one line-rate quantum per generator tick) is compared
// against ground truth. The paper reports <725 B error at 50 ns intervals.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/eqo.h"

using namespace oo;
using namespace oo::literals;

int main() {
  bench::banner(
      "Fig. 12: EQO estimation error vs update interval",
      "error shrinks with the interval; 50 ns -> under one MTU (725 B) at "
      "1.3% pipeline overhead (20 Mpps on a 1.5 Bpps pipeline)");

  const BitsPerSec bw = 100e9;
  std::printf("  %-12s %-12s %-12s %-12s %-10s\n", "interval", "mean(B)",
              "p99.9(B)", "max(B)", "pktgen-overhead");
  // Intervals chosen so bandwidth x interval is an integer byte quantum at
  // 100 Gbps (hardware programs whole bytes per decrement).
  for (std::int64_t interval_ns : {40, 50, 100, 200, 400, 800}) {
    core::QueueOccupancyEstimator eqo(1, bw, SimTime::nanos(interval_ns));
    Rng rng(42);
    PercentileSampler err;
    std::int64_t truth = 0;
    SimTime last = 0_ns;
    SimTime now = 0_ns;
    // 200k arrival events: line-rate stream with superimposed bursts that
    // periodically fill and drain the queue (the paper's methodology).
    for (int i = 0; i < 200000; ++i) {
      const bool burst = (i / 2000) % 2 == 0;
      const std::int64_t gap =
          burst ? 40 + static_cast<std::int64_t>(rng.uniform(40))
                : 150 + static_cast<std::int64_t>(rng.uniform(100));
      now += SimTime::nanos(gap);
      // Ground truth drains at exact line rate while occupied.
      const std::int64_t drained = bytes_in_ns((now - last).ns(), bw);
      truth = std::max<std::int64_t>(0, truth - drained);
      eqo.drain_window(0, last, now);
      last = now;
      const std::int64_t size = 64 + static_cast<std::int64_t>(rng.uniform(1436));
      truth += size;
      eqo.on_enqueue(0, size);
      err.add(static_cast<double>(eqo.error_vs(0, truth)));
    }
    // Pipeline overhead: one generator packet per interval vs 1.5 Bpps.
    const double pps = 1e9 / static_cast<double>(interval_ns);
    std::printf("  %-12s %-12.0f %-12.0f %-12.0f %6.2f%%\n",
                SimTime::nanos(interval_ns).str().c_str(), err.mean(),
                err.percentile(99.9), err.max(), pps / 1.5e9 * 100.0);
  }
  return 0;
}
