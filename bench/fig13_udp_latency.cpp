// Fig. 13 — emulation accuracy: continuous UDP RTT measurement on RotorNet
// (direct-circuit routing), OpenOptics' libvma host stack vs the kernel-UDP
// stack of "Realizing RotorNet". Expect stepped RTT levels from circuit
// waits and a much longer tail on the kernel stack.
#include <cstdio>

#include "arch/arch.h"
#include "bench/bench_util.h"
#include "transport/udp_probe.h"

using namespace oo;
using namespace oo::literals;

namespace {

void run(const char* label, core::HostStack stack) {
  arch::Params p;
  p.tors = 8;
  p.hosts_per_tor = 1;
  p.slice = 100_us;
  p.host_stack = stack;  // §5 host system: libvma vs kernel path
  auto inst = arch::make_rotornet(p, arch::RotorRouting::Direct);

  transport::UdpProbe probe(*inst.net, 0, 4, /*interval=*/50_us, 1500);
  probe.start();
  inst.run_for(400_ms);
  probe.stop();
  const auto& rtt = probe.rtts_us();
  std::printf("  %-22s n=%5zu  p10=%7.1f p50=%7.1f p90=%7.1f p99=%7.1f "
              "max=%8.1f us\n",
              label, rtt.count(), rtt.percentile(10), rtt.percentile(50),
              rtt.percentile(90), rtt.percentile(99), rtt.max());
  // CDF steps: RTT levels cluster at multiples of the circuit wait.
  std::printf("    cdf:");
  for (const auto& [x, q] : rtt.cdf(9)) {
    std::printf(" (%.0fus,%.2f)", x, q);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::banner(
      "Fig. 13: UDP RTT on RotorNet — OpenOptics (libvma) vs kernel stack",
      "similar stepped distributions (routing hops/circuit waits); "
      "OpenOptics lower RTTs and no long tail vs the kernel-UDP baseline");
  run("openoptics-libvma", core::HostStack::Libvma);
  run("kernel-udp (baseline)", core::HostStack::Kernel);
  return 0;
}
