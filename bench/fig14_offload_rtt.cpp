// Fig. 14 (Appx. A) — buffer-offloading RTT stability: 1500 B packets at
// 100 us intervals bounce between two hosts on one ToR (switch -> host ->
// switch turnaround). The paper's libvma implementation keeps 95% of RTTs
// within a 0.75 us band and inter-arrival deviation within +-0.25 us; the
// kernel module baseline is far noisier.
#include <cmath>
#include <cstdio>

#include "arch/arch.h"
#include "bench/bench_util.h"
#include "core/network.h"
#include "transport/udp_probe.h"

using namespace oo;
using namespace oo::literals;

namespace {

void run(const char* label, core::HostStack stack) {
  core::NetworkConfig cfg;
  cfg.num_tors = 2;
  cfg.hosts_per_tor = 2;
  cfg.calendar_mode = false;
  cfg.host_stack = stack;
  optics::Schedule sched(2, 1, 1, SimTime::seconds(3600));
  core::Network net(cfg, sched, optics::ocs_emulated());
  net.start();

  // Hosts 0 and 1 hang off ToR 0: the probe path is exactly the offload
  // path's host turnaround (down-link, stack, up-link) twice.
  transport::UdpProbe probe(net, 0, 1, 100_us, 1500);

  // Inter-arrival deviation from the 100 us send interval.
  PercentileSampler deviation_us;
  SimTime last_rx = SimTime::zero();
  net.host(0).bind_default([](core::Packet&&) {});
  probe.start();
  // Wrap the probe's flow sink to also record inter-arrival times: re-bind
  // after start is not possible, so sample RTT series instead.
  net.sim().run_until(500_ms);
  probe.stop();
  (void)last_rx;

  const auto& rtt = probe.rtts_us();
  const double band95 = rtt.percentile(97.5) - rtt.percentile(2.5);
  std::printf("  %-22s n=%5zu  median=%7.2fus  95%%-band=%6.2fus  "
              "max=%8.2fus\n",
              label, rtt.count(), rtt.median(), band95, rtt.max());
  // Deviation of each RTT from the median approximates the paper's
  // "distance to the 100 us interval" metric (fixed send cadence).
  std::printf("    p95 |rtt - median| = %.2f us\n",
              std::max(rtt.percentile(97.5) - rtt.median(),
                       rtt.median() - rtt.percentile(2.5)));
}

}  // namespace

int main() {
  bench::banner(
      "Fig. 14: offload host turnaround RTT stability (1500 B @ 100 us)",
      "libvma: 95% of RTTs within ~0.75 us variance, deviation within "
      "+-0.25 us of the interval; kernel baseline much worse");
  run("libvma", core::HostStack::Libvma);
  run("kernel", core::HostStack::Kernel);
  return 0;
}
