// Robustness bench: gray-failure detection by the evidence-based health
// scanner. Four fault kinds — an aging transceiver (ber_ramp), a dirty
// port pair (gray_pair), a lying telemetry reporter (telemetry_skew), and
// an agent that acks installs it never applies (silent_install) — are
// swept across severities on an 8-ToR hybrid rotor. For every faulted row
// the scanner must localize the true cause (right kind, right port, right
// peer) with zero off-target suspicions; a clean-seed soak across five
// network seeds must stay perfectly quiet. Detection latency (fault start
// to Suspect) and remediation latency (fault start to Quarantine) are the
// tracked figures, written to BENCH_gray.json so successive PRs can diff
// detector regressions the way BENCH_engine.json tracks engine throughput.
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"

using namespace oo;

namespace {

runner::CampaignSpec fault_sweep_spec() {
  runner::CampaignSpec spec;
  spec.name = "gray_detection";
  spec.experiment = "gray_detection";
  spec.fixed["arch"] = "rotornet-direct-hybrid";
  spec.fixed["tors"] = 8;
  spec.fixed["hosts"] = 1;
  spec.fixed["uplinks"] = 1;
  spec.fixed["net_seed"] = 7;
  spec.fixed["fault_seed"] = 2024;
  spec.fixed["target"] = 2;
  spec.fixed["port"] = 0;
  spec.fixed["peer"] = 5;
  spec.fixed["fault_at_us"] = 2000.0;
  spec.fixed["fault_window_us"] = 20000.0;
  spec.fixed["duration_ms"] = 30;
  // Operating point: the lowest severity in the sweep corrupts ~7% of
  // frames, so the anomaly bar sits at 3% — comfortably below the weakest
  // fault yet far above clean-run jitter (the soak below runs at the same
  // threshold to back that claim).
  spec.fixed["suspect_score"] = 0.03;
  json::Array faults, severities;
  for (const char* f :
       {"ber_ramp", "gray_pair", "silent_install", "telemetry_skew"}) {
    faults.emplace_back(std::string(f));
  }
  for (const double s : {0.3, 0.5, 0.7}) severities.emplace_back(s);
  // Axes iterate sorted by key: fault outer, severity inner.
  spec.grid["fault"] = faults;
  spec.grid["severity"] = severities;
  return spec;
}

runner::CampaignSpec clean_soak_spec() {
  runner::CampaignSpec spec;
  spec.name = "gray_detection_clean";
  spec.experiment = "gray_detection";
  spec.fixed["arch"] = "rotornet-direct-hybrid";
  spec.fixed["tors"] = 8;
  spec.fixed["hosts"] = 1;
  spec.fixed["uplinks"] = 1;
  spec.fixed["fault"] = "none";
  spec.fixed["duration_ms"] = 30;
  spec.fixed["suspect_score"] = 0.03;
  json::Array seeds;
  for (const int s : {1, 7, 11, 42, 2024}) seeds.emplace_back(s);
  spec.grid["net_seed"] = seeds;
  return spec;
}

std::int64_t geti(const json::Object& r, const char* k) {
  return r.at(k).as_int();
}

json::Object row_json(const runner::RunRecord& rec) {
  const json::Object& r = rec.result;
  json::Object o;
  o["fault"] = r.at("fault");
  o["severity"] = r.at("severity");
  o["detected"] = r.at("detected");
  o["suspect_us"] = r.at("suspect_us");
  o["quarantine_us"] = r.at("quarantine_us");
  o["blame_cause"] = r.at("blame_cause");
  o["blame_port"] = r.at("blame_port");
  o["blame_peer"] = r.at("blame_peer");
  o["localized"] = r.at("localized");
  o["false_positives"] = r.at("false_positives");
  o["quarantines"] = r.at("quarantines");
  o["readmissions"] = r.at("readmissions");
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "BENCH_gray.json";
  bench::banner(
      "Gray-failure detection: evidence-based health scanner vs. four "
      "silent fault kinds (8-ToR hybrid rotor, 100 us slices)",
      "every kind localized from observable symptoms alone — conservation "
      "deltas, tomography, targeted probes, claim-vs-behavior — with zero "
      "false positives; clean seeds never suspect anyone");

  std::printf("  %-16s %-9s %10s %13s %-16s %9s %5s\n", "fault", "severity",
              "detect(us)", "quarantine(us)", "blame", "FPs", "ok");

  const auto sweep = fault_sweep_spec();
  auto engine = bench::run_campaign(sweep);

  bool ok = true;
  json::Array fault_rows;
  for (const auto& rec : engine.records()) {
    const json::Object& r = rec.result;
    const bool localized = r.at("localized").as_bool();
    const bool clean = geti(r, "false_positives") == 0;
    std::printf("  %-16s %-9.1f %10.1f %13.1f %-16s %9lld %5s\n",
                r.at("fault").as_string().c_str(),
                r.at("severity").as_double(), r.at("suspect_us").as_double(),
                r.at("quarantine_us").as_double(),
                r.at("blame_cause").as_string().c_str(),
                static_cast<long long>(geti(r, "false_positives")),
                localized && clean ? "yes" : "NO");
    ok = ok && localized && clean && r.at("detected").as_bool();
    fault_rows.push_back(row_json(rec));
  }

  std::printf("\nclean-seed soak (no fault injected):\n");
  const auto soak = clean_soak_spec();
  auto clean_engine = bench::run_campaign(soak);
  json::Array clean_rows;
  for (const auto& rec : clean_engine.records()) {
    const json::Object& r = rec.result;
    const std::int64_t suspects = geti(r, "suspects");
    std::printf("  net_seed=%-6lld audits=%-6lld suspects=%lld %s\n",
                static_cast<long long>(rec.params.at("net_seed").as_int()),
                static_cast<long long>(geti(r, "audits")),
                static_cast<long long>(suspects),
                suspects == 0 ? "quiet" : "FALSE POSITIVE");
    ok = ok && suspects == 0 && geti(r, "false_positives") == 0;
    json::Object o;
    o["net_seed"] = rec.params.at("net_seed");
    o["audits"] = r.at("audits");
    o["suspects"] = r.at("suspects");
    clean_rows.push_back(std::move(o));
  }

  // Determinism: both campaigns replayed single-threaded must be
  // byte-identical — detection times, blame, and counters are pure
  // functions of (seed, params).
  auto replay = bench::run_campaign(sweep, /*jobs=*/1);
  auto clean_replay = bench::run_campaign(soak, /*jobs=*/1);
  if (engine.results_jsonl() != replay.results_jsonl() ||
      clean_engine.results_jsonl() != clean_replay.results_jsonl()) {
    std::printf("FAILED: --jobs %d and --jobs 1 campaigns diverged\n",
                bench::default_jobs());
    return 2;
  }
  std::printf("determinism: %d-run sweep + %d-run soak replayed "
              "byte-identical at --jobs 1\n",
              engine.summary().total, clean_engine.summary().total);

  json::Object doc;
  doc["bench"] = "gray_detection";
  doc["fault_sweep"] = std::move(fault_rows);
  doc["clean_soak"] = std::move(clean_rows);
  FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out.c_str());
    return 1;
  }
  const std::string text = json::Value(std::move(doc)).dump(2);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());

  if (!ok) {
    std::printf("FAILED: detection expectations not met\n");
    return 2;
  }
  std::printf("gray detection bench passed\n");
  return 0;
}
