// Invariant-monitor overhead smoke: runs the identical seeded traffic-
// engine workload (the one BENCH_engine.json tracks)
// with no monitor, with a monitor constructed but never started (every hot
// path hook is a null-check or an untaken branch — the "detached" cost
// contract), and with the monitor polling every 100 us of virtual time.
// Acceptance: detached is free (identical event count, wall within noise)
// and attached polling stays within a few percent; both configurations
// must land the exact same delivery/drop counters, since invariant checks
// are read-only by contract.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"

#include "arch/arch.h"
#include "bench/bench_util.h"
#include "chaos/invariants.h"
#include "runner/runner.h"
#include "traffic/engine.h"
#include "workload/traces.h"

using namespace oo;
using namespace oo::literals;

namespace {

struct RunResult {
  double wall_ms = 0;
  std::int64_t events = 0;
  std::int64_t delivered = 0;
  std::int64_t fabric_drops = 0;
  std::int64_t violations = 0;
};

enum class Mode { None, Detached, Attached };

RunResult run(Mode mode) {
  arch::Params p;
  p.tors = 8;
  p.hosts_per_tor = 2;
  p.uplinks = 2;
  p.seed = 7;
  auto inst = runner::make_arch("rotornet-direct", p);

  std::unique_ptr<chaos::InvariantMonitor> mon;
  if (mode != Mode::None) {
    mon = std::make_unique<chaos::InvariantMonitor>(*inst.net);
    mon->attach_controller(inst.ctl.get());
    if (mode == Mode::Attached) mon->start(100_us);
  }

  // The engine-throughput workload (BENCH_engine.json): a streaming
  // traffic engine driving every host, so poll cost is measured against a
  // realistic packet rate rather than an idle fabric.
  traffic::TrafficSpec spec;
  spec.sources = static_cast<std::int64_t>(inst.net->num_hosts()) * 64;
  spec.load = 0.3;
  spec.size.base = workload::trace_cdf(workload::TraceKind::KvStore);
  spec.size.hh_fraction = 0.05;
  spec.size.hh = workload::trace_cdf(workload::TraceKind::Hadoop);
  spec.burst.enabled = true;
  spec.seed = 11;
  traffic::TrafficEngine eng(*inst.net, std::move(spec));
  eng.start();

  const auto t0 = std::chrono::steady_clock::now();
  inst.run_for(40_ms);
  const auto t1 = std::chrono::steady_clock::now();
  eng.stop();

  RunResult r;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.events = inst.net->sim().events_executed();
  r.delivered = inst.net->optical().delivered();
  r.fabric_drops = inst.net->optical().total_drops();
  if (mon) {
    // check_now, not check_at_drain: a streaming engine never quiesces
    // (transport flows and resync beacons outlive the measured window), so
    // the exact conservation ledger doesn't apply here — it's covered by
    // tests/test_chaos.cpp and the chaos_fuzz experiment, which do drain.
    mon->check_now();
    r.violations = mon->total_violations();
    if (!mon->ok()) std::printf("%s", mon->report().c_str());
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "BENCH_engine.json";
  bench::banner("invariant-monitor overhead: detached / attached polling",
                "detached hooks are a null-check; polled checks a few %");

  run(Mode::None);  // warm up allocators and caches

  // Paired interleaved reps: rep i runs none/detached/attached back to
  // back and the overhead estimate is the MEDIAN of the per-rep wall
  // ratios. Pairing inside a rep cancels slow drift (CPU frequency
  // scaling, container throttling) because the compared runs are adjacent
  // in time; the median throws away steal-time outliers. The old
  // methodology — sequential per-mode blocks, best-of-3 each — let drift
  // bias whole blocks and charged a phantom +1.2 % to the detached mode,
  // whose hooks never even execute; on shared runners the block-to-block
  // noise floor is several percent, bigger than the budget under test.
  constexpr int kReps = 7;
  RunResult base, detached, attached;
  double base_ms = 1e300, detached_ms = 1e300, attached_ms = 1e300;
  std::vector<double> ratio_d, ratio_a;
  for (int i = 0; i < kReps; ++i) {
    const auto b = run(Mode::None);
    const auto d = run(Mode::Detached);
    const auto a = run(Mode::Attached);
    if (i == 0) {
      base = b;
      detached = d;
      attached = a;
    }
    base_ms = std::min(base_ms, b.wall_ms);
    detached_ms = std::min(detached_ms, d.wall_ms);
    attached_ms = std::min(attached_ms, a.wall_ms);
    ratio_d.push_back(d.wall_ms / b.wall_ms);
    ratio_a.push_back(a.wall_ms / b.wall_ms);
  }
  const auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double detached_pct = (median(ratio_d) - 1.0) * 100.0;
  const double attached_pct = (median(ratio_a) - 1.0) * 100.0;

  std::printf("  %-10s wall=%8.1f ms  events=%lld  (%.2f M events/s)\n",
              "none", base_ms, static_cast<long long>(base.events),
              static_cast<double>(base.events) / base_ms / 1e3);
  std::printf("  %-10s wall=%8.1f ms  events=%lld  (%+.1f%%)\n",
              "detached", detached_ms,
              static_cast<long long>(detached.events), detached_pct);
  std::printf("  %-10s wall=%8.1f ms  events=%lld  (%+.1f%%)\n",
              "attached", attached_ms,
              static_cast<long long>(attached.events), attached_pct);

  // Read-only contract: the monitor must never perturb simulation results.
  if (attached.delivered != base.delivered ||
      attached.fabric_drops != base.fabric_drops ||
      detached.delivered != base.delivered ||
      detached.events != base.events) {
    std::printf("FAIL: monitor perturbed the run "
                "(delivered %lld/%lld/%lld, events %lld/%lld)\n",
                static_cast<long long>(base.delivered),
                static_cast<long long>(detached.delivered),
                static_cast<long long>(attached.delivered),
                static_cast<long long>(base.events),
                static_cast<long long>(detached.events));
    return 2;
  }
  if (attached.violations != 0 || detached.violations != 0) {
    std::printf("FAIL: healthy workload tripped %lld violations\n",
                static_cast<long long>(attached.violations +
                                       detached.violations));
    return 2;
  }
  // Loose smoke bounds to survive noisy shared runners; the real budgets
  // (tracked in BENCH_engine.json) are 0% detached and <2% attached.
  if (detached_pct > 10.0 || attached_pct > 50.0) {
    std::printf("FAIL: overhead detached %.1f%% / attached %.1f%% "
                "exceeds smoke bound\n",
                detached_pct, attached_pct);
    return 2;
  }
  std::printf(
      "  detached %+.1f%%  attached %+.1f%% "
      "(median paired ratio over %d interleaved reps)\n",
      detached_pct, attached_pct, kReps);

  // Fold the measured rows into BENCH_engine.json next to the engine
  // throughput baseline (same workload, same file, diffable across PRs).
  json::Object root;
  {
    std::ifstream in(out);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      try {
        root = json::parse(ss.str()).as_object();
      } catch (const std::exception&) {
        root.clear();  // unreadable baseline: rewrite the section fresh
      }
    }
  }
  json::Object sec;
  sec["base_wall_ms"] = base_ms;
  sec["detached_wall_ms"] = detached_ms;
  sec["attached_wall_ms"] = attached_ms;
  sec["detached_overhead_pct"] = detached_pct;
  sec["attached_overhead_pct"] = attached_pct;
  sec["attached_extra_events"] = attached.events - base.events;
  sec["sim_events"] = base.events;
  sec["poll_interval_us"] = 100.0;
  sec["reps"] = static_cast<std::int64_t>(kReps);
  sec["method"] =
      "median of per-rep paired wall ratios; modes alternate within each "
      "rep so drift cancels";
  root["invariant_overhead"] = std::move(sec);
  std::ofstream of(out);
  if (of) {
    of << json::Value(std::move(root)).dump(2) << "\n";
    std::printf("  wrote %s\n", out.c_str());
  }
  std::printf("invariant overhead smoke passed\n");
  return 0;
}
