// Invariant-monitor overhead smoke: runs the identical seeded traffic-
// engine workload (the one BENCH_engine.json tracks)
// with no monitor, with a monitor constructed but never started (every hot
// path hook is a null-check or an untaken branch — the "detached" cost
// contract), and with the monitor polling every 100 us of virtual time.
// Acceptance: detached is free (identical event count, wall within noise)
// and attached polling stays within a few percent; both configurations
// must land the exact same delivery/drop counters, since invariant checks
// are read-only by contract.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"

#include "arch/arch.h"
#include "bench/bench_util.h"
#include "chaos/invariants.h"
#include "runner/runner.h"
#include "traffic/engine.h"
#include "workload/traces.h"

using namespace oo;
using namespace oo::literals;

namespace {

struct RunResult {
  double wall_ms = 0;
  std::int64_t events = 0;
  std::int64_t delivered = 0;
  std::int64_t fabric_drops = 0;
  std::int64_t violations = 0;
};

enum class Mode { None, Detached, Attached };

RunResult run(Mode mode) {
  arch::Params p;
  p.tors = 8;
  p.hosts_per_tor = 2;
  p.uplinks = 2;
  p.seed = 7;
  auto inst = runner::make_arch("rotornet-direct", p);

  std::unique_ptr<chaos::InvariantMonitor> mon;
  if (mode != Mode::None) {
    mon = std::make_unique<chaos::InvariantMonitor>(*inst.net);
    mon->attach_controller(inst.ctl.get());
    if (mode == Mode::Attached) mon->start(100_us);
  }

  // The engine-throughput workload (BENCH_engine.json): a streaming
  // traffic engine driving every host, so poll cost is measured against a
  // realistic packet rate rather than an idle fabric.
  traffic::TrafficSpec spec;
  spec.sources = static_cast<std::int64_t>(inst.net->num_hosts()) * 64;
  spec.load = 0.3;
  spec.size.base = workload::trace_cdf(workload::TraceKind::KvStore);
  spec.size.hh_fraction = 0.05;
  spec.size.hh = workload::trace_cdf(workload::TraceKind::Hadoop);
  spec.burst.enabled = true;
  spec.seed = 11;
  traffic::TrafficEngine eng(*inst.net, std::move(spec));
  eng.start();

  const auto t0 = std::chrono::steady_clock::now();
  inst.run_for(40_ms);
  const auto t1 = std::chrono::steady_clock::now();
  eng.stop();

  RunResult r;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.events = inst.net->sim().events_executed();
  r.delivered = inst.net->optical().delivered();
  r.fabric_drops = inst.net->optical().total_drops();
  if (mon) {
    // check_now, not check_at_drain: a streaming engine never quiesces
    // (transport flows and resync beacons outlive the measured window), so
    // the exact conservation ledger doesn't apply here — it's covered by
    // tests/test_chaos.cpp and the chaos_fuzz experiment, which do drain.
    mon->check_now();
    r.violations = mon->total_violations();
    if (!mon->ok()) std::printf("%s", mon->report().c_str());
  }
  return r;
}

double best_of(Mode mode, int reps) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const auto r = run(mode);
    if (r.wall_ms < best) best = r.wall_ms;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "BENCH_engine.json";
  bench::banner("invariant-monitor overhead: detached / attached polling",
                "detached hooks are a null-check; polled checks a few %");

  run(Mode::None);  // warm up allocators and caches

  const auto base = run(Mode::None);
  const auto detached = run(Mode::Detached);
  const auto attached = run(Mode::Attached);

  const double base_ms = best_of(Mode::None, 3);
  const double detached_ms = best_of(Mode::Detached, 3);
  const double attached_ms = best_of(Mode::Attached, 3);
  const double detached_pct = (detached_ms - base_ms) / base_ms * 100.0;
  const double attached_pct = (attached_ms - base_ms) / base_ms * 100.0;

  std::printf("  %-10s wall=%8.1f ms  events=%lld  (%.2f M events/s)\n",
              "none", base_ms, static_cast<long long>(base.events),
              static_cast<double>(base.events) / base_ms / 1e3);
  std::printf("  %-10s wall=%8.1f ms  events=%lld  (%+.1f%%)\n",
              "detached", detached_ms,
              static_cast<long long>(detached.events), detached_pct);
  std::printf("  %-10s wall=%8.1f ms  events=%lld  (%+.1f%%)\n",
              "attached", attached_ms,
              static_cast<long long>(attached.events), attached_pct);

  // Read-only contract: the monitor must never perturb simulation results.
  if (attached.delivered != base.delivered ||
      attached.fabric_drops != base.fabric_drops ||
      detached.delivered != base.delivered ||
      detached.events != base.events) {
    std::printf("FAIL: monitor perturbed the run "
                "(delivered %lld/%lld/%lld, events %lld/%lld)\n",
                static_cast<long long>(base.delivered),
                static_cast<long long>(detached.delivered),
                static_cast<long long>(attached.delivered),
                static_cast<long long>(base.events),
                static_cast<long long>(detached.events));
    return 2;
  }
  if (attached.violations != 0 || detached.violations != 0) {
    std::printf("FAIL: healthy workload tripped %lld violations\n",
                static_cast<long long>(attached.violations +
                                       detached.violations));
    return 2;
  }
  // Loose smoke bounds to survive noisy shared runners; the real budgets
  // (tracked in BENCH_engine.json) are 0% detached and <2% attached.
  if (detached_pct > 10.0 || attached_pct > 50.0) {
    std::printf("FAIL: overhead detached %.1f%% / attached %.1f%% "
                "exceeds smoke bound\n",
                detached_pct, attached_pct);
    return 2;
  }
  std::printf("  detached %+.1f%%  attached %+.1f%% (best of 3)\n",
              detached_pct, attached_pct);

  // Fold the measured rows into BENCH_engine.json next to the engine
  // throughput baseline (same workload, same file, diffable across PRs).
  json::Object root;
  {
    std::ifstream in(out);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      try {
        root = json::parse(ss.str()).as_object();
      } catch (const std::exception&) {
        root.clear();  // unreadable baseline: rewrite the section fresh
      }
    }
  }
  json::Object sec;
  sec["base_wall_ms"] = base_ms;
  sec["detached_wall_ms"] = detached_ms;
  sec["attached_wall_ms"] = attached_ms;
  sec["detached_overhead_pct"] = detached_pct;
  sec["attached_overhead_pct"] = attached_pct;
  sec["attached_extra_events"] = attached.events - base.events;
  sec["sim_events"] = base.events;
  sec["poll_interval_us"] = 100.0;
  root["invariant_overhead"] = std::move(sec);
  std::ofstream of(out);
  if (of) {
    of << json::Value(std::move(root)).dump(2) << "\n";
    std::printf("  wrote %s\n", out.c_str());
  }
  std::printf("invariant overhead smoke passed\n");
  return 0;
}
