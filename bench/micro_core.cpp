// Microbenchmarks (google-benchmark) for the hot data-plane and
// control-plane primitives: time-flow table lookup, calendar-queue
// operations, EQO updates, event-engine throughput, and routing
// computation for a full rotor cycle.
#include <benchmark/benchmark.h>

#include "core/calendar_queue.h"
#include "core/eqo.h"
#include "core/time_flow_table.h"
#include "eventsim/simulator.h"
#include "routing/time_expanded.h"
#include "routing/to_routing.h"
#include "topo/round_robin.h"

using namespace oo;
using namespace oo::literals;

namespace {

core::TimeFlowTable make_table(int slices, int dsts) {
  core::TimeFlowTable t;
  for (SliceId s = 0; s < slices; ++s) {
    for (NodeId d = 0; d < dsts; ++d) {
      core::TftEntry e;
      e.match = core::TftMatch{s, kInvalidNode, d};
      e.actions.push_back(
          core::TftAction{{net::SourceHop{d % 6, (s + d) % slices}}, 1.0});
      t.add(std::move(e));
    }
  }
  return t;
}

void BM_TftLookupHit(benchmark::State& state) {
  const auto t = make_table(107, 108);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto* e = t.lookup(static_cast<SliceId>(i % 107),
                             static_cast<NodeId>(i % 50),
                             static_cast<NodeId>(i % 108));
    benchmark::DoNotOptimize(e);
    ++i;
  }
}
BENCHMARK(BM_TftLookupHit);

void BM_TftLookupWildcardFallback(benchmark::State& state) {
  // Only fully wildcard entries: every lookup walks all 4 specificity keys.
  core::TimeFlowTable t;
  for (NodeId d = 0; d < 108; ++d) {
    core::TftEntry e;
    e.match = core::TftMatch{kAnySlice, kInvalidNode, d};
    e.actions.push_back(core::TftAction{{net::SourceHop{0, kAnySlice}}, 1.0});
    t.add(std::move(e));
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        t.lookup(static_cast<SliceId>(i % 107), 3,
                 static_cast<NodeId>(i % 108)));
    ++i;
  }
}
BENCHMARK(BM_TftLookupWildcardFallback);

void BM_CalendarEnqueueDequeue(benchmark::State& state) {
  core::CalendarQueuePort port(static_cast<int>(state.range(0)), 1 << 30);
  std::uint64_t i = 0;
  for (auto _ : state) {
    net::Packet p;
    p.size_bytes = 1500;
    port.try_enqueue(std::move(p),
                     static_cast<int>(i % static_cast<std::uint64_t>(
                                              state.range(0))));
    benchmark::DoNotOptimize(port.active_queue().dequeue());
    ++i;
  }
}
BENCHMARK(BM_CalendarEnqueueDequeue)->Arg(8)->Arg(107);

void BM_CalendarRotate(benchmark::State& state) {
  core::CalendarQueuePort port(107, 1 << 20);
  for (auto _ : state) {
    port.rotate();
    benchmark::DoNotOptimize(port.active_index());
  }
}
BENCHMARK(BM_CalendarRotate);

void BM_EqoUpdate(benchmark::State& state) {
  core::QueueOccupancyEstimator eqo(107, 100e9, 50_ns);
  std::int64_t t = 0;
  for (auto _ : state) {
    eqo.on_enqueue(static_cast<int>(t % 107), 1500);
    eqo.drain_window(static_cast<int>(t % 107), SimTime::nanos(t),
                     SimTime::nanos(t + 120));
    t += 120;
  }
}
BENCHMARK(BM_EqoUpdate);

void BM_EventEngine(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    int count = 0;
    for (int i = 0; i < 1000; ++i) {
      s.schedule_at(SimTime::nanos(i * 10), [&count]() { ++count; });
    }
    s.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventEngine);

void BM_EarliestArrivalPerDestination(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  optics::Schedule sched(n, 1, topo::round_robin_period(n), 100_us);
  for (const auto& c : topo::round_robin_1d(n, 1)) sched.add_circuit(c);
  for (auto _ : state) {
    routing::EarliestArrival ea(sched, 0);
    benchmark::DoNotOptimize(ea.offset(1, 0));
  }
}
BENCHMARK(BM_EarliestArrivalPerDestination)->Arg(8)->Arg(16)->Arg(32);

void BM_VlbFullCycle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  optics::Schedule sched(n, 1, topo::round_robin_period(n), 100_us);
  for (const auto& c : topo::round_robin_1d(n, 1)) sched.add_circuit(c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::vlb(sched));
  }
}
BENCHMARK(BM_VlbFullCycle)->Arg(8)->Arg(16);

void BM_HohoFullCycle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  optics::Schedule sched(n, 1, topo::round_robin_period(n), 100_us);
  for (const auto& c : topo::round_robin_1d(n, 1)) sched.add_circuit(c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::hoho(sched));
  }
}
BENCHMARK(BM_HohoFullCycle)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
