// §7 — minimum time-slice derivation, analytically (guardband budget) and
// empirically (zero loss at the derived guardband; loss when the guardband
// is set below the analytic floor).
#include <cstdio>

#include "arch/arch.h"
#include "bench/bench_util.h"
#include "core/controller.h"
#include "core/guardband.h"
#include "routing/to_routing.h"
#include "topo/round_robin.h"
#include "workload/kv.h"

using namespace oo;
using namespace oo::literals;

namespace {

std::pair<std::int64_t, std::int64_t> run_2us(SimTime guard) {
  // Built directly on core::Network so the guardband is exactly what the
  // operator configured — under-sizing it must hurt, as on hardware.
  core::NetworkConfig cfg;
  cfg.num_tors = 4;
  cfg.calendar_mode = true;
  cfg.guardband = guard;
  optics::Schedule sched(4, 1, 3, 2_us);  // the headline minimum slice
  for (const auto& c : oo::topo::round_robin_1d(4, 1)) sched.add_circuit(c);
  core::Network net(cfg, sched, optics::ocs_awgr());
  core::Controller ctl(net);
  ctl.deploy_routing(oo::routing::direct_to(sched), core::LookupMode::PerHop,
                     core::MultipathMode::None);
  net.start();
  std::vector<HostId> clients = {1, 2, 3};
  workload::KvWorkload kv(net, 0, clients, 500_us, /*op=*/1400);
  kv.start();
  net.sim().run_until(60_ms);
  kv.stop();
  return {net.optical().total_drops(), kv.ops_completed()};
}

}  // namespace

int main() {
  bench::banner(
      "Minimum time slice (§7): guardband budget and 2 us validation",
      "34 ns rotation variance + 58 ns EQO window + 2x28 ns sync = 148 ns; "
      "200 ns guardband with headroom; >=90% duty -> 2 us minimum slice, "
      "no loss observed at that setting");

  const auto g = core::derive_guardband(core::GuardbandInputs{});
  std::printf("  rotation variance : %s\n", g.rotation_variance.str().c_str());
  std::printf("  EQO error window  : %s (725 B at 100 Gbps)\n",
              g.eqo_delay.str().c_str());
  std::printf("  sync window (2x)  : %s\n", g.sync_window.str().c_str());
  std::printf("  analytic total    : %s\n", g.analytic.str().c_str());
  std::printf("  guardband         : %s\n", g.guardband.str().c_str());
  std::printf("  minimum slice     : %s (duty factor %d)\n\n",
              g.min_slice.str().c_str(), 10);

  const auto [drops_ok, ops_ok] = run_2us(g.guardband);
  std::printf("  2 us slices @ %s guard: fabric drops=%lld, KV ops=%lld\n",
              g.guardband.str().c_str(), static_cast<long long>(drops_ok),
              static_cast<long long>(ops_ok));
  const auto [drops_low, ops_low] = run_2us(SimTime::nanos(40));
  std::printf("  2 us slices @ 40ns guard : fabric drops=%lld, KV ops=%lld\n",
              static_cast<long long>(drops_low),
              static_cast<long long>(ops_low));
  std::printf("  (an under-sized guardband lets transmissions collide with "
              "reconfiguration)\n");
  return 0;
}
