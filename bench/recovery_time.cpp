// Robustness bench: how fast the event-driven recovery loop turns a dark
// port into a repaired topology. Part 1 drives repeated fail/repair cycles
// under traffic and reports detection latency (LOS debounce), MTTR, and
// availability. Part 2 wall-clocks a single recover_now() — prune, reroute,
// validate, redeploy — as the fabric grows, to show the control-plane cost
// of a recovery scales with network size, not with traffic. Part 3 kills
// the quorum leader over and over and reports time-to-new-leader and the
// latency of the first deploy that commits under the new leader.
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>

#include "arch/arch.h"
#include "bench/bench_util.h"
#include "core/quorum.h"
#include "core/southbound.h"
#include "routing/to_routing.h"
#include "services/failure_recovery.h"
#include "services/fault_plan.h"

using namespace oo;
using namespace oo::literals;

namespace {

arch::Instance rotor_instance(int tors) {
  arch::Params p;
  p.tors = tors;
  p.hosts_per_tor = 1;
  p.uplinks = 2;
  p.slice = 100_us;
  auto inst = arch::make_rotornet(p, arch::RotorRouting::Direct);
  return inst;
}

services::FailureRecovery::RerouteFn direct_reroute() {
  return [](const optics::Schedule& s) { return routing::direct_to(s); };
}

void steady_traffic(arch::Instance& inst) {
  inst.net->sim().schedule_every(50_us, 100_us, [net = inst.net.get()]() {
    for (HostId src : {HostId{0}, HostId{1}, HostId{2}, HostId{3}}) {
      core::Packet pkt;
      pkt.type = core::PacketType::Data;
      pkt.flow = 100 + src;
      pkt.dst_host = (src + 5) % net->num_hosts();
      pkt.size_bytes = 1500;
      net->host(src).send(std::move(pkt));
    }
  });
}

void fail_repair_cycles() {
  auto inst = rotor_instance(16);
  services::FailureRecovery recovery(*inst.net, *inst.ctl, direct_reroute(),
                                     /*scrub=*/SimTime::zero());
  recovery.start();
  steady_traffic(inst);

  // Three ports flapping out of phase: every down edge is a detection +
  // reroute, every up edge a re-admission (both count as recoveries).
  services::FaultPlan plan(*inst.net, /*seed=*/42);
  plan.flap_port(5_ms, 0, 0, /*down=*/3_ms, /*period=*/20_ms, /*cycles=*/8,
                 /*jitter=*/0.2);
  plan.flap_port(9_ms, 5, 1, /*down=*/5_ms, /*period=*/25_ms, /*cycles=*/6,
                 /*jitter=*/0.2);
  plan.flap_port(14_ms, 11, 0, /*down=*/2_ms, /*period=*/30_ms, /*cycles=*/5,
                 /*jitter=*/0.2);
  plan.arm();

  inst.run_for(200_ms);

  const auto& fab = inst.net->optical();
  std::printf("16-ToR rotor, 200 ms, %lld flap transitions injected\n",
              static_cast<long long>(
                  plan.injected(services::FaultKind::LinkFlap)));
  bench::fct_row("detect latency", recovery.detect_latency_us());
  bench::fct_row("mttr", recovery.mttr_us());
  std::printf("  recoveries=%d retries=%d availability=%.4f "
              "drops: failed=%lld total=%lld\n",
              recovery.recoveries(), recovery.retries(),
              recovery.availability(),
              static_cast<long long>(fab.drops_failed()),
              static_cast<long long>(fab.total_drops()));
}

void recover_now_wall_clock() {
  std::printf("\nrecover_now() wall clock (prune + reroute + validate + "
              "deploy), one failed port:\n");
  for (const int tors : {8, 16, 32, 64}) {
    auto inst = rotor_instance(tors);
    services::FailureRecovery recovery(*inst.net, *inst.ctl, direct_reroute(),
                                       /*scrub=*/SimTime::zero());
    recovery.start();
    inst.net->optical().set_port_failed(0, 0, true);
    const int kReps = 50;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i) recovery.recover_now();
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / kReps;
    std::printf("  tors=%-3d circuits=%-5zu  %8.1f us/call\n", tors,
                inst.net->schedule().circuits().size(), us);
  }
}

// Part 3: controller failover. Kill the quorum leader once per cycle and
// measure (a) how long the fabric is leaderless — kill to the first replica
// winning an election — and (b) how long until a deploy actually commits
// under the new leader, which adds the takeover resync and the two-phase
// commit itself on top of the election.
void quorum_failover() {
  std::printf("\nquorum failover: leader killed each cycle, 16-ToR rotor, "
              "20 us control legs, 200/50 us election/heartbeat timeouts:\n");
  for (const int replicas : {3, 5}) {
    auto inst = rotor_instance(16);
    auto* net = inst.net.get();
    auto* ctl = inst.ctl.get();

    core::SouthboundConfig sb;
    sb.latency = 20_us;
    ctl->southbound().configure(sb);

    core::QuorumConfig qc;
    qc.replicas = replicas;
    qc.election_timeout = 200_us;
    qc.heartbeat = 50_us;
    core::ControllerQuorum quorum(*net, *ctl, qc);
    quorum.start();
    steady_traffic(inst);

    PercentileSampler leader_us;  // kill -> new leader elected
    PercentileSampler deploy_us;  // kill -> first committed deploy
    int cycles = 0;

    // Retry an identity redeploy until one commits, then sample the
    // kill->commit latency. Refusals (engine still crashed / not leader)
    // and aborts both back off and retry.
    std::function<void(SimTime)> attempt_deploy = [&](SimTime killed_at) {
      const bool accepted = ctl->deploy_update(
          net->schedule(), routing::direct_to(net->schedule()),
          core::LookupMode::PerHop, core::MultipathMode::None, 1, 1,
          SimTime::zero(), [&, killed_at](bool ok) {
            if (ok) {
              deploy_us.add((net->sim().now() - killed_at).us());
            } else {
              net->sim().schedule_in(
                  50_us, [&, killed_at]() { attempt_deploy(killed_at); });
            }
          });
      if (!accepted) {
        net->sim().schedule_in(
            50_us, [&, killed_at]() { attempt_deploy(killed_at); });
      }
    };

    const int kCycles = 12;
    net->sim().schedule_every(5_ms, 10_ms, [&, net]() {
      if (cycles >= kCycles) return;
      const int victim = quorum.kill_leader();
      if (victim < 0) return;
      ++cycles;
      const SimTime killed_at = net->sim().now();
      // Fine-grained probe for the first post-kill leader.
      auto probe = std::make_shared<std::function<void()>>();
      *probe = [&, net, killed_at, probe]() {
        if (quorum.leader() >= 0) {
          leader_us.add((net->sim().now() - killed_at).us());
          attempt_deploy(killed_at);
        } else {
          net->sim().schedule_in(5_us, *probe);
        }
      };
      net->sim().schedule_in(5_us, *probe);
      // Revive well before the next cycle so a majority always exists.
      net->sim().schedule_in(4_ms,
                             [&, victim]() { quorum.revive_replica(victim); });
    });

    inst.run_for(130_ms);

    std::printf("  replicas=%d  cycles=%d elections=%lld failovers=%lld "
                "term=%llu\n",
                replicas, cycles, static_cast<long long>(quorum.elections()),
                static_cast<long long>(quorum.failovers()),
                static_cast<unsigned long long>(quorum.term()));
    bench::fct_row("time to new leader", leader_us);
    bench::fct_row("first deploy commit", deploy_us);
  }
}

}  // namespace

int main() {
  bench::banner(
      "Recovery time: LOS detection -> reroute -> redeploy under link flaps",
      "detection = transceiver LOS debounce (~1 us), traffic-independent; "
      "MTTR tracks flap hold time for repairs and reroute latency for "
      "masking; recovery compute grows with fabric size, stays well under "
      "a MEMS retargeting window");

  fail_repair_cycles();
  recover_now_wall_clock();
  quorum_failover();
  return 0;
}
