// Robustness bench: clock-drift resilience of the calendar fabric. A rotor
// instance takes a drift ramp on one ToR with its resync beacons suppressed
// — the §7 silent hazard: once the accumulated offset walks past a slice,
// every launch lands on the wrong circuit and is *delivered* to the wrong
// ToR (no drop, no alarm). The sweep crosses drift rate with the
// SyncWatchdog on/off:
//   - watchdog off: wrong-slice deliveries grow for as long as the drift
//     persists (the corruption baseline);
//   - watchdog on: the symptom ladder (widen -> quarantine) halts the
//     corruption — zero wrong-slice launches after the quarantine instant —
//     and the node is re-admitted within bounded time once beacons resume.
// Identical seeds reproduce identical detection times and quarantine sets.
#include <cstdio>
#include <cstdlib>

#include "arch/arch.h"
#include "bench/bench_util.h"
#include "services/fault_plan.h"
#include "services/sync_watchdog.h"

using namespace oo;
using namespace oo::literals;

namespace {

constexpr NodeId kDriftNode = 2;

struct RunResult {
  std::int64_t wrong_slice = 0;        // fabric wrong-slice launches
  std::int64_t wrong_at_quarantine = -1;
  std::int64_t delivered = 0;
  std::int64_t desyncs = 0;
  std::int64_t widenings = 0;
  std::int64_t quarantines = 0;
  std::int64_t readmissions = 0;
  double detect_us = 0.0;      // first-symptom -> first response
  double quarantine_us = 0.0;  // fence-off -> re-admission
};

RunResult run_once(double ppm, bool watchdog_on) {
  arch::Params p;
  p.tors = 8;
  p.hosts_per_tor = 1;
  p.uplinks = 1;
  p.slice = 5_us;
  p.seed = 7;
  auto inst =
      arch::make_rotornet(p, arch::RotorRouting::Direct, /*hybrid=*/true);
  auto* net = inst.net.get();

  services::SyncWatchdog watchdog(*net);
  RunResult r;
  if (watchdog_on) {
    watchdog.set_quarantine_hook(
        [net, &r](NodeId, bool quarantined) {
          if (quarantined && r.wrong_at_quarantine < 0) {
            r.wrong_at_quarantine = net->optical().wrong_slice();
          }
        });
    watchdog.start();
  }

  net->sim().schedule_every(5_us, 10_us, [net]() {
    for (HostId src = 0; src < net->num_hosts(); ++src) {
      core::Packet pkt;
      pkt.type = core::PacketType::Data;
      pkt.flow = 500 + src;
      pkt.dst_host = (src + 3) % net->num_hosts();
      pkt.size_bytes = 1500;
      net->host(src).send(std::move(pkt));
    }
  });

  // Drift + beacon loss share one window: the clock compounds its error
  // unchecked for 6 ms, then beacons resume and re-discipline it.
  services::FaultPlan plan(*net, /*seed=*/2024);
  if (ppm > 0) {
    plan.drift_clock(1_ms, kDriftNode, ppm, /*duration=*/6_ms);
    plan.lose_beacons(1_ms, kDriftNode, /*duration=*/6_ms);
  }
  plan.arm();

  inst.run_for(12_ms);

  r.wrong_slice = net->optical().wrong_slice();
  r.delivered = net->optical().delivered();
  if (watchdog_on) {
    r.desyncs = watchdog.desyncs_detected();
    r.widenings = watchdog.guard_widenings();
    r.quarantines = watchdog.quarantines();
    r.readmissions = watchdog.readmissions();
    if (watchdog.time_to_detect_us().count() > 0) {
      r.detect_us = watchdog.time_to_detect_us().percentile(50);
    }
    if (watchdog.quarantine_us().count() > 0) {
      r.quarantine_us = watchdog.quarantine_us().percentile(50);
    }
  }
  return r;
}

bool same(const RunResult& a, const RunResult& b) {
  return a.wrong_slice == b.wrong_slice && a.delivered == b.delivered &&
         a.desyncs == b.desyncs && a.widenings == b.widenings &&
         a.quarantines == b.quarantines &&
         a.readmissions == b.readmissions && a.detect_us == b.detect_us &&
         a.quarantine_us == b.quarantine_us &&
         a.wrong_at_quarantine == b.wrong_at_quarantine;
}

}  // namespace

int main() {
  bench::banner(
      "Sync resilience: clock-drift ramp vs. the sync watchdog "
      "(8-ToR rotor, 5 us slices, beacons suppressed for the 6 ms ramp)",
      "drift past one slice silently misdelivers every launch; the watchdog "
      "detects from symptoms alone, quarantines the drifted ToR (zero "
      "wrong-slice growth afterwards), and re-admits it within a few beacon "
      "rounds of the ramp ending");

  std::printf("  %-9s %-9s %12s %12s %9s %11s %12s %12s\n", "ppm", "watchdog",
              "wrong-slice", "@quarantine", "desyncs", "quarantines",
              "detect(us)", "held(us)");

  bool ok = true;
  for (const double ppm : {0.0, 500.0, 2000.0, 8000.0, 32000.0}) {
    for (const bool on : {false, true}) {
      const RunResult r = run_once(ppm, on);
      std::printf("  %-9.0f %-9s %12lld %12lld %9lld %11lld %12.1f %12.1f\n",
                  ppm, on ? "on" : "off",
                  static_cast<long long>(r.wrong_slice),
                  static_cast<long long>(r.wrong_at_quarantine),
                  static_cast<long long>(r.desyncs),
                  static_cast<long long>(r.quarantines), r.detect_us,
                  r.quarantine_us);

      if (ppm == 0.0) {
        // No fault injected: the dynamic clock model must be bit-identical
        // to the static one — zero corruption, zero false positives.
        ok = ok && r.wrong_slice == 0 && r.desyncs == 0;
      }
      if (ppm >= 8000.0) {
        if (on) {
          // Quarantine freezes the corruption count and the node returns
          // once beacons resume.
          ok = ok && r.quarantines >= 1 && r.readmissions >= 1 &&
               r.wrong_at_quarantine >= 0 &&
               r.wrong_slice == r.wrong_at_quarantine;
        } else {
          // Unwatched, the same seed corrupts deliveries.
          ok = ok && r.wrong_slice > 0;
        }
      }
    }
  }

  // Determinism: the headline configuration, replayed, must be equal in
  // every observable — detection time, quarantine set, corruption counts.
  const RunResult a = run_once(8000.0, true);
  const RunResult b = run_once(8000.0, true);
  if (!same(a, b)) {
    std::printf("FAILED: identical seeds diverged\n");
    return 2;
  }
  std::printf("determinism: replayed run identical "
              "(wrong-slice=%lld detect=%.1fus)\n",
              static_cast<long long>(a.wrong_slice), a.detect_us);

  if (!ok) {
    std::printf("FAILED: resilience expectations not met\n");
    return 2;
  }
  std::printf("sync resilience bench passed\n");
  return 0;
}
