// Robustness bench: clock-drift resilience of the calendar fabric. A rotor
// instance takes a drift ramp on one ToR with its resync beacons suppressed
// — the §7 silent hazard: once the accumulated offset walks past a slice,
// every launch lands on the wrong circuit and is *delivered* to the wrong
// ToR (no drop, no alarm). The sweep crosses drift rate with the
// SyncWatchdog on/off:
//   - watchdog off: wrong-slice deliveries grow for as long as the drift
//     persists (the corruption baseline);
//   - watchdog on: the symptom ladder (widen -> quarantine) halts the
//     corruption — zero wrong-slice launches after the quarantine instant —
//     and the node is re-admitted within bounded time once beacons resume.
//
// The sweep is a campaign spec on the "sync_resilience" experiment
// (src/runner/experiments.cpp holds the run logic); the determinism gate
// replays the whole campaign at --jobs 1 and demands byte-identical result
// rows — seed-reproducibility and jobs-independence in one check.
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"

using namespace oo;

namespace {

runner::CampaignSpec sweep_spec() {
  runner::CampaignSpec spec;
  spec.name = "sync_resilience";
  spec.experiment = "sync_resilience";
  spec.fixed["arch"] = "rotornet-direct-hybrid";
  spec.fixed["tors"] = 8;
  spec.fixed["hosts"] = 1;
  spec.fixed["uplinks"] = 1;
  spec.fixed["slice_us"] = 5.0;
  spec.fixed["net_seed"] = 7;
  spec.fixed["fault_seed"] = 2024;
  spec.fixed["fault_window_ms"] = 6;
  spec.fixed["duration_ms"] = 12;
  spec.fixed["drift_node"] = 2;
  json::Array ppms, watchdogs;
  for (const double ppm : {0.0, 500.0, 2000.0, 8000.0, 32000.0}) {
    ppms.emplace_back(ppm);
  }
  watchdogs.emplace_back(false);
  watchdogs.emplace_back(true);
  // Axes iterate sorted by key: ppm outer, watchdog inner (off, on).
  spec.grid["ppm"] = ppms;
  spec.grid["watchdog"] = watchdogs;
  return spec;
}

std::int64_t geti(const json::Object& r, const char* k) {
  return r.at(k).as_int();
}

}  // namespace

int main() {
  bench::banner(
      "Sync resilience: clock-drift ramp vs. the sync watchdog "
      "(8-ToR rotor, 5 us slices, beacons suppressed for the 6 ms ramp)",
      "drift past one slice silently misdelivers every launch; the watchdog "
      "detects from symptoms alone, quarantines the drifted ToR (zero "
      "wrong-slice growth afterwards), and re-admits it within a few beacon "
      "rounds of the ramp ending");

  std::printf("  %-9s %-9s %12s %12s %9s %11s %12s %12s\n", "ppm", "watchdog",
              "wrong-slice", "@quarantine", "desyncs", "quarantines",
              "detect(us)", "held(us)");

  const auto spec = sweep_spec();
  auto engine = bench::run_campaign(spec);

  bool ok = true;
  for (const auto& rec : engine.records()) {
    const json::Object& r = rec.result;
    const double ppm = rec.params.at("ppm").as_double();
    const bool on = rec.params.at("watchdog").as_bool();
    std::printf("  %-9.0f %-9s %12lld %12lld %9lld %11lld %12.1f %12.1f\n",
                ppm, on ? "on" : "off",
                static_cast<long long>(geti(r, "wrong_slice")),
                static_cast<long long>(geti(r, "wrong_at_quarantine")),
                static_cast<long long>(geti(r, "desyncs")),
                static_cast<long long>(geti(r, "quarantines")),
                r.at("detect_us").as_double(),
                r.at("quarantine_us").as_double());

    if (ppm == 0.0) {
      // No fault injected: the dynamic clock model must be bit-identical
      // to the static one — zero corruption, zero false positives.
      ok = ok && geti(r, "wrong_slice") == 0 && geti(r, "desyncs") == 0;
    }
    if (ppm >= 8000.0) {
      if (on) {
        // Quarantine freezes the corruption count and the node returns
        // once beacons resume.
        ok = ok && geti(r, "quarantines") >= 1 &&
             geti(r, "readmissions") >= 1 &&
             geti(r, "wrong_at_quarantine") >= 0 &&
             geti(r, "wrong_slice") == geti(r, "wrong_at_quarantine");
      } else {
        // Unwatched, the same seed corrupts deliveries.
        ok = ok && geti(r, "wrong_slice") > 0;
      }
    }
  }

  // Determinism: the identical campaign replayed single-threaded must
  // produce byte-identical result rows — every observable (detection
  // times, quarantine sets, corruption counts) across every run.
  auto replay = bench::run_campaign(spec, /*jobs=*/1);
  if (engine.results_jsonl() != replay.results_jsonl()) {
    std::printf("FAILED: --jobs %d and --jobs 1 campaigns diverged\n",
                bench::default_jobs());
    return 2;
  }
  std::printf("determinism: %d-run campaign replayed byte-identical at "
              "--jobs 1 (speedup %.2fx at --jobs %d)\n",
              engine.summary().total, engine.summary().speedup(),
              bench::default_jobs());

  if (!ok) {
    std::printf("FAILED: resilience expectations not met\n");
    return 2;
  }
  std::printf("sync resilience bench passed\n");
  return 0;
}
