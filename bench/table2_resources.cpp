// Table 2 — Tofino2 resource usage of an OpenOptics ToR in the 108-ToR
// deployment, from the fitted first-order resource model, plus sensitivity
// rows (feature knobs, table growth) the paper's headroom claim rests on.
#include <cstdio>

#include "bench/bench_util.h"
#include "resource/tofino.h"

using namespace oo;

int main() {
  bench::banner(
      "Table 2: Tofino2 resource usage (108-ToR observed ToR)",
      "SRAM 3.8% / TCAM 2.3% / sALU 9.4% / TernaryXbar 13.8% / VLIW 5.6% / "
      "ExactXbar 7.8% — everything under 13.8%");

  const auto ref = resource::paper_reference_inputs();
  const auto usage = resource::estimate_tofino2(ref);
  std::printf("%s", usage.table().c_str());
  std::printf("  max across resources: %.1f%%\n\n", usage.max_pct());

  std::printf("sensitivity: scaling the DCN (entries = (N-1) x N)\n");
  std::printf("  %-8s %-10s %-8s %-8s\n", "ToRs", "entries", "SRAM%", "max%");
  for (int n : {32, 64, 108, 256, 512}) {
    auto in = ref;
    in.tft_entries = static_cast<std::int64_t>(n - 1) * n;
    in.calendar_queues_per_port = std::min(n - 1, 128);
    const auto u = resource::estimate_tofino2(in);
    std::printf("  %-8d %-10lld %-8.1f %-8.1f\n", n,
                static_cast<long long>(in.tft_entries), u.sram_pct,
                u.max_pct());
  }

  std::printf("\nsensitivity: infra-service knobs (108 ToRs)\n");
  auto base = ref;
  base.congestion_detection = false;
  const auto off = resource::estimate_tofino2(base);
  auto full = ref;
  full.pushback = true;
  full.offload = true;
  const auto on = resource::estimate_tofino2(full);
  std::printf("  services off : sALU %.1f%%  ternary %.1f%%  VLIW %.1f%%\n",
              off.stateful_alu_pct, off.ternary_xbar_pct, off.vliw_pct);
  std::printf("  all services : sALU %.1f%%  ternary %.1f%%  VLIW %.1f%%\n",
              on.stateful_alu_pct, on.ternary_xbar_pct, on.vliw_pct);
  return 0;
}
