// Table 3 (Appx. A) — 99.9th-percentile switch buffer usage under the
// KV-store / RPC / Hadoop traces at 40% core utilization with open-loop
// replay (the paper's methodology), for the routing schemes that hold
// packets at intermediate nodes: VLB (with and without buffer offloading),
// HOHO, and UCMP.
//
// Scale note: the paper runs 108 ToRs x 6 uplinks at 100 Gbps in real
// time; this simulation replays a 64-ToR, 2-uplink, 2.5 Gbps scale, so
// absolute bytes are far smaller. Two effects survive scaling cleanly:
// (1) buffer offloading cuts VLB's switch residency several-fold, and
// (2) VLB holds bytes the longest in *total* (cycle-long waits). One does
// not: with only 2 uplinks the deterministic earliest-arrival schemes
// (HOHO/UCMP) concentrate onto few hot relays, inflating their per-switch
// peak above VLB's uniformly spread waits — at the paper's 108x6 fan-out
// that concentration dilutes and VLB dominates (see EXPERIMENTS.md).
#include <algorithm>
#include <cstdio>

#include "arch/arch.h"
#include "bench/bench_util.h"
#include "services/monitor.h"
#include "workload/traces.h"

using namespace oo;
using namespace oo::literals;

namespace {

struct Cell {
  double median_kb;
  double p999_kb;
  std::int64_t offloads;
};

Cell run(workload::TraceKind kind, arch::RotorRouting routing, bool offload) {
  arch::Params p;
  p.tors = 64;
  p.hosts_per_tor = 1;
  p.bw = 2.5e9;
  p.uplinks = 2;
  p.slice = 200_us;
  if (offload) {
    // Offloading keeps only the near-future calendar days on the switch
    // (§5.2); the rest park on hosts until their slice approaches.
    p.offload = true;
    p.calendar_queues = 9;
  }
  auto inst = arch::make_rotornet(p, routing);
  services::Monitor mon(*inst.net, 100_us);
  mon.start();
  workload::OpenLoopReplay replay(*inst.net, kind, /*load=*/0.4);
  replay.start();
  inst.run_for(25_ms);
  replay.stop();
  std::int64_t offloads = 0;
  for (NodeId n = 0; n < inst.net->num_tors(); ++n) {
    offloads += inst.net->tor(n).offloads();
  }
  const auto& s = mon.all_buffer_samples();
  return Cell{s.median() / 1024.0, s.percentile(99.9) / 1024.0, offloads};
}

}  // namespace

int main() {
  bench::banner(
      "Table 3: switch buffer usage, 200 us slices, 40% core load "
      "(64 ToRs x 2 uplinks, open-loop replay)",
      "paper @108ToR/6up/100G: VLB 9.5-12.8 MB (offload -> 1.3-1.6 MB), "
      "HOHO 2.4-3.9 MB, UCMP 2.4-6.5 MB. Offloading's several-fold cut "
      "reproduces; small fan-out concentrates HOHO/UCMP (see header)");

  std::printf("  %-10s | %20s | %20s | %20s | %20s\n", "trace",
              "VLB med/p99.9 KB", "VLB+off med/p99.9", "HOHO med/p99.9",
              "UCMP med/p99.9");
  for (auto kind : {workload::TraceKind::KvStore, workload::TraceKind::Rpc,
                    workload::TraceKind::Hadoop}) {
    const auto vlb = run(kind, arch::RotorRouting::Vlb, false);
    const auto vlb_off = run(kind, arch::RotorRouting::Vlb, true);
    const auto hoho = run(kind, arch::RotorRouting::Hoho, false);
    const auto ucmp = run(kind, arch::RotorRouting::Ucmp, false);
    std::printf(
        "  %-10s | %8.0f / %9.0f | %8.0f / %9.0f | %8.0f / %9.0f | "
        "%8.0f / %9.0f\n",
        workload::trace_name(kind), vlb.median_kb, vlb.p999_kb,
        vlb_off.median_kb, vlb_off.p999_kb, hoho.median_kb, hoho.p999_kb,
        ucmp.median_kb, ucmp.p999_kb);
    std::printf("  %-10s   offloading cut: %.1fx (%lld packets offloaded)\n",
                "", vlb.p999_kb / std::max(1.0, vlb_off.p999_kb),
                static_cast<long long>(vlb_off.offloads));
  }
  return 0;
}
