// Table 4 (Appx. B) — effectiveness of congestion detection and traffic
// push-back under HOHO at 70% load with open-loop replay: column 1 neither,
// column 2 detection alone (deferral), column 3 detection + push-back.
// Expect push-back to eliminate loss and collapse queueing-delay tails.
#include <cstdio>

#include "arch/arch.h"
#include "bench/bench_util.h"
#include "workload/traces.h"

using namespace oo;
using namespace oo::literals;

namespace {

struct Row {
  double gbps;
  double loss_pct;
  double avg_delay_us;
  double p95_delay_us;
};

Row run(workload::TraceKind kind, bool detection, bool pushback) {
  arch::Params p;
  p.tors = 16;
  p.hosts_per_tor = 2;
  p.bw = 10e9;
  p.uplinks = 2;
  p.slice = 300_us;
  // Per-queue capacity near two slices' worth of line rate: overload must
  // actually overflow something, as on the real switch's shallow queues.
  p.queue_capacity = 768 << 10;
  auto inst = arch::make_rotornet(p, arch::RotorRouting::Hoho);
  auto& cfg = const_cast<core::NetworkConfig&>(inst.net->config());
  cfg.congestion_detection = detection;
  cfg.pushback = pushback;

  PercentileSampler delay_us;
  std::int64_t delivered_bytes = 0;
  inst.net->set_delivery_probe([&](const core::Packet& pkt) {
    delay_us.add((inst.net->sim().now() - pkt.created).us());
    delivered_bytes += pkt.size_bytes;
  });

  // Long flows pace a few times the per-pair circuit capacity (2 of 15 slices
  // at 10 Gbps) — fast enough to stress hot queues, far below NIC bursts.
  workload::OpenLoopReplay replay(*inst.net, kind, /*load=*/0.7,
                                  /*mss=*/8936, /*flow_pace_bps=*/3e9);
  replay.start();
  const SimTime horizon = 10_ms;
  inst.run_for(horizon);
  replay.stop();

  const auto t = inst.net->totals();
  const double data_pkts =
      static_cast<double>(t.delivered + t.congestion_drops + t.fabric_drops);
  Row r;
  r.gbps = static_cast<double>(delivered_bytes) * 8.0 / horizon.sec() / 1e9;
  r.loss_pct =
      data_pkts > 0
          ? 100.0 *
                static_cast<double>(t.congestion_drops + t.fabric_drops) /
                data_pkts
          : 0.0;
  r.avg_delay_us = delay_us.mean();
  r.p95_delay_us = delay_us.percentile(95);
  return r;
}

}  // namespace

int main() {
  bench::banner(
      "Table 4: congestion detection + traffic push-back (HOHO, 70% load, "
      "open-loop)",
      "neither: loss and long tail delays; detection alone: deferrals trim "
      "them somewhat but queues still fill; detection+push-back: loss -> 0 "
      "and the tail collapses (paper: 1-2% -> 0% loss, 2.2 ms -> ~85 us)");

  std::printf("  %-10s %-28s %10s %8s %12s %12s\n", "trace", "config",
              "thr(Gbps)", "loss%", "avg-delay", "p95-delay");
  for (auto kind : {workload::TraceKind::Hadoop, workload::TraceKind::Rpc,
                    workload::TraceKind::KvStore}) {
    const Row none = run(kind, false, false);
    const Row det = run(kind, true, false);
    const Row both = run(kind, true, true);
    const char* name = workload::trace_name(kind);
    std::printf("  %-10s %-28s %10.1f %7.2f%% %10.0fus %10.0fus\n", name,
                "no detection / no pushback", none.gbps, none.loss_pct,
                none.avg_delay_us, none.p95_delay_us);
    std::printf("  %-10s %-28s %10.1f %7.2f%% %10.0fus %10.0fus\n", "",
                "detection only (defer)", det.gbps, det.loss_pct,
                det.avg_delay_us, det.p95_delay_us);
    std::printf("  %-10s %-28s %10.1f %7.2f%% %10.0fus %10.0fus\n", "",
                "detection + pushback", both.gbps, both.loss_pct,
                both.avg_delay_us, both.p95_delay_us);
  }
  return 0;
}
