// Telemetry overhead smoke: runs the identical seeded workload with the
// flight recorder detached, attached, and with the event profiler attached,
// and reports wall-clock per configuration. The acceptance bar is that the
// disabled hooks (a null-check per emission site) are free and an attached
// ring stays within noise of the untraced run; the bench also re-checks
// determinism — traced and untraced runs must produce identical delivery
// and drop counters, since tracing must never perturb event sequencing.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "arch/arch.h"
#include "bench/bench_util.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/profiler.h"
#include "workload/kv.h"

using namespace oo;
using namespace oo::literals;

namespace {

struct RunResult {
  double wall_ms = 0;
  std::int64_t events = 0;
  std::int64_t delivered = 0;
  std::int64_t fabric_drops = 0;
  std::int64_t trace_events = 0;
};

enum class Mode { Disabled, Traced, Profiled };

RunResult run(Mode mode, telemetry::EventProfiler* prof = nullptr) {
  arch::Params p;
  p.tors = 8;
  p.hosts_per_tor = 2;
  p.uplinks = 2;
  p.seed = 7;
  auto inst = arch::make_rotornet(p, arch::RotorRouting::Vlb);

  telemetry::FlightRecorder recorder(std::size_t{1} << 16);
  if (mode == Mode::Traced) inst.net->sim().set_recorder(&recorder);
  if (mode == Mode::Profiled && prof != nullptr) {
    inst.net->sim().set_profiler(prof);
  }

  std::vector<HostId> clients;
  for (HostId h = 1; h < inst.net->num_hosts(); ++h) clients.push_back(h);
  workload::KvWorkload kv(*inst.net, 0, clients, 2_ms);
  kv.start();

  const auto t0 = std::chrono::steady_clock::now();
  inst.run_for(150_ms);
  const auto t1 = std::chrono::steady_clock::now();
  kv.stop();

  RunResult r;
  r.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.events = inst.net->sim().events_executed();
  r.delivered = inst.net->optical().delivered();
  r.fabric_drops = inst.net->optical().total_drops();
  r.trace_events = recorder.total_recorded();
  return r;
}

double best_of(Mode mode, int reps) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const auto r = run(mode);
    if (r.wall_ms < best) best = r.wall_ms;
  }
  return best;
}

}  // namespace

int main() {
  bench::banner("telemetry overhead: flight recorder + event profiler",
                "disabled hooks are a null-check; attached ring ~free");

  run(Mode::Disabled);  // warm up allocators and caches

  const auto base = run(Mode::Disabled);
  const auto traced = run(Mode::Traced);
  telemetry::EventProfiler prof;
  const auto profiled = run(Mode::Profiled, &prof);

  // Best-of-N wall clocks for the overhead ratio: single runs are too noisy
  // on shared CI machines.
  const double base_ms = best_of(Mode::Disabled, 3);
  const double traced_ms = best_of(Mode::Traced, 3);
  const double overhead = (traced_ms - base_ms) / base_ms * 100.0;

  std::printf("  %-10s wall=%8.1f ms  events=%lld  (%.2f M events/s)\n",
              "disabled", base_ms, static_cast<long long>(base.events),
              static_cast<double>(base.events) / base_ms / 1e3);
  std::printf("  %-10s wall=%8.1f ms  events=%lld  trace_events=%lld\n",
              "traced", traced_ms, static_cast<long long>(traced.events),
              static_cast<long long>(traced.trace_events));
  std::printf("  %-10s wall=%8.1f ms\n", "profiled", profiled.wall_ms);
  std::printf("  tracing overhead: %+.1f%% (best of 3)\n\n", overhead);
  std::printf("%s\n", prof.report().c_str());

  if (traced.delivered != base.delivered ||
      traced.fabric_drops != base.fabric_drops ||
      traced.events != base.events) {
    std::printf("FAIL: tracing perturbed the run "
                "(delivered %lld vs %lld, drops %lld vs %lld, "
                "events %lld vs %lld)\n",
                static_cast<long long>(traced.delivered),
                static_cast<long long>(base.delivered),
                static_cast<long long>(traced.fabric_drops),
                static_cast<long long>(base.fabric_drops),
                static_cast<long long>(traced.events),
                static_cast<long long>(base.events));
    return 2;
  }
  if (traced.trace_events == 0) {
    std::printf("FAIL: attached recorder captured nothing\n");
    return 2;
  }
  // Loose smoke bound: catches an accidentally expensive hot path without
  // flaking on noisy shared runners (the real budget is ~2%).
  if (overhead > 50.0) {
    std::printf("FAIL: tracing overhead %.1f%% exceeds smoke bound\n",
                overhead);
    return 2;
  }
  std::printf("trace overhead smoke passed\n");
  return 0;
}
