file(REMOVE_RECURSE
  "CMakeFiles/ablation_guardband.dir/ablation_guardband.cpp.o"
  "CMakeFiles/ablation_guardband.dir/ablation_guardband.cpp.o.d"
  "ablation_guardband"
  "ablation_guardband.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_guardband.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
