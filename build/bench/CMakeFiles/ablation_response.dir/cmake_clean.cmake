file(REMOVE_RECURSE
  "CMakeFiles/ablation_response.dir/ablation_response.cpp.o"
  "CMakeFiles/ablation_response.dir/ablation_response.cpp.o.d"
  "ablation_response"
  "ablation_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
