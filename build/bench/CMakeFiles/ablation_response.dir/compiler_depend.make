# Empty compiler generated dependencies file for ablation_response.
# This may be replaced when dependencies are built.
