file(REMOVE_RECURSE
  "CMakeFiles/extra_patterns.dir/extra_patterns.cpp.o"
  "CMakeFiles/extra_patterns.dir/extra_patterns.cpp.o.d"
  "extra_patterns"
  "extra_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
