# Empty compiler generated dependencies file for extra_patterns.
# This may be replaced when dependencies are built.
