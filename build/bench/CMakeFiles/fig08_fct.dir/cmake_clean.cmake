file(REMOVE_RECURSE
  "CMakeFiles/fig08_fct.dir/fig08_fct.cpp.o"
  "CMakeFiles/fig08_fct.dir/fig08_fct.cpp.o.d"
  "fig08_fct"
  "fig08_fct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_fct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
