# Empty dependencies file for fig08_fct.
# This may be replaced when dependencies are built.
