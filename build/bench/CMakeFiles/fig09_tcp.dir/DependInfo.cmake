
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig09_tcp.cpp" "bench/CMakeFiles/fig09_tcp.dir/fig09_tcp.cpp.o" "gcc" "bench/CMakeFiles/fig09_tcp.dir/fig09_tcp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/api/CMakeFiles/oo_api.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/oo_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/oo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/oo_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/oo_services.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/oo_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/oo_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/oo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/oo_optics.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/oo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/eventsim/CMakeFiles/oo_eventsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/resource/CMakeFiles/oo_resource.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
