file(REMOVE_RECURSE
  "CMakeFiles/fig09_tcp.dir/fig09_tcp.cpp.o"
  "CMakeFiles/fig09_tcp.dir/fig09_tcp.cpp.o.d"
  "fig09_tcp"
  "fig09_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
