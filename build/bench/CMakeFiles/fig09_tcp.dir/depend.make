# Empty dependencies file for fig09_tcp.
# This may be replaced when dependencies are built.
