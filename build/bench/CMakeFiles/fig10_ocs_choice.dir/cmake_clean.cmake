file(REMOVE_RECURSE
  "CMakeFiles/fig10_ocs_choice.dir/fig10_ocs_choice.cpp.o"
  "CMakeFiles/fig10_ocs_choice.dir/fig10_ocs_choice.cpp.o.d"
  "fig10_ocs_choice"
  "fig10_ocs_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_ocs_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
