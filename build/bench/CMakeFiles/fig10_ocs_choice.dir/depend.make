# Empty dependencies file for fig10_ocs_choice.
# This may be replaced when dependencies are built.
