file(REMOVE_RECURSE
  "CMakeFiles/fig12_eqo.dir/fig12_eqo.cpp.o"
  "CMakeFiles/fig12_eqo.dir/fig12_eqo.cpp.o.d"
  "fig12_eqo"
  "fig12_eqo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_eqo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
