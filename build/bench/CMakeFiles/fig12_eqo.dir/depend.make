# Empty dependencies file for fig12_eqo.
# This may be replaced when dependencies are built.
