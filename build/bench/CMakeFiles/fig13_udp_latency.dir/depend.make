# Empty dependencies file for fig13_udp_latency.
# This may be replaced when dependencies are built.
