file(REMOVE_RECURSE
  "CMakeFiles/fig14_offload_rtt.dir/fig14_offload_rtt.cpp.o"
  "CMakeFiles/fig14_offload_rtt.dir/fig14_offload_rtt.cpp.o.d"
  "fig14_offload_rtt"
  "fig14_offload_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_offload_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
