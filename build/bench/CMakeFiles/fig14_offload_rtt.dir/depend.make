# Empty dependencies file for fig14_offload_rtt.
# This may be replaced when dependencies are built.
