file(REMOVE_RECURSE
  "CMakeFiles/min_slice.dir/min_slice.cpp.o"
  "CMakeFiles/min_slice.dir/min_slice.cpp.o.d"
  "min_slice"
  "min_slice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/min_slice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
