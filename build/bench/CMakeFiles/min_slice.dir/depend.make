# Empty dependencies file for min_slice.
# This may be replaced when dependencies are built.
