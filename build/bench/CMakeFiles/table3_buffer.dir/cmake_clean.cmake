file(REMOVE_RECURSE
  "CMakeFiles/table3_buffer.dir/table3_buffer.cpp.o"
  "CMakeFiles/table3_buffer.dir/table3_buffer.cpp.o.d"
  "table3_buffer"
  "table3_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
