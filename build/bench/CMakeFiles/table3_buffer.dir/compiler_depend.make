# Empty compiler generated dependencies file for table3_buffer.
# This may be replaced when dependencies are built.
