file(REMOVE_RECURSE
  "CMakeFiles/table4_pushback.dir/table4_pushback.cpp.o"
  "CMakeFiles/table4_pushback.dir/table4_pushback.cpp.o.d"
  "table4_pushback"
  "table4_pushback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_pushback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
