# Empty compiler generated dependencies file for table4_pushback.
# This may be replaced when dependencies are built.
