file(REMOVE_RECURSE
  "CMakeFiles/hierarchical_ml.dir/hierarchical_ml.cpp.o"
  "CMakeFiles/hierarchical_ml.dir/hierarchical_ml.cpp.o.d"
  "hierarchical_ml"
  "hierarchical_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchical_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
