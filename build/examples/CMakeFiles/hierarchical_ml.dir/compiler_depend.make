# Empty compiler generated dependencies file for hierarchical_ml.
# This may be replaced when dependencies are built.
