file(REMOVE_RECURSE
  "CMakeFiles/jupiter_evolving.dir/jupiter_evolving.cpp.o"
  "CMakeFiles/jupiter_evolving.dir/jupiter_evolving.cpp.o.d"
  "jupiter_evolving"
  "jupiter_evolving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jupiter_evolving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
