# Empty compiler generated dependencies file for jupiter_evolving.
# This may be replaced when dependencies are built.
