file(REMOVE_RECURSE
  "CMakeFiles/oosim.dir/oosim.cpp.o"
  "CMakeFiles/oosim.dir/oosim.cpp.o.d"
  "oosim"
  "oosim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
