# Empty dependencies file for oosim.
# This may be replaced when dependencies are built.
