file(REMOVE_RECURSE
  "CMakeFiles/semi_oblivious.dir/semi_oblivious.cpp.o"
  "CMakeFiles/semi_oblivious.dir/semi_oblivious.cpp.o.d"
  "semi_oblivious"
  "semi_oblivious.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semi_oblivious.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
