# Empty compiler generated dependencies file for semi_oblivious.
# This may be replaced when dependencies are built.
