# Empty dependencies file for semi_oblivious.
# This may be replaced when dependencies are built.
