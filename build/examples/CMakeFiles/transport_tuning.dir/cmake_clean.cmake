file(REMOVE_RECURSE
  "CMakeFiles/transport_tuning.dir/transport_tuning.cpp.o"
  "CMakeFiles/transport_tuning.dir/transport_tuning.cpp.o.d"
  "transport_tuning"
  "transport_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transport_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
