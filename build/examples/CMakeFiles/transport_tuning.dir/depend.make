# Empty dependencies file for transport_tuning.
# This may be replaced when dependencies are built.
