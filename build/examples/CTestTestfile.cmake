# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_jupiter "/root/repo/build/examples/jupiter_evolving")
set_tests_properties(example_jupiter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_semi_oblivious "/root/repo/build/examples/semi_oblivious")
set_tests_properties(example_semi_oblivious PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hierarchical "/root/repo/build/examples/hierarchical_ml")
set_tests_properties(example_hierarchical PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_oosim "/root/repo/build/examples/oosim" "clos" "--ms" "20")
set_tests_properties(example_oosim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_failure_drill "/root/repo/build/examples/failure_drill")
set_tests_properties(example_failure_drill PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
