file(REMOVE_RECURSE
  "CMakeFiles/oo_api.dir/openoptics.cpp.o"
  "CMakeFiles/oo_api.dir/openoptics.cpp.o.d"
  "liboo_api.a"
  "liboo_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oo_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
