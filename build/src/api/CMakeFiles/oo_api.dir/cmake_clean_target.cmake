file(REMOVE_RECURSE
  "liboo_api.a"
)
