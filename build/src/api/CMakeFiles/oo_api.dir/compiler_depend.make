# Empty compiler generated dependencies file for oo_api.
# This may be replaced when dependencies are built.
