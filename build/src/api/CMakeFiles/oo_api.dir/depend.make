# Empty dependencies file for oo_api.
# This may be replaced when dependencies are built.
