file(REMOVE_RECURSE
  "CMakeFiles/oo_arch.dir/arch.cpp.o"
  "CMakeFiles/oo_arch.dir/arch.cpp.o.d"
  "liboo_arch.a"
  "liboo_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oo_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
