file(REMOVE_RECURSE
  "liboo_arch.a"
)
