# Empty compiler generated dependencies file for oo_arch.
# This may be replaced when dependencies are built.
