file(REMOVE_RECURSE
  "CMakeFiles/oo_common.dir/json.cpp.o"
  "CMakeFiles/oo_common.dir/json.cpp.o.d"
  "CMakeFiles/oo_common.dir/log.cpp.o"
  "CMakeFiles/oo_common.dir/log.cpp.o.d"
  "CMakeFiles/oo_common.dir/rng.cpp.o"
  "CMakeFiles/oo_common.dir/rng.cpp.o.d"
  "CMakeFiles/oo_common.dir/stats.cpp.o"
  "CMakeFiles/oo_common.dir/stats.cpp.o.d"
  "CMakeFiles/oo_common.dir/time.cpp.o"
  "CMakeFiles/oo_common.dir/time.cpp.o.d"
  "liboo_common.a"
  "liboo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
