file(REMOVE_RECURSE
  "liboo_common.a"
)
