# Empty compiler generated dependencies file for oo_common.
# This may be replaced when dependencies are built.
