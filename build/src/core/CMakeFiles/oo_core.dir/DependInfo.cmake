
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/calendar_queue.cpp" "src/core/CMakeFiles/oo_core.dir/calendar_queue.cpp.o" "gcc" "src/core/CMakeFiles/oo_core.dir/calendar_queue.cpp.o.d"
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/oo_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/oo_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/eqo.cpp" "src/core/CMakeFiles/oo_core.dir/eqo.cpp.o" "gcc" "src/core/CMakeFiles/oo_core.dir/eqo.cpp.o.d"
  "/root/repo/src/core/guardband.cpp" "src/core/CMakeFiles/oo_core.dir/guardband.cpp.o" "gcc" "src/core/CMakeFiles/oo_core.dir/guardband.cpp.o.d"
  "/root/repo/src/core/network.cpp" "src/core/CMakeFiles/oo_core.dir/network.cpp.o" "gcc" "src/core/CMakeFiles/oo_core.dir/network.cpp.o.d"
  "/root/repo/src/core/sync.cpp" "src/core/CMakeFiles/oo_core.dir/sync.cpp.o" "gcc" "src/core/CMakeFiles/oo_core.dir/sync.cpp.o.d"
  "/root/repo/src/core/time_flow_table.cpp" "src/core/CMakeFiles/oo_core.dir/time_flow_table.cpp.o" "gcc" "src/core/CMakeFiles/oo_core.dir/time_flow_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/oo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/eventsim/CMakeFiles/oo_eventsim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/oo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/oo_optics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
