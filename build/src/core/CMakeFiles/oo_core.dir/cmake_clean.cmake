file(REMOVE_RECURSE
  "CMakeFiles/oo_core.dir/calendar_queue.cpp.o"
  "CMakeFiles/oo_core.dir/calendar_queue.cpp.o.d"
  "CMakeFiles/oo_core.dir/controller.cpp.o"
  "CMakeFiles/oo_core.dir/controller.cpp.o.d"
  "CMakeFiles/oo_core.dir/eqo.cpp.o"
  "CMakeFiles/oo_core.dir/eqo.cpp.o.d"
  "CMakeFiles/oo_core.dir/guardband.cpp.o"
  "CMakeFiles/oo_core.dir/guardband.cpp.o.d"
  "CMakeFiles/oo_core.dir/network.cpp.o"
  "CMakeFiles/oo_core.dir/network.cpp.o.d"
  "CMakeFiles/oo_core.dir/sync.cpp.o"
  "CMakeFiles/oo_core.dir/sync.cpp.o.d"
  "CMakeFiles/oo_core.dir/time_flow_table.cpp.o"
  "CMakeFiles/oo_core.dir/time_flow_table.cpp.o.d"
  "liboo_core.a"
  "liboo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
