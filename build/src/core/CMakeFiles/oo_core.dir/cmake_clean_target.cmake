file(REMOVE_RECURSE
  "liboo_core.a"
)
