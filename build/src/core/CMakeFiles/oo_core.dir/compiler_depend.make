# Empty compiler generated dependencies file for oo_core.
# This may be replaced when dependencies are built.
