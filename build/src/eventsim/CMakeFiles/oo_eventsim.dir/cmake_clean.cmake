file(REMOVE_RECURSE
  "CMakeFiles/oo_eventsim.dir/simulator.cpp.o"
  "CMakeFiles/oo_eventsim.dir/simulator.cpp.o.d"
  "liboo_eventsim.a"
  "liboo_eventsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oo_eventsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
