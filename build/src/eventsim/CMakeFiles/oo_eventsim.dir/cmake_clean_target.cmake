file(REMOVE_RECURSE
  "liboo_eventsim.a"
)
