# Empty dependencies file for oo_eventsim.
# This may be replaced when dependencies are built.
