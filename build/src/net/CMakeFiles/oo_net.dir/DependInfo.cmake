
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/electrical_fabric.cpp" "src/net/CMakeFiles/oo_net.dir/electrical_fabric.cpp.o" "gcc" "src/net/CMakeFiles/oo_net.dir/electrical_fabric.cpp.o.d"
  "/root/repo/src/net/fifo_queue.cpp" "src/net/CMakeFiles/oo_net.dir/fifo_queue.cpp.o" "gcc" "src/net/CMakeFiles/oo_net.dir/fifo_queue.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/oo_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/oo_net.dir/link.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/oo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/eventsim/CMakeFiles/oo_eventsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
