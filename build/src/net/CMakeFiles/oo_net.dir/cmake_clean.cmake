file(REMOVE_RECURSE
  "CMakeFiles/oo_net.dir/electrical_fabric.cpp.o"
  "CMakeFiles/oo_net.dir/electrical_fabric.cpp.o.d"
  "CMakeFiles/oo_net.dir/fifo_queue.cpp.o"
  "CMakeFiles/oo_net.dir/fifo_queue.cpp.o.d"
  "CMakeFiles/oo_net.dir/link.cpp.o"
  "CMakeFiles/oo_net.dir/link.cpp.o.d"
  "liboo_net.a"
  "liboo_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oo_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
