file(REMOVE_RECURSE
  "liboo_net.a"
)
