# Empty compiler generated dependencies file for oo_net.
# This may be replaced when dependencies are built.
