
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optics/fabric.cpp" "src/optics/CMakeFiles/oo_optics.dir/fabric.cpp.o" "gcc" "src/optics/CMakeFiles/oo_optics.dir/fabric.cpp.o.d"
  "/root/repo/src/optics/schedule.cpp" "src/optics/CMakeFiles/oo_optics.dir/schedule.cpp.o" "gcc" "src/optics/CMakeFiles/oo_optics.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/oo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/eventsim/CMakeFiles/oo_eventsim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/oo_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
