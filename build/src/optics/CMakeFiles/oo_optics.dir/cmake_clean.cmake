file(REMOVE_RECURSE
  "CMakeFiles/oo_optics.dir/fabric.cpp.o"
  "CMakeFiles/oo_optics.dir/fabric.cpp.o.d"
  "CMakeFiles/oo_optics.dir/schedule.cpp.o"
  "CMakeFiles/oo_optics.dir/schedule.cpp.o.d"
  "liboo_optics.a"
  "liboo_optics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oo_optics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
