file(REMOVE_RECURSE
  "liboo_optics.a"
)
