# Empty compiler generated dependencies file for oo_optics.
# This may be replaced when dependencies are built.
