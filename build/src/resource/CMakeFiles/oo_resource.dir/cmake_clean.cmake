file(REMOVE_RECURSE
  "CMakeFiles/oo_resource.dir/tofino.cpp.o"
  "CMakeFiles/oo_resource.dir/tofino.cpp.o.d"
  "liboo_resource.a"
  "liboo_resource.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oo_resource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
