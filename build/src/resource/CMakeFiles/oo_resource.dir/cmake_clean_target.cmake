file(REMOVE_RECURSE
  "liboo_resource.a"
)
