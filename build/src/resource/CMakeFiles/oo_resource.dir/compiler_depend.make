# Empty compiler generated dependencies file for oo_resource.
# This may be replaced when dependencies are built.
