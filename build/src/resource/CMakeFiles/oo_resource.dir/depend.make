# Empty dependencies file for oo_resource.
# This may be replaced when dependencies are built.
