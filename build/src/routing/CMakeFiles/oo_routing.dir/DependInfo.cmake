
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/ta_routing.cpp" "src/routing/CMakeFiles/oo_routing.dir/ta_routing.cpp.o" "gcc" "src/routing/CMakeFiles/oo_routing.dir/ta_routing.cpp.o.d"
  "/root/repo/src/routing/time_expanded.cpp" "src/routing/CMakeFiles/oo_routing.dir/time_expanded.cpp.o" "gcc" "src/routing/CMakeFiles/oo_routing.dir/time_expanded.cpp.o.d"
  "/root/repo/src/routing/to_routing.cpp" "src/routing/CMakeFiles/oo_routing.dir/to_routing.cpp.o" "gcc" "src/routing/CMakeFiles/oo_routing.dir/to_routing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/oo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/oo_optics.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/oo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/oo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/eventsim/CMakeFiles/oo_eventsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
