file(REMOVE_RECURSE
  "CMakeFiles/oo_routing.dir/ta_routing.cpp.o"
  "CMakeFiles/oo_routing.dir/ta_routing.cpp.o.d"
  "CMakeFiles/oo_routing.dir/time_expanded.cpp.o"
  "CMakeFiles/oo_routing.dir/time_expanded.cpp.o.d"
  "CMakeFiles/oo_routing.dir/to_routing.cpp.o"
  "CMakeFiles/oo_routing.dir/to_routing.cpp.o.d"
  "liboo_routing.a"
  "liboo_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oo_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
