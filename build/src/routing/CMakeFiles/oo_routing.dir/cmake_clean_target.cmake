file(REMOVE_RECURSE
  "liboo_routing.a"
)
