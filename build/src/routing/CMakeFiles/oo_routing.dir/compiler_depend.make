# Empty compiler generated dependencies file for oo_routing.
# This may be replaced when dependencies are built.
