
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/services/circuit_gate.cpp" "src/services/CMakeFiles/oo_services.dir/circuit_gate.cpp.o" "gcc" "src/services/CMakeFiles/oo_services.dir/circuit_gate.cpp.o.d"
  "/root/repo/src/services/collector.cpp" "src/services/CMakeFiles/oo_services.dir/collector.cpp.o" "gcc" "src/services/CMakeFiles/oo_services.dir/collector.cpp.o.d"
  "/root/repo/src/services/export.cpp" "src/services/CMakeFiles/oo_services.dir/export.cpp.o" "gcc" "src/services/CMakeFiles/oo_services.dir/export.cpp.o.d"
  "/root/repo/src/services/failure_recovery.cpp" "src/services/CMakeFiles/oo_services.dir/failure_recovery.cpp.o" "gcc" "src/services/CMakeFiles/oo_services.dir/failure_recovery.cpp.o.d"
  "/root/repo/src/services/flow_aging.cpp" "src/services/CMakeFiles/oo_services.dir/flow_aging.cpp.o" "gcc" "src/services/CMakeFiles/oo_services.dir/flow_aging.cpp.o.d"
  "/root/repo/src/services/hybrid_steering.cpp" "src/services/CMakeFiles/oo_services.dir/hybrid_steering.cpp.o" "gcc" "src/services/CMakeFiles/oo_services.dir/hybrid_steering.cpp.o.d"
  "/root/repo/src/services/monitor.cpp" "src/services/CMakeFiles/oo_services.dir/monitor.cpp.o" "gcc" "src/services/CMakeFiles/oo_services.dir/monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/oo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/oo_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/oo_optics.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/oo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/eventsim/CMakeFiles/oo_eventsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
