file(REMOVE_RECURSE
  "CMakeFiles/oo_services.dir/circuit_gate.cpp.o"
  "CMakeFiles/oo_services.dir/circuit_gate.cpp.o.d"
  "CMakeFiles/oo_services.dir/collector.cpp.o"
  "CMakeFiles/oo_services.dir/collector.cpp.o.d"
  "CMakeFiles/oo_services.dir/export.cpp.o"
  "CMakeFiles/oo_services.dir/export.cpp.o.d"
  "CMakeFiles/oo_services.dir/failure_recovery.cpp.o"
  "CMakeFiles/oo_services.dir/failure_recovery.cpp.o.d"
  "CMakeFiles/oo_services.dir/flow_aging.cpp.o"
  "CMakeFiles/oo_services.dir/flow_aging.cpp.o.d"
  "CMakeFiles/oo_services.dir/hybrid_steering.cpp.o"
  "CMakeFiles/oo_services.dir/hybrid_steering.cpp.o.d"
  "CMakeFiles/oo_services.dir/monitor.cpp.o"
  "CMakeFiles/oo_services.dir/monitor.cpp.o.d"
  "liboo_services.a"
  "liboo_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oo_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
