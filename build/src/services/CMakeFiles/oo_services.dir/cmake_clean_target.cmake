file(REMOVE_RECURSE
  "liboo_services.a"
)
