# Empty dependencies file for oo_services.
# This may be replaced when dependencies are built.
