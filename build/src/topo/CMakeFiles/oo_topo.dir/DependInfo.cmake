
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/bvn.cpp" "src/topo/CMakeFiles/oo_topo.dir/bvn.cpp.o" "gcc" "src/topo/CMakeFiles/oo_topo.dir/bvn.cpp.o.d"
  "/root/repo/src/topo/jupiter.cpp" "src/topo/CMakeFiles/oo_topo.dir/jupiter.cpp.o" "gcc" "src/topo/CMakeFiles/oo_topo.dir/jupiter.cpp.o.d"
  "/root/repo/src/topo/matching.cpp" "src/topo/CMakeFiles/oo_topo.dir/matching.cpp.o" "gcc" "src/topo/CMakeFiles/oo_topo.dir/matching.cpp.o.d"
  "/root/repo/src/topo/round_robin.cpp" "src/topo/CMakeFiles/oo_topo.dir/round_robin.cpp.o" "gcc" "src/topo/CMakeFiles/oo_topo.dir/round_robin.cpp.o.d"
  "/root/repo/src/topo/sorn.cpp" "src/topo/CMakeFiles/oo_topo.dir/sorn.cpp.o" "gcc" "src/topo/CMakeFiles/oo_topo.dir/sorn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/oo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/oo_optics.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/oo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/eventsim/CMakeFiles/oo_eventsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
