file(REMOVE_RECURSE
  "CMakeFiles/oo_topo.dir/bvn.cpp.o"
  "CMakeFiles/oo_topo.dir/bvn.cpp.o.d"
  "CMakeFiles/oo_topo.dir/jupiter.cpp.o"
  "CMakeFiles/oo_topo.dir/jupiter.cpp.o.d"
  "CMakeFiles/oo_topo.dir/matching.cpp.o"
  "CMakeFiles/oo_topo.dir/matching.cpp.o.d"
  "CMakeFiles/oo_topo.dir/round_robin.cpp.o"
  "CMakeFiles/oo_topo.dir/round_robin.cpp.o.d"
  "CMakeFiles/oo_topo.dir/sorn.cpp.o"
  "CMakeFiles/oo_topo.dir/sorn.cpp.o.d"
  "liboo_topo.a"
  "liboo_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oo_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
