file(REMOVE_RECURSE
  "liboo_topo.a"
)
