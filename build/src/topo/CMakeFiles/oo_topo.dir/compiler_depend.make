# Empty compiler generated dependencies file for oo_topo.
# This may be replaced when dependencies are built.
