
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/flow_transfer.cpp" "src/transport/CMakeFiles/oo_transport.dir/flow_transfer.cpp.o" "gcc" "src/transport/CMakeFiles/oo_transport.dir/flow_transfer.cpp.o.d"
  "/root/repo/src/transport/tcp_lite.cpp" "src/transport/CMakeFiles/oo_transport.dir/tcp_lite.cpp.o" "gcc" "src/transport/CMakeFiles/oo_transport.dir/tcp_lite.cpp.o.d"
  "/root/repo/src/transport/tdtcp.cpp" "src/transport/CMakeFiles/oo_transport.dir/tdtcp.cpp.o" "gcc" "src/transport/CMakeFiles/oo_transport.dir/tdtcp.cpp.o.d"
  "/root/repo/src/transport/trim_retx.cpp" "src/transport/CMakeFiles/oo_transport.dir/trim_retx.cpp.o" "gcc" "src/transport/CMakeFiles/oo_transport.dir/trim_retx.cpp.o.d"
  "/root/repo/src/transport/udp_probe.cpp" "src/transport/CMakeFiles/oo_transport.dir/udp_probe.cpp.o" "gcc" "src/transport/CMakeFiles/oo_transport.dir/udp_probe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/oo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/oo_optics.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/oo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/eventsim/CMakeFiles/oo_eventsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
