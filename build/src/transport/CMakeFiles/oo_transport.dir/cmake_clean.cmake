file(REMOVE_RECURSE
  "CMakeFiles/oo_transport.dir/flow_transfer.cpp.o"
  "CMakeFiles/oo_transport.dir/flow_transfer.cpp.o.d"
  "CMakeFiles/oo_transport.dir/tcp_lite.cpp.o"
  "CMakeFiles/oo_transport.dir/tcp_lite.cpp.o.d"
  "CMakeFiles/oo_transport.dir/tdtcp.cpp.o"
  "CMakeFiles/oo_transport.dir/tdtcp.cpp.o.d"
  "CMakeFiles/oo_transport.dir/trim_retx.cpp.o"
  "CMakeFiles/oo_transport.dir/trim_retx.cpp.o.d"
  "CMakeFiles/oo_transport.dir/udp_probe.cpp.o"
  "CMakeFiles/oo_transport.dir/udp_probe.cpp.o.d"
  "liboo_transport.a"
  "liboo_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oo_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
