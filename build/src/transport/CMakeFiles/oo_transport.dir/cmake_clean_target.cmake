file(REMOVE_RECURSE
  "liboo_transport.a"
)
