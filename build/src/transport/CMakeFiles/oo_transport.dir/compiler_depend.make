# Empty compiler generated dependencies file for oo_transport.
# This may be replaced when dependencies are built.
