
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/allreduce.cpp" "src/workload/CMakeFiles/oo_workload.dir/allreduce.cpp.o" "gcc" "src/workload/CMakeFiles/oo_workload.dir/allreduce.cpp.o.d"
  "/root/repo/src/workload/kv.cpp" "src/workload/CMakeFiles/oo_workload.dir/kv.cpp.o" "gcc" "src/workload/CMakeFiles/oo_workload.dir/kv.cpp.o.d"
  "/root/repo/src/workload/patterns.cpp" "src/workload/CMakeFiles/oo_workload.dir/patterns.cpp.o" "gcc" "src/workload/CMakeFiles/oo_workload.dir/patterns.cpp.o.d"
  "/root/repo/src/workload/trace_file.cpp" "src/workload/CMakeFiles/oo_workload.dir/trace_file.cpp.o" "gcc" "src/workload/CMakeFiles/oo_workload.dir/trace_file.cpp.o.d"
  "/root/repo/src/workload/traces.cpp" "src/workload/CMakeFiles/oo_workload.dir/traces.cpp.o" "gcc" "src/workload/CMakeFiles/oo_workload.dir/traces.cpp.o.d"
  "/root/repo/src/workload/transfer_pool.cpp" "src/workload/CMakeFiles/oo_workload.dir/transfer_pool.cpp.o" "gcc" "src/workload/CMakeFiles/oo_workload.dir/transfer_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/oo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/oo_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/oo_optics.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/oo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/eventsim/CMakeFiles/oo_eventsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
