file(REMOVE_RECURSE
  "CMakeFiles/oo_workload.dir/allreduce.cpp.o"
  "CMakeFiles/oo_workload.dir/allreduce.cpp.o.d"
  "CMakeFiles/oo_workload.dir/kv.cpp.o"
  "CMakeFiles/oo_workload.dir/kv.cpp.o.d"
  "CMakeFiles/oo_workload.dir/patterns.cpp.o"
  "CMakeFiles/oo_workload.dir/patterns.cpp.o.d"
  "CMakeFiles/oo_workload.dir/trace_file.cpp.o"
  "CMakeFiles/oo_workload.dir/trace_file.cpp.o.d"
  "CMakeFiles/oo_workload.dir/traces.cpp.o"
  "CMakeFiles/oo_workload.dir/traces.cpp.o.d"
  "CMakeFiles/oo_workload.dir/transfer_pool.cpp.o"
  "CMakeFiles/oo_workload.dir/transfer_pool.cpp.o.d"
  "liboo_workload.a"
  "liboo_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oo_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
