file(REMOVE_RECURSE
  "liboo_workload.a"
)
