# Empty compiler generated dependencies file for oo_workload.
# This may be replaced when dependencies are built.
