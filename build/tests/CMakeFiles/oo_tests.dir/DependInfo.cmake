
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_arch.cpp" "tests/CMakeFiles/oo_tests.dir/test_arch.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_arch.cpp.o.d"
  "/root/repo/tests/test_arch2.cpp" "tests/CMakeFiles/oo_tests.dir/test_arch2.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_arch2.cpp.o.d"
  "/root/repo/tests/test_calendar_eqo.cpp" "tests/CMakeFiles/oo_tests.dir/test_calendar_eqo.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_calendar_eqo.cpp.o.d"
  "/root/repo/tests/test_controller.cpp" "tests/CMakeFiles/oo_tests.dir/test_controller.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_controller.cpp.o.d"
  "/root/repo/tests/test_eqo_sweep.cpp" "tests/CMakeFiles/oo_tests.dir/test_eqo_sweep.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_eqo_sweep.cpp.o.d"
  "/root/repo/tests/test_fabric.cpp" "tests/CMakeFiles/oo_tests.dir/test_fabric.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_fabric.cpp.o.d"
  "/root/repo/tests/test_host.cpp" "tests/CMakeFiles/oo_tests.dir/test_host.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_host.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/oo_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_json.cpp" "tests/CMakeFiles/oo_tests.dir/test_json.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_json.cpp.o.d"
  "/root/repo/tests/test_misc_api.cpp" "tests/CMakeFiles/oo_tests.dir/test_misc_api.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_misc_api.cpp.o.d"
  "/root/repo/tests/test_monitor2.cpp" "tests/CMakeFiles/oo_tests.dir/test_monitor2.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_monitor2.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/oo_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_network.cpp" "tests/CMakeFiles/oo_tests.dir/test_network.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_network.cpp.o.d"
  "/root/repo/tests/test_paper_semantics.cpp" "tests/CMakeFiles/oo_tests.dir/test_paper_semantics.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_paper_semantics.cpp.o.d"
  "/root/repo/tests/test_patterns_recovery.cpp" "tests/CMakeFiles/oo_tests.dir/test_patterns_recovery.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_patterns_recovery.cpp.o.d"
  "/root/repo/tests/test_property.cpp" "tests/CMakeFiles/oo_tests.dir/test_property.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_property.cpp.o.d"
  "/root/repo/tests/test_resource_api.cpp" "tests/CMakeFiles/oo_tests.dir/test_resource_api.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_resource_api.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/oo_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_routing.cpp" "tests/CMakeFiles/oo_tests.dir/test_routing.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_routing.cpp.o.d"
  "/root/repo/tests/test_schedule.cpp" "tests/CMakeFiles/oo_tests.dir/test_schedule.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_schedule.cpp.o.d"
  "/root/repo/tests/test_services.cpp" "tests/CMakeFiles/oo_tests.dir/test_services.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_services.cpp.o.d"
  "/root/repo/tests/test_shale.cpp" "tests/CMakeFiles/oo_tests.dir/test_shale.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_shale.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/oo_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/oo_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_stress_fuzz.cpp" "tests/CMakeFiles/oo_tests.dir/test_stress_fuzz.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_stress_fuzz.cpp.o.d"
  "/root/repo/tests/test_tdtcp_failure.cpp" "tests/CMakeFiles/oo_tests.dir/test_tdtcp_failure.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_tdtcp_failure.cpp.o.d"
  "/root/repo/tests/test_tft.cpp" "tests/CMakeFiles/oo_tests.dir/test_tft.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_tft.cpp.o.d"
  "/root/repo/tests/test_time.cpp" "tests/CMakeFiles/oo_tests.dir/test_time.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_time.cpp.o.d"
  "/root/repo/tests/test_topo.cpp" "tests/CMakeFiles/oo_tests.dir/test_topo.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_topo.cpp.o.d"
  "/root/repo/tests/test_trace_export.cpp" "tests/CMakeFiles/oo_tests.dir/test_trace_export.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_trace_export.cpp.o.d"
  "/root/repo/tests/test_transport.cpp" "tests/CMakeFiles/oo_tests.dir/test_transport.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_transport.cpp.o.d"
  "/root/repo/tests/test_trim_retx.cpp" "tests/CMakeFiles/oo_tests.dir/test_trim_retx.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_trim_retx.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/oo_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/oo_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/api/CMakeFiles/oo_api.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/oo_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/oo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/oo_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/oo_services.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/oo_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/oo_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/oo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/optics/CMakeFiles/oo_optics.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/oo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/eventsim/CMakeFiles/oo_eventsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/resource/CMakeFiles/oo_resource.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
