# Empty dependencies file for oo_tests.
# This may be replaced when dependencies are built.
