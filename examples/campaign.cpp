// campaign — run a declarative experiment campaign (src/runner/) from the
// command line:
//
//   campaign --spec FILE [--jobs N] [--out DIR] [--resume] [--attempts N]
//
// The spec is a JSON cartesian grid × seed replicas (see
// EXPERIMENTS.md "Campaign runner"); runs execute on a bounded worker pool
// with per-run crash isolation and deterministic per-run seeds. With
// --out, the campaign appends per-run outcomes to DIR/manifest.jsonl as
// they finish and writes DIR/results.{jsonl,csv} ordered by run index —
// byte-identical whatever --jobs says. Re-invoking with --resume skips
// every run the manifest already records as ok.
#include <cstdio>

#include "api/openoptics.h"
#include "common/cli.h"
#include "runner/experiments.h"

int main(int argc, char** argv) {
  std::string spec_path, out_dir;
  int jobs = 1, attempts = 0;
  bool resume = false, list = false, quiet = false;

  oo::cli::ArgParser args("campaign",
                          "run a JSON experiment-campaign spec");
  args.option("--spec", &spec_path, "campaign spec JSON file")
      .option("--jobs", &jobs, "worker threads (default 1)")
      .option("--out", &out_dir,
              "output dir for manifest.jsonl + results.{jsonl,csv}")
      .flag("--resume", &resume, "skip runs the manifest records as ok")
      .option("--attempts", &attempts,
              "override the spec's max_attempts (0 = keep)")
      .flag("--list", &list, "list registered experiments and exit")
      .flag("--quiet", &quiet, "no progress line");
  if (!args.parse(argc, argv)) return 1;

  if (list) {
    for (const auto& name : oo::runner::experiment_names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (spec_path.empty()) {
    std::fprintf(stderr, "campaign: --spec is required\n%s",
                 args.usage().c_str());
    return 1;
  }

  try {
    auto spec = oo::runner::CampaignSpec::from_file(spec_path);
    if (attempts > 0) spec.max_attempts = attempts;

    oo::runner::RunnerOptions opt;
    opt.jobs = jobs;
    opt.resume = resume;
    opt.out_dir = out_dir;
    opt.progress = !quiet;

    oo::runner::CampaignRunner engine(
        spec, oo::runner::find_experiment(spec.experiment), opt);
    const auto s = engine.run();

    std::printf(
        "campaign %s: %d runs (%d executed, %d resumed) — %d ok, %d "
        "failed, %d retries\n",
        spec.name.c_str(), s.total, s.executed, s.skipped, s.ok, s.failed,
        s.retries);
    std::printf("wall %.1f ms, run-wall sum %.1f ms, speedup %.2fx at "
                "--jobs %d\n",
                s.wall_ms, s.run_wall_ms_sum, s.speedup(), jobs);
    if (!out_dir.empty()) {
      std::printf("wrote %s/manifest.jsonl, results.jsonl, results.csv\n",
                  out_dir.c_str());
    }
    // Failed runs are campaign-visible, not campaign-fatal; still exit
    // non-zero so CI notices unless the spec injected them on purpose.
    return s.failed > 0 && spec.fixed.count("expect_failures") == 0 ? 3 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign: %s\n", e.what());
    return 1;
  }
}
