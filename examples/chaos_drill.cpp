// Chaos drill: a JSON-scripted FaultPlan throws every injectable fault
// class at a c-Through hybrid instance — link flaps, transceiver BER
// degradation, a control-plane outage, and an OCS reconfiguration stall —
// while the event-driven recovery service masks failures, re-admits
// repaired circuits, retries deploys through the controller outage, and
// flips the hybrid steering into degraded mode so elephants lean on the
// electrical fabric. Prints the robustness telemetry the run produced.
//
// With --clock-chaos the drill switches fault domains: a rotor calendar
// fabric takes a clock-drift ramp with suppressed resync beacons (the §7
// silent wrong-slice hazard), a clock step, and a fabric-wide sync outage,
// while the SyncWatchdog detects the desync from observable symptoms and
// walks the drifted ToR down the widen -> quarantine -> re-admit ladder.
//
// With --control-chaos the drill targets the transactional southbound
// control plane: a rotor fabric takes total install-message loss to one
// ToR, fabric-wide message duplication, port churn that forces recovery
// redeploys through the degraded channel, and a controller crash with
// restart resync. The fenced run is executed twice (the seed-determinism
// replay gate: counter fingerprints must match byte-for-byte) and once
// with fencing disabled — the legacy scatter baseline — which must expose
// mixed-epoch slices that the transaction keeps at zero.
//
// With --trace=PATH the whole drill is captured in the flight recorder and
// written as Chrome trace_event JSON (chrome://tracing, Perfetto): circuit
// up/down per fault, per-class drops, control-plane deploys and retries —
// and, under --clock-chaos, wrong-slice launches, lost beacons, desync
// detections, guard widenings, quarantines, and re-admissions.
// With --quorum-chaos the control plane runs as a 3-replica controller
// quorum: a scripted leader kill lands mid-deploy-transaction (the new
// leader finishes or presumed-aborts the in-flight epoch from the
// replicated log), a replica partition opens and heals, and a log
// divergence self-repairs on the next sync. The scenario runs twice and
// the counter fingerprints must match byte-for-byte (the replay gate),
// with zero mixed-epoch slices leaking from the dead leader's term.
//
// With --gray-chaos the drill injects the four gray-failure kinds in
// disjoint windows on disjoint nodes — a BER aging ramp, an intermittent
// port-pair, a silently non-applying install agent, and a telemetry skew —
// and the HealthScanner must localize each from observable symptoms alone
// (conservation audits, tomography, probes, claim-vs-behavior), walk the
// Suspect -> Degraded -> Quarantined ladder, and re-admit after the fault
// heals, with zero off-target suspects. The scenario runs twice and the
// counter fingerprints must match byte-for-byte (the replay gate).
#include <cstdio>
#include <string>

#include "arch/arch.h"
#include "common/cli.h"
#include "core/quorum.h"
#include "routing/ta_routing.h"
#include "routing/to_routing.h"
#include "services/export.h"
#include "services/failure_recovery.h"
#include "services/fault_plan.h"
#include "services/health_scanner.h"
#include "services/hybrid_steering.h"
#include "services/monitor.h"
#include "services/sync_watchdog.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/trace_export.h"
#include "workload/kv.h"

using namespace oo;
using namespace oo::literals;

namespace {

void write_trace(const std::string& trace_path,
                 const telemetry::FlightRecorder& recorder) {
  if (trace_path.empty()) return;
  services::write_file(trace_path, telemetry::chrome_trace_json(recorder));
  std::printf("wrote Chrome trace (%zu events) to %s\n", recorder.size(),
              trace_path.c_str());
}

int run_fault_drill(const std::string& trace_path) {
  arch::Params p;
  p.tors = 8;
  p.hosts_per_tor = 1;
  p.uplinks = 2;
  p.collect_interval = 20_ms;
  p.reconfig_delay = 5_ms;  // fast MEMS so the drill fits in 300 ms
  auto inst = arch::make_cthrough(p);

  telemetry::FlightRecorder recorder(std::size_t{1} << 16);
  if (!trace_path.empty()) inst.net->sim().set_recorder(&recorder);

  services::Monitor monitor(*inst.net, 1_ms);
  monitor.start();

  // Elephant + mice mix: a KV service plus bulk flows big enough for the
  // flow-aging classifier to steer onto direct circuits.
  std::vector<HostId> clients = {1, 2, 3, 4, 5, 6, 7};
  workload::KvWorkload kv(*inst.net, 0, clients, 1_ms);
  kv.start();
  inst.net->sim().schedule_every(100_us, 200_us, [net = inst.net.get()]() {
    for (HostId src : {HostId{2}, HostId{5}}) {
      core::Packet pkt;
      pkt.type = core::PacketType::Data;
      pkt.flow = 1000 + src;
      pkt.dst_host = (src + 3) % 8;
      pkt.size_bytes = 9000;
      net->host(src).send(std::move(pkt));
    }
  });

  // Let the TA control loop deploy circuits before arming recovery, so the
  // captured baseline is the real (non-empty) topology.
  inst.run_for(60_ms);

  services::FailureRecovery recovery(
      *inst.net, *inst.ctl,
      [&](const optics::Schedule&) {
        return routing::electrical_default(p.tors);
      },
      /*scrub=*/1_ms);
  auto steering = inst.steering;
  recovery.set_degraded_hook(
      [steering](bool degraded) { steering->set_degraded(degraded); });
  recovery.start();

  // The fault script, as it would ship in a chaos-drill config file.
  services::FaultPlan plan(*inst.net, /*seed=*/2024, inst.ctl.get());
  plan.load_json(R"({"events": [
    {"kind": "link_flap", "at_us": 80000, "node": 0, "port": 0,
     "down_us": 15000, "period_us": 40000, "cycles": 3, "jitter": 0.2},
    {"kind": "ber", "at_us": 100000, "node": 2, "port": 0, "ber": 2e-6},
    {"kind": "ber", "at_us": 100000, "node": 2, "port": 1, "ber": 2e-6},
    {"kind": "ber", "at_us": 220000, "node": 2, "port": 0, "ber": 0},
    {"kind": "ber", "at_us": 220000, "node": 2, "port": 1, "ber": 0},
    {"kind": "control_fail", "at_us": 120000, "duration_us": 30000},
    {"kind": "control_delay", "at_us": 170000, "delay_us": 2000,
     "duration_us": 40000},
    {"kind": "reconfig_stall", "at_us": 162000, "extra_us": 3000}
  ]})");
  plan.arm();

  inst.run_for(240_ms);
  kv.stop();

  const auto health = monitor.health();
  std::printf("=== chaos drill: %s, 300 ms, %zu scripted events ===\n",
              inst.name.c_str(), plan.size());
  std::printf("injected: %s\n", plan.summary().c_str());
  std::printf("kv ops completed:       %lld\n",
              static_cast<long long>(kv.ops_completed()));
  std::printf("elephants steered:      %lld (diverted while degraded: %lld)\n",
              static_cast<long long>(steering->steered_packets()),
              static_cast<long long>(steering->degraded_diverted()));
  std::printf("fabric drops by class:  failed=%lld corrupt=%lld other=%lld\n",
              static_cast<long long>(health.failed_drops),
              static_cast<long long>(health.corrupt_drops),
              static_cast<long long>(health.fabric_drops -
                                     health.failed_drops -
                                     health.corrupt_drops));
  std::printf("deploys rejected:       %lld (recovery retries: %d)\n",
              static_cast<long long>(inst.ctl->deploys_rejected()),
              recovery.retries());
  std::printf("\n%s\n", services::robustness_csv(
                            recovery, inst.net->optical()).c_str());

  write_trace(trace_path, recorder);

  const bool passed = recovery.recoveries() >= 1 &&
                      recovery.port_downs() >= 3 &&
                      recovery.port_ups() >= 3 &&
                      recovery.availability() < 1.0 &&
                      recovery.availability() > 0.0 &&
                      kv.ops_completed() > 100;
  std::printf("%s\n", passed ? "chaos drill passed: all fault classes "
                               "injected, detected, and recovered"
                             : "chaos drill FAILED");
  return passed ? 0 : 2;
}

int run_clock_drill(const std::string& trace_path) {
  // Short slices so a realistic drift rate walks a clock across a full
  // slice (the silent misdelivery regime) within milliseconds of sim time.
  arch::Params p;
  p.tors = 8;
  p.hosts_per_tor = 1;
  p.uplinks = 1;
  p.slice = 5_us;
  p.seed = 7;
  auto inst =
      arch::make_rotornet(p, arch::RotorRouting::Direct, /*hybrid=*/true);
  auto* net = inst.net.get();

  telemetry::FlightRecorder recorder(std::size_t{1} << 16);
  if (!trace_path.empty()) net->sim().set_recorder(&recorder);

  // The watchdog's quarantine hook drives per-node degraded steering: the
  // moment a ToR is fenced off the calendar, elephant flows from/to it stop
  // targeting optical circuits at the source host.
  auto steering = std::make_shared<services::HybridSteering>(
      *net, /*elephant_bytes=*/256 << 10, /*idle_reset=*/50_ms);
  services::SyncWatchdog watchdog(*net);
  std::int64_t wrong_at_quarantine = -1;
  watchdog.set_quarantine_hook(
      [steering, net, &wrong_at_quarantine](NodeId n, bool quarantined) {
        steering->set_node_degraded(n, quarantined);
        if (quarantined && wrong_at_quarantine < 0) {
          wrong_at_quarantine = net->optical().wrong_slice();
        }
      });
  watchdog.start();

  // Steady all-to-all calendar traffic: every launch is a chance for a
  // drifted sender to hit the wrong circuit.
  net->sim().schedule_every(5_us, 10_us, [net]() {
    for (HostId src = 0; src < net->num_hosts(); ++src) {
      core::Packet pkt;
      pkt.type = core::PacketType::Data;
      pkt.flow = 500 + src;
      pkt.dst_host = (src + 3) % net->num_hosts();
      pkt.size_bytes = 1500;
      net->host(src).send(std::move(pkt));
    }
  });

  // The clock-fault script: node 2 drifts fast with its beacons suppressed
  // (drift compounds unchecked — the silent hazard), node 5 takes an
  // instant 30 us step that the next beacon disciplines, and a short
  // fabric-wide outage exercises the watchdog's probe/backoff path.
  services::FaultPlan plan(*net, /*seed=*/2024, inst.ctl.get());
  plan.load_json(R"({"events": [
    {"kind": "clock_drift", "at_us": 2000, "node": 2, "ppm": 8000,
     "duration_us": 6000},
    {"kind": "beacon_loss", "at_us": 2000, "node": 2, "duration_us": 6000},
    {"kind": "clock_step", "at_us": 14000, "node": 5, "extra_us": 30},
    {"kind": "sync_outage", "at_us": 17000, "duration_us": 800}
  ]})");
  plan.arm();

  inst.run_for(26_ms);
  // Quiet tail: every clock is disciplined again — the fabric must carry
  // zero further wrong-slice launches.
  const std::int64_t wrong_quiet = net->optical().wrong_slice();
  inst.run_for(5_ms);
  const std::int64_t wrong_final = net->optical().wrong_slice();

  const auto& fab = net->optical();
  std::int64_t arrivals = 0;
  for (NodeId n = 0; n < net->num_tors(); ++n) {
    arrivals += net->tor(n).wrong_slice_arrivals();
  }
  std::printf("=== clock chaos drill: %s, 31 ms, %zu scripted events ===\n",
              inst.name.c_str(), plan.size());
  std::printf("injected: %s\n", plan.summary().c_str());
  std::printf("wrong-slice launches:   %lld (at quarantine: %lld, "
              "after quiet tail: +%lld)\n",
              static_cast<long long>(wrong_final),
              static_cast<long long>(wrong_at_quarantine),
              static_cast<long long>(wrong_final - wrong_quiet));
  std::printf("wrong-slice arrivals:   %lld (receive-side symptom)\n",
              static_cast<long long>(arrivals));
  std::printf("watchdog: desyncs=%lld widenings=%lld quarantines=%lld "
              "readmissions=%lld probes ok/lost=%lld/%lld\n",
              static_cast<long long>(watchdog.desyncs_detected()),
              static_cast<long long>(watchdog.guard_widenings()),
              static_cast<long long>(watchdog.quarantines()),
              static_cast<long long>(watchdog.readmissions()),
              static_cast<long long>(watchdog.probes_ok()),
              static_cast<long long>(watchdog.probes_lost()));
  if (watchdog.time_to_detect_us().count() > 0) {
    std::printf("detect latency:         p50=%.1f us (n=%zu)\n",
                watchdog.time_to_detect_us().percentile(50),
                watchdog.time_to_detect_us().count());
  }
  if (watchdog.quarantine_us().count() > 0) {
    std::printf("quarantine held:        p50=%.1f us (n=%zu)\n",
                watchdog.quarantine_us().percentile(50),
                watchdog.quarantine_us().count());
  }
  std::printf("fabric: delivered=%lld drops=%lld\n",
              static_cast<long long>(fab.delivered()),
              static_cast<long long>(fab.total_drops()));

  write_trace(trace_path, recorder);

  const bool passed = watchdog.desyncs_detected() >= 1 &&
                      watchdog.quarantines() >= 1 &&
                      watchdog.readmissions() >= 1 &&
                      watchdog.probes_lost() >= 1 &&
                      wrong_at_quarantine >= 0 &&
                      wrong_final > 0 &&          // the hazard manifested
                      wrong_final == wrong_quiet &&  // ...and was contained
                      !steering->node_degraded(2);   // node 2 re-admitted
  std::printf("%s\n",
              passed ? "clock chaos drill passed: desync detected from "
                       "symptoms, quarantined, and re-admitted"
                     : "clock chaos drill FAILED");
  return passed ? 0 : 2;
}

// Counter fingerprint of one control-chaos scenario run. Two runs of the
// same scenario at the same seed must produce identical fingerprints (the
// replay gate); the fenced/unfenced pair differ exactly in the epoch
// exposure the transaction prevents.
struct ControlFingerprint {
  std::uint64_t epoch = 0;
  std::int64_t commits = 0;
  std::int64_t aborts = 0;
  std::int64_t rollbacks = 0;
  std::int64_t fenced = 0;
  std::int64_t resyncs = 0;
  std::int64_t rejected = 0;
  std::int64_t mixed = 0;
  std::int64_t sb_sent = 0;
  std::int64_t sb_lost = 0;
  std::int64_t sb_duped = 0;
  std::int64_t delivered = 0;
  std::int64_t events = 0;
  int recoveries = 0;
  int retries = 0;

  std::string summary() const {
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "epoch=%llu commits=%lld aborts=%lld rollbacks=%lld fenced=%lld "
        "resyncs=%lld rejected=%lld mixed=%lld sb=%lld/%lld/%lld "
        "delivered=%lld events=%lld recoveries=%d retries=%d",
        static_cast<unsigned long long>(epoch),
        static_cast<long long>(commits), static_cast<long long>(aborts),
        static_cast<long long>(rollbacks), static_cast<long long>(fenced),
        static_cast<long long>(resyncs), static_cast<long long>(rejected),
        static_cast<long long>(mixed), static_cast<long long>(sb_sent),
        static_cast<long long>(sb_lost), static_cast<long long>(sb_duped),
        static_cast<long long>(delivered), static_cast<long long>(events),
        recoveries, retries);
    return buf;
  }
};

ControlFingerprint run_control_scenario(bool fencing,
                                        const std::string& trace_path) {
  arch::Params p;
  p.tors = 8;
  p.hosts_per_tor = 1;
  p.uplinks = 1;
  p.slice = 50_us;
  p.seed = 7;
  auto inst = arch::make_rotornet(p, arch::RotorRouting::Direct);
  auto* net = inst.net.get();
  auto* ctl = inst.ctl.get();

  telemetry::FlightRecorder recorder(std::size_t{1} << 16);
  if (!trace_path.empty()) net->sim().set_recorder(&recorder);

  // The architecture's initial deploy already happened over an ideal
  // (inline) channel; from here on every install crosses a 20 us modeled
  // southbound, so recovery redeploys are real two-phase transactions.
  ctl->set_fencing(fencing);
  core::SouthboundConfig sb;
  sb.latency = 20_us;
  ctl->southbound().configure(sb);

  services::FailureRecovery recovery(
      *net, *ctl,
      [](const optics::Schedule& s) { return routing::direct_to(s); },
      /*scrub=*/1_ms);
  recovery.start();

  // Steady calendar traffic so epoch mixture is a forwarding-plane fact,
  // not just a bookkeeping one.
  net->sim().schedule_every(25_us, 100_us, [net]() {
    for (HostId src = 0; src < net->num_hosts(); ++src) {
      core::Packet pkt;
      pkt.type = core::PacketType::Data;
      pkt.flow = 700 + src;
      pkt.dst_host = (src + 3) % net->num_hosts();
      pkt.size_bytes = 1500;
      net->host(src).send(std::move(pkt));
    }
  });

  // The control-chaos script: total install loss to ToR 3 while port churn
  // forces redeploys (every prepare times out and rolls back until the
  // window lifts), then fabric-wide duplication (echo installs must be
  // fenced), then a controller crash spanning a failure (deploys rejected,
  // retried, and resynced after restart).
  services::FaultPlan plan(*net, /*seed=*/2024, ctl);
  plan.load_json(R"({"events": [
    {"kind": "sb_msg_loss", "at_us": 5000, "node": 3, "prob": 1.0,
     "duration_us": 20000},
    {"kind": "port_fail", "at_us": 8000, "node": 0, "port": 0},
    {"kind": "port_repair", "at_us": 22000, "node": 0, "port": 0},
    {"kind": "sb_msg_dup", "at_us": 30000, "prob": 0.5,
     "duration_us": 12000},
    {"kind": "port_fail", "at_us": 32000, "node": 1, "port": 0},
    {"kind": "port_repair", "at_us": 38000, "node": 1, "port": 0},
    {"kind": "controller_crash", "at_us": 45000, "duration_us": 3000},
    {"kind": "port_fail", "at_us": 46000, "node": 2, "port": 0},
    {"kind": "port_repair", "at_us": 58000, "node": 2, "port": 0}
  ]})");
  plan.arm();

  inst.run_for(80_ms);

  write_trace(trace_path, recorder);

  ControlFingerprint fp;
  fp.epoch = ctl->committed_epoch();
  fp.commits = ctl->txn_commits();
  fp.aborts = ctl->txn_aborts();
  fp.rollbacks = ctl->txn_rollbacks();
  fp.fenced = ctl->fenced_stale_installs();
  fp.resyncs = ctl->resyncs();
  fp.rejected = ctl->deploys_rejected();
  fp.mixed = net->mixed_epoch_slices();
  fp.sb_sent = ctl->southbound().msgs_sent();
  fp.sb_lost = ctl->southbound().msgs_lost();
  fp.sb_duped = ctl->southbound().msgs_duped();
  fp.delivered = net->optical().delivered();
  fp.events = net->sim().events_executed();
  fp.recoveries = recovery.recoveries();
  fp.retries = recovery.retries();
  return fp;
}

int run_control_drill(const std::string& trace_path) {
  const ControlFingerprint fenced = run_control_scenario(true, trace_path);
  const ControlFingerprint replay = run_control_scenario(true, "");
  const ControlFingerprint scatter = run_control_scenario(false, "");

  std::printf("=== control chaos drill: rotornet-direct, 80 ms, "
              "9 scripted events ===\n");
  std::printf("fenced:   %s\n", fenced.summary().c_str());
  std::printf("replay:   %s\n", replay.summary().c_str());
  std::printf("scatter:  %s\n", scatter.summary().c_str());

  const bool deterministic = fenced.summary() == replay.summary();
  const bool passed = deterministic &&
                      fenced.mixed == 0 &&        // txn hides epoch mixture
                      scatter.mixed > 0 &&        // ...that scatter exposes
                      fenced.commits >= 2 &&
                      fenced.aborts >= 1 &&       // loss window rolled back
                      fenced.rollbacks >= 1 &&
                      fenced.resyncs == 1 &&      // crash + restart resynced
                      fenced.rejected >= 1 &&     // deploys hit the outage
                      fenced.sb_lost >= 1 &&
                      fenced.sb_duped >= 1 &&
                      fenced.recoveries >= 1 &&
                      fenced.retries >= 1;
  if (!deterministic) {
    std::printf("replay gate FAILED: fingerprints differ\n");
  }
  std::printf("%s\n",
              passed ? "control chaos drill passed: lossy southbound "
                       "contained, stale installs fenced, crash resynced, "
                       "replay deterministic"
                     : "control chaos drill FAILED");
  return passed ? 0 : 2;
}

// Counter fingerprint of one quorum-chaos scenario run: everything the
// election, replication, failover, and transaction machinery counts.
struct QuorumFingerprint {
  std::uint64_t epoch = 0;
  std::uint64_t term = 0;
  std::int64_t commits = 0;
  std::int64_t aborts = 0;
  std::int64_t rollbacks = 0;
  std::int64_t resyncs = 0;
  std::int64_t rejected = 0;
  std::int64_t mixed = 0;
  std::int64_t elections = 0;
  std::int64_t failovers = 0;
  std::int64_t step_downs = 0;
  std::int64_t repairs = 0;
  std::int64_t cut = 0;
  std::int64_t stale = 0;
  std::int64_t log_len = 0;
  std::int64_t rep_sent = 0;
  std::int64_t rep_lost = 0;
  std::int64_t events = 0;
  int retries = 0;
  bool deploy_done = false;

  std::string summary() const {
    char buf[360];
    std::snprintf(
        buf, sizeof(buf),
        "epoch=%llu term=%llu commits=%lld aborts=%lld rollbacks=%lld "
        "resyncs=%lld rejected=%lld mixed=%lld elections=%lld failovers=%lld "
        "stepdowns=%lld repairs=%lld cut=%lld stale=%lld log=%lld "
        "rep=%lld/%lld events=%lld retries=%d done=%d",
        static_cast<unsigned long long>(epoch),
        static_cast<unsigned long long>(term),
        static_cast<long long>(commits), static_cast<long long>(aborts),
        static_cast<long long>(rollbacks), static_cast<long long>(resyncs),
        static_cast<long long>(rejected), static_cast<long long>(mixed),
        static_cast<long long>(elections), static_cast<long long>(failovers),
        static_cast<long long>(step_downs), static_cast<long long>(repairs),
        static_cast<long long>(cut), static_cast<long long>(stale),
        static_cast<long long>(log_len), static_cast<long long>(rep_sent),
        static_cast<long long>(rep_lost), static_cast<long long>(events),
        retries, deploy_done ? 1 : 0);
    return buf;
  }
};

QuorumFingerprint run_quorum_scenario(const std::string& trace_path) {
  arch::Params p;
  p.tors = 8;
  p.hosts_per_tor = 1;
  p.uplinks = 1;
  p.slice = 50_us;
  p.seed = 7;
  auto inst = arch::make_rotornet(p, arch::RotorRouting::Direct);
  auto* net = inst.net.get();
  auto* ctl = inst.ctl.get();

  telemetry::FlightRecorder recorder(std::size_t{1} << 16);
  if (!trace_path.empty()) net->sim().set_recorder(&recorder);

  core::SouthboundConfig sb;
  sb.latency = 20_us;
  ctl->southbound().configure(sb);

  // Three controller replicas over the same modeled channel; replica 0
  // bootstraps leadership, so the architecture's already-deployed state is
  // simply inherited by the quorum.
  core::QuorumConfig qc;
  qc.replicas = 3;
  qc.election_timeout = 200_us;
  qc.heartbeat = 50_us;
  core::ControllerQuorum quorum(*net, *ctl, qc);
  quorum.start();

  services::FailureRecovery recovery(
      *net, *ctl,
      [](const optics::Schedule& s) { return routing::direct_to(s); },
      /*scrub=*/1_ms);
  recovery.start();

  net->sim().schedule_every(25_us, 100_us, [net]() {
    for (HostId src = 0; src < net->num_hosts(); ++src) {
      core::Packet pkt;
      pkt.type = core::PacketType::Data;
      pkt.flow = 900 + src;
      pkt.dst_host = (src + 3) % net->num_hosts();
      pkt.size_bytes = 1500;
      net->host(src).send(std::move(pkt));
    }
  });

  // The quorum-chaos script: port churn so recovery redeploys ride the
  // quorum, a log divergence that must self-heal, the leader killed
  // *mid-transaction* (see the scheduled deploy below), and a replica
  // partition that opens and heals.
  services::FaultPlan plan(*net, /*seed=*/2024, ctl);
  plan.load_json(R"({"events": [
    {"kind": "port_fail", "at_us": 8000, "node": 0, "port": 0},
    {"kind": "port_repair", "at_us": 16000, "node": 0, "port": 0},
    {"kind": "log_divergence", "at_us": 12000, "replica": 2},
    {"kind": "leader_kill", "at_us": 20050, "duration_us": 2000},
    {"kind": "replica_partition", "at_us": 30000, "replica": 1,
     "duration_us": 3000},
    {"kind": "port_fail", "at_us": 34000, "node": 2, "port": 0},
    {"kind": "port_repair", "at_us": 40000, "node": 2, "port": 0}
  ]})");
  plan.arm();

  // A deploy issued 50 us before the leader_kill fires: its prepare is
  // acked but its commit record is still replicating when the leader dies —
  // the new leader must finish or presumed-abort it from the log.
  QuorumFingerprint fp;
  net->sim().schedule_at(20_ms, [&]() {
    ctl->deploy_update(net->schedule(), routing::direct_to(net->schedule()),
                       core::LookupMode::PerHop, core::MultipathMode::None,
                       1, 1, SimTime::zero(),
                       [&fp](bool) { fp.deploy_done = true; });
  });

  inst.run_for(60_ms);

  write_trace(trace_path, recorder);

  fp.epoch = ctl->committed_epoch();
  fp.term = quorum.term();
  fp.commits = ctl->txn_commits();
  fp.aborts = ctl->txn_aborts();
  fp.rollbacks = ctl->txn_rollbacks();
  fp.resyncs = ctl->resyncs();
  fp.rejected = ctl->deploys_rejected();
  fp.mixed = net->mixed_epoch_slices();
  fp.elections = quorum.elections();
  fp.failovers = quorum.failovers();
  fp.step_downs = quorum.step_downs();
  fp.repairs = quorum.log_repairs();
  fp.cut = quorum.msgs_cut();
  fp.stale = ctl->stale_term_rejections();
  fp.log_len = quorum.log_length();
  fp.rep_sent = ctl->southbound().replica_msgs_sent();
  fp.rep_lost = ctl->southbound().replica_msgs_lost();
  fp.events = net->sim().events_executed();
  fp.retries = recovery.retries();
  return fp;
}

int run_quorum_drill(const std::string& trace_path) {
  const QuorumFingerprint first = run_quorum_scenario(trace_path);
  const QuorumFingerprint replay = run_quorum_scenario("");

  std::printf("=== quorum chaos drill: rotornet-direct, 3 replicas, 60 ms, "
              "7 scripted events ===\n");
  std::printf("run:      %s\n", first.summary().c_str());
  std::printf("replay:   %s\n", replay.summary().c_str());

  const bool deterministic = first.summary() == replay.summary();
  const bool passed = deterministic &&
                      first.deploy_done &&       // mid-kill txn resolved
                      first.failovers >= 1 &&    // leadership moved
                      first.elections >= 1 &&
                      first.term >= 2 &&
                      first.repairs >= 1 &&      // diverged log healed
                      first.cut >= 1 &&          // partition actually cut
                      first.resyncs >= 1 &&      // takeover resynced
                      first.commits >= 2 &&
                      first.mixed == 0;          // no dead-term leakage
  if (!deterministic) {
    std::printf("replay gate FAILED: fingerprints differ\n");
  }
  std::printf("%s\n",
              passed ? "quorum chaos drill passed: leader killed "
                       "mid-transaction, failover resolved the epoch from "
                       "the replicated log, partition healed, replay "
                       "deterministic"
                     : "quorum chaos drill FAILED");
  return passed ? 0 : 2;
}

// Counter fingerprint of one gray-chaos scenario run: the scanner's ladder
// counters, the per-target verdicts, and the fabric totals. Two runs at the
// same seed must match byte-for-byte (the replay gate).
struct GrayFingerprint {
  std::int64_t audits = 0;
  std::int64_t suspects = 0;
  std::int64_t degrades = 0;
  std::int64_t quarantines = 0;
  std::int64_t readmissions = 0;
  std::int64_t probes_lost = 0;
  std::int64_t off_target = 0;
  std::int64_t delivered = 0;
  std::int64_t drops = 0;
  std::int64_t events = 0;
  // Settled verdict per scripted target (cause as int, port, peer).
  struct Verdict {
    int cause = 0;
    int port = -1;
    int peer = -1;
  };
  Verdict v_ramp, v_pair, v_skew, v_install;

  std::string summary() const {
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "audits=%lld suspects=%lld degrades=%lld quarantines=%lld "
        "readmits=%lld probes_lost=%lld off_target=%lld "
        "ramp=%d/%d/%d pair=%d/%d/%d skew=%d/%d/%d install=%d/%d/%d "
        "delivered=%lld drops=%lld events=%lld",
        static_cast<long long>(audits), static_cast<long long>(suspects),
        static_cast<long long>(degrades),
        static_cast<long long>(quarantines),
        static_cast<long long>(readmissions),
        static_cast<long long>(probes_lost),
        static_cast<long long>(off_target), v_ramp.cause, v_ramp.port,
        v_ramp.peer, v_pair.cause, v_pair.port, v_pair.peer, v_skew.cause,
        v_skew.port, v_skew.peer, v_install.cause, v_install.port,
        v_install.peer, static_cast<long long>(delivered),
        static_cast<long long>(drops), static_cast<long long>(events));
    return buf;
  }
};

GrayFingerprint run_gray_scenario(const std::string& trace_path) {
  arch::Params p;
  p.tors = 8;
  p.hosts_per_tor = 1;
  p.uplinks = 1;
  p.seed = 7;
  auto inst =
      arch::make_rotornet(p, arch::RotorRouting::Direct, /*hybrid=*/true);
  auto* net = inst.net.get();
  auto* ctl = inst.ctl.get();

  telemetry::FlightRecorder recorder(std::size_t{1} << 16);
  if (!trace_path.empty()) net->sim().set_recorder(&recorder);

  // Degraded steering is per-node: a Degraded verdict weights the node's
  // elephants onto the electrical fabric before quarantine fences it.
  auto steering = std::make_shared<services::HybridSteering>(
      *net, /*elephant_bytes=*/256 << 10, /*idle_reset=*/50_ms);
  services::HealthScanner scanner(*net);
  scanner.set_controller(ctl);
  scanner.set_degrade_hook([steering](NodeId n, bool degraded) {
    steering->set_node_degraded(n, degraded);
  });

  // Scripted targets, one per gray kind, in disjoint fault windows.
  const NodeId ramp_node = 2, pair_node = 4, skew_node = 1, install_node = 5;
  const NodeId pair_peer = 6;
  GrayFingerprint fp;
  scanner.set_transition_hook([&](NodeId n, services::HealthScanner::NodeHealth,
                                  services::HealthScanner::NodeHealth to) {
    if (to != services::HealthScanner::NodeHealth::Quarantined) {
      if (to == services::HealthScanner::NodeHealth::Suspect &&
          n != ramp_node && n != pair_node && n != skew_node &&
          n != install_node) {
        ++fp.off_target;
      }
      return;
    }
    // Keep the last quarantine's verdict: sticky faults oscillate through
    // quarantine/readmit cycles and re-detections classify from richer
    // evidence than the first ladder climb had.
    const auto& b = scanner.blame(n);
    GrayFingerprint::Verdict v;
    v.cause = static_cast<int>(b.cause);
    v.port = b.port == kInvalidPort ? -1 : b.port;
    v.peer = b.peer == kInvalidNode ? -1 : b.peer;
    if (n == ramp_node) fp.v_ramp = v;
    if (n == pair_node) fp.v_pair = v;
    if (n == skew_node) fp.v_skew = v;
    if (n == install_node) fp.v_install = v;
  });
  scanner.start();

  // All-to-all traffic heavy enough that every circuit clears the audit's
  // min-bytes bar each slice — single-destination patterns cannot tell a
  // dying port from one bad pair.
  net->sim().schedule_every(5_us, 10_us, [net]() {
    for (HostId src = 0; src < net->num_hosts(); ++src) {
      for (HostId dst = 0; dst < net->num_hosts(); ++dst) {
        if (dst == src) continue;
        core::Packet pkt;
        pkt.type = core::PacketType::Data;
        pkt.flow = 900 + src;
        pkt.dst_host = dst;
        pkt.size_bytes = 1500;
        net->host(src).send(std::move(pkt));
      }
    }
  });
  // Periodic identity redeploys give the claim-vs-behavior check a live ack
  // trail — a silent installer is only caught while installs flow.
  net->sim().schedule_every(1_ms, 2_ms, [net, ctl]() {
    ctl->deploy_update(net->schedule(), routing::direct_to(net->schedule()),
                       core::LookupMode::PerHop, core::MultipathMode::None, 1,
                       1, SimTime::zero(), nullptr);
  });

  // The gray-fault script: one window per kind, disjoint in time and target
  // so each verdict is unambiguous.
  services::FaultPlan plan(*net, /*seed=*/2024, ctl);
  plan.load_json(R"({"events": [
    {"kind": "ber_ramp", "at_us": 3000, "node": 2, "port": 0,
     "jitter": 1e-9, "ber": 2e-5, "duration_us": 10000, "cycles": 8},
    {"kind": "ber", "at_us": 15000, "node": 2, "port": 0, "ber": 0},
    {"kind": "gray_port_pair", "at_us": 18000, "node": 4, "port": 0,
     "peer": 6, "prob": 0.5, "duration_us": 8000},
    {"kind": "telemetry_skew", "at_us": 30000, "node": 1, "ppm": 150000,
     "duration_us": 8000},
    {"kind": "silent_install_fail", "at_us": 42000, "node": 5,
     "duration_us": 8000}
  ]})");
  plan.arm();

  inst.run_for(56_ms);

  write_trace(trace_path, recorder);

  fp.audits = scanner.audits();
  fp.suspects = scanner.suspects();
  fp.degrades = scanner.degrades();
  fp.quarantines = scanner.quarantines();
  fp.readmissions = scanner.readmissions();
  fp.probes_lost = scanner.probes_lost();
  fp.delivered = net->optical().delivered();
  fp.drops = net->optical().total_drops();
  fp.events = net->sim().events_executed();
  return fp;
}

int run_gray_drill(const std::string& trace_path) {
  const GrayFingerprint first = run_gray_scenario(trace_path);
  const GrayFingerprint replay = run_gray_scenario("");

  std::printf("=== gray chaos drill: rotornet-direct-hybrid, 56 ms, "
              "4 scripted gray faults ===\n");
  std::printf("run:      %s\n", first.summary().c_str());
  std::printf("replay:   %s\n", replay.summary().c_str());

  using Cause = services::HealthScanner::Cause;
  const bool deterministic = first.summary() == replay.summary();
  const bool passed =
      deterministic &&
      first.v_ramp.cause == static_cast<int>(Cause::PortDegrade) &&
      first.v_ramp.port == 0 &&
      first.v_pair.cause == static_cast<int>(Cause::LinkLoss) &&
      first.v_pair.port == 0 && first.v_pair.peer == 6 &&
      first.v_skew.cause == static_cast<int>(Cause::TelemetrySkew) &&
      first.v_install.cause == static_cast<int>(Cause::SilentInstall) &&
      first.off_target == 0 &&         // nobody honest was suspected
      first.quarantines >= 4 &&        // every fault reached the fence
      first.readmissions >= 4 &&       // ...and healed back out
      first.probes_lost >= 1;          // probes corroborated real loss
  if (!deterministic) {
    std::printf("replay gate FAILED: fingerprints differ\n");
  }
  std::printf("%s\n",
              passed ? "gray chaos drill passed: all four gray kinds "
                       "localized from symptoms, ladder walked both ways, "
                       "zero off-target suspects, replay deterministic"
                     : "gray chaos drill FAILED");
  return passed ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  bool clock_chaos = false;
  bool control_chaos = false;
  bool quorum_chaos = false;
  bool gray_chaos = false;
  cli::ArgParser args("chaos_drill",
                      "scripted fault drill against the recovery services");
  args.flag("--clock-chaos", &clock_chaos,
            "clock-drift drill against the sync watchdog")
      .flag("--control-chaos", &control_chaos,
            "southbound transaction drill against the control plane")
      .flag("--quorum-chaos", &quorum_chaos,
            "replicated-controller drill: leader kill, partition, failover")
      .flag("--gray-chaos", &gray_chaos,
            "gray-failure drill against the evidence-based health scanner")
      .option("--trace", &trace_path, "write a Chrome trace_event JSON");
  if (!args.parse(argc, argv)) return 1;
  if (gray_chaos) return run_gray_drill(trace_path);
  if (quorum_chaos) return run_quorum_drill(trace_path);
  if (control_chaos) return run_control_drill(trace_path);
  return clock_chaos ? run_clock_drill(trace_path)
                     : run_fault_drill(trace_path);
}
