// Chaos drill: a JSON-scripted FaultPlan throws every injectable fault
// class at a c-Through hybrid instance — link flaps, transceiver BER
// degradation, a control-plane outage, and an OCS reconfiguration stall —
// while the event-driven recovery service masks failures, re-admits
// repaired circuits, retries deploys through the controller outage, and
// flips the hybrid steering into degraded mode so elephants lean on the
// electrical fabric. Prints the robustness telemetry the run produced.
//
// With --trace=PATH the whole drill is captured in the flight recorder and
// written as Chrome trace_event JSON (chrome://tracing, Perfetto): circuit
// up/down per fault, per-class drops, control-plane deploys and retries.
#include <cstdio>
#include <cstring>
#include <string>

#include "arch/arch.h"
#include "routing/ta_routing.h"
#include "services/export.h"
#include "services/failure_recovery.h"
#include "services/fault_plan.h"
#include "services/monitor.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/trace_export.h"
#include "workload/kv.h"

using namespace oo;
using namespace oo::literals;

int main(int argc, char** argv) {
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else {
      std::fprintf(stderr, "usage: chaos_drill [--trace=PATH]\n");
      return 1;
    }
  }

  arch::Params p;
  p.tors = 8;
  p.hosts_per_tor = 1;
  p.uplinks = 2;
  p.collect_interval = 20_ms;
  p.reconfig_delay = 5_ms;  // fast MEMS so the drill fits in 300 ms
  auto inst = arch::make_cthrough(p);

  telemetry::FlightRecorder recorder(std::size_t{1} << 16);
  if (!trace_path.empty()) inst.net->sim().set_recorder(&recorder);

  services::Monitor monitor(*inst.net, 1_ms);
  monitor.start();

  // Elephant + mice mix: a KV service plus bulk flows big enough for the
  // flow-aging classifier to steer onto direct circuits.
  std::vector<HostId> clients = {1, 2, 3, 4, 5, 6, 7};
  workload::KvWorkload kv(*inst.net, 0, clients, 1_ms);
  kv.start();
  inst.net->sim().schedule_every(100_us, 200_us, [net = inst.net.get()]() {
    for (HostId src : {HostId{2}, HostId{5}}) {
      core::Packet pkt;
      pkt.type = core::PacketType::Data;
      pkt.flow = 1000 + src;
      pkt.dst_host = (src + 3) % 8;
      pkt.size_bytes = 9000;
      net->host(src).send(std::move(pkt));
    }
  });

  // Let the TA control loop deploy circuits before arming recovery, so the
  // captured baseline is the real (non-empty) topology.
  inst.run_for(60_ms);

  services::FailureRecovery recovery(
      *inst.net, *inst.ctl,
      [&](const optics::Schedule&) {
        return routing::electrical_default(p.tors);
      },
      /*scrub=*/1_ms);
  auto steering = inst.steering;
  recovery.set_degraded_hook(
      [steering](bool degraded) { steering->set_degraded(degraded); });
  recovery.start();

  // The fault script, as it would ship in a chaos-drill config file.
  services::FaultPlan plan(*inst.net, /*seed=*/2024, inst.ctl.get());
  plan.load_json(R"({"events": [
    {"kind": "link_flap", "at_us": 80000, "node": 0, "port": 0,
     "down_us": 15000, "period_us": 40000, "cycles": 3, "jitter": 0.2},
    {"kind": "ber", "at_us": 100000, "node": 2, "port": 0, "ber": 2e-6},
    {"kind": "ber", "at_us": 100000, "node": 2, "port": 1, "ber": 2e-6},
    {"kind": "ber", "at_us": 220000, "node": 2, "port": 0, "ber": 0},
    {"kind": "ber", "at_us": 220000, "node": 2, "port": 1, "ber": 0},
    {"kind": "control_fail", "at_us": 120000, "duration_us": 30000},
    {"kind": "control_delay", "at_us": 170000, "delay_us": 2000,
     "duration_us": 40000},
    {"kind": "reconfig_stall", "at_us": 162000, "extra_us": 3000}
  ]})");
  plan.arm();

  inst.run_for(240_ms);
  kv.stop();

  const auto health = monitor.health();
  std::printf("=== chaos drill: %s, 300 ms, %zu scripted events ===\n",
              inst.name.c_str(), plan.size());
  std::printf("injected: %s\n", plan.summary().c_str());
  std::printf("kv ops completed:       %lld\n",
              static_cast<long long>(kv.ops_completed()));
  std::printf("elephants steered:      %lld (diverted while degraded: %lld)\n",
              static_cast<long long>(steering->steered_packets()),
              static_cast<long long>(steering->degraded_diverted()));
  std::printf("fabric drops by class:  failed=%lld corrupt=%lld other=%lld\n",
              static_cast<long long>(health.failed_drops),
              static_cast<long long>(health.corrupt_drops),
              static_cast<long long>(health.fabric_drops -
                                     health.failed_drops -
                                     health.corrupt_drops));
  std::printf("deploys rejected:       %lld (recovery retries: %d)\n",
              static_cast<long long>(inst.ctl->deploys_rejected()),
              recovery.retries());
  std::printf("\n%s\n", services::robustness_csv(
                            recovery, inst.net->optical()).c_str());

  if (!trace_path.empty()) {
    services::write_file(trace_path, telemetry::chrome_trace_json(recorder));
    std::printf("wrote Chrome trace (%zu events) to %s\n", recorder.size(),
                trace_path.c_str());
  }

  const bool passed = recovery.recoveries() >= 1 &&
                      recovery.port_downs() >= 3 &&
                      recovery.port_ups() >= 3 &&
                      recovery.availability() < 1.0 &&
                      recovery.availability() > 0.0 &&
                      kv.ops_completed() > 100;
  std::printf("%s\n", passed ? "chaos drill passed: all fault classes "
                               "injected, detected, and recovered"
                             : "chaos drill FAILED");
  return passed ? 0 : 2;
}
