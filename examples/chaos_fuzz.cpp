// chaos_fuzz — seeded chaos fuzzing with automatic fault-plan shrinking:
//
//   chaos_fuzz [--seed N] [--runs N] [--events N] [--intensity X]
//              [--tors N] [--replicas N] [--duration-us N] [--shards N]
//              [--plant-bug] [--no-minimize] [--replay FILE]
//              [--out DIR] [--trace FILE]
//
// Each run fuzzes a structurally valid FaultPlan from its seed
// (src/chaos/fuzz.h), executes it against a live hybrid-rotor fabric under
// the always-on invariant monitor (src/chaos/invariants.h), and reports
// any violations. A violating plan is delta-debugged to a 1-minimal
// reproducer (src/chaos/shrink.h) and written to DIR/reproducer.json with
// the exact replay command; --replay FILE re-executes such an artifact
// deterministically. --plant-bug registers a deliberately broken invariant
// so the whole fuzz -> catch -> shrink -> replay loop can be demonstrated
// (and is CI-tested) end to end.
//
// Exit status: 0 when every run's invariants hold (or the planted bug is
// the only trip under --plant-bug), 1 on a real, unexplained violation.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/shrink.h"
#include "common/cli.h"
#include "runner/experiments.h"
#include "runner/runner.h"

using namespace oo;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  int runs = 1, events = 12, tors = 4, replicas = 1, shards = 0;
  std::int64_t duration_us = 3000;
  double intensity = 1.0;
  bool plant_bug = false, no_minimize = false;
  std::string replay_path, out_dir, trace_path;

  cli::ArgParser args("chaos_fuzz",
                      "seeded chaos fuzzing under the invariant monitor");
  args.option("--seed", &seed, "first fuzz seed (default 1)")
      .option("--runs", &runs, "consecutive seeds to fuzz (default 1)")
      .option("--events", &events, "fault events per plan (default 12)")
      .option("--intensity", &intensity,
              "severity knob, scales count/durations/probs (default 1.0)")
      .option("--tors", &tors, "fabric size (default 4)")
      .option("--replicas", &replicas,
              "controller replicas; >1 unlocks quorum faults (default 1)")
      .option("--duration-us", &duration_us,
              "run length in simulated microseconds (default 3000)")
      .option("--shards", &shards,
              "worker shards for the parallel engine (default 0 = legacy "
              "single-heap engine)")
      .flag("--plant-bug", &plant_bug,
            "register a deliberately broken invariant (demo/CI)")
      .flag("--no-minimize", &no_minimize,
            "report violations without shrinking the plan")
      .option("--replay", &replay_path,
              "re-run a reproducer.json instead of fuzzing")
      .option("--out", &out_dir, "directory for reproducer.json artifacts")
      .option("--trace", &trace_path, "unused placeholder kept for parity");
  if (!args.parse(argc, argv)) return 1;

  auto fn = runner::find_experiment("chaos_fuzz");
  int real_violations = 0;

  for (int r = 0; r < runs; ++r) {
    const std::uint64_t run_seed = seed + static_cast<std::uint64_t>(r);
    runner::RunSpec spec;
    spec.index = r;
    spec.seed = run_seed;
    spec.params["fuzz_seed"] = static_cast<std::int64_t>(run_seed);
    spec.params["events"] = static_cast<std::int64_t>(events);
    spec.params["intensity"] = intensity;
    spec.params["tors"] = static_cast<std::int64_t>(tors);
    spec.params["controller_replicas"] =
        static_cast<std::int64_t>(replicas);
    spec.params["duration_us"] = static_cast<double>(duration_us);
    spec.params["shards"] = static_cast<std::int64_t>(shards);
    spec.params["plant_bug"] = plant_bug;
    spec.params["minimize"] = !no_minimize;
    if (!replay_path.empty()) {
      spec.params["plan_json"] = read_file(replay_path);
    }

    runner::RunContext ctx{spec, /*attempt=*/1};
    json::Object row;
    try {
      row = fn(ctx);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "seed %llu: run crashed: %s\n",
                   static_cast<unsigned long long>(run_seed), e.what());
      ++real_violations;
      continue;
    }

    const auto violations = row.at("violations").as_int();
    std::printf("seed %llu: %lld events, %lld violations\n",
                static_cast<unsigned long long>(run_seed),
                static_cast<long long>(row.at("plan_events").as_int()),
                static_cast<long long>(violations));
    if (violations == 0) continue;

    std::printf("%s", row.at("report").as_string().c_str());
    const bool planted_only =
        plant_bug &&
        row.at("report").as_string().find("planted") != std::string::npos;
    if (!planted_only) ++real_violations;

    if (row.count("reproducer") != 0U) {
      const auto& mini = row.at("reproducer");
      std::printf(
          "minimized to %lld events in %lld probes (reproduced: %s)\n",
          static_cast<long long>(row.at("minimal_events").as_int()),
          static_cast<long long>(row.at("shrink_probes").as_int()),
          row.at("shrink_reproduced").as_bool() ? "yes" : "no");
      if (!out_dir.empty()) {
        const std::string path = out_dir + "/reproducer.json";
        const std::string replay_cmd =
            "chaos_fuzz --seed " + std::to_string(run_seed) + " --tors " +
            std::to_string(tors) + " --replicas " +
            std::to_string(replicas) + " --duration-us " +
            std::to_string(duration_us) +
            (plant_bug ? " --plant-bug" : "") + " --replay " + path;
        chaos::write_reproducer(
            path, services::parse_fault_events(mini), run_seed,
            row.at("report").as_string(), replay_cmd);
        std::printf("wrote %s\nreplay: %s\n", path.c_str(),
                    replay_cmd.c_str());
      }
    }
  }

  if (real_violations > 0) {
    std::fprintf(stderr, "chaos_fuzz: %d run(s) with real violations\n",
                 real_violations);
    return 1;
  }
  std::printf("chaos_fuzz: all invariants held\n");
  return 0;
}
