// Failure drill: a transceiver goes dark mid-run; the recovery service
// detects the loss-of-signal drops, recompiles the schedule around the
// failed port, and overlays fresh routes — traffic heals without operator
// action (the resilience studies OpenOptics' open stack enables).
#include <cstdio>

#include "arch/arch.h"
#include "routing/to_routing.h"
#include "services/failure_recovery.h"
#include "workload/kv.h"

using namespace oo;
using namespace oo::literals;

int main() {
  arch::Params p;
  p.tors = 8;
  p.hosts_per_tor = 1;
  p.uplinks = 2;
  p.slice = 100_us;
  auto inst = arch::make_rotornet(p, arch::RotorRouting::Direct);

  services::FailureRecovery recovery(
      *inst.net, *inst.ctl,
      [](const optics::Schedule& s) { return routing::direct_to(s); },
      /*poll=*/500_us);
  recovery.start();

  std::vector<HostId> clients = {1, 2, 3, 4, 5, 6, 7};
  workload::KvWorkload kv(*inst.net, 0, clients, 1_ms);
  kv.start();

  inst.run_for(30_ms);
  const auto ops_phase1 = kv.ops_completed();
  std::printf("phase 1 (healthy):   %lld ops, fabric drops=%lld\n",
              static_cast<long long>(ops_phase1),
              static_cast<long long>(inst.net->optical().total_drops()));

  std::printf("\n*** transceiver failure: ToR 0, uplink 0 goes dark ***\n\n");
  inst.net->optical().set_port_failed(0, 0, true);
  inst.run_for(30_ms);
  const auto ops_phase2 = kv.ops_completed() - ops_phase1;
  std::printf("phase 2 (failed+recovered): %lld ops, dark-fiber drops=%lld, "
              "recoveries=%d\n",
              static_cast<long long>(ops_phase2),
              static_cast<long long>(inst.net->optical().drops_failed()),
              recovery.recoveries());

  inst.net->optical().set_port_failed(0, 0, false);
  recovery.recover_now();  // re-admit the repaired port's circuits
  inst.run_for(30_ms);
  const auto ops_phase3 = kv.ops_completed() - ops_phase1 - ops_phase2;
  std::printf("phase 3 (repaired):  %lld ops\n",
              static_cast<long long>(ops_phase3));
  kv.stop();

  const bool healed = recovery.recoveries() >= 1 && ops_phase2 > 100 &&
                      ops_phase3 > 100;
  std::printf("\n%s\n", healed ? "drill passed: traffic healed around the "
                                 "failure and resumed after repair"
                               : "drill FAILED");
  return healed ? 0 : 2;
}
