// Fig. 5(d): hierarchical TA+TO design for ML workloads — GPU hosts inside
// each rack interconnected by a TO scale-up rotor (rich, oblivious
// connectivity for allreduce), racks interconnected by a TA scale-out
// fabric re-optimized from the traffic matrix (locality across racks).
// Two OpenOptics network objects, one per level, exactly as the paper's
// two-config program sketch.
#include <cstdio>

#include "api/openoptics.h"
#include "routing/ta_routing.h"
#include "routing/to_routing.h"
#include "services/collector.h"
#include "topo/matching.h"
#include "topo/round_robin.h"
#include "workload/allreduce.h"
#include "workload/transfer_pool.h"

using namespace oo;
using namespace oo::literals;

int main() {
  // --- Intra-rack scale-up network: 8 GPUs on a rotor (Fig. 5a-style). ---
  auto rack = api::Net::from_json(R"({
    "node_num": 8, "uplink": 2, "bw_gbps": 100.0, "slice_us": 20.0,
    "calendar": true, "ocs": "awgr"
  })");
  if (!rack.deploy_topo(topo::round_robin_1d(8, 2),
                        topo::round_robin_period(8)))
    return 1;
  if (!rack.deploy_routing(routing::vlb(rack.schedule()),
                           api::Lookup::PerHop, api::Multipath::PerPacket))
    return 1;
  std::printf("scale-up   : %s\n", rack.schedule().summary().c_str());

  // --- Inter-rack scale-out network: 8 ToRs on a demand-driven TA mesh. ---
  auto core = api::Net::from_json(R"({
    "node_num": 8, "uplink": 2, "bw_gbps": 400.0, "calendar": false,
    "ocs": "mems"
  })");
  // Cold start: pair racks arbitrarily until demand arrives.
  topo::TrafficMatrix uniform(8);
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j)
      if (i != j) uniform.at(i, j) = 1.0;
  if (!core.deploy_topo(topo::edmonds(uniform, 2, 1.0), 1)) return 1;
  if (!core.deploy_routing(routing::wcmp(core.schedule()),
                           api::Lookup::PerHop, api::Multipath::PerFlow))
    return 1;
  std::printf("scale-out  : %s\n", core.schedule().summary().c_str());

  // TA control loop on the core (Fig. 5d's while-collect loop).
  auto& ctl = core.controller();
  auto prio = std::make_shared<int>(0);
  services::Collector collector(
      core.network(), 10_ms, [&, prio](const topo::TrafficMatrix& tm) {
        if (tm.total() <= 0) return;
        auto circuits = topo::edmonds(tm, 2, tm.total() / 8);
        optics::Schedule next;
        if (!ctl.compile_schedule(circuits, 1, next)) return;
        ctl.deploy_routing(routing::wcmp(next), api::Lookup::PerHop,
                           api::Multipath::PerFlow, ++*prio, &next);
        ctl.deploy_topo(circuits, 1, 1_ms);
      });
  collector.start();

  // Workloads: ring allreduce across the rack's GPUs (scale-up), pipeline
  // transfers between racks 0->3 (scale-out).
  std::vector<HostId> gpus;
  for (HostId h = 0; h < 8; ++h) gpus.push_back(h);
  SimTime allreduce_time;
  workload::RingAllreduce ar(rack.network(), gpus, 8 << 20,
                             [&](SimTime t) { allreduce_time = t; });
  ar.start();

  workload::TransferPool pipeline(core.network());
  int stages = 0;
  for (int i = 0; i < 10; ++i) {
    core.sim().schedule_at(SimTime::millis(1 + 3 * i), [&]() {
      pipeline.launch(0, 3, 16 << 20, {},
                      [&](SimTime, std::int64_t) { ++stages; });
    });
  }

  rack.run_for(60_ms);
  core.run_for(60_ms);

  std::printf("\nintra-rack 8 MB allreduce over the rotor: %s\n",
              allreduce_time.str().c_str());
  std::printf("inter-rack pipeline stages moved: %d/10\n", stages);
  auto direct_0_3 = [&]() {
    for (const auto& [v, port] : core.schedule().neighbors(0, 0)) {
      (void)port;
      if (v == 3) return true;
    }
    return false;
  };
  std::printf("TA core built a direct circuit for the hot rack pair: %s\n",
              direct_0_3() ? "yes" : "no");
  return (ar.finished() && stages >= 8) ? 0 : 2;
}
