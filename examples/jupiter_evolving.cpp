// Fig. 5(b): Jupiter-style TA program — start from a uniform mesh with WCMP,
// collect a traffic matrix on an interval, re-optimize the topology with
// gradual evolution, overlay the new routes at higher priority, then
// reconfigure the circuits (make-before-break). This example drives a
// shifting workload and shows the topology chasing the demand.
#include <cstdio>

#include "api/openoptics.h"
#include "routing/ta_routing.h"
#include "services/collector.h"
#include "topo/jupiter.h"
#include "workload/transfer_pool.h"

using namespace oo;
using namespace oo::literals;

int main() {
  const int kTors = 8;
  const int kUplinks = 3;

  auto net = api::Net::from_json(R"({
    "node_num": 8, "uplink": 3, "bw_gbps": 100.0, "calendar": false,
    "ocs": "mems"
  })");

  // Cold start: uniform mesh (empty TM), WCMP routing.
  auto circuits = topo::jupiter(topo::TrafficMatrix{}, kTors, kUplinks);
  if (!net.deploy_topo(circuits, 1)) {
    std::fprintf(stderr, "topo: %s\n", net.last_error().c_str());
    return 1;
  }
  if (!net.deploy_routing(routing::wcmp(net.schedule()), api::Lookup::PerHop,
                          api::Multipath::PerFlow)) {
    std::fprintf(stderr, "routing: %s\n", net.last_error().c_str());
    return 1;
  }
  std::printf("cold start: %s\n", net.schedule().summary().c_str());

  // The control loop of Fig. 5(b): every interval, collect -> optimize ->
  // deploy routes -> reconfigure. (The paper uses 24 h; we use 20 ms of
  // simulated time so several rounds fit in this example.)
  auto& ctl = net.controller();
  auto prev = std::make_shared<std::vector<optics::Circuit>>(circuits);
  auto prio = std::make_shared<int>(0);
  int rounds = 0;
  services::Collector collector(
      net.network(), 20_ms,
      [&, prev, prio](const topo::TrafficMatrix& tm) {
        if (tm.total() <= 0) return;
        auto next_circuits = topo::jupiter(tm, kTors, kUplinks, *prev);
        optics::Schedule next;
        if (!ctl.compile_schedule(next_circuits, 1, next)) return;
        ctl.deploy_routing(routing::wcmp(next), api::Lookup::PerHop,
                           api::Multipath::PerFlow, ++*prio, &next);
        ctl.deploy_topo(next_circuits, 1, /*reconfig=*/1_ms);
        *prev = next_circuits;
        ++rounds;
        std::printf("  round %d: re-optimized for %.1f MB of demand\n",
                    rounds, tm.total() / 1e6);
      });
  collector.start();

  // Demand phase 1: hot pair (0 -> 4); phase 2: hot pair (1 -> 6).
  workload::TransferPool pool(net.network());
  int done = 0;
  auto traffic = [&](HostId a, HostId b, SimTime start) {
    for (int i = 0; i < 12; ++i) {
      net.sim().schedule_at(start + SimTime::millis(3 * i), [&, a, b]() {
        pool.launch(a, b, 4 << 20, {}, [&](SimTime, std::int64_t) { ++done; });
      });
    }
  };
  traffic(0, 4, 1_ms);
  traffic(1, 6, 41_ms);
  net.run_for(90_ms);

  const auto& sched = net.schedule();
  auto connected = [&](NodeId a, NodeId b) {
    for (const auto& [v, port] : sched.neighbors(a, 0)) {
      (void)port;
      if (v == b) return true;
    }
    return false;
  };
  std::printf("\nafter %d evolution rounds: transfers done=%d\n", rounds,
              done);
  std::printf("direct circuit 1<->6 (current hot pair): %s\n",
              connected(1, 6) ? "yes" : "no");
  std::printf("no-route drops across all reconfigurations: %lld\n",
              static_cast<long long>(net.network().totals().no_route_drops));
  return (rounds >= 2 && done >= 20) ? 0 : 2;
}
