// megakv — a million-client KV store on an optical fabric. Demonstrates
// the streaming traffic engine's headline property: the client population
// is synthesized lazily (every source is ~60 bytes of generator state,
// flows materialize only as simulator events), so a MILLION concurrent
// clients fit in tens of megabytes and peak RSS stays flat as simulated
// time — and with it the synthesized flow count — grows. Flows above
// --threshold run at fluid (flow-level) fidelity, the rest packet-level.
//
//   megakv [--clients 1000000] [--tors 64] [--hosts 2] [--ms 20]
//          [--load 0.2] [--threshold 100000] [--seed 1]
//          [--trace out.json]
//
// Prints flow/FCT/fidelity stats, the deterministic stream fingerprint,
// and peak RSS (VmHWM) so the lazy-generation claim is checkable from the
// output.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/cli.h"
#include "runner/experiments.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/trace_export.h"
#include "traffic/engine.h"

using namespace oo;
using namespace oo::literals;

namespace {

// Peak resident set (kB) from /proc/self/status; -1 where unsupported.
long peak_rss_kb() {
#ifdef __linux__
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtol(line.c_str() + 6, nullptr, 10);
    }
  }
#endif
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  arch::Params p;
  p.tors = 64;
  p.hosts_per_tor = 2;
  p.uplinks = 2;
  std::int64_t clients = 1'000'000;
  std::int64_t threshold = 100'000;
  double load = 0.2;
  int ms = 20;
  std::uint64_t seed = 1;
  std::string trace_path;

  cli::ArgParser args("megakv",
                      "a million lazily-generated KV clients at hybrid "
                      "packet/fluid fidelity");
  args.option("--clients", &clients, "client sources (default 1000000)")
      .option("--tors", &p.tors, "number of ToRs (default 64)")
      .option("--hosts", &p.hosts_per_tor, "hosts per ToR (default 2)")
      .option("--ms", &ms, "simulated milliseconds (default 20)")
      .option("--load", &load, "offered load fraction (default 0.2)")
      .option("--threshold", &threshold,
              "hybrid fidelity threshold bytes (default 100000)")
      .option("--seed", &seed, "traffic seed (default 1)")
      .option("--trace", &trace_path, "write a Chrome trace_event JSON");
  if (!args.parse(argc, argv)) return 1;
  p.seed = seed;

  try {
    auto inst = runner::make_arch("rotornet-direct", p);
    telemetry::FlightRecorder recorder(std::size_t{1} << 16);
    if (!trace_path.empty()) inst.net->sim().set_recorder(&recorder);

    // KV object sizes with a Hadoop-shaped heavy-hitter tail (the backup /
    // scan jobs sharing the fabric), bursty ON/OFF clients.
    traffic::TrafficSpec spec;
    spec.sources = clients;
    spec.load = load;
    spec.seed = seed;
    spec.size.base = workload::trace_cdf(workload::TraceKind::KvStore);
    spec.size.hh_fraction = 0.05;
    spec.size.hh = workload::trace_cdf(workload::TraceKind::Hadoop);
    spec.burst.enabled = true;
    spec.hybrid_threshold = threshold;

    traffic::TrafficEngine eng(*inst.net, std::move(spec));
    std::printf("megakv: %lld clients on %d ToRs x %d hosts, load %.2f, "
                "hybrid threshold %lld B\n",
                static_cast<long long>(clients), p.tors, p.hosts_per_tor,
                load, static_cast<long long>(threshold));
    eng.start();
    inst.run_for(SimTime::millis(ms));
    eng.stop();
    inst.run_for(10_ms);  // drain in-flight transfers

    const auto& mice = eng.mice_fct_us();
    const auto& ele = eng.elephant_fct_us();
    std::printf("flows: %lld emitted (%lld packet, %lld fluid), %lld "
                "completed, %.1f MB offered\n",
                static_cast<long long>(eng.flows_emitted()),
                static_cast<long long>(eng.flows_packet()),
                static_cast<long long>(eng.flows_fluid()),
                static_cast<long long>(eng.flows_completed()),
                static_cast<double>(eng.bytes_offered()) / 1e6);
    std::printf("mice:     n=%-8lld mean=%8.1f us  p99=%8.1f us\n",
                static_cast<long long>(mice.count()), mice.mean(),
                mice.percentile(99));
    std::printf("elephant: n=%-8lld mean=%8.1f us  p99=%8.1f us\n",
                static_cast<long long>(ele.count()), ele.mean(),
                ele.percentile(99));
    std::printf("fluid: %lld recomputes, %lld active at stop\n",
                static_cast<long long>(eng.fluid().recomputes()),
                static_cast<long long>(eng.fluid().active()));
    std::printf("stream fingerprint: %016llx\n",
                static_cast<unsigned long long>(eng.stream_fingerprint()));
    std::printf("sim events: %lld\n",
                static_cast<long long>(inst.net->sim().events_executed()));
    const long rss = peak_rss_kb();
    if (rss > 0) {
      std::printf("peak RSS: %.1f MB (%.1f bytes/client)\n",
                  static_cast<double>(rss) / 1024.0,
                  static_cast<double>(rss) * 1024.0 /
                      static_cast<double>(clients));
    }

    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      out << telemetry::chrome_trace_json(recorder);
      std::printf("wrote %s\n", trace_path.c_str());
    }
    if (eng.flows_emitted() == 0) {
      std::fprintf(stderr, "megakv: no flows emitted\n");
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "megakv: %s\n", e.what());
    return 1;
  }
  return 0;
}
