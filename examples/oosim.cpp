// oosim — the educational toolkit (§5.3's Mininet analogue): run any of
// the bundled architectures against a workload from the command line, no
// code required.
//
//   oosim <arch> [options]
//
//   arch:       clos | cthrough | jupiter | mordia | rotornet-vlb |
//               rotornet-direct | rotornet-ucmp | rotornet-hoho | opera |
//               shale | semi-oblivious
//   --tors N        number of ToRs (default 8)
//   --hosts N       hosts per ToR (default 1)
//   --slice US      slice duration in microseconds (default 100)
//   --uplinks N     optical uplinks per ToR (default 1)
//   --workload W    kv | rpc | hadoop | kvstore-trace (default kv)
//   --load F        offered load fraction for trace workloads (default 0.3)
//   --ms N          simulated milliseconds (default 100)
//   --seed N        RNG seed (default 1)
//   --csv PATH      write the FCT CDF as CSV
//   --trace=PATH    record a flight-recorder trace and write it as Chrome
//                   trace_event JSON (open in chrome://tracing or Perfetto)
#include <cstdio>
#include <memory>
#include <string>

#include "arch/arch.h"
#include "common/cli.h"
#include "runner/experiments.h"
#include "services/export.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/trace_export.h"
#include "workload/kv.h"
#include "workload/traces.h"

using namespace oo;
using namespace oo::literals;

int main(int argc, char** argv) {
  arch::Params p;
  std::string arch_name, workload = "kv", csv_path, trace_path;
  double load = 0.3, slice_us = 100.0;
  int ms = 100;

  cli::ArgParser args(
      "oosim",
      "archs: clos cthrough jupiter mordia rotornet-vlb rotornet-direct\n"
      "       rotornet-ucmp rotornet-hoho opera shale semi-oblivious");
  args.positional("arch", &arch_name, "architecture preset")
      .option("--tors", &p.tors, "number of ToRs (default 8)")
      .option("--hosts", &p.hosts_per_tor, "hosts per ToR (default 1)")
      .option("--slice", &slice_us, "slice duration us (default 100)")
      .option("--uplinks", &p.uplinks, "optical uplinks per ToR (default 1)")
      .option("--workload", &workload, "kv | rpc | hadoop | kvstore")
      .option("--load", &load, "offered load fraction for traces")
      .option("--ms", &ms, "simulated milliseconds (default 100)")
      .option("--seed", &p.seed, "RNG seed (default 1)")
      .option("--csv", &csv_path, "write the FCT CDF as CSV")
      .option("--trace", &trace_path, "write a Chrome trace_event JSON");
  if (!args.parse(argc, argv)) return 1;
  p.slice = SimTime::nanos(static_cast<std::int64_t>(slice_us * 1e3));

  try {
    auto inst = runner::make_arch(arch_name, p);
    telemetry::FlightRecorder recorder(std::size_t{1} << 16);
    if (!trace_path.empty()) inst.net->sim().set_recorder(&recorder);
    std::printf("architecture: %s  (%d ToRs x %d hosts, %s)\n",
                inst.name.c_str(), p.tors, p.hosts_per_tor,
                inst.net->schedule().summary().c_str());

    std::unique_ptr<workload::KvWorkload> kv;
    std::unique_ptr<workload::TraceReplay> trace;
    const PercentileSampler* fct = nullptr;
    if (workload == "kv") {
      std::vector<HostId> clients;
      for (HostId h = 1; h < inst.net->num_hosts(); ++h) clients.push_back(h);
      kv = std::make_unique<workload::KvWorkload>(*inst.net, 0, clients,
                                                  2_ms);
      kv->start();
      fct = &kv->fct_us();
    } else {
      workload::TraceKind kind;
      if (workload == "rpc") kind = workload::TraceKind::Rpc;
      else if (workload == "hadoop") kind = workload::TraceKind::Hadoop;
      else if (workload == "kvstore") kind = workload::TraceKind::KvStore;
      else throw std::runtime_error("unknown workload: " + workload);
      trace = std::make_unique<workload::TraceReplay>(*inst.net, kind, load);
      trace->start();
      fct = &trace->mice_fct_us();
    }

    inst.run_for(SimTime::millis(ms));
    if (kv) kv->stop();
    if (trace) trace->stop();

    std::printf("\nflow completion times (us):\n");
    std::printf("  n=%zu  p50=%.1f  p90=%.1f  p99=%.1f  max=%.1f\n",
                fct->count(), fct->percentile(50), fct->percentile(90),
                fct->percentile(99), fct->max());
    const auto t = inst.net->totals();
    std::printf(
        "delivered=%lld  fabric_drops=%lld  congestion_drops=%lld  "
        "no_route=%lld\n",
        static_cast<long long>(t.delivered),
        static_cast<long long>(t.fabric_drops),
        static_cast<long long>(t.congestion_drops),
        static_cast<long long>(t.no_route_drops));
    if (!csv_path.empty()) {
      services::write_file(csv_path, services::cdf_csv(*fct, 100, "fct_us"));
      std::printf("wrote CDF to %s\n", csv_path.c_str());
    }
    if (!trace_path.empty()) {
      services::write_file(trace_path,
                           telemetry::chrome_trace_json(recorder));
      std::printf("wrote Chrome trace (%zu events) to %s\n", recorder.size(),
                  trace_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "oosim: %s\n", e.what());
    return 1;
  }
  return 0;
}
