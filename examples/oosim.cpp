// oosim — the educational toolkit (§5.3's Mininet analogue): run any of
// the bundled architectures against a workload from the command line, no
// code required.
//
//   oosim <arch> [options]
//
//   arch:       clos | cthrough | jupiter | mordia | rotornet-vlb |
//               rotornet-direct | rotornet-ucmp | rotornet-hoho | opera |
//               shale | semi-oblivious
//   --tors N        number of ToRs (default 8)
//   --hosts N       hosts per ToR (default 1)
//   --slice US      slice duration in microseconds (default 100)
//   --uplinks N     optical uplinks per ToR (default 1)
//   --workload W    kv | rpc | hadoop | kvstore-trace (default kv)
//   --load F        offered load fraction for trace workloads (default 0.3)
//   --ms N          simulated milliseconds (default 100)
//   --seed N        RNG seed (default 1)
//   --csv PATH      write the FCT CDF as CSV
//   --trace=PATH    record a flight-recorder trace and write it as Chrome
//                   trace_event JSON (open in chrome://tracing or Perfetto)
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "arch/arch.h"
#include "services/export.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/trace_export.h"
#include "workload/kv.h"
#include "workload/traces.h"

using namespace oo;
using namespace oo::literals;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: oosim <arch> [--tors N] [--hosts N] [--slice US] "
               "[--uplinks N]\n"
               "             [--workload kv|rpc|hadoop|kvstore] [--load F] "
               "[--ms N] [--seed N] [--csv PATH] [--trace=PATH]\n"
               "archs: clos cthrough jupiter mordia rotornet-vlb "
               "rotornet-direct\n"
               "       rotornet-ucmp rotornet-hoho opera shale "
               "semi-oblivious\n");
  return 1;
}

arch::Instance make(const std::string& name, const arch::Params& p) {
  using arch::RotorRouting;
  if (name == "clos") return arch::make_clos(p);
  if (name == "cthrough") return arch::make_cthrough(p);
  if (name == "jupiter") return arch::make_jupiter(p);
  if (name == "mordia") return arch::make_mordia(p);
  if (name == "rotornet-vlb")
    return arch::make_rotornet(p, RotorRouting::Vlb);
  if (name == "rotornet-direct")
    return arch::make_rotornet(p, RotorRouting::Direct);
  if (name == "rotornet-ucmp")
    return arch::make_rotornet(p, RotorRouting::Ucmp);
  if (name == "rotornet-hoho")
    return arch::make_rotornet(p, RotorRouting::Hoho);
  if (name == "opera") return arch::make_opera(p);
  if (name == "shale") return arch::make_shale(p);
  if (name == "semi-oblivious") return arch::make_semi_oblivious(p);
  throw std::runtime_error("unknown architecture: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  // --trace=FILE can appear anywhere; strip it before the paired-flag scan.
  std::string trace_path;
  {
    int w = 1;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--trace=", 8) == 0) {
        trace_path = argv[i] + 8;
      } else {
        argv[w++] = argv[i];
      }
    }
    argc = w;
  }
  if (argc < 2) return usage();
  const std::string arch_name = argv[1];

  arch::Params p;
  std::string workload = "kv";
  std::string csv_path;
  double load = 0.3;
  int ms = 100;
  double slice_us = 100.0;
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string opt = argv[i];
    const std::string val = argv[i + 1];
    if (opt == "--tors") p.tors = std::stoi(val);
    else if (opt == "--hosts") p.hosts_per_tor = std::stoi(val);
    else if (opt == "--slice") slice_us = std::stod(val);
    else if (opt == "--uplinks") p.uplinks = std::stoi(val);
    else if (opt == "--workload") workload = val;
    else if (opt == "--load") load = std::stod(val);
    else if (opt == "--ms") ms = std::stoi(val);
    else if (opt == "--seed") p.seed = std::stoull(val);
    else if (opt == "--csv") csv_path = val;
    else return usage();
  }
  p.slice = SimTime::nanos(static_cast<std::int64_t>(slice_us * 1e3));

  try {
    auto inst = make(arch_name, p);
    telemetry::FlightRecorder recorder(std::size_t{1} << 16);
    if (!trace_path.empty()) inst.net->sim().set_recorder(&recorder);
    std::printf("architecture: %s  (%d ToRs x %d hosts, %s)\n",
                inst.name.c_str(), p.tors, p.hosts_per_tor,
                inst.net->schedule().summary().c_str());

    std::unique_ptr<workload::KvWorkload> kv;
    std::unique_ptr<workload::TraceReplay> trace;
    const PercentileSampler* fct = nullptr;
    if (workload == "kv") {
      std::vector<HostId> clients;
      for (HostId h = 1; h < inst.net->num_hosts(); ++h) clients.push_back(h);
      kv = std::make_unique<workload::KvWorkload>(*inst.net, 0, clients,
                                                  2_ms);
      kv->start();
      fct = &kv->fct_us();
    } else {
      workload::TraceKind kind;
      if (workload == "rpc") kind = workload::TraceKind::Rpc;
      else if (workload == "hadoop") kind = workload::TraceKind::Hadoop;
      else if (workload == "kvstore") kind = workload::TraceKind::KvStore;
      else return usage();
      trace = std::make_unique<workload::TraceReplay>(*inst.net, kind, load);
      trace->start();
      fct = &trace->mice_fct_us();
    }

    inst.run_for(SimTime::millis(ms));
    if (kv) kv->stop();
    if (trace) trace->stop();

    std::printf("\nflow completion times (us):\n");
    std::printf("  n=%zu  p50=%.1f  p90=%.1f  p99=%.1f  max=%.1f\n",
                fct->count(), fct->percentile(50), fct->percentile(90),
                fct->percentile(99), fct->max());
    const auto t = inst.net->totals();
    std::printf(
        "delivered=%lld  fabric_drops=%lld  congestion_drops=%lld  "
        "no_route=%lld\n",
        static_cast<long long>(t.delivered),
        static_cast<long long>(t.fabric_drops),
        static_cast<long long>(t.congestion_drops),
        static_cast<long long>(t.no_route_drops));
    if (!csv_path.empty()) {
      services::write_file(csv_path, services::cdf_csv(*fct, 100, "fct_us"));
      std::printf("wrote CDF to %s\n", csv_path.c_str());
    }
    if (!trace_path.empty()) {
      services::write_file(trace_path,
                           telemetry::chrome_trace_json(recorder));
      std::printf("wrote Chrome trace (%zu events) to %s\n", recorder.size(),
                  trace_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "oosim: %s\n", e.what());
    return 1;
  }
  return 0;
}
