// Quickstart: bring up a RotorNet-style optical DCN in a few lines — the
// OpenOptics workflow of Fig. 5a. A rotor schedule is deployed, VLB routing
// compiled into time-flow tables, and a latency-sensitive KV workload
// measures flow completion times across the reconfiguring fabric.
#include <cstdio>

#include "api/openoptics.h"
#include "common/log.h"
#include "routing/to_routing.h"
#include "topo/round_robin.h"
#include "workload/kv.h"

using namespace oo;
using namespace oo::literals;

int main() {
  // Static configuration (§4.1) — normally a JSON file on disk.
  const char* config_json = R"({
    "node_num": 8,
    "hosts_per_node": 1,
    "uplink": 1,
    "bw_gbps": 100.0,
    "slice_us": 100.0,
    "ocs": "emulated",
    "calendar": true
  })";

  auto net = api::Net::from_json(config_json);

  // Topology: single-dimension round-robin rotor schedule (RotorNet).
  auto circuits = topo::round_robin_1d(8, 1);
  const SliceId period = topo::round_robin_period(8);
  if (!net.deploy_topo(circuits, period)) {
    std::fprintf(stderr, "deploy_topo failed: %s\n", net.last_error().c_str());
    return 1;
  }
  std::printf("deployed: %s\n", net.schedule().summary().c_str());

  // Routing: VLB with per-hop lookup and packet-level multipath (Fig. 5a).
  auto paths = routing::vlb(net.schedule());
  if (!net.deploy_routing(paths, api::Lookup::PerHop,
                          api::Multipath::PerPacket)) {
    std::fprintf(stderr, "deploy_routing failed: %s\n",
                 net.last_error().c_str());
    return 1;
  }
  std::printf("routing: %zu paths compiled into time-flow tables\n",
              paths.size());

  // Workload: memcached-style SETs from 7 clients to 1 server.
  std::vector<HostId> clients;
  for (HostId h = 1; h < 8; ++h) clients.push_back(h);
  workload::KvWorkload kv(net.network(), /*server=*/0, clients,
                          /*mean_interval=*/2_ms);
  kv.start();
  net.run_for(200_ms);
  kv.stop();

  const auto& fct = kv.fct_us();
  std::printf("\nKV SET flow completion times over RotorNet+VLB:\n");
  std::printf("  ops=%lld  p50=%.1fus  p90=%.1fus  p99=%.1fus  max=%.1fus\n",
              static_cast<long long>(kv.ops_completed()), fct.percentile(50),
              fct.percentile(90), fct.percentile(99), fct.max());

  const auto totals = net.network().totals();
  std::printf(
      "network: delivered=%lld fabric_drops=%lld congestion_drops=%lld "
      "no_route=%lld\n",
      static_cast<long long>(totals.delivered),
      static_cast<long long>(totals.fabric_drops),
      static_cast<long long>(totals.congestion_drops),
      static_cast<long long>(totals.no_route_drops));
  return totals.delivered > 0 ? 0 : 2;
}
