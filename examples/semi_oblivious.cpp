// Fig. 5(c): semi-oblivious TA+TO hybrid — a rotor schedule refreshed from
// the observed traffic matrix: sorn() densifies slices between hotspots
// while keeping every pair connected each cycle. Demonstrates OpenOptics'
// TA/TO boundary-breaking: a traffic-driven decision deploying a
// traffic-oblivious batch of topologies.
#include <cstdio>

#include "api/openoptics.h"
#include "routing/to_routing.h"
#include "services/collector.h"
#include "topo/round_robin.h"
#include "topo/sorn.h"
#include "workload/transfer_pool.h"

using namespace oo;
using namespace oo::literals;

int main() {
  const int kTors = 8;
  // Twice the rotor's minimum period: the slack is what sorn() reallocates
  // toward hot pairs (with period == #matchings every matching needs its
  // one slice and nothing can be skewed).
  const SliceId kPeriod = 2 * topo::round_robin_period(kTors);

  auto net = api::Net::from_json(R"({
    "node_num": 8, "uplink": 1, "bw_gbps": 100.0, "slice_us": 100.0,
    "calendar": true, "ocs": "emulated"
  })");
  // Uniform demand: sorn degenerates to an even round-robin over the cycle.
  topo::TrafficMatrix uniform(kTors);
  for (int i = 0; i < kTors; ++i)
    for (int j = 0; j < kTors; ++j)
      if (i != j) uniform.at(i, j) = 1.0;
  if (!net.deploy_topo(topo::sorn(uniform, kTors, kPeriod), kPeriod))
    return 1;
  if (!net.deploy_routing(routing::vlb(net.schedule()), api::Lookup::PerHop,
                          api::Multipath::PerPacket))
    return 1;
  std::printf("start: plain rotor %s\n", net.schedule().summary().c_str());

  // Count direct slices between the (soon-to-be) hot pair before skewing.
  auto direct_slices = [&](NodeId a, NodeId b) {
    int count = 0;
    for (SliceId s = 0; s < kPeriod; ++s) {
      for (const auto& [v, port] : net.schedule().neighbors(a, s)) {
        (void)port;
        if (v == b) ++count;
      }
    }
    return count;
  };
  const int before = direct_slices(0, 5);

  // Fig. 5(c) control loop: every interval, rebuild the schedule with sorn.
  auto& ctl = net.controller();
  auto prio = std::make_shared<int>(0);
  services::Collector collector(
      net.network(), 10_ms, [&, prio](const topo::TrafficMatrix& tm) {
        if (tm.total() <= 0) return;
        auto circuits = topo::sorn(tm, kTors, kPeriod);
        optics::Schedule next;
        if (!ctl.compile_schedule(circuits, kPeriod, next)) return;
        ctl.deploy_routing(routing::vlb(next), api::Lookup::PerHop,
                           api::Multipath::PerPacket, ++*prio, &next);
        ctl.deploy_topo(circuits, kPeriod, 20_us);
      });
  collector.start();

  // Skewed demand: 0 -> 5 dominates.
  workload::TransferPool pool(net.network());
  int done = 0;
  for (int i = 0; i < 20; ++i) {
    net.sim().schedule_at(SimTime::millis(1 + 2 * i), [&]() {
      pool.launch(0, 5, 2 << 20, {}, [&](SimTime, std::int64_t) { ++done; });
    });
  }
  net.run_for(60_ms);

  const int after = direct_slices(0, 5);
  std::printf("direct slices for the hot pair 0<->5: %d -> %d per cycle\n",
              before, after);
  std::printf("transfers completed: %d\n", done);
  return (after > before && done >= 15) ? 0 : 2;
}
