// §6 Case II in miniature: troubleshooting transport performance on a TO
// fabric. A long-lived TCP flow runs over RotorNet with VLB; reordering
// from per-packet spraying triggers spurious fast retransmits; raising the
// dupack threshold recovers throughput — the reTCP/TDTCP-style parameter
// study OpenOptics makes possible outside hybrid-only emulators.
#include <cstdio>

#include "arch/arch.h"
#include "transport/tcp_lite.h"

using namespace oo;
using namespace oo::literals;

namespace {

void run(int dupack) {
  arch::Params p;
  p.tors = 8;
  p.slice = 100_us;
  p.uplinks = 2;
  auto inst = arch::make_rotornet(p, arch::RotorRouting::Vlb);
  transport::TcpConfig cfg;
  cfg.dupack_threshold = dupack;
  cfg.app_rate_cap = 40e9;
  transport::TcpLite tcp(*inst.net, 0, 4, cfg);
  tcp.start();
  inst.run_for(80_ms);
  std::printf(
      "  dupack=%2d: goodput=%5.1f Gbps  reorder events=%6lld  "
      "spurious fast-retx=%4lld  rto=%3lld  cwnd=%.0f\n",
      dupack, tcp.goodput_bps() / 1e9,
      static_cast<long long>(tcp.reorder_events()),
      static_cast<long long>(tcp.fast_retransmits()),
      static_cast<long long>(tcp.rto_events()), tcp.cwnd());
}

}  // namespace

int main() {
  std::printf("TCP over RotorNet+VLB: tuning the dupack threshold\n");
  std::printf("(per-packet spraying reorders; fast retransmit misfires)\n\n");
  for (int dupack : {3, 5, 9, 17, 33, 65}) {
    run(dupack);
  }
  std::printf(
      "\nhigher thresholds absorb spray-induced reordering; the residual\n"
      "gap to line rate is genuine circuit-wait latency, not loss.\n");
  return 0;
}
