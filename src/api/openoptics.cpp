#include "api/openoptics.h"

#include <cassert>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "parallel/sharded.h"
#include "runner/experiments.h"
#include "telemetry/trace_export.h"

namespace oo::api {

Config Config::from_json(const std::string& text) {
  const json::Value v = json::parse(text);
  Config c;
  c.node_num = static_cast<int>(v.get_int("node_num", c.node_num));
  c.hosts_per_node =
      static_cast<int>(v.get_int("hosts_per_node", c.hosts_per_node));
  c.uplink = static_cast<int>(v.get_int("uplink", c.uplink));
  c.bw_gbps = v.get_double("bw_gbps", c.bw_gbps);
  c.slice_us = v.get_double("slice_us", c.slice_us);
  c.period = static_cast<int>(v.get_int("period", c.period));
  c.ocs = v.get_string("ocs", c.ocs);
  c.calendar = v.get_bool("calendar", c.calendar);
  c.electrical_gbps = v.get_double("electrical_gbps", c.electrical_gbps);
  c.seed = static_cast<std::uint64_t>(v.get_int("seed", 42));
  c.resync_interval_us =
      v.get_double("resync_interval_us", c.resync_interval_us);
  c.congestion_detection =
      v.get_bool("congestion_detection", c.congestion_detection);
  c.congestion_response =
      v.get_string("congestion_response", c.congestion_response);
  c.pushback = v.get_bool("pushback", c.pushback);
  c.offload = v.get_bool("offload", c.offload);
  c.host_stack = v.get_string("host_stack", c.host_stack);
  c.sb_latency_us = v.get_double("sb_latency_us", c.sb_latency_us);
  c.sb_loss_prob = v.get_double("sb_loss_prob", c.sb_loss_prob);
  c.sb_dup_prob = v.get_double("sb_dup_prob", c.sb_dup_prob);
  c.sb_fencing = v.get_bool("sb_fencing", c.sb_fencing);
  c.controller_replicas = static_cast<int>(
      v.get_int("controller_replicas", c.controller_replicas));
  c.election_timeout_us =
      v.get_double("election_timeout_us", c.election_timeout_us);
  c.heartbeat_us = v.get_double("heartbeat_us", c.heartbeat_us);
  c.shards = static_cast<int>(v.get_int("shards", c.shards));
  return c;
}

Config Config::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("config: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return from_json(ss.str());
}

core::NetworkConfig Config::to_network_config() const {
  core::NetworkConfig n;
  n.num_tors = node_num;
  n.hosts_per_tor = hosts_per_node;
  n.optical_bw = bw_gbps * 1e9;
  n.host_bw = bw_gbps * 1e9;
  n.electrical_bw = electrical_gbps * 1e9;
  n.calendar_mode = calendar;
  n.seed = seed;
  n.resync_interval =
      SimTime::nanos(static_cast<std::int64_t>(resync_interval_us * 1e3));
  n.congestion_detection = congestion_detection;
  if (congestion_response == "defer") {
    n.congestion_response = core::CongestionResponse::Defer;
  } else if (congestion_response == "trim") {
    n.congestion_response = core::CongestionResponse::Trim;
  } else if (congestion_response == "drop") {
    n.congestion_response = core::CongestionResponse::Drop;
  } else {
    throw std::runtime_error("unknown congestion_response: " +
                             congestion_response);
  }
  n.pushback = pushback;
  n.offload = offload;
  if (host_stack == "kernel") {
    n.host_stack = core::HostStack::Kernel;
  } else if (host_stack == "libvma") {
    n.host_stack = core::HostStack::Libvma;
  } else {
    throw std::runtime_error("unknown host_stack: " + host_stack);
  }
  n.shards = shards;
  return n;
}

optics::OcsProfile Config::profile() const {
  if (ocs == "mems") return optics::ocs_mems();
  if (ocs == "rotor") return optics::ocs_rotor();
  if (ocs == "liquid-crystal") return optics::ocs_liquid_crystal();
  if (ocs == "awgr") return optics::ocs_awgr();
  if (ocs == "emulated") return optics::ocs_emulated();
  throw std::runtime_error("unknown ocs profile: " + ocs);
}

Net::Net(const Config& cfg) : cfg_(cfg) {}

bool Net::deploy_topo(const std::vector<optics::Circuit>& circuits,
                      SliceId period, SimTime reconfig_delay) {
  if (net_ == nullptr) {
    const SimTime slice =
        cfg_.calendar
            ? SimTime::nanos(static_cast<std::int64_t>(cfg_.slice_us * 1e3))
            : SimTime::seconds(3600);
    optics::Schedule sched(cfg_.node_num, cfg_.uplink, period, slice);
    for (const auto& c : circuits) {
      if (!sched.feasible(c)) return false;
      sched.add_circuit(c);
    }
    net_ = std::make_unique<core::Network>(cfg_.to_network_config(),
                                           std::move(sched), profile_cached());
    ctl_ = std::make_unique<core::Controller>(*net_);
    core::SouthboundConfig sb;
    sb.latency =
        SimTime::nanos(static_cast<std::int64_t>(cfg_.sb_latency_us * 1e3));
    sb.loss_prob = cfg_.sb_loss_prob;
    sb.dup_prob = cfg_.sb_dup_prob;
    ctl_->southbound().configure(sb);
    ctl_->set_fencing(cfg_.sb_fencing);
    if (recorder_) net_->sim().set_recorder(recorder_.get());
    if (cfg_.controller_replicas > 1) {
      core::QuorumConfig qc;
      qc.replicas = cfg_.controller_replicas;
      qc.election_timeout = SimTime::nanos(
          static_cast<std::int64_t>(cfg_.election_timeout_us * 1e3));
      qc.heartbeat =
          SimTime::nanos(static_cast<std::int64_t>(cfg_.heartbeat_us * 1e3));
      quorum_ = std::make_unique<core::ControllerQuorum>(*net_, *ctl_, qc);
      quorum_->start();
    }
    bw_baseline_.assign(static_cast<std::size_t>(cfg_.node_num), 0);
    net_->start();
    return true;
  }
  return ctl_->deploy_topo(circuits, period, reconfig_delay);
}

optics::OcsProfile Net::profile_cached() const { return cfg_.profile(); }

void Net::set_shards(int workers) {
  if (net_) {
    throw std::runtime_error(
        "set_shards: the network already materialized (and started) on "
        "deploy_topo; select the engine before the first deploy");
  }
  cfg_.shards = workers;
}

bool Net::deploy_routing(const std::vector<core::Path>& paths, Lookup lookup,
                         Multipath multipath, int priority) {
  assert(net_ && "deploy_topo must run before deploy_routing");
  return ctl_->deploy_routing(paths, lookup, multipath, priority);
}

bool Net::add(const core::TftEntry& entry, NodeId node) {
  assert(net_);
  return ctl_->add(entry, node);
}

std::vector<NodeId> Net::neighbors(NodeId node, SliceId ts) const {
  assert(net_);
  std::vector<NodeId> out;
  for (const auto& [n, port] : net_->schedule().neighbors(node, ts)) {
    (void)port;
    out.push_back(n);
  }
  return out;
}

std::optional<core::Path> Net::earliest_path(NodeId src, NodeId dst,
                                             SliceId ts, int max_hop) const {
  assert(net_);
  return routing::earliest_path(net_->schedule(), src, dst, ts, max_hop);
}

topo::TrafficMatrix Net::collect() {
  assert(net_);
  return topo::TrafficMatrix::from_bytes(net_->collect_tm());
}

std::int64_t Net::buffer_usage(NodeId node, PortId port) const {
  assert(net_);
  if (port == kInvalidPort) return net_->tor(node).buffer_bytes();
  return net_->tor(node).port_buffer_bytes(port);
}

void Net::enable_tracing(std::size_t capacity) {
  if (!recorder_) {
    recorder_ = std::make_unique<telemetry::FlightRecorder>(capacity);
  }
  if (net_) net_->sim().set_recorder(recorder_.get());
}

void Net::write_chrome_trace(const std::string& path) const {
  if (!recorder_) {
    throw std::runtime_error("write_chrome_trace: tracing not enabled");
  }
  std::ofstream out(path);
  if (!out) throw std::runtime_error("trace: cannot open " + path);
  // Sharded runs record worker-lane events into per-shard rings; stitch
  // them into one trace with shard-labelled node tracks.
  parallel::ShardedEngine* engine =
      net_ && net_->sharded() ? net_->sharded_engine() : nullptr;
  if (engine && !engine->worker_recorders().empty()) {
    std::vector<const telemetry::FlightRecorder*> shards;
    for (const auto& r : engine->worker_recorders()) {
      shards.push_back(r.get());
    }
    out << telemetry::chrome_trace_json(*recorder_, shards);
    return;
  }
  out << telemetry::chrome_trace_json(*recorder_);
}

void Net::write_metrics_csv(const std::string& path) {
  assert(net_);
  std::ofstream out(path);
  if (!out) throw std::runtime_error("metrics: cannot open " + path);
  out << telemetry::metrics_csv(net_->sim().metrics());
}

traffic::TrafficEngine& Net::start_traffic(traffic::TrafficSpec spec) {
  if (!net_) {
    throw std::runtime_error(
        "start_traffic: deploy a topology first (the network materializes "
        "on the first deploy_topo call)");
  }
  if (traffic_) traffic_->stop();
  traffic_ = std::make_unique<traffic::TrafficEngine>(*net_, std::move(spec));
  traffic_->start();
  return *traffic_;
}

chaos::InvariantMonitor& Net::enable_invariants(SimTime poll) {
  if (!net_) {
    throw std::runtime_error(
        "enable_invariants: deploy a topology first (the network "
        "materializes on the first deploy_topo call)");
  }
  if (!monitor_) {
    monitor_ = std::make_unique<chaos::InvariantMonitor>(*net_);
    monitor_->attach_controller(ctl_.get());
    if (quorum_) monitor_->attach_quorum(quorum_.get());
    if (net_->sharded()) monitor_->attach_parallel(net_->sharded_engine());
    monitor_->start(poll);
  }
  return *monitor_;
}

std::string Net::check_invariants() {
  if (!monitor_) {
    throw std::runtime_error("check_invariants: call enable_invariants first");
  }
  monitor_->check_at_drain();
  return monitor_->report();
}

services::HealthScanner& Net::enable_health_scanner(
    services::HealthScanner::Config cfg) {
  if (!net_) {
    throw std::runtime_error(
        "enable_health_scanner: deploy a topology first (the network "
        "materializes on the first deploy_topo call)");
  }
  if (!scanner_) {
    scanner_ = std::make_unique<services::HealthScanner>(*net_, cfg);
    scanner_->set_controller(ctl_.get());
    if (monitor_) monitor_->attach_scanner(scanner_.get());
    scanner_->start();
  }
  return *scanner_;
}

std::int64_t Net::bw_usage(NodeId node) {
  assert(net_);
  std::int64_t total = 0;
  auto& tor = net_->tor(node);
  for (PortId p = 0; p < tor.num_uplinks(); ++p) {
    total += tor.uplink_tx_bytes(p);
  }
  auto& base = bw_baseline_[static_cast<std::size_t>(node)];
  const std::int64_t delta = total - base;
  base = total;
  return delta;
}

runner::CampaignSummary run_campaign(const runner::CampaignSpec& spec,
                                     const runner::RunnerOptions& opt) {
  runner::CampaignRunner engine(spec,
                                runner::find_experiment(spec.experiment),
                                opt);
  return engine.run();
}

runner::CampaignSummary run_campaign_file(const std::string& spec_path,
                                          const runner::RunnerOptions& opt) {
  return run_campaign(runner::CampaignSpec::from_file(spec_path), opt);
}

}  // namespace oo::api
