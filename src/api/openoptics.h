// OpenOptics user API (§4.2, Tab. 1). A user creates a Net from a static
// JSON configuration (hardware setup: node kind/count, optical uplinks,
// slice duration, OCS type), then drives the topology, routing, and
// monitoring APIs. The C++ spellings of the paper's calls:
//
//   auto net = oo::api::Net::from_json(config_text);
//   auto circuits = oo::topo::round_robin_1d(n, uplinks);
//   net.deploy_topo(circuits, period);
//   auto paths = oo::routing::vlb(net.schedule());
//   net.deploy_routing(paths, Lookup::PerHop, Multipath::PerPacket);
//   net.run_for(SimTime::millis(10));
//   auto tm = net.collect();
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chaos/invariants.h"
#include "common/json.h"
#include "core/controller.h"
#include "core/network.h"
#include "core/quorum.h"
#include "core/path.h"
#include "optics/fabric.h"
#include "optics/schedule.h"
#include "routing/time_expanded.h"
#include "runner/runner.h"
#include "services/health_scanner.h"
#include "telemetry/flight_recorder.h"
#include "topo/traffic_matrix.h"
#include "traffic/engine.h"

namespace oo::api {

using Lookup = core::LookupMode;
using Multipath = core::MultipathMode;

// Static configuration (§4.1): the JSON file of hardware facts.
struct Config {
  int node_num = 8;
  int hosts_per_node = 1;
  int uplink = 1;
  double bw_gbps = 100.0;
  double slice_us = 100.0;
  int period = 0;           // 0: decided at deploy_topo time
  std::string ocs = "emulated";  // emulated|mems|rotor|liquid-crystal|awgr
  bool calendar = true;
  double electrical_gbps = 0.0;
  std::uint64_t seed = 42;
  // Period of the control plane's OpSync resync beacons (0 disables them;
  // drifting clocks then run open-loop until a watchdog probe intervenes).
  double resync_interval_us = 100.0;

  // Infra-service knobs (§5.2).
  bool congestion_detection = true;
  std::string congestion_response = "drop";  // drop|defer|trim
  bool pushback = false;
  bool offload = false;
  std::string host_stack = "libvma";  // libvma|kernel

  // Southbound control channel (controller <-> ToR install agents). The
  // defaults model an ideal channel: deploys commit inline, exactly the
  // pre-transactional semantics. Non-zero values run every deploy as an
  // asynchronous two-phase transaction. sb_fencing=false selects the
  // legacy scatter baseline that exposes mixed-epoch forwarding.
  double sb_latency_us = 0.0;
  double sb_loss_prob = 0.0;
  double sb_dup_prob = 0.0;
  bool sb_fencing = true;

  // Controller quorum (core/quorum.h). replicas=1 keeps the single
  // controller, bit-for-bit; >1 runs leader election and majority-gated
  // commits over the same southbound channel model.
  int controller_replicas = 1;
  double election_timeout_us = 500.0;
  double heartbeat_us = 100.0;

  // Sharded parallel engine workers (src/parallel/). 0 keeps the legacy
  // single-heap engine bit-for-bit; >= 1 runs the windowed lane engine,
  // whose results are byte-identical at any worker count.
  int shards = 0;

  static Config from_json(const std::string& text);
  // Reads the JSON config from disk (the paper's static configuration
  // file); throws on I/O or parse errors.
  static Config from_file(const std::string& path);
  core::NetworkConfig to_network_config() const;
  optics::OcsProfile profile() const;
};

class Net {
 public:
  // The network materializes on the first deploy_topo() call, which fixes
  // the schedule period (the static config fixes everything else).
  explicit Net(const Config& cfg);
  static Net from_json(const std::string& text) { return Net(Config::from_json(text)); }

  bool ready() const { return net_ != nullptr; }
  core::Network& network() { return *net_; }
  core::Controller& controller() { return *ctl_; }
  // Controller quorum — nullptr unless controller_replicas > 1.
  core::ControllerQuorum* quorum() { return quorum_.get(); }
  const optics::Schedule& schedule() const { return net_->schedule(); }
  sim::Simulator& sim() { return net_->sim(); }

  // --- Topology APIs ---
  // connect(): the primitive circuit constructor.
  static optics::Circuit connect(NodeId n1, PortId p1, NodeId n2, PortId p2,
                                 SliceId ts = kAnySlice) {
    return optics::Circuit{n1, p1, n2, p2, ts};
  }
  bool deploy_topo(const std::vector<optics::Circuit>& circuits,
                   SliceId period = 1,
                   SimTime reconfig_delay = SimTime::zero());

  // --- Routing APIs ---
  bool deploy_routing(const std::vector<core::Path>& paths,
                      Lookup lookup = Lookup::PerHop,
                      Multipath multipath = Multipath::None,
                      int priority = 0);
  bool add(const core::TftEntry& entry, NodeId node);
  std::vector<NodeId> neighbors(NodeId node, SliceId ts) const;
  std::optional<core::Path> earliest_path(NodeId src, NodeId dst, SliceId ts,
                                          int max_hop = 0) const;

  // --- Monitoring APIs ---
  topo::TrafficMatrix collect();  // drains per-destination counters
  std::int64_t buffer_usage(NodeId node, PortId port = kInvalidPort) const;
  // Bytes sent on a node's uplinks since the last bw_usage call.
  std::int64_t bw_usage(NodeId node);

  // --- Telemetry ---
  // Attach a flight recorder holding the last `capacity` trace events.
  // Safe to call before the network materializes; recording starts as soon
  // as it does.
  void enable_tracing(std::size_t capacity = std::size_t{1} << 16);
  telemetry::FlightRecorder* recorder() { return recorder_.get(); }
  // Write the recorded events as Chrome trace_event JSON (load in
  // chrome://tracing or Perfetto). Throws if tracing was never enabled or
  // the file cannot be opened.
  void write_chrome_trace(const std::string& path) const;
  // Dump every registered metric (counters, gauges, histograms) as CSV.
  void write_metrics_csv(const std::string& path);

  // --- Traffic APIs ---
  // Attaches a streaming production-traffic engine (src/traffic/) to the
  // materialized network and starts it. The returned engine is owned by
  // the Net; call again to replace it — the old engine stops, cancels its
  // queued events, and completions of transfers it leaves in flight are
  // dropped (not recorded anywhere), so replacement is safe mid-run.
  // Throws std::runtime_error before deploy_topo materializes the network
  // and std::invalid_argument on a malformed spec.
  traffic::TrafficEngine& start_traffic(traffic::TrafficSpec spec);
  traffic::TrafficEngine& start_traffic_json(const std::string& spec_text) {
    return start_traffic(traffic::spec_from_json_text(spec_text));
  }
  traffic::TrafficEngine* traffic() { return traffic_.get(); }

  // --- Invariants (src/chaos) ---
  // Attach the always-on invariant monitor to the materialized network,
  // controller, and quorum (when one exists) and arm its periodic poll.
  // Throws before deploy_topo materializes the network. Violations surface
  // through the returned monitor, check_invariants(), and the
  // "chaos.violations" metric cell.
  chaos::InvariantMonitor& enable_invariants(
      SimTime poll = SimTime::micros(100));
  chaos::InvariantMonitor* invariants() { return monitor_.get(); }
  // Run every polled check plus the packet-conservation ledger and return
  // the violation report ("" = all invariants hold). The conservation
  // equality is exact only at quiescence — call after traffic has stopped
  // and drained, or expect in-flight packets to show as a transient leak.
  // Throws if enable_invariants was never called.
  std::string check_invariants();

  // --- Gray-failure health scanning (src/services/health_scanner.h) ---
  // Attach the evidence-based health scanner to the materialized network:
  // wires the controller (claim-vs-behavior checks), registers its ladder
  // with the invariant monitor when one is enabled, and starts boundary-
  // aligned conservation audits. Throws before deploy_topo materializes
  // the network. Idempotent — the first call's config wins.
  services::HealthScanner& enable_health_scanner(
      services::HealthScanner::Config cfg = {});
  services::HealthScanner* health_scanner() { return scanner_.get(); }

  // --- Execution ---
  // Select the sharded parallel engine (0 = legacy single-heap engine).
  // Must precede the first deploy_topo(), which materializes AND starts
  // the network; throws std::runtime_error afterwards.
  void set_shards(int workers);
  int shards() const { return cfg_.shards; }
  void run_for(SimTime t) { net_->sim().run_until(net_->sim().now() + t); }
  void start() { net_->start(); }

  const std::string& last_error() const { return ctl_->last_error(); }
  // Highest fabric-wide committed deploy epoch (0 before materialization).
  std::uint64_t committed_epoch() const {
    return ctl_ ? ctl_->committed_epoch() : 0;
  }

 private:
  optics::OcsProfile profile_cached() const;

  Config cfg_;
  std::unique_ptr<core::Network> net_;
  std::unique_ptr<core::Controller> ctl_;
  std::unique_ptr<core::ControllerQuorum> quorum_;  // replicas > 1 only
  std::unique_ptr<telemetry::FlightRecorder> recorder_;
  std::unique_ptr<traffic::TrafficEngine> traffic_;
  std::unique_ptr<chaos::InvariantMonitor> monitor_;
  std::unique_ptr<services::HealthScanner> scanner_;
  std::vector<std::int64_t> bw_baseline_;
};

// --- Campaign helpers ---
// Run a campaign spec against the built-in experiment registry (see
// src/runner/): expands the parameter grid × replicas, executes on
// opt.jobs worker threads with per-run crash isolation and retries, and —
// when opt.out_dir is set — writes manifest.jsonl plus the deterministic
// results.jsonl/results.csv (byte-identical for any jobs value).
runner::CampaignSummary run_campaign(const runner::CampaignSpec& spec,
                                     const runner::RunnerOptions& opt);
// Same, loading the JSON spec from disk (the campaign CLI's entry point).
runner::CampaignSummary run_campaign_file(const std::string& spec_path,
                                          const runner::RunnerOptions& opt);

}  // namespace oo::api
