#include "arch/arch.h"

#include <cassert>

#include <queue>

#include "routing/ta_routing.h"
#include "routing/to_routing.h"
#include "topo/bvn.h"
#include "topo/jupiter.h"
#include "topo/matching.h"
#include "topo/round_robin.h"
#include "topo/sorn.h"

namespace oo::arch {

using core::LookupMode;
using core::MultipathMode;
using core::NetworkConfig;

namespace {

// A "forever" slice for TA topology instances: circuits are continuous, so
// one slice outlives any simulation horizon.
constexpr SimTime kStaticSlice = SimTime::seconds(3600);

optics::Schedule compile(int tors, int uplinks, SliceId period, SimTime slice,
                         const std::vector<optics::Circuit>& circuits) {
  optics::Schedule sched(tors, uplinks, period, slice);
  for (const auto& c : circuits) {
    const bool ok = sched.add_circuit(c);
    assert(ok && "architecture preset produced an infeasible circuit");
    (void)ok;
  }
  return sched;
}

Instance build(std::string name, NetworkConfig cfg, optics::Schedule sched,
               optics::OcsProfile profile) {
  // The guardband must cover the device's retargeting window (§7); presets
  // size it automatically from the OCS profile.
  cfg.guardband = std::max(cfg.guardband, profile.reconfig_delay);
  Instance inst;
  inst.name = std::move(name);
  inst.net = std::make_unique<core::Network>(cfg, std::move(sched),
                                             std::move(profile));
  inst.ctl = std::make_unique<core::Controller>(*inst.net);
  return inst;
}

// All nodes reachable from node 0 over the static (slice-0) circuits.
bool connected(const optics::Schedule& sched) {
  const int n = sched.num_nodes();
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::queue<NodeId> q;
  q.push(0);
  seen[0] = 1;
  int count = 1;
  while (!q.empty()) {
    const NodeId m = q.front();
    q.pop();
    for (const auto& [v, port] : sched.neighbors(m, 0)) {
      (void)port;
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        ++count;
        q.push(v);
      }
    }
  }
  return count == n;
}

NetworkConfig base_config(const Params& p) {
  NetworkConfig cfg;
  cfg.num_tors = p.tors;
  cfg.hosts_per_tor = p.hosts_per_tor;
  cfg.optical_bw = p.bw;
  cfg.host_bw = p.bw;
  cfg.seed = p.seed;
  cfg.host_stack = p.host_stack;
  cfg.offload = p.offload;
  cfg.calendar_queues = p.calendar_queues;
  if (p.guardband > SimTime::zero()) cfg.guardband = p.guardband;
  if (p.queue_capacity > 0) cfg.queue_capacity = p.queue_capacity;
  cfg.shards = p.shards;
  return cfg;
}

}  // namespace

Instance make_clos(const Params& p) {
  NetworkConfig cfg = base_config(p);
  cfg.calendar_mode = false;
  cfg.electrical_bw = p.electrical_bw;
  auto inst = build("clos", cfg,
                    optics::Schedule(p.tors, 1, 1, kStaticSlice),
                    optics::ocs_emulated());
  const bool ok = inst.ctl->deploy_routing(
      routing::electrical_default(p.tors), LookupMode::PerHop,
      MultipathMode::None);
  assert(ok);
  (void)ok;
  inst.net->start();
  return inst;
}

Instance make_cthrough(const Params& p) {
  NetworkConfig cfg = base_config(p);
  cfg.calendar_mode = false;
  // The parallel electrical network is rate-limited to 10 Gbps for
  // consistency with the original design (§6 Case I).
  cfg.electrical_bw = 10e9;
  auto inst = build("c-through", cfg,
                    optics::Schedule(p.tors, p.uplinks, 1, kStaticSlice),
                    optics::ocs_mems());
  const bool ok = inst.ctl->deploy_routing(
      routing::electrical_default(p.tors), LookupMode::PerHop,
      MultipathMode::None);
  assert(ok);
  (void)ok;

  // Host-side elephant steering over direct circuits (flow aging, §5.2).
  inst.steering = std::make_shared<services::HybridSteering>(
      *inst.net, /*elephant_bytes=*/256 << 10, /*idle_reset=*/
      SimTime::millis(50));
  for (HostId h = 0; h < inst.net->num_hosts(); ++h) {
    auto& host = inst.net->host(h);
    auto steering = inst.steering;
    const NodeId tor = host.tor();
    host.set_send_hook([steering, tor](core::Packet& pkt) {
      steering->prepare(pkt, tor);
    });
  }

  // Control loop: TM -> Edmonds matching -> MEMS reconfiguration.
  auto* net = inst.net.get();
  auto* ctl = inst.ctl.get();
  const double circuit_capacity =
      p.bw / kBitsPerByte * p.collect_interval.sec();
  const int uplinks = p.uplinks;
  const SimTime delay = p.reconfig_delay;
  inst.collector = std::make_unique<services::Collector>(
      *net, p.collect_interval,
      [ctl, uplinks, circuit_capacity, delay](const topo::TrafficMatrix& tm) {
        if (tm.total() <= 0) return;
        ctl->deploy_topo(topo::edmonds(tm, uplinks, circuit_capacity), 1,
                         delay);
      });
  inst.collector->start();
  inst.net->start();
  return inst;
}

Instance make_jupiter(const Params& p) {
  const int uplinks = std::max(3, p.uplinks);  // mesh connectivity
  NetworkConfig cfg = base_config(p);
  cfg.calendar_mode = false;
  auto mesh = topo::jupiter(topo::TrafficMatrix{}, p.tors, uplinks);
  auto sched = compile(p.tors, uplinks, 1, kStaticSlice, mesh);
  auto inst =
      build("jupiter", cfg, sched, optics::ocs_mems());
  const bool ok = inst.ctl->deploy_routing(routing::wcmp(sched),
                                           LookupMode::PerHop,
                                           MultipathMode::PerFlow);
  assert(ok);
  (void)ok;

  // Gradual evolution: new WCMP routes overlay at higher priority before
  // the topology swap (make-before-break, Fig. 5b).
  auto* net = inst.net.get();
  auto* ctl = inst.ctl.get();
  auto prev = std::make_shared<std::vector<optics::Circuit>>(mesh);
  auto prio = std::make_shared<int>(0);
  const SimTime delay = p.reconfig_delay;
  const int tors = p.tors;
  inst.collector = std::make_unique<services::Collector>(
      *net, p.collect_interval,
      [net, ctl, prev, prio, uplinks, delay,
       tors](const topo::TrafficMatrix& tm) {
        if (tm.total() <= 0) return;
        auto circuits = topo::jupiter(tm, tors, uplinks, *prev);
        optics::Schedule next;
        if (!ctl->compile_schedule(circuits, 1, next)) return;
        // Production fabrics never deploy a partitioning topology; keep the
        // incumbent if the optimizer ever proposes one.
        if (!connected(next)) return;
        ctl->deploy_routing(routing::wcmp(next), LookupMode::PerHop,
                            MultipathMode::PerFlow, ++*prio, &next);
        ctl->deploy_topo(circuits, 1, delay);
        *prev = std::move(circuits);
        (void)net;
      });
  inst.collector->start();
  inst.net->start();
  return inst;
}

Instance make_mordia(const Params& p) {
  NetworkConfig cfg = base_config(p);
  cfg.calendar_mode = true;
  cfg.congestion_response = core::CongestionResponse::Defer;
  const SliceId period = static_cast<SliceId>(p.tors - 1);
  cfg.calendar_queues = 0;  // match period
  NetworkConfig mcfg = cfg;

  // Cold start: uniform demand decomposes to a round-robin-like schedule.
  topo::TrafficMatrix uniform(p.tors);
  for (int i = 0; i < p.tors; ++i)
    for (int j = 0; j < p.tors; ++j)
      if (i != j) uniform.at(i, j) = 1.0;
  auto circuits = topo::bvn(uniform, period);
  auto sched = compile(p.tors, 1, period, p.slice, circuits);
  auto inst = build("mordia", mcfg, sched, optics::ocs_liquid_crystal());
  bool ok = inst.ctl->deploy_routing(routing::direct_to(sched),
                                     LookupMode::PerHop, MultipathMode::None);
  assert(ok);
  (void)ok;

  auto* net = inst.net.get();
  auto* ctl = inst.ctl.get();
  inst.collector = std::make_unique<services::Collector>(
      *net, p.collect_interval, [ctl, period](const topo::TrafficMatrix& tm) {
        if (tm.total() <= 0) return;
        auto next_circuits = topo::bvn(tm, period);
        optics::Schedule next;
        if (!ctl->compile_schedule(next_circuits, period, next)) return;
        // The schedule is rebuilt from scratch each interval, so routing
        // state is replaced rather than overlaid (stale entries would point
        // at circuits that no longer exist in any slice).
        ctl->clear_routing();
        ctl->deploy_routing(routing::direct_to(next), LookupMode::PerHop,
                            MultipathMode::None, 0, &next);
        ctl->deploy_topo(next_circuits, period, SimTime::micros(12));
      });
  inst.collector->start();
  inst.net->start();
  return inst;
}

Instance make_rotornet(const Params& p, RotorRouting routing_kind,
                       bool hybrid_electrical) {
  assert(p.tors % 2 == 0);
  NetworkConfig cfg = base_config(p);
  cfg.calendar_mode = true;
  if (hybrid_electrical) cfg.electrical_bw = 10e9;
  const SliceId period = topo::round_robin_period(p.tors);
  auto circuits = topo::round_robin_1d(p.tors, p.uplinks);
  auto sched = compile(p.tors, p.uplinks, period, p.slice, circuits);

  std::string name = "rotornet";
  std::vector<core::Path> paths;
  LookupMode lookup = LookupMode::PerHop;
  MultipathMode mp = MultipathMode::None;
  switch (routing_kind) {
    case RotorRouting::Vlb:
      name += "-vlb";
      paths = routing::vlb(sched);
      mp = MultipathMode::PerPacket;
      cfg.congestion_response = core::CongestionResponse::Drop;
      break;
    case RotorRouting::Direct:
      name += "-direct";
      // Hybrid merges per-slice electrical alternatives into the optical
      // entries by TFT key below — that needs the expanded per-slice form.
      paths = hybrid_electrical ? routing::direct_to_expanded(sched)
                                : routing::direct_to(sched);
      cfg.congestion_response = core::CongestionResponse::Drop;
      break;
    case RotorRouting::Ucmp:
      name += "-ucmp";
      paths = routing::ucmp(sched);
      lookup = LookupMode::SourceRouting;
      mp = MultipathMode::PerPacket;
      cfg.congestion_response = core::CongestionResponse::Defer;
      break;
    case RotorRouting::Hoho:
      name += "-hoho";
      paths = routing::hoho(sched);
      cfg.congestion_response = core::CongestionResponse::Defer;
      break;
  }
  if (hybrid_electrical) {
    name += "-hybrid";
    // Per-slice electrical alternatives merge into the optical entries as
    // bandwidth-weighted multipath (TDTCP-style hybrid).
    const double w_el = cfg.electrical_bw / p.bw;
    for (NodeId n = 0; n < p.tors; ++n) {
      for (NodeId d = 0; d < p.tors; ++d) {
        if (n == d) continue;
        for (SliceId s = 0; s < period; ++s) {
          core::Path ep;
          ep.dst = d;
          ep.start_slice = s;
          ep.weight = w_el;
          ep.hops.push_back(
              core::PathHop{n, core::kElectricalEgress, kAnySlice});
          paths.push_back(std::move(ep));
        }
      }
    }
    mp = MultipathMode::PerPacket;
  }

  auto inst = build(std::move(name), cfg, sched, optics::ocs_emulated());
  const bool ok = inst.ctl->deploy_routing(paths, lookup, mp);
  assert(ok);
  (void)ok;
  inst.net->start();
  return inst;
}

Instance make_opera(const Params& p, bool bulk) {
  assert(p.tors % 2 == 0);
  NetworkConfig cfg = base_config(p);
  cfg.calendar_mode = true;
  // Mice plane: Opera trims payloads on congestion; bulk plane: packets
  // that miss their circuit defer to the next one (Opera's bulk traffic is
  // retransmitted promptly on trim — deferral approximates that without a
  // receiver-driven loss recovery stack).
  cfg.congestion_response = bulk ? core::CongestionResponse::Defer
                                 : core::CongestionResponse::Trim;
  const int uplinks = std::max(2, p.uplinks);
  const SliceId period = topo::round_robin_period(p.tors);
  auto circuits = topo::round_robin_1d(p.tors, uplinks);
  auto sched = compile(p.tors, uplinks, period, p.slice, circuits);
  auto inst =
      build(bulk ? "opera-bulk" : "opera", cfg, sched, optics::ocs_emulated());
  const bool ok = inst.ctl->deploy_routing(
      bulk ? routing::direct_to(sched) : routing::opera(sched),
      LookupMode::PerHop, MultipathMode::None);
  assert(ok);
  (void)ok;
  inst.net->start();
  return inst;
}

Instance make_semi_oblivious(const Params& p) {
  assert(p.tors % 2 == 0);
  NetworkConfig cfg = base_config(p);
  cfg.calendar_mode = true;
  const SliceId period = topo::round_robin_period(p.tors);
  auto circuits = topo::round_robin_1d(p.tors, 1);
  auto sched = compile(p.tors, 1, period, p.slice, circuits);
  auto inst = build("semi-oblivious", cfg, sched, optics::ocs_emulated());
  bool ok = inst.ctl->deploy_routing(routing::vlb(sched), LookupMode::PerHop,
                                     MultipathMode::PerPacket);
  assert(ok);
  (void)ok;

  // Every collection interval the optical schedule itself is re-skewed
  // toward the observed demand — a TA-style decision deploying a TO-style
  // batch of topologies (§4.3).
  auto* ctl = inst.ctl.get();
  auto prio = std::make_shared<int>(0);
  const int tors = p.tors;
  inst.collector = std::make_unique<services::Collector>(
      *inst.net, p.collect_interval,
      [ctl, prio, tors, period](const topo::TrafficMatrix& tm) {
        if (tm.total() <= 0) return;
        auto next_circuits = topo::sorn(tm, tors, period);
        optics::Schedule next;
        if (!ctl->compile_schedule(next_circuits, period, next)) return;
        ctl->deploy_routing(routing::vlb(next), LookupMode::PerHop,
                            MultipathMode::PerPacket, ++*prio, &next);
        ctl->deploy_topo(next_circuits, period, SimTime::micros(20));
      });
  inst.collector->start();
  inst.net->start();
  return inst;
}

Instance make_shale(const Params& p, int dimension) {
  NetworkConfig cfg = base_config(p);
  cfg.calendar_mode = true;
  cfg.congestion_response = core::CongestionResponse::Defer;
  const SliceId period = topo::round_robin_period(p.tors, dimension);
  auto circuits = topo::round_robin_nd(p.tors, dimension);
  auto sched = compile(p.tors, 1, period, p.slice, circuits);
  auto inst = build("shale", cfg, sched, optics::ocs_emulated());
  // Dimension-ordered tours: one fabric hop per grid dimension suffices to
  // reach any coordinate; the time-expanded search finds the fastest
  // interleaving with the slice rotation.
  const bool ok = inst.ctl->deploy_routing(
      routing::hoho(sched, /*max_hops=*/2 * dimension), LookupMode::PerHop,
      MultipathMode::None);
  assert(ok);
  (void)ok;
  inst.net->start();
  return inst;
}

}  // namespace oo::arch
