// Architecture presets (§6 Case I): each make_* composes the generic
// OpenOptics pieces — a circuit schedule, a routing scheme, calendar or
// flow-table queueing, fabric profiles, and infra services — into a running
// instance of a published optical DCN design. The same building blocks a
// user script would wire by hand (Fig. 5), packaged for the benches.
#pragma once

#include <memory>
#include <string>

#include "core/controller.h"
#include "core/network.h"
#include "services/collector.h"
#include "services/hybrid_steering.h"
#include "topo/traffic_matrix.h"

namespace oo::arch {

struct Params {
  int tors = 8;
  int hosts_per_tor = 1;
  int uplinks = 1;
  SimTime slice = SimTime::micros(100);
  BitsPerSec bw = 100e9;              // optical + host line rate
  BitsPerSec electrical_bw = 100e9;   // where a parallel fabric exists
  std::uint64_t seed = 1;
  // TA control-loop interval (paper values: 24 h Jupiter, seconds
  // c-Through; benches shrink these to simulated-feasible horizons).
  SimTime collect_interval = SimTime::millis(50);
  // MEMS retargeting time for TA reconfigurations.
  SimTime reconfig_delay = SimTime::millis(25);
  // Host stack model (libvma vs kernel, Fig. 13/14).
  core::HostStack host_stack = core::HostStack::Libvma;
  // Buffer offloading (§5.2) and the on-switch calendar horizon (0 = the
  // full schedule period).
  bool offload = false;
  int calendar_queues = 0;
  // Slice guardband override (0 = the derived 200 ns default).
  SimTime guardband = SimTime::zero();
  // Per-calendar-queue byte capacity override (0 = default).
  std::int64_t queue_capacity = 0;
  // Sharded parallel engine workers (0 = legacy single-heap engine,
  // bit-for-bit; >= 1 = windowed lane engine, byte-identical at any
  // count). See src/parallel/sharded.h.
  int shards = 0;
};

struct Instance {
  std::string name;
  std::unique_ptr<core::Network> net;
  std::unique_ptr<core::Controller> ctl;
  // Optional services kept alive with the instance.
  std::shared_ptr<services::HybridSteering> steering;
  std::unique_ptr<services::Collector> collector;

  core::Network& network() { return *net; }
  void run_for(SimTime t) { net->sim().run_until(net->sim().now() + t); }
};

// Traditional folded-Clos baseline: electrical fabric only, default routes.
Instance make_clos(const Params& p);

// c-Through (TA-1): 100G MEMS optical for elephants + rate-limited parallel
// electrical network for mice; flow-aging steering on hosts; Edmonds
// matching control loop at `collect_interval`.
Instance make_cthrough(const Params& p);

// Jupiter (TA-2): OCS mesh, WCMP, gradual topology evolution on collection.
Instance make_jupiter(const Params& p);

// Mordia (TA, slotted): BvN schedule over microsecond slices, circuits on
// demand from the TM, direct-circuit routing with calendar queues.
Instance make_mordia(const Params& p);

// RotorNet / TO family on a 1-D rotor schedule.
enum class RotorRouting { Vlb, Direct, Ucmp, Hoho };
Instance make_rotornet(const Params& p, RotorRouting routing,
                       bool hybrid_electrical = false);

// Opera: multi-uplink rotor with expander (same-slice multi-hop) routing
// and packet trimming on congestion. Opera segregates traffic classes:
// `bulk` selects the direct (wait-for-circuit) plane used for elephants,
// the default the low-latency expander plane used for mice.
Instance make_opera(const Params& p, bool bulk = false);

// Semi-oblivious (TA+TO, §4.3): rotor start, sorn(TM) schedule refresh on
// every collection.
Instance make_semi_oblivious(const Params& p);

// Shale: multi-dimensional rotor (§4.2 round_robin(dimension, uplink)) —
// ToRs form a `dimension`-D grid (tors must be an even-side perfect
// power); slices cycle through per-dimension tournaments; routing is
// earliest-arrival with one hop per dimension of budget.
Instance make_shale(const Params& p, int dimension = 2);

}  // namespace oo::arch
