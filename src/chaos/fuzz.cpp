#include "chaos/fuzz.h"

#include <algorithm>

#include "common/rng.h"

namespace oo::chaos {

namespace {

using services::FaultEvent;
using services::FaultKind;

// Whole-microsecond times only: the JSON reproducer stores microsecond
// doubles, and integral microseconds are the values that survive the
// dump/parse round-trip bit-exactly.
SimTime us(std::int64_t v) { return SimTime::nanos(v * 1000); }

std::int64_t rand_us(Rng& rng, std::int64_t lo_us, std::int64_t hi_us) {
  return rng.uniform_i64(lo_us, hi_us);
}

// Per-kind sampling weight. Steady-state faults (flaps, BER, message loss)
// are the bread and butter; one-shot structural faults (crashes, kills)
// are rarer but present in every pool they are legal for.
int weight(FaultKind k, const FuzzSpec& spec) {
  const bool quorum = spec.replicas >= 2;
  switch (k) {
    case FaultKind::PortFail:
      return 10;
    case FaultKind::PortRepair:
      return 6;
    case FaultKind::LinkFlap:
      return 8;
    case FaultKind::Ber:
      return 6;
    case FaultKind::ReconfigStall:
      return 4;
    case FaultKind::ControlDelay:
      return spec.control_faults ? 5 : 0;
    case FaultKind::ControlFail:
      return spec.control_faults ? 4 : 0;
    case FaultKind::ClockDriftRamp:
      return spec.clock_faults ? 6 : 0;
    case FaultKind::ClockStep:
      return spec.clock_faults ? 5 : 0;
    case FaultKind::SyncBeaconLoss:
      return spec.clock_faults ? 4 : 0;
    case FaultKind::SyncOutage:
      return spec.clock_faults ? 2 : 0;
    case FaultKind::SbMsgLoss:
      return spec.control_faults ? 5 : 0;
    case FaultKind::SbMsgDelay:
      return spec.control_faults ? 4 : 0;
    case FaultKind::SbMsgDup:
      return spec.control_faults ? 3 : 0;
    case FaultKind::TorInstallFail:
      return spec.control_faults ? 3 : 0;
    case FaultKind::ControllerCrash:
      return spec.control_faults ? 3 : 0;
    case FaultKind::LeaderKill:
      return quorum ? 4 : 0;
    case FaultKind::ReplicaPartition:
      return quorum ? 4 : 0;
    case FaultKind::LogDivergence:
      return quorum ? 3 : 0;
    case FaultKind::BerRamp:
      return 5;
    case FaultKind::GrayPortPair:
      return 5;
    case FaultKind::SilentInstallFail:
      return spec.control_faults ? 3 : 0;
    case FaultKind::TelemetrySkew:
      return 3;
  }
  return 0;
}

}  // namespace

std::vector<FaultEvent> fuzz_plan(std::uint64_t seed, const FuzzSpec& spec) {
  Rng rng = derive_rng(seed, 0, "chaos");
  const double intensity = std::clamp(spec.intensity, 0.1, 8.0);
  const int count = std::max(
      1, static_cast<int>(static_cast<double>(spec.events) * intensity));
  const std::int64_t horizon_us = std::max<std::int64_t>(
      1, spec.horizon.ns() / 1000);
  // Fault windows: long enough to matter, short enough that recovery also
  // gets exercised inside the horizon.
  const std::int64_t dur_lo = std::max<std::int64_t>(1, horizon_us / 50);
  const std::int64_t dur_hi = std::max(
      dur_lo + 1, static_cast<std::int64_t>(
                      static_cast<double>(horizon_us) * 0.25 * intensity));

  // Cumulative weight table over the kinds legal for this spec.
  std::vector<std::pair<FaultKind, int>> pool;
  int total_weight = 0;
  for (int k = 0; k < services::kNumFaultKinds; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    const int w = weight(kind, spec);
    if (w > 0) {
      total_weight += w;
      pool.emplace_back(kind, total_weight);
    }
  }

  std::vector<FaultEvent> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int pick =
        static_cast<int>(rng.uniform(static_cast<std::uint32_t>(
            total_weight)));
    FaultKind kind = pool.back().first;
    for (const auto& [k, cum] : pool) {
      if (pick < cum) {
        kind = k;
        break;
      }
    }

    FaultEvent ev;
    ev.kind = kind;
    ev.at = us(rand_us(rng, 0, horizon_us - 1));
    const NodeId node = static_cast<NodeId>(
        rng.uniform(static_cast<std::uint32_t>(spec.num_tors)));
    const PortId port = static_cast<PortId>(
        rng.uniform(static_cast<std::uint32_t>(spec.ports_per_tor)));
    const int replica = static_cast<int>(
        rng.uniform(static_cast<std::uint32_t>(std::max(1, spec.replicas))));
    const SimTime dur = us(rand_us(rng, dur_lo, dur_hi));
    // Probability-style knobs quantized to 1/64 so they, too, round-trip
    // exactly (any dyadic fraction does; this one keeps plans readable).
    const double prob = std::min(
        1.0, static_cast<double>(rand_us(rng, 1, 48)) / 64.0 * intensity);

    switch (kind) {
      case FaultKind::PortFail:
      case FaultKind::PortRepair:
        ev.node = node;
        ev.port = port;
        break;
      case FaultKind::LinkFlap:
        ev.node = node;
        ev.port = port;
        ev.duration = us(rand_us(rng, dur_lo, std::max(dur_lo + 1,
                                                       dur_hi / 2)));
        ev.period = ev.duration + us(rand_us(rng, dur_lo, dur_hi));
        ev.cycles = static_cast<int>(rng.uniform(3)) + 1;
        break;
      case FaultKind::Ber:
        ev.node = node;
        ev.port = port;
        // 1e-7-ish: high enough to corrupt frames inside the horizon.
        ev.ber = static_cast<double>(rand_us(rng, 1, 64)) * 1e-8 * intensity;
        break;
      case FaultKind::ReconfigStall:
        ev.extra = us(rand_us(rng, 1, std::max<std::int64_t>(2, dur_lo * 4)));
        break;
      case FaultKind::ControlDelay:
        ev.extra = us(rand_us(rng, 1, dur_lo * 2));
        ev.duration = dur;
        break;
      case FaultKind::ControlFail:
      case FaultKind::SyncOutage:
      case FaultKind::ControllerCrash:
        ev.duration = dur;
        break;
      case FaultKind::ClockDriftRamp:
        ev.node = node;
        ev.ppm = static_cast<double>(rand_us(rng, 20, 400)) * intensity *
                 (rng.uniform(2) == 0 ? 1.0 : -1.0);
        ev.duration = dur;
        break;
      case FaultKind::ClockStep:
        ev.node = node;
        ev.extra = us(rand_us(rng, 1, std::max<std::int64_t>(2, dur_lo)));
        break;
      case FaultKind::SyncBeaconLoss:
      case FaultKind::TorInstallFail:
        ev.node = node;
        ev.duration = dur;
        break;
      case FaultKind::SbMsgLoss:
      case FaultKind::SbMsgDup:
        // Occasionally fabric-wide (node unset) — the harsher variant.
        if (rng.uniform(4) != 0) ev.node = node;
        ev.ber = prob;
        ev.duration = dur;
        break;
      case FaultKind::SbMsgDelay:
        if (rng.uniform(4) != 0) ev.node = node;
        ev.extra = us(rand_us(rng, 1, dur_lo * 2));
        ev.duration = dur;
        break;
      case FaultKind::LeaderKill:
        // Usually revive (exercises failover both ways); sometimes sticky.
        if (rng.uniform(4) != 0) ev.duration = dur;
        break;
      case FaultKind::ReplicaPartition:
        ev.node = static_cast<NodeId>(replica);
        ev.duration = dur;
        break;
      case FaultKind::LogDivergence:
        ev.node = static_cast<NodeId>(replica);
        break;
      case FaultKind::BerRamp:
        ev.node = node;
        ev.port = port;
        // Monotonic aging curve: start at a benign BER, climb to a target
        // high enough to visibly eat frames inside the ramp window.
        ev.jitter = static_cast<double>(rand_us(rng, 1, 8)) * 1e-9;
        ev.ber = static_cast<double>(rand_us(rng, 8, 64)) * 1e-7 * intensity;
        ev.duration = dur;
        ev.cycles = static_cast<int>(rng.uniform(8)) + 2;
        break;
      case FaultKind::GrayPortPair:
        ev.node = node;
        ev.port = port;
        // Usually pair-scoped (the dirty-mirror signature); occasionally
        // peer-wildcarded, which reads like early port aging instead.
        if (rng.uniform(4) != 0) {
          ev.peer = static_cast<NodeId>(
              rng.uniform(static_cast<std::uint32_t>(spec.num_tors)));
        }
        ev.ber = prob;
        ev.duration = dur;
        break;
      case FaultKind::SilentInstallFail:
        ev.node = node;
        // Usually heals (the agent starts applying again); sometimes
        // sticky for the rest of the run.
        if (rng.uniform(4) != 0) ev.duration = dur;
        break;
      case FaultKind::TelemetrySkew:
        ev.node = node;
        ev.ppm = static_cast<double>(rand_us(rng, 50, 500)) * 1000.0 *
                 (rng.uniform(2) == 0 ? 1.0 : -1.0);
        ev.duration = dur;
        break;
    }
    out.push_back(ev);
  }
  return out;
}

}  // namespace oo::chaos
