// Seeded chaos fuzzer: structurally valid random FaultPlans drawn from a
// derive_rng stream. The same (seed, spec) pair always yields the same
// event list, on any machine and at any campaign --jobs — a fuzz campaign
// is just a seed grid, and any failure is replayed from its seed alone.
//
// "Structurally valid" means every generated event passes FaultPlan's JSON
// vocabulary and points at nodes/ports/replicas that exist in the target
// fabric: the fuzzer explores the space of *legal* fault scripts, and the
// invariant monitor decides whether the simulator survived them. All times
// are quantized to whole microseconds so plans round-trip exactly through
// the JSON reproducer format (see fault_events_to_json).
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"
#include "services/fault_plan.h"

namespace oo::chaos {

struct FuzzSpec {
  // Events per plan (before intensity scaling).
  int events = 12;
  // Severity knob in (0, ~4]: scales event count, fault durations, and
  // loss/duplication probabilities. 1.0 = the defaults below.
  double intensity = 1.0;
  // Events land in [0, horizon); keep it inside the run so every fault has
  // time to act (and be recovered from) before the drain check.
  SimTime horizon = SimTime::millis(2);
  // Fabric shape the plan must stay inside.
  int num_tors = 4;
  int ports_per_tor = 1;
  // Quorum replica count; < 2 removes the quorum fault kinds
  // (leader_kill / replica_partition / log_divergence) from the pool.
  int replicas = 1;
  // Gate whole fault families (e.g. a clock-focused campaign).
  bool clock_faults = true;
  bool control_faults = true;
};

// Generate one plan. Deterministic in (seed, spec); different seeds give
// independent plans (the stream is split via derive_rng(seed, 0, "chaos")).
std::vector<services::FaultEvent> fuzz_plan(std::uint64_t seed,
                                            const FuzzSpec& spec);

}  // namespace oo::chaos
