#include "chaos/invariants.h"

#include <utility>

#include "common/log.h"
#include "core/controller.h"
#include "core/quorum.h"
#include "parallel/sharded.h"
#include "services/health_scanner.h"
#include "services/sync_watchdog.h"
#include "transport/fluid.h"

namespace oo::chaos {

namespace {

const char* tor_state_name(services::SyncWatchdog::TorState s) {
  using TorState = services::SyncWatchdog::TorState;
  switch (s) {
    case TorState::Healthy:
      return "healthy";
    case TorState::Widened:
      return "widened";
    case TorState::Quarantined:
      return "quarantined";
  }
  return "?";
}

const char* health_name(services::HealthScanner::NodeHealth s) {
  using NodeHealth = services::HealthScanner::NodeHealth;
  switch (s) {
    case NodeHealth::Healthy:
      return "healthy";
    case NodeHealth::Suspect:
      return "suspect";
    case NodeHealth::Degraded:
      return "degraded";
    case NodeHealth::Quarantined:
      return "quarantined";
  }
  return "?";
}

}  // namespace

InvariantMonitor::InvariantMonitor(core::Network& net)
    : net_(net),
      seen_node_epoch_(static_cast<std::size_t>(net.num_tors()), 0),
      seen_agent_epoch_(static_cast<std::size_t>(net.num_tors()), 0),
      violations_ctr_(&net.sim().metrics().counter("chaos.violations")) {
  net_.sim().set_invariant_sink(this);
}

InvariantMonitor::~InvariantMonitor() {
  if (net_.sim().invariant_sink() == this) {
    net_.sim().set_invariant_sink(nullptr);
  }
}

void InvariantMonitor::attach_controller(const core::Controller* ctl) {
  ctl_ = ctl;
}

void InvariantMonitor::attach_quorum(const core::ControllerQuorum* quorum) {
  quorum_ = quorum;
}

void InvariantMonitor::attach_watchdog(services::SyncWatchdog* wd) {
  using TorState = services::SyncWatchdog::TorState;
  wd->set_transition_hook([this](NodeId n, TorState from, TorState to) {
    check_watchdog_transition(n, static_cast<int>(from),
                              static_cast<int>(to));
  });
}

void InvariantMonitor::check_watchdog_transition(NodeId node, int from_i,
                                                 int to_i) {
  using TorState = services::SyncWatchdog::TorState;
  const auto from = static_cast<TorState>(from_i);
  const auto to = static_cast<TorState>(to_i);
  const bool legal =
      (from == TorState::Healthy && to == TorState::Widened) ||
      (from == TorState::Widened && to == TorState::Quarantined) ||
      (from == TorState::Widened && to == TorState::Healthy) ||
      (from == TorState::Quarantined && to == TorState::Healthy);
  if (!legal) {
    violate("watchdog_ladder",
            "node " + std::to_string(node) + ": illegal transition " +
                tor_state_name(from) + " -> " + tor_state_name(to));
  }
}

void InvariantMonitor::attach_scanner(services::HealthScanner* hs) {
  using NodeHealth = services::HealthScanner::NodeHealth;
  hs->set_transition_hook([this](NodeId n, NodeHealth from, NodeHealth to) {
    check_scanner_transition(n, static_cast<int>(from), static_cast<int>(to));
  });
}

void InvariantMonitor::check_scanner_transition(NodeId node, int from_i,
                                                int to_i) {
  using NodeHealth = services::HealthScanner::NodeHealth;
  const auto from = static_cast<NodeHealth>(from_i);
  const auto to = static_cast<NodeHealth>(to_i);
  const bool legal =
      (from == NodeHealth::Healthy && to == NodeHealth::Suspect) ||
      (from == NodeHealth::Suspect && to == NodeHealth::Degraded) ||
      (from == NodeHealth::Suspect && to == NodeHealth::Healthy) ||
      (from == NodeHealth::Degraded && to == NodeHealth::Quarantined) ||
      (from == NodeHealth::Degraded && to == NodeHealth::Healthy) ||
      (from == NodeHealth::Quarantined && to == NodeHealth::Healthy);
  if (!legal) {
    violate("scanner_ladder",
            "node " + std::to_string(node) + ": illegal transition " +
                health_name(from) + " -> " + health_name(to));
  }
}

void InvariantMonitor::attach_fluid(const transport::FluidSolver* fluid) {
  fluid_ = fluid;
}

void InvariantMonitor::attach_parallel(parallel::ShardedEngine* engine) {
  if (!engine) return;
  engine->set_violation_handler(
      [this](const char* invariant, const std::string& detail) {
        violate(invariant, detail);
      });
}

void InvariantMonitor::add_check(std::string name, CheckFn fn) {
  custom_.emplace_back(std::move(name), std::move(fn));
}

void InvariantMonitor::start(SimTime interval) {
  if (started_) return;
  started_ = true;
  interval_ = interval;
  if (interval_ > SimTime::zero()) poll_round();
}

void InvariantMonitor::stop() {
  started_ = false;
  poll_.cancel();
}

void InvariantMonitor::poll_round() {
  check_now();
  if (!started_) return;
  poll_ = net_.sim().schedule_in(interval_, [this] { poll_round(); },
                                 "chaos.poll");
}

void InvariantMonitor::check_now() {
  check_epochs();
  check_quorum();
  check_fluid();
  check_queues();
  check_custom();
}

void InvariantMonitor::check_at_drain() {
  check_now();
  check_conservation();
}

void InvariantMonitor::check_epochs() {
  const int n = net_.num_tors();
  for (NodeId node = 0; node < n; ++node) {
    const auto i = static_cast<std::size_t>(node);
    const std::uint64_t fwd = net_.node_epoch(node);
    if (fwd < seen_node_epoch_[i]) {
      violate("epoch_monotonicity",
              "node " + std::to_string(node) + ": forwarding epoch went " +
                  std::to_string(seen_node_epoch_[i]) + " -> " +
                  std::to_string(fwd));
    }
    seen_node_epoch_[i] = std::max(seen_node_epoch_[i], fwd);
    if (ctl_ != nullptr) {
      const std::uint64_t committed = ctl_->node_committed_epoch(node);
      if (committed < seen_agent_epoch_[i]) {
        violate("epoch_monotonicity",
                "node " + std::to_string(node) +
                    ": agent committed epoch went " +
                    std::to_string(seen_agent_epoch_[i]) + " -> " +
                    std::to_string(committed));
      }
      seen_agent_epoch_[i] = std::max(seen_agent_epoch_[i], committed);
    }
  }
}

void InvariantMonitor::check_quorum() {
  if (quorum_ == nullptr || !quorum_->started()) return;
  using Role = core::ControllerQuorum::Role;
  const int n = quorum_->replicas();
  // At most one *live* leader per term. Split-brain across different terms
  // is a legal transient; two leaders sharing a term is never legal.
  for (int a = 0; a < n; ++a) {
    if (quorum_->role(a) != Role::Leader || quorum_->replica_dead(a)) {
      continue;
    }
    for (int b = a + 1; b < n; ++b) {
      if (quorum_->role(b) != Role::Leader || quorum_->replica_dead(b)) {
        continue;
      }
      if (quorum_->replica_term(a) == quorum_->replica_term(b)) {
        violate("quorum_leader_unique",
                "replicas " + std::to_string(a) + " and " +
                    std::to_string(b) + " both lead term " +
                    std::to_string(quorum_->replica_term(a)));
      }
    }
  }
  // Committed prefixes agree: up to min(commit_index) any two *live*
  // replicas hold identical records (the property failover correctness
  // rests on). Dead replicas are exempt: their state froze mid-crash, and
  // a log_divergence fault can corrupt a record under a frozen commit
  // index — the full-log sync repairs them on revival, before they act.
  for (int a = 0; a < n; ++a) {
    if (quorum_->replica_dead(a)) continue;
    for (int b = a + 1; b < n; ++b) {
      if (quorum_->replica_dead(b)) continue;
      const std::int64_t upto =
          std::min(quorum_->commit_index(a), quorum_->commit_index(b));
      const auto& la = quorum_->log(a);
      const auto& lb = quorum_->log(b);
      for (std::int64_t i = 0; i <= upto; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        if (idx >= la.size() || idx >= lb.size() || !(la[idx] == lb[idx])) {
          const auto rec = [](const std::vector<core::ControllerQuorum::LogRec>&
                                  log,
                              std::size_t j) {
            if (j >= log.size()) return std::string("<missing>");
            std::string s;
            s.append("(t=").append(std::to_string(log[j].term));
            s.append(" e=").append(std::to_string(log[j].epoch)).append(")");
            return s;
          };
          std::string d;
          d.append("replicas ").append(std::to_string(a)).append(" and ");
          d.append(std::to_string(b));
          d.append(" disagree on committed log index ").append(
              std::to_string(i));
          d.append(": ").append(rec(la, idx)).append(" vs ").append(
              rec(lb, idx));
          d.append(" [commits ")
              .append(std::to_string(quorum_->commit_index(a)))
              .append("/")
              .append(std::to_string(quorum_->commit_index(b)))
              .append(", terms ")
              .append(std::to_string(quorum_->replica_term(a)))
              .append("/")
              .append(std::to_string(quorum_->replica_term(b)))
              .append("]");
          violate("quorum_log_prefix", std::move(d));
          break;
        }
      }
    }
  }
}

void InvariantMonitor::check_fluid() {
  if (fluid_ == nullptr) return;
  std::string err = fluid_->conservation_check();
  if (!err.empty()) violate("fluid_conservation", std::move(err));
}

void InvariantMonitor::check_queues() {
  const auto& cfg = net_.config();
  // Generous per-port ceiling: a full calendar (one queue per slice in the
  // period) plus the FIFO. Anything above it — or any negative byte count —
  // is an accounting bug, not congestion.
  const std::int64_t bound =
      static_cast<std::int64_t>(net_.schedule().period()) *
          cfg.queue_capacity +
      cfg.fifo_capacity;
  for (NodeId node = 0; node < net_.num_tors(); ++node) {
    const auto& tor = net_.tor(node);
    for (PortId p = 0; p < tor.num_uplinks(); ++p) {
      const std::int64_t bytes = tor.port_buffer_bytes(p);
      if (bytes < 0 || bytes > bound) {
        violate("queue_bounds",
                "tor " + std::to_string(node) + " port " + std::to_string(p) +
                    ": buffered bytes " + std::to_string(bytes) +
                    " outside [0, " + std::to_string(bound) + "]");
      }
    }
  }
}

void InvariantMonitor::check_custom() {
  for (const auto& [name, fn] : custom_) {
    std::string err = fn();
    if (!err.empty()) violate(name.c_str(), std::move(err));
  }
}

void InvariantMonitor::check_conservation() {
  const auto totals = net_.totals();
  const std::int64_t injected = net_.packets_injected();
  const std::int64_t terminated = totals.delivered + totals.fabric_drops +
                                  totals.congestion_drops +
                                  totals.no_route_drops +
                                  totals.electrical_drops;
  const std::int64_t queued = net_.queued_packets();
  if (injected != terminated + queued) {
    violate("packet_conservation",
            "injected " + std::to_string(injected) + " != delivered " +
                std::to_string(totals.delivered) + " + drops " +
                std::to_string(terminated - totals.delivered) +
                " + queued " + std::to_string(queued) + " (leak of " +
                std::to_string(injected - terminated - queued) +
                " packets)");
  }
}

void InvariantMonitor::on_past_schedule(SimTime when, SimTime now,
                                        const char* tag) {
  violate("no_past_events",
          std::string("event \"") + (tag != nullptr ? tag : "") +
              "\" scheduled at " + std::to_string(when.ns()) +
              "ns, before now=" + std::to_string(now.ns()) + "ns");
}

void InvariantMonitor::violate(const char* invariant, std::string detail) {
  const std::int64_t ordinal = total_violations_++;
  violations_ctr_->inc();
  OO_WARN_ONCE("chaos", "invariant violation detected (see "
                        "chaos.violations and InvariantMonitor::report)");
  if (auto* tr = net_.sim().recorder()) {
    tr->invariant_violation(net_.sim().now(), kInvalidNode, ordinal);
  }
  if (violations_.size() < kViolationCap) {
    violations_.push_back({invariant, net_.sim().now(),
                           net_.sim().events_executed(), std::move(detail)});
  }
}

std::string InvariantMonitor::report() const {
  std::string out;
  for (const auto& v : violations_) {
    out.append("[").append(std::to_string(v.at.ns())).append("ns ev=");
    out.append(std::to_string(v.events_executed)).append("] ");
    out.append(v.invariant).append(": ").append(v.detail).append("\n");
  }
  if (total_violations_ > static_cast<std::int64_t>(violations_.size())) {
    out += "... and " +
           std::to_string(total_violations_ -
                          static_cast<std::int64_t>(violations_.size())) +
           " more\n";
  }
  return out;
}

}  // namespace oo::chaos
