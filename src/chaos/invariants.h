// Always-on invariant monitor: a registry of cheap safety checks woven
// through the simulator, network, control plane, and transport layers. The
// monitor is the "is the simulation still telling the truth?" half of the
// chaos tooling (src/chaos/fuzz.h generates the lies to test it with):
//
//   - packet conservation: every packet injected by a host stack is
//     eventually delivered, dropped (with a counted reason), or still
//     parked in a queue the census can see — checked exactly at drain,
//     when all packet-carrying events have fired;
//   - per-agent committed-epoch monotonicity: a ToR's committed deployment
//     epoch never goes backwards, across crashes, failovers, and fences;
//   - quorum safety: at most one live leader per term, and all replicas
//     agree on the committed log prefix (up to the smaller commit index);
//   - fluid-solver byte conservation: every active flow's remaining bytes
//     stay inside [0, total] at a legal rate;
//   - no event scheduled into the past (via sim::InvariantSink);
//   - watchdog ladder legality: Healthy -> Widened -> Quarantined ->
//     Healthy only — a node must never skip a rung (e.g. Healthy ->
//     Quarantined) or be re-widened without readmission;
//   - queue-depth bounds: per-port buffered bytes stay inside
//     [0, calendar + FIFO capacity].
//
// Cost contract: detached (no monitor constructed, or attach_* not called)
// every hook in the hot path is a null-pointer test or an untaken branch —
// the same zero-overhead bar as the flight recorder. Attached, the polled
// checks run every `interval` of virtual time, so overhead scales with
// fabric size x poll rate, not packet rate (bench/invariant_overhead.cpp
// holds it under 2% on the engine-throughput workload).
//
// On violation the monitor captures a flight-recorder-style context row
// (virtual time, executed-event count, human-readable detail), bumps the
// "chaos.violations" metric, warns once per process, and keeps running —
// campaigns want the full violation list, not the first crash.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/network.h"

namespace oo::core {
class Controller;
class ControllerQuorum;
}  // namespace oo::core
namespace oo::services {
class HealthScanner;
class SyncWatchdog;
}  // namespace oo::services
namespace oo::transport {
class FluidSolver;
}
namespace oo::parallel {
class ShardedEngine;
}

namespace oo::chaos {

struct Violation {
  std::string invariant;  // registry name, e.g. "packet_conservation"
  SimTime at = SimTime::zero();
  std::int64_t events_executed = 0;  // simulator progress when it tripped
  std::string detail;                // what was observed vs. expected
};

class InvariantMonitor : public sim::InvariantSink {
 public:
  // Constructing the monitor attaches the simulator-side sink (past-event
  // detection); everything else is opt-in via attach_*.
  explicit InvariantMonitor(core::Network& net);
  ~InvariantMonitor() override;
  InvariantMonitor(const InvariantMonitor&) = delete;
  InvariantMonitor& operator=(const InvariantMonitor&) = delete;

  // Optional layer attachments. All pointers must outlive the monitor (or
  // the monitor must be destroyed first — the usual stack order).
  void attach_controller(const core::Controller* ctl);
  void attach_quorum(const core::ControllerQuorum* quorum);
  void attach_watchdog(services::SyncWatchdog* wd);  // installs its hook
  void attach_scanner(services::HealthScanner* hs);  // installs its hook
  void attach_fluid(const transport::FluidSolver* fluid);
  // Sharded engine: routes its barrier-time violations (cross-shard packet
  // conservation, lane past-schedule reports, custom barrier checks) into
  // this monitor's violation list instead of the warn-once fallback. The
  // handler fires in the engine's serial barrier phase, so no locking is
  // needed here.
  void attach_parallel(parallel::ShardedEngine* engine);

  // The ladder-legality check behind attach_watchdog's hook, public so the
  // legality table itself is unit-testable without staging a real
  // quarantine. from/to are services::SyncWatchdog::TorState values.
  void check_watchdog_transition(NodeId node, int from, int to);

  // Health-scanner ladder legality (attach_scanner's hook): rungs escalate
  // one at a time (Healthy -> Suspect -> Degraded -> Quarantined) and only
  // readmission returns to Healthy — no rung-skipping in either direction.
  // from/to are services::HealthScanner::NodeHealth values.
  void check_scanner_transition(NodeId node, int from, int to);

  // Custom invariant: `fn` returns an empty string while the invariant
  // holds, a description once it breaks. Evaluated on every poll round and
  // at drain (the chaos_fuzz experiment's planted bug rides this).
  using CheckFn = std::function<std::string()>;
  void add_check(std::string name, CheckFn fn);

  // Arm the periodic poll (virtual time). Idempotent; interval <= 0 keeps
  // the monitor purely event-driven + drain-checked.
  void start(SimTime interval = SimTime::micros(100));
  void stop();

  // Run every polled check right now.
  void check_now();
  // Final pass once the simulator has drained: everything check_now covers
  // plus the exact packet-conservation ledger, which is only a valid
  // equality at quiescence (in-flight packets have either landed or are
  // visible to the queue census).
  void check_at_drain();

  bool ok() const { return total_violations_ == 0; }
  // First kViolationCap violations, in detection order.
  const std::vector<Violation>& violations() const { return violations_; }
  std::int64_t total_violations() const { return total_violations_; }
  // One line per violation — the campaign/CI failure artifact.
  std::string report() const;

  // sim::InvariantSink
  void on_past_schedule(SimTime when, SimTime now, const char* tag) override;

 private:
  static constexpr std::size_t kViolationCap = 256;

  void violate(const char* invariant, std::string detail);
  void poll_round();
  void check_epochs();
  void check_quorum();
  void check_fluid();
  void check_queues();
  void check_custom();
  void check_conservation();

  core::Network& net_;
  const core::Controller* ctl_ = nullptr;
  const core::ControllerQuorum* quorum_ = nullptr;
  const transport::FluidSolver* fluid_ = nullptr;
  std::vector<std::pair<std::string, CheckFn>> custom_;
  // Per-node high-water marks for the monotonicity checks.
  std::vector<std::uint64_t> seen_node_epoch_;
  std::vector<std::uint64_t> seen_agent_epoch_;
  std::vector<Violation> violations_;
  std::int64_t total_violations_ = 0;
  telemetry::Counter* violations_ctr_;
  sim::ScopedEventHandle poll_;
  SimTime interval_ = SimTime::zero();
  bool started_ = false;
};

}  // namespace oo::chaos
