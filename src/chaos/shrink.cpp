#include "chaos/shrink.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "common/json.h"

namespace oo::chaos {

namespace {

using services::FaultEvent;

// One ddmin pass: try removing chunks of `events` at the current
// granularity; restart at granularity 2 whenever a removal sticks.
std::vector<FaultEvent> ddmin(std::vector<FaultEvent> events,
                              const RunPredicate& still_fails, int& probes,
                              int max_probes) {
  std::size_t chunks = 2;
  while (events.size() >= 2 && probes < max_probes) {
    chunks = std::min(chunks, events.size());
    const std::size_t chunk_len =
        (events.size() + chunks - 1) / chunks;  // ceil
    bool reduced = false;
    for (std::size_t start = 0;
         start < events.size() && probes < max_probes;
         start += chunk_len) {
      // Candidate = events with [start, start+chunk_len) removed.
      std::vector<FaultEvent> candidate;
      candidate.reserve(events.size());
      for (std::size_t i = 0; i < events.size(); ++i) {
        if (i < start || i >= start + chunk_len) candidate.push_back(events[i]);
      }
      if (candidate.empty()) continue;
      ++probes;
      if (still_fails(candidate)) {
        events = std::move(candidate);
        chunks = 2;  // restart coarse: the failure lives in fewer events
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (chunks >= events.size()) break;  // 1-minimal at subset level
      chunks = std::min(events.size(), chunks * 2);
    }
  }
  return events;
}

// Field-level shrinking: for each surviving event, try the simplest value
// of every scalar field (zero duration/period/extra, one cycle, no jitter,
// time zero). Accepted only when the failure survives, so the final plan's
// remaining complexity is all load-bearing.
std::vector<FaultEvent> shrink_fields(std::vector<FaultEvent> events,
                                      const RunPredicate& still_fails,
                                      int& probes, int max_probes) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto try_field = [&](auto mutate) {
      if (probes >= max_probes) return;
      FaultEvent saved = events[i];
      mutate(events[i]);
      if (events[i] == saved) return;  // already minimal
      ++probes;
      if (!still_fails(events)) events[i] = saved;
    };
    try_field([](FaultEvent& e) { e.at = SimTime::zero(); });
    try_field([](FaultEvent& e) { e.duration = SimTime::zero(); });
    try_field([](FaultEvent& e) { e.period = SimTime::zero(); });
    try_field([](FaultEvent& e) { e.cycles = 1; });
    try_field([](FaultEvent& e) { e.jitter = 0.0; });
    try_field([](FaultEvent& e) { e.extra = SimTime::zero(); });
    try_field([](FaultEvent& e) { e.ber = 0.0; });
    try_field([](FaultEvent& e) { e.ppm = 0.0; });
  }
  return events;
}

}  // namespace

ShrinkResult shrink_events(const std::vector<FaultEvent>& failing,
                           const RunPredicate& still_fails, int max_probes) {
  ShrinkResult res;
  res.minimal = failing;
  if (failing.empty()) return res;

  res.minimal = ddmin(res.minimal, still_fails, res.probes, max_probes);
  res.minimal =
      shrink_fields(std::move(res.minimal), still_fails, res.probes,
                    max_probes);
  // Final sanity re-run: the artifact we hand the user must reproduce.
  ++res.probes;
  res.reproduced = still_fails(res.minimal);
  return res;
}

void write_reproducer(const std::string& path,
                      const std::vector<FaultEvent>& events,
                      std::uint64_t seed, const std::string& violation,
                      const std::string& replay_cmd) {
  json::Value plan = services::fault_events_to_json(events);
  json::Object root = plan.as_object();  // {"events": [...]}
  root["seed"] = static_cast<std::int64_t>(seed);
  root["violation"] = violation;
  root["replay"] = replay_cmd;
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write reproducer: " + path);
  }
  out << json::Value(std::move(root)).dump(2) << "\n";
}

}  // namespace oo::chaos
