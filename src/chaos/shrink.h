// Automatic fault-plan shrinking: given a plan that makes a run violate an
// invariant (or crash), find a minimal sub-plan that still does, by classic
// delta debugging (ddmin) over event subsets followed by per-event field
// shrinking. Every probe is a full deterministic re-run through the
// caller-supplied predicate, so the minimized plan is guaranteed to still
// reproduce — "minimal" means 1-minimal: removing any single remaining
// event (or simplifying any remaining field) makes the failure disappear.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "services/fault_plan.h"

namespace oo::chaos {

// Re-runs the scenario with `events` and reports whether the failure still
// occurs. Must be deterministic: same events -> same verdict. The shrinker
// treats the plan as an ordered list; predicates normally arm the events
// as-is (FaultPlan::arm handles out-of-order times).
using RunPredicate =
    std::function<bool(const std::vector<services::FaultEvent>&)>;

struct ShrinkResult {
  std::vector<services::FaultEvent> minimal;
  int probes = 0;        // predicate invocations spent
  bool reproduced = false;  // the minimal plan still fails (sanity re-check)
};

// Delta-debug `failing` down to a 1-minimal sub-plan. `max_probes` caps the
// re-run budget; when it runs out the best plan found so far is returned
// (still failing, just maybe not 1-minimal).
ShrinkResult shrink_events(const std::vector<services::FaultEvent>& failing,
                           const RunPredicate& still_fails,
                           int max_probes = 400);

// Write a reproducer JSON next to the campaign artifacts:
//   {"seed": ..., "violation": "...", "replay": "...", "events": [...]}
// `replay` is the exact command line that re-runs the minimal plan.
void write_reproducer(const std::string& path,
                      const std::vector<services::FaultEvent>& events,
                      std::uint64_t seed, const std::string& violation,
                      const std::string& replay_cmd);

}  // namespace oo::chaos
