// Tiny header-only command-line option parser shared by the example and
// campaign binaries. Supports `--opt value`, `--opt=value`, bool flags, and
// positional arguments; generates the usage text from the registrations so
// binaries stop hand-maintaining diverging copies of both.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

namespace oo::cli {

class ArgParser {
 public:
  ArgParser(std::string program, std::string summary)
      : program_(std::move(program)), summary_(std::move(summary)) {}

  // Required positional argument, consumed in registration order.
  ArgParser& positional(const std::string& name, std::string* out,
                        const std::string& help) {
    positionals_.push_back({name, out, help});
    return *this;
  }

  // Bool flag: present -> true. Also accepts --name=true/false.
  ArgParser& flag(const std::string& name, bool* out,
                  const std::string& help) {
    opts_.push_back({name, help, /*takes_value=*/false,
                     [out](const std::string& v) {
                       *out = v.empty() || v == "true" || v == "1";
                       return true;
                     }});
    return *this;
  }

  ArgParser& option(const std::string& name, std::string* out,
                    const std::string& help) {
    return add_value(name, help, [out](const std::string& v) {
      *out = v;
      return true;
    });
  }

  ArgParser& option(const std::string& name, int* out,
                    const std::string& help) {
    return add_value(name, help, [out](const std::string& v) {
      return parse_ll(v, [out](long long x) { *out = static_cast<int>(x); });
    });
  }

  ArgParser& option(const std::string& name, std::int64_t* out,
                    const std::string& help) {
    return add_value(name, help, [out](const std::string& v) {
      return parse_ll(v, [out](long long x) { *out = x; });
    });
  }

  ArgParser& option(const std::string& name, std::uint64_t* out,
                    const std::string& help) {
    return add_value(name, help, [out](const std::string& v) {
      char* end = nullptr;
      const unsigned long long x = std::strtoull(v.c_str(), &end, 10);
      if (end == v.c_str() || *end != '\0') return false;
      *out = x;
      return true;
    });
  }

  ArgParser& option(const std::string& name, double* out,
                    const std::string& help) {
    return add_value(name, help, [out](const std::string& v) {
      char* end = nullptr;
      const double x = std::strtod(v.c_str(), &end);
      if (end == v.c_str() || *end != '\0') return false;
      *out = x;
      return true;
    });
  }

  // Parses argv. On any error prints the offending token plus usage to
  // stderr and returns false (callers `return 1`).
  bool parse(int argc, char** argv) {
    std::size_t pos = 0;
    for (int i = 1; i < argc; ++i) {
      std::string tok = argv[i];
      if (tok.size() >= 2 && tok[0] == '-' && tok[1] == '-') {
        std::string name = tok, value;
        bool has_inline = false;
        if (const auto eq = tok.find('='); eq != std::string::npos) {
          name = tok.substr(0, eq);
          value = tok.substr(eq + 1);
          has_inline = true;
        }
        Opt* opt = find(name);
        if (!opt) return fail("unknown option: " + name);
        if (opt->takes_value && !has_inline) {
          if (i + 1 >= argc) return fail("missing value for " + name);
          value = argv[++i];
        }
        if (!opt->apply(value)) {
          return fail("bad value for " + name + ": '" + value + "'");
        }
      } else {
        if (pos >= positionals_.size()) {
          return fail("unexpected argument: " + tok);
        }
        *positionals_[pos++].out = tok;
      }
    }
    if (pos < positionals_.size()) {
      return fail("missing argument: <" + positionals_[pos].name + ">");
    }
    return true;
  }

  std::string usage() const {
    std::string u = "usage: " + program_;
    for (const auto& p : positionals_) u += " <" + p.name + ">";
    if (!opts_.empty()) u += " [options]";
    u += "\n";
    if (!summary_.empty()) u += summary_ + "\n";
    for (const auto& p : positionals_) {
      u += "  <" + p.name + ">  " + p.help + "\n";
    }
    for (const auto& o : opts_) {
      std::string lhs = "  " + o.name + (o.takes_value ? " V" : "");
      while (lhs.size() < 18) lhs += ' ';
      u += lhs + o.help + "\n";
    }
    return u;
  }

 private:
  struct Opt {
    std::string name;
    std::string help;
    bool takes_value;
    std::function<bool(const std::string&)> apply;
  };
  struct Positional {
    std::string name;
    std::string* out;
    std::string help;
  };

  ArgParser& add_value(const std::string& name, const std::string& help,
                       std::function<bool(const std::string&)> apply) {
    opts_.push_back({name, help, /*takes_value=*/true, std::move(apply)});
    return *this;
  }

  template <typename Store>
  static bool parse_ll(const std::string& v, Store store) {
    char* end = nullptr;
    const long long x = std::strtoll(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0') return false;
    store(x);
    return true;
  }

  Opt* find(const std::string& name) {
    for (auto& o : opts_) {
      if (o.name == name) return &o;
    }
    return nullptr;
  }

  bool fail(const std::string& why) {
    std::fprintf(stderr, "%s: %s\n%s", program_.c_str(), why.c_str(),
                 usage().c_str());
    return false;
  }

  std::string program_;
  std::string summary_;
  std::vector<Positional> positionals_;
  std::vector<Opt> opts_;
};

}  // namespace oo::cli
