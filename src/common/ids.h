// Common identifier and unit aliases shared across the framework.
#pragma once

#include <cstdint>
#include <limits>

namespace oo {

// Electrical endpoint node (ToR / pod switch / host NIC attached to the
// optical fabric). Dense 0..N-1 per network.
using NodeId = std::int32_t;
// Port index local to a node. Optical uplinks are numbered before host
// downlinks.
using PortId = std::int32_t;
// Time-slice index within an optical schedule cycle.
using SliceId = std::int32_t;
using FlowId = std::int64_t;
using HostId = std::int32_t;
using PacketId = std::int64_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr PortId kInvalidPort = -1;
// Wildcard slice: matches any arrival slice / departs immediately (a
// time-flow table with wildcard slices reduces to a classical flow table).
inline constexpr SliceId kAnySlice = -1;

// Bandwidth in bits per second. 100 Gbps = 100e9.
using BitsPerSec = double;

constexpr double kBitsPerByte = 8.0;

// Serialization delay of `bytes` at `bw` bits/sec, in nanoseconds (rounded
// up so that back-to-back packets never overlap).
constexpr std::int64_t serialization_ns(std::int64_t bytes, BitsPerSec bw) {
  const double ns = static_cast<double>(bytes) * kBitsPerByte / bw * 1e9;
  const auto whole = static_cast<std::int64_t>(ns);
  return (static_cast<double>(whole) < ns) ? whole + 1 : whole;
}

// Bytes transmittable in `ns` nanoseconds at `bw` bits/sec (floor).
constexpr std::int64_t bytes_in_ns(std::int64_t ns, BitsPerSec bw) {
  return static_cast<std::int64_t>(static_cast<double>(ns) * bw /
                                   (kBitsPerByte * 1e9));
}

inline constexpr BitsPerSec operator""_gbps(long double g) {
  return static_cast<BitsPerSec>(g) * 1e9;
}
inline constexpr BitsPerSec operator""_gbps(unsigned long long g) {
  return static_cast<BitsPerSec>(g) * 1e9;
}

}  // namespace oo
