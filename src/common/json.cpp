#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace oo::json {

ParseError::ParseError(const std::string& msg, std::size_t pos)
    : std::runtime_error(msg + " at offset " + std::to_string(pos)),
      pos_(pos) {}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    skip_ws();
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg, pos_);
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char advance() {
    const char c = peek();
    ++pos_;
    return c;
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!eat(c)) fail(std::string("expected '") + c + "'");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  Value parse_value() {
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Value{parse_string()};
      case 't':
        parse_literal("true");
        return Value{true};
      case 'f':
        parse_literal("false");
        return Value{false};
      case 'n':
        parse_literal("null");
        return Value{nullptr};
      default:
        return parse_number();
    }
  }

  void parse_literal(const char* lit) {
    for (const char* p = lit; *p; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (eat('}')) return Value{std::move(obj)};
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      obj.emplace(std::move(key), parse_value());
      skip_ws();
      if (eat(',')) continue;
      expect('}');
      return Value{std::move(obj)};
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (eat(']')) return Value{std::move(arr)};
    for (;;) {
      skip_ws();
      arr.push_back(parse_value());
      skip_ws();
      if (eat(',')) continue;
      expect(']');
      return Value{std::move(arr)};
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = advance();
      if (c == '"') return out;
      if (c == '\\') {
        const char e = advance();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = advance();
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("bad escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      } else {
        out += c;
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (eat('-')) {}
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    bool is_double = false;
    if (eat('.')) {
      is_double = true;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("bad number");
    }
    const std::string_view sv{text_.data() + start, pos_ - start};
    if (!is_double) {
      std::int64_t v = 0;
      auto [p, ec] = std::from_chars(sv.data(), sv.data() + sv.size(), v);
      if (ec == std::errc{} && p == sv.data() + sv.size()) return Value{v};
    }
    double d = 0.0;
    auto [p, ec] = std::from_chars(sv.data(), sv.data() + sv.size(), d);
    if (ec != std::errc{} || p != sv.data() + sv.size()) fail("bad number");
    return Value{d};
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

bool Value::as_bool() const {
  if (type_ != Type::Bool) throw std::runtime_error("json: not a bool");
  return bool_;
}

std::int64_t Value::as_int() const {
  if (type_ == Type::Int) return int_;
  if (type_ == Type::Double) return static_cast<std::int64_t>(dbl_);
  throw std::runtime_error("json: not a number");
}

double Value::as_double() const {
  if (type_ == Type::Double) return dbl_;
  if (type_ == Type::Int) return static_cast<double>(int_);
  throw std::runtime_error("json: not a number");
}

const std::string& Value::as_string() const {
  if (type_ != Type::String) throw std::runtime_error("json: not a string");
  return str_;
}

const Array& Value::as_array() const {
  if (type_ != Type::Array) throw std::runtime_error("json: not an array");
  return arr_;
}

const Object& Value::as_object() const {
  if (type_ != Type::Object) throw std::runtime_error("json: not an object");
  return obj_;
}

Array& Value::as_array() {
  if (type_ != Type::Array) throw std::runtime_error("json: not an array");
  return arr_;
}

Object& Value::as_object() {
  if (type_ != Type::Object) throw std::runtime_error("json: not an object");
  return obj_;
}

const Value& Value::at(const std::string& key) const {
  const auto& obj = as_object();
  auto it = obj.find(key);
  if (it == obj.end()) throw std::runtime_error("json: missing key '" + key + "'");
  return it->second;
}

bool Value::contains(const std::string& key) const {
  return type_ == Type::Object && obj_.count(key) > 0;
}

std::int64_t Value::get_int(const std::string& key,
                            std::int64_t fallback) const {
  return contains(key) ? at(key).as_int() : fallback;
}

double Value::get_double(const std::string& key, double fallback) const {
  return contains(key) ? at(key).as_double() : fallback;
}

std::string Value::get_string(const std::string& key,
                              const std::string& fallback) const {
  return contains(key) ? at(key).as_string() : fallback;
}

bool Value::get_bool(const std::string& key, bool fallback) const {
  return contains(key) ? at(key).as_bool() : fallback;
}

void Value::dump_to(std::string& out, int indent, int depth) const {
  const auto pad = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Int: out += std::to_string(int_); break;
    case Type::Double: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", dbl_);
      out += buf;
      break;
    }
    case Type::String: append_escaped(out, str_); break;
    case Type::Array: {
      out += '[';
      bool first = true;
      for (const auto& v : arr_) {
        if (!first) out += ',';
        first = false;
        pad(depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      if (!arr_.empty()) pad(depth);
      out += ']';
      break;
    }
    case Type::Object: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        pad(depth + 1);
        append_escaped(out, k);
        out += indent > 0 ? ": " : ":";
        v.dump_to(out, indent, depth + 1);
      }
      if (!obj_.empty()) pad(depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Value parse(const std::string& text) { return Parser{text}.parse_document(); }

}  // namespace oo::json
