// Minimal JSON value + recursive-descent parser. OpenOptics static
// configurations (§4.1) are JSON files describing the hardware setup (node
// kind/count, optical uplinks, slice duration, OCS structure); this is the
// only JSON we need, so a dependency-free ~RFC8259 subset suffices
// (no \u escapes beyond ASCII, numbers as double/int64).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace oo::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

enum class Type { Null, Bool, Int, Double, String, Array, Object };

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& msg, std::size_t pos);
  std::size_t position() const { return pos_; }

 private:
  std::size_t pos_;
};

class Value {
 public:
  Value() : type_(Type::Null) {}
  Value(std::nullptr_t) : type_(Type::Null) {}
  Value(bool b) : type_(Type::Bool), bool_(b) {}
  Value(int i) : type_(Type::Int), int_(i) {}
  Value(std::int64_t i) : type_(Type::Int), int_(i) {}
  Value(double d) : type_(Type::Double), dbl_(d) {}
  Value(const char* s) : type_(Type::String), str_(s) {}
  Value(std::string s) : type_(Type::String), str_(std::move(s)) {}
  Value(Array a) : type_(Type::Array), arr_(std::move(a)) {}
  Value(Object o) : type_(Type::Object), obj_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_number() const {
    return type_ == Type::Int || type_ == Type::Double;
  }

  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  // Object access; throws on missing key / wrong type.
  const Value& at(const std::string& key) const;
  bool contains(const std::string& key) const;
  // Object access with a fallback when the key is absent.
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  std::string dump(int indent = 0) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double dbl_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

// Parses a complete JSON document; throws ParseError on malformed input or
// trailing garbage.
Value parse(const std::string& text);

}  // namespace oo::json
