#include "common/log.h"

#include <atomic>
#include <cstdarg>

namespace oo {

namespace {
// Atomic so campaign worker threads can log while the main thread adjusts
// verbosity; relaxed is enough — the level is advisory, not a fence.
std::atomic<LogLevel> g_level{LogLevel::Warn};
const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void log_line(LogLevel level, const char* tag, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), tag, msg.c_str());
}

namespace detail {
std::string format_log(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buf[1024];
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}
}  // namespace detail

}  // namespace oo
