// Leveled stderr logger. Default level is Warn so benches stay quiet;
// examples bump it to Info for narrative output.
#pragma once

#include <atomic>
#include <cstdio>
#include <string>

namespace oo {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

void log_line(LogLevel level, const char* tag, const std::string& msg);

namespace detail {
std::string format_log(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));
}  // namespace detail

#define OO_LOG(level, tag, ...)                                   \
  do {                                                            \
    if (static_cast<int>(level) >= static_cast<int>(::oo::log_level())) \
      ::oo::log_line(level, tag, ::oo::detail::format_log(__VA_ARGS__)); \
  } while (0)

#define OO_DEBUG(tag, ...) OO_LOG(::oo::LogLevel::Debug, tag, __VA_ARGS__)
#define OO_INFO(tag, ...) OO_LOG(::oo::LogLevel::Info, tag, __VA_ARGS__)
#define OO_WARN(tag, ...) OO_LOG(::oo::LogLevel::Warn, tag, __VA_ARGS__)
#define OO_ERROR(tag, ...) OO_LOG(::oo::LogLevel::Error, tag, __VA_ARGS__)

// Warn exactly once per call site: the first hit logs, later hits are
// silent (the condition usually repeats thousands of times per run — the
// repeat count belongs in a metric, not the log). The flag is per-process,
// matching the logger itself; campaign workers and engine shard lanes
// share one warning, which is the desired dedup (atomic exchange keeps the
// first-hit race benign under TSan).
#define OO_WARN_ONCE(tag, ...)                                        \
  do {                                                                \
    static std::atomic<bool> oo_warned_once_{false};                  \
    if (!oo_warned_once_.exchange(true, std::memory_order_relaxed))   \
      OO_WARN(tag, __VA_ARGS__);                                      \
  } while (0)

}  // namespace oo
