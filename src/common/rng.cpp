#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace oo {

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1u) | 1u) {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Rng::next_u32() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint64_t Rng::next_u64() {
  return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
}

std::uint32_t Rng::uniform(std::uint32_t bound) {
  assert(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint32_t threshold = -bound % bound;
  for (;;) {
    const std::uint32_t r = next_u32();
    if (r >= threshold) return r % bound;
  }
}

double Rng::uniform01() {
  return static_cast<double>(next_u32()) * (1.0 / 4294967296.0);
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::exponential(double mean) {
  assert(mean > 0);
  double u = uniform01();
  if (u <= 0.0) u = 1e-12;
  return -mean * std::log(u);
}

double Rng::gaussian(double mean, double stddev) {
  if (has_spare_gauss_) {
    has_spare_gauss_ = false;
    return mean + stddev * spare_gauss_;
  }
  double u, v, s;
  do {
    u = 2.0 * uniform01() - 1.0;
    v = 2.0 * uniform01() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gauss_ = v * factor;
  has_spare_gauss_ = true;
  return mean + stddev * u * factor;
}

std::size_t Rng::weighted_pick(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return 0;
  double x = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() { return Rng{next_u64(), next_u64() | 1u}; }

std::uint32_t hash_mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return static_cast<std::uint32_t>(x);
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {

// FNV-1a over the stream name; the empty name hashes to the FNV offset
// basis, so derive_seed(root, i) and derive_seed(root, i, "") agree.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t root, std::uint64_t index,
                          std::string_view stream) {
  // Chain the coordinates through the finalizer: each step is bijective in
  // its accumulator, so distinct (root, index, name) triples cannot merge
  // except through mix64's avalanche (astronomically unlikely).
  std::uint64_t h = mix64(root);
  h = mix64(h ^ index);
  h = mix64(h ^ fnv1a(stream));
  return h;
}

Rng derive_rng(std::uint64_t root, std::uint64_t index,
               std::string_view stream) {
  const std::uint64_t seed = derive_seed(root, index, stream);
  // A second, decorrelated derivation picks the PCG stream increment.
  const std::uint64_t inc = mix64(seed ^ 0xd6e8feb86659fd93ULL);
  return Rng{seed, inc | 1u};
}

}  // namespace oo
