// Deterministic, seedable PRNG (PCG32). Every stochastic component owns its
// own stream so simulations replay bit-identically regardless of module
// evaluation order.
#pragma once

#include <cstdint>
#include <vector>

namespace oo {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  std::uint32_t next_u32();
  std::uint64_t next_u64();

  // Uniform in [0, bound).
  std::uint32_t uniform(std::uint32_t bound);
  // Uniform double in [0, 1).
  double uniform01();
  // Uniform in [lo, hi].
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi);
  // Exponential with the given mean (> 0).
  double exponential(double mean);
  // Gaussian via polar Box-Muller.
  double gaussian(double mean, double stddev);
  // Pick an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_pick(const std::vector<double>& weights);

  // Split off an independent stream derived from this one.
  Rng fork();

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  bool has_spare_gauss_ = false;
  double spare_gauss_ = 0.0;
};

// 32-bit stateless mix, handy for per-packet hashing (five-tuple / timestamp
// multipath hashing in the time-flow table).
std::uint32_t hash_mix(std::uint64_t x);

}  // namespace oo
