// Deterministic, seedable PRNG (PCG32). Every stochastic component owns its
// own stream so simulations replay bit-identically regardless of module
// evaluation order.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace oo {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  std::uint32_t next_u32();
  std::uint64_t next_u64();

  // Uniform in [0, bound).
  std::uint32_t uniform(std::uint32_t bound);
  // Uniform double in [0, 1).
  double uniform01();
  // Uniform in [lo, hi].
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi);
  // Exponential with the given mean (> 0).
  double exponential(double mean);
  // Gaussian via polar Box-Muller.
  double gaussian(double mean, double stddev);
  // Pick an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_pick(const std::vector<double>& weights);

  // Split off an independent stream derived from this one.
  Rng fork();

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  bool has_spare_gauss_ = false;
  double spare_gauss_ = 0.0;
};

// 32-bit stateless mix, handy for per-packet hashing (five-tuple / timestamp
// multipath hashing in the time-flow table).
std::uint32_t hash_mix(std::uint64_t x);

// 64-bit stateless finalizer (SplitMix64's output function): full-avalanche,
// bijective. The building block of the stream-splitting API below.
std::uint64_t mix64(std::uint64_t x);

// --- Stream splitting -------------------------------------------------------
// Deterministic derivation of child seeds/streams from a root seed. The
// campaign runner (and anything else that fans a root seed out over many
// runs) derives each child as a pure function of
//   (root seed, run index, stream name)
// so results are independent of execution order, thread count, and which
// subset of runs actually executes (resume). Two children collide only if
// all three coordinates match; derive_seed chains SplitMix64 finalizers over
// the coordinates (plus an FNV-1a hash of the name), which empirically keeps
// billions of children collision-free (see Rng.DeriveSeedNoCollisions).
std::uint64_t derive_seed(std::uint64_t root, std::uint64_t index,
                          std::string_view stream = {});

// An Rng on its own PCG stream for (root, index, name): seed and stream
// increment are both derived, so children never share a sequence even when
// their derived seeds happen to be near each other.
Rng derive_rng(std::uint64_t root, std::uint64_t index,
               std::string_view stream = {});

}  // namespace oo
