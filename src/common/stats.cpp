#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace oo {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void PercentileSampler::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double PercentileSampler::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  if (p <= 0.0) return samples_.front();
  if (p >= 100.0) return samples_.back();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double PercentileSampler::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> PercentileSampler::cdf(
    int points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points < 2) return out;
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double q =
        static_cast<double>(i) / static_cast<double>(points - 1) * 100.0;
    out.emplace_back(percentile(q), q / 100.0);
  }
  return out;
}

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo),
      width_((hi - lo) / bins),
      counts_(static_cast<std::size_t>(bins), 0) {
  assert(bins > 0 && hi > lo);
}

void Histogram::add(double x) {
  auto idx = static_cast<std::int64_t>((x - lo_) / width_);
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::string Histogram::ascii(int max_width) const {
  std::string out;
  std::int64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char head[64];
    std::snprintf(head, sizeof head, "%10.3g | ",
                  lo_ + width_ * static_cast<double>(i));
    out += head;
    const auto w = static_cast<int>(counts_[i] * max_width / peak);
    out.append(static_cast<std::size_t>(w), '#');
    out += '\n';
  }
  return out;
}

}  // namespace oo
