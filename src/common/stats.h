// Streaming statistics used by benches and telemetry: running moments,
// exact-percentile samplers, and fixed-bin histograms / CDFs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace oo {

// Welford running mean / variance plus min & max.
class RunningStats {
 public:
  void add(double x);
  std::int64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Stores samples and answers exact percentile queries. Fine for the sample
// counts our benches produce (≤ millions).
class PercentileSampler {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  // p in [0, 100]. Linear interpolation between closest ranks.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  double mean() const;
  double min() const { return percentile(0.0); }
  double max() const { return percentile(100.0); }
  // Evenly spaced CDF points (x at each of `points` quantiles), for plotting.
  std::vector<std::pair<double, double>> cdf(int points = 50) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

// Fixed-width histogram over [lo, hi); out-of-range clamps to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);
  void add(double x);
  std::int64_t total() const { return total_; }
  int bins() const { return static_cast<int>(counts_.size()); }
  std::int64_t bin_count(int i) const { return counts_[static_cast<size_t>(i)]; }
  double bin_lo(int i) const { return lo_ + width_ * i; }
  std::string ascii(int max_width = 40) const;

 private:
  double lo_, width_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

}  // namespace oo
