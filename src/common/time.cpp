#include "common/time.h"

#include <cstdio>

namespace oo {

std::string SimTime::str() const {
  char buf[64];
  if (ns_ >= 1'000'000'000 || ns_ <= -1'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fs", sec());
  } else if (ns_ >= 1'000'000 || ns_ <= -1'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fms", ms());
  } else if (ns_ >= 1'000 || ns_ <= -1'000) {
    std::snprintf(buf, sizeof buf, "%.3fus", us());
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns_));
  }
  return buf;
}

}  // namespace oo
