// Strong simulation-time type. All simulator time is integer nanoseconds;
// a strong type keeps slice arithmetic, bandwidth math, and wall-clock
// calibration from silently mixing units.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace oo {

class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() { return SimTime{INT64_MAX}; }
  static constexpr SimTime nanos(std::int64_t n) { return SimTime{n}; }
  static constexpr SimTime micros(std::int64_t u) { return SimTime{u * 1000}; }
  static constexpr SimTime millis(std::int64_t m) {
    return SimTime{m * 1'000'000};
  }
  static constexpr SimTime seconds(std::int64_t s) {
    return SimTime{s * 1'000'000'000};
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime o) const { return SimTime{ns_ + o.ns_}; }
  constexpr SimTime operator-(SimTime o) const { return SimTime{ns_ - o.ns_}; }
  constexpr SimTime& operator+=(SimTime o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ns_ -= o.ns_;
    return *this;
  }
  constexpr SimTime operator*(std::int64_t k) const {
    return SimTime{ns_ * k};
  }
  constexpr std::int64_t operator/(SimTime o) const { return ns_ / o.ns_; }
  constexpr SimTime operator%(SimTime o) const { return SimTime{ns_ % o.ns_}; }

  std::string str() const;

 private:
  std::int64_t ns_ = 0;
};

constexpr SimTime operator*(std::int64_t k, SimTime t) { return t * k; }

namespace literals {
constexpr SimTime operator""_ns(unsigned long long n) {
  return SimTime::nanos(static_cast<std::int64_t>(n));
}
constexpr SimTime operator""_us(unsigned long long n) {
  return SimTime::micros(static_cast<std::int64_t>(n));
}
constexpr SimTime operator""_ms(unsigned long long n) {
  return SimTime::millis(static_cast<std::int64_t>(n));
}
constexpr SimTime operator""_s(unsigned long long n) {
  return SimTime::seconds(static_cast<std::int64_t>(n));
}
}  // namespace literals

}  // namespace oo
