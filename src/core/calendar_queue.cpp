#include "core/calendar_queue.h"

#include <algorithm>
#include <cassert>

namespace oo::core {

CalendarQueuePort::CalendarQueuePort(int num_queues,
                                     std::int64_t per_queue_capacity,
                                     telemetry::Counter* rank_overflow_metric,
                                     telemetry::Counter* full_reject_metric)
    : rank_overflow_metric_(rank_overflow_metric),
      full_reject_metric_(full_reject_metric) {
  assert(num_queues >= 1);
  queues_.reserve(static_cast<std::size_t>(num_queues));
  for (int i = 0; i < num_queues; ++i) {
    queues_.emplace_back(per_queue_capacity);
    // All queues start paused except the active one — packets must never
    // leave outside their departure slice.
    if (i != active_) queues_.back().pause();
  }
}

const net::FifoQueue& CalendarQueuePort::queue_at_rank(int rank) const {
  const int k = num_queues();
  assert(rank >= 0 && rank < k);
  return queues_[static_cast<std::size_t>((active_ + rank) % k)];
}

net::FifoQueue& CalendarQueuePort::queue_at_rank(int rank) {
  const int k = num_queues();
  assert(rank >= 0 && rank < k);
  return queues_[static_cast<std::size_t>((active_ + rank) % k)];
}

EnqueueVerdict CalendarQueuePort::try_enqueue(net::Packet&& p, int rank) {
  if (rank < 0 || rank >= num_queues()) {
    ++rank_overflows_;
    if (rank_overflow_metric_) rank_overflow_metric_->inc();
    return EnqueueVerdict::RankOverflow;
  }
  auto& q = queue_at_rank(rank);
  if (!q.enqueue(std::move(p))) {
    ++full_rejects_;
    if (full_reject_metric_) full_reject_metric_->inc();
    return EnqueueVerdict::Full;
  }
  peak_total_ = std::max(peak_total_, total_bytes());
  return EnqueueVerdict::Ok;
}

EnqueueVerdict CalendarQueuePort::enqueue_unchecked(net::Packet&& p,
                                                    int rank) {
  if (rank < 0 || rank >= num_queues()) {
    ++rank_overflows_;
    if (rank_overflow_metric_) rank_overflow_metric_->inc();
    return EnqueueVerdict::RankOverflow;
  }
  auto& q = queue_at_rank(rank);
  // Temporarily lift the cap by enqueueing through the bounded path first
  // and falling back to an explicit splice.
  if (!q.enqueue(std::move(p))) {
    // FifoQueue rejects only on capacity; force by growing through a
    // second attempt is not possible without mutating capacity, so treat
    // as Full for accounting. In practice offload returns are paced to fit.
    ++full_rejects_;
    if (full_reject_metric_) full_reject_metric_->inc();
    return EnqueueVerdict::Full;
  }
  peak_total_ = std::max(peak_total_, total_bytes());
  return EnqueueVerdict::Ok;
}

void CalendarQueuePort::rotate() {
  queues_[static_cast<std::size_t>(active_)].pause();
  active_ = (active_ + 1) % num_queues();
  queues_[static_cast<std::size_t>(active_)].resume();
}

std::vector<net::Packet> CalendarQueuePort::drain_all() {
  std::vector<net::Packet> out;
  const int k = num_queues();
  for (int rank = 0; rank < k; ++rank) {
    auto& q = queue_at_rank(rank);
    // dequeue() refuses to emit from a paused queue; lift the pause for the
    // drain and restore it afterwards.
    const bool was_paused = q.paused();
    q.resume();
    while (auto p = q.dequeue()) out.push_back(std::move(*p));
    if (was_paused) q.pause();
  }
  return out;
}

std::int64_t CalendarQueuePort::total_bytes() const {
  std::int64_t b = 0;
  for (const auto& q : queues_) b += q.bytes();
  return b;
}

std::int64_t CalendarQueuePort::total_packets() const {
  std::int64_t n = 0;
  for (const auto& q : queues_) n += static_cast<std::int64_t>(q.size());
  return n;
}

}  // namespace oo::core
