// Slice-indexed calendar queues for one egress port (§5.1). Each of the K
// queues is a "calendar day"; the queue for the current slice is resumed
// while all others stay paused. The rank of an ingress packet is the
// difference between its departure and arrival slices; rank >= K cannot be
// held on the switch (buffer-offload territory, §5.2).
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "net/fifo_queue.h"
#include "net/packet.h"
#include "telemetry/metrics.h"

namespace oo::core {

enum class EnqueueVerdict {
  Ok,
  Full,          // intended queue cannot take the bytes (congestion, §5.2)
  RankOverflow,  // departure slice beyond the calendar horizon (offload)
};

class CalendarQueuePort {
 public:
  // The optional registry counters mirror rank-overflow / full-reject totals
  // into shared aggregate metrics (e.g. "calendar.rank_overflows"); nullptr
  // keeps the port standalone.
  CalendarQueuePort(int num_queues, std::int64_t per_queue_capacity,
                    telemetry::Counter* rank_overflow_metric = nullptr,
                    telemetry::Counter* full_reject_metric = nullptr);

  int num_queues() const { return static_cast<int>(queues_.size()); }
  int active_index() const { return active_; }

  // Queue that will be active `rank` rotations from now (rank 0 = active).
  const net::FifoQueue& queue_at_rank(int rank) const;
  net::FifoQueue& queue_at_rank(int rank);
  net::FifoQueue& active_queue() { return queue_at_rank(0); }

  // Admission check + enqueue. `rank` in [0, K) required for Ok.
  EnqueueVerdict try_enqueue(net::Packet&& p, int rank);
  // Force-enqueue ignoring the capacity check (used by offload returns that
  // were already accounted for).
  EnqueueVerdict enqueue_unchecked(net::Packet&& p, int rank);

  // Pause the active queue, advance the calendar, resume the new active
  // queue (triggered per slice by the switch's rotation timer).
  void rotate();

  // Remove every held packet in calendar order (active queue first). The
  // pause state of each queue is preserved; used when a quarantined ToR must
  // evacuate its optical calendar onto the electrical fabric.
  std::vector<net::Packet> drain_all();

  std::int64_t total_bytes() const;
  std::int64_t total_packets() const;
  std::int64_t peak_total_bytes() const { return peak_total_; }
  std::int64_t rank_overflows() const { return rank_overflows_; }
  std::int64_t full_rejects() const { return full_rejects_; }

 private:
  std::vector<net::FifoQueue> queues_;
  int active_ = 0;
  std::int64_t peak_total_ = 0;
  std::int64_t rank_overflows_ = 0;
  std::int64_t full_rejects_ = 0;
  telemetry::Counter* rank_overflow_metric_;
  telemetry::Counter* full_reject_metric_;
};

}  // namespace oo::core
