#include "core/controller.h"

#include <map>
#include <tuple>

#include "common/log.h"

namespace oo::core {

bool Controller::compile_schedule(const std::vector<optics::Circuit>& circuits,
                                  SliceId period,
                                  optics::Schedule& out) const {
  optics::Schedule sched(net_.num_tors(), net_.schedule().uplinks(), period,
                         net_.schedule().slice_duration());
  for (const auto& c : circuits) {
    if (!sched.add_circuit(c)) {
      last_error_ = "infeasible circuit (" + std::to_string(c.a) + ":" +
                    std::to_string(c.a_port) + " <-> " + std::to_string(c.b) +
                    ":" + std::to_string(c.b_port) + " @ts " +
                    std::to_string(c.slice) + ")";
      return false;
    }
  }
  out = std::move(sched);
  return true;
}

bool Controller::control_plane_up() const {
  if (!deploy_fail_) return true;
  last_error_ = "control plane unavailable (injected fault)";
  ++const_cast<Controller*>(this)->deploys_rejected_;
  net_.sim().metrics().counter("controller.deploys_rejected").inc();
  return false;
}

bool Controller::deploy_topo(const std::vector<optics::Circuit>& circuits,
                             SliceId period, SimTime reconfig_delay) {
  auto& sim = net_.sim();
  const auto note = [&sim](bool accepted) {
    if (auto* tr = sim.recorder()) {
      tr->control_deploy(sim.now(), /*routing=*/false, accepted);
    }
  };
  if (!control_plane_up()) {
    note(false);
    return false;
  }
  optics::Schedule sched;
  if (!compile_schedule(circuits, period, sched)) {
    note(false);
    return false;
  }
  // Injected controller latency delays the start of the retargeting the
  // same way a slow controller round-trip would.
  net_.reconfigure(std::move(sched), reconfig_delay + deploy_delay_);
  sim.metrics().counter("controller.deploys", {{"kind", "topo"}}).inc();
  note(true);
  return true;
}

bool Controller::check_path(const Path& path,
                            const optics::Schedule& sched) const {
  if (!path.valid()) {
    last_error_ = "empty or invalid path";
    return false;
  }
  for (std::size_t i = 0; i < path.hops.size(); ++i) {
    const PathHop& h = path.hops[i];
    if (h.egress == kElectricalEgress) {
      if (net_.electrical() == nullptr) {
        last_error_ = "path uses electrical fabric but none is configured";
        return false;
      }
      continue;
    }
    const SliceId s = h.dep_slice == kAnySlice ? kAnySlice : h.dep_slice;
    auto peer = sched.peer(h.node, h.egress, s);
    if (!peer) {
      last_error_ = "no circuit at node " + std::to_string(h.node) +
                    " port " + std::to_string(h.egress) + " slice " +
                    std::to_string(s);
      return false;
    }
    const NodeId expect =
        (i + 1 < path.hops.size()) ? path.hops[i + 1].node : path.dst;
    if (peer->node != expect) {
      last_error_ = "circuit at node " + std::to_string(h.node) +
                    " leads to " + std::to_string(peer->node) + ", not " +
                    std::to_string(expect);
      return false;
    }
  }
  return true;
}

bool Controller::validate_routing(const std::vector<Path>& paths,
                                  const optics::Schedule* validate_against) {
  if (!control_plane_up()) return false;
  const optics::Schedule& sched =
      validate_against != nullptr ? *validate_against : net_.schedule();
  for (const auto& p : paths) {
    if (!check_path(p, sched)) return false;
  }
  return true;
}

bool Controller::deploy_routing(const std::vector<Path>& paths,
                                LookupMode lookup, MultipathMode multipath,
                                int priority,
                                const optics::Schedule* validate_against) {
  auto& sim = net_.sim();
  if (!validate_routing(paths, validate_against)) {
    if (auto* tr = sim.recorder()) {
      tr->control_deploy(sim.now(), /*routing=*/true, false);
    }
    return false;
  }

  // Merge per-(node, match) action sets so parallel paths become one
  // multipath entry. Identical actions merge by summing their weights.
  using Key = std::tuple<NodeId, SliceId, NodeId, NodeId>;
  std::map<Key, std::vector<TftAction>> merged;

  auto add_action = [&merged](NodeId node, SliceId arr, NodeId src,
                              NodeId dst, TftAction action) {
    auto& actions = merged[{node, arr, src, dst}];
    for (auto& existing : actions) {
      if (existing.hops.size() == action.hops.size()) {
        bool same = true;
        for (std::size_t i = 0; i < existing.hops.size(); ++i) {
          if (existing.hops[i].egress != action.hops[i].egress ||
              existing.hops[i].dep_slice != action.hops[i].dep_slice) {
            same = false;
            break;
          }
        }
        if (same) {
          existing.weight += action.weight;
          return;
        }
      }
    }
    actions.push_back(std::move(action));
  };

  for (const auto& path : paths) {
    if (lookup == LookupMode::SourceRouting) {
      TftAction action;
      action.weight = path.weight;
      action.hops.reserve(path.hops.size());
      for (const auto& h : path.hops) {
        action.hops.push_back(net::SourceHop{h.egress, h.dep_slice});
      }
      add_action(path.hops.front().node, path.start_slice, path.src, path.dst,
                 std::move(action));
      continue;
    }
    // Per-hop lookup: one single-hop entry at every node on the path. The
    // first hop matches the path's source explicitly (so per-source policy
    // like VLB spraying applies only to locally originated traffic); transit
    // hops use a source wildcard.
    SliceId arr = path.start_slice;
    for (std::size_t i = 0; i < path.hops.size(); ++i) {
      const PathHop& h = path.hops[i];
      TftAction action;
      action.weight = path.weight;
      action.hops.push_back(net::SourceHop{h.egress, h.dep_slice});
      const NodeId src_match = (i == 0) ? path.src : kInvalidNode;
      add_action(h.node, arr, src_match, path.dst, std::move(action));
      // The next node sees the packet in the slice this hop departed in
      // (fabric latency is far below a slice); wildcard stays wildcard.
      arr = h.dep_slice;
    }
  }

  std::vector<std::pair<NodeId, TftEntry>> installs;
  installs.reserve(merged.size());
  for (auto& [key, actions] : merged) {
    const auto [node, arr, src, dst] = key;
    TftEntry entry;
    entry.match = TftMatch{arr, src, dst};
    entry.actions = std::move(actions);
    entry.priority = priority;
    installs.emplace_back(node, std::move(entry));
  }
  auto install = [this, installs = std::move(installs), multipath]() mutable {
    for (auto& [node, entry] : installs) {
      net_.tor(node).tft().add(std::move(entry));
    }
    for (NodeId n = 0; n < net_.num_tors(); ++n) {
      net_.tor(n).set_multipath(multipath);
    }
  };
  if (deploy_delay_ > SimTime::zero()) {
    net_.sim().schedule_in(deploy_delay_, std::move(install),
                           "control.deploy");
  } else {
    install();
  }
  sim.metrics().counter("controller.deploys", {{"kind", "routing"}}).inc();
  if (auto* tr = sim.recorder()) {
    tr->control_deploy(sim.now(), /*routing=*/true, true);
  }
  return true;
}

bool Controller::add(const TftEntry& entry, NodeId node) {
  if (node < 0 || node >= net_.num_tors()) {
    last_error_ = "bad node id";
    return false;
  }
  net_.tor(node).tft().add(entry);
  return true;
}

void Controller::clear_routing() {
  for (NodeId n = 0; n < net_.num_tors(); ++n) {
    net_.tor(n).tft().clear();
  }
}

void Controller::clear_priority(int priority) {
  for (NodeId n = 0; n < net_.num_tors(); ++n) {
    net_.tor(n).tft().remove_priority(priority);
  }
}

}  // namespace oo::core
