#include "core/controller.h"

#include <algorithm>
#include <limits>
#include <map>
#include <tuple>

#include "common/log.h"
#include "core/quorum.h"

namespace oo::core {

namespace {

// Sentinel for "no overlay to clear" in a transaction.
constexpr int kNoClear = std::numeric_limits<int>::min();

// Commit retransmission cap: after this many unacked rounds the controller
// gives up and lets the mixed-epoch metric expose the straggler.
constexpr int kMaxCommitRounds = 8;

}  // namespace

// One deployment transaction. Prepared state lives here until the epoch is
// either committed (the Txn is retained as the agents' staged payload until
// the next epoch supersedes it) or aborted.
struct Controller::Txn {
  std::uint64_t epoch = 0;
  // Quorum term the transaction was issued under (0 = no quorum). A
  // takeover at a higher term locally aborts any in-flight txn below it.
  std::uint64_t term = 0;
  SimTime issued_at = SimTime::zero();

  bool has_topo = false;
  optics::Schedule topo;
  SimTime reconfig_delay = SimTime::zero();

  bool has_routing = false;
  std::vector<std::vector<TftEntry>> entries;  // per node
  MultipathMode multipath = MultipathMode::None;
  int clear_prio = kNoClear;

  TxnDoneFn on_done;

  // Prepare phase.
  int acks = 0;
  std::vector<char> acked;
  sim::EventHandle timeout;
  bool done = false;  // outcome decided (committed or aborted)

  // Commit phase.
  bool committed = false;
  std::int64_t activation_abs = -1;  // -1 = apply on commit receipt
  int commit_acks = 0;
  std::vector<char> commit_acked;
  int commit_rounds = 0;
  sim::EventHandle commit_timer;
};

Controller::Controller(Network& net)
    : net_(net),
      sb_(net),
      agents_(static_cast<std::size_t>(net.num_tors())) {
  auto& m = net_.sim().metrics();
  deploys_rejected_ = &m.counter("controller.deploys_rejected");
  txn_prepares_ = &m.counter("controller.txn_prepares");
  txn_commits_ = &m.counter("controller.txn_commits");
  txn_aborts_ = &m.counter("controller.txn_aborts");
  txn_rollbacks_ = &m.counter("controller.txn_rollbacks");
  fenced_stale_ = &m.counter("controller.fenced_stale_installs");
  resyncs_ = &m.counter("controller.resyncs");
  net_.set_rotation_hook(
      [this](NodeId n, std::int64_t abs) { on_boundary(n, abs); });
}

Controller::~Controller() { net_.set_rotation_hook(nullptr); }

std::int64_t Controller::deploys_rejected() const {
  return deploys_rejected_->value();
}
std::int64_t Controller::txn_commits() const { return txn_commits_->value(); }
std::int64_t Controller::txn_aborts() const { return txn_aborts_->value(); }
std::int64_t Controller::txn_rollbacks() const {
  return txn_rollbacks_->value();
}
std::int64_t Controller::fenced_stale_installs() const {
  return fenced_stale_->value();
}
std::int64_t Controller::resyncs() const { return resyncs_->value(); }

void Controller::attach_quorum(ControllerQuorum* q) {
  quorum_ = q;
  if (q != nullptr && stale_term_ == nullptr) {
    // Registered only when a quorum actually exists, so replicas=1 runs
    // export exactly the pre-quorum registry.
    stale_term_ = &net_.sim().metrics().counter(
        "controller.stale_term_rejections");
  }
}

std::uint64_t Controller::current_term() const {
  return quorum_ != nullptr ? quorum_->term() : 0;
}

std::int64_t Controller::stale_term_rejections() const {
  return stale_term_ != nullptr ? stale_term_->value() : 0;
}

bool Controller::admit_term(NodeId n, std::uint64_t t) {
  if (quorum_ == nullptr) return true;
  Agent& ag = agents_[static_cast<std::size_t>(n)];
  if (t < ag.term_seen) {
    stale_term_->inc();
    auto& sim = net_.sim();
    if (auto* tr = sim.recorder()) {
      tr->term_fence(sim.now(), n, static_cast<std::int64_t>(t),
                     static_cast<std::int64_t>(ag.term_seen));
    }
    return false;
  }
  ag.term_seen = t;
  return true;
}

bool Controller::txn_in_flight() const { return txn_ != nullptr && !txn_->done; }

bool Controller::compile_schedule(const std::vector<optics::Circuit>& circuits,
                                  SliceId period,
                                  optics::Schedule& out) const {
  optics::Schedule sched(net_.num_tors(), net_.schedule().uplinks(), period,
                         net_.schedule().slice_duration());
  for (const auto& c : circuits) {
    if (!sched.add_circuit(c)) {
      last_error_ = "infeasible circuit (" + std::to_string(c.a) + ":" +
                    std::to_string(c.a_port) + " <-> " + std::to_string(c.b) +
                    ":" + std::to_string(c.b_port) + " @ts " +
                    std::to_string(c.slice) + ")";
      return false;
    }
  }
  out = std::move(sched);
  return true;
}

bool Controller::control_plane_up() {
  if (crashed_) {
    last_error_ = "control plane unavailable (controller crashed)";
    deploys_rejected_->inc();
    return false;
  }
  if (quorum_ != nullptr && quorum_->started() && !quorum_->ctl_is_leader()) {
    // This replica is not (or no longer) the elected leader: a non-leader
    // accepting a deploy is exactly the split-brain write path.
    last_error_ = "control plane unavailable (replica is not the leader)";
    deploys_rejected_->inc();
    return false;
  }
  if (!deploy_fail_) return true;
  last_error_ = "control plane unavailable (injected fault)";
  deploys_rejected_->inc();
  return false;
}

bool Controller::deploy_topo(const std::vector<optics::Circuit>& circuits,
                             SliceId period, SimTime reconfig_delay) {
  last_error_.clear();
  auto& sim = net_.sim();
  const auto note = [&sim](bool accepted) {
    if (auto* tr = sim.recorder()) {
      tr->control_deploy(sim.now(), /*routing=*/false, accepted);
    }
  };
  if (!control_plane_up()) {
    note(false);
    return false;
  }
  optics::Schedule sched;
  if (!compile_schedule(circuits, period, sched)) {
    note(false);
    return false;
  }
  auto txn = std::make_unique<Txn>();
  txn->has_topo = true;
  txn->topo = std::move(sched);
  txn->reconfig_delay = reconfig_delay;
  const bool issued = begin_txn(std::move(txn));
  sim.metrics().counter("controller.deploys", {{"kind", "topo"}}).inc();
  note(issued);
  return issued;
}

bool Controller::check_path(const Path& path,
                            const optics::Schedule& sched) const {
  if (!path.valid()) {
    last_error_ = "empty or invalid path";
    return false;
  }
  for (std::size_t i = 0; i < path.hops.size(); ++i) {
    const PathHop& h = path.hops[i];
    if (h.egress == kElectricalEgress) {
      if (net_.electrical() == nullptr) {
        last_error_ = "path uses electrical fabric but none is configured";
        return false;
      }
      continue;
    }
    const SliceId s = h.dep_slice == kAnySlice ? kAnySlice : h.dep_slice;
    auto peer = sched.peer(h.node, h.egress, s);
    if (!peer) {
      last_error_ = "no circuit at node " + std::to_string(h.node) +
                    " port " + std::to_string(h.egress) + " slice " +
                    std::to_string(s);
      return false;
    }
    const NodeId expect =
        (i + 1 < path.hops.size()) ? path.hops[i + 1].node : path.dst;
    if (peer->node != expect) {
      last_error_ = "circuit at node " + std::to_string(h.node) +
                    " leads to " + std::to_string(peer->node) + ", not " +
                    std::to_string(expect);
      return false;
    }
  }
  return true;
}

bool Controller::validate_routing(const std::vector<Path>& paths,
                                  const optics::Schedule* validate_against) {
  last_error_.clear();
  if (!control_plane_up()) return false;
  const optics::Schedule& sched =
      validate_against != nullptr ? *validate_against : net_.schedule();
  for (const auto& p : paths) {
    if (!check_path(p, sched)) return false;
  }
  return true;
}

bool Controller::compile_routing(
    const std::vector<Path>& paths, LookupMode lookup, int priority,
    std::vector<std::vector<TftEntry>>& out) const {
  // Merge per-(node, match) action sets so parallel paths become one
  // multipath entry. Identical actions merge by summing their weights.
  using Key = std::tuple<NodeId, SliceId, NodeId, NodeId>;
  std::map<Key, std::vector<TftAction>> merged;

  auto add_action = [&merged](NodeId node, SliceId arr, NodeId src,
                              NodeId dst, TftAction action) {
    auto& actions = merged[{node, arr, src, dst}];
    for (auto& existing : actions) {
      if (existing.hops.size() == action.hops.size()) {
        bool same = true;
        for (std::size_t i = 0; i < existing.hops.size(); ++i) {
          if (existing.hops[i].egress != action.hops[i].egress ||
              existing.hops[i].dep_slice != action.hops[i].dep_slice) {
            same = false;
            break;
          }
        }
        if (same) {
          existing.weight += action.weight;
          return;
        }
      }
    }
    actions.push_back(std::move(action));
  };

  for (const auto& path : paths) {
    if (lookup == LookupMode::SourceRouting) {
      TftAction action;
      action.weight = path.weight;
      action.hops.reserve(path.hops.size());
      for (const auto& h : path.hops) {
        action.hops.push_back(net::SourceHop{h.egress, h.dep_slice});
      }
      add_action(path.hops.front().node, path.start_slice, path.src, path.dst,
                 std::move(action));
      continue;
    }
    // Per-hop lookup: one single-hop entry at every node on the path. The
    // first hop matches the path's source explicitly (so per-source policy
    // like VLB spraying applies only to locally originated traffic); transit
    // hops use a source wildcard.
    SliceId arr = path.start_slice;
    for (std::size_t i = 0; i < path.hops.size(); ++i) {
      const PathHop& h = path.hops[i];
      TftAction action;
      action.weight = path.weight;
      action.hops.push_back(net::SourceHop{h.egress, h.dep_slice});
      const NodeId src_match = (i == 0) ? path.src : kInvalidNode;
      add_action(h.node, arr, src_match, path.dst, std::move(action));
      // The next node sees the packet in the slice this hop departed in
      // (fabric latency is far below a slice); wildcard stays wildcard.
      arr = h.dep_slice;
    }
  }

  out.assign(static_cast<std::size_t>(net_.num_tors()), {});
  for (auto& [key, actions] : merged) {
    const auto [node, arr, src, dst] = key;
    TftEntry entry;
    entry.match = TftMatch{arr, src, dst};
    entry.actions = std::move(actions);
    entry.priority = priority;
    out[static_cast<std::size_t>(node)].push_back(std::move(entry));
  }
  return true;
}

bool Controller::deploy_routing(const std::vector<Path>& paths,
                                LookupMode lookup, MultipathMode multipath,
                                int priority,
                                const optics::Schedule* validate_against) {
  auto& sim = net_.sim();
  if (!validate_routing(paths, validate_against)) {
    if (auto* tr = sim.recorder()) {
      tr->control_deploy(sim.now(), /*routing=*/true, false);
    }
    return false;
  }
  auto txn = std::make_unique<Txn>();
  txn->has_routing = true;
  compile_routing(paths, lookup, priority, txn->entries);
  txn->multipath = multipath;
  const bool issued = begin_txn(std::move(txn));
  sim.metrics().counter("controller.deploys", {{"kind", "routing"}}).inc();
  if (auto* tr = sim.recorder()) {
    tr->control_deploy(sim.now(), /*routing=*/true, issued);
  }
  return issued;
}

bool Controller::deploy_update(const optics::Schedule& sched,
                               const std::vector<Path>& paths,
                               LookupMode lookup, MultipathMode multipath,
                               int priority, int clear_priority,
                               SimTime reconfig_delay, TxnDoneFn on_done) {
  last_error_.clear();
  if (!control_plane_up()) return false;
  for (const auto& p : paths) {
    if (!check_path(p, sched)) return false;
  }
  auto txn = std::make_unique<Txn>();
  txn->has_topo = true;
  txn->topo = sched;
  txn->reconfig_delay = reconfig_delay;
  txn->has_routing = true;
  compile_routing(paths, lookup, priority, txn->entries);
  txn->multipath = multipath;
  txn->clear_prio = clear_priority;
  txn->on_done = std::move(on_done);
  const bool issued = begin_txn(std::move(txn));
  net_.sim().metrics().counter("controller.deploys", {{"kind", "update"}})
      .inc();
  if (auto* tr = net_.sim().recorder()) {
    tr->control_deploy(net_.sim().now(), /*routing=*/true, issued);
  }
  return issued;
}

SimTime Controller::prepare_timeout() const {
  // Covers two full southbound round trips plus the injected controller
  // latency, with a floor so slow-slice fabrics don't abort spuriously.
  const SimTime rtt = sb_.config().latency * 4;
  return deploy_delay_ + std::max({rtt, net_.schedule().slice_duration() * 2,
                                   SimTime::micros(200)});
}

bool Controller::begin_txn(std::unique_ptr<Txn> txn) {
  auto& sim = net_.sim();
  if (txn_ && !txn_->done) abort_txn("superseded by a newer deploy");
  txn->epoch = ++epoch_seq_;
  txn->issued_at = sim.now();
  txn->acked.assign(agents_.size(), 0);
  txn->commit_acked.assign(agents_.size(), 0);
  if (txn->has_topo) txn->topo.set_epoch(txn->epoch);
  if (txn->has_routing) {
    for (auto& node_entries : txn->entries) {
      for (auto& e : node_entries) e.epoch = txn->epoch;
    }
  }
  txn->term = current_term();
  const std::uint64_t e = txn->epoch;
  const std::uint64_t tm = txn->term;
  txn_ = std::move(txn);
  txn_prepares_->inc();
  if (auto* tr = sim.recorder()) {
    tr->txn_prepare(sim.now(), static_cast<std::int64_t>(e),
                    net_.num_tors());
  }
  if (quorum_ != nullptr) {
    // Prepare record: lets a failover leader see the epoch was in flight
    // even if no ToR report survives. Fire-and-forget — prepares need no
    // majority, only commits do.
    quorum_->replicate(ControllerQuorum::RecKind::Prepare, e, nullptr);
  }

  if (!fencing_) {
    // Legacy scatter mode: fire-and-forget installs that apply on arrival,
    // no quorum, no rollback — the half-programmed-fabric baseline. The
    // fabric swap happens controller-side exactly as the monolithic deploy
    // did.
    txn_->done = true;
    txn_->committed = true;
    committed_epoch_ = e;
    txn_commits_->inc();
    if (quorum_ != nullptr) {
      // Legacy mode skips the majority gate by design (it is the unsafe
      // baseline), but the decision is still logged.
      quorum_->replicate(ControllerQuorum::RecKind::Commit, e, nullptr);
    }
    committed_ = std::move(txn_);
    if (auto* tr = sim.recorder()) {
      tr->txn_commit(sim.now(), static_cast<std::int64_t>(e),
                     /*activation_abs=*/-1);
    }
    if (committed_->has_topo) {
      net_.reconfigure(committed_->topo,
                       committed_->reconfig_delay + deploy_delay_);
    }
    for (NodeId n = 0; n < net_.num_tors(); ++n) {
      if (deploy_delay_ > SimTime::zero()) {
        sim.schedule_in(
            deploy_delay_,
            [this, e, tm, n]() {
              sb_.send(n, [this, e, tm, n]() { on_install(e, tm, n); },
                       "sb.install");
            },
            "sb.install");
      } else {
        sb_.send(n, [this, e, tm, n]() { on_install(e, tm, n); },
                 "sb.install");
      }
    }
    if (committed_->on_done) committed_->on_done(true);
    return true;
  }

  for (NodeId n = 0; n < net_.num_tors(); ++n) {
    // An inline NACK can abort (or an inline full quorum can commit) the
    // transaction mid-scatter; stop sending installs for a decided epoch.
    if (txn_ == nullptr || txn_->done || txn_->epoch != e) break;
    if (deploy_delay_ > SimTime::zero()) {
      sim.schedule_in(
          deploy_delay_,
          [this, e, tm, n]() {
            sb_.send(n, [this, e, tm, n]() { on_install(e, tm, n); },
                     "sb.install");
          },
          "sb.install");
    } else {
      sb_.send(n, [this, e, tm, n]() { on_install(e, tm, n); },
               "sb.install");
    }
  }
  if (committed_ && committed_->epoch == e) return true;  // committed inline
  if (txn_ == nullptr || txn_->epoch != e || txn_->done) {
    return false;  // aborted inline (NACK or revalidation failure)
  }
  txn_->timeout = sim.schedule_in(
      prepare_timeout(),
      [this, e]() {
        if (txn_ && !txn_->done && txn_->epoch == e && !txn_->committed) {
          abort_txn("prepare timeout (partial install quorum)");
        }
      },
      "sb.txn_timeout");
  return true;
}

void Controller::on_install(std::uint64_t e, std::uint64_t tm, NodeId n) {
  if (!admit_term(n, tm)) return;  // deposed leader's install: dead on arrival
  Agent& ag = agents_[static_cast<std::size_t>(n)];
  if (!fencing_) {
    // Unfenced agents trust whatever arrives: a delayed duplicate from a
    // superseded epoch happily reinstalls stale state. Payload must still
    // exist controller-side to model the message contents.
    if (committed_ && committed_->epoch == e) {
      ag.staged_epoch = 0;
      ag.committed_epoch = e;
      apply_node(n);
    }
    return;
  }
  // Fencing watermark: installs at or below the agent's committed epoch are
  // stale duplicates; installs from an epoch that is no longer in flight
  // belong to an aborted or superseded transaction. Both are rejected.
  if (e <= ag.committed_epoch || txn_ == nullptr || txn_->done ||
      txn_->epoch != e) {
    fence(n, e);
    return;
  }
  if (ag.install_fail) {
    sb_.send(n, [this, e, n]() { on_ack(e, n, false); }, "sb.ack");
    return;
  }
  ag.staged_epoch = e;
  ag.pending_apply = false;
  sb_.send(n, [this, e, n]() { on_ack(e, n, true); }, "sb.ack");
}

void Controller::on_ack(std::uint64_t e, NodeId n, bool ok) {
  if (crashed_) return;  // a crashed controller hears nothing
  if (txn_ == nullptr || txn_->done || txn_->epoch != e) return;
  auto& sim = net_.sim();
  if (auto* tr = sim.recorder()) {
    tr->txn_ack(sim.now(), n, static_cast<std::int64_t>(e), ok);
  }
  if (!ok) {
    abort_txn("ToR " + std::to_string(n) + " rejected install (epoch " +
              std::to_string(e) + ")");
    return;
  }
  auto& acked = txn_->acked[static_cast<std::size_t>(n)];
  if (acked) return;  // duplicate ack
  acked = 1;
  if (++txn_->acks == net_.num_tors()) decide_commit();
}

void Controller::decide_commit() {
  auto& sim = net_.sim();
  // With a multi-replica quorum, the prepare timeout stays armed until the
  // commit record majority-replicates: a minority-partitioned leader must
  // eventually abort, not hang committed-in-name-only.
  if (quorum_ == nullptr || !quorum_->needs_majority()) {
    txn_->timeout.cancel();
  }
  // Commit-time revalidation: the fabric may have changed while installs
  // were in flight (a port failed mid-delay). Committing would swap in a
  // schedule with circuits on dark fiber; abort and let the caller replan.
  if (sim.now() > txn_->issued_at && txn_->has_topo) {
    for (const auto& c : txn_->topo.circuits()) {
      if (net_.optical().port_failed(c.a, c.a_port) ||
          net_.optical().port_failed(c.b, c.b_port)) {
        abort_txn("port " + std::to_string(c.a) + ":" +
                  std::to_string(c.a_port) + " <-> " + std::to_string(c.b) +
                  ":" + std::to_string(c.b_port) +
                  " failed mid-transaction");
        return;
      }
    }
  }
  if (quorum_ != nullptr && quorum_->needs_majority()) {
    // The commit decision is durable only once a majority of replicas log
    // it; the southbound commit fan-out waits for that ack. If leadership
    // is lost first the callback is dropped and the prepare timeout aborts.
    const std::uint64_t e = txn_->epoch;
    quorum_->replicate(ControllerQuorum::RecKind::Commit, e, [this, e]() {
      if (txn_ != nullptr && !txn_->done && txn_->epoch == e) finish_commit();
    });
    return;
  }
  // A single-replica quorum still logs the decision (inline, no ack to
  // wait for) so restart()'s log_commits gate sees it.
  if (quorum_ != nullptr) {
    quorum_->replicate(ControllerQuorum::RecKind::Commit, txn_->epoch,
                       nullptr);
  }
  finish_commit();
}

void Controller::finish_commit() {
  auto& sim = net_.sim();
  txn_->timeout.cancel();
  txn_->committed = true;
  txn_->done = true;
  committed_epoch_ = txn_->epoch;
  txn_commits_->inc();
  // Activation: a transaction decided inside the issuing event on an ideal
  // channel applies immediately (the legacy synchronous swap); an
  // asynchronous commit in calendar mode arms the swap at a slice boundary
  // far enough out for the commit messages to land, so every node
  // activates on the same slice edge.
  const bool async_commit = sim.now() > txn_->issued_at;
  // Boundary activation needs rotation timers; on a never-started network
  // (unit-test deploys) the boundary would never come, so apply directly.
  if (async_commit && net_.started() && net_.config().calendar_mode &&
      net_.schedule().period() > 1) {
    txn_->activation_abs = net_.schedule().abs_slice_at(sim.now()) + 2;
  } else {
    txn_->activation_abs = -1;
  }
  if (auto* tr = sim.recorder()) {
    tr->txn_commit(sim.now(), static_cast<std::int64_t>(txn_->epoch),
                   txn_->activation_abs);
  }
  auto done_cb = std::move(txn_->on_done);
  committed_ = std::move(txn_);
  apply_fabric();
  for (NodeId n = 0; n < net_.num_tors(); ++n) send_commit(n);
  if (committed_->commit_acks < net_.num_tors()) {
    const SimTime interval =
        std::max(sb_.config().latency * 2, SimTime::micros(10));
    committed_->commit_timer = sim.schedule_every(
        sim.now() + interval, interval, [this]() { retransmit_commits(); },
        "sb.commit_retx");
  }
  if (done_cb) done_cb(true);
}

void Controller::apply_fabric() {
  if (!committed_->has_topo) return;
  auto& sim = net_.sim();
  SimTime to_activation = SimTime::zero();
  if (committed_->activation_abs >= 0) {
    const SimTime at = net_.schedule().slice_start(committed_->activation_abs);
    if (at > sim.now()) to_activation = at - sim.now();
  }
  net_.reconfigure(committed_->topo,
                   committed_->reconfig_delay + to_activation);
}

void Controller::send_commit(NodeId n) {
  const std::uint64_t e = committed_->epoch;
  // Stamped with the *current* term, not the issuing one: a failover leader
  // completing a predecessor's partial commit sends it under its own term.
  const std::uint64_t tm = current_term();
  sb_.send(n, [this, e, tm, n]() { on_commit(e, tm, n); }, "sb.commit");
}

void Controller::on_commit(std::uint64_t e, std::uint64_t tm, NodeId n) {
  if (!admit_term(n, tm)) return;
  Agent& ag = agents_[static_cast<std::size_t>(n)];
  if (ag.committed_epoch == e) {
    // Duplicate commit (retransmission overlap): just re-ack.
    sb_.send(n, [this, e, n]() { on_commit_ack(e, n); }, "sb.commit_ack");
    return;
  }
  if (e < ag.committed_epoch || ag.staged_epoch != e ||
      committed_ == nullptr || committed_->epoch != e) {
    fence(n, e);  // commit for an epoch this agent never staged / rolled back
    return;
  }
  ag.committed_epoch = e;  // watermark up: stale installs fence from now on
  ag.staged_epoch = 0;
  if (committed_->activation_abs < 0) {
    apply_node(n);
  } else {
    ag.pending_apply = true;  // the rotation hook applies at the boundary
  }
  sb_.send(n, [this, e, n]() { on_commit_ack(e, n); }, "sb.commit_ack");
}

void Controller::on_commit_ack(std::uint64_t e, NodeId n) {
  if (committed_ == nullptr || committed_->epoch != e) return;
  auto& acked = committed_->commit_acked[static_cast<std::size_t>(n)];
  if (acked) return;
  acked = 1;
  if (++committed_->commit_acks == net_.num_tors()) {
    committed_->commit_timer.cancel();
  }
}

void Controller::retransmit_commits() {
  if (committed_ == nullptr || crashed_) return;
  if (++committed_->commit_rounds > kMaxCommitRounds) {
    committed_->commit_timer.cancel();
    return;  // straggler stays exposed; the mixed-epoch metric shows it
  }
  for (NodeId n = 0; n < net_.num_tors(); ++n) {
    if (!committed_->commit_acked[static_cast<std::size_t>(n)]) {
      send_commit(n);
    }
  }
}

void Controller::apply_node(NodeId n) {
  Txn& t = *committed_;
  Agent& ag = agents_[static_cast<std::size_t>(n)];
  // Silent install failure (gray fault): the agent acked the install and the
  // commit, its committed-epoch watermark advanced — but nothing lands in
  // the forwarding plane. note_node_epoch is deliberately skipped too: the
  // network keeps observing the old forwarding epoch, which is exactly the
  // claim-vs-behavior divergence the health scanner localizes.
  if (ag.silent_install) {
    ag.pending_apply = false;
    return;
  }
  auto& tor = net_.tor(n);
  if (t.clear_prio != kNoClear) tor.tft().remove_priority(t.clear_prio);
  if (t.has_routing) {
    for (const TftEntry& e : t.entries[static_cast<std::size_t>(n)]) {
      tor.tft().add(e);
    }
    tor.set_multipath(t.multipath);
  }
  ag.pending_apply = false;
  net_.note_node_epoch(n, t.epoch);
}

void Controller::on_boundary(NodeId n, std::int64_t abs_slice) {
  Agent& ag = agents_[static_cast<std::size_t>(n)];
  if (!ag.pending_apply || committed_ == nullptr) return;
  if (abs_slice >= committed_->activation_abs &&
      ag.committed_epoch == committed_->epoch) {
    apply_node(n);
  }
}

void Controller::abort_txn(const std::string& why) {
  auto& sim = net_.sim();
  auto t = std::move(txn_);
  t->timeout.cancel();
  t->done = true;
  last_error_ = why;
  txn_aborts_->inc();
  if (auto* tr = sim.recorder()) {
    tr->txn_abort(sim.now(), static_cast<std::int64_t>(t->epoch), t->acks);
  }
  if (quorum_ != nullptr && quorum_->ctl_is_leader()) {
    quorum_->replicate(ControllerQuorum::RecKind::Abort, t->epoch, nullptr);
  }
  // Roll every staged agent back to its last committed epoch. The abort
  // travels the same lossy channel; an agent the abort never reaches keeps
  // its staged state until a later install or resync fences it.
  if (!crashed_) {
    const std::uint64_t tm = current_term();
    for (NodeId n = 0; n < net_.num_tors(); ++n) {
      if (agents_[static_cast<std::size_t>(n)].staged_epoch == t->epoch) {
        const std::uint64_t e = t->epoch;
        sb_.send(
            n,
            [this, e, tm, n]() {
              if (!admit_term(n, tm)) return;
              if (agents_[static_cast<std::size_t>(n)].staged_epoch == e) {
                rollback_agent(n);
              }
            },
            "sb.abort");
      }
    }
  }
  if (t->on_done) t->on_done(false);
}

void Controller::rollback_agent(NodeId n) {
  Agent& ag = agents_[static_cast<std::size_t>(n)];
  const std::uint64_t e = ag.staged_epoch;
  ag.staged_epoch = 0;
  ag.pending_apply = false;
  txn_rollbacks_->inc();
  auto& sim = net_.sim();
  if (auto* tr = sim.recorder()) {
    tr->txn_rollback(sim.now(), n, static_cast<std::int64_t>(e));
  }
}

void Controller::fence(NodeId n, std::uint64_t stale_epoch) {
  fenced_stale_->inc();
  auto& sim = net_.sim();
  if (auto* tr = sim.recorder()) {
    tr->txn_fence(
        sim.now(), n, static_cast<std::int64_t>(stale_epoch),
        static_cast<std::int64_t>(
            agents_[static_cast<std::size_t>(n)].committed_epoch));
  }
}

void Controller::crash() {
  if (crashed_) return;
  crashed_ = true;
  auto& sim = net_.sim();
  // The in-flight prepare dies with the controller. No abort messages go
  // out (a dead controller sends nothing) — staged agents are cleaned up by
  // the restart resync — but the issuer's callback observes the failure so
  // its retry machinery arms.
  if (txn_ && !txn_->done) {
    auto t = std::move(txn_);
    t->timeout.cancel();
    t->done = true;
    last_error_ = "control plane unavailable (controller crashed)";
    txn_aborts_->inc();
    if (auto* tr = sim.recorder()) {
      tr->txn_abort(sim.now(), static_cast<std::int64_t>(t->epoch), t->acks);
    }
    if (t->on_done) t->on_done(false);
  }
  // The commit retransmitter is controller-side state; the committed
  // payload itself models the agents' staged copies and survives (pending
  // boundary activations still fire — the data plane outlives its
  // controller).
  if (committed_) committed_->commit_timer.cancel();
  // Volatile memory lost: the epoch counter and commit watermark must be
  // reconstructed from per-ToR reports at restart.
  epoch_seq_ = 0;
  committed_epoch_ = 0;
  if (auto* tr = sim.recorder()) tr->ctl_crash(sim.now());
}

void Controller::restart() {
  if (!crashed_) return;
  crashed_ = false;
  resyncs_->inc();
  // State resync from per-ToR reports (modeled synchronously; the outage
  // cost is the crash window itself): the committed epoch is the highest
  // any agent runs, and the epoch counter resumes above everything any
  // agent has ever *seen*, so a reissued epoch can never collide with a
  // fenceable one.
  std::uint64_t max_committed = 0;
  std::uint64_t max_seen = 0;
  for (const Agent& ag : agents_) {
    max_committed = std::max(max_committed, ag.committed_epoch);
    max_seen = std::max({max_seen, ag.committed_epoch, ag.staged_epoch});
  }
  committed_epoch_ = max_committed;
  epoch_seq_ = std::max(epoch_seq_, max_seen);
  if (quorum_ != nullptr) {
    epoch_seq_ = std::max(epoch_seq_, quorum_->max_logged_epoch());
  }
  std::int64_t stragglers = 0;
  for (const Agent& ag : agents_) {
    if (max_committed > 0 && ag.committed_epoch < max_committed) {
      ++stragglers;
    }
  }
  if (auto* tr = net_.sim().recorder()) {
    tr->ctl_resync(net_.sim().now(),
                   static_cast<std::int64_t>(max_committed), stragglers);
  }
  // Term-aware writer gate: a replica restarting mid-election holds no
  // lease on the fabric — it recomputes its epoch state read-only and
  // leaves the resync to the elected leader's takeover. In particular it
  // must never complete a partial commit its stale-term log remembers but
  // the quorum never acknowledged.
  if (quorum_ != nullptr && !quorum_->ctl_is_leader()) return;
  const std::uint64_t tm = current_term();
  for (NodeId n = 0; n < net_.num_tors(); ++n) {
    Agent& ag = agents_[static_cast<std::size_t>(n)];
    if (ag.staged_epoch == 0) continue;
    if (ag.staged_epoch == max_committed && committed_ != nullptr &&
        committed_->epoch == max_committed &&
        (quorum_ == nullptr || quorum_->log_commits(max_committed))) {
      // Some nodes committed this epoch before the crash: complete it on
      // the stragglers rather than leaving the fabric mixed. Under a
      // quorum the completion additionally requires a majority-held Commit
      // record — a ToR report alone could be the dead leader's partial
      // fan-out.
      send_commit(n);
    } else {
      // Presumed abort: staged-but-uncommitted state rolls back.
      const std::uint64_t e = ag.staged_epoch;
      sb_.send(
          n,
          [this, e, tm, n]() {
            if (!admit_term(n, tm)) return;
            if (agents_[static_cast<std::size_t>(n)].staged_epoch == e) {
              rollback_agent(n);
            }
          },
          "sb.abort");
    }
  }
}

void Controller::quorum_takeover(std::uint64_t term) {
  auto& sim = net_.sim();
  // An in-flight prepare issued under a lower term dies locally: its
  // commit record can never majority-replicate now, and the resync below
  // rolls back whatever it staged.
  if (txn_ != nullptr && !txn_->done && txn_->term < term) {
    auto t = std::move(txn_);
    t->timeout.cancel();
    t->done = true;
    last_error_ = "superseded by quorum failover (term " +
                  std::to_string(term) + ")";
    txn_aborts_->inc();
    if (auto* tr = sim.recorder()) {
      tr->txn_abort(sim.now(), static_cast<std::int64_t>(t->epoch), t->acks);
    }
    if (t->on_done) t->on_done(false);
  }
  if (committed_ != nullptr) committed_->commit_timer.cancel();
  crashed_ = false;
  resyncs_->inc();
  // Same resync as restart(), but the epoch floor also covers everything
  // the replicated log ever recorded — the dead leader may have logged an
  // epoch no surviving ToR report mentions.
  std::uint64_t max_committed = 0;
  std::uint64_t max_seen = 0;
  for (const Agent& ag : agents_) {
    max_committed = std::max(max_committed, ag.committed_epoch);
    max_seen = std::max({max_seen, ag.committed_epoch, ag.staged_epoch});
  }
  committed_epoch_ = max_committed;
  epoch_seq_ = std::max({epoch_seq_, max_seen, quorum_->max_logged_epoch()});
  std::int64_t stragglers = 0;
  for (const Agent& ag : agents_) {
    if (max_committed > 0 && ag.committed_epoch < max_committed) {
      ++stragglers;
    }
  }
  if (auto* tr = sim.recorder()) {
    tr->ctl_resync(sim.now(), static_cast<std::int64_t>(max_committed),
                   stragglers);
  }
  for (NodeId n = 0; n < net_.num_tors(); ++n) {
    Agent& ag = agents_[static_cast<std::size_t>(n)];
    if (ag.staged_epoch == 0) {
      // Nothing staged, but the term watermark must still rise so the
      // deposed leader's delayed installs/commits fence on arrival.
      sb_.send(n, [this, term, n]() { (void)admit_term(n, term); },
               "sb.term_bump");
      continue;
    }
    if (ag.staged_epoch == max_committed && committed_ != nullptr &&
        committed_->epoch == max_committed &&
        quorum_->log_commits(max_committed)) {
      // The quorum logged the commit decision: every ToR acked the
      // prepare, so completing it on the stragglers is safe under the new
      // term.
      send_commit(n);
    } else {
      // Presumed abort: the old leader may have started a commit fan-out
      // that never reached a majority-logged decision.
      const std::uint64_t e = ag.staged_epoch;
      sb_.send(
          n,
          [this, e, term, n]() {
            if (!admit_term(n, term)) return;
            if (agents_[static_cast<std::size_t>(n)].staged_epoch == e) {
              rollback_agent(n);
            }
          },
          "sb.abort");
    }
  }
}

bool Controller::add(const TftEntry& entry, NodeId node) {
  if (node < 0 || node >= net_.num_tors()) {
    last_error_ = "bad node id";
    return false;
  }
  net_.tor(node).tft().add(entry);
  return true;
}

void Controller::clear_routing() {
  for (NodeId n = 0; n < net_.num_tors(); ++n) {
    net_.tor(n).tft().clear();
  }
}

void Controller::clear_priority(int priority) {
  for (NodeId n = 0; n < net_.num_tors(); ++n) {
    net_.tor(n).tft().remove_priority(priority);
  }
}

}  // namespace oo::core
