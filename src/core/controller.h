// Optical controller (§4.1): sanity-checks user-programmed topologies and
// routing paths, compiles node-level circuits into the OCS schedule and
// paths into time-flow table entries, and deploys both. deploy_routing is
// applied before deploy_topo in TA updates so higher-priority routes overlay
// existing ones ahead of the physical reconfiguration (Fig. 5b).
//
// Deployment is a transactional, epoch-stamped two-phase protocol over the
// modeled southbound channel (core/southbound.h):
//
//   prepare  -> per-ToR install messages stage the update at each agent
//   acks     -> an all-node quorum of install acks arms the commit
//   commit   -> each agent applies its staged state at the next slice
//               boundary (calendar mode) or on commit receipt (TA);
//               commits are retransmitted until commit-acked
//   abort    -> on a NACK, a prepare timeout, or commit-time revalidation
//               failure the transaction rolls every staged agent back to
//               the last committed epoch — the fabric is never left
//               half-programmed
//
// Stale installs (delayed duplicates from an already-superseded epoch) are
// fenced by the agents' committed-epoch watermarks. With an ideal channel
// the whole transaction collapses inline — prepare, acks, commit, and apply
// all run synchronously inside the deploy call, consuming no randomness —
// which is exactly the legacy single-swap semantics pre-transactional
// callers (tests, benches, pre-start deployment) rely on.
//
// crash()/restart() model controller failover: a crashed controller rejects
// every deploy and forgets its epoch counter; restart() reconstructs it from
// per-ToR reports (presumed abort: staged-but-uncommitted epochs roll back,
// a partially committed epoch is completed on the stragglers).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/network.h"
#include "core/path.h"
#include "core/southbound.h"
#include "core/time_flow_table.h"
#include "optics/schedule.h"

namespace oo::core {

class ControllerQuorum;

class Controller {
 public:
  explicit Controller(Network& net);
  ~Controller();

  // Outcome callback of a transactional deploy: true = committed on every
  // node, false = aborted (staged state rolled back everywhere).
  using TxnDoneFn = std::function<void(bool committed)>;

  // Builds a Schedule with the network's slicing parameters from node-level
  // circuits. Returns false (and leaves `out` untouched) on any infeasible
  // circuit (port conflict, bad node, slice out of range).
  bool compile_schedule(const std::vector<optics::Circuit>& circuits,
                        SliceId period, optics::Schedule& out) const;

  // deploy_topo([Circuit]) -> bool (Tab. 1). Feasibility-checks and swaps
  // the fabric schedule through a transaction; `reconfig_delay` models the
  // OCS retargeting time (0 for pre-start deployment). Returns false on
  // upfront rejection (control plane down, infeasible circuit); true means
  // the transaction was issued (and, on an ideal channel, already
  // committed).
  bool deploy_topo(const std::vector<optics::Circuit>& circuits,
                   SliceId period, SimTime reconfig_delay = SimTime::zero());

  // deploy_routing([Path], LOOKUP, MULTIPATH) -> bool (Tab. 1). Verifies
  // every hop against the schedule, compiles to time-flow table entries
  // (merging multipath sets), and installs them at `priority`.
  // `validate_against` supports the TA make-before-break pattern (§4.1):
  // routes computed for a topology that is deployed *after* them validate
  // against that upcoming schedule instead of the live one.
  bool deploy_routing(const std::vector<Path>& paths, LookupMode lookup,
                      MultipathMode multipath, int priority = 0,
                      const optics::Schedule* validate_against = nullptr);

  // Combined transactional update (failure recovery's redeploy path): one
  // epoch that atomically clears the `clear_priority` overlay, installs
  // `paths` at `priority`, and swaps the fabric to `sched` — all-or-nothing
  // across every ToR. `on_done` fires once with the outcome (synchronously
  // for inline transactions). Returns false only on upfront rejection, in
  // which case on_done is never invoked.
  bool deploy_update(const optics::Schedule& sched,
                     const std::vector<Path>& paths, LookupMode lookup,
                     MultipathMode multipath, int priority,
                     int clear_priority, SimTime reconfig_delay,
                     TxnDoneFn on_done = nullptr);

  // Feasibility check only: would deploy_routing accept these paths right
  // now? Lets callers (failure recovery) validate before tearing down a
  // superseded overlay, so a rejected deploy never leaves the table bare.
  bool validate_routing(const std::vector<Path>& paths,
                        const optics::Schedule* validate_against = nullptr);

  // add(Entry, node) -> bool: direct entry installation (debugging, Tab. 1).
  bool add(const TftEntry& entry, NodeId node);

  // Drops all routing state on every node (used before re-deploys in tests).
  void clear_routing();
  // Removes every time-flow entry installed at exactly `priority` on every
  // node — clears a superseded routing overlay.
  void clear_priority(int priority);

  // Control-plane fault injection (the SDN-controller robustness dimension):
  // while `deploy_fail` is set every deploy_* is rejected with last_error()
  // explaining why; `deploy_delay` adds controller/southbound latency to
  // every install message, so a deploy issued under it runs the full
  // asynchronous transaction (prepare latency, ack round-trip, commit).
  void set_deploy_delay(SimTime d) { deploy_delay_ = d; }
  SimTime deploy_delay() const { return deploy_delay_; }
  void set_deploy_fail(bool f) { deploy_fail_ = f; }
  bool deploy_fail() const { return deploy_fail_; }
  std::int64_t deploys_rejected() const;

  // ---- southbound channel & epoch state ----
  SouthboundChannel& southbound() { return sb_; }
  const SouthboundChannel& southbound() const { return sb_; }
  // Epoch fencing on (default): full two-phase transaction with quorum,
  // abort/rollback, and stale-install fencing. Off: the legacy scatter mode
  // — installs apply per-node the moment they arrive, no quorum, no abort —
  // kept as the experimental baseline that exposes mixed-epoch forwarding.
  void set_fencing(bool on) { fencing_ = on; }
  bool fencing() const { return fencing_; }

  // Highest epoch committed fabric-wide (0 before the first transactional
  // deploy). After restart() this is reconstructed from per-ToR reports.
  std::uint64_t committed_epoch() const { return committed_epoch_; }
  // Epoch the ToR agent of node n is forwarding on.
  std::uint64_t node_committed_epoch(NodeId n) const {
    return agents_[static_cast<std::size_t>(n)].committed_epoch;
  }
  bool txn_in_flight() const;

  // Per-ToR install-agent fault: while set, node n NACKs every install.
  void set_install_fail(NodeId n, bool fail) {
    agents_[static_cast<std::size_t>(n)].install_fail = fail;
  }

  // Gray twin of set_install_fail: node n's agent acks installs (so the
  // transaction commits fabric-wide) but silently never applies them — its
  // forwarding state and epoch freeze while its committed-epoch watermark
  // keeps advancing. The lie is only visible by comparing the agent's claim
  // (node_committed_epoch) against observed forwarding behavior
  // (Network::node_epoch / mixed-epoch exposure).
  void set_silent_install_fail(NodeId n, bool fail) {
    agents_[static_cast<std::size_t>(n)].silent_install = fail;
  }
  bool silent_install_fail(NodeId n) const {
    return agents_[static_cast<std::size_t>(n)].silent_install;
  }

  // Controller failover. crash() drops the in-flight transaction (its
  // on_done fires with false), forgets the epoch counter, and rejects every
  // deploy until restart(). restart() resyncs: the epoch counter is rebuilt
  // from per-ToR reports, staged-but-uncommitted state is rolled back
  // (presumed abort), and a partially committed epoch is completed on the
  // nodes that missed the commit.
  void crash();
  void restart();
  bool crashed() const { return crashed_; }

  // ---- replicated quorum (core/quorum.h) ----
  // Attaching a quorum makes this controller the engine of its acting
  // replica: deploys are accepted only while that replica leads, commit
  // records must majority-replicate before the southbound commit goes out,
  // and every southbound message is stamped with the leader's term so ToR
  // agents fence stale-term traffic. Never attached for replicas=1 — the
  // single-controller path stays bit-identical.
  void attach_quorum(ControllerQuorum* q);
  ControllerQuorum* quorum() { return quorum_; }
  const ControllerQuorum* quorum() const { return quorum_; }
  // Term every southbound message is currently stamped with (0 = no quorum).
  std::uint64_t current_term() const;
  // Highest term ToR n's agent has observed — its term fencing watermark.
  std::uint64_t node_term(NodeId n) const {
    return agents_[static_cast<std::size_t>(n)].term_seen;
  }
  std::int64_t stale_term_rejections() const;
  // Called by the quorum when leadership lands on a replica other than the
  // previous acting one: re-point the engine, resync every in-flight epoch
  // from the replicated log + per-ToR reports, and raise every agent's term
  // watermark so the deposed leader's delayed messages fence.
  void quorum_takeover(std::uint64_t term);

  // ---- transaction telemetry (registry-backed cells) ----
  std::int64_t txn_commits() const;
  std::int64_t txn_aborts() const;
  std::int64_t txn_rollbacks() const;
  std::int64_t fenced_stale_installs() const;
  std::int64_t resyncs() const;

  const std::string& last_error() const { return last_error_; }

 private:
  struct Agent {
    // Highest epoch this ToR's install agent has staged (0 = nothing
    // staged); cleared on commit, abort, or fencing.
    std::uint64_t staged_epoch = 0;
    // Epoch the ToR is forwarding on — its fencing watermark.
    std::uint64_t committed_epoch = 0;
    bool install_fail = false;   // injected tor_install_fail fault
    // Injected silent_install_fail fault: ack installs, never apply them.
    bool silent_install = false;
    bool pending_apply = false;  // committed, waiting for the boundary
    // Highest quorum term observed (0 until a quorum speaks): messages
    // stamped with a lower term are a deposed leader's and are rejected.
    std::uint64_t term_seen = 0;
  };

  struct Txn;

  bool check_path(const Path& path, const optics::Schedule& sched) const;
  bool control_plane_up();
  bool compile_routing(const std::vector<Path>& paths, LookupMode lookup,
                       int priority,
                       std::vector<std::vector<TftEntry>>& out) const;
  bool begin_txn(std::unique_ptr<Txn> txn);
  void on_install(std::uint64_t epoch, std::uint64_t term, NodeId n);
  void on_ack(std::uint64_t epoch, NodeId n, bool ok);
  void decide_commit();
  void finish_commit();
  void send_commit(NodeId n);
  void on_commit(std::uint64_t epoch, std::uint64_t term, NodeId n);
  void on_commit_ack(std::uint64_t epoch, NodeId n);
  void retransmit_commits();
  void apply_node(NodeId n);
  void apply_fabric();
  void abort_txn(const std::string& why);
  void rollback_agent(NodeId n);
  void fence(NodeId n, std::uint64_t stale_epoch);
  // Term gate for a ToR-bound message stamped with term t: reject (count +
  // trace) when t is below node n's watermark, raise the watermark
  // otherwise. Always admits when no quorum is attached.
  bool admit_term(NodeId n, std::uint64_t t);
  void on_boundary(NodeId n, std::int64_t abs_slice);
  SimTime prepare_timeout() const;

  Network& net_;
  SouthboundChannel sb_;
  mutable std::string last_error_;
  SimTime deploy_delay_ = SimTime::zero();
  bool deploy_fail_ = false;
  bool fencing_ = true;
  bool crashed_ = false;
  std::uint64_t epoch_seq_ = 0;       // last epoch issued (lost on crash)
  std::uint64_t committed_epoch_ = 0; // last epoch committed fabric-wide
  std::vector<Agent> agents_;
  std::unique_ptr<Txn> txn_;        // in-flight prepare
  std::unique_ptr<Txn> committed_;  // last committed payload (agents' copy)
  ControllerQuorum* quorum_ = nullptr;  // attached for replicas > 1 only
  telemetry::Counter* stale_term_ = nullptr;  // registered on attach
  telemetry::Counter* deploys_rejected_;
  telemetry::Counter* txn_prepares_;
  telemetry::Counter* txn_commits_;
  telemetry::Counter* txn_aborts_;
  telemetry::Counter* txn_rollbacks_;
  telemetry::Counter* fenced_stale_;
  telemetry::Counter* resyncs_;
};

}  // namespace oo::core
