// Optical controller (§4.1): sanity-checks user-programmed topologies and
// routing paths, compiles node-level circuits into the OCS schedule and
// paths into time-flow table entries, and deploys both. deploy_routing is
// applied before deploy_topo in TA updates so higher-priority routes overlay
// existing ones ahead of the physical reconfiguration (Fig. 5b).
#pragma once

#include <string>
#include <vector>

#include "core/network.h"
#include "core/path.h"
#include "core/time_flow_table.h"
#include "optics/schedule.h"

namespace oo::core {

class Controller {
 public:
  explicit Controller(Network& net) : net_(net) {}

  // Builds a Schedule with the network's slicing parameters from node-level
  // circuits. Returns false (and leaves `out` untouched) on any infeasible
  // circuit (port conflict, bad node, slice out of range).
  bool compile_schedule(const std::vector<optics::Circuit>& circuits,
                        SliceId period, optics::Schedule& out) const;

  // deploy_topo([Circuit]) -> bool (Tab. 1). Feasibility-checks and swaps
  // the fabric schedule; `reconfig_delay` models the OCS retargeting time
  // (0 for pre-start deployment).
  bool deploy_topo(const std::vector<optics::Circuit>& circuits,
                   SliceId period, SimTime reconfig_delay = SimTime::zero());

  // deploy_routing([Path], LOOKUP, MULTIPATH) -> bool (Tab. 1). Verifies
  // every hop against the schedule, compiles to time-flow table entries
  // (merging multipath sets), and installs them at `priority`.
  // `validate_against` supports the TA make-before-break pattern (§4.1):
  // routes computed for a topology that is deployed *after* them validate
  // against that upcoming schedule instead of the live one.
  bool deploy_routing(const std::vector<Path>& paths, LookupMode lookup,
                      MultipathMode multipath, int priority = 0,
                      const optics::Schedule* validate_against = nullptr);

  // Feasibility check only: would deploy_routing accept these paths right
  // now? Lets callers (failure recovery) validate before tearing down a
  // superseded overlay, so a rejected deploy never leaves the table bare.
  bool validate_routing(const std::vector<Path>& paths,
                        const optics::Schedule* validate_against = nullptr);

  // add(Entry, node) -> bool: direct entry installation (debugging, Tab. 1).
  bool add(const TftEntry& entry, NodeId node);

  // Drops all routing state on every node (used before re-deploys in tests).
  void clear_routing();
  // Removes every time-flow entry installed at exactly `priority` on every
  // node — clears a superseded routing overlay.
  void clear_priority(int priority);

  // Control-plane fault injection (the SDN-controller robustness dimension):
  // while `deploy_fail` is set every deploy_* is rejected with last_error()
  // explaining why; `deploy_delay` adds controller/southbound latency before
  // a deploy takes effect (routing entries install late, topology
  // retargeting starts late).
  void set_deploy_delay(SimTime d) { deploy_delay_ = d; }
  SimTime deploy_delay() const { return deploy_delay_; }
  void set_deploy_fail(bool f) { deploy_fail_ = f; }
  bool deploy_fail() const { return deploy_fail_; }
  std::int64_t deploys_rejected() const { return deploys_rejected_; }

  const std::string& last_error() const { return last_error_; }

 private:
  bool check_path(const Path& path, const optics::Schedule& sched) const;
  bool control_plane_up() const;

  Network& net_;
  mutable std::string last_error_;
  SimTime deploy_delay_ = SimTime::zero();
  bool deploy_fail_ = false;
  std::int64_t deploys_rejected_ = 0;
};

}  // namespace oo::core
