#include "core/eqo.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

namespace oo::core {

QueueOccupancyEstimator::QueueOccupancyEstimator(int num_queues,
                                                 BitsPerSec drain_bandwidth,
                                                 SimTime update_interval)
    : est_(static_cast<std::size_t>(num_queues), 0),
      drain_per_tick_(bytes_in_ns(update_interval.ns(), drain_bandwidth)),
      interval_(update_interval) {
  assert(num_queues > 0);
  assert(update_interval > SimTime::zero());
}

void QueueOccupancyEstimator::on_enqueue(int q, std::int64_t bytes) {
  est_[static_cast<std::size_t>(q)] += bytes;
}

void QueueOccupancyEstimator::on_tick(int active) {
  auto& e = est_[static_cast<std::size_t>(active)];
  e = std::max<std::int64_t>(0, e - drain_per_tick_);
}

void QueueOccupancyEstimator::drain_window(int active, SimTime from,
                                           SimTime to) {
  if (to <= from) return;
  const std::int64_t iv = interval_.ns();
  const std::int64_t ticks = to.ns() / iv - from.ns() / iv;
  if (ticks <= 0) return;
  auto& e = est_[static_cast<std::size_t>(active)];
  e = std::max<std::int64_t>(0, e - ticks * drain_per_tick_);
}

std::int64_t QueueOccupancyEstimator::error_vs(int q,
                                               std::int64_t truth) const {
  return std::llabs(est_[static_cast<std::size_t>(q)] - truth);
}

}  // namespace oo::core
