// Estimated Queue Occupancy (§5.2, Appx. A). Commercial switch ingress
// pipelines cannot read egress queue depth before enqueueing, so OpenOptics
// tracks an estimate in an ingress register array: incremented by packet
// size on enqueue, decremented by (bandwidth x update interval) by a
// packet-generator tick assuming line-rate dequeue, clamped at zero. The
// estimation error vs. ground truth shrinks with the update interval
// (Fig. 12: 50 ns -> under one MTU packet of error).
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/time.h"

namespace oo::core {

class QueueOccupancyEstimator {
 public:
  QueueOccupancyEstimator(int num_queues, BitsPerSec drain_bandwidth,
                          SimTime update_interval);

  SimTime update_interval() const { return interval_; }

  // Ingress pipeline: packet headed to queue `q` was admitted.
  void on_enqueue(int q, std::int64_t bytes);
  // Packet-generator tick: the queue currently draining (`active`) loses up
  // to one interval of line-rate bytes.
  void on_tick(int active);
  // Applies every tick whose firing time falls in (from, to] to the active
  // queue — equivalent to the periodic packet-generator stream without one
  // simulator event per 50 ns. Tick times are the global grid
  // k * update_interval.
  void drain_window(int active, SimTime from, SimTime to);
  // A queue that wrapped to a new calendar day starts a fresh estimate.
  void reset(int q) { est_[static_cast<std::size_t>(q)] = 0; }

  std::int64_t estimate(int q) const {
    return est_[static_cast<std::size_t>(q)];
  }

  // |estimate - truth| for error studies (truth from the egress queue).
  std::int64_t error_vs(int q, std::int64_t truth_bytes) const;

 private:
  std::vector<std::int64_t> est_;
  std::int64_t drain_per_tick_;
  SimTime interval_;
};

}  // namespace oo::core
