#include "core/guardband.h"

#include <cmath>

namespace oo::core {

GuardbandBreakdown derive_guardband(const GuardbandInputs& in) {
  GuardbandBreakdown out;
  out.rotation_variance = in.rotation_variance;
  out.eqo_delay = SimTime::nanos(static_cast<std::int64_t>(
      std::ceil(static_cast<double>(in.eqo_error_bytes) * kBitsPerByte /
                in.line_rate * 1e9)));
  out.sync_window = in.sync_error * 2;
  out.analytic = out.rotation_variance + out.eqo_delay + out.sync_window;
  const double padded = static_cast<double>(out.analytic.ns()) * in.headroom;
  // Round up to a 10 ns grid — guardbands are configured, not measured.
  const auto grid = static_cast<std::int64_t>(std::ceil(padded / 10.0)) * 10;
  out.guardband = SimTime::nanos(grid);
  out.min_slice = out.guardband * in.duty_factor;
  return out;
}

}  // namespace oo::core
