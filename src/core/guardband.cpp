#include "core/guardband.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace oo::core {

GuardbandBreakdown derive_guardband(const GuardbandInputs& in) {
  if (!(in.line_rate > 0.0)) {
    throw std::invalid_argument("derive_guardband: line_rate must be > 0, got " +
                                std::to_string(in.line_rate));
  }
  if (in.eqo_error_bytes < 0) {
    throw std::invalid_argument(
        "derive_guardband: eqo_error_bytes must be >= 0, got " +
        std::to_string(in.eqo_error_bytes));
  }
  if (in.rotation_variance < SimTime::zero()) {
    throw std::invalid_argument(
        "derive_guardband: rotation_variance must be >= 0");
  }
  if (in.sync_error < SimTime::zero()) {
    throw std::invalid_argument("derive_guardband: sync_error must be >= 0");
  }
  if (!std::isfinite(in.headroom) || in.headroom < 1.0) {
    throw std::invalid_argument(
        "derive_guardband: headroom must be finite and >= 1, got " +
        std::to_string(in.headroom));
  }
  if (in.duty_factor < 1) {
    throw std::invalid_argument(
        "derive_guardband: duty_factor must be >= 1, got " +
        std::to_string(in.duty_factor));
  }
  GuardbandBreakdown out;
  out.rotation_variance = in.rotation_variance;
  out.eqo_delay = SimTime::nanos(static_cast<std::int64_t>(
      std::ceil(static_cast<double>(in.eqo_error_bytes) * kBitsPerByte /
                in.line_rate * 1e9)));
  out.sync_window = in.sync_error * 2;
  out.analytic = out.rotation_variance + out.eqo_delay + out.sync_window;
  const double padded = static_cast<double>(out.analytic.ns()) * in.headroom;
  // Round up to a 10 ns grid — guardbands are configured, not measured.
  const auto grid = static_cast<std::int64_t>(std::ceil(padded / 10.0)) * 10;
  out.guardband = SimTime::nanos(grid);
  out.min_slice = out.guardband * in.duty_factor;
  return out;
}

}  // namespace oo::core
