// Guardband and minimum-slice derivation (§7). The slice guardband must
// cover (a) queue-rotation delivery variance across the fabric, (b) the EQO
// false-negative window (estimation error divided by line rate), and (c)
// twice the synchronization error (clock above and below truth). A >=90%
// duty cycle then puts the minimum slice at 10x the guardband — the paper's
// headline 2 us on commodity devices.
#pragma once

#include <cstdint>

#include "common/ids.h"
#include "common/time.h"

namespace oo::core {

struct GuardbandInputs {
  // Fabric delivery jitter: latency_max - latency_min (Fig. 11: 34 ns).
  SimTime rotation_variance = SimTime::nanos(34);
  // EQO worst-case error in bytes (Fig. 12: 725 B at 50 ns interval).
  std::int64_t eqo_error_bytes = 725;
  BitsPerSec line_rate = 100e9;
  // One-sided sync error (OpSync: 28 ns at 192 ToRs).
  SimTime sync_error = SimTime::nanos(28);
  // Multiplier of headroom applied on top of the analytic sum.
  double headroom = 200.0 / 148.0;
  // Duty-cycle requirement: slice >= duty_factor x guardband.
  int duty_factor = 10;
};

struct GuardbandBreakdown {
  SimTime rotation_variance;
  SimTime eqo_delay;   // eqo_error_bytes at line rate
  SimTime sync_window; // 2 x sync error
  SimTime analytic;    // sum of the three
  SimTime guardband;   // analytic x headroom, rounded up to 10 ns
  SimTime min_slice;   // guardband x duty_factor
};

// Derives the guardband budget from the inputs. Throws std::invalid_argument
// on physically meaningless inputs: non-positive line_rate, negative
// eqo_error_bytes, negative rotation_variance or sync_error, non-finite or
// sub-1 headroom, or duty_factor < 1.
GuardbandBreakdown derive_guardband(const GuardbandInputs& in);

}  // namespace oo::core
