#include "core/network.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"

namespace oo::core {

// ---------------------------------------------------------------------------
// Host

Host::Host(Network& net, HostId id, NodeId tor, int local_index)
    : net_(net),
      id_(id),
      tor_(tor),
      local_index_(local_index),
      rng_(net.fork_rng()) {
  dsts_.reserve(static_cast<std::size_t>(net_.num_tors()));
  for (int i = 0; i < net_.num_tors(); ++i) {
    dsts_.emplace_back(net_.config().host_segment_queue);
  }
}

Host::DstState& Host::dst_state(NodeId dst) {
  return dsts_[static_cast<std::size_t>(dst)];
}

void Host::bind_flow(FlowId flow, ReceiveFn sink) {
  // flows_ is read by deliver() on this host's ToR lane. A bind issued from
  // another context (transports launch from the control queue) crosses onto
  // that lane; control-phase pushes land before the current window's lane
  // events run, and the first data packet trails the bind by at least the
  // fabric latency (>= one window), so the sink is always installed in time.
  if (net_.sim().cross_lane(tor_)) {
    net_.sim().schedule_at_lane(
        tor_, net_.sim().now(),
        [this, flow, s = std::move(sink)]() mutable {
          flows_[flow] = std::move(s);
        },
        "host.bind");
    return;
  }
  flows_[flow] = std::move(sink);
}

void Host::unbind_flow(FlowId flow) {
  if (net_.sim().cross_lane(tor_)) {
    net_.sim().schedule_at_lane(
        tor_, net_.sim().now(), [this, flow]() { flows_.erase(flow); },
        "host.unbind");
    return;
  }
  flows_.erase(flow);
}

SimTime Host::stack_delay() {
  // libvma userspace path: low, tight latency; kernel path: higher base with
  // a heavy exponential tail (Fig. 14's comparison baseline).
  if (net_.config().host_stack == HostStack::Libvma) {
    const double d = rng_.gaussian(1500.0, 120.0);
    return SimTime::nanos(std::max<std::int64_t>(
        800, static_cast<std::int64_t>(d)));
  }
  const double d = 20000.0 + rng_.exponential(8000.0);
  return SimTime::nanos(static_cast<std::int64_t>(d));
}

bool Host::send(Packet&& p) {
  p.src_host = id_;
  p.src_node = tor_;
  if (p.dst_node == kInvalidNode && p.dst_host >= 0) {
    p.dst_node = net_.tor_of(p.dst_host);
  }
  assert(p.dst_node != kInvalidNode);
  if (p.id == 0) p.id = net_.next_packet_id();
  if (p.created == SimTime::zero()) p.created = net_.sim().now();
  if (send_hook_) send_hook_(p);

  auto& st = dst_state(p.dst_node);
  st.sent_bytes += p.size_bytes;
  const bool blocked = st.paused ||
                       net_.sim().now() < st.pushback_until ||
                       !st.segq.empty();
  if (blocked) {
    if (!st.segq.enqueue(std::move(p))) {
      st.segq.note_drop();
      st.sender_blocked = true;
      if (auto* tr = net_.sim().recorder()) {
        tr->drop(net_.sim().now(), telemetry::DropReason::HostSegq, tor_, -1,
                 p.id, p.size_bytes);
      }
      return false;  // segment queue full: application backpressure
    }
    start_pump();  // drains as soon as (and only while) the path is open
    return true;
  }
  stack_delay_send(std::move(p));
  return true;
}

bool Host::would_block(NodeId dst) const {
  const auto& st = dsts_[static_cast<std::size_t>(dst)];
  return st.paused || net_.sim().now() < st.pushback_until ||
         st.segq.free_bytes() <= 0;
}

void Host::stack_delay_send(Packet&& p) {
  // Single injection funnel: every host-originated packet (fast path and
  // segq drain alike) passes here exactly once, so this counter is the
  // "injected" side of the packet-conservation invariant. Relaxed atomic:
  // host stacks run on per-ToR worker lanes when sharded, and the exact
  // value is only read from serial phases (ordered by the engine barrier).
  net_.packets_injected_.fetch_add(1, std::memory_order_relaxed);
  // The stack adds per-packet latency but never reorders a host's own
  // submissions (it is a FIFO pipeline): releases are monotonic.
  SimTime release = net_.sim().now() + stack_delay();
  if (release < stack_last_release_) release = stack_last_release_;
  stack_last_release_ = release;
  net_.sim().schedule_at(
      release,
      [this, pkt = std::move(p)]() mutable {
        up_link_->transmit(std::move(pkt));
      },
      "host.stack");
}

void Host::pause_dst(NodeId dst) { dst_state(dst).paused = true; }

void Host::resume_dst(NodeId dst) {
  auto& st = dst_state(dst);
  if (!st.paused) return;
  st.paused = false;
  try_drain(dst);
}

void Host::pushback_dst(NodeId dst, SimTime until) {
  auto& st = dst_state(dst);
  if (until <= net_.sim().now()) return;
  st.pushback_until = std::max(st.pushback_until, until);
  net_.sim().schedule_at(
      st.pushback_until, [this, dst]() { try_drain(dst); }, "pushback");
}

bool Host::can_buffer(NodeId dst, std::int64_t bytes) const {
  const auto& st = dsts_[static_cast<std::size_t>(dst)];
  const bool fast_path = !st.paused &&
                         net_.sim().now() >= st.pushback_until &&
                         st.segq.empty();
  return fast_path || st.segq.free_bytes() >= bytes;
}

void Host::try_drain(NodeId dst) {
  (void)dst;
  start_pump();
}

void Host::start_pump() {
  if (pump_scheduled_) return;
  pump_scheduled_ = true;
  net_.sim().schedule_at(net_.sim().now(), [this]() { pump(); },
                         "host.pump");
}

// Drains parked segment queues at (at most) host line rate, round-robin
// across destinations, stopping the instant a destination is paused again —
// the vma stack transmits only while its circuit window is open (§5.2).
void Host::pump() {
  pump_scheduled_ = false;
  const SimTime now = net_.sim().now();
  const std::size_t n = dsts_.size();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t idx = (pump_rr_ + k) % n;
    auto& st = dsts_[idx];
    if (st.paused || now < st.pushback_until || st.segq.empty()) continue;
    auto p = st.segq.dequeue();
    pump_rr_ = (idx + 1) % n;
    const SimTime pace = SimTime::nanos(
        serialization_ns(p->size_bytes, net_.config().host_bw));
    if (st.sender_blocked && st.segq.free_bytes() >= p->size_bytes) {
      st.sender_blocked = false;
      if (unblock_) unblock_(static_cast<NodeId>(idx));
    }
    stack_delay_send(std::move(*p));
    pump_scheduled_ = true;
    net_.sim().schedule_in(pace, [this]() { pump(); }, "host.pump");
    return;
  }
}

bool Host::paused(NodeId dst) const {
  return dsts_[static_cast<std::size_t>(dst)].paused;
}

std::int64_t Host::segment_bytes(NodeId dst) const {
  return dsts_[static_cast<std::size_t>(dst)].segq.bytes();
}

std::int64_t Host::sent_bytes_to(NodeId dst) const {
  return dsts_[static_cast<std::size_t>(dst)].sent_bytes;
}

std::vector<std::int64_t> Host::take_traffic_counters() {
  std::vector<std::int64_t> out;
  out.reserve(dsts_.size());
  for (auto& st : dsts_) {
    out.push_back(st.sent_bytes);
    st.sent_bytes = 0;
  }
  return out;
}

void Host::deliver(Packet&& p) {
  if (p.offloaded) {
    // Buffer offloading (§5.2): park the packet, return it to the switch
    // just before its slice. The dedicated vma app isolates this from the
    // main data path; it still shares the physical host links.
    offload_stored_bytes_ += p.size_bytes;
    ++offload_stored_packets_;
    const SimTime slice_begin =
        net_.schedule().slice_start(p.offload_abs_slice);
    const SimTime lead = net_.config().offload_lead +
                         net_.config().host_link_delay + stack_delay();
    const SimTime return_at =
        std::max(net_.sim().now(), slice_begin - lead);
    net_.sim().schedule_at(
        return_at,
        [this, pkt = std::move(p)]() mutable {
          offload_stored_bytes_ -= pkt.size_bytes;
          --offload_stored_packets_;
          up_link_->transmit(std::move(pkt));
        },
        "host.offload");
    return;
  }
  if (p.type == PacketType::Pushback) {
    // src_node carries the congested destination switch; offload_abs_slice
    // carries the blocked absolute slice (§5.2 traffic push-back).
    const SimTime until = net_.schedule().slice_start(p.offload_abs_slice + 1);
    pushback_dst(p.src_node, until);
    return;
  }
  if (p.type == PacketType::Data && net_.delivery_probe()) {
    net_.delivery_probe()(p);
  }
  if (auto it = flows_.find(p.flow); it != flows_.end()) {
    it->second(std::move(p));
  } else if (default_sink_) {
    default_sink_(std::move(p));
  }
}

// ---------------------------------------------------------------------------
// TorSwitch

TorSwitch::TorSwitch(Network& net, NodeId id)
    : net_(net), id_(id), rng_(net.fork_rng()) {
  auto& metrics = net_.sim().metrics();
  const telemetry::Labels node_label = {{"node", std::to_string(id)}};
  drops_no_route_ = &metrics.counter(
      "tor.drops", {{"class", "no_route"}, {"node", std::to_string(id)}});
  drops_congestion_ = &metrics.counter(
      "tor.drops", {{"class", "congestion"}, {"node", std::to_string(id)}});
  slice_misses_ = &metrics.counter("tor.slice_misses", node_label);
  wrong_slice_arrivals_ = &metrics.counter("tor.wrong_slice", node_label);
  const auto& cfg = net_.config();
  const auto& sched = net_.schedule();
  int k = cfg.calendar_queues;
  if (k <= 0) k = std::min<int>(sched.period(), 128);
  uplinks_.resize(static_cast<std::size_t>(sched.uplinks()));
  for (auto& u : uplinks_) {
    u.fifo = net::FifoQueue{cfg.fifo_capacity};
    if (cfg.calendar_mode) {
      u.cal = std::make_unique<CalendarQueuePort>(
          k, cfg.queue_capacity,
          &metrics.counter("calendar.rank_overflows"),
          &metrics.counter("calendar.full_rejects"));
      if (cfg.congestion_detection) {
        u.eqo = std::make_unique<QueueOccupancyEstimator>(
            k, cfg.optical_bw, cfg.eqo_interval);
      }
    }
  }
}

SliceId TorSwitch::current_slice() const {
  return net_.schedule().slice_of(local_abs_slice_);
}

std::int64_t TorSwitch::current_abs_slice() const { return local_abs_slice_; }

SimTime TorSwitch::window_start() const {
  return local_slice_start_ + net_.head_guard_ + net_.node_guard_extra(id_);
}

SimTime TorSwitch::window_end() const {
  return local_slice_start_ + net_.schedule().slice_duration() -
         net_.tail_margin_ - net_.node_guard_extra(id_);
}

void TorSwitch::from_host(Packet&& p) {
  if (p.offloaded) {
    handle_offload_return(std::move(p));
    return;
  }
  route(std::move(p));
}

void TorSwitch::from_optical(Packet&& p, PortId in_port) {
  // Per-uplink rx ledger (owning-lane write; the health scanner reads it
  // from the control queue at slice barriers, like the invariant census).
  uplinks_[static_cast<std::size_t>(in_port)].rx_bytes += p.size_bytes;
  // Receive-side desync symptom: a calendar-scheduled packet should arrive
  // in the slice it departed in, or the next one (fabric latency is well
  // under a slice) — on *this node's* clock. Anything else means either the
  // sender launched into the wrong circuit or our own rotation is skewed;
  // the observer cannot tell which, so the symptom is self-attributed and
  // the watchdog treats it as corroborating (widen-only) evidence.
  const auto& cfg = net_.config();
  if (cfg.calendar_mode && net_.schedule().period() > 1 &&
      p.intended_slice != kAnySlice) {
    const SliceId cur = current_slice();
    const SliceId next = net_.schedule().slice_of(
        static_cast<std::int64_t>(p.intended_slice) + 1);
    if (cur != p.intended_slice && cur != next) {
      wrong_slice_arrivals_->inc();
      if (auto* tr = net_.sim().recorder()) {
        tr->wrong_slice(net_.sim().now(), id_, in_port, p.id,
                        p.intended_slice);
      }
      net_.notify_wrong_slice(id_, net_.sim().now());
    }
  }
  route(std::move(p));
}

void TorSwitch::from_electrical(Packet&& p) { route(std::move(p)); }

void TorSwitch::deliver_local(Packet&& p) {
  ++delivered_local_;
  const int local = p.dst_host - net_.host_id(id_, 0);
  assert(local >= 0 && local < static_cast<int>(downlinks_.size()));
  downlinks_[static_cast<std::size_t>(local)]->transmit(std::move(p));
}

void TorSwitch::route(Packet&& p) {
  if (p.dst_node == id_) {
    deliver_local(std::move(p));
    return;
  }
  const SliceId arr = current_slice();
  if (p.has_source_route()) {
    const net::SourceHop hop = p.next_hop();
    p.pop_hop();
    apply_action(std::move(p), hop, arr);
    return;
  }
  const TftEntry* entry = tft_.lookup(arr, p.src_node, p.dst_node);
  if (entry == nullptr) {
    drops_no_route_->inc();
    if (auto* tr = net_.sim().recorder()) {
      tr->drop(net_.sim().now(), telemetry::DropReason::NoRoute, id_, -1,
               p.id, p.size_bytes);
    }
    return;
  }
  std::uint32_t hash = 0;
  switch (mp_mode_) {
    case MultipathMode::PerPacket:
      // Ingress-timestamp hashing (§3): unique per packet.
      hash = hash_mix(static_cast<std::uint64_t>(p.id) * 0x9e3779b97f4a7c15ULL +
                      static_cast<std::uint64_t>(net_.sim().now().ns()));
      break;
    case MultipathMode::PerFlow:
      hash = hash_mix(static_cast<std::uint64_t>(p.flow));
      break;
    case MultipathMode::None:
      break;
  }
  const TftAction& action = TimeFlowTable::select_action(*entry, hash);
  if (action.hops.size() > 1) {
    // Source-routing action: write the remaining hops into the packet.
    p.source_route.assign(action.hops.begin() + 1, action.hops.end());
    p.route_idx = 0;
  }
  apply_action(std::move(p), action.hops.front(), arr);
}

void TorSwitch::apply_action(Packet&& p, const net::SourceHop& hop,
                             SliceId arr) {
  if (hop.egress == kElectricalEgress) {
    auto* el = net_.electrical();
    assert(el != nullptr && "route uses electrical fabric but none exists");
    el->transmit(id_, std::move(p));
    return;
  }
  // Quarantine safe mode: while this node (or the packet's final ToR) is
  // fenced off the optical fabric, divert to the electrical fabric instead
  // of parking bytes behind a gated transmitter. Only possible on hybrid
  // architectures; without an electrical fabric the watchdog never
  // escalates past guard widening.
  if (auto* el = net_.electrical();
      el != nullptr && (net_.node_quarantined(id_) ||
                        (p.dst_node != kInvalidNode &&
                         net_.node_quarantined(p.dst_node)))) {
    p.intended_slice = kAnySlice;
    p.intended_port = kInvalidPort;
    p.source_route.clear();
    p.route_idx = 0;
    el->transmit(id_, std::move(p));
    return;
  }
  enqueue_optical(std::move(p), hop.egress, hop.dep_slice, arr);
}

std::int64_t TorSwitch::admissible_bytes(PortId port, int rank) const {
  // An optical circuit carries a fixed number of bytes per slice; a queue is
  // full once it holds more than the remaining slice time can transmit
  // (§5.2). Future slices admit a full window.
  const auto& cfg = net_.config();
  if (!cfg.calendar_mode) return INT64_MAX;
  (void)port;
  const SimTime full = window_end() - window_start();
  SimTime usable = full;
  if (rank == 0) {
    const SimTime now = net_.sim().now();
    usable = window_end() - std::max(now, window_start());
    if (usable < SimTime::zero()) usable = SimTime::zero();
  }
  std::int64_t adm = bytes_in_ns(usable.ns(), cfg.optical_bw);
  if (cfg.congestion_threshold > 0) {
    adm = std::min(adm, cfg.congestion_threshold);
  }
  return adm;
}

void TorSwitch::enqueue_optical(Packet&& p, PortId port, SliceId dep,
                                SliceId arr) {
  assert(port >= 0 && port < static_cast<int>(uplinks_.size()));
  auto& u = uplinks_[static_cast<std::size_t>(port)];
  const auto& cfg = net_.config();

  if (!cfg.calendar_mode || dep == kAnySlice) {
    // Classical flow-table path: wildcard departure, FIFO egress (§3 (c)).
    const PacketId pid = p.id;
    const std::int64_t pbytes = p.size_bytes;
    if (!u.fifo.enqueue(std::move(p))) {
      drops_congestion_->inc();
      u.fifo.note_drop();
      if (auto* tr = net_.sim().recorder()) {
        tr->drop(net_.sim().now(), telemetry::DropReason::Congestion, id_,
                 port, pid, pbytes);
      }
      return;
    }
    if (auto* tr = net_.sim().recorder()) {
      tr->packet_enqueue(net_.sim().now(), id_, port, pid, pbytes);
    }
    peak_buffer_ = std::max(peak_buffer_, buffer_bytes());
    try_send(port);
    return;
  }

  const SliceId period = net_.schedule().period();
  const int rank = (dep - arr + period) % period;
  const int k = u.cal->num_queues();
  if (rank >= k) {
    if (cfg.offload) {
      p.intended_slice = dep;
      p.intended_port = port;
      offload_to_host(std::move(p), current_abs_slice() + rank);
      return;
    }
    on_congested(std::move(p), port, dep, arr);
    return;
  }

  // Trimmed headers bypass congestion detection (they ride the priority
  // headroom Opera reserves for control); they still face byte capacity.
  if (cfg.congestion_detection && u.eqo && !p.trimmed) {
    const SimTime now = net_.sim().now();
    u.eqo->drain_window(u.cal->active_index(), u.last_eqo_drain, now);
    u.last_eqo_drain = now;
    const int qidx = (u.cal->active_index() + rank) % k;
    // "A calendar queue is full if its occupancy exceeds the admissible
    // data amount for the elapsed time of the time slice" (§5.2): the
    // check is on accumulated occupancy, so a packet landing near the
    // slice tail merely waits for the next occurrence instead of being
    // treated as congestion.
    if (u.eqo->estimate(qidx) > admissible_bytes(port, rank)) {
      on_congested(std::move(p), port, dep, arr);
      return;
    }
  }

  p.intended_slice = dep;
  p.intended_port = port;
  const PacketId pid = p.id;
  const std::int64_t bytes = p.size_bytes;
  const auto verdict = u.cal->try_enqueue(std::move(p), rank);
  if (verdict != EnqueueVerdict::Ok) {
    // Byte-capacity reject. The packet was consumed by try_enqueue only on
    // Ok, but our FifoQueue moves only on success, so this path means drop.
    drops_congestion_->inc();
    if (auto* tr = net_.sim().recorder()) {
      tr->drop(net_.sim().now(), telemetry::DropReason::Congestion, id_, port,
               pid, bytes);
    }
    return;
  }
  if (auto* tr = net_.sim().recorder()) {
    tr->packet_enqueue(net_.sim().now(), id_, port, pid, bytes);
  }
  if (u.eqo) u.eqo->on_enqueue((u.cal->active_index() + rank) % k, bytes);
  peak_buffer_ = std::max(peak_buffer_, buffer_bytes());
  if (rank == 0) try_send(port);
}

bool TorSwitch::force_enqueue(Packet&& p, PortId port, SliceId dep,
                              SliceId arr) {
  // Accept the slice miss: park the packet in its intended queue without
  // the admission test; only byte capacity can still reject it.
  auto& u = uplinks_[static_cast<std::size_t>(port)];
  if (!u.cal) return false;
  const SliceId period = net_.schedule().period();
  const int rank = (dep - arr + period) % period;
  const int k = u.cal->num_queues();
  if (rank >= k) return false;
  p.intended_slice = dep;
  p.intended_port = port;
  const int qidx = (u.cal->active_index() + rank) % k;
  const PacketId pid = p.id;
  const std::int64_t bytes = p.size_bytes;
  if (u.cal->try_enqueue(std::move(p), rank) != EnqueueVerdict::Ok) {
    return false;
  }
  if (auto* tr = net_.sim().recorder()) {
    tr->packet_enqueue(net_.sim().now(), id_, port, pid, bytes);
  }
  if (u.eqo) u.eqo->on_enqueue(qidx, bytes);
  peak_buffer_ = std::max(peak_buffer_, buffer_bytes());
  if (rank == 0) try_send(port);
  return true;
}

void TorSwitch::on_congested(Packet&& p, PortId port, SliceId dep,
                             SliceId arr) {
  const auto& cfg = net_.config();
  // The intended calendar queue is full: push-back (if enabled) throttles
  // the senders regardless of how this packet itself is handled (§5.2 —
  // slice-miss handling covers in-flight traffic, push-back future traffic).
  if (cfg.pushback) send_pushback(p, dep);
  switch (cfg.congestion_response) {
    case CongestionResponse::Defer:
      if (try_defer(p, arr)) {
        ++deferrals_;
        return;
      }
      // No later slice admits it: accept the miss in the intended queue
      // (losses then only come from exhausted byte capacity).
      if (force_enqueue(std::move(p), port, dep, arr)) return;
      break;
    case CongestionResponse::Trim:
      if (!p.trimmed && p.size_bytes > 64) {
        // Opera-style trimming: drop the payload, keep a 64 B header that
        // still reaches the receiver to trigger retransmission.
        ++trims_;
        p.size_bytes = 64;
        p.trimmed = true;
        enqueue_optical(std::move(p), port, dep, arr);
        return;
      }
      break;
    case CongestionResponse::Drop:
      break;
  }
  drops_congestion_->inc();
  if (auto* tr = net_.sim().recorder()) {
    tr->drop(net_.sim().now(), telemetry::DropReason::Congestion, id_, port,
             p.id, p.size_bytes);
  }
}

bool TorSwitch::try_defer(Packet& p, SliceId arr) {
  // HOHO/UCMP response: re-route as if the packet arrived in a later slice,
  // taking the first alternative whose queue admits it (§5.2, Appx. B).
  if (uplinks_.empty() || !uplinks_[0].cal) return false;
  const auto& sched = net_.schedule();
  const SliceId period = sched.period();
  const int k = uplinks_[0].cal->num_queues();
  for (int d = 1; d < k; ++d) {
    const SliceId s = sched.slice_of(arr + d);
    const TftEntry* entry = tft_.lookup(s, p.src_node, p.dst_node);
    if (entry == nullptr) continue;
    const TftAction& action = TimeFlowTable::select_action(
        *entry, hash_mix(static_cast<std::uint64_t>(p.id) + d));
    const net::SourceHop& hop = action.hops.front();
    // Source-routed schemes (UCMP) defer by replacing the packet's route
    // with the alternative computed for the later arrival slice.
    if (hop.egress == kElectricalEgress || hop.dep_slice == kAnySlice)
      continue;
    const int rank = d + ((hop.dep_slice - s + period) % period);
    if (rank >= k) continue;
    auto& u = uplinks_[static_cast<std::size_t>(hop.egress)];
    const int qidx = (u.cal->active_index() + rank) % k;
    if (u.eqo &&
        u.eqo->estimate(qidx) + p.size_bytes >
            admissible_bytes(hop.egress, rank)) {
      continue;
    }
    p.intended_slice = hop.dep_slice;
    p.intended_port = hop.egress;
    if (action.hops.size() > 1) {
      p.source_route.assign(action.hops.begin() + 1, action.hops.end());
      p.route_idx = 0;
    }
    const PacketId pid = p.id;
    const std::int64_t bytes = p.size_bytes;
    if (u.cal->try_enqueue(std::move(p), rank) == EnqueueVerdict::Ok) {
      if (auto* tr = net_.sim().recorder()) {
        tr->packet_enqueue(net_.sim().now(), id_, hop.egress, pid, bytes);
      }
      if (u.eqo) u.eqo->on_enqueue(qidx, bytes);
      peak_buffer_ = std::max(peak_buffer_, buffer_bytes());
      if (rank == 0) try_send(hop.egress);
      return true;
    }
    return false;  // packet was moved-from only on Ok; Ok is the only move
  }
  return false;
}

void TorSwitch::send_pushback(const Packet& p, SliceId dep) {
  ++pushbacks_sent_;
  const SliceId period = net_.schedule().period();
  const std::int64_t abs_dep =
      current_abs_slice() + ((dep - current_slice() + period) % period);
  const NodeId congested_dst = p.dst_node;
  const NodeId src_tor = p.src_node;
  // Control-plane broadcast to every host under the sender ToR (§5.2).
  // The hosts live on src_tor's lane; pushback_delay participates in the
  // engine's sync-window minimum, so the hop never needs clamping.
  net_.sim().schedule_at_lane(
      src_tor, net_.sim().now() + net_.config().pushback_delay,
      [this, congested_dst, src_tor, abs_dep]() {
        for (int i = 0; i < net_.config().hosts_per_tor; ++i) {
          Packet msg;
          msg.type = PacketType::Pushback;
          msg.src_node = congested_dst;
          msg.offload_abs_slice = abs_dep;
          net_.host(net_.host_id(src_tor, i)).deliver(std::move(msg));
        }
      },
      "pushback");
}

void TorSwitch::offload_to_host(Packet&& p, std::int64_t target_abs) {
  ++offloads_;
  p.offloaded = true;
  p.offload_abs_slice = target_abs;
  // Random host balances load; the host does the bookkeeping and initiates
  // the return (§5.2).
  const int h = static_cast<int>(
      rng_.uniform(static_cast<std::uint32_t>(downlinks_.size())));
  downlinks_[static_cast<std::size_t>(h)]->transmit(std::move(p));
}

void TorSwitch::handle_offload_return(Packet&& p) {
  const std::int64_t rank64 = p.offload_abs_slice - current_abs_slice();
  p.offloaded = false;
  const auto& sched = net_.schedule();
  if (rank64 < 0 ||
      (!uplinks_.empty() && uplinks_[0].cal &&
       rank64 >= uplinks_[0].cal->num_queues())) {
    // Late or still out of horizon: re-route from scratch.
    p.intended_slice = kAnySlice;
    p.intended_port = kInvalidPort;
    p.offload_abs_slice = -1;
    route(std::move(p));
    return;
  }
  const int rank = static_cast<int>(rank64);
  const PortId port = p.intended_port;
  assert(port >= 0 && port < static_cast<int>(uplinks_.size()));
  auto& u = uplinks_[static_cast<std::size_t>(port)];
  const int k = u.cal->num_queues();
  const int qidx = (u.cal->active_index() + rank) % k;
  p.intended_slice = sched.slice_of(p.offload_abs_slice);
  const PacketId pid = p.id;
  const std::int64_t bytes = p.size_bytes;
  if (u.cal->enqueue_unchecked(std::move(p), rank) == EnqueueVerdict::Ok) {
    if (auto* tr = net_.sim().recorder()) {
      tr->packet_enqueue(net_.sim().now(), id_, port, pid, bytes);
    }
    if (u.eqo) u.eqo->on_enqueue(qidx, bytes);
    if (rank == 0) try_send(port);
  } else {
    drops_congestion_->inc();
    if (auto* tr = net_.sim().recorder()) {
      tr->drop(net_.sim().now(), telemetry::DropReason::Congestion, id_, port,
               pid, bytes);
    }
  }
}

void TorSwitch::schedule_drain(PortId port, SimTime at) {
  auto& u = uplinks_[static_cast<std::size_t>(port)];
  if (u.drain_scheduled) return;
  u.drain_scheduled = true;
  net_.sim().schedule_at(
      at,
      [this, port]() {
        uplinks_[static_cast<std::size_t>(port)].drain_scheduled = false;
        try_send(port);
      },
      "tor.drain");
}

void TorSwitch::try_send(PortId port) {
  // Quarantined: the optical transmitter is administratively dark. Traffic
  // was (and keeps being) diverted electrically; anything still parked here
  // is evacuated by flush_and_reroute().
  if (net_.node_quarantined(id_)) return;
  auto& u = uplinks_[static_cast<std::size_t>(port)];
  const auto& cfg = net_.config();
  const SimTime now = net_.sim().now();

  if (u.busy_until > now) {
    schedule_drain(port, u.busy_until);
    return;
  }

  if (!cfg.calendar_mode) {
    // TA/static: continuous circuits, drain whenever the transmitter idles.
    auto p = u.fifo.dequeue();
    if (!p) return;
    const SimTime ser =
        SimTime::nanos(serialization_ns(p->size_bytes, cfg.optical_bw));
    const SimTime tx_end = now + ser;
    u.busy_until = tx_end;
    u.tx_bytes += p->size_bytes;
    if (auto* tr = net_.sim().recorder()) {
      tr->packet_dequeue(now, id_, port, p->id, p->size_bytes);
    }
    net_.optical().transmit(id_, port, std::move(*p), now, tx_end);
    schedule_drain(port, tx_end);
    return;
  }

  const SimTime ws = window_start();
  const SimTime we = window_end();
  if (now < ws) {
    schedule_drain(port, ws);
    return;
  }
  if (now >= we) return;  // next rotation re-kicks the drain

  auto& q = u.cal->active_queue();
  while (const Packet* head = q.peek()) {
    if (u.busy_until > now) {
      schedule_drain(port, u.busy_until);
      return;
    }
    if (head->intended_slice != current_slice() ||
        head->intended_port != port) {
      // The packet missed its slice (congestion) and wrapped with the
      // calendar; the circuit configuration has moved on — re-route it.
      // Rerouting is deferred one event to avoid re-entering this drain.
      slice_misses_->inc();
      auto missed = q.dequeue();
      if (auto* tr = net_.sim().recorder()) {
        tr->slice_miss(now, id_, port, missed->id);
      }
      missed->intended_slice = kAnySlice;
      missed->intended_port = kInvalidPort;
      missed->source_route.clear();
      missed->route_idx = 0;
      net_.sim().schedule_at(
          now,
          [this, pkt = std::move(*missed)]() mutable {
            route(std::move(pkt));
          },
          "tor.reroute");
      continue;
    }
    const SimTime ser =
        SimTime::nanos(serialization_ns(head->size_bytes, cfg.optical_bw));
    if (now + ser > we) return;  // does not fit: wait for the slice to recur
    auto p = q.dequeue();
    const SimTime tx_end = now + ser;
    u.busy_until = tx_end;
    u.tx_bytes += p->size_bytes;
    if (auto* tr = net_.sim().recorder()) {
      tr->packet_dequeue(now, id_, port, p->id, p->size_bytes);
    }
    net_.optical().transmit(id_, port, std::move(*p), now, tx_end);
    schedule_drain(port, tx_end);
    return;
  }

  // Scheduled traffic drained; serve wildcard (flow-table) packets
  // best-effort on whatever circuit the current slice carries — the §3
  // backward-compatibility path on a calendar-mode switch.
  if (const Packet* head = u.fifo.peek()) {
    const SimTime ser =
        SimTime::nanos(serialization_ns(head->size_bytes, cfg.optical_bw));
    if (now + ser > we) return;
    auto p = u.fifo.dequeue();
    const SimTime tx_end = now + ser;
    u.busy_until = tx_end;
    u.tx_bytes += p->size_bytes;
    if (auto* tr = net_.sim().recorder()) {
      tr->packet_dequeue(now, id_, port, p->id, p->size_bytes);
    }
    net_.optical().transmit(id_, port, std::move(*p), now, tx_end);
    schedule_drain(port, tx_end);
  }
}

void TorSwitch::on_rotation(std::int64_t abs_slice) {
  const SimTime now = net_.sim().now();
  if (auto* tr = net_.sim().recorder()) {
    tr->slice_rotation(now, id_, abs_slice);
    // The guard window is a fixed offset from the rotation, so its close is
    // recorded directly with a future timestamp rather than via a scheduled
    // event — tracing must not perturb event sequencing.
    tr->guard_open(now, id_, abs_slice, net_.head_guard_.ns());
    tr->guard_close(now + net_.head_guard_, id_, abs_slice);
  }
  for (std::size_t i = 0; i < uplinks_.size(); ++i) {
    auto& u = uplinks_[i];
    if (!u.cal) continue;
    if (u.eqo) {
      // Close out the draining window of the queue that was active.
      u.eqo->drain_window(u.cal->active_index(), u.last_eqo_drain, now);
      u.last_eqo_drain = now;
    }
    u.cal->rotate();
  }
  local_abs_slice_ = abs_slice;
  local_slice_start_ = now;
  for (std::size_t i = 0; i < uplinks_.size(); ++i) {
    try_send(static_cast<PortId>(i));
  }
}

void TorSwitch::flush_and_reroute() {
  std::vector<Packet> evacuated;
  for (auto& u : uplinks_) {
    if (u.cal) {
      for (auto& p : u.cal->drain_all()) evacuated.push_back(std::move(p));
    }
    const bool was_paused = u.fifo.paused();
    u.fifo.resume();
    while (auto p = u.fifo.dequeue()) evacuated.push_back(std::move(*p));
    if (was_paused) u.fifo.pause();
  }
  for (auto& p : evacuated) {
    p.intended_slice = kAnySlice;
    p.intended_port = kInvalidPort;
    p.source_route.clear();
    p.route_idx = 0;
    route(std::move(p));
  }
}

std::int64_t TorSwitch::buffer_bytes() const {
  std::int64_t b = 0;
  for (const auto& u : uplinks_) {
    b += u.fifo.bytes();
    if (u.cal) b += u.cal->total_bytes();
  }
  return b;
}

std::int64_t TorSwitch::queued_packets() const {
  std::int64_t n = 0;
  for (const auto& u : uplinks_) {
    n += static_cast<std::int64_t>(u.fifo.size());
    if (u.cal) n += u.cal->total_packets();
  }
  return n;
}

std::int64_t TorSwitch::port_buffer_bytes(PortId port) const {
  const auto& u = uplinks_[static_cast<std::size_t>(port)];
  std::int64_t b = u.fifo.bytes();
  if (u.cal) b += u.cal->total_bytes();
  return b;
}

// ---------------------------------------------------------------------------
// Network

Network::Network(NetworkConfig cfg, optics::Schedule schedule,
                 optics::OcsProfile profile)
    : cfg_(cfg), schedule_(std::move(schedule)), master_rng_(cfg.seed) {
  assert(schedule_.num_nodes() == cfg_.num_tors);
  sync_ = std::make_unique<SyncModel>(cfg_.num_tors, cfg_.sync_error,
                                      master_rng_.fork());
  // Usable slice window: the configured guardband (which the operator must
  // size to cover OCS retargeting — §7) plus worst-case clock error; the
  // tail margin keeps the last bit inside the global slice despite clock
  // error. An under-sized guardband loses packets into the retargeting
  // window, exactly as on real hardware.
  head_guard_ = cfg_.guardband + cfg_.sync_error;
  tail_margin_ = cfg_.sync_error;
  guard_extra_.assign(static_cast<std::size_t>(cfg_.num_tors),
                      SimTime::zero());
  quarantined_.assign(static_cast<std::size_t>(cfg_.num_tors), 0);
  beacons_ok_ = &sim_.metrics().counter("sync.beacons", {{"result", "ok"}});
  beacons_lost_ =
      &sim_.metrics().counter("sync.beacons", {{"result", "lost"}});
  node_epoch_.assign(static_cast<std::size_t>(cfg_.num_tors), 0);
  node_abs_.assign(static_cast<std::size_t>(cfg_.num_tors), 0);
  mixed_epoch_slices_ = &sim_.metrics().counter("net.mixed_epoch_slices");

  optical_ = std::make_unique<optics::OpticalFabric>(
      sim_, schedule_, profile, master_rng_.fork());
  if (cfg_.electrical_bw > 0) {
    electrical_ = std::make_unique<net::ElectricalFabric>(
        sim_, cfg_.num_tors, cfg_.electrical_bw, cfg_.electrical_transit,
        cfg_.electrical_backlog);
  }

  tors_.reserve(static_cast<std::size_t>(cfg_.num_tors));
  for (NodeId n = 0; n < cfg_.num_tors; ++n) {
    tors_.push_back(std::make_unique<TorSwitch>(*this, n));
    auto* tor = tors_.back().get();
    tor->local_slice_start_ = sync_->offset(n);
    optical_->attach(n, [tor](Packet&& p, PortId in_port) {
      tor->from_optical(std::move(p), in_port);
    });
    if (electrical_) {
      electrical_->attach(
          n, [tor](Packet&& p) { tor->from_electrical(std::move(p)); });
    }
  }

  hosts_.reserve(static_cast<std::size_t>(num_hosts()));
  for (NodeId n = 0; n < cfg_.num_tors; ++n) {
    auto* tor = tors_[static_cast<std::size_t>(n)].get();
    for (int i = 0; i < cfg_.hosts_per_tor; ++i) {
      const HostId h = host_id(n, i);
      hosts_.push_back(std::make_unique<Host>(*this, h, n, i));
      auto* host = hosts_.back().get();
      host->up_link_ = std::make_unique<net::Link>(
          sim_, cfg_.host_bw, cfg_.host_link_delay,
          [tor](Packet&& p) { tor->from_host(std::move(p)); });
      tor->downlinks_.push_back(std::make_unique<net::Link>(
          sim_, cfg_.host_bw, cfg_.host_link_delay,
          [host](Packet&& p) { host->deliver(std::move(p)); }));
    }
  }

  if (cfg_.shards > 0) enable_sharding(cfg_.shards);
}

Network::~Network() = default;

void Network::enable_sharding(int workers) {
  if (workers <= 0 || sim_.sharded()) return;
  assert(!started_ && "enable_sharding must precede start()");
  // Sync window: the smallest latency on any cross-ToR interaction. Every
  // event one lane schedules onto another lies at least this far in the
  // future, so lanes executing a window [T, T+W) in parallel can never
  // affect each other inside it — the conservative-sync lookahead.
  SimTime window = optical_->profile().latency_min;
  if (cfg_.electrical_bw > 0) {
    window = std::min(window, cfg_.electrical_transit);
  }
  if (cfg_.pushback) window = std::min(window, cfg_.pushback_delay);
  assert(window > SimTime::zero() && "zero-lookahead topology can't shard");
  sim_.configure_lanes(cfg_.num_tors);
  lane_packet_seq_.assign(static_cast<std::size_t>(cfg_.num_tors) + 1, 0);
  lane_flow_seq_.assign(static_cast<std::size_t>(cfg_.num_tors) + 1, 0);
  optical_->enable_sharding();
  if (electrical_) electrical_->set_sharded(true);
  engine_ = std::make_unique<parallel::ShardedEngine>(sim_, cfg_.num_tors,
                                                      workers, window);
  sim_.set_parallel_runner(engine_.get());
}

void Network::notify_wrong_slice(NodeId n, SimTime at) {
  if (!arrival_hook_) return;
  if (sim_.sharded() &&
      sim_.current_lane() != sim::Simulator::kControlLane) {
    // The hook holds control-plane state (the sync watchdog); a worker-lane
    // symptom crosses to the control queue through the barrier.
    sim_.schedule_at_lane(
        sim::Simulator::kControlLane, at,
        [this, n, at]() {
          if (arrival_hook_) arrival_hook_(n, at);
        },
        "net.wrong_slice");
    return;
  }
  arrival_hook_(n, at);
}

void Network::start() {
  if (started_) return;
  started_ = true;
  if (!cfg_.calendar_mode || schedule_.period() <= 1) return;
  for (NodeId n = 0; n < cfg_.num_tors; ++n) arm_rotation(n, 1);
  if (cfg_.resync_interval > SimTime::zero()) {
    sim_.schedule_every(
        cfg_.resync_interval, cfg_.resync_interval,
        [this]() { beacon_round(); }, "sync.beacon");
  }
}

void Network::arm_rotation(NodeId n, std::int64_t k) {
  // Rotation k of node n fires at the node's local view of the global
  // boundary k*dur: with a static clock this is exactly the historical
  // `boundary + offset` chain; with drift the firing instants stretch or
  // compress, physically skewing the node's slice windows off the fabric's.
  const SimTime target = schedule_.slice_duration() * k;
  SimTime when = sync_->rotation_time(n, target, target);
  // A pathological offset (or a backwards clock step mid-run) must never
  // schedule into the past; clamping keeps per-node rotations ordered.
  if (when < sim_.now()) when = sim_.now();
  auto* tor = tors_[static_cast<std::size_t>(n)].get();
  if (sim_.sharded()) {
    // Two same-instant events: the rotation's queue work runs on the ToR's
    // own lane (so the egress drain chains it kicks off inherit that lane),
    // while the controller hook, epoch bookkeeping, and the re-arm stay on
    // the control queue. The control phase runs first within each window,
    // so a committed transaction's staged state still activates before the
    // node processes the slice — the same ordering the serial closure had.
    sim_.schedule_at_lane(
        n, when, [tor, k]() { tor->on_rotation(k); }, "rotation");
    sim_.schedule_at(
        when,
        [this, n, k]() {
          if (rotation_hook_) rotation_hook_(n, k);
          note_rotation_epoch(n, k);
          arm_rotation(n, k + 1);
        },
        "rotation.ctl");
    return;
  }
  sim_.schedule_at(
      when,
      [this, tor, n, k]() {
        // The controller's boundary hook first, so a committed transaction's
        // staged state activates before this slice is processed; then the
        // mixed-epoch bookkeeping sees the post-activation epoch.
        if (rotation_hook_) rotation_hook_(n, k);
        tor->on_rotation(k);
        note_rotation_epoch(n, k);
        arm_rotation(n, k + 1);
      },
      "rotation");
}

void Network::refresh_epoch_mixed() {
  const std::uint64_t first = node_epoch_.empty() ? 0 : node_epoch_[0];
  epoch_mixed_ = false;
  for (const std::uint64_t e : node_epoch_) {
    if (e != first) {
      epoch_mixed_ = true;
      return;
    }
  }
}

void Network::note_node_epoch(NodeId n, std::uint64_t e) {
  const bool was_mixed = epoch_mixed_;
  node_epoch_[static_cast<std::size_t>(n)] = e;
  refresh_epoch_mixed();
  // Without rotations there is no per-slice sampling point, so each
  // transition into a mixed state counts as one exposure window instead.
  if (epoch_mixed_ && !was_mixed &&
      (!cfg_.calendar_mode || schedule_.period() <= 1)) {
    mixed_epoch_slices_->inc();
  }
}

void Network::note_rotation_epoch(NodeId n, std::int64_t abs_slice) {
  node_abs_[static_cast<std::size_t>(n)] = abs_slice;
  // Charge slice `abs_slice` once the *last* node rotates into it: a clean
  // boundary-synchronized swap (every node activates at its own rotation
  // into the same slice) is uniform again by then and charges nothing,
  // while a node left behind by a lost commit keeps the fabric mixed when
  // the slice completes its entry.
  std::int64_t min_abs = node_abs_[0];
  for (const std::int64_t a : node_abs_) min_abs = std::min(min_abs, a);
  if (min_abs == abs_slice && abs_slice > last_counted_abs_) {
    last_counted_abs_ = abs_slice;
    if (epoch_mixed_) mixed_epoch_slices_->inc();
  }
}

std::int64_t Network::mixed_epoch_slices() const {
  return mixed_epoch_slices_->value();
}

void Network::beacon_round() {
  for (NodeId n = 0; n < cfg_.num_tors; ++n) beacon_exchange(n, false);
}

bool Network::beacon_exchange(NodeId n, bool probe) {
  const SimTime now = sim_.now();
  if (sync_->beacons_blocked(n, now)) {
    beacons_lost_->inc();
    if (auto* tr = sim_.recorder()) tr->beacon_lost(now, n, probe);
    return false;
  }
  sync_->resync(n, now);
  beacons_ok_->inc();
  return true;
}

bool Network::probe_beacon(NodeId n) { return beacon_exchange(n, true); }

void Network::set_node_guard_extra(NodeId n, SimTime extra) {
  if (extra < SimTime::zero()) extra = SimTime::zero();
  // Keep at least a quarter of the nominal drain window usable: a widened
  // node ships less per slice but still makes forward progress.
  const SimTime nominal =
      schedule_.slice_duration() - head_guard_ - tail_margin_;
  const SimTime cap = SimTime::nanos(nominal.ns() * 3 / 8);
  if (extra > cap) extra = cap;
  guard_extra_[static_cast<std::size_t>(n)] = extra;
}

void Network::set_node_quarantined(NodeId n, bool q) {
  auto& slot = quarantined_[static_cast<std::size_t>(n)];
  if ((slot != 0) == q) return;
  slot = q ? 1 : 0;
  if (q) {
    // Deferred one event: quarantine is decided inside watchdog/fabric
    // callbacks that may sit under a drain loop of the very queues the
    // flush walks.
    auto* tor = tors_[static_cast<std::size_t>(n)].get();
    sim_.schedule_at(
        sim_.now(), [tor]() { tor->flush_and_reroute(); },
        "tor.quarantine_flush");
  }
}

void Network::reconfigure(optics::Schedule next, SimTime delay) {
  assert(next.period() == schedule_.period() &&
         next.slice_duration() == schedule_.slice_duration() &&
         "reconfigure preserves slice timing; rebuild for new timing");
  optical_->reconfigure(next, delay);
  sim_.schedule_in(
      delay,
      [this, next = std::move(next)]() mutable {
        schedule_ = std::move(next);
      },
      "fabric.reconfig");
}

Network::Totals Network::totals() const {
  Totals t;
  t.fabric_drops = optical_->total_drops();
  if (electrical_) t.electrical_drops = electrical_->drops();
  for (const auto& tor : tors_) {
    t.delivered += tor->delivered_local();
    t.congestion_drops += tor->drops_congestion();
    t.no_route_drops += tor->drops_no_route();
  }
  return t;
}

std::int64_t Network::queued_packets() const {
  std::int64_t n = 0;
  for (const auto& tor : tors_) n += tor->queued_packets();
  for (const auto& host : hosts_) n += host->offload_stored_packets();
  return n;
}

std::vector<std::vector<std::int64_t>> Network::collect_tm() {
  std::vector<std::vector<std::int64_t>> tm(
      static_cast<std::size_t>(cfg_.num_tors),
      std::vector<std::int64_t>(static_cast<std::size_t>(cfg_.num_tors), 0));
  for (auto& host : hosts_) {
    const auto counters = host->take_traffic_counters();
    const auto src = static_cast<std::size_t>(host->tor());
    for (std::size_t d = 0; d < counters.size(); ++d) {
      tm[src][d] += counters[d];
    }
  }
  return tm;
}

}  // namespace oo::core
