// The OpenOptics backend system (§5): ToR switches with time-flow tables and
// calendar-queue management, hosts with a libvma-style userspace stack
// (flow pausing, segment queues, offload storage), the optical fabric, an
// optional parallel electrical fabric, and the infrastructure services —
// congestion detection, traffic push-back, flow pausing, traffic collection,
// and buffer offloading (§5.2) — wired together under one event simulator.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"
#include "core/calendar_queue.h"
#include "core/eqo.h"
#include "core/path.h"
#include "core/sync.h"
#include "core/time_flow_table.h"
#include "eventsim/simulator.h"
#include "net/electrical_fabric.h"
#include "net/link.h"
#include "net/packet.h"
#include "optics/fabric.h"
#include "optics/schedule.h"
#include "parallel/sharded.h"

namespace oo::core {

using net::Packet;
using net::PacketType;

// What a switch does when congestion detection flags a packet whose
// calendar queue cannot take it (§5.2): the framework detects, the
// architecture chooses the response.
enum class CongestionResponse {
  Drop,   // RotorNet-style tail drop
  Trim,   // Opera-style payload trimming (header survives, marked)
  Defer,  // HOHO/UCMP-style deferral to a later feasible slice
};

// Host network stack model for delay/variance purposes (Fig. 14): the
// userspace libvma path vs. the kernel path.
enum class HostStack { Libvma, Kernel };

struct NetworkConfig {
  int num_tors = 8;
  int hosts_per_tor = 1;
  BitsPerSec optical_bw = 100e9;
  BitsPerSec host_bw = 100e9;
  SimTime host_link_delay = SimTime::nanos(600);

  // Parallel electrical fabric; 0 bandwidth = absent.
  BitsPerSec electrical_bw = 0;
  SimTime electrical_transit = SimTime::micros(1);
  std::int64_t electrical_backlog = 16 << 20;

  // Calendar queues: count per uplink port (the offload horizon N of §5.2
  // when smaller than the schedule period) and per-queue byte capacity.
  int calendar_queues = 0;  // 0 = match the schedule period (capped at 128)
  std::int64_t queue_capacity = 2 << 20;
  // Classical-FIFO capacity per uplink for TA/static (wildcard) operation.
  std::int64_t fifo_capacity = 8 << 20;

  // TO mode runs slice rotation + calendar queues; TA/static mode drains
  // FIFOs continuously. Set by the architecture preset.
  bool calendar_mode = true;

  // Guardband at the head of each slice before the first launch (covers
  // OCS reconfiguration + rotation variance + sync + EQO windows, §7).
  SimTime guardband = SimTime::nanos(200);

  SimTime sync_error = SimTime::nanos(28);

  // OpSync resync beacon period (TO mode): every interval the controller
  // re-disciplines each ToR clock back to within sync_error — unless the
  // beacon is suppressed by a SyncBeaconLoss/SyncOutage fault. Zero disables
  // the protocol (clocks then hold their construction offsets, or drift
  // forever once a drift fault is injected).
  SimTime resync_interval = SimTime::micros(100);

  // Congestion detection (EQO-based) and response.
  bool congestion_detection = true;
  SimTime eqo_interval = SimTime::nanos(50);
  CongestionResponse congestion_response = CongestionResponse::Drop;
  // Optional CC threshold in bytes on top of the admissible-bytes test;
  // 0 disables it.
  std::int64_t congestion_threshold = 0;

  // Traffic push-back (§5.2): last-resort sender throttling.
  bool pushback = false;
  SimTime pushback_delay = SimTime::micros(2);  // control-plane latency

  // Buffer offloading (§5.2): rank-overflow packets parked on hosts.
  bool offload = false;
  // Offloaded packets return this early relative to their slice start.
  SimTime offload_lead = SimTime::micros(10);

  HostStack host_stack = HostStack::Libvma;
  // Per-destination segment queue capacity in the host stack (libvma
  // segment queue; applications block when it fills).
  std::int64_t host_segment_queue = 8 << 20;

  // Sharded parallel engine (src/parallel/): number of worker shards the
  // per-ToR event lanes are spread across. 0 = the legacy single-queue
  // engine, bit-for-bit unchanged. Any value >= 1 runs the windowed lane
  // engine; results are byte-identical for every shard count (shards=1 is
  // the zero-thread baseline the tests pin against).
  int shards = 0;

  std::uint64_t seed = 42;
};

class Network;

// ---------------------------------------------------------------------------
// Host: endpoint with a userspace-stack model. Transports bind flow sinks;
// the infra services hook flow pausing, push-back windows, and offload
// storage here.
class Host {
 public:
  using ReceiveFn = std::function<void(Packet&&)>;
  // Called when a paused/backpressured destination drains below capacity.
  using UnblockFn = std::function<void(NodeId dst)>;

  Host(Network& net, HostId id, NodeId tor, int local_index);

  HostId id() const { return id_; }
  NodeId tor() const { return tor_; }
  int local_index() const { return local_index_; }

  // Transport attach points.
  void bind_flow(FlowId flow, ReceiveFn sink);
  void unbind_flow(FlowId flow);
  // Catch-all sink for packets with no bound flow.
  void bind_default(ReceiveFn sink) { default_sink_ = std::move(sink); }
  void set_unblock_callback(UnblockFn fn) { unblock_ = std::move(fn); }
  // Invoked on every outgoing packet before pausing/queueing decisions —
  // the hook services like hybrid elephant steering use to rewrite packets
  // (§5.2); the userspace-stack interposition point.
  void set_send_hook(std::function<void(Packet&)> hook) {
    send_hook_ = std::move(hook);
  }

  // Sends through the stack: pausing/push-back may park the packet in the
  // per-destination segment queue. Returns false if the segment queue is
  // full (application must back off and retry on unblock callback).
  bool send(Packet&& p);
  // True if a send to dst would be parked or rejected right now.
  bool would_block(NodeId dst) const;

  // Socket-style admission: true if the stack can absorb `bytes` toward
  // dst right now (either the fast path is open or the segment queue has
  // room). Blocking senders (TcpLite) poll this and wait for the unblock
  // callback instead of losing writes.
  bool can_buffer(NodeId dst, std::int64_t bytes) const;

  // Flow pausing service (§5.2).
  void pause_dst(NodeId dst);
  void resume_dst(NodeId dst);
  bool paused(NodeId dst) const;

  // Push-back: block sends to `dst` until global time `until`.
  void pushback_dst(NodeId dst, SimTime until);

  std::int64_t segment_bytes(NodeId dst) const;
  std::int64_t sent_bytes_to(NodeId dst) const;
  // Drains and returns the per-destination byte counters (traffic
  // collection, §5.2).
  std::vector<std::int64_t> take_traffic_counters();

  // Fabric-side delivery (from the ToR downlink).
  void deliver(Packet&& p);

  // Packets currently parked in offload storage awaiting their return slice
  // (census side of the packet-conservation invariant).
  std::int64_t offload_stored_packets() const {
    return offload_stored_packets_;
  }

 private:
  friend class Network;
  struct DstState {
    net::FifoQueue segq;
    bool paused = false;
    bool sender_blocked = false;  // a send was rejected since last drain
    SimTime pushback_until = SimTime::zero();
    std::int64_t sent_bytes = 0;
    explicit DstState(std::int64_t cap) : segq(cap) {}
  };

  void stack_delay_send(Packet&& p);
  void try_drain(NodeId dst);
  void pump();  // paced drain of parked segment queues (one per host)
  void start_pump();
  DstState& dst_state(NodeId dst);
  SimTime stack_delay();  // host-stack processing delay model

  Network& net_;
  HostId id_;
  NodeId tor_;
  int local_index_;
  std::unique_ptr<net::Link> up_link_;  // host -> ToR, wired by Network
  std::vector<DstState> dsts_;
  std::unordered_map<FlowId, ReceiveFn> flows_;
  ReceiveFn default_sink_;
  UnblockFn unblock_;
  std::function<void(Packet&)> send_hook_;
  SimTime stack_last_release_ = SimTime::zero();
  bool pump_scheduled_ = false;
  std::size_t pump_rr_ = 0;  // round-robin cursor over destinations
  Rng rng_;
  // Offload storage: packets parked for the ToR, keyed by return time.
  std::int64_t offload_stored_bytes_ = 0;
  std::int64_t offload_stored_packets_ = 0;
};

// ---------------------------------------------------------------------------
// ToR switch: time-flow table + per-uplink calendar queues (TO) or FIFOs
// (TA/static), EQO-based congestion detection, offload and push-back hooks.
class TorSwitch {
 public:
  TorSwitch(Network& net, NodeId id);

  NodeId id() const { return id_; }
  TimeFlowTable& tft() { return tft_; }
  const TimeFlowTable& tft() const { return tft_; }

  // Multipath hashing granularity, set by deploy_routing() (Tab. 1).
  void set_multipath(MultipathMode m) { mp_mode_ = m; }
  MultipathMode multipath() const { return mp_mode_; }

  // Ingress entry points.
  void from_host(Packet&& p);
  void from_optical(Packet&& p, PortId in_port);
  void from_electrical(Packet&& p);

  // Slice boundary on this node's clock: rotate calendar queues, then kick
  // every uplink's drain loop.
  void on_rotation(std::int64_t abs_slice);

  // Telemetry (§4.2 monitoring APIs).
  std::int64_t buffer_bytes() const;
  // Packets parked in this switch's uplink queues (calendar days + FIFO) —
  // the census side of the packet-conservation invariant.
  std::int64_t queued_packets() const;
  std::int64_t peak_buffer_bytes() const { return peak_buffer_; }
  std::int64_t port_buffer_bytes(PortId port) const;
  std::int64_t uplink_tx_bytes(PortId port) const {
    return uplinks_[static_cast<std::size_t>(port)].tx_bytes;
  }
  // Cumulative bytes received from the optical fabric on `port` (the rx
  // side of the per-circuit conservation ledger the health scanner audits).
  std::int64_t uplink_rx_bytes(PortId port) const {
    return uplinks_[static_cast<std::size_t>(port)].rx_bytes;
  }
  // Self-reported counter views: what this node *claims* its counters say.
  // Equal to the ground truth unless a telemetry_skew fault scales the
  // node's reports by 1 + ppm/1e6. Detectors that must not trust
  // self-reports (services::HealthScanner) read only these.
  std::int64_t reported_uplink_tx_bytes(PortId port) const {
    return reported(uplink_tx_bytes(port));
  }
  std::int64_t reported_uplink_rx_bytes(PortId port) const {
    return reported(uplink_rx_bytes(port));
  }
  int num_uplinks() const { return static_cast<int>(uplinks_.size()); }
  std::int64_t drops_no_route() const { return drops_no_route_->value(); }
  std::int64_t drops_congestion() const { return drops_congestion_->value(); }
  std::int64_t slice_misses() const { return slice_misses_->value(); }
  // Packets that arrived on an optical circuit outside the slice (or its
  // immediate successor, covering fabric latency) they were launched for —
  // the receive-side symptom of a desynchronized clock somewhere.
  std::int64_t wrong_slice_arrivals() const {
    return wrong_slice_arrivals_->value();
  }
  std::int64_t deferrals() const { return deferrals_; }
  std::int64_t trims() const { return trims_; }
  std::int64_t offloads() const { return offloads_; }
  std::int64_t pushbacks_sent() const { return pushbacks_sent_; }
  std::int64_t delivered_local() const { return delivered_local_; }

 private:
  friend class Network;
  struct Uplink {
    std::unique_ptr<CalendarQueuePort> cal;
    net::FifoQueue fifo;
    std::unique_ptr<QueueOccupancyEstimator> eqo;
    SimTime busy_until = SimTime::zero();
    SimTime last_eqo_drain = SimTime::zero();
    bool drain_scheduled = false;
    std::int64_t tx_bytes = 0;
    std::int64_t rx_bytes = 0;
    Uplink() : fifo(0) {}
  };

  std::int64_t reported(std::int64_t v) const {
    if (report_factor_ == 1.0) return v;
    return static_cast<std::int64_t>(
        static_cast<double>(v) * report_factor_ + 0.5);
  }

  void route(Packet&& p);
  void apply_action(Packet&& p, const net::SourceHop& hop, SliceId arr);
  void enqueue_optical(Packet&& p, PortId port, SliceId dep, SliceId arr);
  void on_congested(Packet&& p, PortId port, SliceId dep, SliceId arr);
  bool force_enqueue(Packet&& p, PortId port, SliceId dep, SliceId arr);
  bool try_defer(Packet& p, SliceId arr);
  void send_pushback(const Packet& p, SliceId slice);
  void offload_to_host(Packet&& p, std::int64_t target_abs);
  void handle_offload_return(Packet&& p);
  void try_send(PortId port);
  void schedule_drain(PortId port, SimTime at);
  // Evacuate calendar + FIFO uplink queues and re-route every packet from
  // scratch (quarantine entry: the re-route lands them on the electrical
  // fabric while this node's optical egress is gated).
  void flush_and_reroute();
  void deliver_local(Packet&& p);
  // Admissible bytes for the queue at `rank` on `port` right now (§5.2).
  std::int64_t admissible_bytes(PortId port, int rank) const;
  SliceId current_slice() const;
  std::int64_t current_abs_slice() const;
  // Local (sync-offset) view of the current slice's usable drain window.
  SimTime window_start() const;
  SimTime window_end() const;

  Network& net_;
  NodeId id_;
  TimeFlowTable tft_;
  MultipathMode mp_mode_ = MultipathMode::None;
  std::vector<Uplink> uplinks_;
  std::vector<std::unique_ptr<net::Link>> downlinks_;  // to local hosts
  std::int64_t local_abs_slice_ = 0;
  SimTime local_slice_start_ = SimTime::zero();
  Rng rng_;
  // Telemetry-skew gray fault: scale factor applied to self-reported
  // counters (1.0 = honest). Written via Network::set_telemetry_skew.
  double report_factor_ = 1.0;

  std::int64_t peak_buffer_ = 0;
  // Registry-backed ("tor.drops"{class=...,node=N}, "tor.slice_misses"
  // {node=N}); the accessors above are shims over these cells.
  telemetry::Counter* drops_no_route_;
  telemetry::Counter* drops_congestion_;
  telemetry::Counter* slice_misses_;
  telemetry::Counter* wrong_slice_arrivals_;
  std::int64_t deferrals_ = 0;
  std::int64_t trims_ = 0;
  std::int64_t offloads_ = 0;
  std::int64_t pushbacks_sent_ = 0;
  std::int64_t delivered_local_ = 0;
};

// ---------------------------------------------------------------------------
// Network: owns the simulator, fabrics, switches, and hosts.
class Network {
 public:
  Network(NetworkConfig cfg, optics::Schedule schedule,
          optics::OcsProfile profile);
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  sim::Simulator& sim() { return sim_; }
  const NetworkConfig& config() const { return cfg_; }
  const optics::Schedule& schedule() const { return schedule_; }
  optics::OpticalFabric& optical() { return *optical_; }
  net::ElectricalFabric* electrical() { return electrical_.get(); }
  const SyncModel& sync() const { return *sync_; }
  // Mutable clock access for fault injection (drift ramps, steps, beacon
  // suppression) and for the watchdog's resync probes.
  ClockModel& clock() { return *sync_; }

  int num_tors() const { return cfg_.num_tors; }
  int num_hosts() const {
    return cfg_.num_tors * cfg_.hosts_per_tor;
  }
  TorSwitch& tor(NodeId n) { return *tors_[static_cast<std::size_t>(n)]; }
  Host& host(HostId h) { return *hosts_[static_cast<std::size_t>(h)]; }
  HostId host_id(NodeId tor, int local) const {
    return tor * cfg_.hosts_per_tor + local;
  }
  NodeId tor_of(HostId h) const { return h / cfg_.hosts_per_tor; }

  // Starts slice-rotation timers and the resync-beacon protocol (TO mode).
  // Idempotent.
  void start();
  bool started() const { return started_; }

  // ---- sharded parallel engine ----
  // Partition the per-ToR event streams into lanes (lane id == ToR id) and
  // install a ShardedEngine with `workers` threads of execution (worker 0
  // is the coordinating thread). Called by the constructor when
  // cfg.shards > 0; may also be called explicitly (api::Net::set_shards)
  // any time before start(). No-op for workers <= 0 or if already sharded.
  void enable_sharding(int workers);
  bool sharded() const { return sim_.sharded(); }
  parallel::ShardedEngine* sharded_engine() { return engine_.get(); }

  // ---- per-node safe-mode controls (driven by services::SyncWatchdog) ----
  // Extra guard margin applied to *both* ends of this node's drain window on
  // top of the global head_guard_/tail_margin_ — widening trades duty cycle
  // for tolerance of clock error beyond the advertised bound. Clamped so at
  // least a quarter of the nominal window survives.
  void set_node_guard_extra(NodeId n, SimTime extra);
  SimTime node_guard_extra(NodeId n) const {
    return guard_extra_[static_cast<std::size_t>(n)];
  }
  // Quarantine: gate the node's optical egress entirely and divert traffic
  // from/to it onto the electrical fabric (when one exists). Entering
  // quarantine evacuates the node's calendar queues via a deferred flush so
  // parked packets re-route instead of rotting until re-admission.
  void set_node_quarantined(NodeId n, bool q);
  bool node_quarantined(NodeId n) const {
    return quarantined_[static_cast<std::size_t>(n)] != 0;
  }

  // Telemetry-skew gray fault (services::FaultPlan): node n self-reports
  // its counters scaled by 1 + ppm/1e6 until cleared with ppm = 0. Ground
  // truth is untouched — only the reported_* accessors lie.
  void set_telemetry_skew(NodeId n, double ppm) {
    tors_[static_cast<std::size_t>(n)]->report_factor_ = 1.0 + ppm / 1e6;
  }

  // Receive-side desync symptom tap: fired (synchronously, from the
  // arrival path) when a ToR observes a wrong-slice arrival, with the
  // *observing* node — the observer cannot tell which sender drifted.
  using SymptomHook = std::function<void(NodeId, SimTime)>;
  void set_wrong_slice_arrival_hook(SymptomHook hook) {
    arrival_hook_ = std::move(hook);
  }

  // ---- transactional deploy support (core::Controller) ----
  // Fired just before node n processes its rotation into absolute slice k —
  // the boundary at which a committed transaction's staged state activates
  // on that node's clock.
  using RotationHook = std::function<void(NodeId, std::int64_t)>;
  void set_rotation_hook(RotationHook hook) {
    rotation_hook_ = std::move(hook);
  }

  // Controller callback: node n is now forwarding on deployment epoch `e`.
  // The network tracks per-node epochs and counts mixed-epoch exposure —
  // slices during which at least two nodes forwarded on different epochs
  // (the control-plane analogue of the clock-desync hazard). In calendar
  // mode a slice is charged when its last node rotates in while the fabric
  // is mixed; without rotations (TA / period 1) each transition into a
  // mixed state is charged once instead.
  void note_node_epoch(NodeId n, std::uint64_t e);
  std::uint64_t node_epoch(NodeId n) const {
    return node_epoch_[static_cast<std::size_t>(n)];
  }
  // True while at least two nodes forward on different epochs.
  bool epoch_mixed() const { return epoch_mixed_; }
  std::int64_t mixed_epoch_slices() const;

  // One beacon exchange with node `n` right now (the watchdog's backoff
  // re-probe path; the periodic protocol uses the same primitive). Returns
  // false when the beacon is suppressed by an active fault.
  bool probe_beacon(NodeId n);

  // Swap the optical schedule (TA reconfiguration); `delay` is the OCS
  // retargeting time. Rotation timers adapt to the new period.
  void reconfigure(optics::Schedule next, SimTime delay);

  // Per-lane id allocation in sharded mode: each lane (and the control
  // queue, slot 0) owns a disjoint id space, so allocation is a pure
  // function of the calling lane's own history — no shared counter, no
  // dependence on cross-lane execution order. The high bits carry the lane
  // slot; 2^40 ids per lane is far beyond any run.
  PacketId next_packet_id() {
    if (!sim_.sharded()) return ++packet_seq_;
    const auto idx = static_cast<std::size_t>(sim_.current_lane() + 1);
    return ((static_cast<PacketId>(idx) + 1) << 40) | ++lane_packet_seq_[idx];
  }
  // Per-network flow-id allocation. Flow ids seed multipath hashing, so they
  // must be a function of this network's history alone — a process-global
  // allocator would make results depend on whatever other simulations ran
  // (or run concurrently on other campaign worker threads) in the process.
  FlowId alloc_flow_id() {
    if (!sim_.sharded()) return ++flow_seq_;
    const auto idx = static_cast<std::size_t>(sim_.current_lane() + 1);
    return ((static_cast<FlowId>(idx) + 1) << 40) | ++lane_flow_seq_[idx];
  }
  Rng fork_rng() { return master_rng_.fork(); }

  // Aggregate drop/delivery counters across all components.
  struct Totals {
    std::int64_t delivered = 0;
    std::int64_t fabric_drops = 0;
    std::int64_t congestion_drops = 0;
    std::int64_t no_route_drops = 0;
    std::int64_t electrical_drops = 0;
  };
  Totals totals() const;

  // ---- packet-conservation taps (chaos::InvariantMonitor) ----
  // Every packet that entered the fabric through a host stack. Fabricated
  // control packets (push-back broadcasts) bypass this tap and are consumed
  // before the delivery counters, so they cancel out of the conservation
  // ledger entirely. Atomic: host stacks run on worker lanes when sharded.
  std::int64_t packets_injected() const {
    return packets_injected_.load(std::memory_order_relaxed);
  }
  // Census of packets parked somewhere in the fabric right now: ToR uplink
  // queues (calendar days + FIFOs) plus host offload storage. At quiescence
  //   injected == delivered + drops + queued_packets()
  // must hold exactly.
  std::int64_t queued_packets() const;

  // Traffic collection (§5.2): per-(src ToR, dst ToR) bytes since last call.
  std::vector<std::vector<std::int64_t>> collect_tm();

  // Telemetry tap: invoked for every Data packet as it reaches its
  // destination host (per-packet delay studies; Appx. B's delay columns).
  // Sharded: fires on the destination ToR's worker lane — the callback must
  // tolerate concurrent invocation (atomics or per-lane accumulation).
  using DeliveryProbe = std::function<void(const Packet&)>;
  void set_delivery_probe(DeliveryProbe probe) {
    delivery_probe_ = std::move(probe);
  }
  const DeliveryProbe& delivery_probe() const { return delivery_probe_; }

 private:
  friend class TorSwitch;
  friend class Host;

  // Self-rescheduling rotation chain: rotation k of node n fires at the
  // node's *clock-local* view of the global boundary k*slice_duration, so a
  // drifting clock physically moves the node's slice windows.
  void arm_rotation(NodeId n, std::int64_t k);
  void beacon_round();
  bool beacon_exchange(NodeId n, bool probe);
  // Deliver a wrong-slice-arrival symptom to arrival_hook_. The hook (the
  // sync watchdog) is control-plane state; when the symptom fires on a
  // worker lane it crosses to the control queue through the barrier.
  void notify_wrong_slice(NodeId n, SimTime at);

  NetworkConfig cfg_;
  optics::Schedule schedule_;
  sim::Simulator sim_;
  Rng master_rng_;
  std::unique_ptr<SyncModel> sync_;
  std::unique_ptr<optics::OpticalFabric> optical_;
  std::unique_ptr<net::ElectricalFabric> electrical_;
  std::vector<std::unique_ptr<TorSwitch>> tors_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::unique_ptr<parallel::ShardedEngine> engine_;
  PacketId packet_seq_ = 0;
  std::atomic<std::int64_t> packets_injected_{0};
  FlowId flow_seq_ = 0;
  // Per-lane id counters (slot 0 = control queue, slot n+1 = lane n).
  std::vector<std::int64_t> lane_packet_seq_;
  std::vector<std::int64_t> lane_flow_seq_;
  bool started_ = false;
  DeliveryProbe delivery_probe_;
  // Derived slice-window margins (see network.cpp).
  SimTime head_guard_ = SimTime::zero();
  SimTime tail_margin_ = SimTime::zero();
  // Per-node safe-mode state (sync watchdog).
  std::vector<SimTime> guard_extra_;
  std::vector<char> quarantined_;
  SymptomHook arrival_hook_;
  telemetry::Counter* beacons_ok_ = nullptr;
  telemetry::Counter* beacons_lost_ = nullptr;
  // Transactional-deploy state: per-node deployment epochs, each node's
  // latest rotation slice, and the mixed-epoch exposure counter.
  void note_rotation_epoch(NodeId n, std::int64_t abs_slice);
  void refresh_epoch_mixed();
  RotationHook rotation_hook_;
  std::vector<std::uint64_t> node_epoch_;
  std::vector<std::int64_t> node_abs_;
  bool epoch_mixed_ = false;
  std::int64_t last_counted_abs_ = 0;
  telemetry::Counter* mixed_epoch_slices_ = nullptr;
};

}  // namespace oo::core
