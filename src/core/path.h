// Routing path abstraction shared by the routing algorithms (producers) and
// the optical controller (consumer): Path<src, dst, ts> from Tab. 1. A path
// lists, hop by hop, the node, its egress port, and the departure slice.
// deploy_routing() compiles paths into time-flow table entries (per-hop or
// source-routed).
#pragma once

#include <vector>

#include "common/ids.h"

namespace oo::core {

struct PathHop {
  NodeId node = kInvalidNode;
  PortId egress = kInvalidPort;   // optical uplink, or kElectricalEgress
  SliceId dep_slice = kAnySlice;  // kAnySlice = forward immediately
};

// Egress pseudo-port for the parallel electrical fabric in hybrid designs.
inline constexpr PortId kElectricalEgress = -2;

struct Path {
  // Matched source; kInvalidNode = any source (the compiled first-hop entry
  // gets a source wildcard — standard for ECMP/WCMP-style tables).
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  // Arrival slice at src this path serves; kAnySlice for TA/static paths.
  SliceId start_slice = kAnySlice;
  std::vector<PathHop> hops;
  double weight = 1.0;  // relative multipath weight (WCMP/UCMP)

  bool valid() const { return !hops.empty() && dst != kInvalidNode; }
};

}  // namespace oo::core
