#include "core/quorum.h"

#include <algorithm>

#include "core/controller.h"
#include "core/network.h"

namespace oo::core {

ControllerQuorum::ControllerQuorum(Network& net, Controller& ctl,
                                   QuorumConfig cfg)
    : net_(net), ctl_(ctl), cfg_(cfg) {
  if (cfg_.replicas < 1) cfg_.replicas = 1;
  reps_.resize(static_cast<std::size_t>(cfg_.replicas));
  match_.assign(static_cast<std::size_t>(cfg_.replicas), 0);
  auto& m = net_.sim().metrics();
  elections_ = &m.counter("quorum.elections");
  term_cell_ = &m.counter("quorum.term");
  log_length_ = &m.counter("quorum.log_length");
  failovers_ = &m.counter("quorum.failovers");
  step_downs_ = &m.counter("quorum.step_downs");
  log_repairs_ = &m.counter("quorum.log_repairs");
  msgs_cut_ = &m.counter("quorum.msgs_cut");
  log_scrubs_ = &m.counter("quorum.log_scrubs");
  ctl_.southbound().set_num_replicas(cfg_.replicas);
  ctl_.attach_quorum(this);
}

ControllerQuorum::~ControllerQuorum() {
  for (auto& r : reps_) {
    r.election_timer.cancel();
    r.heartbeat_timer.cancel();
  }
  ctl_.attach_quorum(nullptr);
}

std::int64_t ControllerQuorum::elections() const { return elections_->value(); }
std::int64_t ControllerQuorum::failovers() const { return failovers_->value(); }
std::int64_t ControllerQuorum::step_downs() const {
  return step_downs_->value();
}

std::int64_t ControllerQuorum::log_scrubs() const {
  return log_scrubs_->value();
}
std::int64_t ControllerQuorum::log_repairs() const {
  return log_repairs_->value();
}
std::int64_t ControllerQuorum::msgs_cut() const { return msgs_cut_->value(); }

void ControllerQuorum::start() {
  if (started_) return;
  started_ = true;
  // Bootstrap leadership: replica 0 leads term 1 from the first event, so
  // pre-start deploys commit without an election and no randomness is
  // drawn until a failure forces one.
  for (auto& r : reps_) r.term = 1;
  acting_ = 0;
  reps_[0].role = Role::Leader;
  term_cell_->set(1);
  if (cfg_.replicas == 1) return;  // no peers: no timers, no messages
  auto& sim = net_.sim();
  reps_[0].heartbeat_timer = sim.schedule_every(
      sim.now() + cfg_.heartbeat, cfg_.heartbeat,
      [this]() { heartbeat_tick(0); }, "quorum.heartbeat");
  for (int r = 1; r < cfg_.replicas; ++r) reset_election_timer(r);
  if (auto* tr = sim.recorder()) tr->leader_elected(sim.now(), 0, 1);
}

bool ControllerQuorum::has_leader() const {
  for (const auto& r : reps_) {
    if (!r.dead && r.role == Role::Leader) return true;
  }
  return false;
}

bool ControllerQuorum::ctl_is_leader() const {
  const Replica& a = reps_[static_cast<std::size_t>(acting_)];
  return started_ && !a.dead && a.role == Role::Leader;
}

int ControllerQuorum::leader() const {
  int best = -1;
  std::uint64_t best_term = 0;
  for (int r = 0; r < cfg_.replicas; ++r) {
    const Replica& rep = reps_[static_cast<std::size_t>(r)];
    if (!rep.dead && rep.role == Role::Leader && rep.term > best_term) {
      best = r;
      best_term = rep.term;
    }
  }
  return best;
}

bool ControllerQuorum::send_msg(int from, int to,
                                std::function<void()> deliver,
                                const char* tag) {
  const Replica& src = reps_[static_cast<std::size_t>(from)];
  const Replica& dst = reps_[static_cast<std::size_t>(to)];
  if (src.dead) return false;
  if (src.cut || dst.cut || dst.dead) {
    msgs_cut_->inc();
    return false;
  }
  return ctl_.southbound().send_replica(to, std::move(deliver), tag) > 0;
}

void ControllerQuorum::reset_election_timer(int r) {
  Replica& rep = reps_[static_cast<std::size_t>(r)];
  rep.election_timer.cancel();
  if (rep.rng == nullptr) {
    // Each replica randomizes its own timeouts from a dedicated stream, so
    // the election order is a pure function of the network seed.
    rep.rng = std::make_unique<Rng>(derive_rng(
        net_.config().seed, 100 + r, "quorum.election"));
  }
  const double f = rep.rng->uniform01();
  const SimTime t = cfg_.election_timeout +
                    SimTime::nanos(static_cast<std::int64_t>(
                        f * static_cast<double>(cfg_.election_timeout.ns())));
  rep.election_timer = net_.sim().schedule_in(
      t, [this, r]() { begin_election(r); }, "quorum.election");
}

void ControllerQuorum::begin_election(int r) {
  Replica& rep = reps_[static_cast<std::size_t>(r)];
  if (rep.dead || rep.role == Role::Leader) return;
  scrub(r);  // never stand for election on a checksum-flagged record
  rep.role = Role::Candidate;
  ++rep.term;
  rep.voted_for = r;
  rep.votes = 1;
  elections_->inc();
  auto& sim = net_.sim();
  if (auto* tr = sim.recorder()) {
    tr->election_start(sim.now(), r, static_cast<std::int64_t>(rep.term));
  }
  reset_election_timer(r);  // retry with a fresh randomized timeout
  if (rep.votes >= majority()) {
    become_leader(r);
    return;
  }
  const std::uint64_t term = rep.term;
  const std::uint64_t last_term = rep.log.empty() ? 0 : rep.log.back().term;
  const auto len = static_cast<std::int64_t>(rep.log.size());
  for (int p = 0; p < cfg_.replicas; ++p) {
    if (p == r) continue;
    send_msg(r, p,
             [this, p, r, term, last_term, len]() {
               on_request_vote(p, r, term, last_term, len);
             },
             "quorum.vote_req");
  }
}

void ControllerQuorum::on_request_vote(int r, int from, std::uint64_t term,
                                       std::uint64_t last_term,
                                       std::int64_t len) {
  Replica& rep = reps_[static_cast<std::size_t>(r)];
  if (rep.dead) return;
  scrub(r);  // compare up-to-dateness against the scrubbed log
  if (term < rep.term) {
    // The candidate is behind: tell it so it steps back to follower.
    const std::uint64_t my_term = rep.term;
    send_msg(r, from,
             [this, from, my_term]() { note_higher_term(from, my_term); },
             "quorum.term_note");
    return;
  }
  if (term > rep.term) {
    if (rep.role == Role::Leader) {
      step_down(r, term);
    } else {
      rep.term = term;
      rep.voted_for = -1;
      rep.role = Role::Follower;
    }
  }
  // Raft's up-to-dateness gate: never elect a candidate whose log misses a
  // record some majority already holds.
  const std::uint64_t my_last = rep.log.empty() ? 0 : rep.log.back().term;
  const auto my_len = static_cast<std::int64_t>(rep.log.size());
  const bool up_to_date =
      last_term > my_last || (last_term == my_last && len >= my_len);
  if ((rep.voted_for == -1 || rep.voted_for == from) && up_to_date) {
    rep.voted_for = from;
    reset_election_timer(r);
    const std::uint64_t t = rep.term;
    send_msg(r, from, [this, from, r, t]() { on_vote(from, r, t); },
             "quorum.vote");
  }
}

void ControllerQuorum::on_vote(int r, int from, std::uint64_t term) {
  Replica& rep = reps_[static_cast<std::size_t>(r)];
  if (rep.dead || rep.role != Role::Candidate || term != rep.term) return;
  if (++rep.votes >= majority()) become_leader(r);
  (void)from;
}

void ControllerQuorum::become_leader(int r) {
  Replica& rep = reps_[static_cast<std::size_t>(r)];
  rep.role = Role::Leader;
  rep.election_timer.cancel();
  match_.assign(static_cast<std::size_t>(cfg_.replicas), 0);
  match_[static_cast<std::size_t>(r)] =
      static_cast<std::int64_t>(rep.log.size());
  pending_.clear();  // old leadership's unacked entries: callbacks dropped
  term_cell_->set(static_cast<std::int64_t>(rep.term));
  auto& sim = net_.sim();
  if (auto* tr = sim.recorder()) {
    tr->leader_elected(sim.now(), r, static_cast<std::int64_t>(rep.term));
  }
  rep.heartbeat_timer.cancel();
  rep.heartbeat_timer = sim.schedule_every(
      sim.now() + cfg_.heartbeat, cfg_.heartbeat,
      [this, r]() { heartbeat_tick(r); }, "quorum.heartbeat");
  // Immediate sync round so followers learn the new term (and repair their
  // logs) before the first heartbeat interval elapses.
  heartbeat_tick(r);
  if (r != acting_) {
    takeover(r);
  } else if (ctl_.crashed()) {
    // The acting replica won its own re-election after a crash: same
    // engine, but the resync must still run — nobody else will call
    // restart() for it.
    ctl_.quorum_takeover(rep.term);
  }
}

void ControllerQuorum::takeover(int r) {
  acting_ = r;
  failovers_->inc();
  auto& sim = net_.sim();
  if (auto* tr = sim.recorder()) {
    tr->quorum_failover(
        sim.now(),
        static_cast<std::int64_t>(reps_[static_cast<std::size_t>(r)].term),
        static_cast<std::int64_t>(max_logged_epoch()));
  }
  log_length_->set(log_length());
  // Re-point the controller engine at the new leader and resync every
  // in-flight epoch from the replicated log + per-ToR reports.
  ctl_.quorum_takeover(reps_[static_cast<std::size_t>(r)].term);
}

void ControllerQuorum::step_down(int r, std::uint64_t higher_term) {
  Replica& rep = reps_[static_cast<std::size_t>(r)];
  rep.heartbeat_timer.cancel();
  rep.role = Role::Follower;
  rep.term = higher_term;
  rep.voted_for = -1;
  step_downs_->inc();
  auto& sim = net_.sim();
  if (auto* tr = sim.recorder()) {
    tr->quorum_step_down(sim.now(), r,
                         static_cast<std::int64_t>(higher_term));
  }
  reset_election_timer(r);
}

void ControllerQuorum::note_higher_term(int r, std::uint64_t term) {
  Replica& rep = reps_[static_cast<std::size_t>(r)];
  if (rep.dead || term <= rep.term) return;
  if (rep.role == Role::Leader) {
    step_down(r, term);
  } else {
    rep.term = term;
    rep.voted_for = -1;
    rep.role = Role::Follower;
  }
}

void ControllerQuorum::heartbeat_tick(int r) {
  Replica& rep = reps_[static_cast<std::size_t>(r)];
  if (rep.dead || rep.role != Role::Leader) return;
  scrub(r);  // a leader shipping a flagged record steps down instead
  if (rep.role != Role::Leader) return;
  for (int p = 0; p < cfg_.replicas; ++p) {
    if (p != r) send_sync(r, p);
  }
}

void ControllerQuorum::send_sync(int from, int to) {
  const Replica& rep = reps_[static_cast<std::size_t>(from)];
  // Full-log sync: the payload is the leader's whole log (small — one
  // record per transaction phase), so a lost or divergent suffix heals in
  // one round instead of Raft's back-off walk.
  std::vector<LogRec> log = rep.log;
  const std::uint64_t term = rep.term;
  const std::int64_t ci = rep.commit_index;
  send_msg(from, to,
           [this, to, from, term, log = std::move(log), ci]() mutable {
             on_sync(to, from, term, std::move(log), ci);
           },
           "quorum.sync");
}

void ControllerQuorum::on_sync(int r, int from, std::uint64_t term,
                               std::vector<LogRec> log,
                               std::int64_t commit_index) {
  Replica& rep = reps_[static_cast<std::size_t>(r)];
  if (rep.dead) return;
  if (term < rep.term) {
    // A deposed leader reconnecting after a partition: make it observe the
    // higher term and step down.
    const std::uint64_t my_term = rep.term;
    send_msg(r, from,
             [this, from, my_term]() { note_higher_term(from, my_term); },
             "quorum.term_note");
    return;
  }
  if (term > rep.term || rep.role == Role::Candidate) {
    if (rep.role == Role::Leader) {
      step_down(r, term);
    } else {
      rep.term = term;
      rep.voted_for = -1;
      rep.role = Role::Follower;
    }
  }
  reset_election_timer(r);
  const bool prefix =
      rep.log.size() <= log.size() &&
      std::equal(rep.log.begin(), rep.log.end(), log.begin());
  if (!prefix) log_repairs_->inc();  // divergent tail overwritten
  if (rep.log != log) rep.log = std::move(log);
  rep.corrupt_idx = -1;  // full-log rewrite: the flagged record is gone
  rep.commit_index = std::min(
      commit_index, static_cast<std::int64_t>(rep.log.size()) - 1);
  const auto len = static_cast<std::int64_t>(rep.log.size());
  const std::uint64_t t = rep.term;
  send_msg(r, from, [this, from, r, t, len]() { on_sync_ack(from, r, t, len); },
           "quorum.sync_ack");
}

void ControllerQuorum::on_sync_ack(int r, int from, std::uint64_t term,
                                   std::int64_t len) {
  Replica& rep = reps_[static_cast<std::size_t>(r)];
  if (rep.dead) return;
  if (term > rep.term) {
    note_higher_term(r, term);
    return;
  }
  if (rep.role != Role::Leader || term != rep.term) return;
  auto& m = match_[static_cast<std::size_t>(from)];
  m = std::max(m, len);
  if (r == acting_) advance_commit(r);
}

void ControllerQuorum::advance_commit(int leader) {
  Replica& rep = reps_[static_cast<std::size_t>(leader)];
  // Collect majority-reached callbacks before firing any: a callback (the
  // controller's commit fan-out) can issue a follow-up deploy that appends
  // to pending_, which would invalidate an in-flight iteration.
  std::vector<std::function<void()>> ready;
  for (std::size_t i = 0; i < pending_.size();) {
    Pending& p = pending_[i];
    for (int f = 0; f < cfg_.replicas; ++f) {
      if (!p.acked[static_cast<std::size_t>(f)] &&
          match_[static_cast<std::size_t>(f)] > p.index) {
        p.acked[static_cast<std::size_t>(f)] = 1;
        ++p.acks;
      }
    }
    if (p.acks >= majority()) {
      rep.commit_index = std::max(rep.commit_index, p.index);
      ready.push_back(std::move(p.cb));
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  for (auto& cb : ready) {
    if (cb) cb();
  }
}

void ControllerQuorum::replicate(RecKind kind, std::uint64_t epoch,
                                 std::function<void()> on_majority) {
  Replica& rep = reps_[static_cast<std::size_t>(acting_)];
  if (rep.dead || rep.role != Role::Leader) return;  // callback dropped
  scrub(acting_);
  if (rep.role != Role::Leader) return;  // scrub demoted it: dropped
  rep.log.push_back({rep.term, epoch, kind});
  const auto idx = static_cast<std::int64_t>(rep.log.size()) - 1;
  log_length_->set(static_cast<std::int64_t>(rep.log.size()));
  auto& sim = net_.sim();
  if (auto* tr = sim.recorder()) {
    tr->quorum_replicate(sim.now(), static_cast<std::int64_t>(epoch), idx);
  }
  match_[static_cast<std::size_t>(acting_)] =
      static_cast<std::int64_t>(rep.log.size());
  if (majority() == 1) {
    rep.commit_index = idx;
    if (on_majority) on_majority();
    return;
  }
  Pending p;
  p.index = idx;
  p.acks = 1;  // self
  p.acked.assign(static_cast<std::size_t>(cfg_.replicas), 0);
  p.acked[static_cast<std::size_t>(acting_)] = 1;
  p.cb = std::move(on_majority);
  pending_.push_back(std::move(p));
  for (int f = 0; f < cfg_.replicas; ++f) {
    if (f != acting_) send_sync(acting_, f);
  }
}

bool ControllerQuorum::log_commits(std::uint64_t epoch) const {
  const Replica& rep = reps_[static_cast<std::size_t>(acting_)];
  for (const LogRec& rec : rep.log) {
    if (rec.kind == RecKind::Commit && rec.epoch == epoch) return true;
  }
  return false;
}

std::uint64_t ControllerQuorum::max_logged_epoch() const {
  const Replica& rep = reps_[static_cast<std::size_t>(acting_)];
  std::uint64_t m = 0;
  for (const LogRec& rec : rep.log) m = std::max(m, rec.epoch);
  return m;
}

int ControllerQuorum::kill_leader() {
  const int l = leader();
  if (l >= 0) kill_replica(l);
  return l;
}

void ControllerQuorum::kill_replica(int r) {
  Replica& rep = reps_[static_cast<std::size_t>(r)];
  if (rep.dead) return;
  rep.dead = true;
  rep.role = Role::Follower;  // the process is gone; leadership dies with it
  rep.votes = 0;
  rep.election_timer.cancel();
  rep.heartbeat_timer.cancel();
  if (r == acting_) {
    pending_.clear();  // unacked commit records: their callbacks die here
    ctl_.crash();      // the engine's process was the leader's
  }
}

void ControllerQuorum::revive_replica(int r) {
  Replica& rep = reps_[static_cast<std::size_t>(r)];
  if (!rep.dead) return;
  rep.dead = false;
  rep.role = Role::Follower;
  // The log and (term, voted_for) are persistent state in Raft and survive
  // the restart; volatile election state re-arms from the timer.
  reset_election_timer(r);
}

void ControllerQuorum::set_partitioned(int r, bool cut) {
  reps_[static_cast<std::size_t>(r)].cut = cut;
}

void ControllerQuorum::diverge_log(int r) {
  Replica& rep = reps_[static_cast<std::size_t>(r)];
  if (rep.log.empty()) {
    rep.log.push_back({rep.term, 1u << 20, RecKind::Abort});
  } else {
    rep.log.back().epoch += 1u << 20;  // corrupt the tail record
  }
  const auto idx = static_cast<std::int64_t>(rep.log.size()) - 1;
  rep.commit_index = std::min(rep.commit_index, idx - 1);
  // Checksum model: the record is flagged, and scrub() truncates it before
  // this replica can ship its log or stand for election on it. Until then
  // a leader's full-log sync may overwrite it in place (the follower
  // repair path the chaos drills count via log_repairs).
  if (rep.corrupt_idx < 0) rep.corrupt_idx = idx;
  else rep.corrupt_idx = std::min(rep.corrupt_idx, idx);
}

void ControllerQuorum::scrub(int r) {
  Replica& rep = reps_[static_cast<std::size_t>(r)];
  if (rep.corrupt_idx < 0) return;
  rep.log.resize(static_cast<std::size_t>(rep.corrupt_idx));
  rep.commit_index = std::min(
      rep.commit_index, static_cast<std::int64_t>(rep.log.size()) - 1);
  rep.corrupt_idx = -1;
  log_scrubs_->inc();
  if (rep.role == Role::Leader) {
    // A leader that cannot trust its own store must not lead: step down at
    // the same term and let a replica holding a clean copy win the next
    // election (committed records live on the majority by definition).
    step_down(r, rep.term);
  }
}

void ControllerQuorum::force_log(int r, std::vector<LogRec> log) {
  Replica& rep = reps_[static_cast<std::size_t>(r)];
  rep.log = std::move(log);
  rep.commit_index =
      std::min(rep.commit_index, static_cast<std::int64_t>(rep.log.size()) - 1);
}

void ControllerQuorum::on_ctl_restart() {
  // Only a replica that still leads may push resync state southbound; a
  // replica restarting mid-election waits for the winner's takeover.
  if (ctl_is_leader()) ctl_.quorum_takeover(term());
}

}  // namespace oo::core
