// Replicated controller quorum: N controller replicas, a term-based leader
// election, and a replicated epoch log — the control plane's answer to the
// single point of failure the transactional controller (core/controller.h)
// still was. The design is a deliberately small Raft subset, tuned for a
// deterministic discrete-event model:
//
//   - every replica<->replica message (votes, log syncs, acks) crosses the
//     same modeled SouthboundChannel as controller<->ToR traffic, so
//     elections and replication degrade under the identical latency /
//     loss / duplication regime;
//   - election timeouts are randomized per replica from its own
//     derive_rng stream, so a seed fixes the whole election timeline;
//   - log replication is full-log sync on every heartbeat/append (logs
//     hold one small record per prepare/commit/abort, so shipping the
//     suffix wholesale replaces Raft's per-entry matching while keeping
//     its guarantee: a divergent follower converges on the next sync);
//   - votes are gated on log up-to-dateness (last record term, length),
//     which preserves the property failover correctness rests on: any
//     majority-acknowledged Commit record is present in every electable
//     candidate's log.
//
// The Controller object is the *engine* of whichever replica currently
// leads ("acting" replica). The quorum starts with replica 0 as the
// bootstrap leader of term 1 — pre-start deploys work immediately, and no
// randomness is drawn until a failure forces a real election. On failover
// the quorum re-points the engine at the new leader and drives a
// term-aware resync: every in-flight epoch is completed or presumed-
// aborted from the replicated log plus per-ToR reports, and every install
// agent's (term, epoch) watermark is raised so a deposed leader's delayed
// messages fence as stale-term rejections.
//
// A quorum is only constructed for controller_replicas > 1; a replicas=1
// run never touches this file and stays bit-identical to the
// single-controller control plane.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "eventsim/simulator.h"
#include "telemetry/metrics.h"

namespace oo::core {

class Network;
class Controller;

struct QuorumConfig {
  int replicas = 3;
  // Base election timeout; each replica arms its timer at
  // base + U(0, base) from its own derived stream (Raft's randomized
  // timeout, made replayable).
  SimTime election_timeout = SimTime::micros(500);
  // Leader heartbeat / log-sync cadence.
  SimTime heartbeat = SimTime::micros(100);
};

class ControllerQuorum {
 public:
  enum class Role : std::uint8_t { Follower, Candidate, Leader };
  // Replicated epoch-log record kinds: one record per transaction phase.
  enum class RecKind : std::uint8_t { Prepare, Commit, Abort };

  struct LogRec {
    std::uint64_t term = 0;
    std::uint64_t epoch = 0;
    RecKind kind = RecKind::Prepare;
    bool operator==(const LogRec&) const = default;
  };

  ControllerQuorum(Network& net, Controller& ctl, QuorumConfig cfg);
  ~ControllerQuorum();

  // Bootstrap: replica 0 leads term 1, followers arm election timers.
  void start();
  bool started() const { return started_; }

  int replicas() const { return cfg_.replicas; }
  int majority() const { return cfg_.replicas / 2 + 1; }
  // More than one replica => commit records need a majority ack before the
  // southbound commit goes out.
  bool needs_majority() const { return cfg_.replicas > 1; }

  // The acting replica: the one whose engine the Controller currently is.
  int acting() const { return acting_; }
  // Term of the acting replica — the term every southbound message is
  // stamped with.
  std::uint64_t term() const { return reps_[acting_].term; }
  // True when any live replica currently believes it leads (split-brain
  // can briefly make this true for two replicas at different terms).
  bool has_leader() const;
  // True when the Controller's replica is a live leader — the gate on
  // accepting deploys.
  bool ctl_is_leader() const;
  // Highest-term live leader (-1 while an election is in progress).
  int leader() const;

  Role role(int r) const { return reps_[r].role; }
  std::uint64_t replica_term(int r) const { return reps_[r].term; }
  bool replica_dead(int r) const { return reps_[r].dead; }
  bool replica_partitioned(int r) const { return reps_[r].cut; }
  const std::vector<LogRec>& log(int r) const { return reps_[r].log; }
  // Highest log index replica r knows to be majority-held (-1 = none).
  // Committed prefixes must agree across replicas — the safety property
  // the invariant monitor checks every round.
  std::int64_t commit_index(int r) const { return reps_[r].commit_index; }
  std::int64_t log_length() const {
    return static_cast<std::int64_t>(reps_[acting_].log.size());
  }

  // Append a record to the acting leader's log and replicate it.
  // `on_majority` fires once a majority of replicas hold the record
  // (inline for replicas=1 or an ideal channel); it is dropped — never
  // fired — if leadership is lost first. A nullptr callback makes the
  // append fire-and-forget (prepare/abort records).
  void replicate(RecKind kind, std::uint64_t epoch,
                 std::function<void()> on_majority);
  // Does the acting replica's log record a Commit decision for `epoch`?
  // The failover/restart resync completes a partial commit only when this
  // holds; otherwise the epoch is presumed aborted.
  bool log_commits(std::uint64_t epoch) const;
  std::uint64_t max_logged_epoch() const;

  // ---- fault hooks (services::FaultPlan) ----
  // Kill the current leader (highest-term live one). Returns the replica
  // killed, -1 if no leader was alive. The caller owns the revive.
  int kill_leader();
  void kill_replica(int r);
  void revive_replica(int r);
  // Partition replica r off the replica<->replica mesh (ToR legs are
  // unaffected — that asymmetry is exactly what creates split-brain).
  void set_partitioned(int r, bool cut);
  // Corrupt replica r's log tail (the log_divergence fault); the next sync
  // from a leader detects and repairs it.
  void diverge_log(int r);
  // Test hook: install a crafted log (regression tests for term-aware
  // restart resync).
  void force_log(int r, std::vector<LogRec> log);

  // Called by Controller::restart() when the engine's process comes back
  // while the quorum is live: resync under the current term if the acting
  // replica still leads; otherwise do nothing — the elected leader's
  // takeover owns the resync.
  void on_ctl_restart();

  // ---- telemetry (registry cells, registered at construction) ----
  std::int64_t elections() const;
  std::int64_t failovers() const;
  std::int64_t step_downs() const;
  std::int64_t log_repairs() const;
  std::int64_t msgs_cut() const;
  // Corrupted-tail records detected (checksum model) and truncated before
  // the replica could ship or stand for election on them.
  std::int64_t log_scrubs() const;

 private:
  struct Replica {
    Role role = Role::Follower;
    std::uint64_t term = 0;
    int voted_for = -1;
    int votes = 0;
    std::vector<LogRec> log;
    std::int64_t commit_index = -1;  // highest majority-held log index
    bool dead = false;
    bool cut = false;  // partitioned off the replica mesh
    // First checksum-flagged log index (diverge_log fault), -1 = clean.
    // Scrubbed (truncated) before the replica ships its log or stands for
    // election, so silent corruption never propagates into a committed
    // prefix; a full-log sync from the leader also clears it.
    std::int64_t corrupt_idx = -1;
    sim::EventHandle election_timer;
    sim::EventHandle heartbeat_timer;
    std::unique_ptr<Rng> rng;  // election-timeout randomization
  };
  // A log entry the acting leader is still gathering acks for.
  struct Pending {
    std::int64_t index = 0;
    int acks = 0;
    std::vector<char> acked;
    std::function<void()> cb;
  };

  // One replica->replica message over the modeled channel. Dropped (and
  // counted) when either endpoint is partitioned or the target is dead.
  bool send_msg(int from, int to, std::function<void()> deliver,
                const char* tag);
  void reset_election_timer(int r);
  void begin_election(int r);
  // Checksum scan before the log leaves the replica: truncate at
  // corrupt_idx (a leader caught shipping a flagged record steps down so a
  // clean replica can lead; committed records survive on the majority).
  void scrub(int r);
  void become_leader(int r);
  void step_down(int r, std::uint64_t higher_term);
  void heartbeat_tick(int r);
  void send_sync(int from, int to);
  void on_sync(int r, int from, std::uint64_t term, std::vector<LogRec> log,
               std::int64_t commit_index);
  void on_sync_ack(int r, int from, std::uint64_t term, std::int64_t len);
  void on_request_vote(int r, int from, std::uint64_t term,
                       std::uint64_t last_term, std::int64_t len);
  void on_vote(int r, int from, std::uint64_t term);
  void note_higher_term(int r, std::uint64_t term);
  void advance_commit(int leader);
  void takeover(int r);

  Network& net_;
  Controller& ctl_;
  QuorumConfig cfg_;
  std::vector<Replica> reps_;
  std::vector<std::int64_t> match_;  // acting leader's per-replica ack len
  std::vector<Pending> pending_;
  int acting_ = 0;
  bool started_ = false;
  telemetry::Counter* elections_;
  telemetry::Counter* term_cell_;
  telemetry::Counter* log_length_;
  telemetry::Counter* failovers_;
  telemetry::Counter* step_downs_;
  telemetry::Counter* log_repairs_;
  telemetry::Counter* msgs_cut_;
  telemetry::Counter* log_scrubs_;
};

}  // namespace oo::core
