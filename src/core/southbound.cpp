#include "core/southbound.h"

#include <algorithm>

#include "core/network.h"

namespace oo::core {

SouthboundChannel::SouthboundChannel(Network& net)
    : net_(net),
      per_node_(static_cast<std::size_t>(net.num_tors())) {}

void SouthboundChannel::configure(const SouthboundConfig& cfg) {
  cfg_ = cfg;
  ideal_base_ = cfg_.latency == SimTime::zero() && cfg_.loss_prob <= 0.0 &&
                cfg_.dup_prob <= 0.0;
}

SouthboundChannel::Override& SouthboundChannel::slot(NodeId node) {
  if (node == kInvalidNode) return all_;
  return per_node_[static_cast<std::size_t>(node)];
}

void SouthboundChannel::note_override_change(bool had, bool has) {
  if (had && !has) --overrides_active_;
  if (!had && has) ++overrides_active_;
}

void SouthboundChannel::set_node_loss(NodeId node, double prob) {
  Override& o = slot(node);
  const bool had = o.any();
  o.loss = std::clamp(prob, 0.0, 1.0);
  note_override_change(had, o.any());
}

void SouthboundChannel::set_node_delay(NodeId node, SimTime extra) {
  Override& o = slot(node);
  const bool had = o.any();
  o.delay = extra < SimTime::zero() ? SimTime::zero() : extra;
  note_override_change(had, o.any());
}

void SouthboundChannel::set_node_dup(NodeId node, double prob) {
  Override& o = slot(node);
  const bool had = o.any();
  o.dup = std::clamp(prob, 0.0, 1.0);
  note_override_change(had, o.any());
}

Rng& SouthboundChannel::rng() {
  if (!rng_) {
    rng_ = std::make_unique<Rng>(
        derive_rng(net_.config().seed, 0, "southbound"));
  }
  return *rng_;
}

void SouthboundChannel::set_num_replicas(int n) {
  per_replica_.resize(static_cast<std::size_t>(std::max(n, 0)));
}

SouthboundChannel::Override& SouthboundChannel::replica_slot(int replica) {
  if (static_cast<std::size_t>(replica) >= per_replica_.size()) {
    per_replica_.resize(static_cast<std::size_t>(replica) + 1);
  }
  return per_replica_[static_cast<std::size_t>(replica)];
}

void SouthboundChannel::set_replica_loss(int replica, double prob) {
  Override& o = replica_slot(replica);
  const bool had = o.any();
  o.loss = std::clamp(prob, 0.0, 1.0);
  if (had && !o.any()) --rep_overrides_active_;
  if (!had && o.any()) ++rep_overrides_active_;
}

void SouthboundChannel::set_replica_delay(int replica, SimTime extra) {
  Override& o = replica_slot(replica);
  const bool had = o.any();
  o.delay = extra < SimTime::zero() ? SimTime::zero() : extra;
  if (had && !o.any()) --rep_overrides_active_;
  if (!had && o.any()) ++rep_overrides_active_;
}

void SouthboundChannel::set_replica_dup(int replica, double prob) {
  Override& o = replica_slot(replica);
  const bool had = o.any();
  o.dup = std::clamp(prob, 0.0, 1.0);
  if (had && !o.any()) --rep_overrides_active_;
  if (!had && o.any()) ++rep_overrides_active_;
}

Rng& SouthboundChannel::replica_rng() {
  if (!rep_rng_) {
    rep_rng_ = std::make_unique<Rng>(
        derive_rng(net_.config().seed, 1, "southbound.replica"));
  }
  return *rep_rng_;
}

int SouthboundChannel::send_replica(int to, std::function<void()> deliver,
                                    const char* tag) {
  ++rep_sent_;
  const Override& o = replica_slot(to);
  const double loss = std::max(cfg_.loss_prob, o.loss);
  const double dup = std::max(cfg_.dup_prob, o.dup);
  const SimTime delay = cfg_.latency + o.delay;
  if (loss <= 0.0 && dup <= 0.0 && delay == SimTime::zero()) {
    deliver();
    return 1;
  }
  if (loss > 0.0 && replica_rng().uniform01() < loss) {
    ++rep_lost_;
    return 0;
  }
  int copies = 1;
  if (dup > 0.0 && replica_rng().uniform01() < dup) {
    copies = 2;
    ++rep_duped_;
  }
  auto& sim = net_.sim();
  for (int i = 0; i < copies; ++i) {
    const SimTime d = delay + (i > 0 ? cfg_.dup_extra : SimTime::zero());
    sim.schedule_in(d, i + 1 < copies ? deliver : std::move(deliver), tag);
  }
  return copies;
}

int SouthboundChannel::send(NodeId node, std::function<void()> deliver,
                            const char* tag) {
  ++sent_;
  const Override& o = slot(node);
  const double loss = std::max({cfg_.loss_prob, all_.loss, o.loss});
  const double dup = std::max({cfg_.dup_prob, all_.dup, o.dup});
  const SimTime delay =
      cfg_.latency + std::max(all_.delay, o.delay);
  if (loss <= 0.0 && dup <= 0.0 && delay == SimTime::zero()) {
    deliver();
    return 1;
  }
  // Draw order is fixed (loss first, then dup, each only when armed) so a
  // replay with the same plan consumes the identical stream.
  if (loss > 0.0 && rng().uniform01() < loss) {
    ++lost_;
    return 0;
  }
  int copies = 1;
  if (dup > 0.0 && rng().uniform01() < dup) {
    copies = 2;
    ++duped_;
  }
  auto& sim = net_.sim();
  for (int i = 0; i < copies; ++i) {
    const SimTime d = delay + (i > 0 ? cfg_.dup_extra : SimTime::zero());
    sim.schedule_in(d, i + 1 < copies ? deliver : std::move(deliver), tag);
  }
  return copies;
}

}  // namespace oo::core
