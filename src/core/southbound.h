// Southbound control channel: the modeled message path between the
// controller and each ToR's install agent (§4.1's deploy arrow made
// fallible). Every install/ack/commit/abort message traverses it and can be
// delayed, lost, or duplicated — per the base configuration or a per-node
// fault override (services::FaultPlan's sb_msg_* kinds). An *ideal* channel
// (zero latency, no loss/dup, no overrides) delivers inline, synchronously,
// consuming no randomness — so pre-transactional callers that deploy outside
// the event loop observe the exact legacy semantics.
//
// Determinism: the channel's rng is derived lazily from the network seed via
// derive_seed (its own stream), not forked from the network's master rng —
// attaching or exercising the channel never perturbs the fork order other
// components rely on, and an untouched channel draws nothing at all.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"

namespace oo::core {

class Network;

struct SouthboundConfig {
  // One-way per-message latency controller <-> ToR.
  SimTime latency = SimTime::zero();
  // Per-message loss / duplication probabilities (fabric-wide base; per-node
  // fault overrides combine by max).
  double loss_prob = 0.0;
  double dup_prob = 0.0;
  // Extra delay of a duplicated copy beyond the original's delivery.
  SimTime dup_extra = SimTime::micros(20);
};

class SouthboundChannel {
 public:
  explicit SouthboundChannel(Network& net);

  void configure(const SouthboundConfig& cfg);
  const SouthboundConfig& config() const { return cfg_; }

  // True when every message would be delivered instantly and reliably —
  // the inline fast path. Per-node overrides make the channel non-ideal
  // even with a zero base config.
  bool ideal() const { return ideal_base_ && overrides_active_ == 0; }

  // Per-node fault overrides (node == kInvalidNode applies to every node).
  // Probability/delay 0 clears the override.
  void set_node_loss(NodeId node, double prob);
  void set_node_delay(NodeId node, SimTime extra);
  void set_node_dup(NodeId node, double prob);

  // Sends one message on the (node <-> controller) leg: `deliver` runs once
  // per surviving copy after the modeled latency. Returns the number of
  // copies scheduled (0 = lost). Ideal messages deliver inline.
  int send(NodeId node, std::function<void()> deliver, const char* tag);

  // ---- replica <-> replica leg (controller quorum) ----
  // Sizes the per-replica override table. Replica links share the base
  // config (latency/loss/dup) with the ToR leg but have their own override
  // slots and their own rng stream, so attaching a quorum never perturbs
  // the ToR leg's draws.
  void set_num_replicas(int n);
  void set_replica_loss(int replica, double prob);
  void set_replica_delay(int replica, SimTime extra);
  void set_replica_dup(int replica, double prob);
  // Sends one message on the (replica <-> replica) mesh toward `to`.
  // Semantics mirror send(): returns copies scheduled, inline when ideal.
  int send_replica(int to, std::function<void()> deliver, const char* tag);

  std::int64_t msgs_sent() const { return sent_; }
  std::int64_t msgs_lost() const { return lost_; }
  std::int64_t msgs_duped() const { return duped_; }
  std::int64_t replica_msgs_sent() const { return rep_sent_; }
  std::int64_t replica_msgs_lost() const { return rep_lost_; }

 private:
  struct Override {
    double loss = 0.0;
    double dup = 0.0;
    SimTime delay = SimTime::zero();
    bool any() const {
      return loss > 0.0 || dup > 0.0 || delay > SimTime::zero();
    }
  };

  Override& slot(NodeId node);
  Override& replica_slot(int replica);
  void note_override_change(bool had, bool has);
  Rng& rng();
  Rng& replica_rng();

  Network& net_;
  SouthboundConfig cfg_;
  bool ideal_base_ = true;
  int overrides_active_ = 0;  // nodes (incl. the wildcard) with a live override
  Override all_;              // kInvalidNode wildcard
  std::vector<Override> per_node_;
  std::unique_ptr<Rng> rng_;  // lazily created on the first non-ideal send
  std::int64_t sent_ = 0;
  std::int64_t lost_ = 0;
  std::int64_t duped_ = 0;
  // Replica mesh state: separate override table, activity count, and rng so
  // the ToR leg's behavior (and stream) is independent of the quorum's.
  int rep_overrides_active_ = 0;
  std::vector<Override> per_replica_;
  std::unique_ptr<Rng> rep_rng_;
  std::int64_t rep_sent_ = 0;
  std::int64_t rep_lost_ = 0;
  std::int64_t rep_duped_ = 0;
};

}  // namespace oo::core
