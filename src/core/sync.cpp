#include "core/sync.h"

namespace oo::core {

SyncModel::SyncModel(int num_nodes, SimTime error_bound, Rng rng)
    : bound_(error_bound) {
  offsets_.reserve(static_cast<std::size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    offsets_.push_back(
        SimTime::nanos(rng.uniform_i64(-bound_.ns(), bound_.ns())));
  }
}

}  // namespace oo::core
