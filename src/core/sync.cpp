#include "core/sync.h"

#include <cassert>
#include <cmath>

namespace oo::core {

ClockModel::ClockModel(int num_nodes, SimTime error_bound, Rng rng)
    : bound_(error_bound) {
  nodes_.reserve(static_cast<std::size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    // The same draw order as the historical static model, so seeded runs
    // with zero drift keep their exact offsets.
    const SimTime residual =
        SimTime::nanos(rng.uniform_i64(-bound_.ns(), bound_.ns()));
    NodeClock c;
    c.residual = residual;
    c.offset_ref = residual;
    nodes_.push_back(c);
  }
  // Drawn after the offsets: does not disturb the residuals' stream.
  jitter_salt_ = rng.next_u64();
}

std::size_t ClockModel::idx(NodeId node) const {
  assert(node >= 0 && node < num_nodes() && "ClockModel: NodeId out of range");
  if (node < 0) return 0;
  const auto i = static_cast<std::size_t>(node);
  return i < nodes_.size() ? i : nodes_.size() - 1;
}

SimTime ClockModel::drift_term(const NodeClock& c, SimTime now) const {
  if (c.drift_ppm == 0.0 || now <= c.ref) return SimTime::zero();
  const double ns = c.drift_ppm * 1e-6 * static_cast<double>((now - c.ref).ns());
  return SimTime::nanos(std::llround(ns));
}

SimTime ClockModel::jitter_term(const NodeClock& c, NodeId node,
                                SimTime now) const {
  if (c.jitter_amp <= SimTime::zero()) return SimTime::zero();
  // Stateless hash over (salt, node, ~1 us time bucket): deterministic,
  // piecewise-constant, and free of Rng stream consumption — reads stay
  // pure no matter how often telemetry or the watchdog samples the clock.
  const std::uint64_t bucket =
      static_cast<std::uint64_t>(now.ns()) >> 10;
  const std::uint64_t key = jitter_salt_ ^
                            (static_cast<std::uint64_t>(node) *
                             0x9e3779b97f4a7c15ULL) ^
                            (bucket * 0xbf58476d1ce4e5b9ULL);
  const std::int64_t span = 2 * c.jitter_amp.ns() + 1;
  const auto h = static_cast<std::int64_t>(
      hash_mix(key) % static_cast<std::uint64_t>(span));
  return SimTime::nanos(h - c.jitter_amp.ns());
}

SimTime ClockModel::offset(NodeId node, SimTime now) const {
  if (nodes_.empty()) return SimTime::zero();
  const NodeClock& c = nodes_[idx(node)];
  return c.offset_ref + drift_term(c, now) + jitter_term(c, node, now);
}

SimTime ClockModel::offset(NodeId node) const {
  if (nodes_.empty()) return SimTime::zero();
  return nodes_[idx(node)].offset_ref;
}

SimTime ClockModel::rotation_time(NodeId node, SimTime target,
                                  SimTime hint) const {
  // Solve t = target + offset(t). Two fixed-point rounds converge below a
  // nanosecond at any ppm-scale drift; at zero drift the first round is
  // already exact (the seed's `boundary + offset` instants).
  SimTime t = target + offset(node, hint);
  t = target + offset(node, t);
  return target + offset(node, t);
}

void ClockModel::fold(NodeClock& c, SimTime now) const {
  c.offset_ref = c.offset_ref + drift_term(c, now);
  c.ref = now;
}

void ClockModel::set_drift_ppm(NodeId node, double ppm, SimTime now) {
  if (nodes_.empty()) return;
  NodeClock& c = nodes_[idx(node)];
  fold(c, now);
  c.drift_ppm = ppm;
}

double ClockModel::drift_ppm(NodeId node) const {
  if (nodes_.empty()) return 0.0;
  return nodes_[idx(node)].drift_ppm;
}

void ClockModel::step(NodeId node, SimTime delta, SimTime now) {
  if (nodes_.empty()) return;
  NodeClock& c = nodes_[idx(node)];
  fold(c, now);
  c.offset_ref += delta;
}

void ClockModel::set_jitter(NodeId node, SimTime amplitude) {
  if (nodes_.empty()) return;
  nodes_[idx(node)].jitter_amp = amplitude;
}

void ClockModel::resync(NodeId node, SimTime now) {
  if (nodes_.empty()) return;
  NodeClock& c = nodes_[idx(node)];
  // The beacon re-disciplines the clock to its syntonization residual; a
  // node that never drifted snaps to the value it already holds, so resync
  // is a strict no-op on healthy runs.
  c.offset_ref = c.residual;
  c.ref = now;
  c.last_resync = now;
}

SimTime ClockModel::last_resync(NodeId node) const {
  if (nodes_.empty()) return SimTime::zero();
  return nodes_[idx(node)].last_resync;
}

void ClockModel::block_beacons(NodeId node, SimTime until) {
  if (nodes_.empty()) return;
  NodeClock& c = nodes_[idx(node)];
  if (until > c.blocked_until) c.blocked_until = until;
}

bool ClockModel::beacons_blocked(NodeId node, SimTime now) const {
  if (nodes_.empty()) return false;
  if (now < outage_until_) return true;
  return now < nodes_[idx(node)].blocked_until;
}

}  // namespace oo::core
