// Synchronization model. The real system uses a hardware-independent
// nanosecond-precision protocol (OpSync, separate paper); the framework only
// depends on its error *bound*: every electrical endpoint's clock is within
// +/-bound of the optical controller's. We model each node's offset as a
// fixed draw within the bound (slow drift is irrelevant at slice scale).
#pragma once

#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"

namespace oo::core {

class SyncModel {
 public:
  SyncModel(int num_nodes, SimTime error_bound, Rng rng);

  SimTime error_bound() const { return bound_; }
  // Signed clock offset of `node` relative to fabric time.
  SimTime offset(NodeId node) const {
    return offsets_[static_cast<std::size_t>(node)];
  }
  // When node `node` believes global instant `t` occurs on its own clock.
  SimTime local_view(NodeId node, SimTime t) const { return t + offset(node); }

 private:
  SimTime bound_;
  std::vector<SimTime> offsets_;
};

}  // namespace oo::core
