// Synchronization model. The real system uses a hardware-independent
// nanosecond-precision protocol (OpSync, separate paper); the framework
// depends on its error *bound*: every electrical endpoint's clock is within
// +/-bound of the optical controller's. Historically each node's offset was
// one fixed draw within the bound; the ClockModel below makes clock health a
// first-class fault domain instead: each node carries a syntonization
// residual (the construction draw), a drift rate in ppm, and bounded jitter,
// all advanced *lazily on read* — reading a clock never schedules events or
// consumes an Rng stream, so event ordering is unperturbed and a run with
// zero drift is bit-identical to the static model.
//
// A periodic resync protocol (OpSync beacons, driven by core::Network) snaps
// a node's offset back to its residual; beacons can be suppressed per node
// (SyncBeaconLoss) or fabric-wide (SyncOutage), letting drift accumulate
// unbounded — the silent wrong-slice hazard the guardband analysis (§7)
// exists to defend against.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"

namespace oo::core {

class ClockModel {
 public:
  ClockModel(int num_nodes, SimTime error_bound, Rng rng);

  SimTime error_bound() const { return bound_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  // Signed clock offset of `node` relative to fabric time at `now`:
  // residual-or-last-resync value advanced by the drift rate, plus bounded
  // piecewise-constant jitter. Pure read; out-of-range nodes are clamped
  // (and assert in debug builds).
  SimTime offset(NodeId node, SimTime now) const;
  // Static view (no drift/jitter advance) for callers without a time
  // context; equals offset(node, now) while the node carries no dynamics.
  SimTime offset(NodeId node) const;
  // When node `node` believes global instant `t` occurs on its own clock.
  SimTime local_view(NodeId node, SimTime t) const {
    return t + offset(node, t);
  }

  // Global instant at which the node's rotation timer for the local slice
  // boundary `target` fires (the seed convention: boundary + offset, with
  // the offset evaluated at the firing instant via fixed-point iteration —
  // exact at zero drift, sub-ns converged at realistic ppm rates).
  SimTime rotation_time(NodeId node, SimTime target, SimTime hint) const;

  // ---- clock dynamics (fault injection) ----
  // Drift rate in parts-per-million of elapsed fabric time. The current
  // offset is folded at `now` so the ramp starts from the clock's present
  // error, not its residual.
  void set_drift_ppm(NodeId node, double ppm, SimTime now);
  double drift_ppm(NodeId node) const;
  // Instant offset jump (a GPS glitch / PLL slip).
  void step(NodeId node, SimTime delta, SimTime now);
  // Bounded jitter amplitude: offset reads gain a deterministic hash-based
  // term in [-amplitude, +amplitude], piecewise-constant over ~1 us buckets.
  void set_jitter(NodeId node, SimTime amplitude);

  // ---- OpSync resync beacons ----
  // Snap the node's offset back to its syntonization residual (the
  // construction draw within +/-bound). Drift keeps acting afterwards.
  void resync(NodeId node, SimTime now);
  SimTime last_resync(NodeId node) const;
  // Suppress beacons for one node / the whole fabric until `until`.
  void block_beacons(NodeId node, SimTime until);
  void set_outage(SimTime until) { outage_until_ = until; }
  bool beacons_blocked(NodeId node, SimTime now) const;
  bool outage(SimTime now) const { return now < outage_until_; }

  // Whether the node's momentary offset is inside the advertised bound —
  // what a beacon exchange would measure.
  bool within_bound(NodeId node, SimTime now) const {
    const SimTime off = offset(node, now);
    return off >= SimTime::zero() - bound_ && off <= bound_;
  }

 private:
  struct NodeClock {
    SimTime residual;      // construction draw within +/-bound
    SimTime offset_ref;    // offset at `ref` (drift folded up to here)
    SimTime ref;           // fabric time of the last fold
    double drift_ppm = 0.0;
    SimTime jitter_amp = SimTime::zero();
    SimTime blocked_until = SimTime::zero();
    SimTime last_resync = SimTime::zero();
  };

  std::size_t idx(NodeId node) const;
  // Fold the drift accumulated since `ref` into offset_ref at `now`.
  void fold(NodeClock& c, SimTime now) const;
  SimTime drift_term(const NodeClock& c, SimTime now) const;
  SimTime jitter_term(const NodeClock& c, NodeId node, SimTime now) const;

  SimTime bound_;
  std::vector<NodeClock> nodes_;
  SimTime outage_until_ = SimTime::zero();
  std::uint64_t jitter_salt_ = 0;
};

// The static model's name, kept for existing call sites and tests: a
// ClockModel with no dynamics behaves exactly like the old fixed-draw
// SyncModel.
using SyncModel = ClockModel;

}  // namespace oo::core
