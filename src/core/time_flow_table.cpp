#include "core/time_flow_table.h"

#include <cassert>

namespace oo::core {

std::uint64_t TimeFlowTable::key_of(SliceId arr, NodeId src, NodeId dst) {
  // +2 biases wildcards (-1) into non-negative space.
  const auto a = static_cast<std::uint64_t>(arr + 2);
  const auto s = static_cast<std::uint64_t>(src + 2);
  const auto d = static_cast<std::uint64_t>(dst + 2);
  return (d << 42) | (s << 21) | a;
}

void TimeFlowTable::add(TftEntry entry) {
  assert(entry.match.dst != kInvalidNode && "dst is a required match field");
  assert(!entry.actions.empty());
  const auto key =
      key_of(entry.match.arr_slice, entry.match.src, entry.match.dst);
  auto [it, inserted] = entries_.try_emplace(key, entry);
  if (!inserted && entry.priority >= it->second.priority) {
    it->second = std::move(entry);
  }
}

void TimeFlowTable::remove(const TftMatch& m) {
  entries_.erase(key_of(m.arr_slice, m.src, m.dst));
}

void TimeFlowTable::remove_priority(int priority) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.priority == priority) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void TimeFlowTable::clear() { entries_.clear(); }

const TftEntry* TimeFlowTable::lookup(SliceId arr_slice, NodeId src,
                                      NodeId dst) const {
  // Specificity order mirrors TCAM priority: exact slice+src first, then
  // exact slice, then exact src, then the pure flow-table wildcard.
  const std::uint64_t keys[4] = {
      key_of(arr_slice, src, dst),
      key_of(arr_slice, kInvalidNode, dst),
      key_of(kAnySlice, src, dst),
      key_of(kAnySlice, kInvalidNode, dst),
  };
  for (const auto key : keys) {
    if (auto it = entries_.find(key); it != entries_.end()) {
      return &it->second;
    }
  }
  return nullptr;
}

const TftAction& TimeFlowTable::select_action(const TftEntry& entry,
                                              std::uint32_t hash) {
  assert(!entry.actions.empty());
  if (entry.actions.size() == 1) return entry.actions.front();
  double total = 0.0;
  for (const auto& a : entry.actions) total += a.weight;
  const double x =
      static_cast<double>(hash) / 4294967296.0 * (total > 0 ? total : 1.0);
  double acc = 0.0;
  for (const auto& a : entry.actions) {
    acc += a.weight;
    if (x < acc) return a;
  }
  return entry.actions.back();
}

}  // namespace oo::core
