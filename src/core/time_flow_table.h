// The time-flow table (§3) — OpenOptics' "narrow waist" between optical
// hardware and software. Match fields: arrival time slice (wildcardable),
// source node (wildcardable), destination node. Actions: one or more
// <egress port, departure slice> hop sequences; a single hop means per-hop
// lookup, multiple hops mean source routing, and multiple actions form a
// multipath set selected by packet hash. With both slice fields wildcarded
// the table reduces to a classical flow table (backward compatibility with
// TA architectures and static DCNs).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "net/packet.h"

namespace oo::core {

// How deploy_routing() compiles paths into entries (Tab. 1, LOOKUP).
enum class LookupMode { PerHop, SourceRouting };
// Multipath hashing granularity (Tab. 1, MULTIPATH).
enum class MultipathMode { None, PerPacket, PerFlow };

struct TftMatch {
  SliceId arr_slice = kAnySlice;  // kAnySlice = wildcard
  NodeId src = kInvalidNode;      // kInvalidNode = wildcard
  NodeId dst = kInvalidNode;      // required

  bool operator==(const TftMatch&) const = default;
};

struct TftAction {
  // hops[0] is this node's <egress, departure slice>; extra hops are pushed
  // onto the packet as a source route.
  std::vector<net::SourceHop> hops;
  double weight = 1.0;  // WCMP-style weighted multipath
};

struct TftEntry {
  TftMatch match;
  std::vector<TftAction> actions;
  // Among equally specific matches the highest priority wins. TA designs use
  // this to overlay new routes atop old ones before reconfiguring (§2.2).
  int priority = 0;
  // Deployment epoch of the transaction that installed this entry (0 for
  // direct add()/pre-transactional installs) — diagnostic stamp matching
  // optics::Schedule::epoch(), so a post-mortem can tell which overlay
  // generation a node was forwarding on.
  std::uint64_t epoch = 0;
};

class TimeFlowTable {
 public:
  // Installs or replaces the entry with the identical match+priority.
  void add(TftEntry entry);
  // Removes every entry whose match equals `m` (any priority).
  void remove(const TftMatch& m);
  // Removes every entry installed at exactly `priority` — clearing a
  // superseded routing overlay (e.g. a stale failure-recovery deploy).
  void remove_priority(int priority);
  void clear();

  // Longest-prefix-of-specificity lookup: (arr,src) exact beats (arr,*)
  // beats (*,src) beats (*,*); ties broken by priority.
  const TftEntry* lookup(SliceId arr_slice, NodeId src, NodeId dst) const;

  // Picks an action from the entry's multipath set using the packet hash
  // (weighted reservoir over action weights).
  static const TftAction& select_action(const TftEntry& entry,
                                        std::uint32_t hash);

  std::size_t size() const { return entries_.size(); }

 private:
  static std::uint64_t key_of(SliceId arr, NodeId src, NodeId dst);

  // match-key -> best entry (highest priority) for that exact match.
  std::unordered_map<std::uint64_t, TftEntry> entries_;
};

}  // namespace oo::core
