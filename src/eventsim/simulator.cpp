#include "eventsim/simulator.h"

#include <cassert>
#include <memory>

namespace oo::sim {

EventHandle Simulator::schedule_at(SimTime when, EventFn fn) {
  assert(when >= now_ && "cannot schedule into the past");
  auto flag = std::make_shared<bool>(false);
  queue_.push(Event{when, next_seq_++, std::move(fn), flag});
  return EventHandle{std::move(flag)};
}

EventHandle Simulator::schedule_every(SimTime start, SimTime period,
                                      EventFn fn) {
  assert(period > SimTime::zero());
  auto flag = std::make_shared<bool>(false);
  // The periodic wrapper reschedules itself; the shared cancellation flag
  // covers every future firing.
  auto tick = std::make_shared<std::function<void(SimTime)>>();
  // The event closure holds only a weak_ptr to the rescheduler to avoid a
  // shared_ptr cycle (tick -> closure -> tick) that would leak.
  std::weak_ptr<std::function<void(SimTime)>> weak_tick = tick;
  *tick = [this, period, fn = std::move(fn), flag, weak_tick](SimTime when) {
    queue_.push(Event{when, next_seq_++,
                      [period, fn, flag, weak_tick, when]() {
                        fn();
                        if (*flag) return;
                        if (auto t = weak_tick.lock()) (*t)(when + period);
                      },
                      flag});
  };
  periodic_ticks_.push_back(tick);
  (*tick)(start);
  return EventHandle{std::move(flag)};
}

void Simulator::dispatch(Event& ev) {
  now_ = ev.when;
  if (!*ev.cancelled) {
    ev.fn();
    ++executed_;
  }
}

void Simulator::run_until(SimTime until) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    if (queue_.top().when > until) {
      now_ = until;
      return;
    }
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    dispatch(ev);
  }
  if (queue_.empty() && now_ < until) now_ = until;
}

void Simulator::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    dispatch(ev);
  }
}

}  // namespace oo::sim
