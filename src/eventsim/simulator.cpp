#include "eventsim/simulator.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <memory>

namespace oo::sim {

namespace {

constexpr std::size_t kCompactMinQueue = 64;

// Worker-thread context: which simulator/lane the current thread is
// executing, and the per-shard flight recorder (if the engine installed
// one). Default-initialized on every thread — the main thread and campaign
// pool threads always read {nullptr, control}, so legacy simulators never
// see a stale lane from an unrelated sharded run.
struct LaneContext {
  const Simulator* sim = nullptr;
  int lane = Simulator::kControlLane;
  telemetry::FlightRecorder* recorder = nullptr;
};
thread_local LaneContext t_lane_ctx;

}  // namespace

void Simulator::push_event(Event ev) {
  heap_.push_back(std::move(ev));
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  if (profiler_) profiler_->sample_queue_depth(heap_.size());
}

Simulator::Event Simulator::pop_event() {
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  return ev;
}

void Simulator::maybe_compact() {
  // Compact when cancelled events are (at least) the majority of a
  // non-trivial queue: filter them out and re-heapify. O(n), amortised by
  // the >=50% trigger.
  if (heap_.size() < kCompactMinQueue ||
      cancelled_pending_->load(std::memory_order_relaxed) * 2 <=
          static_cast<std::int64_t>(heap_.size())) {
    return;
  }
  std::erase_if(heap_, [](const Event& ev) { return *ev.cancelled; });
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
  cancelled_pending_->store(0, std::memory_order_relaxed);
  ++compactions_;
}

SimTime Simulator::now_sharded() const {
  const Lane* ln = current_lane_ptr();
  return ln ? ln->now : now_;
}

telemetry::FlightRecorder* Simulator::recorder_sharded() const {
  if (t_lane_ctx.sim == this && t_lane_ctx.recorder != nullptr) {
    return t_lane_ctx.recorder;
  }
  return recorder_;
}

Simulator::Lane* Simulator::current_lane_ptr() {
  if (t_lane_ctx.sim == this && t_lane_ctx.lane >= 0) {
    return &lanes_[static_cast<std::size_t>(t_lane_ctx.lane)];
  }
  return nullptr;
}

const Simulator::Lane* Simulator::current_lane_ptr() const {
  if (t_lane_ctx.sim == this && t_lane_ctx.lane >= 0) {
    return &lanes_[static_cast<std::size_t>(t_lane_ctx.lane)];
  }
  return nullptr;
}

int Simulator::current_lane() const {
  return t_lane_ctx.sim == this ? t_lane_ctx.lane : kControlLane;
}

bool Simulator::cross_lane(int lane) const {
  if (lanes_.empty() || !in_parallel_) return false;
  const int cur = current_lane();
  return cur != kControlLane && cur != lane;
}

void Simulator::lane_maybe_compact(Lane& ln) {
  if (ln.heap.size() < kCompactMinQueue ||
      ln.cancelled_pending->load(std::memory_order_relaxed) * 2 <=
          static_cast<std::int64_t>(ln.heap.size())) {
    return;
  }
  std::erase_if(ln.heap, [](const Event& ev) { return *ev.cancelled; });
  std::make_heap(ln.heap.begin(), ln.heap.end(), std::greater<>{});
  ln.cancelled_pending->store(0, std::memory_order_relaxed);
  ++ln.compactions;
}

EventHandle Simulator::lane_push(Lane& ln, SimTime when, EventFn fn,
                                 const char* tag) {
  if (when < ln.now) {
    ++ln.past_schedules;
    ln.past_log.push_back({when, ln.now, tag});
    when = ln.now;
  }
  auto flag = std::make_shared<bool>(false);
  ln.heap.push_back(Event{when, ln.next_seq++, std::move(fn), flag, tag});
  std::push_heap(ln.heap.begin(), ln.heap.end(), std::greater<>{});
  lane_maybe_compact(ln);
  return EventHandle{std::move(flag), ln.cancelled_pending};
}

EventHandle Simulator::schedule_at(SimTime when, EventFn fn, const char* tag) {
  if (!lanes_.empty()) {
    if (Lane* ln = current_lane_ptr()) {
      return lane_push(*ln, when, std::move(fn), tag);
    }
  }
  if (when < now_) {
    // Scheduling into the past would make virtual time run backwards when
    // the event pops (the run loop sets now_ = ev.when). Clamp to now so
    // behaviour stays defined, count it, and tell the invariant monitor —
    // a legal program never takes this branch, so the clamp cannot change
    // any correct run.
    ++past_schedules_;
    if (invariants_ != nullptr) invariants_->on_past_schedule(when, now_, tag);
    when = now_;
  }
  auto flag = std::make_shared<bool>(false);
  push_event(Event{when, next_seq_++, std::move(fn), flag, tag});
  maybe_compact();
  return EventHandle{std::move(flag), cancelled_pending_};
}

EventHandle Simulator::schedule_at_lane(int lane, SimTime when, EventFn fn,
                                        const char* tag) {
  if (lanes_.empty()) return schedule_at(when, std::move(fn), tag);
  assert(lane == kControlLane ||
         (lane >= 0 && lane < static_cast<int>(lanes_.size())));
  const int cur = current_lane();
  if (lane == cur) return schedule_at(when, std::move(fn), tag);
  if (in_parallel_ && cur != kControlLane) {
    // Worker-to-elsewhere during a parallel phase: stage in the source
    // lane's outbox; the barrier merges it in canonical order. The handle
    // is intentionally invalid — the event doesn't exist yet.
    Lane& src = lanes_[static_cast<std::size_t>(cur)];
    src.outbox.push_back(
        CrossLaneMsg{lane, when, std::move(fn), tag, cur, src.out_seq++});
    ++src.staged;
    return EventHandle{};
  }
  // Serial context (control phase, barrier, setup): push straight into the
  // target queue with the target's own clock/sequence.
  if (lane == kControlLane) {
    if (when < now_) {
      ++past_schedules_;
      if (invariants_ != nullptr) {
        invariants_->on_past_schedule(when, now_, tag);
      }
      when = now_;
    }
    auto flag = std::make_shared<bool>(false);
    push_event(Event{when, next_seq_++, std::move(fn), flag, tag});
    maybe_compact();
    return EventHandle{std::move(flag), cancelled_pending_};
  }
  return lane_push(lanes_[static_cast<std::size_t>(lane)], when,
                   std::move(fn), tag);
}

EventHandle Simulator::schedule_every(SimTime start, SimTime period,
                                      EventFn fn, const char* tag) {
  assert(period > SimTime::zero());
  // Sharded discipline: the rearm chain pushes with the control sequence
  // counter, so periodic timers must be armed (and fire) on the control
  // queue. Every in-tree user arms them from setup or control events.
  assert(current_lane_ptr() == nullptr &&
         "schedule_every must be called from the control context");
  auto flag = std::make_shared<bool>(false);
  // The periodic wrapper reschedules itself; the shared cancellation flag
  // covers every future firing.
  auto tick = std::make_shared<std::function<void(SimTime)>>();
  // The event closure holds only a weak_ptr to the rescheduler to avoid a
  // shared_ptr cycle (tick -> closure -> tick) that would leak.
  std::weak_ptr<std::function<void(SimTime)>> weak_tick = tick;
  *tick = [this, period, tag, fn = std::move(fn), flag,
           weak_tick](SimTime when) {
    push_event(Event{when, next_seq_++,
                     [period, fn, flag, weak_tick, when]() {
                       fn();
                       if (*flag) return;
                       if (auto t = weak_tick.lock()) (*t)(when + period);
                     },
                     flag, tag});
  };
  periodic_ticks_.push_back(tick);
  (*tick)(start);
  maybe_compact();
  return EventHandle{std::move(flag), cancelled_pending_};
}

void Simulator::dispatch(Event& ev) {
  now_ = ev.when;
  if (*ev.cancelled) {
    if (cancelled_pending_->load(std::memory_order_relaxed) > 0) {
      cancelled_pending_->fetch_sub(1, std::memory_order_relaxed);
    }
    return;
  }
  if (profiler_) {
    const auto t0 = std::chrono::steady_clock::now();
    ev.fn();
    const auto t1 = std::chrono::steady_clock::now();
    profiler_->add(
        ev.tag,
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  } else {
    ev.fn();
  }
  ++executed_;
}

void Simulator::run_until(SimTime until) {
  if (runner_ != nullptr) {
    runner_->run_until(until);
    return;
  }
  stopped_.store(false, std::memory_order_relaxed);
  while (!heap_.empty() && !stopped_.load(std::memory_order_relaxed)) {
    if (heap_.front().when > until) {
      now_ = until;
      return;
    }
    Event ev = pop_event();
    dispatch(ev);
  }
  if (heap_.empty() && now_ < until) now_ = until;
}

void Simulator::run() {
  if (runner_ != nullptr) {
    runner_->run_all();
    return;
  }
  stopped_.store(false, std::memory_order_relaxed);
  while (!heap_.empty() && !stopped_.load(std::memory_order_relaxed)) {
    Event ev = pop_event();
    dispatch(ev);
  }
}

// ---- sharded-lane engine ----

void Simulator::configure_lanes(int num_lanes) {
  assert(lanes_.empty() && "configure_lanes is one-shot");
  assert(num_lanes > 0);
  lanes_.resize(static_cast<std::size_t>(num_lanes));
  for (Lane& ln : lanes_) ln.now = now_;
}

void Simulator::run_control_until_exclusive(SimTime end) {
  while (!heap_.empty() && !stopped_.load(std::memory_order_relaxed) &&
         heap_.front().when < end) {
    Event ev = pop_event();
    dispatch(ev);
  }
}

void Simulator::run_lane_until_exclusive(int lane, SimTime end,
                                         telemetry::FlightRecorder* rec) {
  Lane& ln = lanes_[static_cast<std::size_t>(lane)];
  const LaneContext saved = t_lane_ctx;
  t_lane_ctx = LaneContext{this, lane, rec};
  while (!ln.heap.empty() && ln.heap.front().when < end) {
    std::pop_heap(ln.heap.begin(), ln.heap.end(), std::greater<>{});
    Event ev = std::move(ln.heap.back());
    ln.heap.pop_back();
    ln.now = ev.when;
    if (*ev.cancelled) {
      if (ln.cancelled_pending->load(std::memory_order_relaxed) > 0) {
        ln.cancelled_pending->fetch_sub(1, std::memory_order_relaxed);
      }
      continue;
    }
    ev.fn();
    ++ln.executed;
  }
  t_lane_ctx = saved;
}

SimTime Simulator::min_pending_time() const {
  SimTime m = heap_.empty() ? SimTime::max() : heap_.front().when;
  for (const Lane& ln : lanes_) {
    if (!ln.heap.empty() && ln.heap.front().when < m) {
      m = ln.heap.front().when;
    }
  }
  return m;
}

void Simulator::advance_all_to(SimTime t) {
  if (now_ < t) now_ = t;
  for (Lane& ln : lanes_) {
    if (ln.now < t) ln.now = t;
  }
}

Simulator::MergeStats Simulator::merge_outboxes(SimTime next_start) {
  MergeStats stats;
  std::vector<CrossLaneMsg> msgs;
  for (Lane& ln : lanes_) {
    if (ln.outbox.empty()) continue;
    msgs.insert(msgs.end(), std::make_move_iterator(ln.outbox.begin()),
                std::make_move_iterator(ln.outbox.end()));
    ln.outbox.clear();
    ln.out_seq = 0;
  }
  if (msgs.empty()) return stats;
  // Canonical exchange order: (when, src_lane, src_seq) is a total order
  // (src_seq is unique per src_lane), so the target-side sequence numbers
  // assigned below are independent of worker count and scheduling jitter.
  std::sort(msgs.begin(), msgs.end(),
            [](const CrossLaneMsg& a, const CrossLaneMsg& b) {
              if (a.when != b.when) return a.when < b.when;
              if (a.src_lane != b.src_lane) return a.src_lane < b.src_lane;
              return a.src_seq < b.src_seq;
            });
  for (CrossLaneMsg& m : msgs) {
    SimTime when = m.when;
    if (when < next_start) {
      // A cross-lane hop shorter than the sync window (control mailboxes,
      // bind messages). Deterministic: every shard count clamps the same
      // message to the same instant.
      when = next_start;
      ++stats.clamped;
    }
    auto flag = std::make_shared<bool>(false);
    if (m.target == kControlLane) {
      push_event(Event{when, next_seq_++, std::move(m.fn), flag, m.tag});
    } else {
      Lane& tgt = lanes_[static_cast<std::size_t>(m.target)];
      tgt.heap.push_back(
          Event{when, tgt.next_seq++, std::move(m.fn), flag, m.tag});
      std::push_heap(tgt.heap.begin(), tgt.heap.end(), std::greater<>{});
    }
    ++stats.delivered;
  }
  return stats;
}

std::vector<Simulator::PastScheduleRecord>
Simulator::take_lane_past_schedules() {
  std::vector<PastScheduleRecord> out;
  for (Lane& ln : lanes_) {
    out.insert(out.end(), ln.past_log.begin(), ln.past_log.end());
    ln.past_log.clear();
  }
  return out;
}

std::int64_t Simulator::events_executed() const {
  std::int64_t n = executed_;
  for (const Lane& ln : lanes_) n += ln.executed;
  return n;
}

std::size_t Simulator::events_pending() const {
  std::size_t n = heap_.size();
  for (const Lane& ln : lanes_) n += ln.heap.size();
  return n;
}

std::int64_t Simulator::compactions() const {
  std::int64_t n = compactions_;
  for (const Lane& ln : lanes_) n += ln.compactions;
  return n;
}

std::int64_t Simulator::cross_staged() const {
  std::int64_t n = 0;
  for (const Lane& ln : lanes_) n += ln.staged;
  return n;
}

std::int64_t Simulator::past_schedules() const {
  std::int64_t n = past_schedules_;
  for (const Lane& ln : lanes_) n += ln.past_schedules;
  return n;
}

}  // namespace oo::sim
