#include "eventsim/simulator.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <memory>

namespace oo::sim {

namespace {
constexpr std::size_t kCompactMinQueue = 64;
}  // namespace

void Simulator::push_event(Event ev) {
  heap_.push_back(std::move(ev));
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  if (profiler_) profiler_->sample_queue_depth(heap_.size());
}

Simulator::Event Simulator::pop_event() {
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  return ev;
}

void Simulator::maybe_compact() {
  // Compact when cancelled events are (at least) the majority of a
  // non-trivial queue: filter them out and re-heapify. O(n), amortised by
  // the >=50% trigger.
  if (heap_.size() < kCompactMinQueue ||
      *cancelled_pending_ * 2 <= static_cast<std::int64_t>(heap_.size())) {
    return;
  }
  std::erase_if(heap_, [](const Event& ev) { return *ev.cancelled; });
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
  *cancelled_pending_ = 0;
  ++compactions_;
}

EventHandle Simulator::schedule_at(SimTime when, EventFn fn, const char* tag) {
  if (when < now_) {
    // Scheduling into the past would make virtual time run backwards when
    // the event pops (the run loop sets now_ = ev.when). Clamp to now so
    // behaviour stays defined, count it, and tell the invariant monitor —
    // a legal program never takes this branch, so the clamp cannot change
    // any correct run.
    ++past_schedules_;
    if (invariants_ != nullptr) invariants_->on_past_schedule(when, now_, tag);
    when = now_;
  }
  auto flag = std::make_shared<bool>(false);
  push_event(Event{when, next_seq_++, std::move(fn), flag, tag});
  maybe_compact();
  return EventHandle{std::move(flag), cancelled_pending_};
}

EventHandle Simulator::schedule_every(SimTime start, SimTime period,
                                      EventFn fn, const char* tag) {
  assert(period > SimTime::zero());
  auto flag = std::make_shared<bool>(false);
  // The periodic wrapper reschedules itself; the shared cancellation flag
  // covers every future firing.
  auto tick = std::make_shared<std::function<void(SimTime)>>();
  // The event closure holds only a weak_ptr to the rescheduler to avoid a
  // shared_ptr cycle (tick -> closure -> tick) that would leak.
  std::weak_ptr<std::function<void(SimTime)>> weak_tick = tick;
  *tick = [this, period, tag, fn = std::move(fn), flag,
           weak_tick](SimTime when) {
    push_event(Event{when, next_seq_++,
                     [period, fn, flag, weak_tick, when]() {
                       fn();
                       if (*flag) return;
                       if (auto t = weak_tick.lock()) (*t)(when + period);
                     },
                     flag, tag});
  };
  periodic_ticks_.push_back(tick);
  (*tick)(start);
  maybe_compact();
  return EventHandle{std::move(flag), cancelled_pending_};
}

void Simulator::dispatch(Event& ev) {
  now_ = ev.when;
  if (*ev.cancelled) {
    if (*cancelled_pending_ > 0) --*cancelled_pending_;
    return;
  }
  if (profiler_) {
    const auto t0 = std::chrono::steady_clock::now();
    ev.fn();
    const auto t1 = std::chrono::steady_clock::now();
    profiler_->add(
        ev.tag,
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  } else {
    ev.fn();
  }
  ++executed_;
}

void Simulator::run_until(SimTime until) {
  stopped_ = false;
  while (!heap_.empty() && !stopped_) {
    if (heap_.front().when > until) {
      now_ = until;
      return;
    }
    Event ev = pop_event();
    dispatch(ev);
  }
  if (heap_.empty() && now_ < until) now_ = until;
}

void Simulator::run() {
  stopped_ = false;
  while (!heap_.empty() && !stopped_) {
    Event ev = pop_event();
    dispatch(ev);
  }
}

}  // namespace oo::sim
