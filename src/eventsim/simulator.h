// Discrete-event simulation engine. A single Simulator owns virtual time;
// components schedule closures at absolute or relative times. Ties are
// broken by insertion order, making runs fully deterministic.
//
// The simulator is also the telemetry attachment point: it owns the
// MetricsRegistry components register into, and carries optional non-owning
// pointers to a FlightRecorder (event tracing) and EventProfiler (wall-clock
// per dispatched event, bucketed by the tag given at scheduling time). All
// three are off by default and cost a null-check when unused.
//
// Sharded mode (src/parallel/sharded.h): configure_lanes(N) splits the
// single event queue into N per-lane queues (one lane per ToR) plus the
// original "control" queue. Each lane carries its own clock, sequence
// counter, and cancelled-event accounting, so a lane's execution order is a
// pure function of the events delivered to it — independent of how many
// worker threads drive the lanes. Cross-lane scheduling goes through
// schedule_at_lane(): same-lane and serial-context calls push directly;
// calls from a worker during the parallel phase are staged in the source
// lane's outbox and merged at the next window barrier in canonical
// (when, src_lane, src_seq) order, which is what makes results byte-
// identical at any shard count. When no lanes are configured every public
// entry point takes its original single-queue path, bit for bit.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/time.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "telemetry/profiler.h"

namespace oo::sim {

using EventFn = std::function<void()>;

// Handle for cancelling a scheduled event. Cancellation is lazy: the event
// stays queued but is skipped when popped. The simulator tracks how many
// cancelled events are still queued and compacts the heap when they are the
// majority, so mass-cancelled timers don't grow the queue without bound.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return cancelled_ != nullptr; }
  void cancel() {
    if (cancelled_ && !*cancelled_) {
      *cancelled_ = true;
      // The pending counter is queue-wide, so in sharded mode two lanes
      // cancelling events of the same queue (control-armed timers) can
      // race on it — hence the relaxed atomic. It is bookkeeping for the
      // compaction heuristic only and self-heals at compaction.
      if (pending_) pending_->fetch_add(1, std::memory_order_relaxed);
    }
  }

 private:
  friend class Simulator;
  EventHandle(std::shared_ptr<bool> flag,
              std::shared_ptr<std::atomic<std::int64_t>> pending)
      : cancelled_(std::move(flag)), pending_(std::move(pending)) {}
  std::shared_ptr<bool> cancelled_;
  std::shared_ptr<std::atomic<std::int64_t>> pending_;
};

// RAII wrapper over EventHandle: cancels on destruction and on
// reassignment. The root cause of a recurring lifetime-bug class — timers
// whose owner dies while the event is queued — is an owner that forgets the
// destructor cancel; holding the timer as a ScopedEventHandle makes the
// cancel structural. Assigning a fresh handle (the re-arm idiom
// `wake_ = sim.schedule_at(...)`) cancels the previous event first, so
// owners also can't double-arm.
class ScopedEventHandle {
 public:
  ScopedEventHandle() = default;
  ScopedEventHandle(EventHandle h) : h_(std::move(h)) {}
  ScopedEventHandle(const ScopedEventHandle&) = delete;
  ScopedEventHandle& operator=(const ScopedEventHandle&) = delete;
  ScopedEventHandle(ScopedEventHandle&& o) noexcept : h_(std::move(o.h_)) {
    o.h_ = EventHandle{};
  }
  ScopedEventHandle& operator=(ScopedEventHandle&& o) noexcept {
    if (this != &o) {
      h_.cancel();
      h_ = std::move(o.h_);
      o.h_ = EventHandle{};
    }
    return *this;
  }
  ScopedEventHandle& operator=(EventHandle h) {
    h_.cancel();
    h_ = std::move(h);
    return *this;
  }
  ~ScopedEventHandle() { h_.cancel(); }

  bool valid() const { return h_.valid(); }
  void cancel() { h_.cancel(); }
  // Detach: the caller takes over cancellation responsibility.
  EventHandle release() {
    EventHandle out = std::move(h_);
    h_ = EventHandle{};
    return out;
  }

 private:
  EventHandle h_;
};

// Invariant tap: a sink the chaos monitor (src/chaos/invariants.h) attaches
// to be told about scheduling-contract violations the simulator can detect
// itself. Detached (the default) the check is a null-pointer test, the same
// zero-overhead bar as the flight recorder.
class InvariantSink {
 public:
  virtual ~InvariantSink() = default;
  // `when` < now() was requested for an event; the simulator clamps it to
  // now() so virtual time can never run backwards.
  virtual void on_past_schedule(SimTime when, SimTime now,
                                const char* tag) = 0;
};

// Window-cycle driver installed by core::Network::enable_sharding().
// run_until/run delegate here when set, so existing call sites drive the
// sharded engine without knowing it exists.
class ParallelRunner {
 public:
  virtual ~ParallelRunner() = default;
  virtual void run_until(SimTime until) = 0;
  virtual void run_all() = 0;
};

class Simulator {
 public:
  // Lane id of the control queue (the original single-threaded queue) in
  // schedule_at_lane() and current_lane().
  static constexpr int kControlLane = -1;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Virtual time of the calling context: the executing lane's clock from a
  // worker, the control clock everywhere else (and always in legacy mode).
  SimTime now() const {
    if (lanes_.empty()) return now_;
    return now_sharded();
  }

  // Schedule `fn` at absolute time `when` (must be >= now()). `tag` labels
  // the event for the profiler (static string; not copied). In sharded mode
  // the event lands on the calling context's lane.
  EventHandle schedule_at(SimTime when, EventFn fn, const char* tag = nullptr);
  // Schedule `fn` `delay` from now.
  EventHandle schedule_in(SimTime delay, EventFn fn,
                          const char* tag = nullptr) {
    return schedule_at(now() + delay, std::move(fn), tag);
  }
  // Periodic timer starting at `start`, repeating every `period` until
  // cancelled or the run ends. Models the on-chip packet generator that
  // drives queue rotation and EQO updates (§5.1, Appx A). Sharded: control
  // context only (the rearm chain stays on the arming queue).
  EventHandle schedule_every(SimTime start, SimTime period, EventFn fn,
                             const char* tag = nullptr);

  // Schedule onto an explicit lane (kControlLane or [0, num_lanes())).
  // Legacy mode: identical to schedule_at. Same-lane or serial-context
  // calls push directly and return a real handle; a cross-lane call from a
  // worker during the parallel phase is staged in the source lane's outbox
  // — delivered at the next barrier, never before the next window starts —
  // and returns an *invalid* handle (cross-lane events can't be cancelled).
  EventHandle schedule_at_lane(int lane, SimTime when, EventFn fn,
                               const char* tag = nullptr);

  // Run until the queue drains or `until` is reached, whichever first.
  void run_until(SimTime until);
  // Run until the event queue drains completely.
  void run();
  // Stop the current run loop after the in-flight event returns. Sharded:
  // takes effect at the next window barrier.
  void stop() { stopped_.store(true, std::memory_order_relaxed); }

  std::int64_t events_executed() const;
  std::size_t events_pending() const;
  // Times the queue was compacted to shed lazily-cancelled events.
  std::int64_t compactions() const;

  // ---- telemetry ----
  telemetry::MetricsRegistry& metrics() { return metrics_; }
  const telemetry::MetricsRegistry& metrics() const { return metrics_; }

  // Attach/detach a flight recorder (non-owning; nullptr disables tracing).
  // Sharded: workers see their per-shard recorder (if the engine installed
  // one) so the hot path never shares a ring buffer across threads.
  void set_recorder(telemetry::FlightRecorder* rec) { recorder_ = rec; }
  telemetry::FlightRecorder* recorder() const {
    if (lanes_.empty()) return recorder_;
    return recorder_sharded();
  }

  // Attach/detach an event profiler (non-owning; nullptr disables timing).
  // Sharded: only control-queue events are timed (steady_clock reads from
  // worker threads would race on the shared buckets).
  void set_profiler(telemetry::EventProfiler* prof) { profiler_ = prof; }
  telemetry::EventProfiler* profiler() const { return profiler_; }

  // Attach/detach the invariant sink (non-owning; nullptr detaches).
  void set_invariant_sink(InvariantSink* sink) { invariants_ = sink; }
  InvariantSink* invariant_sink() const { return invariants_; }
  // Times schedule_at was asked for a time in the past (always counted;
  // the sink only adds reporting).
  std::int64_t past_schedules() const;

  // ---- sharded-lane engine (driven by parallel::ShardedEngine) ----
  // Split the queue into `num_lanes` lanes (lane i owns ToR i's events)
  // plus the control queue. One-shot; call before any events exist on the
  // future lanes (i.e. before Network::start()).
  void configure_lanes(int num_lanes);
  bool sharded() const { return !lanes_.empty(); }
  int num_lanes() const { return static_cast<int>(lanes_.size()); }
  // Lane of the calling context: kControlLane unless called from a worker
  // executing a lane of *this* simulator.
  int current_lane() const;
  // True when a direct touch of `lane`-owned state from the calling
  // context would race (worker on a different lane, parallel phase live).
  bool cross_lane(int lane) const;
  bool in_parallel_phase() const { return in_parallel_; }

  void set_parallel_runner(ParallelRunner* r) { runner_ = r; }
  ParallelRunner* parallel_runner() const { return runner_; }
  bool stop_requested() const {
    return stopped_.load(std::memory_order_relaxed);
  }
  void clear_stop() { stopped_.store(false, std::memory_order_relaxed); }

  // Engine-side window primitives. `end` is exclusive: events with
  // when < end run; the clock is then advanced to `end` by the barrier
  // (advance_all_to). Must only be called by the installed runner.
  void run_control_until_exclusive(SimTime end);
  void run_lane_until_exclusive(int lane, SimTime end,
                                telemetry::FlightRecorder* rec);
  void begin_parallel_phase() { in_parallel_ = true; }
  void end_parallel_phase() { in_parallel_ = false; }
  // Earliest pending event across the control queue and every lane
  // (SimTime::max() when fully drained).
  SimTime min_pending_time() const;
  void advance_all_to(SimTime t);

  struct MergeStats {
    std::int64_t delivered = 0;
    std::int64_t clamped = 0;
  };
  // Barrier exchange: drain every lane's outbox, sort canonically by
  // (when, src_lane, src_seq), deliver into the target queues assigning
  // target-lane sequence numbers in that order. Entries aimed before
  // `next_start` (the new window's start) are clamped up to it — counted,
  // never reordered, so clamping can't break shard-count identity.
  MergeStats merge_outboxes(SimTime next_start);

  struct PastScheduleRecord {
    SimTime when;
    SimTime now;
    const char* tag;
  };
  // Past-schedule reports captured on worker lanes since the last call, in
  // lane order (workers can't call the invariant sink directly; the engine
  // forwards these from the barrier).
  std::vector<PastScheduleRecord> take_lane_past_schedules();
  // Cumulative count of cross-lane messages ever staged in lane outboxes.
  // The engine's conservation ledger: staged must equal the cumulative
  // merge-delivered count at every barrier (no message lost or duplicated).
  std::int64_t cross_staged() const;

 private:
  struct Event {
    SimTime when;
    std::int64_t seq;
    EventFn fn;
    std::shared_ptr<bool> cancelled;
    const char* tag;
    bool operator>(const Event& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  // One cross-lane message staged during a parallel phase, exchanged at
  // the window barrier. (src_lane, src_seq) gives the canonical merge
  // order; `target` is a lane index or kControlLane.
  struct CrossLaneMsg {
    int target;
    SimTime when;
    EventFn fn;
    const char* tag;
    int src_lane;
    std::int64_t src_seq;
  };

  struct Lane {
    std::vector<Event> heap;
    SimTime now = SimTime::zero();
    std::int64_t next_seq = 0;
    std::int64_t executed = 0;
    std::int64_t compactions = 0;
    std::int64_t past_schedules = 0;
    std::shared_ptr<std::atomic<std::int64_t>> cancelled_pending =
        std::make_shared<std::atomic<std::int64_t>>(0);
    std::vector<CrossLaneMsg> outbox;
    std::int64_t out_seq = 0;
    std::int64_t staged = 0;
    std::vector<PastScheduleRecord> past_log;
  };

  void push_event(Event ev);
  Event pop_event();
  void maybe_compact();
  void dispatch(Event& ev);
  SimTime now_sharded() const;
  telemetry::FlightRecorder* recorder_sharded() const;
  Lane* current_lane_ptr();
  const Lane* current_lane_ptr() const;
  EventHandle lane_push(Lane& ln, SimTime when, EventFn fn, const char* tag);
  void lane_maybe_compact(Lane& ln);

  // Min-heap over `heap_` (std::push_heap/pop_heap with operator>), kept as
  // a plain vector so compaction can filter cancelled events in place —
  // std::priority_queue hides its container.
  std::vector<Event> heap_;
  // Keeps periodic-timer reschedulers alive for the simulator's lifetime;
  // the event closures only hold weak references (see schedule_every).
  std::vector<std::shared_ptr<std::function<void(SimTime)>>> periodic_ticks_;
  // Shared with every EventHandle: count of cancelled events still queued.
  // May over-count when an already-fired event is cancelled; compaction
  // resets it, so drift self-heals.
  std::shared_ptr<std::atomic<std::int64_t>> cancelled_pending_ =
      std::make_shared<std::atomic<std::int64_t>>(0);
  telemetry::MetricsRegistry metrics_;
  telemetry::FlightRecorder* recorder_ = nullptr;
  telemetry::EventProfiler* profiler_ = nullptr;
  InvariantSink* invariants_ = nullptr;
  SimTime now_ = SimTime::zero();
  std::int64_t next_seq_ = 0;
  std::int64_t executed_ = 0;
  std::int64_t compactions_ = 0;
  std::int64_t past_schedules_ = 0;
  std::atomic<bool> stopped_{false};

  std::vector<Lane> lanes_;
  bool in_parallel_ = false;
  ParallelRunner* runner_ = nullptr;
};

}  // namespace oo::sim
