// Discrete-event simulation engine. A single Simulator owns virtual time;
// components schedule closures at absolute or relative times. Ties are
// broken by insertion order, making runs fully deterministic.
//
// The simulator is also the telemetry attachment point: it owns the
// MetricsRegistry components register into, and carries optional non-owning
// pointers to a FlightRecorder (event tracing) and EventProfiler (wall-clock
// per dispatched event, bucketed by the tag given at scheduling time). All
// three are off by default and cost a null-check when unused.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/time.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "telemetry/profiler.h"

namespace oo::sim {

using EventFn = std::function<void()>;

// Handle for cancelling a scheduled event. Cancellation is lazy: the event
// stays queued but is skipped when popped. The simulator tracks how many
// cancelled events are still queued and compacts the heap when they are the
// majority, so mass-cancelled timers don't grow the queue without bound.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return cancelled_ != nullptr; }
  void cancel() {
    if (cancelled_ && !*cancelled_) {
      *cancelled_ = true;
      if (pending_) ++*pending_;
    }
  }

 private:
  friend class Simulator;
  EventHandle(std::shared_ptr<bool> flag,
              std::shared_ptr<std::int64_t> pending)
      : cancelled_(std::move(flag)), pending_(std::move(pending)) {}
  std::shared_ptr<bool> cancelled_;
  std::shared_ptr<std::int64_t> pending_;
};

// RAII wrapper over EventHandle: cancels on destruction and on
// reassignment. The root cause of a recurring lifetime-bug class — timers
// whose owner dies while the event is queued — is an owner that forgets the
// destructor cancel; holding the timer as a ScopedEventHandle makes the
// cancel structural. Assigning a fresh handle (the re-arm idiom
// `wake_ = sim.schedule_at(...)`) cancels the previous event first, so
// owners also can't double-arm.
class ScopedEventHandle {
 public:
  ScopedEventHandle() = default;
  ScopedEventHandle(EventHandle h) : h_(std::move(h)) {}
  ScopedEventHandle(const ScopedEventHandle&) = delete;
  ScopedEventHandle& operator=(const ScopedEventHandle&) = delete;
  ScopedEventHandle(ScopedEventHandle&& o) noexcept : h_(std::move(o.h_)) {
    o.h_ = EventHandle{};
  }
  ScopedEventHandle& operator=(ScopedEventHandle&& o) noexcept {
    if (this != &o) {
      h_.cancel();
      h_ = std::move(o.h_);
      o.h_ = EventHandle{};
    }
    return *this;
  }
  ScopedEventHandle& operator=(EventHandle h) {
    h_.cancel();
    h_ = std::move(h);
    return *this;
  }
  ~ScopedEventHandle() { h_.cancel(); }

  bool valid() const { return h_.valid(); }
  void cancel() { h_.cancel(); }
  // Detach: the caller takes over cancellation responsibility.
  EventHandle release() {
    EventHandle out = std::move(h_);
    h_ = EventHandle{};
    return out;
  }

 private:
  EventHandle h_;
};

// Invariant tap: a sink the chaos monitor (src/chaos/invariants.h) attaches
// to be told about scheduling-contract violations the simulator can detect
// itself. Detached (the default) the check is a null-pointer test, the same
// zero-overhead bar as the flight recorder.
class InvariantSink {
 public:
  virtual ~InvariantSink() = default;
  // `when` < now() was requested for an event; the simulator clamps it to
  // now() so virtual time can never run backwards.
  virtual void on_past_schedule(SimTime when, SimTime now,
                                const char* tag) = 0;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedule `fn` at absolute time `when` (must be >= now()). `tag` labels
  // the event for the profiler (static string; not copied).
  EventHandle schedule_at(SimTime when, EventFn fn, const char* tag = nullptr);
  // Schedule `fn` `delay` from now.
  EventHandle schedule_in(SimTime delay, EventFn fn,
                          const char* tag = nullptr) {
    return schedule_at(now_ + delay, std::move(fn), tag);
  }
  // Periodic timer starting at `start`, repeating every `period` until
  // cancelled or the run ends. Models the on-chip packet generator that
  // drives queue rotation and EQO updates (§5.1, Appx A).
  EventHandle schedule_every(SimTime start, SimTime period, EventFn fn,
                             const char* tag = nullptr);

  // Run until the queue drains or `until` is reached, whichever first.
  void run_until(SimTime until);
  // Run until the event queue drains completely.
  void run();
  // Stop the current run loop after the in-flight event returns.
  void stop() { stopped_ = true; }

  std::int64_t events_executed() const { return executed_; }
  std::size_t events_pending() const { return heap_.size(); }
  // Times the queue was compacted to shed lazily-cancelled events.
  std::int64_t compactions() const { return compactions_; }

  // ---- telemetry ----
  telemetry::MetricsRegistry& metrics() { return metrics_; }
  const telemetry::MetricsRegistry& metrics() const { return metrics_; }

  // Attach/detach a flight recorder (non-owning; nullptr disables tracing).
  void set_recorder(telemetry::FlightRecorder* rec) { recorder_ = rec; }
  telemetry::FlightRecorder* recorder() const { return recorder_; }

  // Attach/detach an event profiler (non-owning; nullptr disables timing).
  void set_profiler(telemetry::EventProfiler* prof) { profiler_ = prof; }
  telemetry::EventProfiler* profiler() const { return profiler_; }

  // Attach/detach the invariant sink (non-owning; nullptr detaches).
  void set_invariant_sink(InvariantSink* sink) { invariants_ = sink; }
  InvariantSink* invariant_sink() const { return invariants_; }
  // Times schedule_at was asked for a time in the past (always counted;
  // the sink only adds reporting).
  std::int64_t past_schedules() const { return past_schedules_; }

 private:
  struct Event {
    SimTime when;
    std::int64_t seq;
    EventFn fn;
    std::shared_ptr<bool> cancelled;
    const char* tag;
    bool operator>(const Event& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  void push_event(Event ev);
  Event pop_event();
  void maybe_compact();
  void dispatch(Event& ev);

  // Min-heap over `heap_` (std::push_heap/pop_heap with operator>), kept as
  // a plain vector so compaction can filter cancelled events in place —
  // std::priority_queue hides its container.
  std::vector<Event> heap_;
  // Keeps periodic-timer reschedulers alive for the simulator's lifetime;
  // the event closures only hold weak references (see schedule_every).
  std::vector<std::shared_ptr<std::function<void(SimTime)>>> periodic_ticks_;
  // Shared with every EventHandle: count of cancelled events still queued.
  // May over-count when an already-fired event is cancelled; compaction
  // resets it, so drift self-heals.
  std::shared_ptr<std::int64_t> cancelled_pending_ =
      std::make_shared<std::int64_t>(0);
  telemetry::MetricsRegistry metrics_;
  telemetry::FlightRecorder* recorder_ = nullptr;
  telemetry::EventProfiler* profiler_ = nullptr;
  InvariantSink* invariants_ = nullptr;
  SimTime now_ = SimTime::zero();
  std::int64_t next_seq_ = 0;
  std::int64_t executed_ = 0;
  std::int64_t compactions_ = 0;
  std::int64_t past_schedules_ = 0;
  bool stopped_ = false;
};

}  // namespace oo::sim
