// Discrete-event simulation engine. A single Simulator owns virtual time;
// components schedule closures at absolute or relative times. Ties are
// broken by insertion order, making runs fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/time.h"

namespace oo::sim {

using EventFn = std::function<void()>;

// Handle for cancelling a scheduled event. Cancellation is lazy: the event
// stays queued but is skipped when popped.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return cancelled_ != nullptr; }
  void cancel() {
    if (cancelled_) *cancelled_ = true;
  }

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> flag)
      : cancelled_(std::move(flag)) {}
  std::shared_ptr<bool> cancelled_;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedule `fn` at absolute time `when` (must be >= now()).
  EventHandle schedule_at(SimTime when, EventFn fn);
  // Schedule `fn` `delay` from now.
  EventHandle schedule_in(SimTime delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }
  // Periodic timer starting at `start`, repeating every `period` until
  // cancelled or the run ends. Models the on-chip packet generator that
  // drives queue rotation and EQO updates (§5.1, Appx A).
  EventHandle schedule_every(SimTime start, SimTime period, EventFn fn);

  // Run until the queue drains or `until` is reached, whichever first.
  void run_until(SimTime until);
  // Run until the event queue drains completely.
  void run();
  // Stop the current run loop after the in-flight event returns.
  void stop() { stopped_ = true; }

  std::int64_t events_executed() const { return executed_; }
  std::size_t events_pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    std::int64_t seq;
    EventFn fn;
    std::shared_ptr<bool> cancelled;
    bool operator>(const Event& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  void dispatch(Event& ev);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  // Keeps periodic-timer reschedulers alive for the simulator's lifetime;
  // the event closures only hold weak references (see schedule_every).
  std::vector<std::shared_ptr<std::function<void(SimTime)>>> periodic_ticks_;
  SimTime now_ = SimTime::zero();
  std::int64_t next_seq_ = 0;
  std::int64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace oo::sim
