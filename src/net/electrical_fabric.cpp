#include "net/electrical_fabric.h"

#include <cassert>

namespace oo::net {

ElectricalFabric::ElectricalFabric(sim::Simulator& s, int num_nodes,
                                   BitsPerSec port_bw, SimTime transit,
                                   std::int64_t max_backlog)
    : sim_(s),
      port_bw_(port_bw),
      transit_(transit),
      max_backlog_(max_backlog),
      sinks_(static_cast<std::size_t>(num_nodes)),
      egress_backlog_bytes_(static_cast<std::size_t>(num_nodes), 0) {
  ingress_.reserve(static_cast<std::size_t>(num_nodes));
  egress_.reserve(static_cast<std::size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    // Ingress link serializes into the non-blocking core, then the core
    // transit delay, then the destination's egress port.
    ingress_.push_back(std::make_unique<Link>(
        s, port_bw, transit_, [this](Packet&& p) {
          egress_[static_cast<std::size_t>(p.dst_node)]->transmit(
              std::move(p));
        }));
    egress_.push_back(std::make_unique<Link>(
        s, port_bw, SimTime::zero(), [this, n](Packet&& p) {
          egress_backlog_bytes_[static_cast<std::size_t>(n)] -= p.size_bytes;
          auto& sink = sinks_[static_cast<std::size_t>(n)];
          assert(sink && "node not attached to electrical fabric");
          ++p.hops;
          sink(std::move(p));
        }));
  }
}

void ElectricalFabric::attach(NodeId node, DeliverFn deliver) {
  sinks_.at(static_cast<std::size_t>(node)) = std::move(deliver);
}

bool ElectricalFabric::transmit(NodeId from, Packet&& p) {
  const auto dst = static_cast<std::size_t>(p.dst_node);
  assert(dst < egress_.size());
  if (egress_backlog_bytes_[dst] + p.size_bytes > max_backlog_) {
    ++drops_;
    if (auto* tr = sim_.recorder()) {
      tr->drop(sim_.now(), telemetry::DropReason::Electrical, from, -1, p.id,
               p.size_bytes);
    }
    return false;
  }
  egress_backlog_bytes_[dst] += p.size_bytes;
  ingress_[static_cast<std::size_t>(from)]->transmit(std::move(p));
  return true;
}

SimTime ElectricalFabric::egress_backlog(NodeId node) const {
  const auto b = egress_backlog_bytes_[static_cast<std::size_t>(node)];
  return SimTime::nanos(serialization_ns(b, port_bw_));
}

}  // namespace oo::net
