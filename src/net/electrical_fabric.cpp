#include "net/electrical_fabric.h"

#include <cassert>

namespace oo::net {

ElectricalFabric::ElectricalFabric(sim::Simulator& s, int num_nodes,
                                   BitsPerSec port_bw, SimTime transit,
                                   std::int64_t max_backlog)
    : sim_(s),
      port_bw_(port_bw),
      transit_(transit),
      max_backlog_(max_backlog),
      sinks_(static_cast<std::size_t>(num_nodes)),
      egress_backlog_bytes_(static_cast<std::size_t>(num_nodes), 0) {
  ingress_.reserve(static_cast<std::size_t>(num_nodes));
  egress_.reserve(static_cast<std::size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    // Ingress link serializes into the non-blocking core, then the core
    // transit delay, then the destination's egress port.
    ingress_.push_back(std::make_unique<Link>(
        s, port_bw, transit_, [this](Packet&& p) {
          egress_[static_cast<std::size_t>(p.dst_node)]->transmit(
              std::move(p));
        }));
    egress_.push_back(std::make_unique<Link>(
        s, port_bw, SimTime::zero(), [this, n](Packet&& p) {
          egress_backlog_bytes_[static_cast<std::size_t>(n)] -= p.size_bytes;
          auto& sink = sinks_[static_cast<std::size_t>(n)];
          assert(sink && "node not attached to electrical fabric");
          ++p.hops;
          sink(std::move(p));
        }));
  }
}

void ElectricalFabric::attach(NodeId node, DeliverFn deliver) {
  sinks_.at(static_cast<std::size_t>(node)) = std::move(deliver);
}

void ElectricalFabric::set_sharded(bool on) {
  sharded_ = on;
  if (on) ingress_busy_.assign(ingress_.size(), SimTime::zero());
}

// Destination-lane half of the sharded path: tail-drop admission against
// the egress backlog, then the egress Link (whose busy horizon, backlog
// bookkeeping, and sink callback are all dst-lane state).
void ElectricalFabric::admit_and_egress(NodeId from, Packet&& p) {
  const auto dst = static_cast<std::size_t>(p.dst_node);
  if (egress_backlog_bytes_[dst] + p.size_bytes > max_backlog_) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    if (auto* tr = sim_.recorder()) {
      tr->drop(sim_.now(), telemetry::DropReason::Electrical, from, -1, p.id,
               p.size_bytes);
    }
    return;
  }
  egress_backlog_bytes_[dst] += p.size_bytes;
  egress_[dst]->transmit(std::move(p));
}

bool ElectricalFabric::transmit(NodeId from, Packet&& p) {
  const auto dst = static_cast<std::size_t>(p.dst_node);
  assert(dst < egress_.size());
  if (sharded_) {
    // Serialize on the source's fabric port (source-lane state), then hop
    // to the destination lane at serialization-end + core transit.
    SimTime& busy = ingress_busy_[static_cast<std::size_t>(from)];
    const SimTime start = std::max(sim_.now(), busy);
    busy = start + SimTime::nanos(serialization_ns(p.size_bytes, port_bw_));
    const NodeId dst_node = p.dst_node;
    sim_.schedule_at_lane(
        dst_node, busy + transit_,
        [this, from, pkt = std::move(p)]() mutable {
          admit_and_egress(from, std::move(pkt));
        },
        "elec.transit");
    return true;
  }
  if (egress_backlog_bytes_[dst] + p.size_bytes > max_backlog_) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    if (auto* tr = sim_.recorder()) {
      tr->drop(sim_.now(), telemetry::DropReason::Electrical, from, -1, p.id,
               p.size_bytes);
    }
    return false;
  }
  egress_backlog_bytes_[dst] += p.size_bytes;
  ingress_[static_cast<std::size_t>(from)]->transmit(std::move(p));
  return true;
}

SimTime ElectricalFabric::egress_backlog(NodeId node) const {
  const auto b = egress_backlog_bytes_[static_cast<std::size_t>(node)];
  return SimTime::nanos(serialization_ns(b, port_bw_));
}

}  // namespace oo::net
