// Electrical packet-switched fabric: an ideal non-blocking core with
// per-egress-port serialization and bounded backlog. Stands in for the
// folded-Clos aggregation/spine layers in the Clos baseline and in hybrid
// electrical-optical designs (c-Through's 10 Gbps parallel network, hybrid
// RotorNet). ToRs see one fabric port each; contention appears only at the
// egress port, which is where a non-blocking Clos queues too.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "eventsim/simulator.h"
#include "net/link.h"
#include "net/packet.h"

namespace oo::net {

class ElectricalFabric {
 public:
  using DeliverFn = std::function<void(Packet&&)>;

  // `port_bw` is the per-ToR fabric port bandwidth; `transit` the core
  // traversal delay (a couple of store-and-forward hops); `max_backlog`
  // bounds each egress port's queue in bytes (tail drop beyond it).
  ElectricalFabric(sim::Simulator& s, int num_nodes, BitsPerSec port_bw,
                   SimTime transit, std::int64_t max_backlog);

  void attach(NodeId node, DeliverFn deliver);

  // Send from `from`'s fabric port toward p.dst_node's fabric port.
  // Returns false on tail drop at the egress port. Sharded mode always
  // returns true: admission moves to the destination's lane (the backlog is
  // dst-lane state), so a tail drop is counted there instead of reported to
  // the sender — no caller acts on the return value.
  bool transmit(NodeId from, Packet&& p);

  BitsPerSec port_bandwidth() const { return port_bw_; }
  std::int64_t drops() const { return drops_.load(std::memory_order_relaxed); }
  // Current egress backlog toward `node`, in ns of serialization time.
  SimTime egress_backlog(NodeId node) const;

  // Sharded-engine mode (core::Network::enable_sharding): ingress
  // serialization is emulated with a per-source busy horizon on the source
  // lane, and the packet crosses to the destination ToR's lane at
  // serialization-end + transit for admission and egress queueing. The core
  // transit delay is >= the engine's sync window, so the hop needs no clamp.
  void set_sharded(bool on);

 private:
  void admit_and_egress(NodeId from, Packet&& p);

  sim::Simulator& sim_;
  BitsPerSec port_bw_;
  SimTime transit_;
  std::int64_t max_backlog_;
  std::vector<DeliverFn> sinks_;
  // Per-source ingress Link (serialization into the fabric) and one egress
  // Link per destination node; each Link's busy-until horizon is its queue.
  std::vector<std::unique_ptr<Link>> ingress_;
  std::vector<std::unique_ptr<Link>> egress_;
  std::vector<std::int64_t> egress_backlog_bytes_;
  std::atomic<std::int64_t> drops_{0};
  bool sharded_ = false;
  // Sharded-mode ingress serialization horizons (source-lane state).
  std::vector<SimTime> ingress_busy_;
};

}  // namespace oo::net
