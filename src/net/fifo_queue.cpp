#include "net/fifo_queue.h"

#include <algorithm>

namespace oo::net {

bool FifoQueue::enqueue(Packet&& p) {
  if (bytes_ + p.size_bytes > capacity_) return false;
  bytes_ += p.size_bytes;
  peak_bytes_ = std::max(peak_bytes_, bytes_);
  pkts_.push_back(std::move(p));
  return true;
}

std::optional<Packet> FifoQueue::dequeue() {
  if (paused_ || pkts_.empty()) return std::nullopt;
  Packet p = std::move(pkts_.front());
  pkts_.pop_front();
  bytes_ -= p.size_bytes;
  return p;
}

const Packet* FifoQueue::peek() const {
  if (paused_ || pkts_.empty()) return nullptr;
  return &pkts_.front();
}

}  // namespace oo::net
