// Byte-bounded FIFO packet queue with pause/resume — the building block for
// both classical egress queues and the slice-indexed calendar queues built
// on top of it (§5.1).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "net/packet.h"

namespace oo::net {

class FifoQueue {
 public:
  explicit FifoQueue(std::int64_t capacity_bytes = INT64_MAX)
      : capacity_(capacity_bytes) {}

  // False if the packet does not fit (tail drop at the caller's discretion).
  bool enqueue(Packet&& p);
  std::optional<Packet> dequeue();
  const Packet* peek() const;

  bool empty() const { return pkts_.empty(); }
  std::size_t size() const { return pkts_.size(); }
  std::int64_t bytes() const { return bytes_; }
  std::int64_t capacity() const { return capacity_; }
  std::int64_t free_bytes() const { return capacity_ - bytes_; }

  bool paused() const { return paused_; }
  void pause() { paused_ = true; }
  void resume() { paused_ = false; }

  // Running peak occupancy (buffer telemetry).
  std::int64_t peak_bytes() const { return peak_bytes_; }
  std::int64_t drops() const { return drops_; }
  void note_drop() { ++drops_; }

 private:
  std::deque<Packet> pkts_;
  std::int64_t capacity_;
  std::int64_t bytes_ = 0;
  std::int64_t peak_bytes_ = 0;
  std::int64_t drops_ = 0;
  bool paused_ = false;
};

}  // namespace oo::net
