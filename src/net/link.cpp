#include "net/link.h"

#include <algorithm>

namespace oo::net {

bool Link::idle() const { return busy_until_ <= sim_.now(); }

SimTime Link::transmit(Packet&& p) {
  const SimTime start = std::max(sim_.now(), busy_until_);
  const SimTime ser = SimTime::nanos(serialization_ns(p.size_bytes, bandwidth_));
  busy_until_ = start + ser;
  bytes_sent_ += p.size_bytes;
  window_bytes_ += p.size_bytes;
  SimTime arrive = busy_until_ + propagation_;
  if (jitter_ > SimTime::zero()) {
    arrive += SimTime::nanos(rng_.uniform_i64(0, jitter_.ns()));
  }
  sim_.schedule_at(
      arrive,
      [this, pkt = std::move(p)]() mutable { deliver_(std::move(pkt)); },
      "link");
  return busy_until_;
}

}  // namespace oo::net
