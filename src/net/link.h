// Point-to-point link: serialization at a configured bandwidth, then
// propagation (+ optional per-packet jitter), then delivery to a sink
// callback. The link keeps a busy-until horizon so back-to-back sends
// serialize correctly without an explicit egress queue.
#pragma once

#include <functional>
#include <utility>

#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"
#include "eventsim/simulator.h"
#include "net/packet.h"

namespace oo::net {

class Link {
 public:
  using DeliverFn = std::function<void(Packet&&)>;

  Link(sim::Simulator& s, BitsPerSec bandwidth, SimTime propagation,
       DeliverFn deliver)
      : sim_(s),
        bandwidth_(bandwidth),
        propagation_(propagation),
        deliver_(std::move(deliver)) {}

  BitsPerSec bandwidth() const { return bandwidth_; }
  SimTime propagation() const { return propagation_; }

  // Uniform jitter in [0, j] added to each delivery (models pipeline
  // processing variance; 0 by default).
  void set_jitter(SimTime j, Rng rng) {
    jitter_ = j;
    rng_ = rng;
  }

  // Earliest time a new packet could begin serializing.
  SimTime free_at() const { return busy_until_; }
  bool idle() const;

  // Serializes the packet (starting at max(now, busy_until)) and delivers it
  // after propagation. Returns the serialization-complete time.
  SimTime transmit(Packet&& p);

  std::int64_t bytes_sent() const { return bytes_sent_; }
  // Bytes sent since last reset (bandwidth telemetry, §4.2 bw_usage()).
  std::int64_t take_bytes_window() {
    return std::exchange(window_bytes_, 0);
  }

 private:
  sim::Simulator& sim_;
  BitsPerSec bandwidth_;
  SimTime propagation_;
  DeliverFn deliver_;
  SimTime busy_until_ = SimTime::zero();
  SimTime jitter_ = SimTime::zero();
  Rng rng_;
  std::int64_t bytes_sent_ = 0;
  std::int64_t window_bytes_ = 0;
};

}  // namespace oo::net
