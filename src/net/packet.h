// Packet model. Packets are value types moved between queues and links;
// everything a switch, fabric, or transport needs rides along in the struct
// (simulation stand-in for header fields plus per-packet telemetry).
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/time.h"

namespace oo::net {

enum class PacketType : std::uint8_t {
  Data,            // application payload
  Ack,             // transport acknowledgement
  Pushback,        // traffic push-back broadcast (§5.2)
  CircuitNotice,   // upcoming-circuit signal to hosts (flow pausing, §5.2)
  OffloadDown,     // calendar-queue packet offloaded switch -> host (§5.2)
  OffloadReturn,   // offloaded packet returning host -> switch
  Probe,           // delay/RTT measurement probe
};

// One source-routing hop: <egress port, departure time slice> as written by
// the time-flow table's source-routing action (§3, Fig. 3(d)).
struct SourceHop {
  PortId egress = kInvalidPort;
  SliceId dep_slice = kAnySlice;
};

struct Packet {
  PacketId id = 0;
  FlowId flow = 0;
  PacketType type = PacketType::Data;

  // Endpoint nodes on the fabric (ToRs in the switch-centric design).
  NodeId src_node = kInvalidNode;
  NodeId dst_node = kInvalidNode;
  HostId src_host = -1;
  HostId dst_host = -1;

  std::int64_t size_bytes = 0;
  std::int64_t seq = 0;          // transport sequence number (bytes)
  std::int64_t payload = 0;      // transport payload length (bytes)

  SimTime created;               // first entered the network
  SimTime probe_echo;            // original tx time carried by echoed probes
  int hops = 0;                  // fabric hops traversed so far
  bool trimmed = false;          // payload cut by a Trim congestion response

  // Hash used by per-packet / per-flow multipath selection. Assigned once at
  // the source (timestamp hash or five-tuple hash, §3).
  std::uint32_t mp_hash = 0;

  // Remaining source route; empty when per-hop lookup is in use.
  std::vector<SourceHop> source_route;
  std::size_t route_idx = 0;

  // Calendar-queue bookkeeping stamped at enqueue time: which cycle-relative
  // slice and uplink the packet was scheduled for. A mismatch when its queue
  // reactivates means the packet missed its slice (§5.2) and is re-routed.
  SliceId intended_slice = kAnySlice;
  PortId intended_port = kInvalidPort;
  // Buffer offloading (§5.2): packet currently parked on / returning from a
  // host, and the absolute slice it must be back on the switch for.
  bool offloaded = false;
  std::int64_t offload_abs_slice = -1;

  bool has_source_route() const { return route_idx < source_route.size(); }
  const SourceHop& next_hop() const { return source_route[route_idx]; }
  void pop_hop() { ++route_idx; }
};

}  // namespace oo::net
