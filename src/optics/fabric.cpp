#include "optics/fabric.h"

#include <cassert>
#include <cmath>

namespace oo::optics {

OcsProfile ocs_mems() {
  return OcsProfile{.name = "mems",
                    .reconfig_delay = SimTime::millis(25),
                    .min_slice = SimTime::millis(100),
                    .latency_min = SimTime::nanos(300),
                    .latency_max = SimTime::nanos(320)};
}

OcsProfile ocs_rotor() {
  return OcsProfile{.name = "rotor",
                    .reconfig_delay = SimTime::micros(2),
                    .min_slice = SimTime::micros(20),
                    .latency_min = SimTime::nanos(300),
                    .latency_max = SimTime::nanos(320)};
}

OcsProfile ocs_liquid_crystal() {
  return OcsProfile{.name = "liquid-crystal",
                    .reconfig_delay = SimTime::micros(10),
                    .min_slice = SimTime::micros(100),
                    .latency_min = SimTime::nanos(300),
                    .latency_max = SimTime::nanos(320)};
}

OcsProfile ocs_awgr() {
  return OcsProfile{.name = "awgr",
                    .reconfig_delay = SimTime::nanos(200),
                    .min_slice = SimTime::micros(2),
                    .latency_min = SimTime::nanos(300),
                    .latency_max = SimTime::nanos(320)};
}

OcsProfile ocs_emulated() {
  // Tofino2 cut-through logical OCS (§5.3); latency calibrated to the
  // measured 1287-1324 ns ToR-to-ToR delay of Fig. 11.
  return OcsProfile{.name = "emulated",
                    .reconfig_delay = SimTime::nanos(200),
                    .min_slice = SimTime::micros(2),
                    .latency_min = SimTime::nanos(1287),
                    .latency_max = SimTime::nanos(1324)};
}

OpticalFabric::OpticalFabric(sim::Simulator& s, Schedule schedule,
                             OcsProfile profile, Rng rng)
    : sim_(s),
      schedule_(std::move(schedule)),
      profile_(std::move(profile)),
      rng_(rng),
      delivered_(&s.metrics().counter("fabric.delivered")),
      drops_no_circuit_(
          &s.metrics().counter("fabric.drops", {{"class", "no_circuit"}})),
      drops_guard_(&s.metrics().counter("fabric.drops", {{"class", "guard"}})),
      drops_boundary_(
          &s.metrics().counter("fabric.drops", {{"class", "boundary"}})),
      drops_failed_(
          &s.metrics().counter("fabric.drops", {{"class", "failed"}})),
      drops_corrupt_(
          &s.metrics().counter("fabric.drops", {{"class", "corrupt"}})),
      drops_gray_(&s.metrics().counter("fabric.drops", {{"class", "gray"}})),
      reconfig_stalls_(&s.metrics().counter("fabric.reconfig_stalls")),
      wrong_slice_(&s.metrics().counter("fabric.wrong_slice")) {
  sinks_.resize(static_cast<std::size_t>(schedule_.num_nodes()));
  failed_ports_.assign(static_cast<std::size_t>(schedule_.num_nodes()) *
                           schedule_.uplinks(),
                       0);
  port_ber_.assign(failed_ports_.size(), 0.0);
}

void OpticalFabric::set_port_failed(NodeId node, PortId port, bool failed) {
  auto& slot =
      failed_ports_.at(static_cast<std::size_t>(node) * schedule_.uplinks() +
                       static_cast<std::size_t>(port));
  const bool was = slot != 0;
  if (was == failed) return;  // no light transition, no alarm
  slot = failed ? 1 : 0;
  const SimTime at = sim_.now();
  if (auto* tr = sim_.recorder()) tr->circuit(at, !failed, node, port);
  sim_.schedule_in(
      profile_.los_detect_latency,
      [this, node, port, at, failed]() {
        const auto& listeners = failed ? down_listeners_ : up_listeners_;
        for (const auto& fn : listeners) fn(node, port, at);
      },
      "fabric.los");
}

void OpticalFabric::set_port_ber(NodeId node, PortId port, double ber) {
  port_ber_.at(static_cast<std::size_t>(node) * schedule_.uplinks() +
               static_cast<std::size_t>(port)) = ber;
}

double OpticalFabric::port_ber(NodeId node, PortId port) const {
  return port_ber_[static_cast<std::size_t>(node) * schedule_.uplinks() +
                   static_cast<std::size_t>(port)];
}

void OpticalFabric::set_gray_pair(NodeId node, PortId port, NodeId peer,
                                  double prob) {
  assert(node >= 0 && node < schedule_.num_nodes());
  assert(port >= 0 && port < schedule_.uplinks());
  for (auto it = gray_pairs_.begin(); it != gray_pairs_.end(); ++it) {
    if (it->node == node && it->port == port && it->peer == peer) {
      if (prob <= 0.0) {
        gray_pairs_.erase(it);
      } else {
        it->prob = prob;
      }
      return;
    }
  }
  if (prob > 0.0) gray_pairs_.push_back({node, port, peer, prob});
}

bool OpticalFabric::stall_reconfig(SimTime extra) {
  if (!reconfiguring() || extra <= SimTime::zero()) return false;
  switch_done_ += extra;
  reconfig_stalls_->inc();
  // The commit event scheduled for the original deadline sees the pushed-out
  // switch_done_ and does nothing; this one lands the stalled retargeting.
  sim_.schedule_at(
      switch_done_,
      [this]() {
        if (switching_ && sim_.now() >= switch_done_) {
          schedule_ = next_schedule_;
          switching_ = false;
        }
      },
      "fabric.reconfig");
  return true;
}

bool OpticalFabric::port_failed(NodeId node, PortId port) const {
  return failed_ports_[static_cast<std::size_t>(node) * schedule_.uplinks() +
                       static_cast<std::size_t>(port)] != 0;
}

void OpticalFabric::attach(NodeId node, DeliverFn deliver) {
  assert(node >= 0 && node < schedule_.num_nodes());
  sinks_[static_cast<std::size_t>(node)] = std::move(deliver);
}

bool OpticalFabric::reconfiguring() const {
  return switching_ && sim_.now() < switch_done_;
}

std::optional<Endpoint> OpticalFabric::live_peer(const Schedule& sched,
                                                 NodeId from, PortId port,
                                                 SliceId slice,
                                                 SimTime at) const {
  auto cur = sched.peer(from, port, slice);
  if (switching_ && at < switch_done_) {
    // Mid-reconfiguration: a circuit is up only if the old and new schedule
    // agree on it (unchanged circuits keep carrying light).
    auto nxt = next_schedule_.peer(from, port, slice);
    if (cur && nxt && *cur == *nxt) return cur;
    return std::nullopt;
  }
  return cur;
}

void OpticalFabric::enable_sharding() {
  if (sharded_) return;
  sharded_ = true;
  src_rngs_.reserve(static_cast<std::size_t>(schedule_.num_nodes()));
  for (int n = 0; n < schedule_.num_nodes(); ++n) {
    src_rngs_.push_back(rng_.fork());
  }
}

void OpticalFabric::notify_violation(NodeId from, SimTime at) {
  if (violation_listeners_.empty()) return;
  if (sharded_ &&
      sim_.current_lane() != sim::Simulator::kControlLane) {
    // Listeners (the sync watchdog) live on the control queue; a worker
    // lane posts the symptom through the barrier instead of calling in.
    sim_.schedule_at_lane(
        sim::Simulator::kControlLane, sim_.now(),
        [this, from, at]() {
          for (const auto& fn : violation_listeners_) fn(from, at);
        },
        "fabric.violation");
    return;
  }
  for (const auto& fn : violation_listeners_) fn(from, at);
}

void OpticalFabric::transmit(NodeId from, PortId port, Packet&& p,
                             SimTime tx_start, SimTime tx_end) {
  auto* tr = sim_.recorder();
  const auto dropped = [&](telemetry::Counter* c, telemetry::DropReason why) {
    c->inc();
    if (tr) tr->drop(sim_.now(), why, from, port, p.id, p.size_bytes);
  };
  // Commit a pending reconfiguration once its window has elapsed. Sharded
  // mode must not write shared fabric state from a worker lane, so it reads
  // the effective schedule instead — the control-queue commit event
  // scheduled by reconfigure() does the actual write.
  if (switching_ && sim_.now() >= switch_done_ && !sharded_) {
    schedule_ = next_schedule_;
    switching_ = false;
  }
  const Schedule& sched = (sharded_ && switching_ && sim_.now() >= switch_done_)
                              ? next_schedule_
                              : schedule_;
  const std::int64_t abs_a = sched.abs_slice_at(tx_start);
  // Slice-boundary and per-slice retargeting constraints only exist on
  // rotating (multi-slice) schedules; a TA topology instance holds its
  // circuits continuously and reconfigures only via reconfigure().
  if (sched.period() > 1) {
    const std::int64_t abs_b = sched.abs_slice_at(tx_end - SimTime::nanos(1));
    if (abs_a != abs_b) {
      dropped(drops_boundary_, telemetry::DropReason::Boundary);
      notify_violation(from, tx_start);
      return;
    }
    const SimTime slice_begin = sched.slice_start(abs_a);
    if (tx_start < slice_begin + profile_.reconfig_delay) {
      dropped(drops_guard_, telemetry::DropReason::Guard);
      notify_violation(from, tx_start);
      return;
    }
  }
  const SliceId slice = sched.slice_of(abs_a);
  // Wrong-slice launch: the sender's calendar stamped this packet for a
  // specific cycle slice, but its (drifted) clock opened the window inside a
  // different one. A healthy node can never trip this — its launch window is
  // provably interior to the intended slice — so the check is a pure desync
  // symptom. The fabric itself has no way to refuse the bytes: the circuit
  // of the wrong slice is live and carries them to the wrong peer.
  if (sched.period() > 1 && p.intended_slice != kAnySlice &&
      slice != p.intended_slice) {
    wrong_slice_->inc();
    if (tr) tr->wrong_slice(sim_.now(), from, port, p.id, abs_a);
    notify_violation(from, tx_start);
  }
  auto peer = live_peer(sched, from, port, slice, tx_start);
  if (!peer) {
    dropped(drops_no_circuit_, telemetry::DropReason::NoCircuit);
    return;
  }
  if (port_failed(from, port) || port_failed(peer->node, peer->port)) {
    dropped(drops_failed_, telemetry::DropReason::Failed);
    return;
  }
  // Sharded: BER/jitter draws come from the source node's private stream,
  // so the draw sequence is a function of that ToR's own transmissions —
  // identical at any worker count. The shared stream would interleave by
  // execution order across lanes.
  Rng& rng = sharded_ ? src_rngs_[static_cast<std::size_t>(from)] : rng_;
  // Gray port-pair loss: a dirty mirror on this specific circuit
  // configuration eats the packet with no alarm and no timing violation —
  // only the rx-side byte ledger can see it. The rng draw happens ONLY when
  // an entry matches, so runs without gray faults consume the exact same
  // random sequence as before the feature existed (byte-identity).
  if (!gray_pairs_.empty()) {
    for (const GrayEntry& g : gray_pairs_) {
      if (g.node != from || g.port != port) continue;
      if (g.peer != kInvalidNode && g.peer != peer->node) continue;
      if (rng.uniform01() < g.prob) {
        dropped(drops_gray_, telemetry::DropReason::Gray);
        return;
      }
      break;  // at most one entry per (node, port, peer) can match
    }
  }
  const double ber = port_ber(from, port) + port_ber(peer->node, peer->port);
  if (ber > 0.0) {
    const double bits = static_cast<double>(p.size_bytes) * kBitsPerByte;
    const double p_corrupt = 1.0 - std::pow(1.0 - ber, bits);
    if (rng.uniform01() < p_corrupt) {
      dropped(drops_corrupt_, telemetry::DropReason::Corrupt);
      return;
    }
  }
  const SimTime jitter_span = profile_.latency_max - profile_.latency_min;
  SimTime latency = profile_.latency_min;
  if (jitter_span > SimTime::zero()) {
    latency += SimTime::nanos(rng.uniform_i64(0, jitter_span.ns()));
  }
  const NodeId to = peer->node;
  const PortId in_port = peer->port;
  auto& sink = sinks_[static_cast<std::size_t>(to)];
  assert(sink && "destination node not attached to fabric");
  delivered_->inc();
  ++p.hops;
  // Delivery runs on the destination ToR's lane (lane id == node id); the
  // fabric latency is >= the engine's sync window, so the hop always lands
  // in a later window without clamping. Legacy mode: plain schedule_at.
  sim_.schedule_at_lane(
      to, tx_end + latency,
      [&sink, in_port, pkt = std::move(p)]() mutable {
        sink(std::move(pkt), in_port);
      },
      "fabric.deliver");
}

void OpticalFabric::reconfigure(Schedule next, SimTime delay) {
  // A reconfigure while one is pending: the pending one completes logically
  // first (its schedule becomes "current" for the diff).
  if (switching_ && sim_.now() >= switch_done_) {
    schedule_ = next_schedule_;
  }
  next_schedule_ = std::move(next);
  switching_ = true;
  switch_done_ = sim_.now() + delay;
  sim_.schedule_at(
      switch_done_,
      [this]() {
        if (switching_ && sim_.now() >= switch_done_) {
          schedule_ = next_schedule_;
          switching_ = false;
        }
      },
      "fabric.reconfig");
}

}  // namespace oo::optics
