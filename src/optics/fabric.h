// Optical network fabric. Models both a real OCS (bufferless waveguide,
// reconfiguration downtime) and the paper's emulated logical OCS on a
// programmable switch (§5.3): time-based connectivity, lookup-table circuit
// on/off semantics (packets over disconnected circuits are dropped), a
// configurable reconfiguration window at slice boundaries, and cut-through
// pipeline latency calibrated to the paper's 1287–1324 ns ToR-to-ToR delay
// (Fig. 11).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"
#include "eventsim/simulator.h"
#include "net/packet.h"
#include "optics/schedule.h"

namespace oo::optics {

using net::Packet;

// Device-level characteristics of an OCS technology (§6 Case III).
struct OcsProfile {
  std::string name = "emulated";
  // Downtime at the start of every slice while circuits retarget. Packets
  // launched into this window are lost (bufferless fabric).
  SimTime reconfig_delay = SimTime::nanos(200);
  // Shortest slice the device supports (for feasibility checks).
  SimTime min_slice = SimTime::micros(2);
  // One-way fabric latency: cut-through pipeline + propagation. The spread
  // (max - min) is the delivery jitter the guardband must absorb (§7).
  SimTime latency_min = SimTime::nanos(1287);
  SimTime latency_max = SimTime::nanos(1324);
  // Time between light stopping on a port and the transceiver raising its
  // loss-of-signal alarm (the on_port_down/on_port_up callbacks). Models
  // the LOS debounce interval of real optics.
  SimTime los_detect_latency = SimTime::micros(1);
};

// A few documented technology presets (Fig. 10's four sampled OCSes).
OcsProfile ocs_mems();            // Polatis-style 3D MEMS: ms reconfiguration
OcsProfile ocs_rotor();           // RotorNet-style rotor: ~20 us slices
OcsProfile ocs_liquid_crystal();  // LC-based: ~100-200 us slices
OcsProfile ocs_awgr();            // Sirius-style AWGR + tunable laser: ns
OcsProfile ocs_emulated();        // Tofino2-emulated logical OCS (§5.3)

class OpticalFabric {
 public:
  // Delivery callback: (packet, ingress port at destination node).
  using DeliverFn = std::function<void(Packet&&, PortId)>;

  OpticalFabric(sim::Simulator& s, Schedule schedule, OcsProfile profile,
                Rng rng);

  const Schedule& schedule() const { return schedule_; }
  const OcsProfile& profile() const { return profile_; }

  void attach(NodeId node, DeliverFn deliver);

  // Launch a packet that occupied the sender's transmitter during
  // [tx_start, tx_end]. The circuit must be up for that whole interval:
  //  - both instants in the same slice,
  //  - past the slice's reconfiguration window,
  //  - an installed circuit on (from, port) in that slice,
  //  - outside any in-progress topology reconfiguration for that port pair.
  // Violations drop the packet (bufferless fabric) and are counted.
  void transmit(NodeId from, PortId port, Packet&& p, SimTime tx_start,
                SimTime tx_end);

  // TA-style topology update: after `delay` (circuit retargeting time, e.g.
  // tens of ms for MEMS), the new schedule takes effect. During the window,
  // only circuits identical in both schedules stay up.
  void reconfigure(Schedule next, SimTime delay);
  bool reconfiguring() const;

  // Failure injection: a failed transceiver/fiber kills every circuit that
  // touches (node, port) — light simply stops passing. Both directions of
  // the circuit go dark (the peer's receiver sees nothing). Clearing the
  // failure restores service on the next transmission.
  void set_port_failed(NodeId node, PortId port, bool failed);
  bool port_failed(NodeId node, PortId port) const;
  std::int64_t drops_failed() const { return drops_failed_->value(); }

  // Loss-of-signal alarms: subscribers are notified `los_detect_latency`
  // after a port's light state changes, with the SimTime the transition
  // actually happened (so detection latency is observable). Fires whether
  // or not traffic touches the port — unlike drop counters, an idle dark
  // port still raises an alarm.
  using PortEventFn = std::function<void(NodeId, PortId, SimTime)>;
  void on_port_down(PortEventFn fn) {
    down_listeners_.push_back(std::move(fn));
  }
  void on_port_up(PortEventFn fn) { up_listeners_.push_back(std::move(fn)); }

  // Transceiver degradation: a nonzero bit-error rate on either endpoint of
  // a circuit corrupts packets with probability 1-(1-ber)^bits; corrupted
  // packets are dropped by the receiver's FEC and counted separately.
  void set_port_ber(NodeId node, PortId port, double ber);
  double port_ber(NodeId node, PortId port) const;
  std::int64_t drops_corrupt() const { return drops_corrupt_->value(); }

  // Gray failure: a dirty mirror / marginal alignment on one circuit
  // configuration. Packets from (node, port) whose far end lands on `peer`
  // (kInvalidNode = any peer) are dropped with probability `prob` —
  // *silently*: no LOS alarm, no timing violation, nothing the loud
  // detectors can see. prob = 0 clears the entry. The match list is empty
  // on clean runs, so the hot path costs one size check and — crucially for
  // byte-identity — draws no randomness unless an entry actually matches.
  void set_gray_pair(NodeId node, PortId port, NodeId peer, double prob);
  std::int64_t drops_gray() const { return drops_gray_->value(); }

  // Fault injection: extend an in-progress reconfiguration (a stuck MEMS
  // retargeting / slow switch-control round-trip). Returns false (no-op)
  // when no retargeting is in flight.
  bool stall_reconfig(SimTime extra);
  std::int64_t reconfig_stalls() const { return reconfig_stalls_->value(); }

  // Sender-side timing violations: a transmission that straddled a slice
  // boundary, landed in the reconfiguration guard, or launched into a slice
  // other than the one its calendar queue scheduled it for. These are the
  // *observable symptoms* of a desynchronized sender clock — the watchdog
  // subscribes here rather than reading clock state it could not see in a
  // real deployment. Fired synchronously from transmit() with the offending
  // sender and the launch instant.
  using TimingViolationFn = std::function<void(NodeId, SimTime)>;
  void on_timing_violation(TimingViolationFn fn) {
    violation_listeners_.push_back(std::move(fn));
  }

  // Packets launched into a live circuit of the *wrong* slice: the circuit
  // exists, so the fabric happily delivers the bytes to whatever peer the
  // schedule connects — silent misdelivery, the §7 hazard. Counted (and
  // reported to violation listeners), never dropped.
  std::int64_t wrong_slice() const { return wrong_slice_->value(); }

  // Sharded-engine mode (core::Network::enable_sharding): transmit() then
  // runs on per-ToR worker lanes, so it (a) draws BER/jitter from a
  // per-source-node rng instead of the shared one, (b) never commits a
  // pending reconfiguration itself (reads the effective schedule instead;
  // the control-queue commit event does the write), and (c) reports timing
  // violations through a control-lane event rather than synchronously.
  // Call before any traffic; one-shot.
  void enable_sharding();

  std::int64_t delivered() const { return delivered_->value(); }
  std::int64_t drops_no_circuit() const { return drops_no_circuit_->value(); }
  std::int64_t drops_guard() const { return drops_guard_->value(); }
  std::int64_t drops_boundary() const { return drops_boundary_->value(); }
  std::int64_t total_drops() const {
    return drops_no_circuit() + drops_guard() + drops_boundary() +
           drops_failed() + drops_corrupt() + drops_gray();
  }

 private:
  std::optional<Endpoint> live_peer(const Schedule& sched, NodeId from,
                                    PortId port, SliceId slice,
                                    SimTime at) const;

  sim::Simulator& sim_;
  Schedule schedule_;
  Schedule next_schedule_;
  SimTime switch_done_ = SimTime::zero();  // end of in-progress reconfigure
  bool switching_ = false;
  OcsProfile profile_;
  Rng rng_;
  bool sharded_ = false;
  std::vector<Rng> src_rngs_;  // per-source-node streams (sharded mode)
  std::vector<DeliverFn> sinks_;
  std::vector<char> failed_ports_;  // node x port bitmap
  std::vector<double> port_ber_;    // node x port bit-error rates
  // Active gray-pair loss entries. Faults are rare and few, so a linear
  // scan of a (nearly always empty) vector beats a dense node x port x peer
  // table; the empty-vector check keeps clean runs at one branch.
  struct GrayEntry {
    NodeId node;
    PortId port;
    NodeId peer;  // kInvalidNode = any peer
    double prob;
  };
  std::vector<GrayEntry> gray_pairs_;
  void notify_violation(NodeId from, SimTime at);

  std::vector<PortEventFn> down_listeners_;
  std::vector<PortEventFn> up_listeners_;
  std::vector<TimingViolationFn> violation_listeners_;
  // Registry-backed counters ("fabric.delivered", "fabric.drops"{class=...},
  // "fabric.reconfig_stalls"): same hot-path cost as plain fields, but
  // visible to metrics exports without per-component plumbing. The public
  // accessors above are thin shims over these cells.
  telemetry::Counter* delivered_;
  telemetry::Counter* drops_no_circuit_;
  telemetry::Counter* drops_guard_;
  telemetry::Counter* drops_boundary_;
  telemetry::Counter* drops_failed_;
  telemetry::Counter* drops_corrupt_;
  telemetry::Counter* drops_gray_;
  telemetry::Counter* reconfig_stalls_;
  telemetry::Counter* wrong_slice_;
};

}  // namespace oo::optics
