#include "optics/schedule.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace oo::optics {

Schedule::Schedule(int num_nodes, int uplinks, SliceId period,
                   SimTime slice_duration)
    : num_nodes_(num_nodes),
      uplinks_(uplinks),
      period_(period),
      slice_duration_(slice_duration) {
  assert(period_ >= 1);
  assert(slice_duration_ > SimTime::zero());
  table_.assign(static_cast<std::size_t>(num_nodes_) * uplinks_ * period_,
                Endpoint{});
}

std::size_t Schedule::table_index(NodeId node, PortId port,
                                  SliceId slice) const {
  return (static_cast<std::size_t>(node) * uplinks_ + port) * period_ + slice;
}

bool Schedule::feasible(const Circuit& c) const {
  if (c.a < 0 || c.a >= num_nodes_ || c.b < 0 || c.b >= num_nodes_)
    return false;
  if (c.a_port < 0 || c.a_port >= uplinks_ || c.b_port < 0 ||
      c.b_port >= uplinks_)
    return false;
  if (c.a == c.b) return false;
  if (c.slice != kAnySlice && (c.slice < 0 || c.slice >= period_))
    return false;
  const SliceId lo = c.slice == kAnySlice ? 0 : c.slice;
  const SliceId hi = c.slice == kAnySlice ? period_ - 1 : c.slice;
  for (SliceId s = lo; s <= hi; ++s) {
    if (table_[table_index(c.a, c.a_port, s)].node != kInvalidNode)
      return false;
    if (table_[table_index(c.b, c.b_port, s)].node != kInvalidNode)
      return false;
  }
  return true;
}

bool Schedule::add_circuit(const Circuit& c) {
  if (!feasible(c)) return false;
  const SliceId lo = c.slice == kAnySlice ? 0 : c.slice;
  const SliceId hi = c.slice == kAnySlice ? period_ - 1 : c.slice;
  for (SliceId s = lo; s <= hi; ++s) {
    table_[table_index(c.a, c.a_port, s)] = Endpoint{c.b, c.b_port};
    table_[table_index(c.b, c.b_port, s)] = Endpoint{c.a, c.a_port};
  }
  circuits_.push_back(c);
  direct_index_valid_ = false;
  direct_index_.clear();
  return true;
}

std::optional<Endpoint> Schedule::peer(NodeId node, PortId port,
                                       SliceId slice) const {
  if (node < 0 || node >= num_nodes_ || port < 0 || port >= uplinks_)
    return std::nullopt;
  if (slice == kAnySlice) slice = 0;
  if (slice < 0 || slice >= period_) return std::nullopt;
  const Endpoint& e = table_[table_index(node, port, slice)];
  if (e.node == kInvalidNode) return std::nullopt;
  return e;
}

std::vector<std::pair<NodeId, PortId>> Schedule::neighbors(
    NodeId node, SliceId slice) const {
  std::vector<std::pair<NodeId, PortId>> out;
  for (PortId p = 0; p < uplinks_; ++p) {
    if (auto e = peer(node, p, slice)) out.emplace_back(e->node, p);
  }
  return out;
}

void Schedule::build_direct_index() const {
  if (direct_index_valid_) return;
  direct_index_.assign(
      static_cast<std::size_t>(num_nodes_) * num_nodes_, {});
  for (NodeId n = 0; n < num_nodes_; ++n) {
    // Slice-major, then port: each (node, dst) list comes out sorted by
    // (slice, port), matching the scan order of the pre-index next_direct
    // (earliest slice wins, lowest port breaks ties).
    for (SliceId s = 0; s < period_; ++s) {
      for (PortId p = 0; p < uplinks_; ++p) {
        const Endpoint& e = table_[table_index(n, p, s)];
        if (e.node == kInvalidNode) continue;
        direct_index_[static_cast<std::size_t>(n) * num_nodes_ + e.node]
            .push_back({s, p});
      }
    }
  }
  direct_index_valid_ = true;
}

std::optional<Schedule::DirectHop> Schedule::next_direct(NodeId node,
                                                         NodeId dst,
                                                         SliceId from) const {
  if (node < 0 || node >= num_nodes_ || dst < 0 || dst >= num_nodes_) {
    return std::nullopt;
  }
  build_direct_index();
  const auto& live =
      direct_index_[static_cast<std::size_t>(node) * num_nodes_ + dst];
  if (live.empty()) return std::nullopt;
  // First live slice >= from (cyclic): lower_bound over the sorted list,
  // wrapping to the front when the tail has nothing.
  const SliceId f = slice_of(from);
  auto it = std::lower_bound(
      live.begin(), live.end(), f,
      [](const std::pair<SliceId, PortId>& e, SliceId v) {
        return e.first < v;
      });
  if (it == live.end()) it = live.begin();
  return DirectHop{it->first, it->second};
}

std::string Schedule::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "schedule{nodes=%d uplinks=%d period=%d slice=%s circuits=%zu}",
                num_nodes_, uplinks_, period_, slice_duration_.str().c_str(),
                circuits_.size());
  return buf;
}

}  // namespace oo::optics
