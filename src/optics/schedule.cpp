#include "optics/schedule.h"

#include <cassert>
#include <cstdio>

namespace oo::optics {

Schedule::Schedule(int num_nodes, int uplinks, SliceId period,
                   SimTime slice_duration)
    : num_nodes_(num_nodes),
      uplinks_(uplinks),
      period_(period),
      slice_duration_(slice_duration) {
  assert(period_ >= 1);
  assert(slice_duration_ > SimTime::zero());
  table_.assign(static_cast<std::size_t>(num_nodes_) * uplinks_ * period_,
                Endpoint{});
}

std::size_t Schedule::table_index(NodeId node, PortId port,
                                  SliceId slice) const {
  return (static_cast<std::size_t>(node) * uplinks_ + port) * period_ + slice;
}

bool Schedule::feasible(const Circuit& c) const {
  if (c.a < 0 || c.a >= num_nodes_ || c.b < 0 || c.b >= num_nodes_)
    return false;
  if (c.a_port < 0 || c.a_port >= uplinks_ || c.b_port < 0 ||
      c.b_port >= uplinks_)
    return false;
  if (c.a == c.b) return false;
  if (c.slice != kAnySlice && (c.slice < 0 || c.slice >= period_))
    return false;
  const SliceId lo = c.slice == kAnySlice ? 0 : c.slice;
  const SliceId hi = c.slice == kAnySlice ? period_ - 1 : c.slice;
  for (SliceId s = lo; s <= hi; ++s) {
    if (table_[table_index(c.a, c.a_port, s)].node != kInvalidNode)
      return false;
    if (table_[table_index(c.b, c.b_port, s)].node != kInvalidNode)
      return false;
  }
  return true;
}

bool Schedule::add_circuit(const Circuit& c) {
  if (!feasible(c)) return false;
  const SliceId lo = c.slice == kAnySlice ? 0 : c.slice;
  const SliceId hi = c.slice == kAnySlice ? period_ - 1 : c.slice;
  for (SliceId s = lo; s <= hi; ++s) {
    table_[table_index(c.a, c.a_port, s)] = Endpoint{c.b, c.b_port};
    table_[table_index(c.b, c.b_port, s)] = Endpoint{c.a, c.a_port};
  }
  circuits_.push_back(c);
  return true;
}

std::optional<Endpoint> Schedule::peer(NodeId node, PortId port,
                                       SliceId slice) const {
  if (node < 0 || node >= num_nodes_ || port < 0 || port >= uplinks_)
    return std::nullopt;
  if (slice == kAnySlice) slice = 0;
  if (slice < 0 || slice >= period_) return std::nullopt;
  const Endpoint& e = table_[table_index(node, port, slice)];
  if (e.node == kInvalidNode) return std::nullopt;
  return e;
}

std::vector<std::pair<NodeId, PortId>> Schedule::neighbors(
    NodeId node, SliceId slice) const {
  std::vector<std::pair<NodeId, PortId>> out;
  for (PortId p = 0; p < uplinks_; ++p) {
    if (auto e = peer(node, p, slice)) out.emplace_back(e->node, p);
  }
  return out;
}

std::optional<Schedule::DirectHop> Schedule::next_direct(NodeId node,
                                                         NodeId dst,
                                                         SliceId from) const {
  for (SliceId k = 0; k < period_; ++k) {
    const SliceId s = slice_of(from + k);
    for (PortId p = 0; p < uplinks_; ++p) {
      if (auto e = peer(node, p, s); e && e->node == dst) {
        return DirectHop{s, p};
      }
    }
  }
  return std::nullopt;
}

std::string Schedule::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "schedule{nodes=%d uplinks=%d period=%d slice=%s circuits=%zu}",
                num_nodes_, uplinks_, period_, slice_duration_.str().c_str(),
                circuits_.size());
  return buf;
}

}  // namespace oo::optics
