// Circuit schedule: the compiled form of a topology program. A schedule maps
// (node, optical uplink, time slice) to the peer endpoint it is circuit-
// connected to. TA architectures use single-slice (period 1) schedules with
// wildcard slices — a static topology instance; TO architectures use
// multi-slice rotation schedules (§2.1, §4.2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/time.h"

namespace oo::optics {

// connect(Circuit<N1,port1,N2,port2,ts>) — the topology primitive (Tab. 1).
// slice == kAnySlice means the circuit holds in every slice of the cycle.
struct Circuit {
  NodeId a = kInvalidNode;
  PortId a_port = kInvalidPort;
  NodeId b = kInvalidNode;
  PortId b_port = kInvalidPort;
  SliceId slice = kAnySlice;

  bool operator==(const Circuit&) const = default;
};

struct Endpoint {
  NodeId node = kInvalidNode;
  PortId port = kInvalidPort;
  bool operator==(const Endpoint&) const = default;
};

class Schedule {
 public:
  // `period` is the number of slices in one optical cycle (1 for TA
  // topology instances). `slice_duration` includes the guardband.
  Schedule(int num_nodes, int uplinks, SliceId period, SimTime slice_duration);
  Schedule() : Schedule(0, 0, 1, SimTime::micros(100)) {}

  int num_nodes() const { return num_nodes_; }
  int uplinks() const { return uplinks_; }
  // Deployment epoch stamped by the controller's transactional deploy: every
  // committed fabric swap carries a strictly increasing epoch, so stale
  // installs can be fenced and mixed-epoch exposure measured. 0 = never
  // deployed through a transaction (construction-time schedule).
  std::uint64_t epoch() const { return epoch_; }
  void set_epoch(std::uint64_t e) { epoch_ = e; }
  SliceId period() const { return period_; }
  SimTime slice_duration() const { return slice_duration_; }
  SimTime cycle_duration() const { return slice_duration_ * period_; }

  // Installs a bidirectional circuit; rejects port/slice conflicts (each
  // optical port carries at most one circuit per slice — circuits are
  // exclusive waveguides). Returns false on conflict or out-of-range ids.
  bool add_circuit(const Circuit& c);
  // True iff the circuit could be added without conflict.
  bool feasible(const Circuit& c) const;

  const std::vector<Circuit>& circuits() const { return circuits_; }

  // Peer endpoint of (node, port) during `slice`, if a circuit is up.
  std::optional<Endpoint> peer(NodeId node, PortId port, SliceId slice) const;

  // All (neighbor, local port) pairs reachable from `node` in `slice` —
  // the neighbors() helper of Tab. 1. slice == kAnySlice returns neighbors
  // under static circuits only.
  std::vector<std::pair<NodeId, PortId>> neighbors(NodeId node,
                                                   SliceId slice) const;

  // First slice >= `from` (searching one full cycle, wrapping) in which
  // `node` has a circuit to `dst`; returns the local port too.
  // Slices here are cycle-relative (0..period-1). Answered from a lazily
  // built per-(node, dst) live-slice index — routing compilers issue
  // O(nodes^2 * period) of these, and a linear cycle scan per query made
  // 256-ToR table builds take tens of seconds.
  struct DirectHop {
    SliceId slice;
    PortId port;
  };
  std::optional<DirectHop> next_direct(NodeId node, NodeId dst,
                                       SliceId from) const;

  // Slice arithmetic.
  SliceId slice_of(std::int64_t abs_slice) const {
    return static_cast<SliceId>(((abs_slice % period_) + period_) % period_);
  }
  std::int64_t abs_slice_at(SimTime t) const {
    return t.ns() / slice_duration_.ns();
  }
  SliceId slice_at(SimTime t) const { return slice_of(abs_slice_at(t)); }
  SimTime slice_start(std::int64_t abs_slice) const {
    return SimTime::nanos(abs_slice * slice_duration_.ns());
  }

  std::string summary() const;

 private:
  std::size_t table_index(NodeId node, PortId port, SliceId slice) const;
  void build_direct_index() const;

  int num_nodes_;
  int uplinks_;
  SliceId period_;
  SimTime slice_duration_;
  std::uint64_t epoch_ = 0;
  std::vector<Circuit> circuits_;
  // Dense lookup: node x port x slice -> peer endpoint.
  std::vector<Endpoint> table_;
  // next_direct cache: per (node, dst), the (slice, port) pairs with a live
  // circuit, sorted. Built on first query, dropped by add_circuit. Queries
  // only come from serial routing compilation (never from worker lanes of
  // the sharded engine), so lazy mutation is race-free.
  mutable std::vector<std::vector<std::pair<SliceId, PortId>>> direct_index_;
  mutable bool direct_index_valid_ = false;
};

}  // namespace oo::optics
