#include "parallel/sharded.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/log.h"

namespace oo::parallel {

ShardedEngine::ShardedEngine(sim::Simulator& sim, int num_lanes,
                             int num_workers, SimTime window)
    : sim_(sim),
      num_lanes_(num_lanes),
      num_workers_(std::clamp(num_workers, 1, num_lanes)),
      window_(window) {
  assert(sim_.num_lanes() == num_lanes_);
  assert(window_ > SimTime::zero());
  // Worker 0 is the coordinating thread; only the rest get threads. A
  // 1-worker engine is therefore the windowed cycle with zero threads —
  // the byte-identity baseline.
  threads_.reserve(static_cast<std::size_t>(num_workers_ - 1));
  for (int w = 1; w < num_workers_; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

ShardedEngine::~ShardedEngine() {
  {
    std::lock_guard lk(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardedEngine::enable_worker_recorders(std::size_t capacity) {
  if (!worker_recorders_.empty()) return;
  worker_recorders_.reserve(static_cast<std::size_t>(num_workers_));
  for (int w = 0; w < num_workers_; ++w) {
    worker_recorders_.push_back(
        std::make_unique<telemetry::FlightRecorder>(capacity));
  }
}

void ShardedEngine::add_barrier_check(std::string name, BarrierCheck fn) {
  barrier_checks_.emplace_back(std::move(name), std::move(fn));
}

void ShardedEngine::report(const char* invariant, std::string detail) {
  if (violation_handler_) {
    violation_handler_(invariant, detail);
  } else {
    OO_WARN_ONCE("parallel", "barrier invariant '%s' violated: %s", invariant,
                 detail.c_str());
  }
}

void ShardedEngine::run_until(SimTime until) {
  sim_.clear_stop();
  window_loop(until, /*bounded=*/true);
}

void ShardedEngine::run_all() {
  sim_.clear_stop();
  window_loop(SimTime::max(), /*bounded=*/false);
}

void ShardedEngine::window_loop(SimTime until, bool bounded) {
  // If the control queue has a flight recorder, every worker needs its own
  // ring before the first parallel phase — a shared ring across threads
  // would race on the write head.
  if (sim_.recorder() != nullptr && worker_recorders_.empty()) {
    enable_worker_recorders(sim_.recorder()->capacity());
  }
  const std::int64_t w_ns = window_.ns();
  for (;;) {
    const SimTime m = sim_.min_pending_time();
    if (m == SimTime::max()) break;  // fully drained
    if (bounded && m > until) break;
    // Conservative window on the fixed grid: events never land before
    // their grid slot's start, so aligning T to floor(m/W)*W keeps the
    // window sequence a pure function of event times — independent of
    // worker count and of where previous runs stopped.
    const SimTime start = SimTime::nanos((m.ns() / w_ns) * w_ns);
    SimTime end = start + window_;
    if (bounded && end > until) {
      // Final partial window: legacy run_until(until) executes events with
      // when <= until, so the exclusive bound is until + 1ns.
      end = until + SimTime::nanos(1);
    }
    sim_.advance_all_to(start);
    // Phase 1: control, serial. May touch any lane state directly (the
    // workers are parked) and pushes into lane heaps without staging.
    sim_.run_control_until_exclusive(end);
    if (sim_.stop_requested()) return;
    // Phase 2: lanes, parallel.
    parallel_phase(end);
    // Phase 3: barrier. Clocks stop at `until` on the final partial
    // window (legacy leaves now() == until); the merge still clamps to the
    // nominal exclusive bound so nothing lands inside the just-run window.
    barrier(std::min(end, until), end);
    if (sim_.stop_requested()) return;
  }
  if (bounded) sim_.advance_all_to(until);
}

void ShardedEngine::barrier(SimTime advance_to, SimTime next_start) {
  sim_.advance_all_to(advance_to);
  const auto merged = sim_.merge_outboxes(next_start);
  stats_.cross_delivered += merged.delivered;
  stats_.cross_clamped += merged.clamped;
  ++stats_.windows;
  // Exchange conservation: every message ever staged by a worker must by
  // now have been merged into a target queue, exactly once.
  if (sim_.cross_staged() != stats_.cross_delivered) {
    report("cross_shard_conservation",
           "staged " + std::to_string(sim_.cross_staged()) +
               " cross-lane messages but delivered " +
               std::to_string(stats_.cross_delivered));
  }
  // Workers can't call the invariant sink (it's single-threaded monitor
  // state); their past-schedule clamps were logged per lane and are
  // forwarded here, serially.
  if (sim::InvariantSink* sink = sim_.invariant_sink()) {
    for (const auto& rec : sim_.take_lane_past_schedules()) {
      sink->on_past_schedule(rec.when, rec.now, rec.tag);
    }
  } else {
    sim_.take_lane_past_schedules();
  }
  for (const auto& [name, fn] : barrier_checks_) {
    std::string detail = fn();
    if (!detail.empty()) report(name.c_str(), std::move(detail));
  }
}

void ShardedEngine::run_worker_share(int w, SimTime end) {
  telemetry::FlightRecorder* rec = recorder_for(w);
  for (int lane = w; lane < num_lanes_; lane += num_workers_) {
    sim_.run_lane_until_exclusive(lane, end, rec);
  }
}

void ShardedEngine::parallel_phase(SimTime end) {
  sim_.begin_parallel_phase();
  if (threads_.empty()) {
    try {
      run_worker_share(0, end);
    } catch (...) {
      sim_.end_parallel_phase();
      throw;
    }
    sim_.end_parallel_phase();
    return;
  }
  {
    std::lock_guard lk(mu_);
    phase_end_ = end;
    remaining_ = num_workers_ - 1;
    ++generation_;
  }
  cv_work_.notify_all();
  std::exception_ptr own_exception;
  try {
    run_worker_share(0, end);
  } catch (...) {
    own_exception = std::current_exception();
  }
  std::exception_ptr worker_exception;
  {
    std::unique_lock lk(mu_);
    cv_done_.wait(lk, [this] { return remaining_ == 0; });
    worker_exception = std::exchange(pending_exception_, nullptr);
  }
  sim_.end_parallel_phase();
  if (own_exception) std::rethrow_exception(own_exception);
  if (worker_exception) std::rethrow_exception(worker_exception);
}

void ShardedEngine::worker_main(int w) {
  std::uint64_t seen = 0;
  for (;;) {
    SimTime end = SimTime::zero();
    {
      std::unique_lock lk(mu_);
      cv_work_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      end = phase_end_;
    }
    try {
      run_worker_share(w, end);
    } catch (...) {
      std::lock_guard lk(mu_);
      if (!pending_exception_) pending_exception_ = std::current_exception();
    }
    {
      std::lock_guard lk(mu_);
      if (--remaining_ == 0) cv_done_.notify_one();
    }
  }
}

}  // namespace oo::parallel
