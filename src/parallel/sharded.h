// Sharded parallel simulation engine: conservative window synchronization
// over the lane-aware simulator (eventsim/simulator.h).
//
// The slice cadence that unified routing exploits is also a free
// conservative-synchronization lookahead: no packet crosses the fabric in
// less than the minimum cross-ToR latency, so each ToR's event stream can
// run independently inside a window of that width. The engine drives a
// three-phase cycle per window [T, T+W):
//
//   1. control phase (serial)  — events on the control queue with
//      when < T+W run on the coordinating thread. Control owns the
//      controller/quorum/watchdog/fault-plan machinery and may touch any
//      lane's state directly: the workers are parked, and the phase
//      ordering (control before lanes, mutex-fenced) gives the
//      happens-before edge ThreadSanitizer wants.
//   2. parallel phase          — worker w runs lanes {w, w+N, w+2N, ...}
//      with run_lane_until_exclusive(lane, T+W). Same-lane schedules push
//      directly; cross-lane schedules are staged in per-source outboxes.
//   3. barrier (serial)        — all clocks advance to T+W, outboxes merge
//      in canonical (when, src_lane, src_seq) order, conservation is
//      checked, lane past-schedule reports are forwarded to the invariant
//      sink, and the next window start skips ahead to the earliest pending
//      event's grid slot.
//
// Determinism argument: which worker runs a lane never affects that lane's
// event order (each lane has a private clock and sequence counter), and the
// barrier merge order is a pure function of message content — so the
// simulation's result is byte-identical for any worker count, including 1.
// num_workers therefore only chooses a thread layout; shards=1 runs the
// same windowed engine inline with zero threads and is the identity
// baseline the tests pin shards∈{2,4,8} against.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "eventsim/simulator.h"

namespace oo::parallel {

class ShardedEngine : public sim::ParallelRunner {
 public:
  // `sim` must already have configure_lanes(num_lanes) applied. `window` is
  // the conservative lookahead W: the minimum virtual time for any event on
  // one lane to cause an event on another (min cross-ToR latency).
  // `num_workers` is clamped to [1, num_lanes]; workers beyond the first
  // get dedicated threads, worker 0 runs on the coordinating thread.
  ShardedEngine(sim::Simulator& sim, int num_lanes, int num_workers,
                SimTime window);
  ~ShardedEngine() override;
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // sim::ParallelRunner — installed via Simulator::set_parallel_runner, so
  // existing run_until/run call sites drive the windowed cycle unchanged.
  void run_until(SimTime until) override;
  void run_all() override;

  int num_workers() const { return num_workers_; }
  SimTime window() const { return window_; }

  // Per-shard flight recorders. Created automatically (mirroring the
  // control recorder's capacity) the first time a run starts with tracing
  // enabled, or explicitly here; worker w's lanes record into ring w, so
  // the hot path never shares a ring buffer across threads. The trace
  // exporter stitches them into one Chrome trace with shard tracks.
  void enable_worker_recorders(std::size_t capacity);
  const std::vector<std::unique_ptr<telemetry::FlightRecorder>>&
  worker_recorders() const {
    return worker_recorders_;
  }

  // Cross-shard safety reporting (chaos::InvariantMonitor::attach_parallel
  // installs its violate() here). Detached, a failed barrier check is a
  // warn-once; attached it lands in the monitor's violation list like any
  // other invariant.
  using ViolationHandler =
      std::function<void(const char* invariant, const std::string& detail)>;
  void set_violation_handler(ViolationHandler h) {
    violation_handler_ = std::move(h);
  }
  // Custom barrier check: returns "" while the invariant holds, a detail
  // string once it breaks. Runs serially at every window barrier.
  using BarrierCheck = std::function<std::string()>;
  void add_barrier_check(std::string name, BarrierCheck fn);

  struct Stats {
    std::int64_t windows = 0;          // barrier cycles completed
    std::int64_t cross_delivered = 0;  // messages merged across lanes
    std::int64_t cross_clamped = 0;    // sub-window hops clamped to window start
  };
  const Stats& stats() const { return stats_; }

 private:
  void window_loop(SimTime until, bool bounded);
  void parallel_phase(SimTime end);
  void run_worker_share(int w, SimTime end);
  void worker_main(int w);
  void barrier(SimTime advance_to, SimTime next_start);
  void report(const char* invariant, std::string detail);
  telemetry::FlightRecorder* recorder_for(int w) const {
    return worker_recorders_.empty() ? nullptr : worker_recorders_[w].get();
  }

  sim::Simulator& sim_;
  const int num_lanes_;
  const int num_workers_;
  const SimTime window_;

  std::vector<std::unique_ptr<telemetry::FlightRecorder>> worker_recorders_;
  ViolationHandler violation_handler_;
  std::vector<std::pair<std::string, BarrierCheck>> barrier_checks_;
  Stats stats_;

  // Worker pool (only when num_workers_ > 1). The generation counter is the
  // phase gate: bumping it under the mutex releases every worker into the
  // current window; the mutex hand-offs on both edges publish all lane
  // state between the serial and parallel phases.
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  int remaining_ = 0;
  SimTime phase_end_ = SimTime::zero();
  bool shutdown_ = false;
  std::exception_ptr pending_exception_;
};

}  // namespace oo::parallel
