#include "resource/tofino.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace oo::resource {

namespace {
// Fitted first-order coefficients (see header). Reference point: 11,556
// entries (107 slices x 108 destinations), 30% wildcard, 107 queues x 6
// ports EQO array, congestion detection on.
constexpr double kSramBase = 0.8, kSramPerEntry = 2.596e-4;
constexpr double kTcamBase = 0.4, kTcamPerWildcard = 5.48e-4;
constexpr double kSaluBase = 1.0, kSaluPerEqoReg = 0.013084;
constexpr double kSaluPushback = 0.7, kSaluOffload = 0.9;
constexpr double kTernaryBase = 2.0, kTernarySliceMiss = 8.0,
                 kTernaryPerPort = 0.6333;
constexpr double kVliwBase = 1.6, kVliwCalendar = 2.0, kVliwCongestion = 2.0,
                 kVliwPushback = 0.5, kVliwOffload = 0.6;
constexpr double kXbarBase = 2.0, kXbarTftLookup = 4.0, kXbarEqo = 1.8;
}  // namespace

TofinoUsage estimate_tofino2(const TofinoInputs& in) {
  TofinoUsage u;
  const double wildcard_entries =
      static_cast<double>(in.tft_entries) * in.wildcard_fraction;
  const double exact_entries =
      static_cast<double>(in.tft_entries) - wildcard_entries;
  const double eqo_regs =
      in.congestion_detection
          ? static_cast<double>(in.calendar_queues_per_port) * in.optical_ports
          : 0.0;

  u.sram_pct = kSramBase + kSramPerEntry * exact_entries / 0.7;
  u.tcam_pct = kTcamBase + kTcamPerWildcard * wildcard_entries;
  u.stateful_alu_pct = kSaluBase + kSaluPerEqoReg * eqo_regs +
                       (in.pushback ? kSaluPushback : 0.0) +
                       (in.offload ? kSaluOffload : 0.0);
  u.ternary_xbar_pct =
      kTernaryBase +
      (in.congestion_detection ? kTernarySliceMiss : 0.0) +
      kTernaryPerPort * in.optical_ports;
  u.vliw_pct = kVliwBase + kVliwCalendar +
               (in.congestion_detection ? kVliwCongestion : 0.0) +
               (in.pushback ? kVliwPushback : 0.0) +
               (in.offload ? kVliwOffload : 0.0);
  u.exact_xbar_pct = kXbarBase + kXbarTftLookup +
                     (in.congestion_detection ? kXbarEqo : 0.0);

  auto clamp = [](double& v) { v = std::min(v, 100.0); };
  clamp(u.sram_pct);
  clamp(u.tcam_pct);
  clamp(u.stateful_alu_pct);
  clamp(u.ternary_xbar_pct);
  clamp(u.vliw_pct);
  clamp(u.exact_xbar_pct);
  return u;
}

double TofinoUsage::max_pct() const {
  return std::max({sram_pct, tcam_pct, stateful_alu_pct, ternary_xbar_pct,
                   vliw_pct, exact_xbar_pct});
}

std::string TofinoUsage::table() const {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "  Resource        Usage\n"
                "  SRAM           %5.1f%%\n"
                "  TCAM           %5.1f%%\n"
                "  Stateful ALU   %5.1f%%\n"
                "  Ternary Xbar   %5.1f%%\n"
                "  VLIW Actions   %5.1f%%\n"
                "  Exact Xbar     %5.1f%%\n",
                sram_pct, tcam_pct, stateful_alu_pct, ternary_xbar_pct,
                vliw_pct, exact_xbar_pct);
  return buf;
}

TofinoInputs paper_reference_inputs() {
  TofinoInputs in;
  in.tft_entries = 107 * 108;  // full table on the observed ToR
  in.wildcard_fraction = 0.3;
  in.calendar_queues_per_port = 107;
  in.optical_ports = 6;
  in.congestion_detection = true;
  return in;
}

}  // namespace oo::resource
