// Tofino2 resource-usage model (Table 2). Switch ASIC usage is a linear
// function of the configuration drivers: time-flow table entries consume
// SRAM (exact-match) and TCAM (wildcard matches), the EQO register array
// and slice-miss arithmetic consume stateful ALUs and ternary crossbar,
// action complexity consumes VLIW slots, and lookups consume exact-match
// crossbar. Coefficients are fitted so the paper's 108-ToR deployment
// reproduces its published Table 2 (SRAM 3.8%, TCAM 2.3%, sALU 9.4%,
// ternary xbar 13.8%, VLIW 5.6%, exact xbar 7.8%) — a first-order cost
// model for what-if sizing, not a P4 compiler.
#pragma once

#include <cstdint>
#include <string>

namespace oo::resource {

struct TofinoInputs {
  // Time-flow table entries populated on the ToR (full table for the
  // paper's 108-ToR observed ToR: ~(N-1) slices x N destinations).
  std::int64_t tft_entries = 0;
  // Fraction of entries using wildcard (slice/src) matches -> TCAM.
  double wildcard_fraction = 0.3;
  int calendar_queues_per_port = 107;
  int optical_ports = 6;
  bool congestion_detection = true;  // EQO registers + admission arithmetic
  bool pushback = false;
  bool offload = false;
};

struct TofinoUsage {
  double sram_pct = 0;
  double tcam_pct = 0;
  double stateful_alu_pct = 0;
  double ternary_xbar_pct = 0;
  double vliw_pct = 0;
  double exact_xbar_pct = 0;

  double max_pct() const;
  std::string table() const;  // formatted like the paper's Table 2
};

TofinoUsage estimate_tofino2(const TofinoInputs& in);

// The paper's reference configuration (108-ToR Opera topology, full table
// on the observed ToR, congestion detection on).
TofinoInputs paper_reference_inputs();

}  // namespace oo::resource
