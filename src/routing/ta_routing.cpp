#include "routing/ta_routing.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <set>

namespace oo::routing {

using core::kElectricalEgress;
using core::Path;
using core::PathHop;

namespace {

struct BfsResult {
  std::vector<int> dist;
  // Canonical parent (node, our egress port) toward the destination.
  std::vector<NodeId> via_node;
  std::vector<PortId> via_port;
};

// BFS toward `dst` on the static (slice-0) topology.
BfsResult bfs_to(const optics::Schedule& sched, NodeId dst) {
  const int n = sched.num_nodes();
  BfsResult r{std::vector<int>(static_cast<std::size_t>(n), -1),
              std::vector<NodeId>(static_cast<std::size_t>(n), kInvalidNode),
              std::vector<PortId>(static_cast<std::size_t>(n), kInvalidPort)};
  r.dist[static_cast<std::size_t>(dst)] = 0;
  std::queue<NodeId> q;
  q.push(dst);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const auto& [m, v_port] : sched.neighbors(v, 0)) {
      if (r.dist[static_cast<std::size_t>(m)] != -1) continue;
      r.dist[static_cast<std::size_t>(m)] =
          r.dist[static_cast<std::size_t>(v)] + 1;
      const auto peer = sched.peer(v, v_port, 0);
      r.via_node[static_cast<std::size_t>(m)] = v;
      r.via_port[static_cast<std::size_t>(m)] = peer->port;
      q.push(m);
    }
  }
  return r;
}

// Canonical hop chain from `from` to dst following BFS parents (wildcard
// departure slices — flow-table semantics).
void append_chain(const BfsResult& r, NodeId from, NodeId dst,
                  std::vector<PathHop>& hops) {
  NodeId m = from;
  while (m != dst) {
    hops.push_back(PathHop{m, r.via_port[static_cast<std::size_t>(m)],
                           kAnySlice});
    m = r.via_node[static_cast<std::size_t>(m)];
  }
}

// Shared ECMP/WCMP generator. `one_port_per_neighbor` collapses parallel
// circuits to a neighbor into a single option (classical ECMP); otherwise
// every parallel circuit is its own option (WCMP capacity weighting).
std::vector<Path> multipath_shortest(const optics::Schedule& sched,
                                     bool one_port_per_neighbor) {
  std::vector<Path> out;
  const int n = sched.num_nodes();
  for (NodeId dst = 0; dst < n; ++dst) {
    const BfsResult r = bfs_to(sched, dst);
    for (NodeId m = 0; m < n; ++m) {
      if (m == dst || r.dist[static_cast<std::size_t>(m)] < 0) continue;
      std::set<NodeId> seen_neighbors;
      for (const auto& [v, port] : sched.neighbors(m, 0)) {
        if (r.dist[static_cast<std::size_t>(v)] !=
            r.dist[static_cast<std::size_t>(m)] - 1)
          continue;
        if (one_port_per_neighbor && !seen_neighbors.insert(v).second)
          continue;
        Path p;
        p.src = kInvalidNode;
        p.dst = dst;
        p.start_slice = kAnySlice;
        p.hops.push_back(PathHop{m, port, kAnySlice});
        if (v != dst) append_chain(r, v, dst, p.hops);
        out.push_back(std::move(p));
      }
    }
  }
  return out;
}

}  // namespace

std::vector<Path> ecmp(const optics::Schedule& sched) {
  return multipath_shortest(sched, /*one_port_per_neighbor=*/true);
}

std::vector<Path> wcmp(const optics::Schedule& sched) {
  return multipath_shortest(sched, /*one_port_per_neighbor=*/false);
}

std::vector<Path> direct_ta(const optics::Schedule& sched) {
  std::vector<Path> out;
  const int n = sched.num_nodes();
  for (NodeId m = 0; m < n; ++m) {
    for (const auto& [v, port] : sched.neighbors(m, 0)) {
      Path p;
      p.src = kInvalidNode;
      p.dst = v;
      p.start_slice = kAnySlice;
      p.hops.push_back(PathHop{m, port, kAnySlice});
      out.push_back(std::move(p));
    }
  }
  return out;
}

std::vector<Path> electrical_default(int num_nodes) {
  std::vector<Path> out;
  for (NodeId m = 0; m < num_nodes; ++m) {
    for (NodeId dst = 0; dst < num_nodes; ++dst) {
      if (m == dst) continue;
      Path p;
      p.src = kInvalidNode;
      p.dst = dst;
      p.start_slice = kAnySlice;
      p.hops.push_back(PathHop{m, kElectricalEgress, kAnySlice});
      out.push_back(std::move(p));
    }
  }
  return out;
}

std::vector<Path> ksp(const optics::Schedule& sched, int k) {
  std::vector<Path> out;
  const int n = sched.num_nodes();
  assert(k >= 1);

  // Unweighted shortest path with banned edges/nodes, for Yen deviations.
  struct Hop {
    NodeId node;
    PortId port;
  };
  auto shortest = [&sched, n](NodeId src, NodeId dst,
                              const std::set<std::pair<NodeId, PortId>>& banned_edges,
                              const std::set<NodeId>& banned_nodes)
      -> std::vector<Hop> {
    std::vector<int> dist(static_cast<std::size_t>(n), -1);
    std::vector<NodeId> pn(static_cast<std::size_t>(n), kInvalidNode);
    std::vector<PortId> pp(static_cast<std::size_t>(n), kInvalidPort);
    std::queue<NodeId> q;
    dist[static_cast<std::size_t>(src)] = 0;
    q.push(src);
    while (!q.empty()) {
      const NodeId m = q.front();
      q.pop();
      if (m == dst) break;
      for (const auto& [v, port] : sched.neighbors(m, 0)) {
        if (banned_edges.count({m, port}) > 0) continue;
        if (v != dst && banned_nodes.count(v) > 0) continue;
        if (dist[static_cast<std::size_t>(v)] != -1) continue;
        dist[static_cast<std::size_t>(v)] =
            dist[static_cast<std::size_t>(m)] + 1;
        pn[static_cast<std::size_t>(v)] = m;
        pp[static_cast<std::size_t>(v)] = port;
        q.push(v);
      }
    }
    std::vector<Hop> hops;
    if (dist[static_cast<std::size_t>(dst)] < 0) return hops;
    for (NodeId m = dst; m != src;
         m = pn[static_cast<std::size_t>(m)]) {
      hops.push_back(Hop{pn[static_cast<std::size_t>(m)],
                         pp[static_cast<std::size_t>(m)]});
    }
    std::reverse(hops.begin(), hops.end());
    return hops;
  };

  for (NodeId src = 0; src < n; ++src) {
    for (NodeId dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      std::vector<std::vector<Hop>> found;
      auto first = shortest(src, dst, {}, {});
      if (first.empty()) continue;
      found.push_back(std::move(first));
      std::vector<std::vector<Hop>> candidates;
      while (static_cast<int>(found.size()) < k) {
        const auto& base = found.back();
        // Yen deviations: for each spur node, ban the edges used by found
        // paths sharing the root prefix and the root-prefix nodes.
        for (std::size_t i = 0; i < base.size(); ++i) {
          std::set<std::pair<NodeId, PortId>> banned_edges;
          std::set<NodeId> banned_nodes;
          for (const auto& path : found) {
            if (path.size() < i) continue;
            bool same_root = true;
            for (std::size_t j = 0; j < i && j < path.size(); ++j) {
              if (path[j].node != base[j].node ||
                  path[j].port != base[j].port) {
                same_root = false;
                break;
              }
            }
            if (same_root && i < path.size()) {
              banned_edges.insert({path[i].node, path[i].port});
            }
          }
          for (std::size_t j = 0; j < i; ++j) banned_nodes.insert(base[j].node);
          const NodeId spur = base[i].node;
          auto tail = shortest(spur, dst, banned_edges, banned_nodes);
          if (tail.empty()) continue;
          std::vector<Hop> cand(base.begin(),
                                base.begin() + static_cast<long>(i));
          cand.insert(cand.end(), tail.begin(), tail.end());
          // Dedupe against found and pending candidates.
          auto equal = [](const std::vector<Hop>& a,
                          const std::vector<Hop>& b) {
            if (a.size() != b.size()) return false;
            for (std::size_t x = 0; x < a.size(); ++x) {
              if (a[x].node != b[x].node || a[x].port != b[x].port)
                return false;
            }
            return true;
          };
          bool dup = false;
          for (const auto& f : found) dup = dup || equal(f, cand);
          for (const auto& c : candidates) dup = dup || equal(c, cand);
          if (!dup) candidates.push_back(std::move(cand));
        }
        if (candidates.empty()) break;
        // Shortest candidate becomes the next path.
        auto best = std::min_element(
            candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.size() < b.size(); });
        found.push_back(std::move(*best));
        candidates.erase(best);
      }
      const double w = 1.0 / static_cast<double>(found.size());
      for (const auto& hops : found) {
        Path p;
        p.src = kInvalidNode;
        p.dst = dst;
        p.start_slice = kAnySlice;
        p.weight = w;
        for (const auto& h : hops) {
          p.hops.push_back(PathHop{h.node, h.port, kAnySlice});
        }
        out.push_back(std::move(p));
      }
    }
  }
  return out;
}

}  // namespace oo::routing
