// Traffic-aware / static routing (§4.2): classical schemes over a topology
// instance (period-1 schedule, wildcard slices — the time-flow table
// degenerates to a flow table):
//   ecmp  — equal split across shortest-path next-hop neighbors;
//   wcmp  — split across every parallel circuit (capacity-weighted);
//   ksp   — Yen's k-shortest paths, source-routed;
//   direct_ta — only direct circuits (per-pair), for hybrid elephants;
//   electrical_default — one-hop default route over the electrical fabric.
#pragma once

#include <vector>

#include "common/ids.h"
#include "core/path.h"
#include "optics/schedule.h"

namespace oo::routing {

std::vector<core::Path> ecmp(const optics::Schedule& sched);
std::vector<core::Path> wcmp(const optics::Schedule& sched);
std::vector<core::Path> ksp(const optics::Schedule& sched, int k);

// Single-hop paths for every pair with a static direct circuit.
std::vector<core::Path> direct_ta(const optics::Schedule& sched);

// Default route via the parallel electrical fabric for every (node, dst).
std::vector<core::Path> electrical_default(int num_nodes);

}  // namespace oo::routing
