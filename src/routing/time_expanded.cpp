#include "routing/time_expanded.h"

#include <algorithm>
#include <cassert>

#include "common/rng.h"

namespace oo::routing {

EarliestArrival::EarliestArrival(const optics::Schedule& sched, NodeId dst,
                                 int max_hops)
    : sched_(sched),
      dst_(dst),
      period_(sched.period()),
      max_hops_(std::max(1, std::min(max_hops, kUnbounded))) {
  const int n = sched_.num_nodes();
  const std::size_t states =
      static_cast<std::size_t>(n) * period_ * (max_hops_ + 1);
  offset_.assign(states, kInf);
  choice_.assign(states, Choice{});
  for (SliceId s = 0; s < period_; ++s) {
    for (int h = 0; h <= max_hops_; ++h) offset_[index(dst_, s, h)] = 0;
  }

  // Label-correcting sweeps: states depend on states one slice later
  // (cyclically) and one hop-budget lower, so ~period sweeps reach the
  // fixpoint; a no-change sweep terminates early.
  for (int sweep = 0; sweep <= 2 * period_ + 2; ++sweep) {
    bool changed = false;
    for (NodeId m = 0; m < n; ++m) {
      if (m == dst_) continue;
      for (SliceId s = 0; s < period_; ++s) {
        const SliceId s1 = (s + 1) % period_;
        for (int h = 1; h <= max_hops_; ++h) {
          int best = offset_[index(m, s, h)];
          Choice ch = choice_[index(m, s, h)];
          // Ride a live circuit — HOHO hops on eagerly, so on equal
          // arrival a hop beats waiting (evaluated first). Port order is
          // rotated by a (node, slice, dst) hash so equal-cost relay
          // choices spread across destinations instead of piling onto the
          // lowest-numbered uplink.
          const int rot = static_cast<int>(
              hash_mix((static_cast<std::uint64_t>(m) << 32) ^
                       (static_cast<std::uint64_t>(s) << 16) ^
                       static_cast<std::uint64_t>(dst_)) %
              static_cast<std::uint32_t>(std::max(1, sched_.uplinks())));
          for (PortId uu = 0; uu < sched_.uplinks(); ++uu) {
            const PortId u = (uu + rot) % sched_.uplinks();
            const auto peer = sched_.peer(m, u, s);
            if (!peer) continue;
            int cand;
            if (peer->node == dst_) {
              cand = 0;
            } else if (offset_[index(peer->node, s1, h - 1)] < kInf) {
              cand = 1 + offset_[index(peer->node, s1, h - 1)];
            } else {
              continue;
            }
            if (cand < best) {
              best = cand;
              ch = Choice{Choice::Hop, u};
            }
          }
          // Wait out the slice (keeps the hop budget).
          if (offset_[index(m, s1, h)] < kInf) {
            const int cand = 1 + offset_[index(m, s1, h)];
            if (cand < best) {
              best = cand;
              ch = Choice{Choice::Wait, kInvalidPort};
            }
          }
          if (best < offset_[index(m, s, h)]) {
            offset_[index(m, s, h)] = best;
            choice_[index(m, s, h)] = ch;
            changed = true;
          }
        }
      }
    }
    if (!changed) break;
  }
}

std::optional<core::Path> EarliestArrival::extract(NodeId src,
                                                   SliceId start) const {
  if (!reachable(src, start) && src != dst_) return std::nullopt;
  core::Path path;
  path.src = src;
  path.dst = dst_;
  path.start_slice = start;
  NodeId m = src;
  SliceId s = start;
  int h = max_hops_;
  int guard = 4 * period_ + 4;
  while (m != dst_) {
    if (--guard < 0 || h < 0) return std::nullopt;  // defensive
    const Choice& c = choice_[index(m, s, h)];
    switch (c.kind) {
      case Choice::Wait:
        s = (s + 1) % period_;
        break;
      case Choice::Hop: {
        const auto peer = sched_.peer(m, c.port, s);
        assert(peer);
        path.hops.push_back(core::PathHop{m, c.port, s});
        m = peer->node;
        s = (s + 1) % period_;
        --h;
        break;
      }
      case Choice::None:
        return std::nullopt;
    }
  }
  return path;
}

std::optional<core::Path> earliest_path(const optics::Schedule& sched,
                                        NodeId src, NodeId dst, SliceId ts,
                                        int max_hop) {
  EarliestArrival ea(sched, dst,
                     max_hop > 0 ? max_hop : EarliestArrival::kUnbounded);
  return ea.extract(src, ts);
}

}  // namespace oo::routing
