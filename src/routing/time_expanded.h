// Time-expanded routing engine for TO schedules (§2.2): earliest-arrival
// search over (node, slice, remaining-hop-budget) states with one fabric
// hop per slice (rotor semantics: serialization + propagation are far below
// a slice, but a packet that hopped must wait for the next slice to hop
// again). The hop budget matters: unbounded "earliest" tours multiply core
// load by their path length; HOHO/UCMP keep tours short. This is the
// computational core behind vlb waits, hoho, ucmp, and the earliest_path()
// helper of Tab. 1.
#pragma once

#include <optional>
#include <vector>

#include "common/ids.h"
#include "core/path.h"
#include "optics/schedule.h"

namespace oo::routing {

class EarliestArrival {
 public:
  static constexpr int kInf = 1 << 29;
  // A hop budget this large is effectively unbounded for any sane schedule.
  static constexpr int kUnbounded = 16;

  // Solves the per-destination dynamic program: offset(m, s) = minimal
  // number of slice boundaries crossed to deliver a packet sitting at m at
  // the start of slice s to `dst`, using at most `max_hops` fabric hops.
  EarliestArrival(const optics::Schedule& sched, NodeId dst,
                  int max_hops = kUnbounded);

  NodeId dst() const { return dst_; }
  int max_hops() const { return max_hops_; }
  int offset(NodeId m, SliceId s) const {
    return offset_[index(m, s, max_hops_)];
  }
  // Earliest arrival with at most `h` hops (h <= max_hops).
  int offset_with_budget(NodeId m, SliceId s, int h) const {
    return offset_[index(m, s, h)];
  }
  bool reachable(NodeId m, SliceId s) const { return offset(m, s) < kInf; }

  // Extracts the earliest-arrival path from (src, start). Ties prefer
  // hopping on (HOHO rides whatever circuit makes progress) with the hop
  // budget bounding the tour. nullopt when unreachable.
  std::optional<core::Path> extract(NodeId src, SliceId start) const;

 private:
  struct Choice {
    enum Kind : std::int8_t { None, Wait, Hop } kind = None;
    PortId port = kInvalidPort;
  };

  std::size_t index(NodeId m, SliceId s, int h) const {
    return (static_cast<std::size_t>(m) * period_ +
            static_cast<std::size_t>(s)) *
               (max_hops_ + 1) +
           static_cast<std::size_t>(h);
  }

  const optics::Schedule& sched_;
  NodeId dst_;
  int period_;
  int max_hops_;
  std::vector<int> offset_;
  std::vector<Choice> choice_;
};

// earliest_path([Circuit], src, dst, ts, max_hop) helper (Tab. 1): the
// earliest-arrival path with at most `max_hop` fabric hops (max_hop <= 0
// means unbounded).
std::optional<core::Path> earliest_path(const optics::Schedule& sched,
                                        NodeId src, NodeId dst, SliceId ts,
                                        int max_hop = 0);

}  // namespace oo::routing
