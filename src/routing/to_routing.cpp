#include "routing/to_routing.h"

#include <algorithm>
#include <cassert>
#include <queue>

#include "routing/time_expanded.h"

namespace oo::routing {

using core::Path;
using core::PathHop;

std::vector<Path> direct_to_expanded(const optics::Schedule& sched) {
  std::vector<Path> out;
  const int n = sched.num_nodes();
  const SliceId period = sched.period();
  for (NodeId src = 0; src < n; ++src) {
    for (NodeId dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      for (SliceId s = 0; s < period; ++s) {
        const auto hop = sched.next_direct(src, dst, s);
        if (!hop) continue;
        Path p;
        p.src = kInvalidNode;  // any source: hold-for-direct is per (node,dst)
        p.dst = dst;
        p.start_slice = s;
        p.hops.push_back(PathHop{src, hop->port, hop->slice});
        out.push_back(std::move(p));
      }
    }
  }
  return out;
}

std::vector<Path> direct_to(const optics::Schedule& sched) {
  std::vector<Path> out;
  const int n = sched.num_nodes();
  const SliceId period = sched.period();
  for (NodeId src = 0; src < n; ++src) {
    for (NodeId dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      const auto h0 = sched.next_direct(src, dst, 0);
      if (!h0) continue;
      // Single live circuit per cycle (every single-uplink rotor): each of
      // the period start slices resolves to the identical hop, so one
      // wildcard-slice path replaces the per-slice fan. The TFT lookup
      // result is unchanged at every arrival slice; the table (and the
      // routing deploy) shrinks by a factor of `period` — at 256 ToRs the
      // expanded form is 16.6M paths and dominates setup time.
      const auto h1 =
          sched.next_direct(src, dst, sched.slice_of(h0->slice + 1));
      if (h1 && h1->slice == h0->slice) {
        Path p;
        p.src = kInvalidNode;  // any source: hold-for-direct is per (node,dst)
        p.dst = dst;
        p.start_slice = kAnySlice;
        p.hops.push_back(PathHop{src, h0->port, h0->slice});
        out.push_back(std::move(p));
        continue;
      }
      for (SliceId s = 0; s < period; ++s) {
        const auto hop = sched.next_direct(src, dst, s);
        if (!hop) continue;
        Path p;
        p.src = kInvalidNode;
        p.dst = dst;
        p.start_slice = s;
        p.hops.push_back(PathHop{src, hop->port, hop->slice});
        out.push_back(std::move(p));
      }
    }
  }
  return out;
}

std::vector<Path> vlb(const optics::Schedule& sched) {
  // Baseline wildcard entries: any transit packet holds for the direct
  // circuit from wherever it is. These cover corner arrivals the 2-hop
  // spray paths cannot enumerate (e.g., fabric latency carrying a packet
  // across a slice boundary before its intermediate-hop lookup). Expanded
  // per-slice form, not the collapsed direct_to(): the spray transit
  // entries below share keys with it in the TFT and must merge.
  std::vector<Path> out = direct_to_expanded(sched);
  const int n = sched.num_nodes();
  const SliceId period = sched.period();
  for (NodeId src = 0; src < n; ++src) {
    for (NodeId dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      for (SliceId s = 0; s < period; ++s) {
        // Direct circuit live right now? Take it (per-source entry).
        bool direct_now = false;
        for (PortId u = 0; u < sched.uplinks(); ++u) {
          if (auto peer = sched.peer(src, u, s);
              peer && peer->node == dst) {
            Path p;
            p.src = src;
            p.dst = dst;
            p.start_slice = s;
            p.hops.push_back(PathHop{src, u, s});
            out.push_back(std::move(p));
            direct_now = true;
            break;
          }
        }
        if (direct_now) continue;
        // Spray: one immediate hop to whatever each uplink connects to,
        // then hold at the intermediate for the direct circuit.
        for (PortId u = 0; u < sched.uplinks(); ++u) {
          const auto peer = sched.peer(src, u, s);
          if (!peer) continue;
          const NodeId mid = peer->node;
          const auto dir =
              sched.next_direct(mid, dst, (s + 1) % period);
          if (!dir) continue;
          Path p;
          p.src = src;
          p.dst = dst;
          p.start_slice = s;
          p.hops.push_back(PathHop{src, u, s});
          p.hops.push_back(PathHop{mid, dir->port, dir->slice});
          out.push_back(std::move(p));
        }
      }
    }
  }
  return out;
}

std::vector<Path> opera(const optics::Schedule& sched) {
  std::vector<Path> out;
  const int n = sched.num_nodes();
  const SliceId period = sched.period();
  // Per (slice, destination) BFS over that slice's topology; every source's
  // path follows the parent pointers so transit entries are consistent.
  std::vector<int> dist(static_cast<std::size_t>(n));
  std::vector<PortId> via_port(static_cast<std::size_t>(n));
  std::vector<NodeId> via_node(static_cast<std::size_t>(n));
  for (SliceId s = 0; s < period; ++s) {
    for (NodeId dst = 0; dst < n; ++dst) {
      std::fill(dist.begin(), dist.end(), -1);
      dist[static_cast<std::size_t>(dst)] = 0;
      std::queue<NodeId> bfs;
      bfs.push(dst);
      while (!bfs.empty()) {
        const NodeId v = bfs.front();
        bfs.pop();
        // Circuits are bidirectional: explore v's neighbors; for each
        // undiscovered neighbor m, m reaches dst via the same circuit.
        for (const auto& [m, v_port] : sched.neighbors(v, s)) {
          if (dist[static_cast<std::size_t>(m)] != -1) continue;
          dist[static_cast<std::size_t>(m)] =
              dist[static_cast<std::size_t>(v)] + 1;
          // m's egress port for this circuit is its own port, which mirrors
          // v's peer record.
          const auto peer = sched.peer(v, v_port, s);
          assert(peer && peer->node == m);
          via_port[static_cast<std::size_t>(m)] = peer->port;
          via_node[static_cast<std::size_t>(m)] = v;
          bfs.push(m);
        }
      }
      for (NodeId src = 0; src < n; ++src) {
        if (src == dst || dist[static_cast<std::size_t>(src)] < 0) continue;
        Path p;
        p.src = kInvalidNode;
        p.dst = dst;
        p.start_slice = s;
        NodeId m = src;
        while (m != dst) {
          p.hops.push_back(
              PathHop{m, via_port[static_cast<std::size_t>(m)], s});
          m = via_node[static_cast<std::size_t>(m)];
        }
        out.push_back(std::move(p));
      }
    }
  }
  return out;
}

std::vector<Path> hoho(const optics::Schedule& sched, int max_hops) {
  std::vector<Path> out;
  const int n = sched.num_nodes();
  const SliceId period = sched.period();
  for (NodeId dst = 0; dst < n; ++dst) {
    const EarliestArrival ea(sched, dst, max_hops);
    for (NodeId src = 0; src < n; ++src) {
      if (src == dst) continue;
      for (SliceId s = 0; s < period; ++s) {
        auto p = ea.extract(src, s);
        if (!p) continue;
        p->src = kInvalidNode;  // earliest arrival is source-independent
        out.push_back(std::move(*p));
      }
    }
  }
  return out;
}

std::vector<Path> ucmp(const optics::Schedule& sched, int max_paths,
                       int slack, int max_hops) {
  std::vector<Path> out;
  const int n = sched.num_nodes();
  const SliceId period = sched.period();
  for (NodeId dst = 0; dst < n; ++dst) {
    const EarliestArrival ea(sched, dst, max_hops);
    // Tails after the first hop have one fewer hop of budget.
    const EarliestArrival ea_tail(sched, dst, std::max(1, max_hops - 1));
    for (NodeId src = 0; src < n; ++src) {
      if (src == dst) continue;
      for (SliceId s = 0; s < period; ++s) {
        const int best = ea.offset(src, s);
        if (best >= EarliestArrival::kInf) continue;
        // Enumerate first moves: wait w slices, then ride uplink u; keep
        // those arriving within `slack` of the earliest.
        std::vector<Path> cands;
        for (int w = 0; w < period &&
                        static_cast<int>(cands.size()) < max_paths;
             ++w) {
          const SliceId sw = (s + w) % period;
          for (PortId u = 0; u < sched.uplinks(); ++u) {
            const auto peer = sched.peer(src, u, sw);
            if (!peer) continue;
            const NodeId v = peer->node;
            int arrive;
            if (v == dst) {
              arrive = w;
            } else {
              const int rest = ea_tail.offset(v, (sw + 1) % period);
              if (rest >= EarliestArrival::kInf) continue;
              arrive = w + 1 + rest;
            }
            if (arrive > best + slack) continue;
            Path p;
            p.src = kInvalidNode;
            p.dst = dst;
            p.start_slice = s;
            p.hops.push_back(PathHop{src, u, sw});
            if (v != dst) {
              auto rest_path = ea_tail.extract(v, (sw + 1) % period);
              if (!rest_path) continue;
              for (auto& h : rest_path->hops) p.hops.push_back(h);
            }
            cands.push_back(std::move(p));
            if (static_cast<int>(cands.size()) >= max_paths) break;
          }
        }
        const double w = cands.empty()
                             ? 1.0
                             : 1.0 / static_cast<double>(cands.size());
        for (auto& p : cands) {
          p.weight = w;  // uniform cost across the near-optimal set
          out.push_back(std::move(p));
        }
      }
    }
  }
  return out;
}

}  // namespace oo::routing
