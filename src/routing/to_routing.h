// Traffic-oblivious routing schemes (§4.2 routing() materializations):
//   direct_to — wait for the direct circuit (Fig. 2 path 1);
//   vlb       — RotorNet/Sirius Valiant spraying: one random intermediate
//               hop now, then the direct circuit (Fig. 2 path 2);
//   opera     — multi-hop along the always-connected expander of the
//               current slice (all hops within one slice);
//   ucmp      — uniform-cost multipath over near-earliest-arrival paths,
//               compiled with source routing;
//   hoho      — hop-on hop-off: the single earliest-arrival path, per-hop.
// All functions return Path sets for deploy_routing() covering every
// (source, destination, arrival slice).
#pragma once

#include <vector>

#include "common/ids.h"
#include "core/path.h"
#include "optics/schedule.h"

namespace oo::routing {

// Direct-circuit routing: hold until the next slice with a direct circuit.
// When a (node, dst) pair has a single live circuit per cycle, its period
// identical per-slice paths collapse to one wildcard-slice path (same TFT
// lookup result, table smaller by a factor of the period).
std::vector<core::Path> direct_to(const optics::Schedule& sched);

// direct_to without the wildcard collapse: one path per start slice. Use
// when the caller merges its own per-slice entries into the same TFT keys
// (hybrid electrical alternatives, VLB spray baselines) — a collapsed
// entry is less specific and would stop merging with them.
std::vector<core::Path> direct_to_expanded(const optics::Schedule& sched);

// VLB: direct when a circuit is live this slice; otherwise spray uniformly
// over all uplinks (random intermediate), intermediates hold for the direct
// circuit. Source entries are per-source; transit entries wildcard.
std::vector<core::Path> vlb(const optics::Schedule& sched);

// Opera-style: shortest path inside the current slice's topology; every
// hop departs in the arrival slice. Per-destination BFS keeps transit
// entries consistent.
std::vector<core::Path> opera(const optics::Schedule& sched);

// UCMP: all first-hop alternatives whose arrival is within `slack` slices
// of the earliest, up to `max_paths`, uniformly weighted; source-routed.
// `max_hops` bounds the tour (unbounded "earliest" paths multiply core
// load by their length).
std::vector<core::Path> ucmp(const optics::Schedule& sched, int max_paths = 4,
                             int slack = 0, int max_hops = 2);

// HOHO: earliest arrival within the hop budget, hop-on-eagerly ties;
// per-hop lookup.
std::vector<core::Path> hoho(const optics::Schedule& sched, int max_hops = 2);

}  // namespace oo::routing
