#include "runner/campaign.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/rng.h"

namespace oo::runner {

CampaignSpec CampaignSpec::from_json(const std::string& text) {
  const json::Value v = json::parse(text);
  const auto& obj = v.as_object();
  CampaignSpec spec;
  spec.name = v.get_string("name", spec.name);
  spec.experiment = v.get_string("experiment", "");
  if (spec.experiment.empty()) {
    throw std::runtime_error("campaign spec: missing \"experiment\"");
  }
  spec.seed = static_cast<std::uint64_t>(v.get_int("seed", 1));
  spec.replicas = static_cast<int>(v.get_int("replicas", 1));
  if (spec.replicas < 1) {
    throw std::runtime_error("campaign spec: replicas must be >= 1");
  }
  spec.max_attempts = static_cast<int>(v.get_int("max_attempts", 2));
  if (spec.max_attempts < 1) {
    throw std::runtime_error("campaign spec: max_attempts must be >= 1");
  }
  if (obj.count("fixed")) spec.fixed = v.at("fixed").as_object();
  if (obj.count("patches")) {
    for (const json::Value& p : v.at("patches").as_array()) {
      Patch patch;
      patch.match = p.at("match").as_object();
      patch.set = p.at("set").as_object();
      spec.patches.push_back(std::move(patch));
    }
  }
  if (obj.count("grid")) {
    spec.grid = v.at("grid").as_object();
    for (const auto& [axis, values] : spec.grid) {
      if (values.type() != json::Type::Array || values.as_array().empty()) {
        throw std::runtime_error("campaign spec: grid axis \"" + axis +
                                 "\" must be a non-empty array");
      }
      if (spec.fixed.count(axis)) {
        throw std::runtime_error("campaign spec: \"" + axis +
                                 "\" is both fixed and a grid axis");
      }
    }
  }
  return spec;
}

CampaignSpec CampaignSpec::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open campaign spec: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return from_json(ss.str());
}

json::Value CampaignSpec::to_json() const {
  json::Object o;
  o["name"] = name;
  o["experiment"] = experiment;
  o["seed"] = static_cast<std::int64_t>(seed);
  o["replicas"] = replicas;
  o["max_attempts"] = max_attempts;
  o["fixed"] = fixed;
  o["grid"] = grid;
  if (!patches.empty()) {
    json::Array arr;
    for (const Patch& p : patches) {
      json::Object po;
      po["match"] = p.match;
      po["set"] = p.set;
      arr.emplace_back(po);
    }
    o["patches"] = arr;
  }
  return json::Value{o};
}

namespace {

// Structural equality via the compact dump — json::Value has no operator==
// and patch matching is far off any hot path.
bool same_value(const json::Value& a, const json::Value& b) {
  return a.dump() == b.dump();
}

}  // namespace

std::size_t CampaignSpec::num_runs() const {
  std::size_t n = 1;
  for (const auto& [axis, values] : grid) {
    (void)axis;
    n *= values.as_array().size();
  }
  return n * static_cast<std::size_t>(replicas);
}

std::vector<RunSpec> CampaignSpec::expand() const {
  // Odometer over the axes in map (sorted-key) order, last axis fastest,
  // replicas innermost.
  std::vector<std::pair<std::string, const json::Array*>> axes;
  for (const auto& [axis, values] : grid) {
    axes.emplace_back(axis, &values.as_array());
  }
  std::vector<std::size_t> digits(axes.size(), 0);

  std::vector<RunSpec> runs;
  runs.reserve(num_runs());
  for (;;) {
    for (int rep = 0; rep < replicas; ++rep) {
      RunSpec r;
      r.index = static_cast<int>(runs.size());
      r.replica = rep;
      r.seed = derive_seed(seed, static_cast<std::uint64_t>(r.index), "run");
      r.params = fixed;
      for (std::size_t a = 0; a < axes.size(); ++a) {
        r.params[axes[a].first] = (*axes[a].second)[digits[a]];
      }
      for (const Patch& patch : patches) {
        bool hit = true;
        for (const auto& [k, want] : patch.match) {
          const auto it = r.params.find(k);
          if (it == r.params.end() || !same_value(it->second, want)) {
            hit = false;
            break;
          }
        }
        if (!hit) continue;
        for (const auto& [k, val] : patch.set) r.params[k] = val;
      }
      runs.push_back(std::move(r));
    }
    // Advance the odometer; done once the most-significant digit wraps.
    std::size_t a = axes.size();
    for (;;) {
      if (a == 0) return runs;
      --a;
      if (++digits[a] < axes[a].second->size()) break;
      digits[a] = 0;
    }
  }
}

}  // namespace oo::runner
