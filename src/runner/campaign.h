// Campaign specs: a declarative description of an experiment sweep — a
// cartesian parameter grid crossed with seed replicas — that expands to a
// deterministic, stably-ordered run list. The spec is plain JSON so a
// campaign is a reviewable artifact (EXPERIMENTS.md records the specs that
// regenerate the paper figures):
//
//   {
//     "name":       "fig08_mice",
//     "experiment": "fct",            // registered run function
//     "seed":       1,                // campaign root seed
//     "replicas":   1,                // seed replicas per grid point
//     "max_attempts": 2,              // per-run tries before giving up
//     "fixed":  {"workload": "kv", "duration_ms": 250},
//     "grid":   {"arch": ["clos", "opera"], "slice_us": [50, 100]}
//   }
//
// Expansion order is the invariant everything else leans on: grid axes are
// iterated in sorted-key order (json::Object is an ordered map), the last
// axis fastest, replicas innermost. Run `index` is the position in that
// order; the per-run seed is derive_seed(campaign_seed, index, "run"), a
// pure function of the spec — independent of worker count, execution order,
// and which subset of runs a resumed campaign still has to execute.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"

namespace oo::runner {

// One expanded grid point: everything a worker needs to execute the run.
struct RunSpec {
  int index = 0;        // position in expansion order; names the run
  int replica = 0;      // which seed replica of its grid point
  std::uint64_t seed = 0;  // derive_seed(campaign seed, index, "run")
  json::Object params;     // fixed ∪ grid values for this point
};

struct CampaignSpec {
  // Conditional parameter patch: when every `match` key equals the run's
  // composed params, `set` entries are overlaid. Lets one grid express
  // per-architecture quirks, e.g. Fig. 8's slow Jupiter control loop:
  //   "patches": [{"match": {"arch": "jupiter"},
  //                "set":   {"collect_interval_ms": 60}}]
  struct Patch {
    json::Object match;
    json::Object set;
  };

  std::string name = "campaign";
  std::string experiment;  // looked up in the experiment registry
  std::uint64_t seed = 1;
  int replicas = 1;
  int max_attempts = 2;    // 1 = no retry
  json::Object fixed;
  json::Object grid;       // axis name -> json::Array of values
  std::vector<Patch> patches;

  static CampaignSpec from_json(const std::string& text);
  static CampaignSpec from_file(const std::string& path);
  json::Value to_json() const;

  // Grid size × replicas.
  std::size_t num_runs() const;
  // The full deterministic run list (see header comment for the order).
  std::vector<RunSpec> expand() const;
};

}  // namespace oo::runner
