#include "runner/experiments.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "chaos/fuzz.h"
#include "chaos/invariants.h"
#include "chaos/shrink.h"
#include "core/quorum.h"
#include "transport/fluid.h"
#include "routing/to_routing.h"
#include "services/failure_recovery.h"
#include "services/fault_plan.h"
#include "services/health_scanner.h"
#include "services/hybrid_steering.h"
#include "services/sync_watchdog.h"
#include "traffic/engine.h"
#include "workload/allreduce.h"
#include "workload/kv.h"

namespace oo::runner {

namespace {

using namespace oo::literals;

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, RunFn>& registry() {
  static std::map<std::string, RunFn> r;
  return r;
}

// Shared fault-injection hook (see experiments.h): throws when the spec
// listed this run in "fail_runs", or in "flaky_runs" on its first attempt.
void maybe_inject_failure(const RunContext& ctx) {
  const auto listed = [&](const char* key) {
    const auto it = ctx.spec.params.find(key);
    if (it == ctx.spec.params.end()) return false;
    for (const json::Value& v : it->second.as_array()) {
      if (static_cast<int>(v.as_int()) == ctx.spec.index) return true;
    }
    return false;
  };
  if (listed("fail_runs")) {
    throw std::runtime_error("injected failure (fail_runs)");
  }
  if (ctx.attempt == 1 && listed("flaky_runs")) {
    throw std::runtime_error("injected first-attempt failure (flaky_runs)");
  }
}

json::Object percentile_row(const PercentileSampler& s) {
  json::Object o;
  o["n"] = static_cast<std::int64_t>(s.count());
  o["p50_us"] = s.count() ? s.percentile(50) : 0.0;
  o["p90_us"] = s.count() ? s.percentile(90) : 0.0;
  o["p99_us"] = s.count() ? s.percentile(99) : 0.0;
  o["max_us"] = s.count() ? s.max() : 0.0;
  return o;
}

// --- fct: Fig. 8(a)-style mice FCT on one architecture -------------------
json::Object run_fct(RunContext& ctx) {
  maybe_inject_failure(ctx);
  arch::Params p = arch_params_from(ctx);
  auto inst = make_arch(ctx.param_string("arch", "clos"), p);

  std::vector<HostId> clients;
  for (HostId h = 1; h < inst.net->num_hosts(); ++h) clients.push_back(h);
  workload::KvWorkload kv(
      *inst.net, 0, clients,
      SimTime::nanos(static_cast<std::int64_t>(
          ctx.param_double("kv_interval_ms", 2.0) * 1e6)),
      ctx.param_int("op_bytes", 4200));
  kv.start();
  inst.run_for(SimTime::millis(ctx.param_int("duration_ms", 250)));
  kv.stop();

  json::Object o = percentile_row(kv.fct_us());
  const auto t = inst.net->totals();
  o["ops"] = kv.ops_completed();
  o["delivered"] = t.delivered;
  o["fabric_drops"] = t.fabric_drops;
  ctx.sim_events = inst.net->sim().events_executed();
  return o;
}

// --- allreduce: Fig. 8(b)-style ring allreduce completion ----------------
json::Object run_allreduce(RunContext& ctx) {
  maybe_inject_failure(ctx);
  arch::Params p = arch_params_from(ctx);
  auto inst = make_arch(ctx.param_string("arch", "clos"), p);

  std::vector<HostId> ring;
  for (HostId h = 0; h < inst.net->num_hosts(); ++h) ring.push_back(h);
  SimTime total = SimTime::zero();
  auto tcp = workload::RingAllreduce::default_tcp();
  tcp.dupack_threshold = static_cast<int>(
      ctx.param_int("dupack_threshold", tcp.dupack_threshold));
  workload::RingAllreduce ar(
      *inst.net, ring, ctx.param_int("bytes", 4 << 20),
      [&](SimTime t) { total = t; }, tcp);
  ar.start();
  inst.run_for(SimTime::millis(ctx.param_int("duration_ms", 3000)));

  json::Object o;
  o["done"] = total != SimTime::zero();
  o["total_ms"] = total == SimTime::zero() ? -1.0 : total.ms();
  o["bytes"] = ctx.param_int("bytes", 4 << 20);
  ctx.sim_events = inst.net->sim().events_executed();
  return o;
}

// --- sync_resilience: clock-drift ramp vs. the sync watchdog -------------
json::Object run_sync_resilience(RunContext& ctx) {
  maybe_inject_failure(ctx);
  arch::Params p = arch_params_from(ctx);
  auto inst = make_arch(ctx.param_string("arch", "rotornet-direct-hybrid"),
                        p);
  auto* net = inst.net.get();

  const double ppm = ctx.param_double("ppm", 0.0);
  const bool watchdog_on = ctx.param_bool("watchdog", true);
  const NodeId drift_node =
      static_cast<NodeId>(ctx.param_int("drift_node", 2));

  services::SyncWatchdog watchdog(*net);
  std::int64_t wrong_at_quarantine = -1;
  if (watchdog_on) {
    watchdog.set_quarantine_hook(
        [net, &wrong_at_quarantine](NodeId, bool quarantined) {
          if (quarantined && wrong_at_quarantine < 0) {
            wrong_at_quarantine = net->optical().wrong_slice();
          }
        });
    watchdog.start();
  }

  net->sim().schedule_every(5_us, 10_us, [net]() {
    for (HostId src = 0; src < net->num_hosts(); ++src) {
      core::Packet pkt;
      pkt.type = core::PacketType::Data;
      pkt.flow = 500 + src;
      pkt.dst_host = (src + 3) % net->num_hosts();
      pkt.size_bytes = 1500;
      net->host(src).send(std::move(pkt));
    }
  });

  // Drift + beacon loss share one window: the clock compounds its error
  // unchecked, then beacons resume and re-discipline it.
  services::FaultPlan plan(
      *net,
      static_cast<std::uint64_t>(ctx.param_int("fault_seed", 2024)));
  if (ppm > 0) {
    const SimTime window =
        SimTime::millis(ctx.param_int("fault_window_ms", 6));
    plan.drift_clock(1_ms, drift_node, ppm, window);
    plan.lose_beacons(1_ms, drift_node, window);
  }
  plan.arm();

  inst.run_for(SimTime::millis(ctx.param_int("duration_ms", 12)));

  json::Object o;
  o["wrong_slice"] = net->optical().wrong_slice();
  o["wrong_at_quarantine"] = wrong_at_quarantine;
  o["delivered"] = net->optical().delivered();
  o["desyncs"] = watchdog_on ? watchdog.desyncs_detected() : 0;
  o["widenings"] = watchdog_on ? watchdog.guard_widenings() : 0;
  o["quarantines"] = watchdog_on ? watchdog.quarantines() : 0;
  o["readmissions"] = watchdog_on ? watchdog.readmissions() : 0;
  o["detect_us"] = watchdog_on && watchdog.time_to_detect_us().count() > 0
                       ? watchdog.time_to_detect_us().percentile(50)
                       : 0.0;
  o["quarantine_us"] = watchdog_on && watchdog.quarantine_us().count() > 0
                           ? watchdog.quarantine_us().percentile(50)
                           : 0.0;
  ctx.sim_events = net->sim().events_executed();
  return o;
}

// --- gray_detection: one scripted gray fault vs. the health scanner -----
// Injects a single gray failure (ber_ramp | gray_pair | silent_install |
// telemetry_skew | none) against a known (node, port) and reports whether
// the scanner noticed, what it blamed, and how long each rung took.
// "none" is the false-positive control: any Suspect entry on a clean run
// is a finding. Localization is judged here — cause family plus blamed
// component against the injected one — so campaign grids aggregate a
// plain accuracy column without re-deriving the mapping downstream.
const char* cause_name(services::HealthScanner::Cause c) {
  using Cause = services::HealthScanner::Cause;
  switch (c) {
    case Cause::None: return "none";
    case Cause::LinkLoss: return "link_loss";
    case Cause::PortDegrade: return "port_degrade";
    case Cause::TelemetrySkew: return "telemetry_skew";
    case Cause::SilentInstall: return "silent_install";
  }
  return "?";
}

json::Object run_gray_detection(RunContext& ctx) {
  maybe_inject_failure(ctx);
  arch::Params p = arch_params_from(ctx);
  auto inst =
      make_arch(ctx.param_string("arch", "rotornet-direct-hybrid"), p);
  auto* net = inst.net.get();
  auto* ctl = inst.ctl.get();

  using services::HealthScanner;
  HealthScanner::Config hc;
  hc.min_anomalous_audits = static_cast<int>(
      ctx.param_int("min_anomalous_audits", hc.min_anomalous_audits));
  hc.suspect_score = ctx.param_double("suspect_score", hc.suspect_score);
  hc.readmit_clean_rounds = static_cast<int>(
      ctx.param_int("readmit_clean_rounds", hc.readmit_clean_rounds));
  HealthScanner scanner(*net, hc);
  scanner.set_controller(ctl);
  if (inst.steering) {
    auto steering = inst.steering;
    scanner.set_degrade_hook([steering](NodeId n, bool degraded) {
      steering->set_node_degraded(n, degraded);
    });
  }

  const NodeId target = static_cast<NodeId>(ctx.param_int("target", 2));
  SimTime suspect_at = SimTime::zero();
  SimTime quarantine_at = SimTime::zero();
  // Blame as localized when remediation lands — a healed fault readmits the
  // node and resets its end-of-run blame, which is not what grids score.
  // First-suspect blame is provisional (only the strongest circuit has
  // matured); the quarantine-time blame is the ladder's actual verdict.
  HealthScanner::Blame first_blame;
  HealthScanner::Blame final_blame;
  std::int64_t off_target_suspects = 0;
  scanner.set_transition_hook([&, net, target](NodeId n,
                                               HealthScanner::NodeHealth,
                                               HealthScanner::NodeHealth to) {
    if (to == HealthScanner::NodeHealth::Suspect) {
      if (n == target) {
        if (suspect_at == SimTime::zero()) {
          suspect_at = net->sim().now();
          first_blame = scanner.blame(n);
        }
      } else {
        ++off_target_suspects;
      }
    }
    if (ctx.param_bool("debug_transitions", false)) {
      const auto& b = scanner.blame(n);
      std::fprintf(stderr,
                   "[%lld ns] node %d -> %d cause=%s port=%d peer=%d\n",
                   (long long)net->sim().now().ns(), (int)n, (int)to,
                   cause_name(b.cause), (int)b.port, (int)b.peer);
    }
    if (n == target && to == HealthScanner::NodeHealth::Quarantined) {
      if (quarantine_at == SimTime::zero()) quarantine_at = net->sim().now();
      // Keep the last quarantine's verdict: a sticky fault oscillates
      // through quarantine/readmit cycles, and each re-detection classifies
      // from richer evidence than the first ladder climb had.
      final_blame = scanner.blame(n);
    }
  });
  scanner.start();

  // All-to-all background traffic, heavy enough that every circuit clears
  // the audit's min-bytes evidence bar each slice — single-destination
  // patterns would make a dying port indistinguishable from one bad pair.
  const SimTime send_every = SimTime::nanos(static_cast<std::int64_t>(
      ctx.param_double("send_interval_us", 10.0) * 1e3));
  net->sim().schedule_every(5_us, send_every, [net]() {
    for (HostId src = 0; src < net->num_hosts(); ++src) {
      for (HostId dst = 0; dst < net->num_hosts(); ++dst) {
        if (dst == src) continue;
        core::Packet pkt;
        pkt.type = core::PacketType::Data;
        pkt.flow = 900 + src;
        pkt.dst_host = dst;
        pkt.size_bytes = 1500;
        net->host(src).send(std::move(pkt));
      }
    }
  });
  // Periodic identity redeploys give the claim-vs-behavior check a live ack
  // trail to audit (a silent installer is only caught while installs flow).
  net->sim().schedule_every(
      SimTime::millis(1),
      SimTime::nanos(static_cast<std::int64_t>(
          ctx.param_double("deploy_interval_us", 2000.0) * 1e3)),
      [net, ctl]() {
        (void)ctl->deploy_update(net->schedule(),
                                 routing::direct_to(net->schedule()),
                                 core::LookupMode::PerHop,
                                 core::MultipathMode::None, 1, 1,
                                 SimTime::zero(), nullptr);
      });

  const std::string fault = ctx.param_string("fault", "gray_pair");
  const PortId port = static_cast<PortId>(ctx.param_int("port", 0));
  const double severity = ctx.param_double("severity", 0.5);
  const SimTime at = SimTime::nanos(static_cast<std::int64_t>(
      ctx.param_double("fault_at_us", 2000.0) * 1e3));
  const SimTime window = SimTime::nanos(static_cast<std::int64_t>(
      ctx.param_double("fault_window_us", 20000.0) * 1e3));
  const std::int64_t peer_param = ctx.param_int("peer", -1);
  const NodeId peer = peer_param >= 0 ? static_cast<NodeId>(peer_param)
                                      : kInvalidNode;

  services::FaultPlan plan(
      *net, static_cast<std::uint64_t>(ctx.param_int("fault_seed", 2024)),
      ctl);
  using Cause = services::HealthScanner::Cause;
  Cause expected = Cause::None;
  if (fault == "ber_ramp") {
    // Aging transceiver: ~severity-scaled packet-corruption odds at full
    // ramp (1500 B frames corrupt w.p. ~= 12000 * ber).
    plan.ramp_ber(at, target, port, 1e-9, severity * 2e-5, window);
    expected = Cause::PortDegrade;
  } else if (fault == "gray_pair") {
    plan.gray_pair(at, target, port, peer, severity, window);
    expected = peer != kInvalidNode ? Cause::LinkLoss : Cause::PortDegrade;
  } else if (fault == "silent_install") {
    plan.silent_install(at, target, window);
    expected = Cause::SilentInstall;
  } else if (fault == "telemetry_skew") {
    const double ppm = std::min(500000.0, std::max(50000.0,
                                                   severity * 200000.0));
    plan.skew_telemetry(at, target, ppm, window);
    expected = Cause::TelemetrySkew;
  } else if (fault != "none") {
    throw std::runtime_error("gray_detection: unknown fault '" + fault +
                             "' (ber_ramp | gray_pair | silent_install | "
                             "telemetry_skew | none)");
  }
  plan.arm();

  inst.run_for(SimTime::millis(ctx.param_int("duration_ms", 30)));

  // Score the quarantine-time verdict; fall back to the first-suspect blame
  // when the run ended before the ladder reached quarantine.
  const HealthScanner::Blame& why =
      quarantine_at != SimTime::zero() ? final_blame : first_blame;
  bool localized;
  if (fault == "none") {
    localized = scanner.suspects() == 0;
  } else {
    localized = why.cause == expected;
    if (expected == Cause::LinkLoss) {
      localized = localized && why.port == port && why.peer == peer;
    } else if (expected == Cause::PortDegrade) {
      localized = localized && why.port == port;
    }
  }

  json::Object o;
  o["fault"] = fault;
  o["severity"] = severity;
  o["detected"] = suspect_at != SimTime::zero();
  o["suspect_us"] =
      suspect_at != SimTime::zero() ? (suspect_at - at).us() : -1.0;
  o["quarantine_us"] =
      quarantine_at != SimTime::zero() ? (quarantine_at - at).us() : -1.0;
  o["state"] = static_cast<std::int64_t>(scanner.state(target));
  o["blame_cause"] = std::string(cause_name(why.cause));
  o["blame_port"] = static_cast<std::int64_t>(
      why.port == kInvalidPort ? -1 : why.port);
  o["blame_peer"] = static_cast<std::int64_t>(
      why.peer == kInvalidNode ? -1 : why.peer);
  o["localized"] = localized;
  o["false_positives"] = off_target_suspects;
  o["audits"] = scanner.audits();
  o["suspects"] = scanner.suspects();
  o["degrades"] = scanner.degrades();
  o["quarantines"] = scanner.quarantines();
  o["readmissions"] = scanner.readmissions();
  o["probes_lost"] = scanner.probes_lost();
  const auto t = net->totals();
  o["delivered"] = t.delivered;
  o["fabric_drops"] = t.fabric_drops;
  ctx.sim_events = net->sim().events_executed();
  return o;
}

// --- control_chaos: southbound loss/dup + controller crash vs. the
// transactional deploy path. fencing=true must keep mixed_epoch_slices at
// 0; fencing=false is the legacy-scatter baseline that exposes them. -----
json::Object run_control_chaos(RunContext& ctx) {
  maybe_inject_failure(ctx);
  arch::Params p = arch_params_from(ctx);
  auto inst = make_arch(ctx.param_string("arch", "rotornet-direct"), p);
  auto* net = inst.net.get();
  auto* ctl = inst.ctl.get();

  const bool fencing = ctx.param_bool("fencing", true);
  ctl->set_fencing(fencing);
  core::SouthboundConfig sb;
  sb.latency = SimTime::nanos(static_cast<std::int64_t>(
      ctx.param_double("sb_latency_us", 20.0) * 1e3));
  ctl->southbound().configure(sb);

  services::FailureRecovery recovery(
      *net, *ctl,
      [](const optics::Schedule& s) { return routing::direct_to(s); },
      /*scrub=*/1_ms);
  recovery.start();

  net->sim().schedule_every(50_us, 100_us, [net]() {
    for (HostId src : {HostId{0}, HostId{1}, HostId{2}}) {
      core::Packet pkt;
      pkt.type = core::PacketType::Data;
      pkt.flow = 100 + src;
      pkt.dst_host = (src + 4) % net->num_hosts();
      pkt.size_bytes = 1500;
      net->host(src).send(std::move(pkt));
    }
  });

  const double loss = ctx.param_double("sb_loss_prob", 0.7);
  const NodeId lossy = static_cast<NodeId>(ctx.param_int("lossy_node", 3));
  services::FaultPlan plan(
      *net,
      static_cast<std::uint64_t>(ctx.param_int("fault_seed", 2024)), ctl);
  // Port churn forces recovery redeploys; they cross the southbound while
  // it is lossy/dup-prone and once while the controller is down entirely.
  plan.lose_sb_msgs(5_ms, lossy, loss, /*duration=*/20_ms);
  plan.fail_port(8_ms, 0, 0);
  plan.repair_port(22_ms, 0, 0);
  plan.dup_sb_msgs(30_ms, kInvalidNode, 0.5, /*duration=*/12_ms);
  plan.fail_port(32_ms, 1, 0);
  plan.repair_port(38_ms, 1, 0);
  plan.crash_controller(45_ms, /*duration=*/3_ms);
  plan.fail_port(46_ms, 2, 0);
  plan.repair_port(58_ms, 2, 0);
  plan.arm();

  inst.run_for(SimTime::millis(ctx.param_int("duration_ms", 80)));

  json::Object o;
  o["fencing"] = fencing;
  o["mixed_epoch_slices"] = net->mixed_epoch_slices();
  o["epoch_mixed_at_end"] = net->epoch_mixed();
  o["committed_epoch"] =
      static_cast<std::int64_t>(ctl->committed_epoch());
  o["txn_commits"] = ctl->txn_commits();
  o["txn_aborts"] = ctl->txn_aborts();
  o["txn_rollbacks"] = ctl->txn_rollbacks();
  o["fenced_stale_installs"] = ctl->fenced_stale_installs();
  o["resyncs"] = ctl->resyncs();
  o["deploys_rejected"] = ctl->deploys_rejected();
  o["sb_sent"] = ctl->southbound().msgs_sent();
  o["sb_lost"] = ctl->southbound().msgs_lost();
  o["sb_duped"] = ctl->southbound().msgs_duped();
  o["recoveries"] = recovery.recoveries();
  o["retries"] = recovery.retries();
  o["delivered"] = net->optical().delivered();
  ctx.sim_events = net->sim().events_executed();
  return o;
}

// --- quorum_chaos: deploy latency/availability vs controller replication -
// Sweeps controller_replicas (1 = the plain single controller, no quorum
// constructed) x southbound loss, drives periodic deploy_update
// transactions through the control plane while a scripted leader kill,
// replica partition, and log divergence play out, and reports per-deploy
// commit latency percentiles plus the election/failover/replication
// counters. The quorum fault events are no-ops for replicas=1, so every
// grid cell runs the identical script.
json::Object run_quorum_chaos(RunContext& ctx) {
  maybe_inject_failure(ctx);
  arch::Params p = arch_params_from(ctx);
  auto inst = make_arch(ctx.param_string("arch", "rotornet-direct"), p);
  auto* net = inst.net.get();
  auto* ctl = inst.ctl.get();

  core::SouthboundConfig sb;
  sb.latency = SimTime::nanos(static_cast<std::int64_t>(
      ctx.param_double("sb_latency_us", 20.0) * 1e3));
  sb.loss_prob = ctx.param_double("sb_loss_prob", 0.0);
  ctl->southbound().configure(sb);

  const int replicas =
      static_cast<int>(ctx.param_int("controller_replicas", 1));
  std::unique_ptr<core::ControllerQuorum> quorum;
  if (replicas > 1) {
    core::QuorumConfig qc;
    qc.replicas = replicas;
    qc.election_timeout = SimTime::nanos(static_cast<std::int64_t>(
        ctx.param_double("election_timeout_us", 200.0) * 1e3));
    qc.heartbeat = SimTime::nanos(static_cast<std::int64_t>(
        ctx.param_double("heartbeat_us", 50.0) * 1e3));
    quorum = std::make_unique<core::ControllerQuorum>(*net, *ctl, qc);
    quorum->start();
  }

  services::FailureRecovery recovery(
      *net, *ctl,
      [](const optics::Schedule& s) { return routing::direct_to(s); },
      /*scrub=*/1_ms);
  recovery.start();

  net->sim().schedule_every(50_us, 100_us, [net]() {
    for (HostId src : {HostId{0}, HostId{1}, HostId{2}}) {
      core::Packet pkt;
      pkt.type = core::PacketType::Data;
      pkt.flow = 100 + src;
      pkt.dst_host = (src + 4) % net->num_hosts();
      pkt.size_bytes = 1500;
      net->host(src).send(std::move(pkt));
    }
  });

  services::FaultPlan plan(
      *net,
      static_cast<std::uint64_t>(ctx.param_int("fault_seed", 2024)), ctl);
  plan.fail_port(8_ms, 0, 0);
  plan.repair_port(16_ms, 0, 0);
  plan.diverge_log(12_ms, replicas > 2 ? 2 : 1);
  plan.kill_leader(20_ms, /*restart_after=*/2_ms);
  plan.partition_replica(30_ms, 1, /*duration=*/3_ms);
  plan.arm();

  // Periodic identity redeploys: each is a full two-phase (and, with a
  // quorum, majority-replicated) transaction whose issue->outcome latency
  // we sample. Deploys racing the leader kill measure failover cost.
  PercentileSampler deploy_us;
  std::int64_t issued = 0, refused = 0, committed = 0, aborted = 0;
  net->sim().schedule_every(4_ms, 2_ms, [&, net, ctl]() {
    const SimTime t0 = net->sim().now();
    ++issued;
    const bool accepted = ctl->deploy_update(
        net->schedule(), routing::direct_to(net->schedule()),
        core::LookupMode::PerHop, core::MultipathMode::None, 1, 1,
        SimTime::zero(),
        // Capture `net` by value: the controller holds this callback past
        // the enclosing closure's lifetime, so a `[&]` capture of the outer
        // lambda's copy would dangle.
        [&deploy_us, &committed, &aborted, net, t0](bool ok) {
          deploy_us.add((net->sim().now() - t0).us());
          if (ok) {
            ++committed;
          } else {
            ++aborted;
          }
        });
    if (!accepted) ++refused;
  });

  inst.run_for(SimTime::millis(ctx.param_int("duration_ms", 60)));

  json::Object o;
  o["controller_replicas"] = static_cast<std::int64_t>(replicas);
  o["deploy"] = percentile_row(deploy_us);
  o["deploys_issued"] = issued;
  o["deploys_refused"] = refused;
  o["deploys_committed"] = committed;
  o["deploys_aborted"] = aborted;
  o["mixed_epoch_slices"] = net->mixed_epoch_slices();
  o["committed_epoch"] =
      static_cast<std::int64_t>(ctl->committed_epoch());
  o["txn_commits"] = ctl->txn_commits();
  o["txn_aborts"] = ctl->txn_aborts();
  o["txn_rollbacks"] = ctl->txn_rollbacks();
  o["resyncs"] = ctl->resyncs();
  o["stale_term_rejections"] = ctl->stale_term_rejections();
  o["elections"] = quorum ? quorum->elections() : 0;
  o["failovers"] = quorum ? quorum->failovers() : 0;
  o["step_downs"] = quorum ? quorum->step_downs() : 0;
  o["log_repairs"] = quorum ? quorum->log_repairs() : 0;
  o["term"] =
      static_cast<std::int64_t>(quorum ? quorum->term() : 0);
  o["log_length"] = quorum ? quorum->log_length() : 0;
  o["replica_msgs_sent"] = ctl->southbound().replica_msgs_sent();
  o["replica_msgs_lost"] = ctl->southbound().replica_msgs_lost();
  o["sb_sent"] = ctl->southbound().msgs_sent();
  o["sb_lost"] = ctl->southbound().msgs_lost();
  o["recoveries"] = recovery.recoveries();
  o["retries"] = recovery.retries();
  ctx.sim_events = net->sim().events_executed();
  return o;
}

// --- chaos_fuzz: seeded random fault plans under the invariant monitor.
// Each run fuzzes a FaultPlan from its seed, drives it against a live
// fabric (recovery + watchdog + optional quorum + background traffic +
// a couple of fluid elephants), and asks the monitor whether every
// invariant survived. On violation the plan is delta-debugged down to a
// minimal reproducer, embedded in the result row. "plant_bug" wires a
// deliberately broken invariant (trips when a clock_step and a port_fail
// are armed in the same plan) so the fuzz -> catch -> shrink -> replay
// loop itself stays tested. ----------------------------------------------

// One full deterministic scenario run; the shrinker re-enters this for
// every probe, so everything inside must derive from (ctx, events) alone.
std::int64_t chaos_run_once(RunContext& ctx,
                            const std::vector<services::FaultEvent>& events,
                            bool plant_bug, std::string* report,
                            json::Object* counters) {
  arch::Params p = arch_params_from(ctx);
  auto inst =
      make_arch(ctx.param_string("arch", "rotornet-direct-hybrid"), p);
  auto* net = inst.net.get();
  auto* ctl = inst.ctl.get();

  chaos::InvariantMonitor monitor(*net);
  monitor.attach_controller(ctl);
  if (net->sharded()) monitor.attach_parallel(net->sharded_engine());

  const int replicas =
      static_cast<int>(ctx.param_int("controller_replicas", 1));
  std::unique_ptr<core::ControllerQuorum> quorum;
  if (replicas > 1) {
    core::QuorumConfig qc;
    qc.replicas = replicas;
    quorum = std::make_unique<core::ControllerQuorum>(*net, *ctl, qc);
    quorum->start();
    monitor.attach_quorum(quorum.get());
  }

  services::FailureRecovery recovery(
      *net, *ctl,
      [](const optics::Schedule& s) { return routing::direct_to(s); },
      /*scrub=*/1_ms);
  recovery.start();

  services::SyncWatchdog watchdog(*net);
  monitor.attach_watchdog(&watchdog);
  watchdog.start();

  // The health scanner rides every fuzz run: the gray fault kinds exercise
  // its evidence ladder, and the monitor checks each transition's legality.
  services::HealthScanner scanner(*net);
  scanner.set_controller(ctl);
  monitor.attach_scanner(&scanner);
  if (inst.steering) {
    auto steering = inst.steering;
    scanner.set_degrade_hook([steering](NodeId n, bool degraded) {
      steering->set_node_degraded(n, degraded);
    });
  }
  scanner.start();

  transport::FluidSolver fluid(*net);
  monitor.attach_fluid(&fluid);

  monitor.start(SimTime::nanos(static_cast<std::int64_t>(
      ctx.param_double("poll_us", 50.0) * 1e3)));

  if (plant_bug) {
    bool has_step = false, has_fail = false;
    for (const auto& e : events) {
      if (e.kind == services::FaultKind::ClockStep) has_step = true;
      if (e.kind == services::FaultKind::PortFail) has_fail = true;
    }
    if (has_step && has_fail) {
      monitor.add_check("planted_bug", [] {
        return std::string(
            "planted: clock_step and port_fail armed in the same plan");
      });
    }
  }

  services::FaultPlan plan(*net, ctx.seed_for("chaos.faults"), ctl);
  for (const auto& e : events) plan.add(e);
  plan.arm();

  // Background packet traffic, cut off early enough that every in-flight
  // packet lands (or parks somewhere the census sees) before the drain
  // check — the conservation ledger is only exact at quiescence.
  const SimTime duration = SimTime::nanos(static_cast<std::int64_t>(
      ctx.param_double("duration_us", 3000.0) * 1e3));
  const SimTime cutoff = SimTime::nanos(duration.ns() * 2 / 3);
  for (SimTime t = 20_us; t < cutoff; t = t + 100_us) {
    net->sim().schedule_at(t, [net]() {
      for (HostId src : {HostId{0}, HostId{1}, HostId{2}}) {
        core::Packet pkt;
        pkt.type = core::PacketType::Data;
        pkt.flow = 700 + src;
        pkt.dst_host = (src + 5) % net->num_hosts();
        pkt.size_bytes = 1500;
        net->host(src % net->num_hosts()).send(std::move(pkt));
      }
    });
  }
  // Two fluid elephants keep the solver's conservation check non-trivial.
  net->sim().schedule_at(50_us, [net, &fluid]() {
    fluid.launch(0, net->num_hosts() / 2, 2'000'000, nullptr);
    fluid.launch(1, net->num_hosts() - 1, 1'000'000, nullptr);
  });
  // Scanner probes stop with the traffic: a probe datagram still in flight
  // at the horizon would read as a leak to the drain-time ledger.
  net->sim().schedule_at(cutoff, [&scanner]() { scanner.stop(); });

  inst.run_for(duration);
  monitor.check_at_drain();

  if (report != nullptr) *report = monitor.report();
  if (counters != nullptr) {
    const auto t = net->totals();
    (*counters)["delivered"] = t.delivered;
    (*counters)["fabric_drops"] = t.fabric_drops;
    (*counters)["congestion_drops"] = t.congestion_drops;
    (*counters)["electrical_drops"] = t.electrical_drops;
    (*counters)["packets_injected"] = net->packets_injected();
    (*counters)["queued_at_drain"] = net->queued_packets();
    (*counters)["faults_injected"] = plan.injected_total();
    (*counters)["fault_summary"] = plan.summary();
    (*counters)["recoveries"] = recovery.recoveries();
    (*counters)["quarantines"] = watchdog.quarantines();
    (*counters)["health_suspects"] = scanner.suspects();
    (*counters)["health_quarantines"] = scanner.quarantines();
    (*counters)["health_readmissions"] = scanner.readmissions();
    (*counters)["elections"] = quorum ? quorum->elections() : 0;
  }
  ctx.sim_events = net->sim().events_executed();
  return monitor.total_violations();
}

json::Object run_chaos_fuzz(RunContext& ctx) {
  maybe_inject_failure(ctx);

  const bool plant_bug = ctx.param_bool("plant_bug", false);
  const bool minimize = ctx.param_bool("minimize", true);

  // Replay mode: an explicit plan (the reproducer artifact) instead of a
  // fuzzed one. Everything else — fabric, seeds, traffic — is identical,
  // which is what makes the reproducer deterministic.
  std::vector<services::FaultEvent> events;
  const std::string plan_json = ctx.param_string("plan_json", "");
  std::uint64_t fuzz_seed = 0;
  if (!plan_json.empty()) {
    events = services::parse_fault_events(json::parse(plan_json));
  } else {
    chaos::FuzzSpec fs;
    fs.events = static_cast<int>(ctx.param_int("events", 12));
    fs.intensity = ctx.param_double("intensity", 1.0);
    fs.num_tors = static_cast<int>(ctx.param_int("tors", 4));
    fs.ports_per_tor = static_cast<int>(ctx.param_int("uplinks", 1));
    fs.replicas = static_cast<int>(ctx.param_int("controller_replicas", 1));
    // Faults land in the first half of the run: the tail is the recovery
    // and drain window.
    fs.horizon = SimTime::nanos(static_cast<std::int64_t>(
        ctx.param_double("duration_us", 3000.0) * 1e3) / 2);
    const std::int64_t seed_param = ctx.param_int("fuzz_seed", -1);
    fuzz_seed = seed_param >= 0
                    ? static_cast<std::uint64_t>(seed_param)
                    : ctx.seed_for("chaos.fuzz");
    events = chaos::fuzz_plan(fuzz_seed, fs);
  }

  std::string report;
  json::Object counters;
  const std::int64_t violations =
      chaos_run_once(ctx, events, plant_bug, &report, &counters);

  json::Object o = std::move(counters);
  o["fuzz_seed"] = static_cast<std::int64_t>(fuzz_seed);
  o["plan_events"] = static_cast<std::int64_t>(events.size());
  o["violations"] = violations;
  o["report"] = report;

  if (violations > 0 && minimize) {
    const int max_probes =
        static_cast<int>(ctx.param_int("shrink_probes", 200));
    auto res = chaos::shrink_events(
        events,
        [&ctx, plant_bug](const std::vector<services::FaultEvent>& evs) {
          return chaos_run_once(ctx, evs, plant_bug, nullptr, nullptr) > 0;
        },
        max_probes);
    o["minimal_events"] = static_cast<std::int64_t>(res.minimal.size());
    o["shrink_probes"] = res.probes;
    o["shrink_reproduced"] = res.reproduced;
    o["reproducer"] = services::fault_events_to_json(res.minimal);
  }
  return o;
}

json::Object fct_aggregate_row(const traffic::FctAggregate& a) {
  json::Object o;
  o["n"] = a.count();
  o["mean_us"] = a.mean();
  o["p50_us"] = a.percentile(50);
  o["p99_us"] = a.percentile(99);
  o["max_us"] = a.max();
  return o;
}

// --- load_sweep: streaming traffic engine at hybrid fidelity -------------
// Drives the TrafficEngine against one architecture at one load point;
// grid "load" (and optionally "hybrid_threshold") across runs to sweep a
// curve to the FCT knee. A full traffic spec can ride in params under
// "traffic" (spec.h's JSON shape); flat params override its scalars so
// grids stay one-dimensional JSON.
json::Object run_load_sweep(RunContext& ctx) {
  maybe_inject_failure(ctx);
  arch::Params p = arch_params_from(ctx);
  auto inst = make_arch(ctx.param_string("arch", "rotornet-direct"), p);

  traffic::TrafficSpec spec;
  const auto it = ctx.spec.params.find("traffic");
  if (it != ctx.spec.params.end()) {
    spec = traffic::spec_from_json(it->second);
  } else {
    spec.size.base =
        workload::trace_cdf_by_name(ctx.param_string("cdf", "kv"));
  }
  spec.load = ctx.param_double("load", spec.load);
  spec.sources = ctx.param_int("sources", spec.sources);
  spec.hybrid_threshold =
      ctx.param_int("hybrid_threshold", spec.hybrid_threshold);
  // Per-run derived seed: the flow stream is a pure function of
  // (campaign seed, run index), so results.jsonl is byte-identical at any
  // --jobs and under resume.
  spec.seed = ctx.seed_for("traffic");
  traffic::validate(spec);

  traffic::TrafficEngine eng(*inst.net, spec);
  eng.start();
  inst.run_for(SimTime::millis(ctx.param_int("duration_ms", 200)));
  eng.stop();
  // Grace window so in-flight transfers report their FCTs.
  inst.run_for(SimTime::millis(ctx.param_int("drain_ms", 50)));

  json::Object o;
  o["flows_emitted"] = eng.flows_emitted();
  o["flows_packet"] = eng.flows_packet();
  o["flows_fluid"] = eng.flows_fluid();
  o["flows_completed"] = eng.flows_completed();
  o["bytes_offered"] = eng.bytes_offered();
  char fp[24];
  std::snprintf(fp, sizeof fp, "%016llx",
                static_cast<unsigned long long>(eng.stream_fingerprint()));
  o["fingerprint"] = std::string(fp);
  o["mice"] = fct_aggregate_row(eng.mice_fct_us());
  o["elephant"] = fct_aggregate_row(eng.elephant_fct_us());
  o["fluid_recomputes"] = eng.fluid().recomputes();
  const auto t = inst.net->totals();
  o["delivered"] = t.delivered;
  o["fabric_drops"] = t.fabric_drops;
  o["congestion_drops"] = t.congestion_drops;
  ctx.sim_events = inst.net->sim().events_executed();
  return o;
}

// --- selftest: cheap deterministic arithmetic for machinery drills -------
json::Object run_selftest(RunContext& ctx) {
  maybe_inject_failure(ctx);
  Rng rng = ctx.rng();
  std::uint64_t acc = 0;
  const std::int64_t iters = ctx.param_int("iters", 1000);
  for (std::int64_t i = 0; i < iters; ++i) acc ^= rng.next_u64();
  json::Object o;
  o["acc"] = static_cast<std::int64_t>(acc);
  o["draw"] = static_cast<std::int64_t>(ctx.stream("extra").next_u32());
  ctx.sim_events = iters;
  return o;
}

bool register_builtins() {
  register_experiment("fct", run_fct);
  register_experiment("allreduce", run_allreduce);
  register_experiment("sync_resilience", run_sync_resilience);
  register_experiment("gray_detection", run_gray_detection);
  register_experiment("control_chaos", run_control_chaos);
  register_experiment("quorum_chaos", run_quorum_chaos);
  register_experiment("chaos_fuzz", run_chaos_fuzz);
  register_experiment("load_sweep", run_load_sweep);
  register_experiment("selftest", run_selftest);
  return true;
}

// Runs at static-initialization time. This TU is always linked when the
// registry is used (find_experiment lives here), so the built-ins can't be
// stripped while anything can look them up.
const bool kBuiltinsRegistered = register_builtins();

}  // namespace

void register_experiment(const std::string& name, RunFn fn) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry()[name] = std::move(fn);
}

RunFn find_experiment(const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(name);
  if (it == registry().end()) {
    std::string known;
    for (const auto& [n, fn] : registry()) {
      (void)fn;
      known += known.empty() ? n : ", " + n;
    }
    throw std::runtime_error("unknown experiment '" + name +
                             "' (registered: " + known + ")");
  }
  return it->second;
}

std::vector<std::string> experiment_names() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<std::string> names;
  for (const auto& [n, fn] : registry()) {
    (void)fn;
    names.push_back(n);
  }
  return names;
}

arch::Params arch_params_from(const RunContext& ctx) {
  arch::Params p;
  p.tors = static_cast<int>(ctx.param_int("tors", p.tors));
  p.hosts_per_tor =
      static_cast<int>(ctx.param_int("hosts", p.hosts_per_tor));
  p.uplinks = static_cast<int>(ctx.param_int("uplinks", p.uplinks));
  p.slice = SimTime::nanos(static_cast<std::int64_t>(
      ctx.param_double("slice_us", p.slice.us()) * 1e3));
  p.collect_interval = SimTime::nanos(static_cast<std::int64_t>(
      ctx.param_double("collect_interval_ms", p.collect_interval.ms()) *
      1e6));
  p.reconfig_delay = SimTime::nanos(static_cast<std::int64_t>(
      ctx.param_double("reconfig_delay_ms", p.reconfig_delay.ms()) * 1e6));
  // The network seed defaults to the run's derived seed, so replicas of a
  // grid point differ exactly in their stochastic inputs; specs replaying
  // a bench's published numbers pin it with "net_seed".
  p.seed = static_cast<std::uint64_t>(ctx.param_int(
      "net_seed", static_cast<std::int64_t>(ctx.seed_for("net"))));
  // Sharded engine workers; a campaign axis like "shards": [1, 2, 4, 8]
  // sweeps it, and results must be byte-identical across the axis.
  p.shards = static_cast<int>(ctx.param_int("shards", 0));
  return p;
}

arch::Instance make_arch(const std::string& name, const arch::Params& p) {
  using arch::RotorRouting;
  if (name == "clos") return arch::make_clos(p);
  if (name == "cthrough") return arch::make_cthrough(p);
  if (name == "jupiter") return arch::make_jupiter(p);
  if (name == "mordia") return arch::make_mordia(p);
  if (name == "rotornet-vlb")
    return arch::make_rotornet(p, RotorRouting::Vlb);
  if (name == "rotornet-direct")
    return arch::make_rotornet(p, RotorRouting::Direct);
  if (name == "rotornet-direct-hybrid")
    return arch::make_rotornet(p, RotorRouting::Direct, /*hybrid=*/true);
  if (name == "rotornet-ucmp")
    return arch::make_rotornet(p, RotorRouting::Ucmp);
  if (name == "rotornet-hoho")
    return arch::make_rotornet(p, RotorRouting::Hoho);
  if (name == "opera") return arch::make_opera(p);
  if (name == "opera-bulk") return arch::make_opera(p, /*bulk=*/true);
  if (name == "shale") return arch::make_shale(p);
  if (name == "semi-oblivious") return arch::make_semi_oblivious(p);
  throw std::runtime_error("unknown architecture: " + name);
}

}  // namespace oo::runner
