// Experiment registry: named run functions the campaign engine can execute
// from a JSON spec ("experiment": "fct"). Built-ins cover the sweeps the
// bench binaries used to hand-roll — architecture FCT comparisons (Fig. 8a),
// ring-allreduce completion (Fig. 8b), and the clock-drift resilience sweep
// — so `bench/fig08_fct` and `bench/sync_resilience` are thin spec builders
// over the same code paths `examples/campaign` drives from the CLI.
//
// Every built-in honours two fault-injection params for campaign-machinery
// drills (ignored when absent):
//   "fail_runs":  [indices...] — the run always throws (exhausts retries);
//   "flaky_runs": [indices...] — the run throws on its first attempt only
//                 (exercises the failed-then-retried manifest path).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "arch/arch.h"
#include "runner/runner.h"

namespace oo::runner {

// Registers `fn` under `name`; later registrations replace earlier ones.
void register_experiment(const std::string& name, RunFn fn);
// Throws std::runtime_error when `name` is unknown.
RunFn find_experiment(const std::string& name);
std::vector<std::string> experiment_names();

// Architecture preset by campaign name (the oosim spellings: clos,
// cthrough, jupiter, mordia, rotornet-vlb, rotornet-direct, rotornet-ucmp,
// rotornet-hoho, opera, opera-bulk, shale, semi-oblivious). Throws on an
// unknown name.
arch::Instance make_arch(const std::string& name, const arch::Params& p);

// arch::Params from the common campaign params (tors, hosts, uplinks,
// slice_us, collect_interval_ms, reconfig_delay_ms, seed from the run).
arch::Params arch_params_from(const RunContext& ctx);

}  // namespace oo::runner
