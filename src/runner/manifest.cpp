#include "runner/manifest.h"

#include <fstream>
#include <stdexcept>

namespace oo::runner {

const char* to_string(RunStatus s) {
  switch (s) {
    case RunStatus::Ok: return "ok";
    case RunStatus::Failed: return "failed";
  }
  return "?";
}

RunStatus run_status_from_string(const std::string& s) {
  if (s == "ok") return RunStatus::Ok;
  if (s == "failed") return RunStatus::Failed;
  throw std::runtime_error("manifest: unknown run status '" + s + "'");
}

json::Value RunRecord::to_json() const {
  json::Object o;
  o["run"] = index;
  o["replica"] = replica;
  o["seed"] = static_cast<std::int64_t>(seed);
  o["status"] = to_string(status);
  o["attempts"] = attempts;
  if (!error.empty()) o["error"] = error;
  o["wall_ms"] = wall_ms;
  o["sim_events"] = sim_events;
  o["params"] = params;
  o["result"] = result;
  return json::Value{o};
}

RunRecord RunRecord::from_json(const json::Value& v) {
  RunRecord r;
  r.index = static_cast<int>(v.at("run").as_int());
  r.replica = static_cast<int>(v.get_int("replica", 0));
  r.seed = static_cast<std::uint64_t>(v.get_int("seed", 0));
  r.status = run_status_from_string(v.at("status").as_string());
  r.attempts = static_cast<int>(v.get_int("attempts", 1));
  r.error = v.get_string("error", "");
  r.wall_ms = v.get_double("wall_ms", 0.0);
  r.sim_events = v.get_int("sim_events", 0);
  if (v.as_object().count("params")) r.params = v.at("params").as_object();
  if (v.as_object().count("result")) r.result = v.at("result").as_object();
  return r;
}

std::map<int, RunRecord> Manifest::load() const {
  std::map<int, RunRecord> latest;
  std::ifstream in(path_);
  if (!in) return latest;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      RunRecord r = RunRecord::from_json(json::parse(line));
      latest[r.index] = std::move(r);  // later lines supersede
    } catch (const std::exception&) {
      // Truncated tail line from an interrupted writer, or hand-edited
      // garbage: skip — resume re-runs anything it cannot prove finished.
      continue;
    }
  }
  return latest;
}

void Manifest::append(const RunRecord& rec) const {
  std::ofstream out(path_, std::ios::app);
  if (!out) throw std::runtime_error("manifest: cannot append to " + path_);
  out << rec.to_json().dump() << '\n';
  out.flush();
}

void Manifest::reset() const {
  std::ofstream out(path_, std::ios::trunc);
  if (!out) throw std::runtime_error("manifest: cannot create " + path_);
}

}  // namespace oo::runner
