// Campaign manifest: one JSONL line per run attempt outcome, appended (and
// fsync-flushed) the moment a worker finishes a run. The manifest is the
// campaign's durable state — a re-invoked campaign loads it, keeps every
// run whose latest record is `ok` (the stored result row makes re-running
// unnecessary), and executes only the rest. Lines are whole JSON objects,
// so a crash mid-write leaves at most one truncated tail line, which load()
// ignores rather than poisoning the resume.
//
// Manifest records carry wall-clock timing and attempt counts, which vary
// across machines and worker counts; the deterministic artifacts are the
// results files the runner regenerates from the records, which exclude
// those fields.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/json.h"

namespace oo::runner {

enum class RunStatus { Ok, Failed };

const char* to_string(RunStatus s);
RunStatus run_status_from_string(const std::string& s);

struct RunRecord {
  int index = 0;
  int replica = 0;
  std::uint64_t seed = 0;
  RunStatus status = RunStatus::Failed;
  int attempts = 0;          // total tries this invocation (>1 => retried)
  std::string error;         // last exception text when status == Failed
  double wall_ms = 0.0;      // wall-clock of the successful/last attempt
  std::int64_t sim_events = 0;  // simulator events the run dispatched
  json::Object params;       // the run's grid point (for humans / tooling)
  json::Object result;       // experiment's structured result row

  json::Value to_json() const;
  static RunRecord from_json(const json::Value& v);
};

class Manifest {
 public:
  explicit Manifest(std::string path) : path_(std::move(path)) {}
  const std::string& path() const { return path_; }

  // Latest record per run index (later lines supersede earlier ones, so a
  // retried-then-resumed run resolves to its final outcome). Missing file
  // -> empty map; malformed/truncated lines are skipped.
  std::map<int, RunRecord> load() const;

  // Append one record. Not synchronized — the runner serializes appends
  // behind its writer mutex.
  void append(const RunRecord& rec) const;

  // Truncate/create the file (fresh, non-resumed campaigns).
  void reset() const;

 private:
  std::string path_;
};

}  // namespace oo::runner
