#include "runner/runner.h"

#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <set>
#include <thread>

#include "services/export.h"

namespace oo::runner {

namespace {

double now_wall_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

// CSV cell for a JSON scalar; strings are quoted only when they need it.
std::string csv_cell(const json::Value& v) {
  switch (v.type()) {
    case json::Type::Null: return "";
    case json::Type::Bool: return v.as_bool() ? "true" : "false";
    case json::Type::Int: return std::to_string(v.as_int());
    case json::Type::Double: {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", v.as_double());
      return buf;
    }
    case json::Type::String: {
      const std::string& s = v.as_string();
      if (s.find_first_of(",\"\n") == std::string::npos) return s;
      std::string q = "\"";
      for (const char c : s) {
        if (c == '"') q += '"';
        q += c;
      }
      q += '"';
      return q;
    }
    default: return v.dump();  // nested values: rare, dump compact JSON
  }
}

}  // namespace

std::int64_t RunContext::param_int(const std::string& key,
                                   std::int64_t fallback) const {
  const auto it = spec.params.find(key);
  return it == spec.params.end() ? fallback : it->second.as_int();
}

double RunContext::param_double(const std::string& key,
                                double fallback) const {
  const auto it = spec.params.find(key);
  return it == spec.params.end() ? fallback : it->second.as_double();
}

std::string RunContext::param_string(const std::string& key,
                                     const std::string& fallback) const {
  const auto it = spec.params.find(key);
  return it == spec.params.end() ? fallback : it->second.as_string();
}

bool RunContext::param_bool(const std::string& key, bool fallback) const {
  const auto it = spec.params.find(key);
  return it == spec.params.end() ? fallback : it->second.as_bool();
}

CampaignRunner::CampaignRunner(CampaignSpec spec, RunFn fn, RunnerOptions opt)
    : spec_(std::move(spec)), fn_(std::move(fn)), opt_(std::move(opt)) {}

RunRecord CampaignRunner::execute(const RunSpec& rs) {
  RunRecord rec;
  rec.index = rs.index;
  rec.replica = rs.replica;
  rec.seed = rs.seed;
  rec.params = rs.params;
  for (int attempt = 1; attempt <= spec_.max_attempts; ++attempt) {
    rec.attempts = attempt;
    const double t0 = now_wall_ms();
    try {
      RunContext ctx{rs};
      ctx.attempt = attempt;
      rec.result = fn_(ctx);
      rec.sim_events = ctx.sim_events;
      rec.wall_ms = now_wall_ms() - t0;
      rec.status = RunStatus::Ok;
      rec.error.clear();
      return rec;
    } catch (const std::exception& e) {
      rec.wall_ms = now_wall_ms() - t0;
      rec.status = RunStatus::Failed;
      rec.error = e.what();
    } catch (...) {
      rec.wall_ms = now_wall_ms() - t0;
      rec.status = RunStatus::Failed;
      rec.error = "unknown exception";
    }
  }
  rec.result.clear();
  return rec;
}

CampaignSummary CampaignRunner::run() {
  const double campaign_t0 = now_wall_ms();
  const std::vector<RunSpec> runs = spec_.expand();

  summary_ = CampaignSummary{};
  summary_.total = static_cast<int>(runs.size());
  records_.assign(runs.size(), RunRecord{});

  Manifest manifest(opt_.out_dir.empty() ? std::string{}
                                         : opt_.out_dir + "/manifest.jsonl");
  std::set<int> done;
  if (!opt_.out_dir.empty()) {
    ::mkdir(opt_.out_dir.c_str(), 0777);  // EEXIST is fine
    if (opt_.resume) {
      for (auto& [index, rec] : manifest.load()) {
        if (rec.status != RunStatus::Ok) continue;
        if (index < 0 || index >= summary_.total) continue;
        records_[static_cast<std::size_t>(index)] = std::move(rec);
        done.insert(index);
      }
    } else {
      manifest.reset();
    }
  }

  // Work list: every run the manifest could not prove finished.
  std::vector<const RunSpec*> todo;
  todo.reserve(runs.size());
  for (const RunSpec& rs : runs) {
    if (!done.count(rs.index)) todo.push_back(&rs);
  }
  summary_.skipped = static_cast<int>(runs.size() - todo.size());

  std::atomic<std::size_t> cursor{0};
  std::atomic<int> completed{0};
  std::atomic<int> failed_now{0};
  std::mutex writer;  // guards manifest appends + records_ slots + progress

  const int jobs = std::max(
      1, std::min(opt_.jobs, static_cast<int>(std::max<std::size_t>(
                                 1, todo.size()))));
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1);
      if (i >= todo.size()) return;
      RunRecord rec = execute(*todo[i]);
      std::lock_guard<std::mutex> lock(writer);
      if (!opt_.out_dir.empty()) manifest.append(rec);
      if (rec.status == RunStatus::Failed) failed_now.fetch_add(1);
      summary_.retries += rec.attempts - 1;
      summary_.run_wall_ms_sum += rec.wall_ms;
      metrics_.histogram("campaign.run_wall_ms").add(rec.wall_ms);
      if (rec.wall_ms > 0 && rec.sim_events > 0) {
        metrics_.histogram("campaign.run_event_rate")
            .add(static_cast<double>(rec.sim_events) /
                 (rec.wall_ms / 1e3));
      }
      records_[static_cast<std::size_t>(rec.index)] = std::move(rec);
      const int n = completed.fetch_add(1) + 1;
      if (opt_.progress) {
        std::fprintf(stderr,
                     "\r[%s] %d/%zu runs (%d skipped, %d failed)   ",
                     spec_.name.c_str(), n, todo.size(), summary_.skipped,
                     failed_now.load());
        if (static_cast<std::size_t>(n) == todo.size()) {
          std::fprintf(stderr, "\n");
        }
      }
    }
  };

  if (jobs == 1 || todo.size() <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(jobs));
    for (int t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }

  summary_.executed = static_cast<int>(todo.size());
  summary_.wall_ms = now_wall_ms() - campaign_t0;
  for (const RunRecord& rec : records_) {
    if (rec.status == RunStatus::Ok) ++summary_.ok;
    else ++summary_.failed;
  }

  metrics_.counter("campaign.runs", {{"status", "ok"}}).set(summary_.ok);
  metrics_.counter("campaign.runs", {{"status", "failed"}})
      .set(summary_.failed);
  metrics_.counter("campaign.runs", {{"status", "skipped"}})
      .set(summary_.skipped);
  metrics_.counter("campaign.retries").set(summary_.retries);
  metrics_.gauge("campaign.wall_ms").set(summary_.wall_ms);
  metrics_.gauge("campaign.jobs").set(jobs);
  metrics_.gauge("campaign.speedup").set(summary_.speedup());

  if (!opt_.out_dir.empty()) write_outputs();
  return summary_;
}

std::string CampaignRunner::results_jsonl() const {
  // Deterministic twin of the manifest: ordered by run index, stripped of
  // timing/attempt metadata that varies across machines and worker counts.
  std::string out;
  for (const RunRecord& rec : records_) {
    json::Object o;
    o["run"] = rec.index;
    o["replica"] = rec.replica;
    o["seed"] = static_cast<std::int64_t>(rec.seed);
    o["status"] = to_string(rec.status);
    o["params"] = rec.params;
    o["result"] = rec.result;
    out += json::Value{o}.dump();
    out += '\n';
  }
  return out;
}

std::string CampaignRunner::results_csv() const {
  // Columns: run, replica, seed, status, then the sorted union of param
  // keys, then the sorted union of result keys. Unions (not first-row
  // keys) so heterogeneous rows — e.g. failed runs with empty results —
  // stay rectangular.
  std::set<std::string> param_keys, result_keys;
  for (const RunRecord& rec : records_) {
    for (const auto& [k, v] : rec.params) {
      (void)v;
      param_keys.insert(k);
    }
    for (const auto& [k, v] : rec.result) {
      (void)v;
      result_keys.insert(k);
    }
  }
  std::string out = "run,replica,seed,status";
  for (const auto& k : param_keys) out += "," + k;
  for (const auto& k : result_keys) out += "," + k;
  out += '\n';
  for (const RunRecord& rec : records_) {
    out += std::to_string(rec.index);
    out += ',' + std::to_string(rec.replica);
    out += ',' + std::to_string(rec.seed);
    out += ',';
    out += to_string(rec.status);
    for (const auto& k : param_keys) {
      out += ',';
      const auto it = rec.params.find(k);
      if (it != rec.params.end()) out += csv_cell(it->second);
    }
    for (const auto& k : result_keys) {
      out += ',';
      const auto it = rec.result.find(k);
      if (it != rec.result.end()) out += csv_cell(it->second);
    }
    out += '\n';
  }
  return out;
}

void CampaignRunner::write_outputs() const {
  services::write_file(opt_.out_dir + "/results.jsonl", results_jsonl());
  services::write_file(opt_.out_dir + "/results.csv", results_csv());
}

}  // namespace oo::runner
