// Campaign runner: executes an expanded campaign on a bounded pool of
// std::thread workers with deterministic results, crash isolation, and
// resumable manifests.
//
// Threading model. Workers pull run indices from a shared atomic cursor
// over the expanded run list; each run constructs its own sim::Simulator
// (inside the experiment function), so no simulation state crosses
// threads. The only shared mutable state is the cursor, the progress
// counters, and the manifest writer, each behind an atomic or the writer
// mutex. Experiment functions must therefore not touch process globals —
// the one historical offender (the process-wide flow-id allocator) now
// lives per-Network.
//
// Determinism argument. Result files are byte-identical for any --jobs
// value because (1) every run's inputs are a pure function of the spec
// (per-run seeds via derive_seed(campaign_seed, run_index, "run")), (2)
// runs share no mutable state, and (3) the results sink orders records by
// run index, not completion order, and excludes wall-clock fields. The
// manifest is the non-deterministic twin: append-ordered by completion,
// carrying timing/attempt metadata.
//
// Failure semantics. A run that throws is caught in the worker, recorded
// as `failed` with the exception text, and retried up to
// spec.max_attempts times in place (same worker, fresh RunContext — the
// retry replays the identical deterministic inputs, so it only helps for
// environmental failures, which is exactly the crash-isolation goal: one
// bad run must not take down a multi-hour campaign). Exhausted runs stay
// `failed` in the manifest and leave a placeholder row in the results
// files; the campaign completes and reports them.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "runner/campaign.h"
#include "runner/manifest.h"
#include "telemetry/metrics.h"

namespace oo::runner {

// Everything an experiment function receives for one run.
struct RunContext {
  const RunSpec& spec;
  // 1-based attempt number (2+ on retry after a thrown run). Experiments
  // exist that fail only on specific attempts (fault-injection drills);
  // real experiments ignore this.
  int attempt = 1;

  // Root RNG for the run, on its own derived stream.
  Rng rng() const { return derive_rng(spec.seed, 0, "root"); }
  // Named sub-stream, e.g. ctx.stream("faults") — stable under code
  // reordering, unlike chained fork()s.
  Rng stream(std::string_view name) const {
    return derive_rng(spec.seed, 0, name);
  }
  std::uint64_t seed_for(std::string_view name) const {
    return derive_seed(spec.seed, 0, name);
  }

  // Parameter accessors with spec-level fallbacks.
  std::int64_t param_int(const std::string& key, std::int64_t fallback) const;
  double param_double(const std::string& key, double fallback) const;
  std::string param_string(const std::string& key,
                           const std::string& fallback) const;
  bool param_bool(const std::string& key, bool fallback) const;

  // Experiments report how much simulated work the run did so the runner's
  // telemetry can derive per-run event rates.
  std::int64_t sim_events = 0;
};

// An experiment: executes one run and returns its structured result row.
// Must be thread-safe in the trivial sense — no shared mutable state.
using RunFn = std::function<json::Object(RunContext&)>;

struct RunnerOptions {
  int jobs = 1;            // worker threads (clamped to [1, num_runs])
  bool resume = false;     // load the manifest, skip runs recorded ok
  std::string out_dir;     // manifest.jsonl / results.jsonl / results.csv
                           // (empty: in-memory only, no files)
  bool progress = false;   // live progress line on stderr
};

struct CampaignSummary {
  int total = 0;       // expanded runs
  int executed = 0;    // runs actually executed this invocation
  int skipped = 0;     // resumed as ok from the manifest
  int ok = 0;          // final status ok (executed + skipped)
  int failed = 0;      // final status failed after all attempts
  int retries = 0;     // extra attempts spent across all runs
  double wall_ms = 0.0;         // campaign wall-clock
  double run_wall_ms_sum = 0.0; // Σ per-run wall-clock (executed runs)
  // Σ run wall / campaign wall: the observed parallel speedup (≈ jobs when
  // runs dominate and load-balance).
  double speedup() const {
    return wall_ms > 0 ? run_wall_ms_sum / wall_ms : 0.0;
  }
};

class CampaignRunner {
 public:
  CampaignRunner(CampaignSpec spec, RunFn fn, RunnerOptions opt);

  // Executes the campaign; returns the summary. Records (ordered by run
  // index) and the telemetry registry stay readable afterwards.
  CampaignSummary run();

  const std::vector<RunRecord>& records() const { return records_; }
  const CampaignSummary& summary() const { return summary_; }

  // Campaign-level telemetry: campaign.runs{status=...}, campaign.retries,
  // campaign.run_wall_ms / campaign.run_event_rate histograms,
  // campaign.speedup gauge.
  telemetry::MetricsRegistry& metrics() { return metrics_; }

  // The deterministic artifacts, regenerated from the ordered records.
  std::string results_jsonl() const;
  std::string results_csv() const;

 private:
  RunRecord execute(const RunSpec& rs);
  void write_outputs() const;

  CampaignSpec spec_;
  RunFn fn_;
  RunnerOptions opt_;
  std::vector<RunRecord> records_;
  CampaignSummary summary_;
  telemetry::MetricsRegistry metrics_;
};

}  // namespace oo::runner
