#include "services/circuit_gate.h"

namespace oo::services {

void CircuitGate::gate(HostId host, NodeId dst_tor) {
  gated_.emplace_back(host, dst_tor);
  net_.host(host).pause_dst(dst_tor);
}

void CircuitGate::start() {
  if (started_) return;
  started_ = true;
  const auto& sched = net_.schedule();
  if (sched.period() <= 1) {
    apply(0);
    return;
  }
  const SimTime dur = sched.slice_duration();
  apply(sched.slice_at(net_.sim().now()));
  // Open at each boundary for the new slice's circuits...
  net_.sim().schedule_every(
      dur, dur, [this, &sched]() { apply(sched.slice_at(net_.sim().now())); });
  // ...and close ahead of the next boundary so in-flight packets land
  // inside the closing window instead of the reconfiguration gap.
  if (close_lead_ > SimTime::zero() && close_lead_ < dur) {
    net_.sim().schedule_every(dur - close_lead_, dur,
                              [this]() { close_all(); });
  }
}

void CircuitGate::close_all() {
  for (const auto& [host, dst] : gated_) {
    net_.host(host).pause_dst(dst);
  }
}

void CircuitGate::apply(SliceId slice) {
  const auto& sched = net_.schedule();
  for (const auto& [host, dst] : gated_) {
    auto& h = net_.host(host);
    const NodeId tor = h.tor();
    bool up = false;
    for (PortId u = 0; u < sched.uplinks() && !up; ++u) {
      if (auto peer = sched.peer(tor, u, slice); peer && peer->node == dst) {
        up = true;
      }
    }
    if (up) {
      h.resume_dst(dst);
    } else {
      h.pause_dst(dst);
    }
  }
}

}  // namespace oo::services
