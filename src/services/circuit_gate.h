// Circuit-availability gating, the flow-pausing service (§5.2) driven by
// the optical schedule: ToRs notify their hosts of upcoming circuit
// connections; a gated (host -> destination) pair is resumed only while a
// direct circuit from the host's ToR to the destination is up. This is how
// direct-circuit routing achieves duty-cycle-proportional throughput with
// zero reordering (Fig. 9), and how TA designs hold elephants for circuits.
#pragma once

#include <vector>

#include "common/ids.h"
#include "core/network.h"

namespace oo::services {

class CircuitGate {
 public:
  // `close_lead`: the gate closes this long before each slice boundary so
  // in-flight packets (stack + link latency) still land inside the window —
  // the ToR's advance circuit notification.
  explicit CircuitGate(core::Network& net,
                       SimTime close_lead = SimTime::micros(5))
      : net_(net), close_lead_(close_lead) {}

  // Register a (host, destination-ToR) pair for gating. Must be called
  // before start(); the pair starts paused until its first live slice.
  void gate(HostId host, NodeId dst_tor);

  // Begins per-slice notification: at each slice boundary every gated pair
  // is resumed/paused per the new slice's circuits.
  void start();

 private:
  void apply(SliceId slice);
  void close_all();

  core::Network& net_;
  SimTime close_lead_;
  std::vector<std::pair<HostId, NodeId>> gated_;
  bool started_ = false;
};

}  // namespace oo::services
