#include "services/collector.h"

namespace oo::services {

topo::TrafficMatrix Collector::collect_now() {
  return topo::TrafficMatrix::from_bytes(net_.collect_tm());
}

void Collector::start() {
  if (started_) return;
  started_ = true;
  net_.sim().schedule_every(net_.sim().now() + interval_, interval_,
                            [this]() {
                              if (cb_) cb_(collect_now());
                            });
}

}  // namespace oo::services
