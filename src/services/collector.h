// Traffic collection (§5.2): hosts report per-destination byte counters to
// their switches, which aggregate into the controller's global traffic
// matrix every collection interval — the collect(interval) API of Tab. 1.
// TA control loops hang their topology/routing re-optimization off the
// callback (Fig. 5b/5c).
#pragma once

#include <functional>

#include "common/time.h"
#include "core/network.h"
#include "topo/traffic_matrix.h"

namespace oo::services {

class Collector {
 public:
  using Callback = std::function<void(const topo::TrafficMatrix&)>;

  Collector(core::Network& net, SimTime interval, Callback cb)
      : net_(net), interval_(interval), cb_(std::move(cb)) {}

  void start();
  // One-shot collection (drains the counters).
  topo::TrafficMatrix collect_now();

 private:
  core::Network& net_;
  SimTime interval_;
  Callback cb_;
  bool started_ = false;
};

}  // namespace oo::services
