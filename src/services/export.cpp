#include "services/export.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace oo::services {

std::string cdf_csv(const PercentileSampler& s, int points,
                    const std::string& value_header) {
  std::string out = value_header + ",quantile\n";
  char buf[64];
  for (const auto& [x, q] : s.cdf(points)) {
    std::snprintf(buf, sizeof buf, "%.6g,%.6g\n", x, q);
    out += buf;
  }
  return out;
}

std::string summary_csv(
    const std::vector<std::pair<std::string, const PercentileSampler*>>&
        series) {
  std::string out = "label,count,p50,p90,p99,p999,max\n";
  char buf[192];
  for (const auto& [label, s] : series) {
    std::snprintf(buf, sizeof buf, "%s,%zu,%.6g,%.6g,%.6g,%.6g,%.6g\n",
                  label.c_str(), s->count(), s->percentile(50),
                  s->percentile(90), s->percentile(99), s->percentile(99.9),
                  s->max());
    out += buf;
  }
  return out;
}

std::string robustness_csv(const FailureRecovery& recovery,
                           const optics::OpticalFabric& fabric) {
  std::string out = "metric,value\n";
  char buf[96];
  auto row_i = [&](const char* name, std::int64_t v) {
    std::snprintf(buf, sizeof buf, "%s,%lld\n", name,
                  static_cast<long long>(v));
    out += buf;
  };
  auto row_f = [&](const char* name, double v) {
    std::snprintf(buf, sizeof buf, "%s,%.6g\n", name, v);
    out += buf;
  };
  row_i("delivered", fabric.delivered());
  row_i("drops_failed", fabric.drops_failed());
  row_i("drops_corrupt", fabric.drops_corrupt());
  row_i("drops_no_circuit", fabric.drops_no_circuit());
  row_i("drops_guard", fabric.drops_guard());
  row_i("drops_boundary", fabric.drops_boundary());
  row_i("reconfig_stalls", fabric.reconfig_stalls());
  row_i("port_downs", recovery.port_downs());
  row_i("port_ups", recovery.port_ups());
  row_i("recoveries", recovery.recoveries());
  row_i("deploy_retries", recovery.retries());
  const auto& det = recovery.detect_latency_us();
  row_f("detect_latency_us_p50", det.empty() ? 0.0 : det.percentile(50));
  row_f("detect_latency_us_p99", det.empty() ? 0.0 : det.percentile(99));
  const auto& mttr = recovery.mttr_us();
  row_f("mttr_us_p50", mttr.empty() ? 0.0 : mttr.percentile(50));
  row_f("mttr_us_p99", mttr.empty() ? 0.0 : mttr.percentile(99));
  row_f("degraded_time_us", recovery.degraded_time().us());
  row_f("availability", recovery.availability());
  return out;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("export: cannot write " + path);
  out << content;
}

}  // namespace oo::services
