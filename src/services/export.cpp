#include "services/export.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace oo::services {

std::string cdf_csv(const PercentileSampler& s, int points,
                    const std::string& value_header) {
  std::string out = value_header + ",quantile\n";
  char buf[64];
  for (const auto& [x, q] : s.cdf(points)) {
    std::snprintf(buf, sizeof buf, "%.6g,%.6g\n", x, q);
    out += buf;
  }
  return out;
}

std::string summary_csv(
    const std::vector<std::pair<std::string, const PercentileSampler*>>&
        series) {
  std::string out = "label,count,p50,p90,p99,p999,max\n";
  char buf[192];
  for (const auto& [label, s] : series) {
    std::snprintf(buf, sizeof buf, "%s,%zu,%.6g,%.6g,%.6g,%.6g,%.6g\n",
                  label.c_str(), s->count(), s->percentile(50),
                  s->percentile(90), s->percentile(99), s->percentile(99.9),
                  s->max());
    out += buf;
  }
  return out;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("export: cannot write " + path);
  out << content;
}

}  // namespace oo::services
