// Telemetry export: CSV writers for the monitoring series and FCT
// samplers, so experiment output can be plotted outside the harness.
#pragma once

#include <string>
#include <vector>

#include "common/stats.h"
#include "optics/fabric.h"
#include "services/failure_recovery.h"

namespace oo::services {

// CDF of a sampler as "value,quantile" rows.
std::string cdf_csv(const PercentileSampler& s, int points = 100,
                    const std::string& value_header = "value");

// Percentile summary rows for several labelled samplers:
// "label,count,p50,p90,p99,p999,max".
std::string summary_csv(
    const std::vector<std::pair<std::string, const PercentileSampler*>>&
        series);

// Robustness summary as "metric,value" rows: per-fault-class fabric drops,
// failure/repair transition counts, detection-latency and MTTR percentiles
// (microseconds), retry/recovery counters, and the availability fraction.
std::string robustness_csv(const FailureRecovery& recovery,
                           const optics::OpticalFabric& fabric);

// Write `content` to `path` (throws on failure).
void write_file(const std::string& path, const std::string& content);

}  // namespace oo::services
