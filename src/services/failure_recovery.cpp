#include "services/failure_recovery.h"

namespace oo::services {

void FailureRecovery::start() {
  if (started_) return;
  started_ = true;
  net_.sim().schedule_every(net_.sim().now() + poll_, poll_, [this]() {
    const auto drops = net_.optical().drops_failed();
    if (drops > seen_drops_) {
      seen_drops_ = drops;
      recover_now();
    }
  });
}

optics::Schedule FailureRecovery::healthy_schedule() const {
  const auto& cur = net_.schedule();
  optics::Schedule healthy(cur.num_nodes(), cur.uplinks(), cur.period(),
                           cur.slice_duration());
  for (const auto& c : cur.circuits()) {
    if (net_.optical().port_failed(c.a, c.a_port) ||
        net_.optical().port_failed(c.b, c.b_port)) {
      continue;  // dark fiber: drop the circuit from the plan
    }
    healthy.add_circuit(c);
  }
  return healthy;
}

bool FailureRecovery::recover_now() {
  auto healthy = healthy_schedule();
  auto paths = reroute_(healthy);
  if (paths.empty()) return false;
  // Make-before-break: overlay routes that avoid the failed circuits, then
  // (logically) retarget the OCS plan. The fabric itself needs no change —
  // the failed ports already pass no light.
  if (!ctl_.deploy_routing(paths, core::LookupMode::PerHop,
                           core::MultipathMode::None, ++priority_,
                           &healthy)) {
    return false;
  }
  ctl_.deploy_topo(healthy.circuits(), healthy.period(), SimTime::zero());
  ++recoveries_;
  return true;
}

}  // namespace oo::services
