#include "services/failure_recovery.h"

#include <algorithm>

#include "common/log.h"

namespace oo::services {

void FailureRecovery::start() {
  if (started_) return;
  started_ = true;
  started_at_ = net_.sim().now();
  if (baseline_.num_nodes() == 0) baseline_ = net_.schedule();
  seen_drops_ = net_.optical().drops_failed();

  // LOS subscription. The fabric keeps its listener for the network's
  // lifetime; the shared flag lets stop() mute it without unhooking.
  alive_ = std::make_shared<bool>(true);
  auto alive = alive_;
  net_.optical().on_port_down(
      [this, alive](NodeId n, PortId p, SimTime at) {
        if (*alive) on_down(n, p, at);
      });
  net_.optical().on_port_up([this, alive](NodeId n, PortId p, SimTime at) {
    if (*alive) on_up(n, p, at);
  });

  if (scrub_ > SimTime::zero()) {
    // Legacy drop-delta scrub: catches failures injected before start()
    // (whose LOS alarm fired unheard) once they cost traffic.
    scrub_handle_ = net_.sim().schedule_every(
        net_.sim().now() + scrub_, scrub_,
        [this]() {
          const auto drops = net_.optical().drops_failed();
          if (drops > seen_drops_) {
            seen_drops_ = drops;
            recover_now();
          }
        },
        "recovery.scrub");
  }
}

void FailureRecovery::stop() {
  if (!started_) return;
  started_ = false;
  if (alive_) *alive_ = false;
  scrub_handle_.cancel();
  retry_handle_.cancel();
}

void FailureRecovery::on_down(NodeId node, PortId port, SimTime at) {
  ++port_downs_;
  net_.sim().metrics().counter("recovery.port_downs").inc();
  detect_latency_us_.add((net_.sim().now() - at).us());
  open_incidents_.push_back(Incident{node, port, at});
  if (failed_count_++ == 0) {
    degraded_since_ = at;
    if (degraded_hook_) degraded_hook_(true);
  }
  recover_now();
}

void FailureRecovery::on_up(NodeId node, PortId port, SimTime at) {
  ++port_ups_;
  net_.sim().metrics().counter("recovery.port_ups").inc();
  // Incidents on this port still open (recovery never landed — e.g. the
  // control plane was down the whole outage): the physical repair itself
  // restores service, so it closes them.
  for (auto it = open_incidents_.begin(); it != open_incidents_.end();) {
    if (it->node == node && it->port == port) {
      mttr_us_.add((at - it->began).us());
      it = open_incidents_.erase(it);
    } else {
      ++it;
    }
  }
  if (failed_count_ > 0 && --failed_count_ == 0) {
    degraded_ns_ += at - degraded_since_;
    if (degraded_hook_) degraded_hook_(false);
  }
  // Auto re-admit the repaired port's circuits from the baseline.
  recover_now();
}

optics::Schedule FailureRecovery::healthy_schedule() const {
  const optics::Schedule& base =
      baseline_.num_nodes() > 0 ? baseline_ : net_.schedule();
  optics::Schedule healthy(base.num_nodes(), base.uplinks(), base.period(),
                           base.slice_duration());
  for (const auto& c : base.circuits()) {
    if (net_.optical().port_failed(c.a, c.a_port) ||
        net_.optical().port_failed(c.b, c.b_port)) {
      continue;  // dark fiber: drop the circuit from the plan
    }
    healthy.add_circuit(c);
  }
  return healthy;
}

bool FailureRecovery::recover_now() {
  retry_handle_.cancel();
  auto healthy = healthy_schedule();
  auto paths = reroute_(healthy);
  if (paths.empty()) {
    last_error_ = "reroute produced no paths";
    schedule_retry();
    return false;
  }
  // Validate before touching the table so a rejected deploy (control-plane
  // outage, infeasible path) leaves the previous overlay serving traffic.
  if (!ctl_.validate_routing(paths, &healthy)) {
    last_error_ = ctl_.last_error();
    schedule_retry();
    return false;
  }
  // Make-before-break through ONE transaction: clearing the superseded
  // overlay, installing the next one, and swapping the fabric are a single
  // epoch — all-or-nothing on every ToR, so no packet ever routes in the
  // gap and a lossy southbound can't leave the fabric half-recovered. On
  // an ideal channel the whole transaction (and this callback) completes
  // synchronously inside this call; under southbound chaos it resolves
  // later and a failed commit re-arms the retry backoff.
  const bool issued = ctl_.deploy_update(
      healthy, paths, core::LookupMode::PerHop, core::MultipathMode::None,
      overlay_priority_, overlay_priority_, SimTime::zero(),
      [this](bool committed) {
        if (committed) {
          backoff_ = initial_backoff_;
          ++recoveries_;
          net_.sim().metrics().counter("recovery.recoveries").inc();
          close_incidents(net_.sim().now());
        } else {
          last_error_ = ctl_.last_error();
          schedule_retry();
        }
      });
  if (!issued) {
    last_error_ = ctl_.last_error();
    schedule_retry();
    return false;
  }
  return true;
}

void FailureRecovery::schedule_retry() {
  if (!started_) return;  // manual recover_now() without start(): no timers
  ++retries_;
  net_.sim().metrics().counter("recovery.retries").inc();
  if (auto* tr = net_.sim().recorder()) {
    tr->control_retry(net_.sim().now(), retries_);
  }
  retry_handle_ = net_.sim().schedule_in(
      backoff_, [this]() { recover_now(); }, "recovery.retry");
  backoff_ = std::min(backoff_ + backoff_, backoff_cap_);
}

void FailureRecovery::close_incidents(SimTime end) {
  for (const auto& inc : open_incidents_) {
    mttr_us_.add((end - inc.began).us());
  }
  open_incidents_.clear();
}

SimTime FailureRecovery::degraded_time() const {
  SimTime t = degraded_ns_;
  if (failed_count_ > 0) t += net_.sim().now() - degraded_since_;
  return t;
}

double FailureRecovery::availability() const {
  const SimTime horizon = net_.sim().now() - started_at_;
  if (horizon <= SimTime::zero()) return 1.0;
  return 1.0 - static_cast<double>(degraded_time().ns()) /
                   static_cast<double>(horizon.ns());
}

}  // namespace oo::services
