// Failure recovery: watches the optical fabric for dark-transceiver drops
// and steers the topology around failed ports (the ShareBackup-style
// masking the paper's related work motivates, expressed through the
// ordinary deploy_topo/deploy_routing workflow). The detector polls the
// fabric's failure counters (a stand-in for LOS alarms); recovery
// recompiles the current schedule minus circuits touching failed ports
// and overlays fresh routing at higher priority.
#pragma once

#include <functional>
#include <vector>

#include "core/controller.h"
#include "core/network.h"

namespace oo::services {

class FailureRecovery {
 public:
  // `reroute` maps a repaired schedule to the replacement paths (the
  // architecture's routing scheme, e.g. routing::direct_to).
  using RerouteFn =
      std::function<std::vector<core::Path>(const optics::Schedule&)>;

  FailureRecovery(core::Network& net, core::Controller& ctl,
                  RerouteFn reroute, SimTime poll = SimTime::millis(1))
      : net_(net), ctl_(ctl), reroute_(std::move(reroute)), poll_(poll) {}

  // Begin polling for loss-of-signal drops.
  void start();

  // Immediately reroute around every currently failed port (also called by
  // the poller when new failure drops appear).
  bool recover_now();

  int recoveries() const { return recoveries_; }

 private:
  // The live schedule minus circuits that touch a failed port.
  optics::Schedule healthy_schedule() const;

  core::Network& net_;
  core::Controller& ctl_;
  RerouteFn reroute_;
  SimTime poll_;
  std::int64_t seen_drops_ = 0;
  int recoveries_ = 0;
  int priority_ = 0;
  bool started_ = false;
};

}  // namespace oo::services
