// Failure recovery: event-driven detection and masking of optical faults
// (the ShareBackup-style resilience the paper's related work motivates,
// expressed through the ordinary deploy_topo/deploy_routing workflow).
//
// Detection subscribes to the fabric's loss-of-signal alarms
// (OpticalFabric::on_port_down / on_port_up), so an idle dark port is
// noticed after the transceiver's LOS debounce — no traffic-induced drops
// required, unlike the seed's drop-count poller. Recovery recompiles the
// intended ("baseline") schedule minus circuits touching failed ports and
// atomically swaps the routing overlay (clear superseded entries + install
// the fresh ones inside one simulator event). Repairs are auto re-admitted
// the same way. Failed deploys — e.g. an injected control-plane outage —
// are retried with capped exponential backoff. A degraded-mode hook tells
// interested services (hybrid elephant steering) when optical capacity is
// reduced so traffic can lean on the electrical fabric.
//
// Robustness telemetry: detection latency and MTTR samplers, cumulative
// degraded time and availability fraction, per-transition counters.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/controller.h"
#include "core/network.h"

namespace oo::services {

class FailureRecovery {
 public:
  // `reroute` maps a repaired schedule to the replacement paths (the
  // architecture's routing scheme, e.g. routing::direct_to).
  using RerouteFn =
      std::function<std::vector<core::Path>(const optics::Schedule&)>;
  // Degraded-mode hook: invoked with true when the first port fails, false
  // when the last failed port is repaired.
  using DegradedFn = std::function<void(bool degraded)>;

  // `scrub` is an optional periodic consistency pass (drop-counter check,
  // the seed's legacy detector) kept as a safety net behind the LOS
  // subscription; SimTime::zero() disables it.
  FailureRecovery(core::Network& net, core::Controller& ctl,
                  RerouteFn reroute, SimTime scrub = SimTime::millis(1))
      : net_(net), ctl_(ctl), reroute_(std::move(reroute)), scrub_(scrub) {}

  // Subscribe to the fabric's LOS alarms (and start the optional scrub).
  // Captures the current schedule as the baseline that repairs re-admit to.
  void start();
  // Cancel the scrub timer, pending backoff retries, and the subscription.
  void stop();
  bool running() const { return started_; }

  // The full intended schedule that recovery prunes from / re-admits to.
  // start() captures the live schedule; TA architectures that redeploy
  // topologies should refresh it here.
  void set_baseline(optics::Schedule s) { baseline_ = std::move(s); }

  // Routing overlays install at this fixed priority; each recovery clears
  // the previous overlay before installing the next, so priorities no
  // longer stack unboundedly. Must be above the architecture's base routes.
  void set_overlay_priority(int p) { overlay_priority_ = p; }

  // Exponential-backoff retry policy for failed deploys.
  void set_backoff(SimTime initial, SimTime cap) {
    initial_backoff_ = initial;
    backoff_cap_ = cap;
    backoff_ = initial;
  }

  void set_degraded_hook(DegradedFn fn) { degraded_hook_ = std::move(fn); }

  // Immediately reroute around every currently failed port (also invoked by
  // LOS alarms and repairs). Returns false — and arms a backoff retry — if
  // rerouting or either deploy fails.
  bool recover_now();

  // ---- robustness telemetry ----
  int recoveries() const { return recoveries_; }
  int retries() const { return retries_; }
  std::int64_t port_downs() const { return port_downs_; }
  std::int64_t port_ups() const { return port_ups_; }
  // Failure-to-LOS-alarm latency per detected failure, microseconds.
  const PercentileSampler& detect_latency_us() const {
    return detect_latency_us_;
  }
  // Failure-to-service-restored (successful redeploy or physical repair)
  // per incident, microseconds.
  const PercentileSampler& mttr_us() const { return mttr_us_; }
  // Cumulative time with >= 1 failed port (open interval included).
  SimTime degraded_time() const;
  // Fraction of time since start() with full optical capacity.
  double availability() const;
  bool degraded() const { return failed_count_ > 0; }
  const std::string& last_error() const { return last_error_; }

 private:
  struct Incident {
    NodeId node;
    PortId port;
    SimTime began;
  };

  // The baseline schedule minus circuits that touch a failed port.
  optics::Schedule healthy_schedule() const;
  void on_down(NodeId node, PortId port, SimTime at);
  void on_up(NodeId node, PortId port, SimTime at);
  void schedule_retry();
  void close_incidents(SimTime end);

  core::Network& net_;
  core::Controller& ctl_;
  RerouteFn reroute_;
  SimTime scrub_;
  optics::Schedule baseline_;
  std::shared_ptr<bool> alive_;  // gates the fabric LOS subscription
  sim::EventHandle scrub_handle_;
  sim::EventHandle retry_handle_;
  std::vector<Incident> open_incidents_;
  std::int64_t seen_drops_ = 0;
  int recoveries_ = 0;
  int retries_ = 0;
  std::int64_t port_downs_ = 0;
  std::int64_t port_ups_ = 0;
  int overlay_priority_ = 1;
  int failed_count_ = 0;
  SimTime degraded_since_ = SimTime::zero();
  SimTime degraded_ns_ = SimTime::zero();
  SimTime started_at_ = SimTime::zero();
  SimTime initial_backoff_ = SimTime::micros(100);
  SimTime backoff_cap_ = SimTime::millis(10);
  SimTime backoff_ = SimTime::micros(100);
  PercentileSampler detect_latency_us_;
  PercentileSampler mttr_us_;
  DegradedFn degraded_hook_;
  std::string last_error_;
  bool started_ = false;
};

}  // namespace oo::services
