#include "services/fault_plan.h"

#include <algorithm>
#include <stdexcept>

#include "core/quorum.h"

namespace oo::services {

namespace {

SimTime us_to_time(double us) {
  return SimTime::nanos(static_cast<std::int64_t>(us * 1e3));
}

}  // namespace

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::PortFail:
      return "port_fail";
    case FaultKind::PortRepair:
      return "port_repair";
    case FaultKind::LinkFlap:
      return "link_flap";
    case FaultKind::Ber:
      return "ber";
    case FaultKind::ReconfigStall:
      return "reconfig_stall";
    case FaultKind::ControlDelay:
      return "control_delay";
    case FaultKind::ControlFail:
      return "control_fail";
    case FaultKind::ClockDriftRamp:
      return "clock_drift";
    case FaultKind::ClockStep:
      return "clock_step";
    case FaultKind::SyncBeaconLoss:
      return "beacon_loss";
    case FaultKind::SyncOutage:
      return "sync_outage";
    case FaultKind::SbMsgLoss:
      return "sb_msg_loss";
    case FaultKind::SbMsgDelay:
      return "sb_msg_delay";
    case FaultKind::SbMsgDup:
      return "sb_msg_dup";
    case FaultKind::TorInstallFail:
      return "tor_install_fail";
    case FaultKind::ControllerCrash:
      return "controller_crash";
    case FaultKind::LeaderKill:
      return "leader_kill";
    case FaultKind::ReplicaPartition:
      return "replica_partition";
    case FaultKind::LogDivergence:
      return "log_divergence";
    case FaultKind::BerRamp:
      return "ber_ramp";
    case FaultKind::GrayPortPair:
      return "gray_port_pair";
    case FaultKind::SilentInstallFail:
      return "silent_install_fail";
    case FaultKind::TelemetrySkew:
      return "telemetry_skew";
  }
  return "?";
}

FaultKind fault_kind_from_name(const std::string& name) {
  for (int k = 0; k < kNumFaultKinds; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    if (name == fault_kind_name(kind)) return kind;
  }
  std::string valid;
  for (int k = 0; k < kNumFaultKinds; ++k) {
    if (k > 0) valid += ", ";
    valid += fault_kind_name(static_cast<FaultKind>(k));
  }
  throw std::runtime_error("unknown fault kind: \"" + name +
                           "\" (valid kinds: " + valid + ")");
}

// Every enumerator must have a name and a round-trip; a new kind that grows
// the enum without bumping the count trips this at compile time.
static_assert(kNumFaultKinds ==
                  static_cast<int>(FaultKind::TelemetrySkew) + 1,
              "kNumFaultKinds out of sync with the FaultKind enum");

namespace {

[[noreturn]] void validation_error(std::size_t index, const std::string& what) {
  throw std::runtime_error("fault event " + std::to_string(index) + " (" +
                           what + ")");
}

void check_probability(std::size_t index, const char* kind, const char* field,
                       double v) {
  if (v < 0.0 || v > 1.0) {
    validation_error(index, std::string(kind) + ": " + field + " must be in "
                            "[0, 1], got " + std::to_string(v));
  }
}

}  // namespace

void validate_fault_event(const FaultEvent& ev, std::size_t index) {
  switch (ev.kind) {
    case FaultKind::Ber:
      check_probability(index, "ber", "ber", ev.ber);
      break;
    case FaultKind::SbMsgLoss:
      check_probability(index, "sb_msg_loss", "prob", ev.ber);
      break;
    case FaultKind::SbMsgDup:
      check_probability(index, "sb_msg_dup", "prob", ev.ber);
      break;
    case FaultKind::BerRamp:
      check_probability(index, "ber_ramp", "target ber", ev.ber);
      check_probability(index, "ber_ramp", "start ber (jitter)", ev.jitter);
      if (ev.jitter > ev.ber) {
        validation_error(index,
                         "ber_ramp: non-monotonic ramp — start ber " +
                             std::to_string(ev.jitter) + " exceeds target " +
                             std::to_string(ev.ber));
      }
      if (ev.duration <= SimTime::zero()) {
        validation_error(index, "ber_ramp: duration_us must be > 0 (the ramp "
                                "needs time to climb)");
      }
      if (ev.cycles < 1) {
        validation_error(index, "ber_ramp: cycles (ramp steps) must be >= 1, "
                                "got " + std::to_string(ev.cycles));
      }
      break;
    case FaultKind::GrayPortPair:
      check_probability(index, "gray_port_pair", "prob", ev.ber);
      if (ev.duration <= SimTime::zero()) {
        validation_error(index, "gray_port_pair: duration_us must be > 0 "
                                "(zero-duration gray windows inject nothing)");
      }
      break;
    case FaultKind::TelemetrySkew:
      if (ev.ppm == 0.0) {
        validation_error(index, "telemetry_skew: ppm must be nonzero (0 is "
                                "an honest reporter)");
      }
      if (ev.ppm <= -1e6) {
        validation_error(index, "telemetry_skew: ppm must be > -1e6 so the "
                                "reported factor 1 + ppm/1e6 stays positive");
      }
      break;
    default:
      break;
  }
}

void validate_fault_events(const std::vector<FaultEvent>& events) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    validate_fault_event(events[i], i);
  }
}

FaultPlan& FaultPlan::add(FaultEvent ev) {
  // Eager validation: a malformed parameter fails at plan-build time with
  // the event's index, never as silent mid-run misbehavior.
  validate_fault_event(ev, events_.size());
  events_.push_back(ev);
  return *this;
}

FaultPlan& FaultPlan::fail_port(SimTime at, NodeId node, PortId port) {
  return add({.at = at, .kind = FaultKind::PortFail, .node = node,
              .port = port});
}

FaultPlan& FaultPlan::repair_port(SimTime at, NodeId node, PortId port) {
  return add({.at = at, .kind = FaultKind::PortRepair, .node = node,
              .port = port});
}

FaultPlan& FaultPlan::flap_port(SimTime at, NodeId node, PortId port,
                                SimTime down, SimTime period, int cycles,
                                double jitter) {
  return add({.at = at,
              .kind = FaultKind::LinkFlap,
              .node = node,
              .port = port,
              .duration = down,
              .period = period,
              .cycles = cycles,
              .jitter = jitter});
}

FaultPlan& FaultPlan::set_ber(SimTime at, NodeId node, PortId port,
                              double ber) {
  return add(
      {.at = at, .kind = FaultKind::Ber, .node = node, .port = port,
       .ber = ber});
}

FaultPlan& FaultPlan::stall_reconfig(SimTime at, SimTime extra) {
  return add({.at = at, .kind = FaultKind::ReconfigStall, .extra = extra});
}

FaultPlan& FaultPlan::delay_control(SimTime at, SimTime delay,
                                    SimTime duration) {
  return add({.at = at,
              .kind = FaultKind::ControlDelay,
              .duration = duration,
              .extra = delay});
}

FaultPlan& FaultPlan::fail_control(SimTime at, SimTime duration) {
  return add({.at = at, .kind = FaultKind::ControlFail,
              .duration = duration});
}

FaultPlan& FaultPlan::drift_clock(SimTime at, NodeId node, double ppm,
                                  SimTime duration) {
  return add({.at = at,
              .kind = FaultKind::ClockDriftRamp,
              .node = node,
              .duration = duration,
              .ppm = ppm});
}

FaultPlan& FaultPlan::step_clock(SimTime at, NodeId node, SimTime delta) {
  return add({.at = at, .kind = FaultKind::ClockStep, .node = node,
              .extra = delta});
}

FaultPlan& FaultPlan::lose_beacons(SimTime at, NodeId node,
                                   SimTime duration) {
  return add({.at = at, .kind = FaultKind::SyncBeaconLoss, .node = node,
              .duration = duration});
}

FaultPlan& FaultPlan::sync_outage(SimTime at, SimTime duration) {
  return add({.at = at, .kind = FaultKind::SyncOutage,
              .duration = duration});
}

FaultPlan& FaultPlan::lose_sb_msgs(SimTime at, NodeId node, double prob,
                                   SimTime duration) {
  return add({.at = at, .kind = FaultKind::SbMsgLoss, .node = node,
              .duration = duration, .ber = prob});
}

FaultPlan& FaultPlan::delay_sb_msgs(SimTime at, NodeId node, SimTime extra,
                                    SimTime duration) {
  return add({.at = at, .kind = FaultKind::SbMsgDelay, .node = node,
              .duration = duration, .extra = extra});
}

FaultPlan& FaultPlan::dup_sb_msgs(SimTime at, NodeId node, double prob,
                                  SimTime duration) {
  return add({.at = at, .kind = FaultKind::SbMsgDup, .node = node,
              .duration = duration, .ber = prob});
}

FaultPlan& FaultPlan::fail_tor_install(SimTime at, NodeId node,
                                       SimTime duration) {
  return add({.at = at, .kind = FaultKind::TorInstallFail, .node = node,
              .duration = duration});
}

FaultPlan& FaultPlan::crash_controller(SimTime at, SimTime duration) {
  return add({.at = at, .kind = FaultKind::ControllerCrash,
              .duration = duration});
}

FaultPlan& FaultPlan::kill_leader(SimTime at, SimTime restart_after) {
  return add({.at = at, .kind = FaultKind::LeaderKill,
              .duration = restart_after});
}

FaultPlan& FaultPlan::partition_replica(SimTime at, int replica,
                                        SimTime duration) {
  // The replica index rides in the node field (quorum events are not
  // ToR-scoped).
  return add({.at = at, .kind = FaultKind::ReplicaPartition,
              .node = static_cast<NodeId>(replica), .duration = duration});
}

FaultPlan& FaultPlan::diverge_log(SimTime at, int replica) {
  return add({.at = at, .kind = FaultKind::LogDivergence,
              .node = static_cast<NodeId>(replica)});
}

FaultPlan& FaultPlan::ramp_ber(SimTime at, NodeId node, PortId port,
                               double start_ber, double target_ber,
                               SimTime duration, int steps) {
  // The ramp's starting BER rides in the jitter field (both are unitless
  // fractions; BerRamp has no flap jitter) and the step count in cycles.
  return add({.at = at,
              .kind = FaultKind::BerRamp,
              .node = node,
              .port = port,
              .duration = duration,
              .cycles = steps,
              .jitter = start_ber,
              .ber = target_ber});
}

FaultPlan& FaultPlan::gray_pair(SimTime at, NodeId node, PortId port,
                                NodeId peer, double prob, SimTime duration) {
  return add({.at = at,
              .kind = FaultKind::GrayPortPair,
              .node = node,
              .port = port,
              .peer = peer,
              .duration = duration,
              .ber = prob});
}

FaultPlan& FaultPlan::silent_install(SimTime at, NodeId node,
                                     SimTime duration) {
  return add({.at = at, .kind = FaultKind::SilentInstallFail, .node = node,
              .duration = duration});
}

FaultPlan& FaultPlan::skew_telemetry(SimTime at, NodeId node, double ppm,
                                     SimTime duration) {
  return add({.at = at, .kind = FaultKind::TelemetrySkew, .node = node,
              .duration = duration, .ppm = ppm});
}

FaultPlan& FaultPlan::load_json(const std::string& text) {
  return load_events(json::parse(text));
}

std::vector<FaultEvent> parse_fault_events(const json::Value& plan) {
  // The full key vocabulary across every fault kind. Aliases: "replica" is
  // the quorum-fault spelling of "node", "down_us" the flap spelling of
  // "duration_us", "prob" the sb-message spelling of "ber", "delay_us" the
  // control-delay spelling of "extra_us".
  static constexpr const char* kKeys[] = {
      "kind",   "at_us",  "node",     "replica", "port",
      "duration_us", "down_us", "period_us", "cycles", "jitter",
      "ber",    "prob",   "ppm",      "extra_us", "delay_us", "peer"};
  std::vector<FaultEvent> out;
  for (const auto& e : plan.at("events").as_array()) {
    for (const auto& [key, value] : e.as_object()) {
      const bool known =
          std::any_of(std::begin(kKeys), std::end(kKeys),
                      [&key](const char* k) { return key == k; });
      if (!known) {
        std::string valid;
        for (const char* k : kKeys) {
          if (!valid.empty()) valid += ", ";
          valid += k;
        }
        throw std::runtime_error("fault event " +
                                 std::to_string(out.size()) +
                                 ": unknown key \"" + key +
                                 "\" (valid keys: " + valid + ")");
      }
    }
    FaultEvent ev;
    ev.kind = fault_kind_from_name(e.at("kind").as_string());
    ev.at = us_to_time(e.get_double("at_us", 0.0));
    ev.node = static_cast<NodeId>(
        e.get_int("node", e.get_int("replica", kInvalidNode)));
    ev.port = static_cast<PortId>(e.get_int("port", kInvalidPort));
    ev.peer = static_cast<NodeId>(e.get_int("peer", kInvalidNode));
    ev.duration = us_to_time(e.get_double(
        "duration_us", e.get_double("down_us", 0.0)));
    ev.period = us_to_time(e.get_double("period_us", 0.0));
    ev.cycles = static_cast<int>(e.get_int("cycles", 1));
    ev.jitter = e.get_double("jitter", 0.0);
    ev.ber = e.get_double("ber", e.get_double("prob", 0.0));
    ev.ppm = e.get_double("ppm", 0.0);
    ev.extra = us_to_time(e.get_double(
        "extra_us", e.get_double("delay_us", 0.0)));
    validate_fault_event(ev, out.size());
    out.push_back(ev);
  }
  return out;
}

json::Value fault_events_to_json(const std::vector<FaultEvent>& events) {
  json::Array arr;
  for (const FaultEvent& ev : events) {
    json::Object o;
    o["kind"] = std::string(fault_kind_name(ev.kind));
    o["at_us"] = static_cast<double>(ev.at.ns()) / 1e3;
    // Defaulted fields are omitted: parse_fault_events fills the same
    // defaults back in, so the round-trip stays exact and plans stay small.
    if (ev.node != kInvalidNode)
      o["node"] = static_cast<std::int64_t>(ev.node);
    if (ev.port != kInvalidPort)
      o["port"] = static_cast<std::int64_t>(ev.port);
    if (ev.peer != kInvalidNode)
      o["peer"] = static_cast<std::int64_t>(ev.peer);
    if (ev.duration != SimTime::zero())
      o["duration_us"] = static_cast<double>(ev.duration.ns()) / 1e3;
    if (ev.period != SimTime::zero())
      o["period_us"] = static_cast<double>(ev.period.ns()) / 1e3;
    if (ev.cycles != 1) o["cycles"] = static_cast<std::int64_t>(ev.cycles);
    if (ev.jitter != 0) o["jitter"] = ev.jitter;
    if (ev.ber != 0) o["ber"] = ev.ber;
    if (ev.ppm != 0) o["ppm"] = ev.ppm;
    if (ev.extra != SimTime::zero())
      o["extra_us"] = static_cast<double>(ev.extra.ns()) / 1e3;
    arr.emplace_back(std::move(o));
  }
  json::Object plan;
  plan["events"] = std::move(arr);
  return json::Value(std::move(plan));
}

FaultPlan& FaultPlan::load_events(const json::Value& plan) {
  for (FaultEvent& ev : parse_fault_events(plan)) add(ev);
  return *this;
}

void FaultPlan::count(FaultKind k, NodeId node, PortId port) {
  ++injected_[static_cast<std::size_t>(k)];
  net_.sim()
      .metrics()
      .counter("faults.injected", {{"kind", fault_kind_name(k)}})
      .inc();
  if (auto* tr = net_.sim().recorder()) {
    // A fired PortRepair undoes a fault; everything else injects one.
    tr->fault(net_.sim().now(), k != FaultKind::PortRepair, node, port,
              static_cast<std::int64_t>(k));
  }
}

void FaultPlan::trace_repair(FaultKind k, NodeId node, PortId port) {
  if (auto* tr = net_.sim().recorder()) {
    tr->fault(net_.sim().now(), false, node, port,
              static_cast<std::int64_t>(k));
  }
}

void FaultPlan::arm() {
  if (armed_) return;
  armed_ = true;
  auto& sim = net_.sim();
  for (const auto& ev : events_) {
    const SimTime at = std::max(ev.at, sim.now());
    handles_.push_back(
        sim.schedule_at(at, [this, ev]() { fire(ev); }, "fault"));
  }
}

void FaultPlan::cancel() {
  for (auto& h : handles_) h.cancel();
  handles_.clear();
}

void FaultPlan::fire(const FaultEvent& ev) {
  auto& sim = net_.sim();
  switch (ev.kind) {
    case FaultKind::PortFail:
      count(ev.kind, ev.node, ev.port);
      net_.optical().set_port_failed(ev.node, ev.port, true);
      break;
    case FaultKind::PortRepair:
      count(ev.kind, ev.node, ev.port);
      net_.optical().set_port_failed(ev.node, ev.port, false);
      break;
    case FaultKind::LinkFlap:
      flap_cycle(ev, ev.cycles);
      break;
    case FaultKind::Ber:
      count(ev.kind, ev.node, ev.port);
      net_.optical().set_port_ber(ev.node, ev.port, ev.ber);
      break;
    case FaultKind::ReconfigStall:
      // Only counts when a retargeting was actually in flight to stall.
      if (net_.optical().stall_reconfig(ev.extra)) count(ev.kind);
      break;
    case FaultKind::ControlDelay:
      if (ctl_ == nullptr) break;
      count(ev.kind);
      ctl_->set_deploy_delay(ev.extra);
      if (ev.duration > SimTime::zero()) {
        handles_.push_back(sim.schedule_in(
            ev.duration,
            [this]() {
              ctl_->set_deploy_delay(SimTime::zero());
              trace_repair(FaultKind::ControlDelay);
            },
            "fault"));
      }
      break;
    case FaultKind::ControlFail:
      if (ctl_ == nullptr) break;
      count(ev.kind);
      ctl_->set_deploy_fail(true);
      if (ev.duration > SimTime::zero()) {
        handles_.push_back(sim.schedule_in(
            ev.duration,
            [this]() {
              ctl_->set_deploy_fail(false);
              trace_repair(FaultKind::ControlFail);
            },
            "fault"));
      }
      break;
    case FaultKind::ClockDriftRamp:
      count(ev.kind, ev.node);
      net_.clock().set_drift_ppm(ev.node, ev.ppm, sim.now());
      if (ev.duration > SimTime::zero()) {
        handles_.push_back(sim.schedule_in(
            ev.duration,
            [this, node = ev.node]() {
              // Drift stops but the accumulated offset error stays — only a
              // resync beacon re-disciplines the clock.
              net_.clock().set_drift_ppm(node, 0.0, net_.sim().now());
              trace_repair(FaultKind::ClockDriftRamp, node);
            },
            "fault"));
      }
      break;
    case FaultKind::ClockStep:
      count(ev.kind, ev.node);
      net_.clock().step(ev.node, ev.extra, sim.now());
      break;
    case FaultKind::SyncBeaconLoss:
      count(ev.kind, ev.node);
      net_.clock().block_beacons(ev.node, ev.duration > SimTime::zero()
                                              ? sim.now() + ev.duration
                                              : SimTime::max());
      break;
    case FaultKind::SyncOutage:
      count(ev.kind);
      net_.clock().set_outage(ev.duration > SimTime::zero()
                                  ? sim.now() + ev.duration
                                  : SimTime::max());
      break;
    case FaultKind::SbMsgLoss:
      if (ctl_ == nullptr) break;
      count(ev.kind, ev.node);
      ctl_->southbound().set_node_loss(ev.node, ev.ber);
      if (ev.duration > SimTime::zero()) {
        handles_.push_back(sim.schedule_in(
            ev.duration,
            [this, node = ev.node]() {
              ctl_->southbound().set_node_loss(node, 0.0);
              trace_repair(FaultKind::SbMsgLoss, node);
            },
            "fault"));
      }
      break;
    case FaultKind::SbMsgDelay:
      if (ctl_ == nullptr) break;
      count(ev.kind, ev.node);
      ctl_->southbound().set_node_delay(ev.node, ev.extra);
      if (ev.duration > SimTime::zero()) {
        handles_.push_back(sim.schedule_in(
            ev.duration,
            [this, node = ev.node]() {
              ctl_->southbound().set_node_delay(node, SimTime::zero());
              trace_repair(FaultKind::SbMsgDelay, node);
            },
            "fault"));
      }
      break;
    case FaultKind::SbMsgDup:
      if (ctl_ == nullptr) break;
      count(ev.kind, ev.node);
      ctl_->southbound().set_node_dup(ev.node, ev.ber);
      if (ev.duration > SimTime::zero()) {
        handles_.push_back(sim.schedule_in(
            ev.duration,
            [this, node = ev.node]() {
              ctl_->southbound().set_node_dup(node, 0.0);
              trace_repair(FaultKind::SbMsgDup, node);
            },
            "fault"));
      }
      break;
    case FaultKind::TorInstallFail:
      if (ctl_ == nullptr || ev.node == kInvalidNode) break;
      count(ev.kind, ev.node);
      ctl_->set_install_fail(ev.node, true);
      if (ev.duration > SimTime::zero()) {
        handles_.push_back(sim.schedule_in(
            ev.duration,
            [this, node = ev.node]() {
              ctl_->set_install_fail(node, false);
              trace_repair(FaultKind::TorInstallFail, node);
            },
            "fault"));
      }
      break;
    case FaultKind::ControllerCrash:
      if (ctl_ == nullptr) break;
      count(ev.kind);
      ctl_->crash();
      if (ev.duration > SimTime::zero()) {
        handles_.push_back(sim.schedule_in(
            ev.duration,
            [this]() {
              ctl_->restart();
              trace_repair(FaultKind::ControllerCrash);
            },
            "fault"));
      }
      break;
    case FaultKind::LeaderKill: {
      if (ctl_ == nullptr || ctl_->quorum() == nullptr) break;
      const int victim = ctl_->quorum()->kill_leader();
      if (victim < 0) break;  // no live leader at fire time
      count(ev.kind, victim);
      if (ev.duration > SimTime::zero()) {
        handles_.push_back(sim.schedule_in(
            ev.duration,
            [this, victim]() {
              ctl_->quorum()->revive_replica(victim);
              trace_repair(FaultKind::LeaderKill, victim);
            },
            "fault"));
      }
      break;
    }
    case FaultKind::ReplicaPartition:
      if (ctl_ == nullptr || ctl_->quorum() == nullptr ||
          ev.node == kInvalidNode) {
        break;
      }
      count(ev.kind, ev.node);
      ctl_->quorum()->set_partitioned(ev.node, true);
      if (ev.duration > SimTime::zero()) {
        handles_.push_back(sim.schedule_in(
            ev.duration,
            [this, replica = ev.node]() {
              ctl_->quorum()->set_partitioned(replica, false);
              trace_repair(FaultKind::ReplicaPartition, replica);
            },
            "fault"));
      }
      break;
    case FaultKind::LogDivergence:
      if (ctl_ == nullptr || ctl_->quorum() == nullptr ||
          ev.node == kInvalidNode) {
        break;
      }
      count(ev.kind, ev.node);
      ctl_->quorum()->diverge_log(ev.node);
      break;
    case FaultKind::BerRamp: {
      // Deterministic aging curve: start at jitter (= start BER), climb to
      // ber in `cycles` equal steps over `duration`. No randomness — the
      // curve is a pure function of the event, so replays are exact. The
      // ramp is sticky: aging does not heal itself (only a later Ber event
      // clears it).
      count(ev.kind, ev.node, ev.port);
      net_.optical().set_port_ber(ev.node, ev.port, ev.jitter);
      const int steps = ev.cycles;
      for (int i = 1; i <= steps; ++i) {
        const SimTime when = SimTime::nanos(ev.duration.ns() * i / steps);
        const double b =
            ev.jitter + (ev.ber - ev.jitter) *
                            (static_cast<double>(i) / static_cast<double>(steps));
        handles_.push_back(sim.schedule_in(
            when,
            [this, node = ev.node, port = ev.port, b]() {
              net_.optical().set_port_ber(node, port, b);
            },
            "fault"));
      }
      break;
    }
    case FaultKind::GrayPortPair:
      count(ev.kind, ev.node, ev.port);
      net_.optical().set_gray_pair(ev.node, ev.port, ev.peer, ev.ber);
      // duration > 0 is enforced at plan load; the window always closes.
      handles_.push_back(sim.schedule_in(
          ev.duration,
          [this, node = ev.node, port = ev.port, peer = ev.peer]() {
            net_.optical().set_gray_pair(node, port, peer, 0.0);
            trace_repair(FaultKind::GrayPortPair, node, port);
          },
          "fault"));
      break;
    case FaultKind::SilentInstallFail:
      if (ctl_ == nullptr || ev.node == kInvalidNode) break;
      count(ev.kind, ev.node);
      ctl_->set_silent_install_fail(ev.node, true);
      if (ev.duration > SimTime::zero()) {
        handles_.push_back(sim.schedule_in(
            ev.duration,
            [this, node = ev.node]() {
              ctl_->set_silent_install_fail(node, false);
              trace_repair(FaultKind::SilentInstallFail, node);
            },
            "fault"));
      }
      break;
    case FaultKind::TelemetrySkew:
      if (ev.node == kInvalidNode) break;
      count(ev.kind, ev.node);
      net_.set_telemetry_skew(ev.node, ev.ppm);
      if (ev.duration > SimTime::zero()) {
        handles_.push_back(sim.schedule_in(
            ev.duration,
            [this, node = ev.node]() {
              net_.set_telemetry_skew(node, 0.0);
              trace_repair(FaultKind::TelemetrySkew, node);
            },
            "fault"));
      }
      break;
  }
}

void FaultPlan::flap_cycle(const FaultEvent& ev, int remaining) {
  if (remaining <= 0) return;
  count(FaultKind::LinkFlap, ev.node, ev.port);
  auto& sim = net_.sim();
  net_.optical().set_port_failed(ev.node, ev.port, true);
  handles_.push_back(sim.schedule_in(
      ev.duration,
      [this, ev]() {
        net_.optical().set_port_failed(ev.node, ev.port, false);
        trace_repair(FaultKind::LinkFlap, ev.node, ev.port);
      },
      "fault"));
  if (remaining <= 1) return;
  SimTime next = ev.period;
  if (ev.jitter > 0.0) {
    // Seeded jitter from the plan's own stream: identical seeds replay the
    // exact same flap timeline.
    const double f = 1.0 + ev.jitter * (2.0 * rng_.uniform01() - 1.0);
    next = SimTime::nanos(
        static_cast<std::int64_t>(static_cast<double>(next.ns()) * f));
  }
  if (next <= ev.duration) next = ev.duration + SimTime::nanos(1);
  handles_.push_back(sim.schedule_in(
      next, [this, ev, remaining]() { flap_cycle(ev, remaining - 1); },
      "fault"));
}

std::int64_t FaultPlan::injected_total() const {
  std::int64_t total = 0;
  for (const auto n : injected_) total += n;
  return total;
}

std::string FaultPlan::summary() const {
  std::string out;
  for (int k = 0; k < kNumFaultKinds; ++k) {
    if (injected_[static_cast<std::size_t>(k)] == 0) continue;
    if (!out.empty()) out += ' ';
    out += fault_kind_name(static_cast<FaultKind>(k));
    out += '=';
    out += std::to_string(injected_[static_cast<std::size_t>(k)]);
  }
  return out.empty() ? "none" : out;
}

}  // namespace oo::services
