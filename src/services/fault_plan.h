// Deterministic, seeded fault-injection engine. A FaultPlan is a timed
// script of fault events — port fail/repair, periodic link flaps with a
// configurable duty cycle, BER-driven packet corruption, OCS
// reconfiguration stalls, and control-plane deploy delay/outage — executed
// through the discrete-event simulator, so a plan replayed with the same
// seed reproduces bit-identical drop counters and recovery timestamps.
// Plans are built programmatically or loaded from JSON (common/json), the
// same configuration channel as the static hardware description (§4.1).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "core/controller.h"
#include "core/network.h"

namespace oo::services {

enum class FaultKind {
  PortFail,        // transceiver/fiber goes dark
  PortRepair,      // light restored
  LinkFlap,        // periodic fail/repair cycles (duty cycle = down/period)
  Ber,             // set a port's bit-error rate (0 clears it)
  ReconfigStall,   // extend an in-progress OCS retargeting
  ControlDelay,    // controller deploys take effect late for a window
  ControlFail,     // controller rejects every deploy for a window
  ClockDriftRamp,  // node's clock drifts at `ppm` for `duration` (0 = sticky)
  ClockStep,       // instant clock offset jump by `extra` (PLL slip)
  SyncBeaconLoss,  // node's resync beacons lost for `duration` (0 = sticky)
  SyncOutage,      // fabric-wide beacon outage for `duration`
  SbMsgLoss,       // southbound messages to `node` dropped w.p. `ber`/prob
  SbMsgDelay,      // southbound messages to `node` delayed by `extra`
  SbMsgDup,        // southbound messages to `node` duplicated w.p. `ber`/prob
  TorInstallFail,  // node's install agent NACKs every prepare for a window
  ControllerCrash, // controller dies; restarts (with resync) after `duration`
  LeaderKill,      // kill the quorum leader; revive the replica after `duration`
  ReplicaPartition,// cut replica `node` off the replica mesh for `duration`
  LogDivergence,   // corrupt replica `node`'s log tail (sync self-heals it)
  BerRamp,         // transceiver aging: BER climbs a deterministic curve
  GrayPortPair,    // intermittent loss on one src->dst circuit (dirty mirror)
  SilentInstallFail, // agent acks installs but never applies them
  TelemetrySkew,   // node's self-reported counters are scaled by 1+ppm/1e6
};
inline constexpr int kNumFaultKinds = 23;

const char* fault_kind_name(FaultKind k);
// Inverse of fault_kind_name; throws std::runtime_error on unknown names.
FaultKind fault_kind_from_name(const std::string& name);

struct FaultEvent {
  // Absolute injection time (clamped to now at arm()).
  SimTime at = SimTime::zero();
  FaultKind kind = FaultKind::PortFail;
  NodeId node = kInvalidNode;
  PortId port = kInvalidPort;
  // Peer-node filter for GrayPortPair: loss applies only to circuits whose
  // far end lands on `peer` (kInvalidNode = every peer of (node, port)).
  NodeId peer = kInvalidNode;
  // Flap down-time / control-fault window (0 = sticky).
  SimTime duration = SimTime::zero();
  SimTime period = SimTime::zero();  // flap cycle length
  int cycles = 1;                    // flap repetitions
  double jitter = 0;  // flap period randomization, fraction of period
  double ber = 0;     // bit-error rate for Ber events
  double ppm = 0;     // clock drift rate for ClockDriftRamp events
  // Stall extension / injected deploy delay / clock step size.
  SimTime extra = SimTime::zero();

  bool operator==(const FaultEvent&) const = default;
};

// Eager plan-load validation (the TrafficSpec style: a bad parameter fails
// loudly at construction, never as a silent mid-run misbehavior). Throws
// std::runtime_error naming the event index and offending field. Checks the
// BER-family probability ranges ([0, 1] for Ber/BerRamp/GrayPortPair and the
// sb-message probabilities), BerRamp monotonicity (start_ber <= ber) and
// shape (duration > 0, cycles >= 1), GrayPortPair window (duration > 0), and
// TelemetrySkew factor (ppm != 0, ppm > -1e6 so the factor stays positive).
void validate_fault_event(const FaultEvent& ev, std::size_t index);
void validate_fault_events(const std::vector<FaultEvent>& events);

// Parse the {"events": [...]} body shared by FaultPlan::load_events and the
// chaos tooling (src/chaos). Every event object must carry a known "kind";
// any key outside the documented vocabulary is an error that names the
// offending key and lists the valid ones — a typoed "durtion_us" must fail
// loudly, not silently leave the fault at its default. Throws
// json::ParseError / std::runtime_error on bad input.
std::vector<FaultEvent> parse_fault_events(const json::Value& plan);
// Inverse: serialize events back to the same {"events": [...]} shape.
// parse_fault_events(fault_events_to_json(evs)) == evs whenever every time
// field is a whole microsecond (the chaos fuzzer quantizes accordingly;
// JSON times are microsecond doubles).
json::Value fault_events_to_json(const std::vector<FaultEvent>& events);

class FaultPlan {
 public:
  // `ctl` is required only for control-plane fault classes.
  FaultPlan(core::Network& net, std::uint64_t seed,
            core::Controller* ctl = nullptr)
      : net_(net), ctl_(ctl), rng_(seed) {}

  FaultPlan& add(FaultEvent ev);
  // Convenience builders (all times absolute).
  FaultPlan& fail_port(SimTime at, NodeId node, PortId port);
  FaultPlan& repair_port(SimTime at, NodeId node, PortId port);
  // `cycles` fail/repair rounds: down for `down` out of every `period`,
  // with each cycle's start jittered by ±jitter*period from the plan's rng.
  FaultPlan& flap_port(SimTime at, NodeId node, PortId port, SimTime down,
                       SimTime period, int cycles, double jitter = 0.0);
  FaultPlan& set_ber(SimTime at, NodeId node, PortId port, double ber);
  FaultPlan& stall_reconfig(SimTime at, SimTime extra);
  FaultPlan& delay_control(SimTime at, SimTime delay, SimTime duration);
  FaultPlan& fail_control(SimTime at, SimTime duration);
  // Clock faults (§7's silent hazard). drift_clock ramps node `node` at
  // `ppm` for `duration` (0 = until further notice); step_clock jumps its
  // offset by `delta` instantly; lose_beacons suppresses the node's resync
  // beacons; sync_outage suppresses everyone's.
  FaultPlan& drift_clock(SimTime at, NodeId node, double ppm,
                         SimTime duration = SimTime::zero());
  FaultPlan& step_clock(SimTime at, NodeId node, SimTime delta);
  FaultPlan& lose_beacons(SimTime at, NodeId node,
                          SimTime duration = SimTime::zero());
  FaultPlan& sync_outage(SimTime at, SimTime duration);
  // Southbound-channel faults (the transactional control plane's chaos
  // dimension). `node == kInvalidNode` applies the override fabric-wide.
  FaultPlan& lose_sb_msgs(SimTime at, NodeId node, double prob,
                          SimTime duration = SimTime::zero());
  FaultPlan& delay_sb_msgs(SimTime at, NodeId node, SimTime extra,
                           SimTime duration = SimTime::zero());
  FaultPlan& dup_sb_msgs(SimTime at, NodeId node, double prob,
                         SimTime duration = SimTime::zero());
  FaultPlan& fail_tor_install(SimTime at, NodeId node,
                              SimTime duration = SimTime::zero());
  // Crash the controller at `at`; restart (with state resync) `duration`
  // later (0 = stays down).
  FaultPlan& crash_controller(SimTime at, SimTime duration);
  // Quorum faults (no-ops unless a ControllerQuorum is attached to `ctl`).
  // kill_leader kills whichever replica leads when the event fires and
  // revives it `restart_after` later (0 = stays dead); partition_replica
  // cuts `replica` off the replica<->replica mesh (ToR legs unaffected —
  // the split-brain shape) and heals after `duration`; diverge_log corrupts
  // `replica`'s log tail.
  FaultPlan& kill_leader(SimTime at, SimTime restart_after = SimTime::zero());
  FaultPlan& partition_replica(SimTime at, int replica,
                               SimTime duration = SimTime::zero());
  FaultPlan& diverge_log(SimTime at, int replica);
  // Gray failures (components that keep answering but lie). ramp_ber ages
  // the transceiver at (node, port): BER climbs from `start_ber` to `ber`
  // over `duration` in `steps` deterministic increments (no randomness —
  // identical seeds give identical aging curves). gray_pair drops packets
  // w.p. `prob` on circuits from (node, port) whose far end is `peer`
  // (kInvalidNode = any peer) for `duration` — silently: no LOS alarm, no
  // timing violation. silent_install makes node `node`'s agent ack installs
  // without applying them for `duration` (0 = sticky). skew_telemetry makes
  // node `node` self-report its tx/rx counters scaled by 1 + ppm/1e6.
  FaultPlan& ramp_ber(SimTime at, NodeId node, PortId port, double start_ber,
                      double target_ber, SimTime duration, int steps = 8);
  FaultPlan& gray_pair(SimTime at, NodeId node, PortId port, NodeId peer,
                       double prob, SimTime duration);
  FaultPlan& silent_install(SimTime at, NodeId node,
                            SimTime duration = SimTime::zero());
  FaultPlan& skew_telemetry(SimTime at, NodeId node, double ppm,
                            SimTime duration = SimTime::zero());

  // Append events from a JSON plan: {"events": [{"kind": "port_fail",
  // "at_us": 100, "node": 0, "port": 1}, ...]}. Times are microseconds
  // (double). Throws json::ParseError / std::runtime_error on bad input.
  FaultPlan& load_json(const std::string& text);
  FaultPlan& load_events(const json::Value& plan);

  // Schedule every event on the simulator. Call once, before/while running.
  void arm();
  // Cancel all pending injections (in-effect faults stay as they are).
  void cancel();

  std::size_t size() const { return events_.size(); }
  bool armed() const { return armed_; }

  // Telemetry: primitive fault actions fired so far, per class.
  std::int64_t injected(FaultKind k) const {
    return injected_[static_cast<std::size_t>(k)];
  }
  std::int64_t injected_total() const;
  // "class=count" pairs for logs/CSV.
  std::string summary() const;

 private:
  void fire(const FaultEvent& ev);
  void flap_cycle(const FaultEvent& ev, int remaining);
  // Bumps the per-class counter (and its registry mirror) and records a
  // FaultInject trace event.
  void count(FaultKind k, NodeId node = kInvalidNode,
             PortId port = kInvalidPort);
  // Records the un-doing of a fault (repair / restore) in the trace.
  void trace_repair(FaultKind k, NodeId node = kInvalidNode,
                    PortId port = kInvalidPort);

  core::Network& net_;
  core::Controller* ctl_;
  Rng rng_;
  std::vector<FaultEvent> events_;
  std::vector<sim::EventHandle> handles_;
  std::array<std::int64_t, kNumFaultKinds> injected_{};
  bool armed_ = false;
};

}  // namespace oo::services
