#include "services/flow_aging.h"

namespace oo::services {

bool FlowAging::observe(FlowId flow, std::int64_t bytes, SimTime now) {
  auto& e = flows_[flow];
  if (e.last_seen + idle_reset_ < now) e.bytes = 0;  // aged out: restart
  e.bytes += bytes;
  e.last_seen = now;
  return e.bytes >= threshold_;
}

bool FlowAging::is_elephant(FlowId flow, SimTime now) const {
  auto it = flows_.find(flow);
  if (it == flows_.end()) return false;
  if (it->second.last_seen + idle_reset_ < now) return false;
  return it->second.bytes >= threshold_;
}

std::int64_t FlowAging::bytes_of(FlowId flow) const {
  auto it = flows_.find(flow);
  return it == flows_.end() ? 0 : it->second.bytes;
}

void FlowAging::expire(SimTime now) {
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.last_seen + idle_reset_ < now) {
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace oo::services
