// Flow aging (§5.2): information-agnostic elephant detection à la PIAS —
// a flow graduates to "elephant" once its cumulative bytes cross a
// threshold, with idle flows aging back down. TA architectures use this to
// decide which flows to pause for direct circuits; hybrid designs use it to
// steer elephants onto the optical fabric.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/ids.h"
#include "common/time.h"

namespace oo::services {

class FlowAging {
 public:
  FlowAging(std::int64_t elephant_bytes, SimTime idle_reset)
      : threshold_(elephant_bytes), idle_reset_(idle_reset) {}

  // Records `bytes` observed for `flow` at time `now`; returns true iff the
  // flow is (now) an elephant.
  bool observe(FlowId flow, std::int64_t bytes, SimTime now);
  bool is_elephant(FlowId flow, SimTime now) const;
  std::int64_t bytes_of(FlowId flow) const;
  std::size_t tracked() const { return flows_.size(); }
  // Drops entries idle past the reset horizon (bounded state, as a switch
  // register array would be).
  void expire(SimTime now);

 private:
  struct Entry {
    std::int64_t bytes = 0;
    SimTime last_seen;
  };
  std::int64_t threshold_;
  SimTime idle_reset_;
  std::unordered_map<FlowId, Entry> flows_;
};

}  // namespace oo::services
