#include "services/health_scanner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/controller.h"

namespace oo::services {

HealthScanner::HealthScanner(core::Network& net, Config cfg)
    : net_(net),
      cfg_(cfg),
      audits_(&net.sim().metrics().counter("health.audits")),
      symptoms_loss_(
          &net.sim().metrics().counter("health.symptoms", {{"kind", "loss"}})),
      symptoms_negative_(&net.sim().metrics().counter(
          "health.symptoms", {{"kind", "negative"}})),
      symptoms_claim_(
          &net.sim().metrics().counter("health.symptoms", {{"kind", "claim"}})),
      suspects_(&net.sim().metrics().counter("health.suspects")),
      degrades_(&net.sim().metrics().counter("health.degrades")),
      quarantines_(&net.sim().metrics().counter("health.quarantines")),
      readmissions_(&net.sim().metrics().counter("health.readmissions")),
      probes_lost_(&net.sim().metrics().counter("health.probes_lost")) {}

HealthScanner::~HealthScanner() {
  if (alive_) *alive_ = false;
}

void HealthScanner::start() {
  if (started_) return;
  started_ = true;
  num_nodes_ = net_.num_tors();
  uplinks_ = net_.schedule().uplinks();
  nodes_.clear();
  nodes_.resize(static_cast<std::size_t>(num_nodes_));
  circuits_.assign(static_cast<std::size_t>(num_nodes_) *
                       static_cast<std::size_t>(uplinks_) *
                       static_cast<std::size_t>(num_nodes_),
                   CircuitStat{});
  breadth_hold_.assign(static_cast<std::size_t>(num_nodes_), 0);
  const std::size_t ports =
      static_cast<std::size_t>(num_nodes_) * static_cast<std::size_t>(uplinks_);
  last_tx_.assign(ports, 0);
  last_rx_.assign(ports, 0);
  pending_tx_.assign(ports, 0);
  have_baseline_ = false;
  pending_slice_abs_ = -1;
  // Delivery-jitter closure: deliveries of the slice ending at boundary T
  // have all landed by T + latency_max, and (thanks to the head guard) the
  // next slice's first delivery lands strictly later — so sampling rx at
  // T + latency_max + 1ns captures exactly one slice's worth.
  rx_delay_ = net_.optical().profile().latency_max + SimTime::nanos(1);
  const SimTime interval = cfg_.audit_interval > SimTime::zero()
                               ? cfg_.audit_interval
                               : net_.schedule().slice_duration();
  alive_ = std::make_shared<bool>(true);
  // First audit at the next global slice boundary; every audit event runs
  // on the control queue, so worker-lane counters are read at barriers.
  const std::int64_t next_abs =
      net_.schedule().abs_slice_at(net_.sim().now()) + 1;
  boundary_handle_ = net_.sim().schedule_every(
      net_.schedule().slice_start(next_abs), interval,
      [this]() {
        const std::int64_t k = net_.schedule().abs_slice_at(net_.sim().now());
        sample_tx(k);
        std::weak_ptr<bool> weak = alive_;
        net_.sim().schedule_in(
            rx_delay_,
            [this, k, weak]() {
              if (auto a = weak.lock(); a && *a) audit(k);
            },
            "health.audit");
      },
      "health.boundary");
}

void HealthScanner::stop() {
  if (!started_) return;
  started_ = false;
  if (alive_) *alive_ = false;
  alive_.reset();
  boundary_handle_.cancel();
  for (auto& st : nodes_) st.probe.reset();
}

std::vector<NodeId> HealthScanner::quarantined_nodes() const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].state == NodeHealth::Quarantined) {
      out.push_back(static_cast<NodeId>(i));
    }
  }
  return out;
}

void HealthScanner::sample_tx(std::int64_t boundary_abs) {
  for (NodeId n = 0; n < num_nodes_; ++n) {
    auto& tor = net_.tor(n);
    for (PortId p = 0; p < uplinks_; ++p) {
      pending_tx_[static_cast<std::size_t>(n * uplinks_ + p)] =
          tor.reported_uplink_tx_bytes(p);
    }
  }
  pending_slice_abs_ = boundary_abs - 1;  // the slice that just ended
}

void HealthScanner::audit(std::int64_t boundary_abs) {
  if (!started_) return;
  (void)boundary_abs;
  const std::size_t ports = last_rx_.size();
  std::vector<std::int64_t> rx_now(ports, 0);
  for (NodeId n = 0; n < num_nodes_; ++n) {
    auto& tor = net_.tor(n);
    for (PortId p = 0; p < uplinks_; ++p) {
      rx_now[static_cast<std::size_t>(n * uplinks_ + p)] =
          tor.reported_uplink_rx_bytes(p);
    }
  }
  if (!have_baseline_) {
    // The first sample covers a partial slice; use it only as the baseline.
    have_baseline_ = true;
    last_tx_ = pending_tx_;
    last_rx_ = rx_now;
    return;
  }
  audits_->inc();
  // While the fabric is knowingly mixed-epoch (a deploy committed on some
  // ToRs but not others), the schedule the scanner attributes bytes with is
  // not the one every node forwarded on — conservation deltas would charge
  // healthy nodes. Skip the ledger update; the claim-vs-behavior check in
  // classify() still runs and is exactly what indicts a silent installer.
  if (!net_.epoch_mixed()) {
    const SliceId slice = net_.schedule().slice_of(pending_slice_abs_);
    for (NodeId src = 0; src < num_nodes_; ++src) {
      for (PortId p = 0; p < uplinks_; ++p) {
        const std::size_t si = static_cast<std::size_t>(src * uplinks_ + p);
        const std::int64_t dtx = pending_tx_[si] - last_tx_[si];
        const auto peer = net_.schedule().peer(src, p, slice);
        if (!peer) continue;
        // A circuit touching a quarantined node reflects the remediation,
        // not the fabric: the fence eats the bytes, and charging the honest
        // far end would cascade one quarantine into many. Administrative
        // loss is not evidence.
        const bool administrative =
            nodes_[static_cast<std::size_t>(src)].state ==
                NodeHealth::Quarantined ||
            nodes_[static_cast<std::size_t>(peer->node)].state ==
                NodeHealth::Quarantined;
        if (administrative || dtx < cfg_.min_audit_bytes) {
          // An idle circuit is not evidence either way, but held evidence
          // must decay — a quarantined node carries no optical traffic, and
          // frozen anomaly counts would block its readmission forever.
          CircuitStat& cs = circuits_[circuit_index(src, p, peer->node)];
          cs.ewma *= 1.0 - cfg_.ewma_alpha;
          if (std::abs(cs.ewma) < cfg_.suspect_score) cs.anomalous_audits = 0;
          continue;
        }
        const std::size_t di =
            static_cast<std::size_t>(peer->node * uplinks_ + peer->port);
        const std::int64_t drx = rx_now[di] - last_rx_[di];
        // A cumulative counter can only grow: a negative per-slice rx delta
        // is the reporter's skew factor being applied or cleared (the
        // reported total steps), never fabric behavior. Route it to the
        // impossible-gain evidence class — it indicts the counter, not the
        // circuit — and bound |loss| at 1 so a one-shot counter step decays
        // on the same clock as real evidence instead of masquerading as a
        // long-lived lossy link.
        double loss = static_cast<double>(dtx - drx) /
                      static_cast<double>(dtx);
        if (drx < 0) loss = -1.0;
        loss = std::clamp(loss, -1.0, 1.0);
        CircuitStat& cs = circuits_[circuit_index(src, p, peer->node)];
        cs.ewma = (1.0 - cfg_.ewma_alpha) * cs.ewma + cfg_.ewma_alpha * loss;
        if (std::abs(cs.ewma) >= cfg_.suspect_score) {
          if (cs.anomalous_audits == 0) cs.first_anomaly = net_.sim().now();
          ++cs.anomalous_audits;
          (cs.ewma > 0 ? symptoms_loss_ : symptoms_negative_)->inc();
        } else {
          cs.anomalous_audits = 0;
        }
      }
    }
  }
  last_tx_ = pending_tx_;
  last_rx_ = rx_now;
  classify(pending_slice_abs_);
}

void HealthScanner::classify(std::int64_t slice_abs) {
  (void)slice_abs;
  const SimTime now = net_.sim().now();
  // Stale evidence on circuits into a fenced node must not implicate honest
  // far ends: once a node is quarantined its loss already has an owner, and
  // its circuits decay at uneven rates, so the breadth ordering that
  // protected its victims pre-quarantine can invert mid-decay. Treat every
  // circuit touching a quarantined endpoint as administrative here, exactly
  // as audit() does for fresh deltas.
  std::vector<char> fenced(static_cast<std::size_t>(num_nodes_), 0);
  for (NodeId n = 0; n < num_nodes_; ++n) {
    fenced[static_cast<std::size_t>(n)] =
        nodes_[static_cast<std::size_t>(n)].state == NodeHealth::Quarantined;
  }
  // Per-node tomography aggregates over circuits that crossed the evidence
  // threshold. A positive EWMA is real loss on the circuit; a negative one
  // is physically impossible and indicts a counter, not the fabric.
  struct Agg {
    int pos_out = 0, neg_out = 0, pos_in = 0, neg_in = 0;
  };
  std::vector<Agg> agg(static_cast<std::size_t>(num_nodes_));
  for (NodeId src = 0; src < num_nodes_; ++src) {
    for (PortId p = 0; p < uplinks_; ++p) {
      for (NodeId dst = 0; dst < num_nodes_; ++dst) {
        if (fenced[static_cast<std::size_t>(src)] ||
            fenced[static_cast<std::size_t>(dst)]) {
          continue;
        }
        const CircuitStat& cs = circuits_[circuit_index(src, p, dst)];
        if (cs.anomalous_audits < cfg_.min_anomalous_audits) continue;
        if (cs.ewma > 0) {
          ++agg[static_cast<std::size_t>(src)].pos_out;
          ++agg[static_cast<std::size_t>(dst)].pos_in;
        } else {
          ++agg[static_cast<std::size_t>(src)].neg_out;
          ++agg[static_cast<std::size_t>(dst)].neg_in;
        }
      }
    }
  }
  // Disagreement breadth: distinct counterparties with which a node shares
  // *any* anomalous circuit (either direction, any maturity). Conservation
  // evidence is symmetric — circuit (a -> b) implicates both ends equally —
  // so breadth is the tomography tie-breaker: a dying transceiver or a
  // skewed reporter disagrees with many counterparties, each honest far end
  // with exactly one. Soft maturity (a single anomalous audit) on purpose:
  // the real culprit's breadth outgrows its victims' well before the
  // evidence bar, which kills the blame-the-first-circuit-to-mature race.
  std::vector<int> breadth(static_cast<std::size_t>(num_nodes_), 0);
  for (NodeId a = 0; a < num_nodes_; ++a) {
    for (NodeId b = 0; b < num_nodes_; ++b) {
      if (a == b) continue;
      if (fenced[static_cast<std::size_t>(a)] ||
          fenced[static_cast<std::size_t>(b)]) {
        continue;
      }
      bool disagree = false;
      for (PortId p = 0; p < uplinks_ && !disagree; ++p) {
        disagree = circuits_[circuit_index(a, p, b)].anomalous_audits >= 1 ||
                   circuits_[circuit_index(b, p, a)].anomalous_audits >= 1;
      }
      if (disagree) ++breadth[static_cast<std::size_t>(a)];
    }
  }
  // Hold each node's peak breadth while any evidence touching it is still
  // draining: a healed broad fault's circuits decay at uneven rates, and
  // the instantaneous counts would invert the tie-breaker just long enough
  // to indict the honest src of the last circuit standing.
  for (NodeId n = 0; n < num_nodes_; ++n) {
    const std::size_t i = static_cast<std::size_t>(n);
    if (breadth[i] == 0) {
      breadth_hold_[i] = 0;
    } else {
      breadth_hold_[i] = std::max(breadth_hold_[i], breadth[i]);
    }
    breadth[i] = breadth_hold_[i];
  }
  // Intersection: real loss on both a node's egress *and* its ingress means
  // the transceiver itself is dying (a bad laser and a bad photodiode share
  // a module) — that node is indicted, and honest far ends whose only lossy
  // circuits terminate there must not be charged for its fault.
  std::vector<char> indicted(static_cast<std::size_t>(num_nodes_), 0);
  for (NodeId n = 0; n < num_nodes_; ++n) {
    const Agg& a = agg[static_cast<std::size_t>(n)];
    indicted[static_cast<std::size_t>(n)] = a.pos_out > 0 && a.pos_in > 0;
  }
  // Best positive egress evidence per node: blamed port, distinct peers,
  // strongest peer, earliest anomaly. Circuits into a far end with strictly
  // greater breadth are excluded — that loss already has a better owner.
  struct Egress {
    PortId port = kInvalidPort;
    NodeId peer = kInvalidNode;
    int peers_on_port = 0;
    double score = 0.0;
    SimTime first = SimTime::zero();
    bool has_first = false;
  };
  std::vector<Egress> egress(static_cast<std::size_t>(num_nodes_));
  for (NodeId src = 0; src < num_nodes_; ++src) {
    Egress& a = egress[static_cast<std::size_t>(src)];
    for (PortId p = 0; p < uplinks_; ++p) {
      int peers = 0;
      double best = 0.0;
      NodeId best_peer = kInvalidNode;
      SimTime first = SimTime::zero();
      bool has_first = false;
      for (NodeId dst = 0; dst < num_nodes_; ++dst) {
        if (fenced[static_cast<std::size_t>(src)] ||
            fenced[static_cast<std::size_t>(dst)]) {
          continue;
        }
        const CircuitStat& cs = circuits_[circuit_index(src, p, dst)];
        if (cs.anomalous_audits < cfg_.min_anomalous_audits) continue;
        if (cs.ewma <= 0) continue;
        if (breadth[static_cast<std::size_t>(dst)] >
            breadth[static_cast<std::size_t>(src)]) {
          continue;
        }
        ++peers;
        if (cs.ewma > best) {
          best = cs.ewma;
          best_peer = dst;
        }
        if (!has_first || cs.first_anomaly < first) {
          first = cs.first_anomaly;
          has_first = true;
        }
      }
      if (peers > a.peers_on_port ||
          (peers == a.peers_on_port && best > a.score)) {
        a.port = p;
        a.peer = best_peer;
        a.peers_on_port = peers;
        a.score = best;
      }
      if (has_first && (!a.has_first || first < a.first)) {
        a.first = first;
        a.has_first = true;
      }
    }
  }
  for (NodeId n = 0; n < num_nodes_; ++n) {
    NodeState& st = nodes_[static_cast<std::size_t>(n)];
    const Agg& a = agg[static_cast<std::size_t>(n)];
    const Egress& e = egress[static_cast<std::size_t>(n)];
    // Claim-vs-behavior: the agent's committed-epoch watermark (its ack
    // trail) against the forwarding epoch the network observed. One apply
    // legitimately lags a boundary, and an in-flight transaction is still
    // converging, so divergence must persist across audit rounds.
    bool claim_diverged = false;
    if (ctl_ != nullptr && !ctl_->txn_in_flight() &&
        ctl_->node_committed_epoch(n) != net_.node_epoch(n)) {
      ++st.claim_mismatch_rounds;
      symptoms_claim_->inc();
      claim_diverged = st.claim_mismatch_rounds >= cfg_.claim_mismatch_rounds;
    } else {
      st.claim_mismatch_rounds = 0;
    }
    Blame why;
    SimTime first = now;
    if (((a.pos_out > 0 && a.neg_in > 0) || (a.neg_out > 0 && a.pos_in > 0)) &&
        breadth[static_cast<std::size_t>(n)] >= 2) {
      // Opposite-sign anomalies on the two directions of one node: every
      // circuit it reports on disagrees with an honest far end — the
      // reporter is skewed. Pairwise disagreement is symmetric (each honest
      // far end of a skewed reporter shows the mirror signature), so the
      // skewed node must disagree with at least two counterparties; its
      // victims each disagree with exactly one.
      why.cause = Cause::TelemetrySkew;
      if (e.has_first) first = e.first;
    } else if (indicted[static_cast<std::size_t>(n)] &&
               e.port != kInvalidPort) {
      // Two-sided real loss: the node's own transceiver, whatever the peer
      // mix looks like.
      why.cause = Cause::PortDegrade;
      why.port = e.port;
      why.peer = e.peer;
      if (e.has_first) first = e.first;
    } else if (claim_diverged) {
      why.cause = Cause::SilentInstall;
    } else if (a.pos_out > 0 && e.port != kInvalidPort &&
               e.peers_on_port > 0) {
      // Intersection localization: many lossy peers through one port =
      // the port; exactly one = that port pair.
      why.cause = e.peers_on_port >= 2 ? Cause::PortDegrade : Cause::LinkLoss;
      why.port = e.port;
      why.peer = e.peer;
      if (e.has_first) first = e.first;
    }
    static const bool scanner_debug = std::getenv("OO_SCANNER_DEBUG") != nullptr;
    if (why.cause != Cause::None && scanner_debug) {
      std::fprintf(stderr,
                   "[dbg %lld] n=%d cause=%d port=%d peer=%d "
                   "agg(po=%d no=%d pi=%d ni=%d) breadth=",
                   static_cast<long long>(now.ns()), n,
                   static_cast<int>(why.cause), why.port, why.peer, a.pos_out,
                   a.neg_out, a.pos_in, a.neg_in);
      for (NodeId b = 0; b < num_nodes_; ++b) {
        std::fprintf(stderr, "%d,", breadth[static_cast<std::size_t>(b)]);
      }
      std::fprintf(stderr, "\n");
    }
    const bool probe_evidence =
        st.probe != nullptr && st.probe->lost() > st.probe_losses;
    if (probe_evidence) st.probe_losses = static_cast<int>(st.probe->lost());
    if (why.cause != Cause::None) {
      st.clean_rounds = 0;
      if (!st.has_symptom_time) {
        st.first_symptom = first;
        st.has_symptom_time = true;
      }
      if (st.state == NodeHealth::Healthy) {
        st.rounds_at_rung = 0;
        escalate(n, why);
      } else if (++st.rounds_at_rung >= cfg_.escalate_rounds) {
        st.rounds_at_rung = 0;
        escalate(n, why);
      }
    } else if (st.state != NodeHealth::Healthy) {
      if (probe_evidence) {
        st.clean_rounds = 0;
      } else if (++st.clean_rounds >= cfg_.readmit_clean_rounds) {
        readmit(n);
      }
    }
  }
}

void HealthScanner::escalate(NodeId n, const Blame& why) {
  NodeState& st = nodes_[static_cast<std::size_t>(n)];
  const SimTime now = net_.sim().now();
  const std::int64_t blamed_port =
      why.port == kInvalidPort ? -1 : static_cast<std::int64_t>(why.port);
  switch (st.state) {
    case NodeHealth::Healthy: {
      st.blame = why;
      st.suspect_at = now;
      st.probe_losses = 0;
      suspects_->inc();
      const SimTime ttd =
          st.has_symptom_time ? now - st.first_symptom : SimTime::zero();
      time_to_suspect_us_.add(ttd.us());
      if (auto* tr = net_.sim().recorder()) {
        tr->health_suspect(now, n, static_cast<std::int64_t>(why.cause),
                           blamed_port);
      }
      note_transition(n, NodeHealth::Healthy, NodeHealth::Suspect);
      st.state = NodeHealth::Suspect;
      start_probe(n);
      break;
    }
    case NodeHealth::Suspect: {
      st.blame = why;
      degrades_->inc();
      if (auto* tr = net_.sim().recorder()) {
        tr->health_degrade(now, n, st.probe_losses, blamed_port);
      }
      note_transition(n, NodeHealth::Suspect, NodeHealth::Degraded);
      st.state = NodeHealth::Degraded;
      if (degrade_hook_) degrade_hook_(n, true);
      break;
    }
    case NodeHealth::Degraded: {
      // Quarantine needs an electrical fabric to divert onto; without one
      // the ladder tops out at Degraded.
      if (net_.electrical() == nullptr) break;
      st.blame = why;
      net_.set_node_quarantined(n, true);
      quarantines_->inc();
      time_to_quarantine_us_.add((now - st.suspect_at).us());
      if (auto* tr = net_.sim().recorder()) {
        tr->health_quarantine(now, n, static_cast<std::int64_t>(why.cause),
                              blamed_port);
      }
      note_transition(n, NodeHealth::Degraded, NodeHealth::Quarantined);
      st.state = NodeHealth::Quarantined;
      // The node is off the optical fabric; probes would only measure the
      // healthy electrical path now.
      st.probe.reset();
      break;
    }
    case NodeHealth::Quarantined:
      break;
  }
}

void HealthScanner::start_probe(NodeId n) {
  NodeState& st = nodes_[static_cast<std::size_t>(n)];
  // Pick endpoints so probe datagrams cross the suspect component: for loss
  // causes, from the blamed node through the blamed port's strongest-
  // evidence peer; for reporting causes, from the lowest healthy node into
  // the suspect.
  HostId pinger;
  HostId responder;
  if (st.blame.cause == Cause::LinkLoss ||
      st.blame.cause == Cause::PortDegrade) {
    const NodeId target =
        st.blame.peer != kInvalidNode ? st.blame.peer : (n + 1) % num_nodes_;
    pinger = net_.host_id(n, 0);
    responder = net_.host_id(target, 0);
  } else {
    NodeId src = kInvalidNode;
    for (NodeId m = 0; m < num_nodes_; ++m) {
      if (m != n && nodes_[static_cast<std::size_t>(m)].state ==
                        NodeHealth::Healthy) {
        src = m;
        break;
      }
    }
    if (src == kInvalidNode) src = (n + 1) % num_nodes_;
    pinger = net_.host_id(src, 0);
    responder = net_.host_id(n, 0);
  }
  st.probe = std::make_unique<transport::UdpProbe>(
      net_, pinger, responder, cfg_.probe_interval, 256);
  st.probe->set_timeout(cfg_.probe_timeout, cfg_.probe_backoff_cap,
                        cfg_.probe_retries);
  std::weak_ptr<bool> weak = alive_;
  st.probe->set_loss_hook([this, n, weak](std::int64_t) {
    if (auto a = weak.lock(); a && *a) on_probe_loss(n);
  });
  st.probe->start();
}

void HealthScanner::on_probe_loss(NodeId n) {
  NodeState& st = nodes_[static_cast<std::size_t>(n)];
  ++st.probe_losses;
  probes_lost_->inc();
  st.clean_rounds = 0;
  // Probe losses corroborate the audit evidence and take the next rung
  // without waiting out escalate_rounds. The loss hook fires from the
  // probe's own timeout event on the control queue — never from inside a
  // fabric or drain callback — so escalating directly is re-entry safe.
  if (st.state == NodeHealth::Suspect &&
      st.probe_losses >= cfg_.degrade_probe_losses) {
    escalate(n, st.blame);
  } else if (st.state == NodeHealth::Degraded &&
             st.probe_losses >= 2 * cfg_.degrade_probe_losses) {
    escalate(n, st.blame);
  }
}

void HealthScanner::readmit(NodeId n) {
  NodeState& st = nodes_[static_cast<std::size_t>(n)];
  const SimTime now = net_.sim().now();
  if (st.state == NodeHealth::Quarantined) {
    net_.set_node_quarantined(n, false);
  }
  if (st.state == NodeHealth::Degraded ||
      st.state == NodeHealth::Quarantined) {
    if (degrade_hook_) degrade_hook_(n, false);
  }
  readmissions_->inc();
  if (auto* tr = net_.sim().recorder()) {
    tr->health_readmit(now, n, (now - st.suspect_at).ns());
  }
  note_transition(n, st.state, NodeHealth::Healthy);
  st.state = NodeHealth::Healthy;
  st.blame = Blame{};
  st.has_symptom_time = false;
  st.rounds_at_rung = 0;
  st.clean_rounds = 0;
  st.claim_mismatch_rounds = 0;
  st.probe_losses = 0;
  st.probe.reset();
  // A readmitted node starts from a clean ledger: stale anomaly counts must
  // not fast-track the next suspicion.
  for (PortId p = 0; p < uplinks_; ++p) {
    for (NodeId dst = 0; dst < num_nodes_; ++dst) {
      circuits_[circuit_index(n, p, dst)] = CircuitStat{};
      circuits_[circuit_index(dst, p, n)] = CircuitStat{};
    }
  }
}

}  // namespace oo::services
