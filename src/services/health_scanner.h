// Health scanner: evidence-based detection of *gray* failures — components
// that keep their light up and their acks flowing while silently mangling
// traffic — and a graded, reversible remediation ladder (the gray-failure
// counterpart of the sync watchdog's clock-fault domain).
//
// Detection uses observable symptoms only; the scanner never reads fault
// state, true BER, or un-skewed counters:
//
//   - Per-circuit conservation audits. At every global slice boundary T the
//     scanner snapshots each node's self-reported cumulative uplink tx
//     counters, and at T + latency_max + 1ns the rx counters. Because the
//     head guard exceeds the fabric's delivery jitter, the delayed rx window
//     (T_prev + L_max, T + L_max] captures exactly the deliveries of the
//     slice that ended at T — so the schedule tells which circuit carried
//     which bytes, and each (src, port) -> (dst, dport) pair yields an exact
//     per-slice tx/rx delta. Loss fractions feed per-circuit EWMAs; an
//     evidence threshold (minimum anomalous audits + minimum bytes) keeps
//     clean-but-bursty runs quiet.
//   - Tomography-style intersection. One (src, port) anomalous toward many
//     destinations = the port is dying (ber_ramp). A single anomalous
//     circuit = a dirty port pair (gray_port_pair). A *negative* loss delta
//     is physically impossible, so a node whose ingress and egress disagree
//     in opposite directions is lying about its counters (telemetry_skew) —
//     self-reports are evidence against the reporter, never trusted.
//   - Claim-vs-behavior. A ToR whose agent's committed-epoch watermark
//     (what it acked) diverges from the forwarding epoch the network
//     observed it rotate onto (what it did), persistently and outside any
//     in-flight transaction, silently dropped an install
//     (silent_install_fail).
//   - Targeted active probes (transport::UdpProbe with timeout + capped
//     backoff) are sent only once a node is Suspect — a clean run schedules
//     no probes and is byte-identical to a scanner-less run.
//
// Remediation ladder, per node:
//   Healthy -> Suspect      evidence threshold crossed; targeted probing
//                           starts across the blamed component
//   Suspect -> Degraded     probe losses or sustained evidence; the degrade
//                           hook (HybridSteering::set_node_degraded) shifts
//                           elephant flows off the node
//   Degraded -> Quarantined further losses/evidence; optical egress fenced,
//                           traffic diverted + queues flushed (hybrid
//                           fabrics only — otherwise the ladder tops out)
//   any -> Healthy          readmit_clean_rounds consecutive clean audits
//
// Every decision runs on the control queue from boundary-aligned audit
// events, reading worker-lane counters only at barriers (the invariant-
// census idiom) — shard-safe, and byte-identical at any shard count.
//
// Known blind spots (see DESIGN.md): TA/static mode has no head guard, so
// ~jitter-window bytes can smear across audit edges (bounded, sub-MTU);
// readmission probes ride the healthy fabric, so a sticky optical fault
// re-triggers detection after readmission instead of holding the node out
// forever; faults during mixed-epoch exposure defer to the claim check.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "core/network.h"
#include "transport/udp_probe.h"

namespace oo::core {
class Controller;
}

namespace oo::services {

class HealthScanner {
 public:
  struct Config {
    // Audit cadence; zero derives one audit per slice at start().
    SimTime audit_interval = SimTime::zero();
    // EWMA smoothing for per-circuit loss fractions.
    double ewma_alpha = 0.3;
    // Loss-fraction score at which a circuit counts as anomalous.
    double suspect_score = 0.05;
    // Anomalous audits a circuit must accumulate before it is evidence —
    // the threshold that keeps clean-but-bursty runs quiet.
    int min_anomalous_audits = 3;
    // Circuits carrying fewer bytes than this in a slice are not audited
    // (a one-packet sample is not evidence).
    std::int64_t min_audit_bytes = 3000;
    // Targeted probing once Suspect.
    SimTime probe_interval = SimTime::micros(20);
    SimTime probe_timeout = SimTime::micros(60);
    SimTime probe_backoff_cap = SimTime::micros(480);
    int probe_retries = 2;
    // Escalation: probe losses take the next rung immediately; lying faults
    // (skew, silent install) produce no probe loss, so sustained evidence
    // rounds escalate instead.
    int degrade_probe_losses = 3;
    int escalate_rounds = 4;
    // Consecutive audit rounds the agent's epoch claim must diverge from
    // observed forwarding (outside any in-flight transaction) before a
    // silent install is charged — one apply normally lags one boundary.
    int claim_mismatch_rounds = 3;
    // Consecutive clean audit rounds before any rung is re-admitted.
    int readmit_clean_rounds = 4;
  };

  // Ladder rungs; numeric order is escalation order (the invariant monitor
  // checks transitions against it).
  enum class NodeHealth { Healthy = 0, Suspect, Degraded, Quarantined };

  // What the tomography pass localized.
  enum class Cause {
    None = 0,
    LinkLoss,       // one dirty circuit: (node, port) -> peer
    PortDegrade,    // (node, port) lossy toward many peers
    TelemetrySkew,  // node's self-reports are inconsistent both directions
    SilentInstall,  // node acked an install it never applied
  };
  struct Blame {
    Cause cause = Cause::None;
    PortId port = kInvalidPort;   // blamed local port (loss causes)
    NodeId peer = kInvalidNode;   // blamed far end (LinkLoss)
  };

  HealthScanner(core::Network& net, Config cfg);
  explicit HealthScanner(core::Network& net)
      : HealthScanner(net, Config{}) {}
  ~HealthScanner();
  HealthScanner(const HealthScanner&) = delete;
  HealthScanner& operator=(const HealthScanner&) = delete;

  // Wire the claim-vs-behavior check (silent_install_fail detection needs
  // the agents' committed-epoch watermarks). Optional; unwired scanners
  // simply cannot charge silent installs.
  void set_controller(const core::Controller* ctl) { ctl_ = ctl; }

  // Invoked on Degraded entry (true) / exit (false) — the wiring point for
  // HybridSteering::set_node_degraded.
  using DegradeFn = std::function<void(NodeId, bool)>;
  void set_degrade_hook(DegradeFn fn) { degrade_hook_ = std::move(fn); }

  // Invoked on every ladder transition (from != to) — the invariant
  // monitor's legality tap.
  using TransitionFn =
      std::function<void(NodeId, NodeHealth from, NodeHealth to)>;
  void set_transition_hook(TransitionFn fn) {
    transition_hook_ = std::move(fn);
  }

  // Start boundary-aligned audits. Stop drops timers and probes but leaves
  // in-effect degradations/quarantines as they are.
  void start();
  void stop();
  bool running() const { return started_; }

  NodeHealth state(NodeId n) const {
    return nodes_[static_cast<std::size_t>(n)].state;
  }
  const Blame& blame(NodeId n) const {
    return nodes_[static_cast<std::size_t>(n)].blame;
  }
  std::vector<NodeId> quarantined_nodes() const;

  // ---- robustness telemetry ----
  std::int64_t audits() const { return audits_->value(); }
  std::int64_t suspects() const { return suspects_->value(); }
  std::int64_t degrades() const { return degrades_->value(); }
  std::int64_t quarantines() const { return quarantines_->value(); }
  std::int64_t readmissions() const { return readmissions_->value(); }
  std::int64_t probes_lost() const { return probes_lost_->value(); }
  // First anomalous observation to Suspect entry, per detection (us).
  const PercentileSampler& time_to_suspect_us() const {
    return time_to_suspect_us_;
  }
  // Suspect entry to Quarantined entry, per quarantine (us).
  const PercentileSampler& time_to_quarantine_us() const {
    return time_to_quarantine_us_;
  }

 private:
  // Per directed circuit (src, port, dst) loss ledger.
  struct CircuitStat {
    double ewma = 0.0;
    int anomalous_audits = 0;
    SimTime first_anomaly = SimTime::zero();
  };
  struct NodeState {
    NodeHealth state = NodeHealth::Healthy;
    Blame blame;
    SimTime first_symptom = SimTime::zero();
    bool has_symptom_time = false;
    int rounds_at_rung = 0;
    int clean_rounds = 0;
    int claim_mismatch_rounds = 0;
    int probe_losses = 0;
    SimTime suspect_at = SimTime::zero();
    std::unique_ptr<transport::UdpProbe> probe;
  };

  std::size_t circuit_index(NodeId src, PortId port, NodeId dst) const {
    return (static_cast<std::size_t>(src) * static_cast<std::size_t>(uplinks_) +
            static_cast<std::size_t>(port)) *
               static_cast<std::size_t>(num_nodes_) +
           static_cast<std::size_t>(dst);
  }

  void sample_tx(std::int64_t boundary_abs);
  void audit(std::int64_t boundary_abs);
  void classify(std::int64_t slice_abs);
  void escalate(NodeId n, const Blame& why);
  void start_probe(NodeId n);
  void on_probe_loss(NodeId n);
  void readmit(NodeId n);
  void note_transition(NodeId n, NodeHealth from, NodeHealth to) {
    if (transition_hook_ && from != to) transition_hook_(n, from, to);
  }

  core::Network& net_;
  Config cfg_;
  const core::Controller* ctl_ = nullptr;
  int num_nodes_ = 0;
  int uplinks_ = 0;
  SimTime rx_delay_ = SimTime::zero();  // latency_max + 1ns
  std::vector<NodeState> nodes_;
  std::vector<CircuitStat> circuits_;
  // Peak disagreement breadth per node, held until every circuit touching
  // the node fully decays — the tomography tie-breaker must not invert
  // while a healed fault's evidence drains at uneven per-circuit rates.
  std::vector<int> breadth_hold_;
  // Cumulative-counter snapshots, indexed node * uplinks + port.
  std::vector<std::int64_t> last_tx_;
  std::vector<std::int64_t> last_rx_;
  std::vector<std::int64_t> pending_tx_;  // sampled at T, consumed at T+delay
  std::int64_t pending_slice_abs_ = -1;
  bool have_baseline_ = false;
  std::shared_ptr<bool> alive_;
  sim::EventHandle boundary_handle_;
  DegradeFn degrade_hook_;
  TransitionFn transition_hook_;
  bool started_ = false;
  telemetry::Counter* audits_;
  telemetry::Counter* symptoms_loss_;
  telemetry::Counter* symptoms_negative_;
  telemetry::Counter* symptoms_claim_;
  telemetry::Counter* suspects_;
  telemetry::Counter* degrades_;
  telemetry::Counter* quarantines_;
  telemetry::Counter* readmissions_;
  telemetry::Counter* probes_lost_;
  PercentileSampler time_to_suspect_us_;
  PercentileSampler time_to_quarantine_us_;
};

}  // namespace oo::services
