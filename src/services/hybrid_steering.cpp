#include "services/hybrid_steering.h"

namespace oo::services {

void HybridSteering::prepare(core::Packet& p, NodeId src_tor) {
  const bool elephant =
      aging_.observe(p.flow, p.size_bytes, net_.sim().now());
  if (!elephant) return;
  if (degraded_) {
    ++diverted_;
    return;  // reduced optical capacity: leave the elephant on electrical
  }
  const NodeId dst =
      p.dst_node != kInvalidNode ? p.dst_node : net_.tor_of(p.dst_host);
  if (dst == src_tor) return;
  const auto& sched = net_.schedule();
  // Static (TA) schedule: slice 0 is the topology instance.
  for (PortId u = 0; u < sched.uplinks(); ++u) {
    if (auto peer = sched.peer(src_tor, u, 0); peer && peer->node == dst) {
      p.source_route.assign(1, net::SourceHop{u, kAnySlice});
      p.route_idx = 0;
      ++steered_;
      return;
    }
  }
  // No circuit: the elephant stays on the electrical default route.
}

}  // namespace oo::services
