#include "services/hybrid_steering.h"

namespace oo::services {

void HybridSteering::set_node_degraded(NodeId n, bool d) {
  const auto i = static_cast<std::size_t>(n);
  if (i >= node_degraded_.size()) {
    node_degraded_.resize(static_cast<std::size_t>(net_.num_tors()), 0);
  }
  node_degraded_[i] = d ? 1 : 0;
}

void HybridSteering::prepare(core::Packet& p, NodeId src_tor) {
  const bool elephant =
      aging_.observe(p.flow, p.size_bytes, net_.sim().now());
  if (!elephant) return;
  const NodeId dst =
      p.dst_node != kInvalidNode ? p.dst_node : net_.tor_of(p.dst_host);
  if (degraded_ || node_degraded(src_tor) ||
      (dst != kInvalidNode && node_degraded(dst))) {
    ++diverted_;
    return;  // reduced optical capacity: leave the elephant on electrical
  }
  if (dst == src_tor) return;
  const auto& sched = net_.schedule();
  // Static (TA) schedule: slice 0 is the topology instance.
  for (PortId u = 0; u < sched.uplinks(); ++u) {
    if (auto peer = sched.peer(src_tor, u, 0); peer && peer->node == dst) {
      p.source_route.assign(1, net::SourceHop{u, kAnySlice});
      p.route_idx = 0;
      ++steered_;
      return;
    }
  }
  // No circuit: the elephant stays on the electrical default route.
}

}  // namespace oo::services
