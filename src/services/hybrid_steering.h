// Hybrid electrical-optical traffic steering (c-Through-style, §2.1 TA-1):
// mice flows ride the parallel electrical network via the default flow-table
// route; flows classified as elephants by flow aging are steered onto a
// direct optical circuit when one exists (host-side source routing — the
// host stack picks the fabric, as c-Through's VLAN selection does).
#pragma once

#include "core/network.h"
#include "services/flow_aging.h"

namespace oo::services {

class HybridSteering {
 public:
  HybridSteering(core::Network& net, std::int64_t elephant_bytes,
                 SimTime idle_reset)
      : net_(net), aging_(elephant_bytes, idle_reset) {}

  // Call on every outgoing packet before Host::send. Observes the flow and,
  // for elephants with a live direct circuit from the source ToR, pins the
  // packet to the optical uplink.
  void prepare(core::Packet& p, NodeId src_tor);

  // Degraded mode (failure recovery's hook): while optical capacity is
  // reduced, elephants are NOT pinned to circuits — they ride the default
  // electrical route alongside the mice until recovery clears the flag.
  void set_degraded(bool d) { degraded_ = d; }
  bool degraded() const { return degraded_; }
  // Elephant packets that stayed electrical because of degraded mode.
  std::int64_t degraded_diverted() const { return diverted_; }

  // Per-node degraded mode (the sync watchdog's quarantine hook): elephants
  // from or to a degraded ToR stay on the electrical route, without pulling
  // the whole fabric out of steering. Lazily sized on first use.
  void set_node_degraded(NodeId n, bool d);
  bool node_degraded(NodeId n) const {
    const auto i = static_cast<std::size_t>(n);
    return i < node_degraded_.size() && node_degraded_[i] != 0;
  }

  FlowAging& aging() { return aging_; }
  std::int64_t steered_packets() const { return steered_; }

 private:
  core::Network& net_;
  FlowAging aging_;
  std::int64_t steered_ = 0;
  std::int64_t diverted_ = 0;
  bool degraded_ = false;
  std::vector<char> node_degraded_;
};

}  // namespace oo::services
