#include "services/monitor.h"

namespace oo::services {

namespace {

Monitor::Health snapshot(core::Network& net) {
  Monitor::Health h;
  for (NodeId n = 0; n < net.num_tors(); ++n) {
    const auto& tor = net.tor(n);
    h.congestion_drops += tor.drops_congestion();
    h.no_route_drops += tor.drops_no_route();
    h.slice_misses += tor.slice_misses();
    h.deferrals += tor.deferrals();
  }
  // Per-fault-class fabric drops come straight from the shared registry
  // cells the fabric increments — one source of truth, no parallel counter
  // plumbing between Monitor and OpticalFabric.
  const auto& m = net.sim().metrics();
  h.failed_drops = m.counter_value("fabric.drops", {{"class", "failed"}});
  h.corrupt_drops = m.counter_value("fabric.drops", {{"class", "corrupt"}});
  h.no_circuit_drops =
      m.counter_value("fabric.drops", {{"class", "no_circuit"}});
  h.guard_drops = m.counter_value("fabric.drops", {{"class", "guard"}});
  h.boundary_drops = m.counter_value("fabric.drops", {{"class", "boundary"}});
  h.fabric_drops = h.failed_drops + h.corrupt_drops + h.no_circuit_drops +
                   h.guard_drops + h.boundary_drops;
  return h;
}

}  // namespace

Monitor::Monitor(core::Network& net, SimTime interval)
    : net_(net),
      interval_(interval),
      buffers_(static_cast<std::size_t>(net.num_tors())),
      utilization_(static_cast<std::size_t>(net.num_tors())),
      last_tx_bytes_(static_cast<std::size_t>(net.num_tors()), 0) {}

void Monitor::start() {
  if (started_) return;
  started_ = true;
  baseline_ = snapshot(net_);
  net_.sim().schedule_every(
      net_.sim().now() + interval_, interval_,
      [this]() {
        for (NodeId n = 0; n < net_.num_tors(); ++n) {
          auto& tor = net_.tor(n);
          const auto b = tor.buffer_bytes();
          buffers_[static_cast<std::size_t>(n)].add(static_cast<double>(b));
          all_.add(static_cast<double>(b));

          std::int64_t tx = 0;
          for (PortId p = 0; p < tor.num_uplinks(); ++p) {
            tx += tor.uplink_tx_bytes(p);
          }
          const std::int64_t delta =
              tx - last_tx_bytes_[static_cast<std::size_t>(n)];
          last_tx_bytes_[static_cast<std::size_t>(n)] = tx;
          const double capacity_bytes =
              net_.config().optical_bw / kBitsPerByte * interval_.sec() *
              static_cast<double>(tor.num_uplinks());
          utilization_[static_cast<std::size_t>(n)].add(
              capacity_bytes > 0 ? static_cast<double>(delta) / capacity_bytes
                                 : 0.0);
        }
      },
      "monitor");
}

Monitor::Health Monitor::health() const {
  const auto now = snapshot(net_);
  Health d;
  d.congestion_drops = now.congestion_drops - baseline_.congestion_drops;
  d.no_route_drops = now.no_route_drops - baseline_.no_route_drops;
  d.slice_misses = now.slice_misses - baseline_.slice_misses;
  d.deferrals = now.deferrals - baseline_.deferrals;
  d.fabric_drops = now.fabric_drops - baseline_.fabric_drops;
  d.failed_drops = now.failed_drops - baseline_.failed_drops;
  d.corrupt_drops = now.corrupt_drops - baseline_.corrupt_drops;
  d.no_circuit_drops = now.no_circuit_drops - baseline_.no_circuit_drops;
  d.guard_drops = now.guard_drops - baseline_.guard_drops;
  d.boundary_drops = now.boundary_drops - baseline_.boundary_drops;
  return d;
}

}  // namespace oo::services
