// Monitoring APIs (§4.2): buffer_usage() and bw_usage() telemetry sampled
// on an interval — network-health visibility beyond traffic volume.
#pragma once

#include <vector>

#include "common/stats.h"
#include "common/time.h"
#include "core/network.h"

namespace oo::services {

class Monitor {
 public:
  Monitor(core::Network& net, SimTime interval);

  void start();

  // Instantaneous queries (Tab. 1).
  std::int64_t buffer_usage(NodeId node) const {
    return net_.tor(node).buffer_bytes();
  }
  std::int64_t peak_buffer(NodeId node) const {
    return net_.tor(node).peak_buffer_bytes();
  }

  // Sampled series per node: switch buffer occupancy in bytes.
  const PercentileSampler& buffer_samples(NodeId node) const {
    return buffers_[static_cast<std::size_t>(node)];
  }
  // Aggregate over all nodes.
  const PercentileSampler& all_buffer_samples() const { return all_; }

  // Uplink utilization per node over each interval, as a fraction of the
  // optical line rate (bw_usage() of Tab. 1 as a sampled series).
  const PercentileSampler& utilization_samples(NodeId node) const {
    return utilization_[static_cast<std::size_t>(node)];
  }

  // Network-health counters (§4.1 "monitor network health"): deltas of the
  // switch drop/miss/deferral counters since monitoring began. Fabric drops
  // are also broken out per fault class so robustness studies can tell a
  // dark transceiver (failed) from a degraded one (corrupt) from ordinary
  // schedule misses (no_circuit/guard/boundary).
  struct Health {
    std::int64_t congestion_drops = 0;
    std::int64_t no_route_drops = 0;
    std::int64_t slice_misses = 0;
    std::int64_t deferrals = 0;
    std::int64_t fabric_drops = 0;
    std::int64_t failed_drops = 0;    // loss-of-signal (dark port) drops
    std::int64_t corrupt_drops = 0;   // BER-induced corruption drops
    std::int64_t no_circuit_drops = 0;
    std::int64_t guard_drops = 0;
    std::int64_t boundary_drops = 0;
  };
  Health health() const;

 private:
  core::Network& net_;
  SimTime interval_;
  std::vector<PercentileSampler> buffers_;
  std::vector<PercentileSampler> utilization_;
  std::vector<std::int64_t> last_tx_bytes_;
  PercentileSampler all_;
  Health baseline_;
  bool started_ = false;
};

}  // namespace oo::services
