#include "services/sync_watchdog.h"

#include <algorithm>

#include "core/controller.h"
#include "core/quorum.h"

namespace oo::services {

SyncWatchdog::SyncWatchdog(core::Network& net, Config cfg)
    : net_(net),
      cfg_(cfg),
      desyncs_(&net.sim().metrics().counter("sync.desync_detected")),
      widenings_(&net.sim().metrics().counter("sync.guard_widenings")),
      quarantines_(&net.sim().metrics().counter("sync.quarantines")),
      readmissions_(&net.sim().metrics().counter("sync.readmissions")),
      probes_ok_(
          &net.sim().metrics().counter("sync.probes", {{"result", "ok"}})),
      probes_lost_(
          &net.sim().metrics().counter("sync.probes", {{"result", "lost"}})),
      wrong_slice_seen_(
          &net.sim().metrics().counter("sync.symptoms_observed")) {}

void SyncWatchdog::set_controller(const core::Controller* ctl) {
  ctl_ = ctl;
  if (ctl_ != nullptr && probes_suppressed_ == nullptr) {
    // Registered only when leader-awareness is actually wired, so unwired
    // runs export exactly the pre-quorum registry.
    probes_suppressed_ = &net_.sim().metrics().counter(
        "watchdog.probes_suppressed_no_leader");
  }
}

void SyncWatchdog::start() {
  if (started_) return;
  started_ = true;
  nodes_.assign(static_cast<std::size_t>(net_.num_tors()), NodeState{});
  for (auto& st : nodes_) st.backoff = cfg_.probe_backoff_initial;
  widen_step_ = cfg_.widen_step > SimTime::zero()
                    ? cfg_.widen_step
                    : net_.config().sync_error * 2;
  beacon_timeout_ = cfg_.beacon_timeout > SimTime::zero()
                        ? cfg_.beacon_timeout
                        : net_.config().resync_interval * 3;
  alive_ = std::make_shared<bool>(true);
  std::weak_ptr<bool> weak = alive_;
  // Fabric violations name the offending *sender* exactly: full ladder.
  net_.optical().on_timing_violation([this, weak](NodeId n, SimTime at) {
    if (auto a = weak.lock(); a && *a) record_symptom(n, at, true);
  });
  // Arrival symptoms are self-attributed by the observer: widen-only.
  net_.set_wrong_slice_arrival_hook([this, weak](NodeId n, SimTime at) {
    if (auto a = weak.lock(); a && *a) record_symptom(n, at, false);
  });
  check_handle_ = net_.sim().schedule_every(
      cfg_.check_interval, cfg_.check_interval, [this]() { check_round(); },
      "sync.watchdog");
}

void SyncWatchdog::stop() {
  if (!started_) return;
  started_ = false;
  if (alive_) *alive_ = false;
  alive_.reset();
  check_handle_.cancel();
}

std::vector<NodeId> SyncWatchdog::quarantined_nodes() const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].state == TorState::Quarantined) {
      out.push_back(static_cast<NodeId>(i));
    }
  }
  return out;
}

void SyncWatchdog::record_symptom(NodeId n, SimTime at,
                                  bool sender_attributed) {
  if (!started_) return;
  // While the fabric is knowingly mixed-epoch (a deploy transaction has
  // committed on some ToRs but not others), wrong-slice arrivals are the
  // *control plane's* fault, not a clock problem at the observer — charging
  // them here would quarantine healthy nodes. Sender-attributed fabric
  // violations still count: a drifting clock misbehaves on any epoch.
  if (!sender_attributed && net_.epoch_mixed()) return;
  auto& st = nodes_[static_cast<std::size_t>(n)];
  // A quarantined node is already off the optical fabric; stray symptoms
  // (in-flight launches racing the flush) must not poison its clean count.
  if (st.state == TorState::Quarantined) return;
  wrong_slice_seen_->inc();
  st.symptom_since_check = true;
  if (!st.detected && st.window.empty()) st.first_symptom = at;
  st.window.push_back(at);
  const SimTime horizon = at - cfg_.violation_window;
  st.window.erase(std::remove_if(st.window.begin(), st.window.end(),
                                 [horizon](SimTime t) { return t < horizon; }),
                  st.window.end());
  if (sender_attributed) st.sender_evidence = true;
  if (static_cast<int>(st.window.size()) >= cfg_.violation_threshold &&
      !st.escalate_pending) {
    st.escalate_pending = true;
    // Deferred one event: this path is reached synchronously from inside
    // OpticalFabric::transmit / TorSwitch arrival handling.
    std::weak_ptr<bool> weak = alive_;
    net_.sim().schedule_at(
        at,
        [this, n, weak]() {
          if (auto a = weak.lock(); a && *a) escalate(n);
        },
        "sync.escalate");
  }
}

void SyncWatchdog::escalate(NodeId n) {
  auto& st = nodes_[static_cast<std::size_t>(n)];
  st.escalate_pending = false;
  if (st.state == TorState::Quarantined) return;
  const SimTime now = net_.sim().now();
  const auto symptoms = static_cast<std::int64_t>(st.window.size());
  if (!st.detected) {
    st.detected = true;
    desyncs_->inc();
    const SimTime ttd = now - st.first_symptom;
    time_to_detect_us_.add(ttd.us());
    if (auto* tr = net_.sim().recorder()) {
      tr->desync(now, n, symptoms, ttd.ns());
    }
  }
  st.clean_rounds = 0;
  if (st.widenings < cfg_.max_widenings) {
    ++st.widenings;
    net_.set_node_guard_extra(n, widen_step_ * st.widenings);
    widenings_->inc();
    if (auto* tr = net_.sim().recorder()) {
      tr->guard_widen(now, n, net_.node_guard_extra(n).ns(), st.widenings);
    }
    note_transition(n, st.state, TorState::Widened);
    st.state = TorState::Widened;
  } else if (st.sender_evidence && net_.electrical() != nullptr) {
    net_.set_node_quarantined(n, true);
    quarantines_->inc();
    if (auto* tr = net_.sim().recorder()) tr->quarantine(now, n, symptoms);
    note_transition(n, st.state, TorState::Quarantined);
    st.state = TorState::Quarantined;
    st.quarantined_at = now;
    if (quarantine_hook_) quarantine_hook_(n, true);
  }
  // Each rung of the ladder demands fresh evidence.
  st.window.clear();
  st.sender_evidence = false;
}

void SyncWatchdog::check_round() {
  if (!started_) return;
  const SimTime now = net_.sim().now();
  auto& clock = net_.clock();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto n = static_cast<NodeId>(i);
    auto& st = nodes_[i];
    const SimTime last = clock.last_resync(n);
    const bool fresh = last != st.last_seen_resync;
    if (fresh) {
      st.last_seen_resync = last;
      st.stale_flagged = false;
      st.backoff = cfg_.probe_backoff_initial;
    }
    // Beacon staleness: flag once per outage (widen-only evidence) and keep
    // re-probing with capped exponential backoff until one gets through.
    if (beacon_timeout_ > SimTime::zero() &&
        now - last > beacon_timeout_) {
      if (!st.stale_flagged) {
        st.stale_flagged = true;
        record_symptom(n, now, false);
      }
      if (!st.probe_pending) {
        st.probe_pending = true;
        std::weak_ptr<bool> weak = alive_;
        net_.sim().schedule_at(
            now,
            [this, n, weak]() {
              if (auto a = weak.lock(); a && *a) probe(n);
            },
            "sync.probe");
      }
    }
    // Readmission: a clean round is a fresh beacon that measured the clock
    // back inside the bound, with no symptoms since the last scan.
    if (st.state != TorState::Healthy) {
      if (st.symptom_since_check) {
        st.clean_rounds = 0;
      } else if (fresh && clock.within_bound(n, now)) {
        if (++st.clean_rounds >= cfg_.readmit_clean_rounds) readmit(n);
      }
    }
    st.symptom_since_check = false;
  }
}

void SyncWatchdog::probe(NodeId n) {
  auto& st = nodes_[static_cast<std::size_t>(n)];
  st.probe_pending = false;
  if (!started_) return;
  const SimTime now = net_.sim().now();
  // A scheduled beacon may have landed while this probe waited out its
  // backoff; don't spend a probe on a freshly disciplined clock.
  if (now - net_.clock().last_resync(n) <= beacon_timeout_) return;
  // Probes are answered by the controller; with it crashed — or with a
  // quorum mid-election — there is no leader to answer. Suppress the probe
  // and retry after the backoff instead of counting a spurious loss.
  if (ctl_ != nullptr &&
      (ctl_->crashed() ||
       (ctl_->quorum() != nullptr && ctl_->quorum()->started() &&
        !ctl_->quorum()->has_leader()))) {
    probes_suppressed_->inc();
    st.backoff = std::min(st.backoff * 2, cfg_.probe_backoff_cap);
    st.probe_pending = true;
    std::weak_ptr<bool> weak = alive_;
    net_.sim().schedule_at(
        now + st.backoff,
        [this, n, weak]() {
          if (auto a = weak.lock(); a && *a) probe(n);
        },
        "sync.probe");
    return;
  }
  if (net_.probe_beacon(n)) {
    probes_ok_->inc();
    st.backoff = cfg_.probe_backoff_initial;
    return;
  }
  probes_lost_->inc();
  st.backoff = std::min(st.backoff * 2, cfg_.probe_backoff_cap);
  st.probe_pending = true;
  std::weak_ptr<bool> weak = alive_;
  net_.sim().schedule_at(
      now + st.backoff,
      [this, n, weak]() {
        if (auto a = weak.lock(); a && *a) probe(n);
      },
      "sync.probe");
}

void SyncWatchdog::readmit(NodeId n) {
  auto& st = nodes_[static_cast<std::size_t>(n)];
  const SimTime now = net_.sim().now();
  if (st.state == TorState::Quarantined) {
    net_.set_node_quarantined(n, false);
    readmissions_->inc();
    const SimTime held = now - st.quarantined_at;
    quarantine_us_.add(held.us());
    if (auto* tr = net_.sim().recorder()) tr->readmit(now, n, held.ns());
    if (quarantine_hook_) quarantine_hook_(n, false);
  }
  net_.set_node_guard_extra(n, SimTime::zero());
  note_transition(n, st.state, TorState::Healthy);
  st.state = TorState::Healthy;
  st.widenings = 0;
  st.detected = false;
  st.clean_rounds = 0;
  st.window.clear();
  st.sender_evidence = false;
}

}  // namespace oo::services
