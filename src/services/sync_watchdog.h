// Sync watchdog: detection of desynchronized ToR clocks and a graceful,
// per-node degradation ladder (the recovery half of the clock fault domain;
// see core/sync.h for the injection half).
//
// Detection uses *observable symptoms only* — the watchdog never reads a
// node's true clock offset, because no real controller could:
//   - sender-attributed fabric timing violations (boundary/guard drops and
//     wrong-slice launches reported by OpticalFabric::on_timing_violation);
//     these name the drifted sender exactly and can escalate all the way
//     to quarantine;
//   - self-attributed wrong-slice *arrivals* (Network's arrival hook): the
//     observer cannot tell whether the sender or its own rotation drifted,
//     so these only ever widen the observer's guard band — never quarantine
//     a node on another node's say-so;
//   - beacon staleness: a node whose last resync is older than the timeout
//     is re-probed with capped exponential backoff, and flagged (widen-only
//     evidence) until a beacon gets through.
//
// Response is a three-state per-ToR ladder:
//   Healthy -> Widened: each time the symptom count inside the sliding
//     window crosses the threshold, the node's effective guard band grows
//     by one widen_step on both window edges (duty cycle shrinks, §7
//     trade), up to max_widenings steps.
//   Widened -> Quarantined: further sender-attributed evidence past the
//     last widening fences the node off the optical fabric entirely;
//     traffic from/to it rides the electrical fabric (hybrid architectures
//     only — without one the ladder tops out at max widening).
//   -> Healthy: after readmit_clean_rounds consecutive check rounds with a
//     fresh in-bound beacon and zero symptoms, the node is re-admitted and
//     its guard override cleared.
//
// All decisions are deferred one simulator event, so escalations triggered
// from inside fabric/drain callbacks never re-enter the structures that
// fired them. Identical seeds yield identical detection times, quarantine
// sets, and traces.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "core/network.h"

namespace oo::core {
class Controller;
}

namespace oo::services {

class SyncWatchdog {
 public:
  struct Config {
    // Cadence of the staleness / readmission scan.
    SimTime check_interval = SimTime::micros(50);
    // Symptoms within `violation_window` needed to take the next rung.
    int violation_threshold = 3;
    SimTime violation_window = SimTime::micros(200);
    // Guard growth per widening; zero derives 2 x sync_error at start().
    SimTime widen_step = SimTime::zero();
    int max_widenings = 3;
    // Beacon staleness before the node is flagged and re-probed; zero
    // derives 3 x resync_interval at start().
    SimTime beacon_timeout = SimTime::zero();
    // Re-probe backoff (doubles per lost probe, capped).
    SimTime probe_backoff_initial = SimTime::micros(50);
    SimTime probe_backoff_cap = SimTime::micros(800);
    // Consecutive clean rounds (fresh in-bound beacon, no symptoms) before
    // a widened/quarantined node is restored.
    int readmit_clean_rounds = 3;
  };

  enum class TorState { Healthy, Widened, Quarantined };

  SyncWatchdog(core::Network& net, Config cfg);
  explicit SyncWatchdog(core::Network& net)
      : SyncWatchdog(net, Config{}) {}

  // Invoked on quarantine entry (true) and re-admission (false) — the wiring
  // point for services that shift load off a fenced node, e.g.
  // HybridSteering::set_node_degraded so elephant flows stop targeting the
  // optical calendar of a quarantined ToR at the *source host*.
  using QuarantineFn = std::function<void(NodeId, bool)>;
  void set_quarantine_hook(QuarantineFn fn) {
    quarantine_hook_ = std::move(fn);
  }

  // Invoked on every ladder transition (from != to) — the invariant
  // monitor's tap for checking ladder legality (a node may only move
  // Healthy->Widened, Widened->Quarantined, or {Widened,Quarantined}->
  // Healthy via re-admission). Null (the default) costs one branch.
  using TransitionFn = std::function<void(NodeId, TorState from, TorState to)>;
  void set_transition_hook(TransitionFn fn) {
    transition_hook_ = std::move(fn);
  }

  // Wire the watchdog to the control plane so staleness probes route to the
  // current quorum leader: while the controller is crashed or no leader is
  // elected, probes are suppressed (and counted) instead of being burned on
  // a control plane that cannot answer. Optional — an unwired watchdog (or
  // a replicas=1 run) behaves exactly as before.
  void set_controller(const core::Controller* ctl);

  // Subscribe to fabric violations + arrival symptoms and start the scan.
  void start();
  // Stop scanning and drop subscriptions. In-effect widenings/quarantines
  // stay as they are (the operator decided to fly blind, not to re-admit).
  void stop();
  bool running() const { return started_; }

  TorState state(NodeId n) const {
    return nodes_[static_cast<std::size_t>(n)].state;
  }
  std::vector<NodeId> quarantined_nodes() const;

  // ---- robustness telemetry ----
  std::int64_t desyncs_detected() const { return desyncs_->value(); }
  std::int64_t guard_widenings() const { return widenings_->value(); }
  std::int64_t quarantines() const { return quarantines_->value(); }
  std::int64_t readmissions() const { return readmissions_->value(); }
  std::int64_t probes_ok() const { return probes_ok_->value(); }
  std::int64_t probes_lost() const { return probes_lost_->value(); }
  // First symptom to first response, per detected desync (microseconds).
  const PercentileSampler& time_to_detect_us() const {
    return time_to_detect_us_;
  }
  // Quarantine-entry to re-admission, per quarantine (microseconds).
  const PercentileSampler& quarantine_us() const { return quarantine_us_; }

 private:
  struct NodeState {
    TorState state = TorState::Healthy;
    std::vector<SimTime> window;  // recent symptom timestamps
    SimTime first_symptom = SimTime::zero();
    bool detected = false;
    bool escalate_pending = false;
    // Whether the current window holds sender-attributed (fabric) evidence
    // — the only kind allowed to push past widening into quarantine.
    bool sender_evidence = false;
    bool symptom_since_check = false;
    int widenings = 0;
    int clean_rounds = 0;
    SimTime quarantined_at = SimTime::zero();
    // Beacon staleness tracking.
    SimTime last_seen_resync = SimTime::zero();
    bool stale_flagged = false;
    bool probe_pending = false;
    SimTime backoff = SimTime::zero();
  };

  void record_symptom(NodeId n, SimTime at, bool sender_attributed);
  void escalate(NodeId n);
  void check_round();
  void probe(NodeId n);
  void readmit(NodeId n);
  void note_transition(NodeId n, TorState from, TorState to) {
    if (transition_hook_ && from != to) transition_hook_(n, from, to);
  }

  core::Network& net_;
  Config cfg_;
  const core::Controller* ctl_ = nullptr;  // optional leader-awareness
  telemetry::Counter* probes_suppressed_ = nullptr;  // registered on wiring
  std::vector<NodeState> nodes_;
  SimTime widen_step_ = SimTime::zero();
  SimTime beacon_timeout_ = SimTime::zero();
  std::shared_ptr<bool> alive_;  // gates the fabric/network subscriptions
  sim::EventHandle check_handle_;
  QuarantineFn quarantine_hook_;
  TransitionFn transition_hook_;
  bool started_ = false;
  telemetry::Counter* desyncs_;
  telemetry::Counter* widenings_;
  telemetry::Counter* quarantines_;
  telemetry::Counter* readmissions_;
  telemetry::Counter* probes_ok_;
  telemetry::Counter* probes_lost_;
  telemetry::Counter* wrong_slice_seen_;
  PercentileSampler time_to_detect_us_;
  PercentileSampler quarantine_us_;
};

}  // namespace oo::services
