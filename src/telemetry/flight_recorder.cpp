#include "telemetry/flight_recorder.h"

namespace oo::telemetry {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::PacketEnqueue:
      return "enqueue";
    case EventKind::PacketDequeue:
      return "dequeue";
    case EventKind::PacketDrop:
      return "drop";
    case EventKind::SliceMiss:
      return "slice_miss";
    case EventKind::CircuitUp:
      return "circuit_up";
    case EventKind::CircuitDown:
      return "circuit_down";
    case EventKind::SliceRotation:
      return "slice_rotation";
    case EventKind::GuardOpen:
      return "guard_open";
    case EventKind::GuardClose:
      return "guard_close";
    case EventKind::ControlDeploy:
      return "control_deploy";
    case EventKind::ControlRetry:
      return "control_retry";
    case EventKind::FaultInject:
      return "fault_inject";
    case EventKind::FaultRepair:
      return "fault_repair";
    case EventKind::WrongSlice:
      return "wrong_slice";
    case EventKind::BeaconLost:
      return "beacon_lost";
    case EventKind::ClockDesync:
      return "clock_desync";
    case EventKind::GuardWiden:
      return "guard_widen";
    case EventKind::Quarantine:
      return "quarantine";
    case EventKind::Readmit:
      return "readmit";
    case EventKind::TxnPrepare:
      return "txn_prepare";
    case EventKind::TxnAck:
      return "txn_ack";
    case EventKind::TxnCommit:
      return "txn_commit";
    case EventKind::TxnAbort:
      return "txn_abort";
    case EventKind::TxnRollback:
      return "txn_rollback";
    case EventKind::TxnFence:
      return "txn_fence";
    case EventKind::CtlCrash:
      return "ctl_crash";
    case EventKind::CtlResync:
      return "ctl_resync";
    case EventKind::ElectionStart:
      return "election_start";
    case EventKind::LeaderElected:
      return "leader_elected";
    case EventKind::QuorumReplicate:
      return "quorum_replicate";
    case EventKind::QuorumStepDown:
      return "quorum_step_down";
    case EventKind::QuorumFailover:
      return "quorum_failover";
    case EventKind::TermFence:
      return "term_fence";
    case EventKind::FlowStart:
      return "flow_start";
    case EventKind::FlowComplete:
      return "flow_complete";
    case EventKind::FluidRecompute:
      return "fluid_recompute";
    case EventKind::InvariantViolation:
      return "invariant_violation";
    case EventKind::ProbeSend:
      return "probe_send";
    case EventKind::ProbeEcho:
      return "probe_echo";
    case EventKind::ProbeTimeout:
      return "probe_timeout";
    case EventKind::HealthSuspect:
      return "health_suspect";
    case EventKind::HealthDegrade:
      return "health_degrade";
    case EventKind::HealthQuarantine:
      return "health_quarantine";
    case EventKind::HealthReadmit:
      return "health_readmit";
  }
  return "?";
}

const char* drop_reason_name(DropReason r) {
  switch (r) {
    case DropReason::None:
      return "none";
    case DropReason::Congestion:
      return "congestion";
    case DropReason::NoRoute:
      return "no_route";
    case DropReason::NoCircuit:
      return "no_circuit";
    case DropReason::Guard:
      return "guard";
    case DropReason::Boundary:
      return "boundary";
    case DropReason::Failed:
      return "failed";
    case DropReason::Corrupt:
      return "corrupt";
    case DropReason::Electrical:
      return "electrical";
    case DropReason::HostSegq:
      return "host_segq";
    case DropReason::Gray:
      return "gray";
  }
  return "?";
}

std::vector<TraceEvent> FlightRecorder::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(count_);
  for_each([&out](const TraceEvent& ev) { out.push_back(ev); });
  return out;
}

}  // namespace oo::telemetry
