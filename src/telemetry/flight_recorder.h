// Flight recorder: a fixed-capacity, overwrite-oldest ring buffer of typed
// trace events. Components emit through inline hooks that are a single
// branch when no recorder is attached (Simulator::recorder() == nullptr),
// so an untraced run pays essentially nothing. The buffer is sized once at
// construction and never allocates afterwards, making it safe to keep
// armed in long runs: it always holds the last `capacity` events — the
// post-mortem window before a drop or failure.
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/trace_event.h"

namespace oo::telemetry {

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 1 << 16)
      : buf_(capacity ? capacity : 1) {}

  std::size_t capacity() const { return buf_.size(); }
  // Events currently retained (<= capacity).
  std::size_t size() const { return count_; }
  // Events ever recorded, including those overwritten.
  std::int64_t total_recorded() const { return total_; }
  // Stable storage pointer (the ring never reallocates; tests assert this).
  const TraceEvent* storage() const { return buf_.data(); }

  void clear() {
    head_ = 0;
    count_ = 0;
    total_ = 0;
  }

  void record(const TraceEvent& ev) {
    const std::size_t cap = buf_.size();
    if (count_ == cap) {
      buf_[head_] = ev;  // overwrite the oldest in place
      head_ = (head_ + 1) % cap;
    } else {
      buf_[(head_ + count_) % cap] = ev;
      ++count_;
    }
    ++total_;
  }

  // ---- typed emission helpers ----
  void packet_enqueue(SimTime ts, NodeId node, PortId port, std::int64_t pkt,
                      std::int64_t bytes) {
    record({ts, EventKind::PacketEnqueue, DropReason::None, node, port, pkt,
            bytes});
  }
  void packet_dequeue(SimTime ts, NodeId node, PortId port, std::int64_t pkt,
                      std::int64_t bytes) {
    record({ts, EventKind::PacketDequeue, DropReason::None, node, port, pkt,
            bytes});
  }
  void drop(SimTime ts, DropReason why, NodeId node, PortId port,
            std::int64_t pkt, std::int64_t bytes) {
    record({ts, EventKind::PacketDrop, why, node, port, pkt, bytes});
  }
  void slice_miss(SimTime ts, NodeId node, PortId port, std::int64_t pkt) {
    record({ts, EventKind::SliceMiss, DropReason::None, node, port, pkt, 0});
  }
  void circuit(SimTime ts, bool up, NodeId node, PortId port) {
    record({ts, up ? EventKind::CircuitUp : EventKind::CircuitDown,
            DropReason::None, node, port, 0, 0});
  }
  void slice_rotation(SimTime ts, NodeId node, std::int64_t abs_slice) {
    record({ts, EventKind::SliceRotation, DropReason::None, node, -1,
            abs_slice, 0});
  }
  void guard_open(SimTime ts, NodeId node, std::int64_t abs_slice,
                  std::int64_t guard_ns) {
    record({ts, EventKind::GuardOpen, DropReason::None, node, -1, abs_slice,
            guard_ns});
  }
  void guard_close(SimTime ts, NodeId node, std::int64_t abs_slice) {
    record({ts, EventKind::GuardClose, DropReason::None, node, -1, abs_slice,
            0});
  }
  void control_deploy(SimTime ts, bool routing, bool accepted) {
    record({ts, EventKind::ControlDeploy, DropReason::None, -1, -1,
            routing ? 1 : 0, accepted ? 1 : 0});
  }
  void control_retry(SimTime ts, std::int64_t attempt) {
    record({ts, EventKind::ControlRetry, DropReason::None, -1, -1, attempt,
            0});
  }
  void fault(SimTime ts, bool inject, NodeId node, PortId port,
             std::int64_t kind) {
    record({ts, inject ? EventKind::FaultInject : EventKind::FaultRepair,
            DropReason::None, node, port, kind, 0});
  }
  void wrong_slice(SimTime ts, NodeId node, PortId port, std::int64_t pkt,
                   std::int64_t intended_abs_slice) {
    record({ts, EventKind::WrongSlice, DropReason::None, node, port, pkt,
            intended_abs_slice});
  }
  void beacon_lost(SimTime ts, NodeId node, bool probe) {
    record({ts, EventKind::BeaconLost, DropReason::None, node, -1,
            probe ? 1 : 0, 0});
  }
  void desync(SimTime ts, NodeId node, std::int64_t symptoms,
              std::int64_t detect_ns) {
    record({ts, EventKind::ClockDesync, DropReason::None, node, -1, symptoms,
            detect_ns});
  }
  void guard_widen(SimTime ts, NodeId node, std::int64_t extra_ns,
                   std::int64_t ordinal) {
    record({ts, EventKind::GuardWiden, DropReason::None, node, -1, extra_ns,
            ordinal});
  }
  void quarantine(SimTime ts, NodeId node, std::int64_t symptoms) {
    record({ts, EventKind::Quarantine, DropReason::None, node, -1, symptoms,
            0});
  }
  void readmit(SimTime ts, NodeId node, std::int64_t quarantined_ns) {
    record({ts, EventKind::Readmit, DropReason::None, node, -1,
            quarantined_ns, 0});
  }
  // Transactional-deploy lifecycle (core::Controller). Controller-scoped
  // events carry node == -1; per-ToR events name the agent's node.
  void txn_prepare(SimTime ts, std::int64_t epoch, std::int64_t quorum) {
    record({ts, EventKind::TxnPrepare, DropReason::None, -1, -1, epoch,
            quorum});
  }
  void txn_ack(SimTime ts, NodeId node, std::int64_t epoch, bool ok) {
    record({ts, EventKind::TxnAck, DropReason::None, node, -1, epoch,
            ok ? 1 : 0});
  }
  void txn_commit(SimTime ts, std::int64_t epoch,
                  std::int64_t activation_abs) {
    record({ts, EventKind::TxnCommit, DropReason::None, -1, -1, epoch,
            activation_abs});
  }
  void txn_abort(SimTime ts, std::int64_t epoch, std::int64_t acks) {
    record({ts, EventKind::TxnAbort, DropReason::None, -1, -1, epoch, acks});
  }
  void txn_rollback(SimTime ts, NodeId node, std::int64_t epoch) {
    record({ts, EventKind::TxnRollback, DropReason::None, node, -1, epoch,
            0});
  }
  void txn_fence(SimTime ts, NodeId node, std::int64_t stale_epoch,
                 std::int64_t committed_epoch) {
    record({ts, EventKind::TxnFence, DropReason::None, node, -1, stale_epoch,
            committed_epoch});
  }
  void ctl_crash(SimTime ts) {
    record({ts, EventKind::CtlCrash, DropReason::None, -1, -1, 0, 0});
  }
  void ctl_resync(SimTime ts, std::int64_t committed_epoch,
                  std::int64_t stragglers) {
    record({ts, EventKind::CtlResync, DropReason::None, -1, -1,
            committed_epoch, stragglers});
  }
  // Controller-quorum lifecycle (core::ControllerQuorum). Replica-scoped
  // events reuse the node field for the replica index.
  void election_start(SimTime ts, int replica, std::int64_t term) {
    record({ts, EventKind::ElectionStart, DropReason::None, replica, -1, term,
            0});
  }
  void leader_elected(SimTime ts, int replica, std::int64_t term) {
    record({ts, EventKind::LeaderElected, DropReason::None, replica, -1, term,
            0});
  }
  void quorum_replicate(SimTime ts, std::int64_t epoch, std::int64_t index) {
    record({ts, EventKind::QuorumReplicate, DropReason::None, -1, -1, epoch,
            index});
  }
  void quorum_step_down(SimTime ts, int replica, std::int64_t higher_term) {
    record({ts, EventKind::QuorumStepDown, DropReason::None, replica, -1,
            higher_term, 0});
  }
  void quorum_failover(SimTime ts, std::int64_t term,
                       std::int64_t max_epoch) {
    record({ts, EventKind::QuorumFailover, DropReason::None, -1, -1, term,
            max_epoch});
  }
  void term_fence(SimTime ts, NodeId node, std::int64_t stale_term,
                  std::int64_t term_seen) {
    record({ts, EventKind::TermFence, DropReason::None, node, -1, stale_term,
            term_seen});
  }
  // Traffic-engine flow lifecycle (src/traffic/). `fluid` selects the
  // fidelity the flow runs at: 0 = packet-level transport, 1 = fluid
  // flow-level transfer.
  void flow_start(SimTime ts, NodeId src_tor, bool fluid, std::int64_t flow,
                  std::int64_t bytes) {
    record({ts, EventKind::FlowStart, DropReason::None, src_tor,
            fluid ? 1 : 0, flow, bytes});
  }
  void flow_complete(SimTime ts, NodeId src_tor, bool fluid,
                     std::int64_t flow, std::int64_t fct_ns) {
    record({ts, EventKind::FlowComplete, DropReason::None, src_tor,
            fluid ? 1 : 0, flow, fct_ns});
  }
  // Chaos invariant monitor tripped (src/chaos/invariants.h); `ordinal`
  // indexes the monitor's violation list holding the full description.
  void invariant_violation(SimTime ts, NodeId node, std::int64_t ordinal) {
    record({ts, EventKind::InvariantViolation, DropReason::None,
            node, -1, ordinal, 0});
  }

  void fluid_recompute(SimTime ts, std::int64_t active,
                       std::int64_t rate_mbps) {
    record({ts, EventKind::FluidRecompute, DropReason::None, -1, -1, active,
            rate_mbps});
  }

  // Active-probe lifecycle (transport::UdpProbe): `target` reuses the port
  // field for the responder ToR so a probe pair reads as one track lane.
  void probe_send(SimTime ts, NodeId prober, NodeId target, std::int64_t seq) {
    record({ts, EventKind::ProbeSend, DropReason::None, prober, target, seq,
            0});
  }
  void probe_echo(SimTime ts, NodeId prober, NodeId target, std::int64_t seq,
                  std::int64_t rtt_ns) {
    record({ts, EventKind::ProbeEcho, DropReason::None, prober, target, seq,
            rtt_ns});
  }
  void probe_timeout(SimTime ts, NodeId prober, NodeId target,
                     std::int64_t seq, std::int64_t retry) {
    record({ts, EventKind::ProbeTimeout, DropReason::None, prober, target,
            seq, retry});
  }
  // Health-scanner remediation ladder (services::HealthScanner). Scores are
  // EWMA loss fractions scaled to milli-units so they fit an integer word.
  void health_suspect(SimTime ts, NodeId node, std::int64_t score_milli,
                      std::int64_t blamed_port) {
    record({ts, EventKind::HealthSuspect, DropReason::None, node, -1,
            score_milli, blamed_port});
  }
  void health_degrade(SimTime ts, NodeId node, std::int64_t probe_losses,
                      std::int64_t blamed_port) {
    record({ts, EventKind::HealthDegrade, DropReason::None, node, -1,
            probe_losses, blamed_port});
  }
  void health_quarantine(SimTime ts, NodeId node, std::int64_t score_milli,
                         std::int64_t blamed_port) {
    record({ts, EventKind::HealthQuarantine, DropReason::None, node, -1,
            score_milli, blamed_port});
  }
  void health_readmit(SimTime ts, NodeId node, std::int64_t suspect_ns) {
    record({ts, EventKind::HealthReadmit, DropReason::None, node, -1,
            suspect_ns, 0});
  }

  // Oldest-to-newest iteration without copying.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::size_t cap = buf_.size();
    for (std::size_t i = 0; i < count_; ++i) {
      fn(buf_[(head_ + i) % cap]);
    }
  }

  // Copy of the retained window, oldest first (export-time only; the hot
  // path never calls this).
  std::vector<TraceEvent> snapshot() const;

 private:
  std::vector<TraceEvent> buf_;
  std::size_t head_ = 0;   // index of the oldest retained event
  std::size_t count_ = 0;  // retained events
  std::int64_t total_ = 0;
};

}  // namespace oo::telemetry
