#include "telemetry/metrics.h"

#include <cstdio>

namespace oo::telemetry {

std::string MetricsRegistry::key(const std::string& name,
                                 const Labels& labels) {
  if (labels.empty()) return name;
  std::string k = name;
  k += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) k += ',';
    k += labels[i].first;
    k += '=';
    k += labels[i].second;
  }
  k += '}';
  return k;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[key(name, labels)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[key(name, labels)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

PercentileSampler& MetricsRegistry::histogram(const std::string& name,
                                              const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[key(name, labels)];
  if (!slot) slot = std::make_unique<PercentileSampler>();
  return *slot;
}

std::int64_t MetricsRegistry::counter_value(const std::string& name,
                                            const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(key(name, labels));
  return it != counters_.end() ? it->second->value() : 0;
}

double MetricsRegistry::gauge_value(const std::string& name,
                                    const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(key(name, labels));
  return it != gauges_.end() ? it->second->value() : 0.0;
}

const PercentileSampler* MetricsRegistry::find_histogram(
    const std::string& name, const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(key(name, labels));
  return it != histograms_.end() ? it->second.get() : nullptr;
}

std::string MetricsRegistry::csv() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "metric,value\n";
  char buf[96];
  for (const auto& [k, c] : counters_) {
    std::snprintf(buf, sizeof buf, ",%lld\n",
                  static_cast<long long>(c->value()));
    out += k;
    out += buf;
  }
  for (const auto& [k, g] : gauges_) {
    std::snprintf(buf, sizeof buf, ",%.6g\n", g->value());
    out += k;
    out += buf;
  }
  for (const auto& [k, h] : histograms_) {
    std::snprintf(buf, sizeof buf, ".count,%zu\n", h->count());
    out += k;
    out += buf;
    std::snprintf(buf, sizeof buf, ".p50,%.6g\n",
                  h->empty() ? 0.0 : h->percentile(50));
    out += k;
    out += buf;
    std::snprintf(buf, sizeof buf, ".p99,%.6g\n",
                  h->empty() ? 0.0 : h->percentile(99));
    out += k;
    out += buf;
    std::snprintf(buf, sizeof buf, ".max,%.6g\n",
                  h->empty() ? 0.0 : h->max());
    out += k;
    out += buf;
  }
  return out;
}

}  // namespace oo::telemetry
