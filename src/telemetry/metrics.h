// Metrics registry: named counters, gauges, and histograms with label
// support. Components register a metric once (typically in their
// constructor, via Simulator::metrics()) and keep the returned cell
// pointer, so the hot-path cost of an increment is identical to a plain
// member field — the registry only pays at registration and export time.
// Keys are `name` or `name{k=v,k2=v2}` with labels sorted by insertion
// order; label keys/values must not contain ',', '=', '{', '}' or '"'.
//
// Cells are relaxed atomics so shared counters (fabric delivery/drop
// totals, traffic flow counts) can be bumped from any worker lane of the
// sharded engine without a data race. Relaxed is enough: per-lane
// increments commute, and every read that matters happens in a serial
// phase ordered after the writes by the engine's barrier mutex, so final
// values are exact and deterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace oo::telemetry {

class Counter {
 public:
  void inc(std::int64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    // fetch_add for atomic<double> needs C++20 + hardware support; a CAS
    // loop keeps the cell portable (gauges are not hot-path cells).
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

using Labels = std::vector<std::pair<std::string, std::string>>;

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  // Movable so owners (e.g. CampaignRunner) can be returned by value; the
  // cell pointers already handed out stay valid (cells are individually
  // heap-allocated). Moving is a setup/teardown operation and must never
  // race lookups — the mutex guards lookups against each other, not
  // against a move.
  MetricsRegistry(MetricsRegistry&& o) noexcept
      : counters_(std::move(o.counters_)),
        gauges_(std::move(o.gauges_)),
        histograms_(std::move(o.histograms_)) {}
  MetricsRegistry& operator=(MetricsRegistry&& o) noexcept {
    counters_ = std::move(o.counters_);
    gauges_ = std::move(o.gauges_);
    histograms_ = std::move(o.histograms_);
    return *this;
  }

  // Find-or-create; the returned reference is stable for the registry's
  // lifetime (cells are individually heap-allocated). Lookups take the
  // registry mutex — transports registered mid-run from worker lanes (and
  // their rare rto/fast-retx lookups) stay race-free; increments on the
  // returned cell never touch the lock.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  PercentileSampler& histogram(const std::string& name,
                               const Labels& labels = {});

  // Read-only lookups; absent metrics read as zero / null.
  std::int64_t counter_value(const std::string& name,
                             const Labels& labels = {}) const;
  double gauge_value(const std::string& name, const Labels& labels = {}) const;
  const PercentileSampler* find_histogram(const std::string& name,
                                          const Labels& labels = {}) const;

  std::size_t num_metrics() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // Canonical key: `name` or `name{k=v,...}`.
  static std::string key(const std::string& name, const Labels& labels);

  // "metric,value" CSV rows sorted by key. Histograms expand to
  // `<key>.count/.p50/.p99/.max` rows.
  std::string csv() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<PercentileSampler>> histograms_;
};

}  // namespace oo::telemetry
