// Metrics registry: named counters, gauges, and histograms with label
// support. Components register a metric once (typically in their
// constructor, via Simulator::metrics()) and keep the returned cell
// pointer, so the hot-path cost of an increment is identical to a plain
// member field — the registry only pays at registration and export time.
// Keys are `name` or `name{k=v,k2=v2}` with labels sorted by insertion
// order; label keys/values must not contain ',', '=', '{', '}' or '"'.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace oo::telemetry {

class Counter {
 public:
  void inc(std::int64_t d = 1) { v_ += d; }
  void set(std::int64_t v) { v_ = v; }
  std::int64_t value() const { return v_; }

 private:
  std::int64_t v_ = 0;
};

class Gauge {
 public:
  void set(double v) { v_ = v; }
  void add(double d) { v_ += d; }
  double value() const { return v_; }

 private:
  double v_ = 0.0;
};

using Labels = std::vector<std::pair<std::string, std::string>>;

class MetricsRegistry {
 public:
  // Find-or-create; the returned reference is stable for the registry's
  // lifetime (cells are individually heap-allocated).
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  PercentileSampler& histogram(const std::string& name,
                               const Labels& labels = {});

  // Read-only lookups; absent metrics read as zero / null.
  std::int64_t counter_value(const std::string& name,
                             const Labels& labels = {}) const;
  double gauge_value(const std::string& name, const Labels& labels = {}) const;
  const PercentileSampler* find_histogram(const std::string& name,
                                          const Labels& labels = {}) const;

  std::size_t num_metrics() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // Canonical key: `name` or `name{k=v,...}`.
  static std::string key(const std::string& name, const Labels& labels);

  // "metric,value" CSV rows sorted by key. Histograms expand to
  // `<key>.count/.p50/.p99/.max` rows.
  std::string csv() const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<PercentileSampler>> histograms_;
};

}  // namespace oo::telemetry
