#include "telemetry/profiler.h"

#include <algorithm>
#include <cstdio>

namespace oo::telemetry {

std::vector<EventProfiler::Bucket> EventProfiler::buckets() const {
  std::vector<Bucket> out;
  out.reserve(buckets_.size());
  for (const auto& [tag, ew] : buckets_) {
    out.push_back({tag, ew.first, ew.second});
  }
  std::sort(out.begin(), out.end(), [](const Bucket& x, const Bucket& y) {
    if (x.wall_ns != y.wall_ns) return x.wall_ns > y.wall_ns;
    return x.tag < y.tag;
  });
  return out;
}

std::string EventProfiler::report() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "%-20s %12s %12s %10s %7s\n", "tag",
                "events", "wall_ms", "ns/event", "share");
  out += line;
  for (const auto& b : buckets()) {
    const double share =
        total_wall_ns_ > 0
            ? 100.0 * static_cast<double>(b.wall_ns) /
                  static_cast<double>(total_wall_ns_)
            : 0.0;
    const double per =
        b.events > 0
            ? static_cast<double>(b.wall_ns) / static_cast<double>(b.events)
            : 0.0;
    std::snprintf(line, sizeof line, "%-20s %12lld %12.3f %10.0f %6.1f%%\n",
                  b.tag.c_str(), static_cast<long long>(b.events),
                  static_cast<double>(b.wall_ns) / 1e6, per, share);
    out += line;
  }
  std::snprintf(line, sizeof line,
                "total: %lld events, %.3f ms wall, %.0f events/sec, peak "
                "queue depth %zu\n",
                static_cast<long long>(total_events_),
                static_cast<double>(total_wall_ns_) / 1e6, events_per_sec(),
                peak_queue_depth_);
  out += line;
  return out;
}

}  // namespace oo::telemetry
