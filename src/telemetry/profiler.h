// Event profiler: wall-clock cost of simulator event dispatch, bucketed by
// the component tag passed at scheduling time. Attached to a Simulator via
// set_profiler(); when absent, dispatch skips the steady_clock reads
// entirely. Also tracks peak event-queue depth and end-to-end events/sec,
// answering "where does a run's wall time go?" without an external profiler.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace oo::telemetry {

class EventProfiler {
 public:
  struct Bucket {
    std::string tag;
    std::int64_t events = 0;
    std::int64_t wall_ns = 0;
  };

  // Record one dispatched event. `tag` may be null (bucketed as "untagged").
  void add(const char* tag, std::int64_t wall_ns) {
    auto& b = buckets_[tag ? tag : "untagged"];
    ++b.first;
    b.second += wall_ns;
    ++total_events_;
    total_wall_ns_ += wall_ns;
  }

  void sample_queue_depth(std::size_t depth) {
    if (depth > peak_queue_depth_) peak_queue_depth_ = depth;
  }

  std::int64_t total_events() const { return total_events_; }
  std::int64_t total_wall_ns() const { return total_wall_ns_; }
  std::size_t peak_queue_depth() const { return peak_queue_depth_; }

  double events_per_sec() const {
    return total_wall_ns_ > 0
               ? static_cast<double>(total_events_) * 1e9 /
                     static_cast<double>(total_wall_ns_)
               : 0.0;
  }

  // Buckets sorted by total wall time, costliest first.
  std::vector<Bucket> buckets() const;

  // Human-readable table: tag, events, total ms, ns/event, % of wall.
  std::string report() const;

  void clear() {
    buckets_.clear();
    total_events_ = 0;
    total_wall_ns_ = 0;
    peak_queue_depth_ = 0;
  }

 private:
  std::map<std::string, std::pair<std::int64_t, std::int64_t>> buckets_;
  std::int64_t total_events_ = 0;
  std::int64_t total_wall_ns_ = 0;
  std::size_t peak_queue_depth_ = 0;
};

}  // namespace oo::telemetry
