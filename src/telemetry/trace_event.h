// Typed flight-recorder events. A TraceEvent is a fixed-size POD so the
// recorder's ring buffer never allocates after construction; the `a`/`b`
// payload words are interpreted per kind (packet id, byte count, absolute
// slice, fault class, ...). Sim-time stamped at emission, so a trace is a
// total order of what the simulator actually did.
#pragma once

#include <cstdint>

#include "common/ids.h"
#include "common/time.h"

namespace oo::telemetry {

enum class EventKind : std::uint8_t {
  PacketEnqueue,   // node/port, a = packet id, b = bytes
  PacketDequeue,   // node/port, a = packet id, b = bytes
  PacketDrop,      // node/port, a = packet id, b = bytes, reason set
  SliceMiss,       // packet wrapped past its slice and is re-routed
  CircuitUp,       // light restored on (node, port)
  CircuitDown,     // light lost on (node, port)
  SliceRotation,   // node, a = absolute slice index
  GuardOpen,       // node, a = absolute slice, b = guard duration ns
  GuardClose,      // node, a = absolute slice
  ControlDeploy,   // a = 0 topo / 1 routing, b = 1 accepted / 0 rejected
  ControlRetry,    // recovery backoff retry, a = retry ordinal
  FaultInject,     // node/port, a = services::FaultKind ordinal
  FaultRepair,     // node/port, a = services::FaultKind ordinal
  WrongSlice,      // node/port, a = packet id, b = intended abs slice
  BeaconLost,      // node, a = 1 probe / 0 scheduled round
  ClockDesync,     // node, a = symptom count, b = time-to-detect ns
  GuardWiden,      // node, a = new extra guard ns, b = widen ordinal
  Quarantine,      // node, a = symptom count at escalation
  Readmit,         // node, a = quarantine duration ns
  TxnPrepare,      // a = epoch, b = nodes in the quorum
  TxnAck,          // node, a = epoch, b = 1 ack / 0 nack
  TxnCommit,       // a = epoch, b = activation abs slice (-1 = immediate)
  TxnAbort,        // a = epoch, b = acks gathered before the abort
  TxnRollback,     // node, a = epoch rolled back (staged state discarded)
  TxnFence,        // node, a = stale epoch fenced, b = node's committed epoch
  CtlCrash,        // controller lost volatile transaction state
  CtlResync,       // a = committed epoch reconstructed from ToR reports
  ElectionStart,   // node = replica, a = term the candidacy opens
  LeaderElected,   // node = replica, a = term it leads
  QuorumReplicate, // a = epoch logged, b = log index
  QuorumStepDown,  // node = replica, a = higher term observed
  QuorumFailover,  // a = new leader's term, b = max logged epoch
  TermFence,       // node, a = stale term rejected, b = node's term watermark
  FlowStart,       // node = src ToR, port = fidelity (0 packet / 1 fluid),
                   // a = flow id, b = flow bytes
  FlowComplete,    // node = src ToR, port = fidelity, a = flow id, b = fct ns
  FluidRecompute,  // a = active fluid flows, b = aggregate rate (Mbps)
  InvariantViolation,  // chaos monitor tripped; a = violation ordinal
  ProbeSend,       // node = prober ToR, port = target ToR, a = probe seq
  ProbeEcho,       // node = prober ToR, port = target ToR, a = seq, b = rtt ns
  ProbeTimeout,    // node = prober ToR, port = target ToR, a = seq, b = retry
  HealthSuspect,   // node, a = anomaly score milli-units, b = blamed port
  HealthDegrade,   // node, a = probe losses, b = blamed port
  HealthQuarantine,// node, a = anomaly score milli-units, b = blamed port
  HealthReadmit,   // node, a = suspect-to-readmit duration ns
};
inline constexpr int kNumEventKinds = 44;

// Why a packet was lost (PacketDrop) or re-routed (SliceMiss).
enum class DropReason : std::uint8_t {
  None,
  Congestion,  // calendar/FIFO byte capacity or EQO admission
  NoRoute,     // no time-flow table entry
  NoCircuit,   // fabric: no installed circuit in the slice
  Guard,       // fabric: launched into the reconfiguration window
  Boundary,    // fabric: transmission straddled a slice boundary
  Failed,      // fabric: dark transceiver (loss of signal)
  Corrupt,     // fabric: BER-induced FEC drop
  Electrical,  // electrical fabric egress backlog overflow
  HostSegq,    // host segment queue full (application backpressure)
  Gray,        // fabric: intermittent gray port-pair silently ate the packet
};

const char* event_kind_name(EventKind k);
const char* drop_reason_name(DropReason r);

struct TraceEvent {
  SimTime ts;
  EventKind kind = EventKind::PacketDrop;
  DropReason reason = DropReason::None;
  std::int32_t node = -1;  // -1 = not node-scoped (controller, fabric-wide)
  std::int32_t port = -1;
  std::int64_t a = 0;
  std::int64_t b = 0;

  bool operator==(const TraceEvent&) const = default;
};

}  // namespace oo::telemetry
