#include "telemetry/trace_export.h"

#include <cstdio>
#include <set>
#include <utility>

namespace oo::telemetry {

namespace {

void append_meta(std::string& out, int pid, const std::string& name,
                 bool& first) {
  if (!first) out += ",\n";
  first = false;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
                "\"args\":{\"name\":\"%s\"}}",
                pid, name.c_str());
  out += buf;
}

struct Track {
  int pid;
  int tid;
};

// Where an event is drawn. Packet-level and slice-level events live on the
// emitting node's process; fabric/control/fault events on synthetic pids.
Track track_for(const TraceEvent& ev) {
  switch (ev.kind) {
    case EventKind::PacketEnqueue:
    case EventKind::PacketDequeue:
    case EventKind::PacketDrop:
    case EventKind::SliceMiss:
      return {ev.node, ev.port >= 0 ? ev.port + 1 : 0};
    case EventKind::SliceRotation:
    case EventKind::GuardOpen:
    case EventKind::GuardClose:
      return {ev.node, 0};
    case EventKind::CircuitUp:
    case EventKind::CircuitDown:
      return {kFabricPid, ev.port >= 0 ? ev.port + 1 : 0};
    case EventKind::ControlDeploy:
    case EventKind::ControlRetry:
    case EventKind::TxnPrepare:
    case EventKind::TxnCommit:
    case EventKind::TxnAbort:
    case EventKind::CtlCrash:
    case EventKind::CtlResync:
    // Quorum lifecycle lives on the control track; the replica index is in
    // the node field and survives in the event args.
    case EventKind::ElectionStart:
    case EventKind::LeaderElected:
    case EventKind::QuorumReplicate:
    case EventKind::QuorumStepDown:
    case EventKind::QuorumFailover:
      return {kControlPid, 0};
    case EventKind::TxnAck:
    case EventKind::TxnRollback:
    case EventKind::TxnFence:
    case EventKind::TermFence:
      // Per-ToR agent events: drawn on the node when one is named, on the
      // control-plane track otherwise.
      return ev.node >= 0 ? Track{ev.node, 0} : Track{kControlPid, 0};
    case EventKind::FaultInject:
    case EventKind::FaultRepair:
      return {kFaultPid, 0};
    case EventKind::WrongSlice:
      return {ev.node, ev.port >= 0 ? ev.port + 1 : 0};
    case EventKind::BeaconLost:
    case EventKind::ClockDesync:
    case EventKind::GuardWiden:
    case EventKind::Quarantine:
    case EventKind::Readmit:
      return {ev.node, 0};
    // Traffic-engine flow lifecycle: drawn on the source ToR's track (the
    // fidelity marker rides in the port field, kept out of the tid so both
    // fidelities interleave on one lane).
    case EventKind::FlowStart:
    case EventKind::FlowComplete:
      return {ev.node, 0};
    case EventKind::FluidRecompute:
      return {kFabricPid, 0};
    case EventKind::InvariantViolation:
      // Violations draw on the fault track: they are almost always the
      // direct consequence of a nearby injection.
      return {kFaultPid, 0};
    // Active probes get their own process so probe chatter never clutters a
    // node's packet lanes; one tid per prober ToR.
    case EventKind::ProbeSend:
    case EventKind::ProbeEcho:
    case EventKind::ProbeTimeout:
      return {kProbePid, ev.node >= 0 ? ev.node + 1 : 0};
    // Health-ladder transitions draw on the affected node's slice track,
    // right next to the symptoms that caused them.
    case EventKind::HealthSuspect:
    case EventKind::HealthDegrade:
    case EventKind::HealthQuarantine:
    case EventKind::HealthReadmit:
      return {ev.node, 0};
  }
  return {kFabricPid, 0};
}

void append_events(std::string& out, const FlightRecorder& rec, bool& first) {
  char buf[320];
  rec.for_each([&](const TraceEvent& ev) {
    const Track t = track_for(ev);
    if (t.pid < 0) return;  // node-scoped event with no node: skip
    if (!first) out += ",\n";
    first = false;
    const double ts_us = static_cast<double>(ev.ts.ns()) / 1e3;
    if (ev.kind == EventKind::GuardOpen) {
      // Guard window as a complete event spanning its duration.
      std::snprintf(buf, sizeof buf,
                    "{\"name\":\"guard\",\"cat\":\"slice\",\"ph\":\"X\","
                    "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d,"
                    "\"args\":{\"slice\":%lld}}",
                    ts_us, static_cast<double>(ev.b) / 1e3, t.pid, t.tid,
                    static_cast<long long>(ev.a));
    } else if (ev.kind == EventKind::PacketDrop) {
      std::snprintf(buf, sizeof buf,
                    "{\"name\":\"drop\",\"cat\":\"packet\",\"ph\":\"i\","
                    "\"s\":\"t\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d,"
                    "\"args\":{\"reason\":\"%s\",\"packet\":%lld,"
                    "\"bytes\":%lld}}",
                    ts_us, t.pid, t.tid, drop_reason_name(ev.reason),
                    static_cast<long long>(ev.a),
                    static_cast<long long>(ev.b));
    } else {
      std::snprintf(buf, sizeof buf,
                    "{\"name\":\"%s\",\"cat\":\"sim\",\"ph\":\"i\","
                    "\"s\":\"t\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d,"
                    "\"args\":{\"a\":%lld,\"b\":%lld}}",
                    event_kind_name(ev.kind), ts_us, t.pid, t.tid,
                    static_cast<long long>(ev.a),
                    static_cast<long long>(ev.b));
    }
    out += buf;
  });
}

// Shared body for the single-ring and stitched exports: metadata pass over
// every ring, then events ring by ring (Perfetto orders by ts, so rings
// need no global sort).
std::string trace_json_impl(const FlightRecorder& control,
                            const std::vector<const FlightRecorder*>& shards) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;

  // Process-name metadata for every pid that appears in any window.
  std::set<int> pids;
  auto collect = [&pids](const TraceEvent& ev) {
    const Track t = track_for(ev);
    if (t.pid >= 0) pids.insert(t.pid);
  };
  control.for_each(collect);
  for (const auto* s : shards) {
    if (s) s->for_each(collect);
  }
  const int workers = static_cast<int>(shards.size());
  for (int pid : pids) {
    char name[64];
    if (pid == kFabricPid) {
      std::snprintf(name, sizeof name, "optical_fabric");
    } else if (pid == kControlPid) {
      std::snprintf(name, sizeof name, "control_plane");
    } else if (pid == kFaultPid) {
      std::snprintf(name, sizeof name, "faults");
    } else if (pid == kProbePid) {
      std::snprintf(name, sizeof name, "probes");
    } else if (workers > 0) {
      // Engine lane -> worker mapping: worker w runs lanes {w, w+N, ...}.
      std::snprintf(name, sizeof name, "node_%d (shard %d)", pid,
                    pid % workers);
    } else {
      std::snprintf(name, sizeof name, "node_%d", pid);
    }
    append_meta(out, pid, name, first);
  }

  append_events(out, control, first);
  for (const auto* s : shards) {
    if (s) append_events(out, *s, first);
  }

  out += "\n]}\n";
  return out;
}

}  // namespace

std::string chrome_trace_json(const FlightRecorder& rec) {
  return trace_json_impl(rec, {});
}

std::string chrome_trace_json(
    const FlightRecorder& control,
    const std::vector<const FlightRecorder*>& shards) {
  return trace_json_impl(control, shards);
}

std::string metrics_csv(const MetricsRegistry& reg) { return reg.csv(); }

std::string post_mortem(const FlightRecorder& rec, std::size_t last_n) {
  const std::size_t n = rec.size() < last_n ? rec.size() : last_n;
  const std::size_t skip = rec.size() - n;
  std::string out;
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "flight recorder: last %zu of %lld events\n", n,
                static_cast<long long>(rec.total_recorded()));
  out += buf;
  std::size_t i = 0;
  rec.for_each([&](const TraceEvent& ev) {
    if (i++ < skip) return;
    std::snprintf(buf, sizeof buf, "%12lld ns  %-14s node=%d port=%d a=%lld "
                                   "b=%lld",
                  static_cast<long long>(ev.ts.ns()),
                  event_kind_name(ev.kind), ev.node, ev.port,
                  static_cast<long long>(ev.a),
                  static_cast<long long>(ev.b));
    out += buf;
    if (ev.reason != DropReason::None) {
      out += "  reason=";
      out += drop_reason_name(ev.reason);
    }
    out += '\n';
  });
  return out;
}

}  // namespace oo::telemetry
