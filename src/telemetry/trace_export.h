// Exporters for the telemetry subsystem: Chrome trace_event JSON (load in
// Perfetto / chrome://tracing), CSV metric dumps, and a textual post-mortem
// of the last N flight-recorder events. Export is strictly offline — the
// hot path only ever appends PODs to the ring buffer.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"

namespace oo::telemetry {

// Chrome trace_event JSON: {"traceEvents":[...]}. Track layout:
//   pid <node id>  — one process per traced node (ToR); tid 0 carries the
//                    slice/guard track, tid <port>+1 one track per port.
//   pid 9000       — optical fabric (circuit up/down, per-port tids)
//   pid 9001       — control plane (deploys, retries)
//   pid 9002       — fault injection
//   pid 9003       — active probes (send/echo/timeout), one tid per prober
// Instant events use ph "i" (scope "t"); guard windows are ph "X" complete
// events with their duration. ts is microseconds (Chrome's unit).
std::string chrome_trace_json(const FlightRecorder& rec);

// Stitched sharded export: the control-context ring plus one ring per
// engine worker, merged into a single trace. Node tracks keep their pids —
// each ToR is owned by exactly one worker lane, so rings never split a
// node's timeline — and node process names gain the owning shard
// ("node_3 (shard 1)", ownership = lane % workers) so per-shard activity
// reads directly off the track list. Null shard entries are skipped.
std::string chrome_trace_json(const FlightRecorder& control,
                              const std::vector<const FlightRecorder*>& shards);

// Well-known synthetic pids used by chrome_trace_json.
inline constexpr int kFabricPid = 9000;
inline constexpr int kControlPid = 9001;
inline constexpr int kFaultPid = 9002;
inline constexpr int kProbePid = 9003;

// "metric,value" CSV of every registered metric (sorted by key).
std::string metrics_csv(const MetricsRegistry& reg);

// Human-readable dump of the newest `last_n` retained events, oldest first:
// one "ts kind node port a b [reason]" line each. The default asks for more
// than the ring holds, i.e. everything retained.
std::string post_mortem(const FlightRecorder& rec,
                        std::size_t last_n = static_cast<std::size_t>(-1));

}  // namespace oo::telemetry
