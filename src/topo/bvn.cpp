#include "topo/bvn.h"
#include <functional>

#include <algorithm>
#include <cassert>
#include <cmath>

namespace oo::topo {

namespace {

// Kuhn's augmenting-path bipartite perfect matching restricted to positive
// entries of `m`, preferring heavy entries (each row tries its columns in
// descending weight) so the extracted permutation carries as much of the
// remaining mass as possible. Returns match_row[i] = column or empty.
std::vector<int> perfect_matching(const std::vector<std::vector<double>>& m,
                                  double eps) {
  const int n = static_cast<int>(m.size());
  std::vector<int> match_col(static_cast<std::size_t>(n), -1);

  // Per-row column preference, heaviest first.
  std::vector<std::vector<int>> order(static_cast<std::size_t>(n));
  for (int row = 0; row < n; ++row) {
    auto& o = order[static_cast<std::size_t>(row)];
    o.resize(static_cast<std::size_t>(n));
    for (int c = 0; c < n; ++c) o[static_cast<std::size_t>(c)] = c;
    std::sort(o.begin(), o.end(), [&m, row](int a, int b) {
      return m[static_cast<std::size_t>(row)][static_cast<std::size_t>(a)] >
             m[static_cast<std::size_t>(row)][static_cast<std::size_t>(b)];
    });
  }

  std::vector<char> used;
  std::function<bool(int)> try_kuhn = [&](int row) -> bool {
    for (int col : order[static_cast<std::size_t>(row)]) {
      if (m[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] <=
              eps ||
          used[static_cast<std::size_t>(col)])
        continue;
      used[static_cast<std::size_t>(col)] = 1;
      if (match_col[static_cast<std::size_t>(col)] == -1 ||
          try_kuhn(match_col[static_cast<std::size_t>(col)])) {
        match_col[static_cast<std::size_t>(col)] = row;
        return true;
      }
    }
    return false;
  };

  for (int row = 0; row < n; ++row) {
    used.assign(static_cast<std::size_t>(n), 0);
    if (!try_kuhn(row)) return {};
  }
  std::vector<int> match_row(static_cast<std::size_t>(n), -1);
  for (int col = 0; col < n; ++col) {
    match_row[static_cast<std::size_t>(match_col[static_cast<std::size_t>(
        col)])] = col;
  }
  return match_row;
}

}  // namespace

std::vector<BvnComponent> bvn_decompose(const TrafficMatrix& tm,
                                        int max_components,
                                        int sinkhorn_iters) {
  const int n = tm.size();
  assert(n > 0);
  std::vector<std::vector<double>> m(
      static_cast<std::size_t>(n),
      std::vector<double>(static_cast<std::size_t>(n), 0.0));
  // Pad with a small uniform floor so rows/columns with no demand still
  // admit perfect matchings (idle circuits).
  double maxv = 0.0;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) maxv = std::max(maxv, tm.at(i, j));
  const double floor = maxv > 0 ? maxv * 1e-6 : 1.0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          (i == j) ? 0.0 : std::max(tm.at(i, j), floor);
    }
  }

  // Sinkhorn toward doubly stochastic.
  for (int it = 0; it < sinkhorn_iters; ++it) {
    for (int i = 0; i < n; ++i) {
      double s = 0.0;
      for (int j = 0; j < n; ++j) s += m[i][static_cast<std::size_t>(j)];
      if (s > 0)
        for (int j = 0; j < n; ++j) m[i][static_cast<std::size_t>(j)] /= s;
    }
    for (int j = 0; j < n; ++j) {
      double s = 0.0;
      for (int i = 0; i < n; ++i) s += m[static_cast<std::size_t>(i)][j];
      if (s > 0)
        for (int i = 0; i < n; ++i) m[static_cast<std::size_t>(i)][j] /= s;
    }
  }

  std::vector<BvnComponent> out;
  const double eps = 1e-9;
  for (int k = 0; k < max_components; ++k) {
    auto perm = perfect_matching(m, eps);
    if (perm.empty()) break;
    double theta = 1e300;
    for (int i = 0; i < n; ++i) {
      theta = std::min(
          theta,
          m[static_cast<std::size_t>(i)][static_cast<std::size_t>(perm[i])]);
    }
    if (theta <= eps) break;
    for (int i = 0; i < n; ++i) {
      m[static_cast<std::size_t>(i)][static_cast<std::size_t>(perm[i])] -=
          theta;
    }
    out.push_back(BvnComponent{std::move(perm), theta});
  }
  return out;
}

namespace {

// A directed permutation decomposes into cycles; alternating each even
// cycle's edges yields two disjoint matchings (odd cycles lose one edge).
// Circuits are undirected, so this conversion preserves every pair a
// permutation serves — naively pairing (i, perm[i]) would drop half of
// each cycle.
std::vector<std::vector<std::pair<NodeId, NodeId>>> perm_to_matchings(
    const std::vector<int>& perm) {
  const int n = static_cast<int>(perm.size());
  std::vector<std::vector<std::pair<NodeId, NodeId>>> out(2);
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  for (int start = 0; start < n; ++start) {
    if (visited[static_cast<std::size_t>(start)] ||
        perm[static_cast<std::size_t>(start)] == start)
      continue;
    // Walk the cycle, assigning edges alternately.
    std::vector<int> cycle;
    int v = start;
    while (!visited[static_cast<std::size_t>(v)]) {
      visited[static_cast<std::size_t>(v)] = 1;
      cycle.push_back(v);
      v = perm[static_cast<std::size_t>(v)];
    }
    const std::size_t len = cycle.size();
    const std::size_t edges = (len % 2 == 0) ? len : len - 1;
    for (std::size_t e = 0; e < edges; ++e) {
      const NodeId a = static_cast<NodeId>(cycle[e]);
      const NodeId b = static_cast<NodeId>(cycle[(e + 1) % len]);
      if (len == 2 && e == 1) break;  // 2-cycle is a single undirected pair
      out[e % 2].emplace_back(a, b);
    }
  }
  if (out[1].empty()) out.pop_back();
  if (out[0].empty()) out.erase(out.begin());
  return out;
}

}  // namespace

std::vector<optics::Circuit> bvn(const TrafficMatrix& tm, SliceId period,
                                 int max_components) {
  auto comps = bvn_decompose(tm, max_components);
  std::vector<optics::Circuit> out;
  if (comps.empty()) return out;

  // Expand permutations into matchings, each inheriting half (or all, for
  // single-matching permutations) of the component's coefficient.
  struct Entry {
    std::vector<std::pair<NodeId, NodeId>> pairs;
    double weight;
  };
  std::vector<Entry> matchings;
  for (const auto& comp : comps) {
    auto split = perm_to_matchings(comp.perm);
    for (auto& m : split) {
      matchings.push_back(
          Entry{std::move(m),
                comp.coefficient / static_cast<double>(split.size())});
    }
  }
  if (matchings.empty()) return out;

  double total = 0.0;
  for (const auto& m : matchings) total += m.weight;

  // Largest-remainder slice allocation: every kept matching gets >= 1
  // slice; leftovers go to the largest coefficients.
  const int n_slices = static_cast<int>(period);
  const int n_m = std::min<int>(static_cast<int>(matchings.size()), n_slices);
  std::vector<int> alloc(static_cast<std::size_t>(n_m), 1);
  int used = n_m;
  for (int k = 0; k < n_m && used < n_slices; ++k) {
    const int extra = static_cast<int>(
        std::floor(matchings[static_cast<std::size_t>(k)].weight / total *
                   n_slices)) -
        1;
    const int take = std::min(extra > 0 ? extra : 0, n_slices - used);
    alloc[static_cast<std::size_t>(k)] += take;
    used += take;
  }
  alloc[0] += n_slices - used;  // round leftover onto the heaviest matching

  SliceId s = 0;
  for (int k = 0; k < n_m; ++k) {
    const auto& m = matchings[static_cast<std::size_t>(k)];
    for (int rep = 0; rep < alloc[static_cast<std::size_t>(k)]; ++rep, ++s) {
      for (const auto& [a, b] : m.pairs) {
        out.push_back(optics::Circuit{a, 0, b, 0, s});
      }
    }
  }
  return out;
}

}  // namespace oo::topo
