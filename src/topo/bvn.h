// Birkhoff–von-Neumann circuit scheduling (§4.2): the BvN(TM)
// materialization used by Mordia-style slotted TA architectures. The demand
// matrix is Sinkhorn-normalized toward doubly stochastic, decomposed into
// permutation matrices (bipartite perfect matchings on the positive
// support), and each permutation receives slices of the cycle proportional
// to its coefficient.
#pragma once

#include <vector>

#include "common/ids.h"
#include "optics/schedule.h"
#include "topo/traffic_matrix.h"

namespace oo::topo {

struct BvnComponent {
  std::vector<int> perm;  // perm[src] = dst (directed permutation)
  double coefficient;     // fraction of the cycle this permutation deserves
};

// Decomposes `tm` into at most `max_components` permutations covering the
// bulk of the demand. Zero-demand rows/columns are padded so a perfect
// matching always exists.
std::vector<BvnComponent> bvn_decompose(const TrafficMatrix& tm,
                                        int max_components = 16,
                                        int sinkhorn_iters = 50);

// BvN(TM): compiles the decomposition into a `period`-slice schedule on
// uplink 0. Each permutation edge (i -> perm[i]) becomes a bidirectional
// circuit; self-loops are skipped.
std::vector<optics::Circuit> bvn(const TrafficMatrix& tm, SliceId period,
                                 int max_components = 16);

}  // namespace oo::topo
