#include "topo/jupiter.h"

#include <algorithm>
#include <set>

#include "topo/matching.h"
#include "topo/round_robin.h"

namespace oo::topo {

std::vector<optics::Circuit> jupiter(const TrafficMatrix& tm, int num_nodes,
                                     int uplinks,
                                     const std::vector<optics::Circuit>& prev,
                                     double hysteresis) {
  if (tm.empty() || tm.total() <= 0.0) {
    // Cold start: uniform mesh — one tournament matching per uplink gives
    // every node `uplinks` distinct neighbors.
    std::vector<optics::Circuit> out;
    for (int u = 0; u < uplinks && u < num_nodes - 1; ++u) {
      for (const auto& [a, b] : tournament_matching(num_nodes, u)) {
        out.push_back(optics::Circuit{a, static_cast<PortId>(u), b,
                                      static_cast<PortId>(u), kAnySlice});
      }
    }
    return out;
  }

  // Incumbent pairs get a hysteresis bonus so unchanged demand keeps its
  // circuits (minimizing rewiring during the reconfiguration window).
  std::set<std::pair<NodeId, NodeId>> incumbents;
  for (const auto& c : prev) {
    incumbents.insert({std::min(c.a, c.b), std::max(c.a, c.b)});
  }

  // A small uniform demand floor keeps every matching perfect (no node is
  // ever left without circuits) while real demand still dominates pair
  // selection — production fabrics never disconnect idle ToRs.
  TrafficMatrix residual = tm;
  {
    const int n = residual.size();
    const double eps =
        (tm.total() / (static_cast<double>(n) * n) + 1.0) * 0.05;
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = 0; j < n; ++j) {
        if (i != j) residual.at(i, j) += eps;
      }
    }
  }
  const double per_circuit =
      tm.total() / std::max(1, num_nodes * uplinks / 2);
  std::vector<optics::Circuit> out;
  for (int u = 0; u < uplinks; ++u) {
    TrafficMatrix biased = residual;
    const int n = biased.size();
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = i + 1; j < n; ++j) {
        if (incumbents.count({i, j}) > 0) {
          biased.at(i, j) *= hysteresis;
          biased.at(j, i) *= hysteresis;
        }
      }
    }
    for (const auto& [a, b] : greedy_max_matching(biased)) {
      out.push_back(optics::Circuit{a, static_cast<PortId>(u), b,
                                    static_cast<PortId>(u), kAnySlice});
      residual.at(a, b) = std::max(0.0, residual.at(a, b) - per_circuit);
      residual.at(b, a) = std::max(0.0, residual.at(b, a) - per_circuit);
    }
  }
  return out;
}

}  // namespace oo::topo
