// Jupiter-style gradually evolving topology (§4.2, Fig. 5b): start from a
// uniform mesh; on each traffic-matrix collection, recompute demand-driven
// matchings with hysteresis toward the incumbent circuits so each
// reconfiguration rewires as little as possible (Google's "gradual
// evolution" of Jupiter fabrics).
#pragma once

#include <vector>

#include "common/ids.h"
#include "optics/schedule.h"
#include "topo/traffic_matrix.h"

namespace oo::topo {

// jupiter(TM, prev): static circuits (one matching per uplink). With an
// empty TM this returns the uniform mesh (tournament matchings 0..U-1).
// `hysteresis` > 1 biases toward keeping incumbent circuits.
std::vector<optics::Circuit> jupiter(
    const TrafficMatrix& tm, int num_nodes, int uplinks,
    const std::vector<optics::Circuit>& prev = {}, double hysteresis = 1.25);

}  // namespace oo::topo
