#include "topo/matching.h"

#include <algorithm>
#include <tuple>

namespace oo::topo {

std::vector<std::pair<NodeId, NodeId>> greedy_max_matching(
    const TrafficMatrix& tm) {
  const int n = tm.size();
  struct Edge {
    double w;
    NodeId a, b;
  };
  std::vector<Edge> edges;
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      const double w = tm.pair_demand(i, j);
      if (w > 0) edges.push_back(Edge{w, i, j});
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& x, const Edge& y) {
    if (x.w != y.w) return x.w > y.w;
    return std::tie(x.a, x.b) < std::tie(y.a, y.b);  // deterministic ties
  });

  std::vector<NodeId> mate(static_cast<std::size_t>(n), kInvalidNode);
  for (const auto& e : edges) {
    if (mate[static_cast<std::size_t>(e.a)] == kInvalidNode &&
        mate[static_cast<std::size_t>(e.b)] == kInvalidNode) {
      mate[static_cast<std::size_t>(e.a)] = e.b;
      mate[static_cast<std::size_t>(e.b)] = e.a;
    }
  }

  // 2-opt refinement: for matched pairs (a,b),(c,d) try the two rewirings
  // and keep any strict improvement. A few sweeps close most of the greedy
  // gap.
  auto weight = [&tm](NodeId x, NodeId y) { return tm.pair_demand(x, y); };
  for (int sweep = 0; sweep < 3; ++sweep) {
    bool improved = false;
    for (NodeId a = 0; a < n; ++a) {
      const NodeId b = mate[static_cast<std::size_t>(a)];
      if (b == kInvalidNode || b < a) continue;
      for (NodeId c = a + 1; c < n; ++c) {
        const NodeId d = mate[static_cast<std::size_t>(c)];
        if (d == kInvalidNode || d < c || c == b || d == b) continue;
        const double cur = weight(a, b) + weight(c, d);
        const double alt1 = weight(a, c) + weight(b, d);
        const double alt2 = weight(a, d) + weight(b, c);
        if (alt1 > cur && alt1 >= alt2) {
          mate[static_cast<std::size_t>(a)] = c;
          mate[static_cast<std::size_t>(c)] = a;
          mate[static_cast<std::size_t>(b)] = d;
          mate[static_cast<std::size_t>(d)] = b;
          improved = true;
        } else if (alt2 > cur) {
          mate[static_cast<std::size_t>(a)] = d;
          mate[static_cast<std::size_t>(d)] = a;
          mate[static_cast<std::size_t>(b)] = c;
          mate[static_cast<std::size_t>(c)] = b;
          improved = true;
        }
      }
    }
    if (!improved) break;
  }

  std::vector<std::pair<NodeId, NodeId>> out;
  for (NodeId i = 0; i < n; ++i) {
    const NodeId j = mate[static_cast<std::size_t>(i)];
    if (j != kInvalidNode && i < j) out.emplace_back(i, j);
  }
  return out;
}

std::vector<optics::Circuit> edmonds(const TrafficMatrix& tm, int uplinks,
                                     double per_circuit_capacity) {
  TrafficMatrix residual = tm;
  std::vector<optics::Circuit> out;
  for (int u = 0; u < uplinks; ++u) {
    const auto matching = greedy_max_matching(residual);
    if (matching.empty()) break;
    for (const auto& [a, b] : matching) {
      out.push_back(optics::Circuit{a, static_cast<PortId>(u), b,
                                    static_cast<PortId>(u), kAnySlice});
      // The circuit absorbs demand in both directions up to its capacity.
      residual.at(a, b) =
          std::max(0.0, residual.at(a, b) - per_circuit_capacity);
      residual.at(b, a) =
          std::max(0.0, residual.at(b, a) - per_circuit_capacity);
    }
  }
  return out;
}

}  // namespace oo::topo
