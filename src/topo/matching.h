// Weighted matching for TA circuit scheduling (§4.2): the edmonds(TM)
// materialization used by c-Through-style architectures. We use greedy
// maximum-weight matching with 2-opt refinement instead of full Edmonds
// blossom — it is within 1/2 of optimal (greedy bound), typically much
// closer after refinement, and is what deployed prototypes approximate; see
// DESIGN.md substitution notes.
#pragma once

#include <vector>

#include "common/ids.h"
#include "optics/schedule.h"
#include "topo/traffic_matrix.h"

namespace oo::topo {

// One maximum-weight matching over pair_demand(); only pairs with positive
// demand are matched.
std::vector<std::pair<NodeId, NodeId>> greedy_max_matching(
    const TrafficMatrix& tm);

// edmonds(TM): demand-driven circuits, one matching per optical uplink on
// the residual demand (each uplink's circuit serves `per_circuit_capacity`
// demand units before the residual is recomputed). Static (kAnySlice)
// circuits — a TA topology instance.
std::vector<optics::Circuit> edmonds(const TrafficMatrix& tm, int uplinks,
                                     double per_circuit_capacity);

}  // namespace oo::topo
