#include "topo/round_robin.h"

#include <cassert>
#include <cmath>

#include "common/rng.h"

namespace oo::topo {

std::vector<std::pair<NodeId, NodeId>> tournament_matching(int n, int round) {
  assert(n >= 2 && n % 2 == 0);
  assert(round >= 0 && round < n - 1);
  // Circle method: node n-1 is fixed; 0..n-2 rotate around it.
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(static_cast<std::size_t>(n / 2));
  const int m = n - 1;
  out.emplace_back(static_cast<NodeId>(n - 1), static_cast<NodeId>(round));
  for (int i = 1; i <= (n - 2) / 2; ++i) {
    const int a = (round + i) % m;
    const int b = (round - i + m) % m;
    out.emplace_back(static_cast<NodeId>(a), static_cast<NodeId>(b));
  }
  return out;
}

SliceId round_robin_period(int num_nodes, int dimension) {
  if (dimension <= 1) return static_cast<SliceId>(num_nodes - 1);
  const int side = static_cast<int>(
      std::llround(std::pow(static_cast<double>(num_nodes),
                            1.0 / static_cast<double>(dimension))));
  return static_cast<SliceId>(dimension * (side - 1));
}

std::vector<optics::Circuit> round_robin_1d(int num_nodes, int uplinks) {
  assert(num_nodes % 2 == 0 && "rotor schedules need an even node count");
  const int period = num_nodes - 1;
  std::vector<optics::Circuit> out;
  out.reserve(static_cast<std::size_t>(period) * uplinks * num_nodes / 2);
  for (int u = 0; u < uplinks; ++u) {
    // Phase-shift each uplink so a slice's union of matchings spreads
    // connectivity across the cycle (Opera-style).
    const int phase = uplinks > 0 ? u * period / uplinks : 0;
    for (int s = 0; s < period; ++s) {
      const int round = (s + phase) % period;
      for (const auto& [a, b] : tournament_matching(num_nodes, round)) {
        out.push_back(optics::Circuit{a, static_cast<PortId>(u), b,
                                      static_cast<PortId>(u),
                                      static_cast<SliceId>(s)});
      }
    }
  }
  return out;
}

std::vector<optics::Circuit> round_robin_nd(int num_nodes, int dimension) {
  assert(dimension >= 1);
  if (dimension == 1) return round_robin_1d(num_nodes, 1);
  const int side = static_cast<int>(
      std::llround(std::pow(static_cast<double>(num_nodes),
                            1.0 / static_cast<double>(dimension))));
  int check = 1;
  for (int d = 0; d < dimension; ++d) check *= side;
  assert(check == num_nodes && "node count must be side^dimension");
  assert(side % 2 == 0 && "grid side must be even for perfect matchings");

  // Coordinates: node id in mixed radix base `side`.
  auto coord = [side](NodeId n, int d) {
    int v = n;
    for (int i = 0; i < d; ++i) v /= side;
    return v % side;
  };
  auto with_coord = [side](NodeId n, int d, int val) {
    int stride = 1;
    for (int i = 0; i < d; ++i) stride *= side;
    const int cur = (n / stride) % side;
    return static_cast<NodeId>(n + (val - cur) * stride);
  };

  const int rounds = side - 1;
  std::vector<optics::Circuit> out;
  for (int s = 0; s < dimension * rounds; ++s) {
    const int dim = s % dimension;
    const int round = (s / dimension) % rounds;
    const auto pairs = tournament_matching(side, round);
    // Apply the side-level matching within every grid line along `dim`.
    for (NodeId n = 0; n < num_nodes; ++n) {
      if (coord(n, dim) != 0) continue;  // one representative per line
      for (const auto& [a, b] : pairs) {
        const NodeId na = with_coord(n, dim, a);
        const NodeId nb = with_coord(n, dim, b);
        out.push_back(optics::Circuit{na, 0, nb, 0, static_cast<SliceId>(s)});
      }
    }
  }
  return out;
}

std::vector<optics::Circuit> random_matchings(int num_nodes, int uplinks,
                                              SliceId period,
                                              std::uint64_t seed) {
  assert(num_nodes % 2 == 0);
  Rng rng(seed);
  std::vector<NodeId> ids(static_cast<std::size_t>(num_nodes));
  std::vector<optics::Circuit> out;
  for (SliceId s = 0; s < period; ++s) {
    for (int u = 0; u < uplinks; ++u) {
      // Fisher-Yates shuffle, then pair adjacent entries.
      for (int i = 0; i < num_nodes; ++i) {
        ids[static_cast<std::size_t>(i)] = static_cast<NodeId>(i);
      }
      for (int i = num_nodes - 1; i > 0; --i) {
        const auto j = static_cast<int>(
            rng.uniform(static_cast<std::uint32_t>(i + 1)));
        std::swap(ids[static_cast<std::size_t>(i)],
                  ids[static_cast<std::size_t>(j)]);
      }
      for (int i = 0; i + 1 < num_nodes; i += 2) {
        out.push_back(optics::Circuit{ids[static_cast<std::size_t>(i)],
                                      static_cast<PortId>(u),
                                      ids[static_cast<std::size_t>(i + 1)],
                                      static_cast<PortId>(u), s});
      }
    }
  }
  return out;
}

}  // namespace oo::topo
