// Traffic-oblivious optical schedules (§4.2): round_robin(dimension, uplink)
// materializes topo() for TO architectures. The single-dimensional variant
// is the RotorNet/Opera rotor schedule (period N-1 perfect matchings via the
// tournament circle method, uplinks phase-shifted so every slice's union of
// matchings diversifies connectivity); the multi-dimensional variant is the
// Shale-style grid schedule.
#pragma once

#include <vector>

#include "common/ids.h"
#include "optics/schedule.h"

namespace oo::topo {

// Perfect matching r (0..n-2) of the round-robin tournament on n nodes
// (n must be even): the building block of every rotor schedule.
std::vector<std::pair<NodeId, NodeId>> tournament_matching(int n, int round);

// 1-D rotor schedule: `uplinks` phase-shifted tournament rotations over all
// `num_nodes` (even) endpoints. Period = num_nodes - 1 slices. Every pair of
// nodes gets a direct circuit on every uplink once per cycle.
std::vector<optics::Circuit> round_robin_1d(int num_nodes, int uplinks);

// Multi-dimensional (Shale) schedule: nodes form a `dimension`-D grid with
// side = num_nodes^(1/dimension) (must be exact and even); slices cycle
// through dimensions, rotating a tournament within each grid line on
// uplink 0. Period = dimension * (side - 1).
std::vector<optics::Circuit> round_robin_nd(int num_nodes, int dimension);

// Period of the schedules above (what to pass to deploy_topo/compile).
SliceId round_robin_period(int num_nodes, int dimension = 1);

// Seeded random-permutation schedule: each (slice, uplink) gets an
// independent random perfect matching — the randomized expander variant of
// Opera-class designs (tournament rotations are one fixed choice of
// matchings; random draws diversify the per-slice union).
std::vector<optics::Circuit> random_matchings(int num_nodes, int uplinks,
                                              SliceId period,
                                              std::uint64_t seed);

}  // namespace oo::topo
