#include "topo/sorn.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "topo/round_robin.h"

namespace oo::topo {

std::vector<optics::Circuit> sorn(const TrafficMatrix& tm, int num_nodes,
                                  SliceId period) {
  assert(num_nodes % 2 == 0);
  const int rounds = num_nodes - 1;
  assert(period >= rounds && "period must fit all matchings at least once");

  // Demand served by each tournament matching.
  std::vector<double> weight(static_cast<std::size_t>(rounds), 0.0);
  for (int r = 0; r < rounds; ++r) {
    for (const auto& [a, b] : tournament_matching(num_nodes, r)) {
      weight[static_cast<std::size_t>(r)] +=
          tm.empty() ? 1.0 : tm.pair_demand(a, b);
    }
  }
  const double total =
      std::accumulate(weight.begin(), weight.end(), 0.0);

  // Largest-remainder allocation with a floor of one slice per matching.
  std::vector<int> alloc(static_cast<std::size_t>(rounds), 1);
  int used = rounds;
  if (total > 0) {
    std::vector<int> order(static_cast<std::size_t>(rounds));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int x, int y) {
      return weight[static_cast<std::size_t>(x)] >
             weight[static_cast<std::size_t>(y)];
    });
    for (int r : order) {
      if (used >= period) break;
      const int want = static_cast<int>(
          weight[static_cast<std::size_t>(r)] / total * period);
      const int extra = std::min(std::max(want - 1, 0),
                                 static_cast<int>(period) - used);
      alloc[static_cast<std::size_t>(r)] += extra;
      used += extra;
    }
    // Any leftover slices go to the hottest matching.
    alloc[static_cast<std::size_t>(order.front())] +=
        static_cast<int>(period) - used;
  } else {
    alloc[0] += static_cast<int>(period) - used;
  }

  std::vector<optics::Circuit> out;
  SliceId s = 0;
  for (int r = 0; r < rounds; ++r) {
    for (int rep = 0; rep < alloc[static_cast<std::size_t>(r)]; ++rep, ++s) {
      for (const auto& [a, b] : tournament_matching(num_nodes, r)) {
        out.push_back(optics::Circuit{a, 0, b, 0, s});
      }
    }
  }
  return out;
}

}  // namespace oo::topo
