// Semi-oblivious round-robin (§4.3, Fig. 5c): a custom topology algorithm
// extending round_robin() — the optical schedule is still a batch of
// matchings loaded like a TO cycle, but matchings whose pairs carry hot
// demand occupy more slices (dense connections between hotspots, sparse
// elsewhere). Demonstrates OpenOptics' TA+TO boundary-breaking.
#pragma once

#include <vector>

#include "common/ids.h"
#include "optics/schedule.h"
#include "topo/traffic_matrix.h"

namespace oo::topo {

// Builds a `period`-slice schedule on uplink 0 for an even `num_nodes`:
// tournament matchings weighted by the demand they serve, allocated slices
// by largest remainder (each matching keeps >= 1 slice so the schedule
// remains universally connected over a cycle).
std::vector<optics::Circuit> sorn(const TrafficMatrix& tm, int num_nodes,
                                  SliceId period);

}  // namespace oo::topo
