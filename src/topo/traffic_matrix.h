// Global traffic matrix built by the traffic-collection service (§4.1):
// demand in bytes (or any consistent unit) between endpoint nodes over the
// collection interval. TA circuit-scheduling algorithms consume this.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace oo::topo {

class TrafficMatrix {
 public:
  TrafficMatrix() : n_(0) {}
  explicit TrafficMatrix(int n) : n_(n), v_(static_cast<std::size_t>(n) * n, 0.0) {}

  static TrafficMatrix from_bytes(
      const std::vector<std::vector<std::int64_t>>& bytes) {
    TrafficMatrix tm(static_cast<int>(bytes.size()));
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      for (std::size_t j = 0; j < bytes[i].size(); ++j) {
        tm.at(static_cast<int>(i), static_cast<int>(j)) =
            static_cast<double>(bytes[i][j]);
      }
    }
    return tm;
  }

  int size() const { return n_; }
  bool empty() const { return n_ == 0; }

  double& at(int i, int j) {
    assert(i >= 0 && i < n_ && j >= 0 && j < n_);
    return v_[static_cast<std::size_t>(i) * n_ + j];
  }
  double at(int i, int j) const {
    assert(i >= 0 && i < n_ && j >= 0 && j < n_);
    return v_[static_cast<std::size_t>(i) * n_ + j];
  }

  // Symmetric demand between i and j — circuits are bidirectional, so
  // matching algorithms weigh both directions.
  double pair_demand(int i, int j) const { return at(i, j) + at(j, i); }

  double total() const {
    double s = 0.0;
    for (double x : v_) s += x;
    return s;
  }

 private:
  int n_;
  std::vector<double> v_;
};

}  // namespace oo::topo
