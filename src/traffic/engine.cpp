#include "traffic/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/log.h"

namespace oo::traffic {

namespace {

constexpr std::int64_t kMiceThreshold = 100'000;  // matches TraceReplay

std::int64_t ceil_ns(double ns) {
  const double c = std::ceil(ns);
  return c < 1.0 ? 1 : static_cast<std::int64_t>(c);
}

}  // namespace

void FctAggregate::add(double x) {
  stats_.add(x);
  // Algorithm R on a dedicated derived stream: deterministic for a
  // deterministic arrival order, bounded at `cap_` samples.
  if (reservoir_.size() < cap_) {
    reservoir_.push_back(x);
  } else {
    const auto n = static_cast<std::uint32_t>(
        std::min<std::int64_t>(stats_.count(),
                               std::numeric_limits<std::uint32_t>::max()));
    const std::uint32_t j = rng_.uniform(n);
    if (j < cap_) reservoir_[j] = x;
  }
}

double FctAggregate::percentile(double p) const {
  if (reservoir_.empty()) return 0.0;
  std::vector<double> sorted = reservoir_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

TrafficEngine::TrafficEngine(core::Network& net, TrafficSpec spec)
    : net_(net),
      spec_(std::move(spec)),
      fluid_(net, spec_.transfer.mss) {
  validate(spec_);
  if (net_.num_tors() < 2) {
    throw std::invalid_argument(
        "TrafficEngine: needs at least two racks (sources never target "
        "their own rack)");
  }
  if (spec_.burst.enabled) {
    const double on = static_cast<double>(spec_.burst.on_mean.ns());
    const double off = static_cast<double>(spec_.burst.off_mean.ns());
    duty_ = on / (on + off);
  }
  const double mean = mean_size(spec_.size);
  const double offered_bps = spec_.load * net_.config().host_bw *
                             static_cast<double>(net_.num_hosts());
  const double lambda_total = offered_bps / (kBitsPerByte * mean);
  lambda_on_ =
      lambda_total / static_cast<double>(spec_.sources) / duty_;

  mice_.init(spec_.seed, 0, 1 << 16);
  elephant_.init(spec_.seed, 1, 1 << 16);
  dst_rows_.resize(static_cast<std::size_t>(net_.num_tors()));

  auto& m = net_.sim().metrics();
  flows_packet_ctr_ = &m.counter("traffic.flows", {{"fidelity", "packet"}});
  flows_fluid_ctr_ = &m.counter("traffic.flows", {{"fidelity", "fluid"}});
  bytes_packet_ctr_ = &m.counter("traffic.bytes", {{"fidelity", "packet"}});
  bytes_fluid_ctr_ = &m.counter("traffic.bytes", {{"fidelity", "fluid"}});
  arrival_probes_ctr_ = &m.counter("traffic.arrival_probes");
}

TrafficEngine::~TrafficEngine() {
  stop();
  // Transfers launched through fluid_/pool_ may have completion events
  // already queued past this engine's lifetime; their callbacks check this
  // flag before touching the (now destroyed) aggregates.
  *alive_ = false;
}

void TrafficEngine::start() {
  if (running_) return;
  if (started_) {
    // Restarting after stop() would re-seed sources_ while heap_ still
    // holds the old entries, double-arming every source.
    throw std::logic_error(
        "TrafficEngine::start: engine already ran; construct a new engine "
        "instead of restarting");
  }
  started_ = true;
  running_ = true;
  net_.start();
  const bool sharded = net_.sim().sharded();
  lanes_.resize(sharded ? static_cast<std::size_t>(net_.num_tors()) : 1);
  for (auto& l : lanes_) {
    l.pool = std::make_unique<workload::TransferPool>(net_);
  }
  const SimTime now = net_.sim().now();
  const int num_hosts = net_.num_hosts();
  sources_.resize(static_cast<std::size_t>(spec_.sources));
  for (std::int64_t i = 0; i < spec_.sources; ++i) {
    Source& s = sources_[static_cast<std::size_t>(i)];
    s.rng = derive_rng(spec_.seed, static_cast<std::uint64_t>(i),
                       "traffic.src");
    s.host = static_cast<HostId>(i % num_hosts);
    if (spec_.burst.enabled) {
      // Start the ON/OFF process in steady state: ON with probability
      // `duty`, mid-window.
      if (s.rng.uniform01() < duty_) {
        s.on_until = now + SimTime::nanos(ceil_ns(s.rng.exponential(
                               static_cast<double>(spec_.burst.on_mean.ns()))));
      } else {
        s.on_until = now;  // immediately OFF; next_arrival draws the gap
      }
    } else {
      s.on_until = SimTime::max();
    }
    s.next = next_arrival(s, now);
    if (s.next != SimTime::max()) {
      // Sources pin to the lane of their host's ToR; everything after this
      // seeding loop touches the source from that lane only.
      const std::size_t slot =
          sharded ? static_cast<std::size_t>(net_.tor_of(s.host)) : 0;
      lanes_[slot].heap.push({s.next.ns(), static_cast<std::uint32_t>(i)});
    }
  }
  for (std::size_t slot = 0; slot < lanes_.size(); ++slot) {
    arm(slot, /*cross=*/sharded);
  }
}

void TrafficEngine::stop() {
  // Runs on the control context (or post-run); cancelling a lane's wave
  // timer here never overlaps that lane's execution — phases alternate.
  running_ = false;
  for (auto& l : lanes_) l.wake.cancel();
}

void TrafficEngine::arm(std::size_t slot, bool cross) {
  LaneEmit& le = lanes_[slot];
  if (!running_ || le.heap.empty()) return;
  const SimTime at = SimTime::nanos(le.heap.top().at_ns);
  // Scoped-handle assignment cancels the previous wave timer. The initial
  // sharded arm pushes from control straight onto the slot's lane (serial
  // context => direct push, real cancellable handle); re-arms come from
  // fire() already on the right lane and inherit it via schedule_at.
  if (cross) {
    le.wake = net_.sim().schedule_at_lane(
        static_cast<int>(slot), at, [this, slot] { fire(slot); },
        "traffic.wave");
  } else {
    le.wake = net_.sim().schedule_at(at, [this, slot] { fire(slot); },
                                     "traffic.wave");
  }
}

void TrafficEngine::fire(std::size_t slot) {
  if (!running_) return;
  LaneEmit& le = lanes_[slot];
  const SimTime now = net_.sim().now();
  // Drain the whole due wave under this one event.
  while (!le.heap.empty() && le.heap.top().at_ns <= now.ns()) {
    const std::uint32_t idx = le.heap.top().idx;
    le.heap.pop();
    Source& s = sources_[idx];
    if (!s.probe) emit(slot, s);  // a probe resumes without an arrival
    s.next = next_arrival(s, now);
    if (s.next != SimTime::max()) le.heap.push({s.next.ns(), idx});
  }
  arm(slot, /*cross=*/false);
}

void TrafficEngine::emit(std::size_t slot, Source& s) {
  LaneEmit& le = lanes_[slot];
  const SimTime now = net_.sim().now();
  const HostId src = s.host;
  const NodeId src_tor = net_.tor_of(src);
  const HostId dst = pick_dst(src_tor, s.rng);
  const std::int64_t bytes = sample_size(s.rng);
  const bool fluid = bytes >= spec_.hybrid_threshold;
  const bool mouse = bytes < kMiceThreshold;
  // Trace-pairing ordinal. Legacy: the plain global emission count (one
  // lane => same value as before). Sharded: lane-tagged so per-lane
  // counts stay disjoint without a shared counter, mirroring the packet-
  // id scheme.
  const std::int64_t lane_count = le.emitted_packet + le.emitted_fluid;
  const std::int64_t ordinal =
      lanes_.size() == 1
          ? lane_count
          : ((static_cast<std::int64_t>(slot) + 1) << 40) | lane_count;

  le.bytes_offered += bytes;
  le.fingerprint ^= mix64(
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32 |
       static_cast<std::uint32_t>(dst)) ^
      mix64(static_cast<std::uint64_t>(bytes)) ^
      mix64(static_cast<std::uint64_t>(now.ns())));

  if (auto* rec = net_.sim().recorder()) {
    rec->flow_start(now, src_tor, fluid, ordinal, bytes);
  }
  // `alive` outlives the engine: completions from transfers still in
  // flight when the engine is destroyed (owner swapped in a new one) must
  // not touch the freed aggregates/recorder. Sharded: this callback always
  // lands on the control context (packet transports post their done_ to
  // the control queue; the fluid solver already lives there), so the
  // aggregates stay serial.
  auto record = [this, alive = alive_, mouse, fluid, src_tor,
                 ordinal](SimTime fct) {
    if (!*alive) return;
    if (mouse) {
      mice_.add(fct.us());
    } else {
      elephant_.add(fct.us());
    }
    if (auto* rec = net_.sim().recorder()) {
      rec->flow_complete(net_.sim().now(), src_tor, fluid, ordinal,
                         fct.ns());
    }
  };

  if (fluid) {
    ++le.emitted_fluid;
    flows_fluid_ctr_->inc();
    bytes_fluid_ctr_->inc(bytes);
    // The fluid solver is shared control-plane state (one rate-share
    // computation for the whole fabric), so a lane can't call into it
    // directly: mailbox the launch to the control queue. The barrier
    // clamp delays the launch by at most one sync window — the same
    // amount at every shard count, so results stay byte-identical.
    auto launch = [this, alive = alive_, src, dst, bytes, record]() {
      if (!*alive) return;
      fluid_.launch(src, dst, bytes,
                    [record](SimTime fct, std::int64_t) { record(fct); });
    };
    if (net_.sim().cross_lane(sim::Simulator::kControlLane)) {
      net_.sim().schedule_at_lane(sim::Simulator::kControlLane, now,
                                  std::move(launch), "traffic.fluid");
    } else {
      launch();
    }
  } else {
    ++le.emitted_packet;
    flows_packet_ctr_->inc();
    bytes_packet_ctr_->inc(bytes);
    le.pool->launch(src, dst, bytes, spec_.transfer,
                    [record](SimTime fct, std::int64_t) { record(fct); });
  }
}

SimTime TrafficEngine::next_arrival(Source& s, SimTime from) {
  const bool burst = spec_.burst.enabled;
  SimTime t = from;
  s.probe = false;
  // Exact inhomogeneous-Poisson inversion over piecewise-constant rate:
  // draw an exponential gap at the current rate; an arrival past the next
  // rate boundary is discarded and redrawn from the boundary (valid by
  // memorylessness). Zero-rate windows are skipped analytically.
  for (int guard = 0; guard < 100'000; ++guard) {
    if (burst && t >= s.on_until) {
      const SimTime off = SimTime::nanos(ceil_ns(s.rng.exponential(
          static_cast<double>(spec_.burst.off_mean.ns()))));
      t = t + off;
      s.on_until = t + SimTime::nanos(ceil_ns(s.rng.exponential(
                           static_cast<double>(spec_.burst.on_mean.ns()))));
    }
    const double scale = curve_scale(spec_.curve, t.sec());
    const double change_sec = curve_next_change(spec_.curve, t.sec());
    const SimTime curve_limit =
        std::isinf(change_sec)
            ? SimTime::max()
            : SimTime::nanos(static_cast<std::int64_t>(change_sec * 1e9));
    if (scale <= 0.0) {
      if (curve_limit == SimTime::max()) return SimTime::max();  // dormant
      t = curve_limit;
      continue;
    }
    SimTime limit = curve_limit;
    if (burst && s.on_until < limit) limit = s.on_until;
    const double rate = lambda_on_ * scale;  // arrivals/sec
    const SimTime cand =
        t + SimTime::nanos(ceil_ns(s.rng.exponential(1e9 / rate)));
    if (cand <= limit) return cand;
    t = limit;
  }
  // Budget exhausted (legitimate with many low-rate sources and short
  // ON/OFF cycles). Retiring the source here would silently shed offered
  // load; instead park a resume probe at the reached time so the search
  // continues on the next wave, and make the event cost visible.
  s.probe = true;
  arrival_probes_ctr_->inc();
  OO_WARN_ONCE("traffic",
               "arrival search exceeded its per-wave budget; resuming via "
               "probe events (see traffic.arrival_probes). Consider fewer "
               "sources or longer burst cycles.");
  return t > from ? t : from + SimTime::nanos(1);
}

const std::vector<double>& TrafficEngine::dst_row(NodeId src_tor) {
  auto& row = dst_rows_[static_cast<std::size_t>(src_tor)];
  if (!row.empty()) return row;
  const int tors = net_.num_tors();
  row.resize(static_cast<std::size_t>(tors));
  double cum = 0.0;
  for (NodeId d = 0; d < tors; ++d) {
    double w = 0.0;
    if (d != src_tor) {
      switch (spec_.skew.kind) {
        case SkewSpec::Kind::Uniform:
          w = 1.0;
          break;
        case SkewSpec::Kind::Hotspot: {
          const int hot = std::min(spec_.skew.hot_tors, tors);
          const int cold = tors - hot;
          if (d < hot) {
            w = spec_.skew.hot_weight / static_cast<double>(hot);
          } else {
            w = cold > 0 ? (1.0 - spec_.skew.hot_weight) /
                               static_cast<double>(cold)
                         : 0.0;
          }
          break;
        }
        case SkewSpec::Kind::Zipf:
          w = 1.0 / std::pow(static_cast<double>(d + 1), spec_.skew.zipf_s);
          break;
      }
    }
    cum += w;
    row[static_cast<std::size_t>(d)] = cum;
  }
  if (cum <= 0.0) {
    // Degenerate skew — e.g. this source's own rack is the only hot rack
    // at hot_weight 1.0 — leaves every weight zero, which upper_bound
    // would misroute to the last rack. Fall back to uniform over the
    // other racks.
    cum = 0.0;
    for (NodeId d = 0; d < tors; ++d) {
      if (d != src_tor) cum += 1.0;
      row[static_cast<std::size_t>(d)] = cum;
    }
  }
  return row;
}

HostId TrafficEngine::pick_dst(NodeId src_tor, Rng& rng) {
  const auto& row = dst_row(src_tor);
  const double total = row.back();
  const double u = rng.uniform01() * total;
  const auto it = std::upper_bound(row.begin(), row.end(), u);
  NodeId dst_tor = static_cast<NodeId>(
      std::min<std::size_t>(static_cast<std::size_t>(it - row.begin()),
                            row.size() - 1));
  if (dst_tor == src_tor) dst_tor = (dst_tor + 1) % net_.num_tors();
  const int hpt = net_.config().hosts_per_tor;
  const int local =
      hpt > 1 ? static_cast<int>(rng.uniform(static_cast<std::uint32_t>(hpt)))
              : 0;
  return net_.host_id(dst_tor, local);
}

std::int64_t TrafficEngine::sample_size(Rng& rng) {
  const bool hh = spec_.size.hh_fraction > 0.0 &&
                  rng.uniform01() < spec_.size.hh_fraction;
  const auto& cdf = hh ? spec_.size.hh : spec_.size.base;
  const double sz = workload::sample_flow_size(cdf, rng);
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(sz));
}

}  // namespace oo::traffic
